module chet

go 1.22
