// Package chet is a from-scratch reproduction of CHET, the optimizing
// compiler for fully-homomorphic neural-network inferencing (Dathathri et
// al., PLDI 2019). It compiles tensor circuits — convolutional neural
// networks over an encrypted input image — into optimized homomorphic
// programs: it selects encryption parameters guaranteeing security and
// correctness, chooses ciphertext data layouts with a calibrated cost
// model, provisions exactly the rotation keys the circuit needs, and tunes
// fixed-point scaling factors with a profile-guided search.
//
// Two FHE targets are supported through a scheme-agnostic instruction set
// (the HISA): a real, from-scratch RNS-CKKS lattice scheme (the scheme of
// SEAL v3.1) and a high-fidelity mock of HEAAN v1.0's CKKS (see DESIGN.md).
//
// Quick start:
//
//	model, _ := chet.Model("LeNet-5-small")
//	compiled, _ := chet.Compile(model.Circuit, chet.Options{Scheme: chet.SchemeCKKS})
//	session, _ := chet.NewSession(compiled, nil)
//	img := chet.SyntheticImage(model.InputShape, 7)
//	enc := session.Encrypt(img)          // client side
//	out := session.Infer(enc)            // server side (no secret key)
//	pred := session.Decrypt(out)         // client side
package chet

import (
	"fmt"

	"chet/internal/circuit"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// Re-exported building blocks. The type aliases make the full DSL, the
// compiler, and the runtime available from the root package so downstream
// users never need the internal paths.
type (
	// Circuit is a tensor circuit (a DAG of tensor operations).
	Circuit = circuit.Circuit
	// Builder constructs circuits with shape inference.
	Builder = circuit.Builder
	// Tensor is a dense plaintext tensor.
	Tensor = tensor.Tensor
	// Options configures compilation.
	Options = core.Options
	// Compiled is the result of compilation.
	Compiled = core.Compiled
	// PolicyResult records the compiler's decisions for one layout policy.
	PolicyResult = core.PolicyResult
	// Scales are the four fixed-point scaling factors (image, plaintext
	// weights, scalar weights, masks).
	Scales = htc.Scales
	// Scheme selects the FHE target.
	Scheme = core.Scheme
	// LayoutPolicy is a data-layout strategy (HW / CHW / mixed).
	LayoutPolicy = htc.LayoutPolicy
	// CipherTensor is an encrypted tensor with layout metadata.
	CipherTensor = htc.CipherTensor
	// Backend is the HISA: the scheme-agnostic instruction set.
	Backend = hisa.Backend
	// NetModel is a named network from the evaluation zoo.
	NetModel = nn.Model
	// ScaleSearch configures profile-guided scale selection.
	ScaleSearch = core.ScaleSearch
	// ScaleMode selects rescale placement (greedy op-local protocol or the
	// graph-level lazy scale-management pass).
	ScaleMode = core.ScaleMode
	// ScaleReport is the scale-management pass's per-site explain trace.
	ScaleReport = core.ScaleReport
	// BootstrapOptions enables compiler bootstrap placement for circuits
	// deeper than any affordable modulus chain.
	BootstrapOptions = core.BootstrapOptions
	// BootReport is the placement pass's plan: the bootstrap spec plus every
	// refresh site the compiler predicts.
	BootReport = core.BootReport
	// BootPlacement is one compiler-predicted refresh site.
	BootPlacement = core.BootPlacement
)

// The two supported schemes.
const (
	// SchemeCKKS targets HEAAN v1.0's CKKS (power-of-two modulus).
	SchemeCKKS = core.SchemeCKKS
	// SchemeRNS targets SEAL v3.1's RNS-CKKS (prime modulus chain).
	SchemeRNS = core.SchemeRNS
)

// The two rescale-placement modes.
const (
	// ScaleGreedy keeps the op-local rescale protocol (the default).
	ScaleGreedy = core.ScaleGreedy
	// ScaleLazy runs the graph-level scale-management pass.
	ScaleLazy = core.ScaleLazy
)

// NewCircuit starts building a tensor circuit.
func NewCircuit(name string) *Builder { return circuit.NewBuilder(name) }

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromData wraps data with a shape.
func TensorFromData(data []float64, shape ...int) *Tensor {
	return tensor.FromData(data, shape...)
}

// Compile runs the CHET compilation pipeline on a circuit.
func Compile(c *Circuit, opts Options) (*Compiled, error) { return core.Compile(c, opts) }

// SelectScales runs the profile-guided fixed-point scale search.
func SelectScales(c *Circuit, inputs []*Tensor, search ScaleSearch, opts Options) (Scales, error) {
	return core.SelectScales(c, inputs, search, opts)
}

// Model returns a network from the paper's evaluation zoo by name
// ("LeNet-5-small", "LeNet-5-medium", "LeNet-5-large", "Industrial",
// "SqueezeNet-CIFAR", or the demo "LeNet-tiny").
func Model(name string) (*NetModel, error) { return nn.ByName(name) }

// Models returns the five evaluation networks in Table 3 order.
func Models() []*NetModel { return nn.All() }

// SyntheticImage produces a deterministic input image (a stand-in for
// MNIST/CIFAR samples).
func SyntheticImage(shape []int, seed uint64) *Tensor { return nn.SyntheticImage(shape, seed) }

// Session realizes a compiled circuit on a concrete backend: the client
// uses Encrypt and Decrypt (key material stays inside the backend), the
// server uses Infer.
type Session struct {
	Compiled *Compiled
	Backend  Backend

	// Workers sets the worker-pool size Infer fans kernel work across:
	// 0 or 1 executes serially, runtime.GOMAXPROCS(0) uses every CPU.
	// Parallel inference is bit-identical to serial on every backend.
	Workers int

	plan htc.Plan
}

// NewSession instantiates the backend the compiler chose (CKKS mock or real
// RNS-CKKS with exactly the selected rotation keys). prng may be nil for a
// cryptographically secure source.
func NewSession(comp *Compiled, prng ring.PRNG) (*Session, error) {
	b, err := core.BuildBackend(comp, prng)
	if err != nil {
		return nil, err
	}
	// Bootstrap compilations run under the Refresher so ciphertext budgets
	// are kept above the placement floor; without a plan this is a no-op.
	b, err = core.BootBackend(comp, b)
	if err != nil {
		return nil, err
	}
	return &Session{
		Compiled: comp,
		Backend:  b,
		plan:     comp.Plan(),
	}, nil
}

// Encrypt encodes and encrypts an input image under the compiled layout.
func (s *Session) Encrypt(img *Tensor) *CipherTensor {
	return htc.EncryptTensor(s.Backend, img, s.plan, s.Compiled.Options.Scales)
}

// EncryptBatch encrypts up to Options.Batch images into the slot lanes of
// one cipher tensor. A single Infer then serves the whole batch.
func (s *Session) EncryptBatch(imgs []*Tensor) *CipherTensor {
	return htc.EncryptTensorBatch(s.Backend, imgs, s.plan, s.Compiled.Options.Scales)
}

// DecryptBatch recovers the first n lane predictions of a batched result,
// flattening 1x1xK predictions exactly as Decrypt does.
func (s *Session) DecryptBatch(out *CipherTensor, n int) []*Tensor {
	ts := htc.DecryptTensorBatch(s.Backend, out, n)
	for i, t := range ts {
		if t.Rank() == 3 && t.Shape[0] == 1 && t.Shape[1] == 1 {
			ts[i] = t.Reshape(t.Size())
		}
	}
	return ts
}

// RunBatch is the end-to-end batched path: encrypt all images into lanes,
// infer once, decrypt each lane. Requires Options.Batch >= len(imgs).
func (s *Session) RunBatch(imgs []*Tensor) []*Tensor {
	return s.DecryptBatch(s.Infer(s.EncryptBatch(imgs)), len(imgs))
}

// SelectBatchCapacity finds the largest power-of-two batch (up to maxBatch)
// the circuit supports without growing the ring beyond its unbatched
// parameters.
func SelectBatchCapacity(c *Circuit, opts Options, maxBatch int) (int, error) {
	return core.SelectBatchCapacity(c, opts, maxBatch)
}

// Infer executes the optimized homomorphic tensor circuit on an encrypted
// input, producing an encrypted prediction. With Workers > 1 the kernels
// fan independent per-output work across a goroutine pool. When the
// compilation carries a lazy scale plan, every kernel rescale site consults
// it; otherwise the greedy op-local protocol applies.
func (s *Session) Infer(enc *CipherTensor) *CipherTensor {
	opts := htc.ExecOptions{Workers: s.Workers}
	if s.Compiled.ScalePlan != nil {
		opts.Scale = htc.PlanPolicy{Plan: s.Compiled.ScalePlan}
	}
	return htc.ExecuteOpts(s.Backend, s.Compiled.Circuit, enc, s.Compiled.Best.Policy,
		s.Compiled.Options.Scales, opts)
}

// Decrypt recovers the prediction tensor.
func (s *Session) Decrypt(out *CipherTensor) *Tensor {
	t := htc.DecryptTensor(s.Backend, out)
	if t.Rank() == 3 && t.Shape[0] == 1 && t.Shape[1] == 1 {
		return t.Reshape(t.Size())
	}
	return t
}

// Run is the end-to-end convenience path: encrypt, infer, decrypt.
func (s *Session) Run(img *Tensor) *Tensor {
	return s.Decrypt(s.Infer(s.Encrypt(img)))
}

// Describe renders the compiler's decisions in a human-readable form.
func Describe(comp *Compiled) string {
	b := comp.Best
	s := fmt.Sprintf("circuit %q targeting %v\n", comp.Circuit.Name, comp.Options.Scheme)
	s += fmt.Sprintf("  best layout policy: %v\n", b.Policy)
	s += fmt.Sprintf("  N = 2^%d, log2(Q) = %.0f", b.LogN, b.LogQ)
	if comp.Options.Scheme == SchemeRNS {
		s += fmt.Sprintf(", chain %v + special %d", b.RNSChainBits, b.SpecialBits)
	}
	s += fmt.Sprintf("\n  rotation keys: %d (executing %d rotations)\n",
		len(b.Rotations), b.RotationOps)
	if b.Batch > 1 {
		s += fmt.Sprintf("  batch capacity: %d images/ciphertext (%.1f ms each amortized)\n",
			b.Batch, b.CostPerImage/1000)
	}
	if p := comp.BootPlan; p != nil {
		s += fmt.Sprintf("  bootstrapping: %d placements, window %d, floor %d (pipeline depth %d, est %.1f ms)\n",
			len(p.Placements), p.Window, p.Floor, p.Depth, p.EstCost/1000)
	}
	s += fmt.Sprintf("  estimated cost: %.1f ms\n", b.EstimatedCost/1000)
	for _, r := range comp.Trace {
		marker := " "
		if r.Policy == b.Policy {
			marker = "*"
		}
		s += fmt.Sprintf("  %s %-20v est %10.1f ms  (N=2^%d)\n",
			marker, r.Policy, r.EstimatedCost/1000, r.LogN)
	}
	return s
}
