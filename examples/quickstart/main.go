// Quickstart: compile a small CNN with CHET, encrypt an image, run
// homomorphic inference, and compare against unencrypted inference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"chet"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a network from the evaluation zoo (or build your own with
	//    chet.NewCircuit).
	model, err := chet.Model("LeNet-5-small")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s (%s)\n", model.Name, model.Description)

	// 2. Compile. CHET chooses the data layout, the encryption parameters
	//    (128-bit secure), and the rotation keys.
	compiled, err := chet.Compile(model.Circuit, chet.Options{Scheme: chet.SchemeCKKS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chet.Describe(compiled))

	// 3. A session holds the keys. Encrypt stands in for the client,
	//    Infer for the untrusted server, Decrypt for the client again.
	session, err := chet.NewSession(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}

	img := chet.SyntheticImage(model.InputShape, 42)
	enc := session.Encrypt(img)
	out := session.Infer(enc)
	pred := session.Decrypt(out)

	// 4. Validate against the unencrypted reference.
	want := model.Circuit.Evaluate(img)
	maxErr := 0.0
	for i := range want.Data {
		if e := math.Abs(pred.Data[i] - want.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("predicted class %d (plaintext reference: %d), max |err| = %.2e\n",
		pred.ArgMax(), want.ArgMax(), maxErr)
}
