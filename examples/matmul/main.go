// The paper's motivating example (Section 3.1, Figure 1): homomorphic
// 2x2 matrix-matrix multiplication written directly against the HISA, on
// real RNS-CKKS lattice cryptography.
//
// The client lays A out with padding (one empty slot between elements) so a
// single rotate-and-add replicates every a_ij twice; B is replicated
// whole. One ciphertext-ciphertext multiplication then produces all eight
// products c_ijk = a_ij * b_jk at slot 4i+2j+k, a rotate-and-add sums over
// j, and a mask isolates the result — whose layout differs from both
// inputs, exactly the bookkeeping CHET automates.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
)

func main() {
	log.SetFlags(0)
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	slots := params.Slots()
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params: params,
		PRNG:   ring.NewCryptoPRNG(),
		// Exactly the rotations this circuit needs — what CHET's
		// rotation-keys selection pass would provision.
		Rotations: []int{2, slots - 1, slots - 4},
	})

	a := [2][2]float64{{1.5, -2.0}, {0.25, 3.0}}
	bm := [2][2]float64{{-1.0, 0.5}, {2.0, 1.25}}

	scale := params.DefaultScale()

	// Client-side layouts. A is padded: [a11, _, a12, _, a21, _, a22, _].
	aVec := make([]float64, slots)
	aVec[0], aVec[2], aVec[4], aVec[6] = a[0][0], a[0][1], a[1][0], a[1][1]
	// B is row-major: [b11, b12, b21, b22].
	bVec := make([]float64, slots)
	bVec[0], bVec[1], bVec[2], bVec[3] = bm[0][0], bm[0][1], bm[1][0], bm[1][1]

	ctA := b.Encrypt(b.Encode(aVec, scale))
	ctB := b.Encrypt(b.Encode(bVec, scale))

	// Server side: replicate. A'' duplicates each a_ij into adjacent slots;
	// B'' repeats the whole of B four slots later.
	aRep := b.Add(ctA, b.RotRight(ctA, 1))
	bRep := b.Add(ctB, b.RotRight(ctB, 4))

	// One multiplication yields every product c_ijk = a_ij * b_jk.
	prod := b.Mul(aRep, bRep)
	d := b.MaxRescale(prod, big.NewInt(1<<41))
	prod = b.Rescale(prod, d)

	// Sum over j (slots two apart), then mask the valid result slots
	// {0, 1, 4, 5} holding c_ik at slot 4i+k.
	summed := b.Add(prod, b.RotLeft(prod, 2))
	mask := make([]float64, slots)
	mask[0], mask[1], mask[4], mask[5] = 1, 1, 1, 1
	masked := b.MulPlain(summed, b.Encode(mask, scale))
	d = b.MaxRescale(masked, big.NewInt(1<<41))
	masked = b.Rescale(masked, d)

	got := b.Decode(b.Decrypt(masked))

	fmt.Println("homomorphic 2x2 matrix multiplication (real RNS-CKKS):")
	worst := 0.0
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			want := a[i][0]*bm[0][k] + a[i][1]*bm[1][k]
			have := got[4*i+k]
			if e := math.Abs(have - want); e > worst {
				worst = e
			}
			fmt.Printf("  c[%d][%d] = %8.4f (expected %8.4f)\n", i+1, k+1, have, want)
		}
	}
	fmt.Printf("max |err| = %.2e with 1 ct-mult, 3 rotations, 1 mask\n", worst)
	fmt.Println("note: the output layout differs from both inputs — the bookkeeping CHET automates.")
}
