// SqueezeNet-CIFAR: the deepest network of the paper's evaluation. This
// example compiles it for both FHE targets, prints the selected parameters
// (the SqueezeNet row of Table 4), and runs one encrypted inference on the
// CKKS noise-model backend to demonstrate scalability.
//
//	go run ./examples/squeezenet
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"chet"
)

func main() {
	log.SetFlags(0)
	model, err := chet.Model("SqueezeNet-CIFAR")
	if err != nil {
		log.Fatal(err)
	}
	lc := model.Circuit.CountLayers()
	fmt.Printf("%s: %d conv ops (4 Fire modules), %d activations, %d FLOPs/inference\n",
		model.Name, lc.Conv, lc.Act, model.Circuit.Flops())

	// A network this deep needs lean fixed-point scales or the modulus
	// outgrows every secure ring degree — the paper's Table 4 reports
	// exactly this regime for SqueezeNet (small image/weight scales). The
	// mask scale must stay generous: masks multiply folded garbage slots,
	// and their encoding noise is proportional to that garbage's magnitude.
	// These values reproduce what the profile-guided search settles on,
	// precomputed here to keep the example fast.
	scales := chet.Scales{
		Pc: math.Exp2(30), Pw: math.Exp2(20), Pu: math.Exp2(20), Pm: math.Exp2(25),
	}
	opts := func(s chet.Scheme) chet.Options {
		return chet.Options{Scheme: s, Scales: scales}
	}

	for _, scheme := range []chet.Scheme{chet.SchemeCKKS, chet.SchemeRNS} {
		start := time.Now()
		compiled, err := chet.Compile(model.Circuit, opts(scheme))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncompiled for %v in %v\n", scheme, time.Since(start).Round(time.Millisecond))
		fmt.Print(chet.Describe(compiled))
	}

	// Encrypted inference on the CKKS noise-model backend.
	compiled, err := chet.Compile(model.Circuit, opts(chet.SchemeCKKS))
	if err != nil {
		log.Fatal(err)
	}
	session, err := chet.NewSession(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	img := chet.SyntheticImage(model.InputShape, 77)
	want := model.Circuit.Evaluate(img)

	start := time.Now()
	got := session.Run(img)
	fmt.Printf("\nencrypted inference (CKKS noise model): %v\n", time.Since(start).Round(time.Millisecond))

	worst := 0.0
	for i := range want.Data {
		if e := math.Abs(got.Data[i] - want.Data[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("predicted class %d (plaintext: %d), max |err| %.2e over %d logits\n",
		got.ArgMax(), want.ArgMax(), worst, got.Size())
}
