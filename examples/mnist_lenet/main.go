// Encrypted MNIST-style inference with LeNet-5: profile-guided scale
// selection, compilation for both FHE targets, and a fidelity report over a
// batch of images — the paper's core workflow (Sections 3 and 5.5).
//
//	go run ./examples/mnist_lenet
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"chet"
)

func main() {
	log.SetFlags(0)
	model, err := chet.Model("LeNet-5-small")
	if err != nil {
		log.Fatal(err)
	}

	// Profile-guided scale selection on a handful of representative images
	// (Section 5.5): shrink the four fixed-point factors while the output
	// stays within tolerance.
	profile := []*chet.Tensor{
		chet.SyntheticImage(model.InputShape, 1),
		chet.SyntheticImage(model.InputShape, 2),
		chet.SyntheticImage(model.InputShape, 3),
	}
	start := time.Now()
	scales, err := chet.SelectScales(model.Circuit, profile,
		chet.ScaleSearch{Tolerance: 0.05, Step: 4},
		chet.Options{Scheme: chet.SchemeCKKS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile-guided scales (found in %v): log2(Pc,Pw,Pu,Pm) = %.0f %.0f %.0f %.0f\n",
		time.Since(start).Round(time.Millisecond),
		math.Log2(scales.Pc), math.Log2(scales.Pw), math.Log2(scales.Pu), math.Log2(scales.Pm))

	// Compile for both targets with the tuned scales — "CHET was able to
	// easily port the same input circuit to a more recent FHE scheme".
	for _, scheme := range []chet.Scheme{chet.SchemeCKKS, chet.SchemeRNS} {
		compiled, err := chet.Compile(model.Circuit, chet.Options{Scheme: scheme, Scales: scales})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v: layout %v, N=2^%d, logQ=%.0f, %d rotation keys, est %.1fs\n",
			scheme, compiled.Best.Policy, compiled.Best.LogN, compiled.Best.LogQ,
			len(compiled.Best.Rotations), compiled.Best.EstimatedCost/1e6)
	}

	// Run a batch of encrypted inferences on the CKKS target and check the
	// classification decision against plaintext inference.
	compiled, err := chet.Compile(model.Circuit, chet.Options{Scheme: chet.SchemeCKKS, Scales: scales})
	if err != nil {
		log.Fatal(err)
	}
	session, err := chet.NewSession(compiled, nil)
	if err != nil {
		log.Fatal(err)
	}

	const batch = 10
	agreements := 0
	worst := 0.0
	for i := 0; i < batch; i++ {
		img := chet.SyntheticImage(model.InputShape, 100+uint64(i))
		want := model.Circuit.Evaluate(img)
		got := session.Run(img)
		if got.ArgMax() == want.ArgMax() {
			agreements++
		}
		for j := range want.Data {
			if e := math.Abs(got.Data[j] - want.Data[j]); e > worst {
				worst = e
			}
		}
	}
	fmt.Printf("\nencrypted vs plaintext over %d images: %d/%d argmax agreements, max |err| %.2e\n",
		batch, agreements, batch, worst)
}
