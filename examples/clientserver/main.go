// The paper's deployment model (Figure 3) over a real TCP socket: the
// client generates keys, encrypts an image, and ships the *public*
// evaluation keys plus the encrypted image to an untrusted server; the
// server — which never sees a secret key, the image, or the prediction —
// evaluates the optimized homomorphic tensor circuit and returns an
// encrypted prediction, which only the client can decrypt.
//
//	go run ./examples/clientserver
package main

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"time"

	"chet"
	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

const modelName = "LeNet-tiny"

// compileShared is run independently by both parties: compilation is
// deterministic, so client and server agree on parameters, layout, and
// rotation keys without exchanging anything but the model name.
func compileShared() *core.Compiled {
	model, err := nn.ByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := core.Compile(model.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1, // small demo ring so the example runs in seconds
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return comp
}

func buildParams(comp *core.Compiled) *ckks.Parameters {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     comp.Best.LogN,
		LogQ:     comp.Best.RNSChainBits,
		LogP:     comp.Best.SpecialBits,
		LogScale: int(math.Round(math.Log2(comp.Options.Scales.Pc))),
	})
	if err != nil {
		log.Fatal(err)
	}
	return params
}

// --- length-prefixed wire helpers ---

func send(w io.Writer, m encoding.BinaryMarshaler) {
	data, err := m.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	sendRaw(w, data)
}

func sendRaw(w io.Writer, data []byte) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		log.Fatal(err)
	}
}

func recvRaw(r io.Reader) []byte {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		log.Fatal(err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > 1<<32 {
		log.Fatalf("implausible frame size %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		log.Fatal(err)
	}
	return data
}

func recvInto(r io.Reader, m encoding.BinaryUnmarshaler) {
	if err := m.UnmarshalBinary(recvRaw(r)); err != nil {
		log.Fatal(err)
	}
}

func sendCipherTensor(w io.Writer, ct *htc.CipherTensor) {
	meta := []int{int(ct.Layout), ct.C, ct.H, ct.W, ct.Offset, ct.RowStride,
		ct.ColStride, ct.ChanStride, ct.CPerCT, len(ct.CTs)}
	buf := make([]byte, 0, len(meta)*8)
	for _, v := range meta {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	sendRaw(w, buf)
	for _, c := range ct.CTs {
		send(w, c.(*ckks.Ciphertext))
	}
}

func recvCipherTensor(r io.Reader) *htc.CipherTensor {
	buf := recvRaw(r)
	meta := make([]int, 10)
	for i := range meta {
		meta[i] = int(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	out := &htc.CipherTensor{
		Layout: htc.Layout(meta[0]), C: meta[1], H: meta[2], W: meta[3],
		Offset: meta[4], RowStride: meta[5], ColStride: meta[6],
		ChanStride: meta[7], CPerCT: meta[8],
	}
	for i := 0; i < meta[9]; i++ {
		var c ckks.Ciphertext
		recvInto(r, &c)
		out.CTs = append(out.CTs, &c)
	}
	return out
}

// server evaluates the circuit for one connection. It holds no secret key.
func server(ln net.Listener, done chan<- struct{}) {
	defer close(done)
	comp := compileShared()
	params := buildParams(comp)
	model, _ := nn.ByName(modelName)

	conn, err := ln.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Receive the client's public evaluation keys.
	var pk ckks.PublicKey
	var rlk ckks.RelinearizationKey
	var rtks ckks.RotationKeySet
	recvInto(conn, &pk)
	recvInto(conn, &rlk)
	recvInto(conn, &rtks)

	backend := hisa.NewRNSBackendFromKeys(params, hisa.RNSPublicKeys{
		PK: &pk, RLK: &rlk, RTKS: &rtks, Rotations: comp.Best.Rotations,
	}, nil)

	enc := recvCipherTensor(conn)
	fmt.Printf("[server] received %d ciphertexts; evaluating %s homomorphically...\n",
		enc.NumCTs(), model.Name)
	start := time.Now()
	out := htc.Execute(backend, model.Circuit, enc, comp.Best.Policy, comp.Options.Scales)
	fmt.Printf("[server] inference done in %v (the server never saw image, keys, or prediction)\n",
		time.Since(start).Round(time.Millisecond))
	sendCipherTensor(conn, out)
}

func main() {
	log.SetFlags(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go server(ln, done)

	// --- client ---
	comp := compileShared()
	model, _ := nn.ByName(modelName)
	backend := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    buildParams(comp),
		PRNG:      ring.NewCryptoPRNG(),
		Rotations: comp.Best.Rotations,
	})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	keys := backend.PublicKeys()
	send(conn, keys.PK)
	send(conn, keys.RLK)
	send(conn, keys.RTKS)
	fmt.Println("[client] shipped public evaluation keys")

	img := chet.SyntheticImage(model.InputShape, 99)
	enc := htc.EncryptTensor(backend, img, htc.PlanFor(model.Circuit, comp.Best.Policy),
		comp.Options.Scales)
	sendCipherTensor(conn, enc)
	fmt.Println("[client] shipped encrypted image")

	result := recvCipherTensor(conn)
	pred := htc.DecryptTensor(backend, result)
	pred = pred.Reshape(pred.Size())
	want := model.Circuit.Evaluate(img)

	worst := 0.0
	for i := range want.Data {
		if e := math.Abs(pred.Data[i] - want.Data[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("[client] decrypted prediction: class %d (plaintext reference: %d), max |err| %.2e\n",
		pred.ArgMax(), want.ArgMax(), worst)
	<-done
}
