// The paper's deployment model (Figure 3) over a real TCP socket: the
// client generates keys, encrypts an image, and ships the *public*
// evaluation keys plus the encrypted image to an untrusted server; the
// server — which never sees a secret key, the image, or the prediction —
// evaluates the optimized homomorphic tensor circuit and returns an
// encrypted prediction, which only the client can decrypt.
//
// Both sides speak the versioned internal/wire framing protocol: the server
// is the same engine cmd/chet-serve runs (session registry, admission
// queue, deadlines, metrics), and the client is the serve.Client library —
// session-open uploads the keys once, every inference after that ships only
// ciphertexts.
//
//	go run ./examples/clientserver
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"runtime"
	"time"

	"chet"
	"chet/internal/core"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/serve"
)

const modelName = "LeNet-tiny"

// compileShared is run independently by both parties: compilation is
// deterministic, so client and server agree on parameters, layout, and
// rotation keys without exchanging anything but the model name — and the
// session-open handshake proves agreement by comparing circuit
// fingerprints.
func compileShared() *core.Compiled {
	model, err := nn.ByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := core.Compile(model.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1, // small demo ring so the example runs in seconds
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return comp
}

func main() {
	log.SetFlags(0)

	// --- server: the untrusted party; it never holds a secret key ---
	srv, err := serve.New(serve.Config{
		Compiled: compileShared(),
		Workers:  runtime.GOMAXPROCS(0),
		Logf: func(format string, args ...any) {
			fmt.Printf("[server] "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)

	// --- client: compiles independently, generates keys, opens a session ---
	comp := compileShared()
	model, _ := nn.ByName(modelName)
	start := time.Now()
	client, err := serve.Dial(ln.Addr().String(), serve.ClientConfig{
		Compiled: comp,
		PRNG:     ring.NewCryptoPRNG(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] session open in %v: shipped public evaluation keys (%d rotation keys)\n",
		time.Since(start).Round(time.Millisecond), len(comp.Best.Rotations))

	img := chet.SyntheticImage(model.InputShape, 99)
	start = time.Now()
	pred, err := client.Run(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] encrypted inference round trip in %v\n",
		time.Since(start).Round(time.Millisecond))

	want := model.Circuit.Evaluate(img)
	worst := 0.0
	for i := range want.Data {
		if e := math.Abs(pred.Data[i] - want.Data[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("[client] decrypted prediction: class %d (plaintext reference: %d), max |err| %.2e\n",
		pred.ArgMax(), want.ArgMax(), worst)
	client.Close()

	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	m := srv.Metrics()
	for _, sm := range m.Sessions {
		fmt.Printf("[server] session %d executed %d HISA ops (%d rotations) without ever seeing a secret\n",
			sm.ID, sm.Ops.Total(), sm.Ops.Rotations)
	}
}
