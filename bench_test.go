package chet

// One benchmark family per table and figure of the paper's evaluation
// (Section 6). Each benchmark drives the same internal/bench harness as
// cmd/chet-bench and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every experiment. The full
// paper-scale sweep (all five networks, real-crypto measurements) is
// available via `go run ./cmd/chet-bench -exp all`.

import (
	"fmt"
	"testing"

	"chet/internal/bench"
	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

// benchModels is the sweep used inside testing.B: the two smallest networks
// keep a full -bench=. run in tens of seconds. Pass -timeout 0 and edit
// here (or use chet-bench) for the five-network sweep.
func benchModels() []*nn.Model { return bench.SmallModels() }

// BenchmarkTable1_HISAPrimitives microbenchmarks the real RNS-CKKS HISA
// primitives across modulus-chain lengths, the data behind Table 1's
// asymptotic-cost claims.
func BenchmarkTable1_HISAPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1([][2]int{{11, 2}, {11, 4}, {12, 4}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].RotateUS, "rotate-us")
	}
}

// BenchmarkTable3_NetworkInventory reproduces the network statistics table,
// including the encrypted-vs-plaintext output fidelity that substitutes for
// the paper's accuracy column.
func BenchmarkTable3_NetworkInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table3(benchModels(), true)
		b.ReportMetric(rows[len(rows)-1].OutputFidelity, "max-abs-err")
	}
}

// BenchmarkTable4_ParameterSelection runs CHET's encryption-parameter
// selection for the CKKS (HEAAN) target.
func BenchmarkTable4_ParameterSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(benchModels(), bench.Table4Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].LogQ, "logQ")
	}
}

// BenchmarkTable5_LayoutSelectionSEAL prices all four data layouts under
// the RNS-CKKS (SEAL) cost model.
func BenchmarkTable5_LayoutSelectionSEAL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LayoutTable(benchModels(), core.SchemeRNS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Seconds[1], "CHW-sec")
	}
}

// BenchmarkTable6_LayoutSelectionHEAAN prices all four data layouts under
// the CKKS (HEAAN) cost model.
func BenchmarkTable6_LayoutSelectionHEAAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LayoutTable(benchModels(), core.SchemeCKKS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Seconds[0], "HW-sec")
	}
}

// BenchmarkFigure5_CHETvsManual reproduces the headline comparison:
// CHET-SEAL vs CHET-HEAAN vs the expert-manual HEAAN baseline.
func BenchmarkFigure5_CHETvsManual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure5(benchModels())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.ManualHEAAN/last.CHETHEAAN, "manual/chet")
	}
}

// BenchmarkFigure6_CostModelCorrelation measures real RNS-CKKS execution
// for every layout of the tiny demo network and reports the log-log
// correlation with the cost model's estimates.
func BenchmarkFigure6_CostModelCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Figure6([]*nn.Model{nn.LeNetTiny()}, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.LogLogCorrelation(points), "corr")
	}
}

// BenchmarkFigure7_RotationKeysSpeedup reproduces the rotation-keys
// selection speedup over power-of-two default keys (geometric mean across
// networks and schemes).
func BenchmarkFigure7_RotationKeysSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7(benchModels(), []core.Scheme{core.SchemeRNS, core.SchemeCKKS})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomeanSpeedup(rows), "geomean-x")
	}
}

// BenchmarkEndToEnd_RealRNSInference measures one fully homomorphic
// inference of the demo network on the real lattice backend (keygen
// excluded), the repository's analogue of one Figure 5 measurement point.
func BenchmarkEndToEnd_RealRNSInference(b *testing.B) {
	model := nn.LeNetTiny()
	comp, err := core.Compile(model.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := core.BuildBackend(comp, ring.NewTestPRNG(31))
	if err != nil {
		b.Fatal(err)
	}
	img := nn.SyntheticImage(model.InputShape, 13)
	sc := comp.Options.Scales
	plan := htc.PlanFor(model.Circuit, comp.Best.Policy)
	enc := htc.EncryptTensor(backend, img, plan, sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		htc.Execute(backend, model.Circuit, enc, comp.Best.Policy, sc)
	}
}

// rnsConvFixture builds a real RNS-CKKS backend and an encrypted CHW input
// for the parallel kernel benchmarks.
func rnsConvFixture(b *testing.B) (hisa.Backend, *htc.CipherTensor, htc.Scales) {
	b.Helper()
	logQ := []int{50}
	for i := 0; i < 7; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 11, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(41)})
	sc := htc.DefaultScales()
	img := nn.SyntheticImage([]int{4, 8, 8}, 19)
	enc := htc.EncryptTensor(backend, img, htc.Plan{Layout: htc.LayoutCHW}, sc)
	return backend, enc, sc
}

// workerSweep is the Workers axis of the parallel kernel benchmarks.
var workerSweep = []int{1, 2, 4, 8}

// BenchmarkParallelConv2D sweeps the worker-pool size for the convolution
// kernel on the real lattice backend. On a single-core machine all points
// coincide; on a multi-core machine the marginal speedup per doubling is
// the quantity of interest.
func BenchmarkParallelConv2D(b *testing.B) {
	backend, enc, sc := rnsConvFixture(b)
	filters := nn.SyntheticImage([]int{8, 4, 3, 3}, 43)
	for _, workers := range workerSweep {
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				htc.Conv2DOpts(backend, enc, filters, nil, 1, 0, sc,
					htc.ExecOptions{Workers: workers})
			}
		})
	}
}

// BenchmarkParallelDense sweeps the worker-pool size for the fully
// connected kernel (per-output-neuron fan-out) on the real lattice backend.
func BenchmarkParallelDense(b *testing.B) {
	backend, enc, sc := rnsConvFixture(b)
	weights := nn.SyntheticImage([]int{16, 4 * 8 * 8}, 47)
	for _, workers := range workerSweep {
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				htc.DenseOpts(backend, enc, weights, nil, sc,
					htc.ExecOptions{Workers: workers})
			}
		})
	}
}

func benchWorkersName(workers int) string {
	return fmt.Sprintf("workers=%d", workers)
}

// BenchmarkEndToEnd_ParallelRNSInference is the serial benchmark above with
// a worker pool per CPU: the serial-vs-parallel wall-clock ratio is the
// engine's end-to-end speedup (reported by `chet-bench -exp parallel`).
func BenchmarkEndToEnd_ParallelRNSInference(b *testing.B) {
	model := nn.LeNetTiny()
	comp, err := core.Compile(model.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := core.BuildBackend(comp, ring.NewTestPRNG(31))
	if err != nil {
		b.Fatal(err)
	}
	img := nn.SyntheticImage(model.InputShape, 13)
	sc := comp.Options.Scales
	plan := htc.PlanFor(model.Circuit, comp.Best.Policy)
	enc := htc.EncryptTensor(backend, img, plan, sc)
	opts := htc.DefaultExecOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		htc.ExecuteOpts(backend, model.Circuit, enc, comp.Best.Policy, sc, opts)
	}
}

// BenchmarkCompile measures the compiler itself (all four layout policies,
// both passes).
func BenchmarkCompile(b *testing.B) {
	model, err := Model("LeNet-5-small")
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.SchemeCKKS, core.SchemeRNS} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(model.Circuit, Options{Scheme: scheme}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHISABackends measures one homomorphic multiply-rescale on each
// executable backend, showing the relative cost of the functional oracle,
// the CKKS mock, and real lattice cryptography.
func BenchmarkHISABackends(b *testing.B) {
	backends := []hisa.Backend{
		hisa.NewRefBackend(2048),
		hisa.NewSimBackend(hisa.SimParams{LogN: 12, LogQ: 300}),
	}
	if params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 12, LogQ: []int{50, 40, 40, 40}, LogP: 50, LogScale: 40,
	}); err == nil {
		backends = append(backends, hisa.NewRNSBackend(hisa.RNSConfig{
			Params: params, PRNG: ring.NewTestPRNG(37), Rotations: []int{1},
		}))
	}
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = 0.25
	}
	for _, backend := range backends {
		b.Run(backend.Name(), func(b *testing.B) {
			scale := float64(1 << 40)
			pt := backend.Encode(vals[:backend.Slots()], scale)
			ct := backend.Encrypt(pt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				backend.RotLeft(backend.MulPlain(ct, pt), 1)
			}
		})
	}
}
