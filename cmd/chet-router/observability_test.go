package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"chet"
	"chet/internal/ring"
	"chet/internal/serve"
)

// TestRouterObservabilityEndpoints runs the binary path with -metrics-addr
// in front of two traced workers: one encrypted inference through the live
// router, a /metrics scrape (router series plus the per-worker budget
// telemetry learned over health probes), and a /trace fetch that must
// return the merged cross-process Chrome trace for that request's ID.
func TestRouterObservabilityEndpoints(t *testing.T) {
	m, err := chet.Model("LeNet-tiny")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := chet.Compile(m.Circuit, chet.Options{
		Scheme: chet.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 13,
	})
	if err != nil {
		t.Fatal(err)
	}

	var workerAddrs []string
	for i := 0; i < 2; i++ {
		s, err := serve.New(serve.Config{
			Compiled: comp, Workers: 2, Trace: true,
			ProcessLabel: fmt.Sprintf("worker-%c", 'a'+i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		workerAddrs = append(workerAddrs, ln.Addr().String())
	}

	cfg := routerConfig{
		addr:          "127.0.0.1:0",
		workers:       strings.Join(workerAddrs, ","),
		maxSessions:   16,
		probeInterval: 25 * time.Millisecond,
		metricsAddr:   "127.0.0.1:0",
	}
	var out strings.Builder
	var mu sync.Mutex
	logf := &lockedWriter{&mu, &out}
	ready := make(chan [2]net.Addr, 1)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(logf, cfg, stop, func(a, ma net.Addr) { ready <- [2]net.Addr{a, ma} })
	}()

	var addrs [2]net.Addr
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("router exited early: %v", err)
	}
	if addrs[1] == nil {
		t.Fatal("onReady delivered no metrics address despite -metrics-addr")
	}

	const traceBase = uint64(0x0B5) << 32
	c, err := serve.Dial(addrs[0].String(), serve.ClientConfig{
		Compiled: comp, PRNG: ring.NewTestPRNG(5), TraceBase: traceBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	img := chet.SyntheticImage(m.InputShape, 3)
	if _, err := c.Run(img); err != nil {
		t.Fatal(err)
	}
	c.Close()

	body := routerHTTPGet(t, fmt.Sprintf("http://%s/metrics", addrs[1]), http.StatusOK)
	for _, series := range []string{
		"chet_router_relays_total 1",
		"chet_router_sessions_opened_total 1",
		"chet_router_live_workers 2",
		"chet_router_trace_spans",
		"chet_router_trace_spans_dropped_total",
		"chet_router_worker_bootstraps_total{worker=",
		"chet_router_worker_relayed_total{worker=",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q:\n%s", series, body)
		}
	}

	// The first request's trace ID is deterministic: TraceBase()+1. The
	// merged trace must cover the router and the worker that evaluated it.
	traceURL := fmt.Sprintf("http://%s/trace?id=%016x", addrs[1], traceBase+1)
	trace := routerHTTPGet(t, traceURL, http.StatusOK)
	for _, want := range []string{
		`"traceEvents"`,
		`"process_name"`,
		"chet-router",
		fmt.Sprintf(`"trace_id":"%016x"`, traceBase+1),
		"relay:",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("/trace missing %q:\n%.2000s", want, trace)
		}
	}
	routerHTTPGet(t, fmt.Sprintf("http://%s/trace?id=zzz", addrs[1]), http.StatusBadRequest)

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

func routerHTTPGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}
