// chet-router fronts a fleet of chet-serve workers with one client-facing
// address. It speaks the ordinary wire protocol on both sides: clients
// connect to it exactly as they would to a single worker, and the router
// places each session on a worker via a consistent-hash ring (sessions are
// sticky — their evaluation keys live on the worker that admitted them).
// Worker failure is healed in place: the dead worker leaves the ring and
// affected sessions have their keys replayed to a survivor, so clients see
// a retried request, never an error.
//
// Usage:
//
//	chet-serve  -model LeNet-tiny -insecure -addr 127.0.0.1:7101 &
//	chet-serve  -model LeNet-tiny -insecure -addr 127.0.0.1:7102 &
//	chet-router -workers 127.0.0.1:7101,127.0.0.1:7102 -addr :7100
//
// Clients then serve.Dial the router's address. SIGINT or SIGTERM drains
// in-flight relays, then prints a fleet report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chet/internal/fleet"
)

// routerConfig holds everything main parses from flags, so the router loop
// is drivable from tests.
type routerConfig struct {
	addr          string
	workers       string // comma-separated chet-serve addresses
	replicas      int
	maxSessions   int
	probeInterval time.Duration
	probeTimeout  time.Duration
	probeFailures int
	relayAttempts int
	metricsAddr   string
	// logStructured emits slog lines (placements, relays, failovers, keyed
	// by trace_id) to stderr.
	logStructured bool
}

func buildRouter(w io.Writer, cfg routerConfig) (*fleet.Router, error) {
	var workers []string
	for _, a := range strings.Split(cfg.workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workers = append(workers, a)
		}
	}
	if len(workers) == 0 {
		return nil, errors.New("chet-router: -workers requires at least one address")
	}
	var logger *slog.Logger
	if cfg.logStructured {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	return fleet.New(fleet.Config{
		Workers:       workers,
		Replicas:      cfg.replicas,
		MaxSessions:   cfg.maxSessions,
		ProbeInterval: cfg.probeInterval,
		ProbeTimeout:  cfg.probeTimeout,
		ProbeFailures: cfg.probeFailures,
		RelayAttempts: cfg.relayAttempts,
		Logger:        logger,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
}

// run starts the router and blocks until a stop signal, then drains and
// reports metrics. onReady, when non-nil, receives the bound client-facing
// address and the bound observability address (nil unless -metrics-addr).
func run(w io.Writer, cfg routerConfig, stop <-chan os.Signal, onReady func(listen, metrics net.Addr)) error {
	r, err := buildRouter(w, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}

	var metricsAddr net.Addr
	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsAddr = mln.Addr()
		hs := &http.Server{Handler: r.ObservabilityMux()}
		go hs.Serve(mln)
		defer hs.Close()
		fmt.Fprintf(w, "chet-router: observability on http://%s (/metrics, /debug/pprof/)\n", metricsAddr)
	}
	if onReady != nil {
		onReady(ln.Addr(), metricsAddr)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- r.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Fprintf(w, "chet-router: %v received; draining in-flight relays\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			fmt.Fprintf(w, "chet-router: forced shutdown: %v\n", err)
		}
	case err := <-errCh:
		return err
	}
	reportMetrics(w, r.Metrics())
	return nil
}

func reportMetrics(w io.Writer, m fleet.RouterMetrics) {
	fmt.Fprintf(w, "chet-router: metrics\n")
	fmt.Fprintf(w, "  sessions: %d opened, %d evicted, %d active at shutdown\n",
		m.SessionsOpened, m.SessionsEvicted, m.SessionsActive)
	fmt.Fprintf(w, "  relays:   %d total, %d failovers, %d handoffs, %d unknown-session recoveries\n",
		m.Relays, m.Failovers, m.Handoffs, m.UnknownSessions)
	fmt.Fprintf(w, "  ring:     %d live workers, %d rebalances, %d probe failures\n",
		m.LiveWorkers, m.Rebalances, m.ProbeFailures)
	fmt.Fprintf(w, "  registry: %d models\n", m.RegistryModels)
	for _, wk := range m.Workers {
		state := "up"
		if !wk.Up {
			state = "down"
		}
		if wk.Draining {
			state += ", draining"
		}
		budget := ""
		if wk.Bootstraps > 0 || wk.HeadroomKnown {
			budget = fmt.Sprintf(", %d bootstraps", wk.Bootstraps)
			if wk.HeadroomKnown {
				budget += fmt.Sprintf(" (min headroom %d levels)", wk.MinHeadroom)
			}
		}
		fmt.Fprintf(w, "  worker %s (%s): %d relayed, %d handoffs, %d in flight%s\n",
			wk.Addr, state, wk.Relayed, wk.Handoffs, wk.Inflight, budget)
	}
}

func main() {
	log.SetFlags(0)
	cfg := routerConfig{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7100", "client-facing address to listen on")
	flag.StringVar(&cfg.workers, "workers", "", "comma-separated chet-serve worker addresses (required)")
	flag.IntVar(&cfg.replicas, "replicas", fleet.DefaultReplicas, "consistent-hash vnodes per worker")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 256, "router session-table cap (LRU eviction beyond it)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", 250*time.Millisecond, "health-probe cadence per worker")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", 2*time.Second, "deadline for one probe exchange")
	flag.IntVar(&cfg.probeFailures, "probe-failures", 3, "consecutive probe failures that remove a worker from the ring")
	flag.IntVar(&cfg.relayAttempts, "relay-attempts", 3, "workers one request may be tried against before the client sees an error")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address (empty disables)")
	flag.BoolVar(&cfg.logStructured, "log", false, "emit structured per-relay logs (trace_id-keyed slog lines) to stderr")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Stdout, cfg, stop, nil); err != nil {
		log.Fatal(err)
	}
}
