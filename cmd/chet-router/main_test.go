package main

import (
	"context"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"chet"
	"chet/internal/ring"
	"chet/internal/serve"
)

// TestRouterRoundTrip drives the whole binary path short of flag parsing:
// two in-process workers, the router in front, one encrypted inference
// through serve.Dial against the router, stop via the signal channel, and
// check the fleet report.
func TestRouterRoundTrip(t *testing.T) {
	m, err := chet.Model("LeNet-tiny")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := chet.Compile(m.Circuit, chet.Options{
		Scheme: chet.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 13,
	})
	if err != nil {
		t.Fatal(err)
	}

	var workerAddrs []string
	for i := 0; i < 2; i++ {
		s, err := serve.New(serve.Config{Compiled: comp, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		workerAddrs = append(workerAddrs, ln.Addr().String())
	}

	cfg := routerConfig{
		addr:          "127.0.0.1:0",
		workers:       strings.Join(workerAddrs, ", "),
		maxSessions:   16,
		probeInterval: 25 * time.Millisecond,
		metricsAddr:   "127.0.0.1:0",
	}
	var out strings.Builder
	var mu sync.Mutex
	logf := &lockedWriter{&mu, &out}
	ready := make(chan [2]net.Addr, 1)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(logf, cfg, stop, func(a, ma net.Addr) { ready <- [2]net.Addr{a, ma} })
	}()

	var addrs [2]net.Addr
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("router exited early: %v", err)
	}

	c, err := serve.Dial(addrs[0].String(), serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	img := chet.SyntheticImage(m.InputShape, 3)
	pred, err := c.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Circuit.Evaluate(img)
	if pred.ArgMax() != want.ArgMax() {
		t.Fatalf("encrypted argmax %d != plaintext %d", pred.ArgMax(), want.ArgMax())
	}
	c.Close()

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	mu.Lock()
	report := out.String()
	mu.Unlock()
	for _, want := range []string{"observability on http://", "draining in-flight relays", "sessions: 1 opened", "relays:   1 total", "2 live workers"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestBuildRouterRequiresWorkers(t *testing.T) {
	var out strings.Builder
	if _, err := buildRouter(&out, routerConfig{workers: " , "}); err == nil {
		t.Fatal("expected an error with no worker addresses")
	}
}

// lockedWriter serializes the router goroutine's log writes against the
// test's final read.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
