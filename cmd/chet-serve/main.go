// chet-serve runs the server side of CHET's deployment model (Figure 3 of
// the paper) as a long-running service: it compiles the named network once,
// then accepts client sessions that upload public evaluation keys and
// stream encrypted-inference requests. The server never holds a secret key,
// an image, or a prediction.
//
// Usage:
//
//	chet-serve -model LeNet-tiny -insecure                  # demo ring, fast
//	chet-serve -model LeNet-5-small -addr :7002 -workers 8
//	chet-serve -model LeNet-tiny -insecure -max-sessions 16 -queue-depth 32
//
// Clients connect with serve.Dial (see examples/clientserver). SIGINT or
// SIGTERM drains in-flight requests, then prints a metrics report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"chet"
	"chet/internal/serve"
)

// serveConfig holds everything main parses from flags, so the server loop
// is drivable from tests.
type serveConfig struct {
	addr           string
	model          string
	insecure       bool
	workers        int
	parallel       int
	maxSessions    int
	queueDepth     int
	requestTimeout time.Duration
	batch          int
	batchWait      time.Duration
	// batchAdaptive shrinks the coalescer's flush deadline as queue wait
	// grows relative to evaluation time; off, batchWait is a fixed deadline.
	batchAdaptive bool
	// metricsAddr, when non-empty, serves /metrics (Prometheus text) and
	// /debug/pprof/* on a second listener.
	metricsAddr string
	// trace wraps each session's backend in a telemetry tracer: per-op
	// duration series on /metrics and trace-ID-correlated dispatch logs.
	trace bool
	// processLabel names this worker in merged cross-process traces; empty
	// lets trace collectors label it by address.
	processLabel string
	// logStructured emits slog lines (dispatches, completions, failures,
	// keyed by trace_id) to stderr.
	logStructured bool
}

// buildServer compiles the model and constructs the engine.
func buildServer(w io.Writer, cfg serveConfig) (*serve.Server, *chet.Compiled, error) {
	m, err := chet.Model(cfg.model)
	if err != nil {
		return nil, nil, err
	}
	// Serving is RNS-CKKS only: the HEAAN mock has no transferable keys.
	opts := chet.Options{Scheme: chet.SchemeRNS}
	if cfg.insecure {
		opts.SecurityBits = -1
		opts.MinLogN = 11
		opts.MaxLogN = 13
	}
	if cfg.batch == 0 {
		// Auto-size: the largest power-of-two batch (up to 16) that fits the
		// unbatched ring, so batching never costs parameter growth.
		b, err := chet.SelectBatchCapacity(m.Circuit, opts, 16)
		if err != nil {
			return nil, nil, err
		}
		cfg.batch = b
		fmt.Fprintf(w, "chet-serve: auto-selected batch capacity %d\n", b)
	}
	opts.Batch = cfg.batch
	start := time.Now()
	comp, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "chet-serve: compiled %s in %v (N=2^%d, %d rotation keys per session, batch capacity %d)\n",
		m.Name, time.Since(start).Round(time.Millisecond), comp.Best.LogN, len(comp.Best.Rotations), comp.Best.Batch)
	s, err := serve.New(serve.Config{
		Compiled:       comp,
		MaxSessions:    cfg.maxSessions,
		QueueDepth:     cfg.queueDepth,
		RequestTimeout: cfg.requestTimeout,
		Workers:        cfg.workers,
		Parallel:       cfg.parallel,
		MaxBatch:       cfg.batch,
		BatchWait:      cfg.batchWait,
		BatchAdaptive:  cfg.batchAdaptive,
		Trace:          cfg.trace,
		ProcessLabel:   cfg.processLabel,
		Logger:         structuredLogger(cfg.logStructured),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return s, comp, nil
}

// structuredLogger builds the slog sink for per-request events: stderr at
// debug level when enabled (every dispatch and completion carries its
// trace_id, correlating log lines with the distributed trace), nil otherwise
// (the engine falls back to its discard default).
func structuredLogger(enabled bool) *slog.Logger {
	if !enabled {
		return nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// run starts the server and blocks until a stop signal, then drains and
// reports metrics. onReady, when non-nil, receives the bound inference
// address and the bound observability address (nil unless -metrics-addr).
func run(w io.Writer, cfg serveConfig, stop <-chan os.Signal, onReady func(listen, metrics net.Addr)) error {
	s, comp, err := buildServer(w, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "chet-serve: circuit fingerprint %s\n", comp.FingerprintHex()[:16])

	var metricsAddr net.Addr
	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsAddr = mln.Addr()
		hs := &http.Server{Handler: s.ObservabilityMux()}
		go hs.Serve(mln)
		defer hs.Close()
		fmt.Fprintf(w, "chet-serve: observability on http://%s (/metrics, /debug/pprof/)\n", metricsAddr)
	}
	if onReady != nil {
		onReady(ln.Addr(), metricsAddr)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Fprintf(w, "chet-serve: %v received; draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(w, "chet-serve: forced shutdown: %v\n", err)
		}
	case err := <-errCh:
		return err
	}
	reportMetrics(w, s.Metrics())
	return nil
}

func reportMetrics(w io.Writer, m serve.ServerMetrics) {
	fmt.Fprintf(w, "chet-serve: metrics\n")
	fmt.Fprintf(w, "  sessions: %d opened, %d evicted, %d active at shutdown\n",
		m.SessionsOpened, m.SessionsEvicted, m.SessionsActive)
	fmt.Fprintf(w, "  requests: %d admitted, %d completed, %d failed\n",
		m.Requests, m.Completed, m.Errors)
	fmt.Fprintf(w, "  rejected: %d queue-full, %d deadline, %d shutting-down\n",
		m.RejectedQueueFull, m.RejectedDeadline, m.RejectedShutdown)
	if m.Latency.Count > 0 {
		fmt.Fprintf(w, "  latency:  p50 %v, p90 %v, p99 %v\n",
			m.Latency.P50.Round(time.Millisecond), m.Latency.P90.Round(time.Millisecond),
			m.Latency.P99.Round(time.Millisecond))
		fmt.Fprintf(w, "  queue-wait: p50 %v, p90 %v, p99 %v\n",
			m.QueueWait.P50.Round(time.Millisecond), m.QueueWait.P90.Round(time.Millisecond),
			m.QueueWait.P99.Round(time.Millisecond))
		fmt.Fprintf(w, "  evaluation: %d executions, p50 %v, p90 %v, p99 %v\n",
			m.Evaluation.Count,
			m.Evaluation.P50.Round(time.Millisecond), m.Evaluation.P90.Round(time.Millisecond),
			m.Evaluation.P99.Round(time.Millisecond))
	}
	sizes := make([]int, 0, len(m.BatchSizes))
	for size := range m.BatchSizes {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		fmt.Fprintf(w, "  batches of %d: %d evaluations\n", size, m.BatchSizes[size])
	}
	if m.Bootstraps > 0 || m.HeadroomKnown {
		fmt.Fprintf(w, "  budget:   %d bootstrap refreshes", m.Bootstraps)
		if m.HeadroomKnown {
			fmt.Fprintf(w, ", min headroom %d levels above the refresh floor", m.MinHeadroom)
		}
		fmt.Fprintln(w)
	}
	for _, sm := range m.Sessions {
		fmt.Fprintf(w, "  session %d: %d requests, %d errors, %d HISA ops (%d rotations, %d ct-ct muls)\n",
			sm.ID, sm.Requests, sm.Errors, sm.Ops.Total(), sm.Ops.Rotations, sm.Ops.Mul)
	}
}

func main() {
	log.SetFlags(0)
	cfg := serveConfig{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7002", "address to listen on")
	flag.StringVar(&cfg.model, "model", "LeNet-tiny", "network to serve")
	flag.BoolVar(&cfg.insecure, "insecure", false, "use a small demo ring without the security check")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "worker-pool size per inference (default: one per CPU)")
	flag.IntVar(&cfg.parallel, "parallel", 1, "inferences evaluated concurrently")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 64, "session-registry cap (LRU eviction beyond it)")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 64, "admission-queue depth (requests beyond it are rejected)")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 60*time.Second, "default per-request deadline")
	flag.IntVar(&cfg.batch, "batch", 1, "batch capacity: coalesce up to this many same-session requests per evaluation (1 disables, 0 auto-selects up to 16)")
	flag.DurationVar(&cfg.batchWait, "batch-wait", 20*time.Millisecond, "how long a partial batch waits for more requests before evaluating")
	flag.BoolVar(&cfg.batchAdaptive, "batch-adaptive", false, "scale the batch wait down as queue pressure rises (batch-wait becomes the ceiling)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address (empty disables)")
	flag.BoolVar(&cfg.trace, "trace", false, "trace session backends: per-op durations on /metrics, trace-ID dispatch logs")
	flag.StringVar(&cfg.processLabel, "process-label", "", "name for this worker in merged cross-process traces (empty: labeled by address)")
	flag.BoolVar(&cfg.logStructured, "log", false, "emit structured per-request logs (trace_id-keyed slog lines) to stderr")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Stdout, cfg, stop, nil); err != nil {
		log.Fatal(err)
	}
}
