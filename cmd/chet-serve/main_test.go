package main

import (
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"chet"
	"chet/internal/ring"
	"chet/internal/serve"
)

// TestServeRoundTrip drives the whole binary path short of flag parsing:
// start the server on a demo ring, run one encrypted inference through
// serve.Dial, stop via the signal channel, and check the metrics report.
func TestServeRoundTrip(t *testing.T) {
	cfg := serveConfig{
		addr:           "127.0.0.1:0",
		model:          "LeNet-tiny",
		insecure:       true,
		workers:        2,
		parallel:       1,
		maxSessions:    4,
		queueDepth:     4,
		requestTimeout: time.Minute,
		batch:          1, // the flag default; 0 would auto-select a batched compile
	}
	var out strings.Builder
	ready := make(chan net.Addr, 1)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var mu sync.Mutex
	logf := lockedWriter{&mu, &out}
	go func() { done <- run(&logf, cfg, stop, func(a, _ net.Addr) { ready <- a }) }()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}

	m, err := chet.Model(cfg.model)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := chet.Compile(m.Circuit, chet.Options{
		Scheme: chet.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := serve.Dial(addr.String(), serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	img := chet.SyntheticImage(m.InputShape, 3)
	pred, err := c.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Circuit.Evaluate(img)
	if pred.ArgMax() != want.ArgMax() {
		t.Fatalf("encrypted argmax %d != plaintext %d", pred.ArgMax(), want.ArgMax())
	}
	c.Close()

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	mu.Lock()
	report := out.String()
	mu.Unlock()
	for _, want := range []string{"circuit fingerprint", "draining", "sessions: 1 opened", "1 completed"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestBuildServerRejectsUnknownModel(t *testing.T) {
	var out strings.Builder
	if _, _, err := buildServer(&out, serveConfig{model: "nope"}); err == nil {
		t.Fatal("expected an error for an unknown model")
	}
}

// lockedWriter serializes the server goroutine's log writes against the
// test's final read.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
