package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chet"
	"chet/internal/ring"
	"chet/internal/serve"
)

// TestObservabilityEndpoints runs the binary path with -metrics-addr and
// -trace: one encrypted inference through the live server, then scrapes
// /metrics (checking the exposition parses and the expected series moved)
// and a short CPU profile from /debug/pprof/.
func TestObservabilityEndpoints(t *testing.T) {
	cfg := serveConfig{
		addr:           "127.0.0.1:0",
		model:          "LeNet-tiny",
		insecure:       true,
		workers:        2,
		parallel:       1,
		maxSessions:    4,
		queueDepth:     4,
		requestTimeout: time.Minute,
		batch:          1,
		metricsAddr:    "127.0.0.1:0",
		trace:          true,
	}
	var out strings.Builder
	type addrs struct{ listen, metrics net.Addr }
	ready := make(chan addrs, 1)
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var mu sync.Mutex
	logf := lockedWriter{&mu, &out}
	go func() {
		done <- run(&logf, cfg, stop, func(a, m net.Addr) { ready <- addrs{a, m} })
	}()

	var a addrs
	select {
	case a = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}
	if a.metrics == nil {
		t.Fatal("onReady delivered no metrics address despite -metrics-addr")
	}

	m, err := chet.Model(cfg.model)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := chet.Compile(m.Circuit, chet.Options{
		Scheme: chet.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := serve.Dial(a.listen.String(), serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	img := chet.SyntheticImage(m.InputShape, 3)
	if _, err := c.Run(img); err != nil {
		t.Fatal(err)
	}
	c.Close()

	body := httpGet(t, fmt.Sprintf("http://%s/metrics", a.metrics))
	checkPromExposition(t, body)
	for _, series := range []string{
		"chet_requests_total 1",
		"chet_requests_completed_total 1",
		"chet_request_seconds_count 1",
		"chet_queue_wait_seconds_count 1",
		"chet_evaluation_seconds_count 1",
		`chet_request_seconds{quantile="0.5"}`,
		`chet_hisa_ops_total{op="rot"}`,
		`chet_hisa_op_seconds_total{op="mulplain"}`,
		`chet_hisa_op_spans_total{op="rescale"}`,
		// No bootstrap plan at this depth, so the refresh tally is present
		// and zero; headroom and per-session series are bootstrap-gated.
		"chet_bootstrap_refreshes_total 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q:\n%s", series, body)
		}
	}

	prof := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", a.metrics))
	if len(prof) == 0 {
		t.Error("empty pprof CPU profile")
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatalf("run returned %v", err)
	}
	mu.Lock()
	report := out.String()
	mu.Unlock()
	if !strings.Contains(report, "trace=") {
		t.Errorf("server log has no trace-ID dispatch line:\n%s", report)
	}
	if !strings.Contains(report, "observability on http://") {
		t.Errorf("server log does not announce the observability address:\n%s", report)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// checkPromExposition validates the text exposition line by line: every
// non-comment line must be `name[{labels}] value` with a parseable float
// value, and every series must be preceded by a TYPE comment.
func checkPromExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE comment %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				// The space before the value split the label set.
				j := strings.LastIndex(line, "} ")
				if j < 0 {
					t.Fatalf("malformed labeled series %q", line)
				}
				name, rest = line[:j+1], line[j+2:]
			}
			name = name[:strings.IndexByte(name, '{')]
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			t.Fatalf("series %q has unparseable value %q: %v", name, rest, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("series %q has no preceding TYPE comment", name)
		}
	}
}
