// chet-run performs end-to-end encrypted inference: it compiles a network,
// generates keys, encrypts a synthetic image, evaluates the optimized
// homomorphic tensor circuit, decrypts the prediction, and reports fidelity
// against unencrypted inference.
//
// Usage:
//
//	chet-run -model LeNet-tiny -scheme seal -insecure   # real lattice crypto, small ring
//	chet-run -model LeNet-5-small -scheme heaan         # CKKS mock, secure parameters
//	chet-run -model LeNet-tiny -scheme seal -insecure -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"chet"
	"chet/internal/ring"
	"chet/internal/telemetry"
)

// runConfig holds everything main parses from flags, so inference is
// drivable from tests.
type runConfig struct {
	model    string
	scheme   string
	seed     uint64
	images   int
	insecure bool
	workers  int
	// tracePath, when set, wraps the session backend in a telemetry.Tracer
	// and writes the recorded spans as Chrome trace_event JSON there.
	tracePath string
	// profile runs the per-layer precision profiler (a plaintext oracle in
	// lockstep) after inference and prints its report.
	profile bool
}

// runInference compiles, keys, and runs encrypted inference, writing the
// human-readable report to w.
func runInference(w io.Writer, cfg runConfig) error {
	m, err := chet.Model(cfg.model)
	if err != nil {
		return err
	}
	opts := chet.Options{}
	switch strings.ToLower(cfg.scheme) {
	case "seal", "rns", "rns-ckks":
		opts.Scheme = chet.SchemeRNS
	case "heaan", "ckks":
		opts.Scheme = chet.SchemeCKKS
	default:
		return fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	if cfg.insecure {
		opts.SecurityBits = -1
		opts.MinLogN = 11
		opts.MaxLogN = 13
	}

	start := time.Now()
	compiled, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled %s in %v\n", m.Name, time.Since(start).Round(time.Millisecond))
	fmt.Fprint(w, chet.Describe(compiled))

	start = time.Now()
	session, err := chet.NewSession(compiled, ring.NewTestPRNG(0xD15EA5E))
	if err != nil {
		return err
	}
	session.Workers = cfg.workers
	fmt.Fprintf(w, "key generation: %v (inference workers: %d)\n",
		time.Since(start).Round(time.Millisecond), cfg.workers)

	var tracer *telemetry.Tracer
	if cfg.tracePath != "" {
		tracer = telemetry.NewTracer(session.Backend, telemetry.Config{})
		session.Backend = tracer
	}

	var inferWall time.Duration
	for i := 0; i < cfg.images; i++ {
		img := chet.SyntheticImage(m.InputShape, cfg.seed+uint64(i))
		want := m.Circuit.Evaluate(img)

		start = time.Now()
		enc := session.Encrypt(img)
		encTime := time.Since(start)

		start = time.Now()
		out := session.Infer(enc)
		inferTime := time.Since(start)
		inferWall += inferTime

		got := session.Decrypt(out)
		maxErr := 0.0
		for j := range want.Data {
			if e := math.Abs(got.Data[j] - want.Data[j]); e > maxErr {
				maxErr = e
			}
		}
		agree := "AGREE"
		if got.ArgMax() != want.ArgMax() {
			agree = "DISAGREE"
		}
		fmt.Fprintf(w, "image %d: encrypt %v, inference %v, max |err| %.2e, argmax %s (class %d)\n",
			i, encTime.Round(time.Millisecond), inferTime.Round(time.Millisecond),
			maxErr, agree, got.ArgMax())
	}

	if tracer != nil {
		prof := tracer.Profile()
		fmt.Fprint(w, telemetry.RenderProfile(prof))
		if err := writeTrace(cfg.tracePath, tracer, inferWall, prof); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %d spans (%d dropped) -> %s; kernel scopes cover %v of %v inference wall\n",
			tracer.SpanCount(), tracer.Dropped(), cfg.tracePath,
			prof.ScopeTotal.Round(time.Millisecond), inferWall.Round(time.Millisecond))
	}
	if cfg.profile {
		rows := telemetry.PrecisionProfile(session.Backend, compiled.Circuit,
			chet.SyntheticImage(m.InputShape, cfg.seed),
			compiled.Best.Policy, compiled.Options.Scales, cfg.workers)
		fmt.Fprint(w, telemetry.RenderPrecision(rows))
	}
	return nil
}

// writeTrace dumps the tracer's spans as Chrome trace_event JSON
// (chrome://tracing, Perfetto). The wall/scope totals ride along in
// otherData so tooling can check span coverage without re-deriving it.
func writeTrace(path string, tracer *telemetry.Tracer, wall time.Duration, prof telemetry.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	defer f.Close()
	other := map[string]any{
		"inferWallUS":  wall.Microseconds(),
		"scopeTotalUS": prof.ScopeTotal.Microseconds(),
	}
	if err := telemetry.WriteChromeTrace(f, tracer.Snapshot(), other); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	cfg := runConfig{}
	flag.StringVar(&cfg.model, "model", "LeNet-tiny", "network to run")
	flag.StringVar(&cfg.scheme, "scheme", "heaan", "target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)")
	flag.Uint64Var(&cfg.seed, "seed", 7, "synthetic image seed")
	flag.IntVar(&cfg.images, "images", 1, "number of images to infer")
	flag.BoolVar(&cfg.insecure, "insecure", false, "use a small demo ring without the security check (fast real-crypto runs)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "worker-pool size for inference (default: one per CPU)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write per-op spans as Chrome trace_event JSON to this file")
	flag.BoolVar(&cfg.profile, "profile", false, "run the per-layer precision profiler (plaintext oracle in lockstep) and print its report")
	flag.Parse()

	if err := runInference(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
}
