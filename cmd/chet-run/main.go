// chet-run performs end-to-end encrypted inference: it compiles a network,
// generates keys, encrypts a synthetic image, evaluates the optimized
// homomorphic tensor circuit, decrypts the prediction, and reports fidelity
// against unencrypted inference.
//
// Usage:
//
//	chet-run -model LeNet-tiny -scheme seal -insecure   # real lattice crypto, small ring
//	chet-run -model LeNet-5-small -scheme heaan         # CKKS mock, secure parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"chet"
	"chet/internal/ring"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "LeNet-tiny", "network to run")
	scheme := flag.String("scheme", "heaan", "target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)")
	seed := flag.Uint64("seed", 7, "synthetic image seed")
	images := flag.Int("images", 1, "number of images to infer")
	insecure := flag.Bool("insecure", false, "use a small demo ring without the security check (fast real-crypto runs)")
	flag.Parse()

	m, err := chet.Model(*model)
	if err != nil {
		log.Fatal(err)
	}
	opts := chet.Options{}
	switch strings.ToLower(*scheme) {
	case "seal", "rns", "rns-ckks":
		opts.Scheme = chet.SchemeRNS
	case "heaan", "ckks":
		opts.Scheme = chet.SchemeCKKS
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	if *insecure {
		opts.SecurityBits = -1
		opts.MinLogN = 11
		opts.MaxLogN = 13
	}

	start := time.Now()
	compiled, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s in %v\n", m.Name, time.Since(start).Round(time.Millisecond))
	fmt.Print(chet.Describe(compiled))

	start = time.Now()
	session, err := chet.NewSession(compiled, ring.NewTestPRNG(0xD15EA5E))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key generation: %v\n", time.Since(start).Round(time.Millisecond))

	for i := 0; i < *images; i++ {
		img := chet.SyntheticImage(m.InputShape, *seed+uint64(i))
		want := m.Circuit.Evaluate(img)

		start = time.Now()
		enc := session.Encrypt(img)
		encTime := time.Since(start)

		start = time.Now()
		out := session.Infer(enc)
		inferTime := time.Since(start)

		got := session.Decrypt(out)
		maxErr := 0.0
		for j := range want.Data {
			if e := math.Abs(got.Data[j] - want.Data[j]); e > maxErr {
				maxErr = e
			}
		}
		agree := "AGREE"
		if got.ArgMax() != want.ArgMax() {
			agree = "DISAGREE"
		}
		fmt.Printf("image %d: encrypt %v, inference %v, max |err| %.2e, argmax %s (class %d)\n",
			i, encTime.Round(time.Millisecond), inferTime.Round(time.Millisecond),
			maxErr, agree, got.ArgMax())
	}
}
