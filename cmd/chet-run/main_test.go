package main

import (
	"strings"
	"testing"
)

// TestRunInferenceSmoke runs the full CLI path (compile, keygen, encrypt,
// infer, decrypt) on the demo network for both schemes, with a parallel
// worker pool.
func TestRunInferenceSmoke(t *testing.T) {
	for _, scheme := range []string{"heaan", "seal"} {
		t.Run(scheme, func(t *testing.T) {
			if testing.Short() && scheme == "seal" {
				t.Skip("real lattice crypto; run without -short")
			}
			var sb strings.Builder
			err := runInference(&sb, runConfig{
				model:    "LeNet-tiny",
				scheme:   scheme,
				seed:     7,
				images:   1,
				insecure: true,
				workers:  2,
			})
			if err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range []string{"compiled LeNet-tiny", "best layout policy", "image 0:", "argmax AGREE"} {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRunInferenceBadInputs exercises the error paths main surfaces.
func TestRunInferenceBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := runInference(&sb, runConfig{model: "no-such-net", scheme: "heaan"}); err == nil {
		t.Fatal("expected an error for an unknown model")
	}
	if err := runInference(&sb, runConfig{model: "LeNet-tiny", scheme: "bfv"}); err == nil {
		t.Fatal("expected an error for an unknown scheme")
	}
}
