package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceFlagWritesValidChromeTrace runs the MNIST demo network with
// -trace and -profile and checks the acceptance criteria: the file is valid
// Chrome trace_event JSON, and the kernel-scope span total covers the
// inference wall time to within ±10% (the executor's node loop is serial,
// so scopes tile the run).
func TestTraceFlagWritesValidChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	err := runInference(&sb, runConfig{
		model:     "LeNet-tiny",
		scheme:    "heaan",
		seed:      7,
		images:    1,
		insecure:  true,
		workers:   2,
		tracePath: path,
		profile:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"per-op profile", "per-kernel profile", "trace:", "per-layer precision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]float64 `json:"otherData"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace holds no events")
	}
	ops, kernels := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		switch e.Cat {
		case "op":
			ops++
		case "kernel":
			kernels++
		default:
			t.Fatalf("event %q has unknown category %q", e.Name, e.Cat)
		}
	}
	if ops == 0 || kernels == 0 {
		t.Fatalf("trace split ops=%d kernels=%d; want both populated", ops, kernels)
	}

	wall := doc.OtherData["inferWallUS"]
	scoped := doc.OtherData["scopeTotalUS"]
	if wall <= 0 || scoped <= 0 {
		t.Fatalf("otherData missing totals: %v", doc.OtherData)
	}
	if ratio := scoped / wall; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("kernel scopes cover %.1f%% of the inference wall; want within ±10%%", ratio*100)
	}
}
