package main

import (
	"strings"
	"testing"
)

// TestCompileAndDescribeSmoke compiles the demo network for both schemes
// and checks the decision report is rendered, including the T-thread cost
// model banner.
func TestCompileAndDescribeSmoke(t *testing.T) {
	for _, scheme := range []string{"seal", "heaan"} {
		var sb strings.Builder
		err := compileAndDescribe(&sb, compileConfig{
			model:       "LeNet-tiny",
			scheme:      scheme,
			security:    -1,
			showKeys:    true,
			costThreads: 16,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		out := sb.String()
		for _, want := range []string{"best layout policy", "rotation keys", "16-thread makespan"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: output missing %q:\n%s", scheme, want, out)
			}
		}
	}
}

func TestCompileAndDescribeErrors(t *testing.T) {
	var sb strings.Builder
	if err := compileAndDescribe(&sb, compileConfig{model: "nope", scheme: "seal"}); err == nil {
		t.Fatal("expected an error for an unknown model")
	}
	if err := compileAndDescribe(&sb, compileConfig{model: "LeNet-tiny", scheme: "bgv"}); err == nil {
		t.Fatal("expected an error for an unknown scheme")
	}
	if _, err := parseScales("40,35,35"); err == nil {
		t.Fatal("expected an error for three exponents")
	}
	if _, err := parseScales("40,35,x,30"); err == nil {
		t.Fatal("expected an error for a non-numeric exponent")
	}
}
