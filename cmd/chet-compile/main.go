// chet-compile runs the CHET compiler on one of the evaluation networks and
// reports every decision it makes: the chosen data layout, the encryption
// parameters (ring degree, modulus, RNS chain), the rotation-key set, and
// the per-policy cost estimates.
//
// Usage:
//
//	chet-compile -model LeNet-5-small -scheme seal
//	chet-compile -model SqueezeNet-CIFAR -scheme heaan -security 128
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"chet"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "LeNet-5-small",
		"network to compile (LeNet-5-small, LeNet-5-medium, LeNet-5-large, Industrial, SqueezeNet-CIFAR, LeNet-tiny)")
	scheme := flag.String("scheme", "seal", "target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)")
	security := flag.Int("security", 128, "security level in bits (128/192/256; -1 disables the check)")
	scales := flag.String("scales", "", "fixed-point scale exponents as Pc,Pw,Pu,Pm (e.g. 40,35,35,30); empty = defaults")
	showKeys := flag.Bool("keys", false, "print the full rotation-key list")
	flag.Parse()

	m, err := chet.Model(*model)
	if err != nil {
		log.Fatal(err)
	}
	opts := chet.Options{SecurityBits: *security}
	switch strings.ToLower(*scheme) {
	case "seal", "rns", "rns-ckks":
		opts.Scheme = chet.SchemeRNS
	case "heaan", "ckks":
		opts.Scheme = chet.SchemeCKKS
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	if *scales != "" {
		sc, err := parseScales(*scales)
		if err != nil {
			log.Fatal(err)
		}
		opts.Scales = sc
	}

	compiled, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chet.Describe(compiled))
	if *showKeys {
		fmt.Printf("rotation keys (%d): %v\n", len(compiled.Best.Rotations), compiled.Best.Rotations)
	}
	os.Exit(0)
}

func parseScales(s string) (chet.Scales, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return chet.Scales{}, fmt.Errorf("want 4 comma-separated exponents, got %q", s)
	}
	exps := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return chet.Scales{}, fmt.Errorf("bad exponent %q: %w", p, err)
		}
		exps[i] = float64(int64(1) << uint(v))
	}
	return chet.Scales{Pc: exps[0], Pw: exps[1], Pu: exps[2], Pm: exps[3]}, nil
}
