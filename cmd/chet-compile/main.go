// chet-compile runs the CHET compiler on one of the evaluation networks and
// reports every decision it makes: the chosen data layout, the encryption
// parameters (ring degree, modulus, RNS chain), the rotation-key set, and
// the per-policy cost estimates.
//
// Usage:
//
//	chet-compile -model LeNet-5-small -scheme seal
//	chet-compile -model SqueezeNet-CIFAR -scheme heaan -security 128
//	chet-compile -model LeNet-5-small -scheme seal -costthreads 16
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"chet"
)

// compileConfig holds everything main parses from flags.
type compileConfig struct {
	model       string
	scheme      string
	security    int
	scales      string
	showKeys    bool
	costThreads int
}

// compileAndDescribe runs the compiler and writes the decision report to w.
func compileAndDescribe(w io.Writer, cfg compileConfig) error {
	m, err := chet.Model(cfg.model)
	if err != nil {
		return err
	}
	opts := chet.Options{SecurityBits: cfg.security, CostThreads: cfg.costThreads}
	switch strings.ToLower(cfg.scheme) {
	case "seal", "rns", "rns-ckks":
		opts.Scheme = chet.SchemeRNS
	case "heaan", "ckks":
		opts.Scheme = chet.SchemeCKKS
	default:
		return fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	if cfg.scales != "" {
		sc, err := parseScales(cfg.scales)
		if err != nil {
			return err
		}
		opts.Scales = sc
	}

	compiled, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		return err
	}
	if cfg.costThreads > 1 {
		fmt.Fprintf(w, "cost model: %d-thread makespan (LPT binning)\n", cfg.costThreads)
	}
	fmt.Fprint(w, chet.Describe(compiled))
	if cfg.showKeys {
		fmt.Fprintf(w, "rotation keys (%d): %v\n", len(compiled.Best.Rotations), compiled.Best.Rotations)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	cfg := compileConfig{}
	flag.StringVar(&cfg.model, "model", "LeNet-5-small",
		"network to compile (LeNet-5-small, LeNet-5-medium, LeNet-5-large, Industrial, SqueezeNet-CIFAR, LeNet-tiny)")
	flag.StringVar(&cfg.scheme, "scheme", "seal", "target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)")
	flag.IntVar(&cfg.security, "security", 128, "security level in bits (128/192/256; -1 disables the check)")
	flag.StringVar(&cfg.scales, "scales", "", "fixed-point scale exponents as Pc,Pw,Pu,Pm (e.g. 40,35,35,30); empty = defaults")
	flag.BoolVar(&cfg.showKeys, "keys", false, "print the full rotation-key list")
	flag.IntVar(&cfg.costThreads, "costthreads", 1,
		"T in the T-thread cost model: estimates become the makespan over T threads (1 = serial sum)")
	flag.Parse()

	if err := compileAndDescribe(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
}

func parseScales(s string) (chet.Scales, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return chet.Scales{}, fmt.Errorf("want 4 comma-separated exponents, got %q", s)
	}
	exps := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return chet.Scales{}, fmt.Errorf("bad exponent %q: %w", p, err)
		}
		exps[i] = float64(int64(1) << uint(v))
	}
	return chet.Scales{Pc: exps[0], Pw: exps[1], Pu: exps[2], Pm: exps[3]}, nil
}
