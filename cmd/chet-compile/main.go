// chet-compile runs the CHET compiler on one of the evaluation networks and
// reports every decision it makes: the chosen data layout, the encryption
// parameters (ring degree, modulus, RNS chain), the rotation-key set, and
// the per-policy cost estimates.
//
// Usage:
//
//	chet-compile -model LeNet-5-small -scheme seal
//	chet-compile -model SqueezeNet-CIFAR -scheme heaan -security 128
//	chet-compile -model LeNet-5-small -scheme seal -costthreads 16
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"chet"
)

// compileConfig holds everything main parses from flags.
type compileConfig struct {
	model       string
	scheme      string
	security    int
	scales      string
	showKeys    bool
	costThreads int
	batch       int
	complex     bool
	scaleMode   string
	explain     bool
	bootstrap   int
}

// compileAndDescribe runs the compiler and writes the decision report to w.
func compileAndDescribe(w io.Writer, cfg compileConfig) error {
	m, err := chet.Model(cfg.model)
	if err != nil {
		return err
	}
	opts := chet.Options{
		SecurityBits: cfg.security,
		CostThreads:  cfg.costThreads,
		Batch:        cfg.batch,
		Complex:      cfg.complex,
	}
	switch strings.ToLower(cfg.scheme) {
	case "seal", "rns", "rns-ckks":
		opts.Scheme = chet.SchemeRNS
	case "heaan", "ckks":
		opts.Scheme = chet.SchemeCKKS
	default:
		return fmt.Errorf("unknown scheme %q", cfg.scheme)
	}
	switch strings.ToLower(cfg.scaleMode) {
	case "", "greedy":
		opts.ScaleMode = chet.ScaleGreedy
	case "lazy":
		opts.ScaleMode = chet.ScaleLazy
	default:
		return fmt.Errorf("unknown scale mode %q (want greedy or lazy)", cfg.scaleMode)
	}
	if cfg.scales != "" {
		sc, err := parseScales(cfg.scales)
		if err != nil {
			return err
		}
		opts.Scales = sc
	}
	if cfg.bootstrap > 0 {
		opts.Bootstrap = &chet.BootstrapOptions{Window: cfg.bootstrap}
	}

	compiled, err := chet.Compile(m.Circuit, opts)
	if err != nil {
		return err
	}
	if cfg.costThreads > 1 {
		fmt.Fprintf(w, "cost model: %d-thread makespan (LPT binning)\n", cfg.costThreads)
	}
	fmt.Fprint(w, chet.Describe(compiled))
	if cfg.showKeys {
		fmt.Fprintf(w, "rotation keys (%d): %v\n", len(compiled.Best.Rotations), compiled.Best.Rotations)
	}
	if cfg.explain {
		explainScale(w, compiled)
		if compiled.BootPlan != nil {
			explainBootstrap(w, compiled)
		}
	}
	return nil
}

// explainBootstrap renders the bootstrap-placement pass's plan: the spec the
// chain was shaped around, then one row per refresh site with the ciphertext
// level the placement model saw before and after the refresh and the
// estimated cost of that bootstrap.
func explainBootstrap(w io.Writer, compiled *chet.Compiled) {
	p := compiled.BootPlan
	fmt.Fprintf(w, "bootstrap-placement pass: %d placements, window %d, floor %d\n",
		len(p.Placements), p.Window, p.Floor)
	fmt.Fprintf(w, "  pipeline: depth %d (sine degree %d, K=%d, %d double-angles), fresh level %d\n",
		p.Depth, p.Spec.Degree, p.Spec.K, p.Spec.DoubleAngles, p.FreshLevel)
	fmt.Fprintf(w, "  %4s  %-28s %-10s  %6s  %5s  %10s\n",
		"site", "node", "op", "before", "after", "est ms")
	for _, pl := range p.Placements {
		name := pl.Name
		if name == "" {
			name = fmt.Sprintf("node %d", pl.Node)
		}
		fmt.Fprintf(w, "  %4d  %-28s %-10s  %6d  %5d  %10.1f\n",
			pl.Index, name, pl.Op, pl.LevelBefore, pl.LevelAfter, pl.Cost/1000)
	}
	fmt.Fprintf(w, "  total refresh estimate: %.1f ms\n", p.EstCost/1000)
}

// explainScale renders the scale-management pass's per-site trace: one row
// per kernel reduce site with the site's RNS level (or "-" under CKKS, whose
// modulus is not a prime chain), the live scale entering the site, the
// modulus already consumed, and the defer/rescale decision — followed by the
// per-node relinearization counts.
func explainScale(w io.Writer, compiled *chet.Compiled) {
	r := compiled.ScaleReport
	if r == nil {
		fmt.Fprintln(w, "no scale report recorded")
		return
	}
	fmt.Fprintf(w, "scale-management pass (%v): %d sites, %d deferred, %d rescaled\n",
		r.Mode, len(r.Sites), r.Deferred, r.Rescaled)
	fmt.Fprintf(w, "  peak log2(Q) %.1f, budget %.1f", r.PeakLogQ, r.Budget)
	if r.Dropped {
		fmt.Fprint(w, "  [plan DROPPED: budget exceeded; runtime falls back to greedy]")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %4s  %-28s %5s  %11s  %8s  %s\n",
		"site", "node", "level", "log2(scale)", "consumed", "decision")
	for i, s := range r.Sites {
		lvl := "-"
		if s.Level >= 0 {
			lvl = strconv.Itoa(s.Level)
		}
		fmt.Fprintf(w, "  %4d  %-28s %5s  %11.1f  %8.1f  %v\n",
			i, s.Name, lvl, s.LogScale, s.Consumed, s.Decision)
	}
	if len(r.Relins) > 0 {
		nodes := make([]int, 0, len(r.Relins))
		for id := range r.Relins {
			nodes = append(nodes, id)
		}
		sort.Ints(nodes)
		names := map[int]string{}
		for _, s := range r.Sites {
			names[s.Node] = s.Name
		}
		fmt.Fprintln(w, "relinearizations (ct-ct multiplications) by node:")
		for _, id := range nodes {
			name := names[id]
			if name == "" {
				name = fmt.Sprintf("node %d", id)
			}
			fmt.Fprintf(w, "  %-28s %d\n", name, r.Relins[id])
		}
	}
}

func main() {
	log.SetFlags(0)
	cfg := compileConfig{}
	flag.StringVar(&cfg.model, "model", "LeNet-5-small",
		"network to compile (LeNet-5-small, LeNet-5-medium, LeNet-5-large, Industrial, SqueezeNet-CIFAR, LeNet-tiny, NN-20)")
	flag.StringVar(&cfg.scheme, "scheme", "seal", "target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)")
	flag.IntVar(&cfg.security, "security", 128, "security level in bits (128/192/256; -1 disables the check)")
	flag.StringVar(&cfg.scales, "scales", "", "fixed-point scale exponents as Pc,Pw,Pu,Pm (e.g. 40,35,35,30); empty = defaults")
	flag.BoolVar(&cfg.showKeys, "keys", false, "print the full rotation-key list")
	flag.IntVar(&cfg.costThreads, "costthreads", 1,
		"T in the T-thread cost model: estimates become the makespan over T threads (1 = serial sum)")
	flag.IntVar(&cfg.batch, "batch", 1, "images packed per evaluation (batch-axis slot lanes)")
	flag.BoolVar(&cfg.complex, "complex", false,
		"complex packing: two images per lane (real+imaginary slot components)")
	flag.StringVar(&cfg.scaleMode, "scale-mode", "greedy",
		"rescale placement: greedy (op-local protocol) or lazy (graph-level scale-management pass)")
	flag.BoolVar(&cfg.explain, "explain", false,
		"print the scale-management pass's per-site plan, per-node relinearization counts, and (with -bootstrap) the bootstrap placements")
	flag.IntVar(&cfg.bootstrap, "bootstrap", 0,
		"enable compiler bootstrap placement with this budget window in levels (0 disables; RNS only)")
	flag.Parse()

	if err := compileAndDescribe(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
}

func parseScales(s string) (chet.Scales, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return chet.Scales{}, fmt.Errorf("want 4 comma-separated exponents, got %q", s)
	}
	exps := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return chet.Scales{}, fmt.Errorf("bad exponent %q: %w", p, err)
		}
		exps[i] = float64(int64(1) << uint(v))
	}
	return chet.Scales{Pc: exps[0], Pw: exps[1], Pu: exps[2], Pm: exps[3]}, nil
}
