package main

import (
	"strings"
	"testing"
	"time"

	"chet/internal/bench"
	"chet/internal/nn"
)

// tinyConfig shrinks every experiment to its smallest meaningful instance
// so the whole dispatch table can be smoke-tested.
func tinyConfig() benchConfig {
	return benchConfig{
		models:       []*nn.Model{nn.LeNetTiny()},
		fig6Models:   []*nn.Model{nn.LeNetTiny()},
		fig6LogN:     11,
		table1Sizes:  [][2]int{{11, 2}},
		workers:      2,
		rotLogN:      11,
		rotPrimes:    4,
		rotAmounts:   8,
		benchOut:     "", // keep the smoke test from writing files
		ringLogN:     11,
		ringPrimes:   4,
		ringOut:      "",
		batchSizes:   []int{1, 2},
		batchMinLogN: 11,
		batchMaxLogN: 12,
		batchOut:     "",

		telemetryLogN: 11,
		telemetryReps: 2,
		// The smoke test asserts correctness, not performance: a loaded CI
		// host can't hold the 5% production budget on a tiny single-rep run.
		telemetryBudgetPct: 500,
		telemetryOut:       "",

		packingBatch:   2,
		packingMinLogN: 11,
		packingMaxLogN: 12,
		// Decode errors are asserted at the production budget; the throughput
		// floor is disabled for the same reason as the telemetry budget above.
		packingMinSpeedup: 0,
		packingErrBudget:  5e-2,
		packingOut:        "",

		fleetOpts: bench.FleetOptions{
			Counts:           []int{1, 2},
			Requests:         4,
			ExecDelay:        150 * time.Millisecond,
			MinSessions:      2,
			FailoverAt:       2,
			FailoverRequests: 4,
		},
		// The smoke test asserts the zero-client-error failover contract,
		// not scaling: with two workers on a loaded CI host the speedup
		// floor is not meaningful.
		fleetMinSpeedup:    0,
		fleetAssertWorkers: 2,
		fleetOut:           "",

		bootLayers:    4,
		bootLogN:      9,
		bootWindow:    3,
		bootErrBudget: 5e-2,
		bootOut:       "",

		obsOpts: bench.ObsOptions{
			Layers: 4, LogN: 9, Window: 2,
			Workers: 2, Sessions: 2, Requests: 1, Reps: 1,
			// Correctness and stitching are asserted at full strength; the
			// overhead gate is relaxed for the same reason as telemetry above.
			OverheadBudget: 5,
		},
		obsOut: "",
	}
}

// TestRunExperimentsSmoke drives every -exp name through the real dispatch
// and requires non-empty rendered output.
func TestRunExperimentsSmoke(t *testing.T) {
	cfg := tinyConfig()
	slow := map[string]bool{"table1": true, "fig6": true, "parallel": true, "rotations": true, "ring": true, "batching": true, "telemetry": true, "packing": true, "fleet": true, "bootstrap": true, "obs": true}
	for _, e := range experiments(cfg) {
		t.Run(e.name, func(t *testing.T) {
			if testing.Short() && slow[e.name] {
				t.Skip("real-crypto experiment; run without -short")
			}
			var sb strings.Builder
			if err := runExperiments(&sb, e.name, cfg); err != nil {
				t.Fatalf("experiment %s failed: %v", e.name, err)
			}
			out := sb.String()
			if !strings.Contains(out, "=== "+e.name+" ===") {
				t.Fatalf("experiment %s: missing header in output:\n%s", e.name, out)
			}
			// The body must contain more than header and trailer.
			body := out[strings.Index(out, "===\n")+4:]
			if len(strings.TrimSpace(strings.SplitN(body, "(", 2)[0])) == 0 {
				t.Fatalf("experiment %s produced no rows:\n%s", e.name, out)
			}
		})
	}
}

// TestRunExperimentsUnknownName ensures a typo'd -exp fails loudly instead
// of silently running nothing.
func TestRunExperimentsUnknownName(t *testing.T) {
	var sb strings.Builder
	if err := runExperiments(&sb, "tabel3", tinyConfig()); err == nil {
		t.Fatal("expected an error for an unknown experiment name")
	}
}
