// chet-bench regenerates the tables and figures of the paper's evaluation
// (Section 6). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	chet-bench -exp all            # every experiment on the small model set
//	chet-bench -exp table4 -full   # all five evaluation networks
//	chet-bench -exp fig6           # measured real-crypto latency vs cost model
//	chet-bench -exp parallel -workers 8   # serial vs worker-pool inference
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"chet/internal/bench"
	"chet/internal/core"
	"chet/internal/nn"
)

// experiment is one named evaluation reproduction.
type experiment struct {
	name string
	run  func(w io.Writer) error
}

// benchConfig parameterizes the experiment set so tests can substitute
// tractable sizes for the defaults.
type benchConfig struct {
	// models drives the analysis-only experiments.
	models []*nn.Model
	// fig6Models and fig6LogN size the real-crypto measurements (Figure 6
	// and the parallel-speedup experiment).
	fig6Models  []*nn.Model
	fig6LogN    int
	table1Sizes [][2]int
	scaleSearch bool
	workers     int
	// rotLogN/rotPrimes/rotAmounts size the hoisted-rotation experiment;
	// benchOut is where its machine-readable result lands ("" disables).
	rotLogN    int
	rotPrimes  int
	rotAmounts int
	benchOut   string
	// ringLogN/ringPrimes size the ring-rewrite experiment (fused
	// rescale-into-key-switch, blocked NTT, pooled arena); ringOut is its
	// JSON path ("" disables).
	ringLogN   int
	ringPrimes int
	ringOut    string
	// batchSizes and batchMinLogN/batchMaxLogN size the served-batching
	// throughput experiment; batchOut is its JSON path ("" disables).
	batchSizes                 []int
	batchMinLogN, batchMaxLogN int
	batchOut                   string
	// telemetryLogN/telemetryReps size the tracing-overhead experiment;
	// telemetryBudgetPct is the overhead ceiling it asserts, telemetryOut
	// its JSON path ("" disables).
	telemetryLogN      int
	telemetryReps      int
	telemetryBudgetPct float64
	telemetryOut       string
	// packingBatch is the real-packing baseline batch (complex runs 2x it);
	// packingMinSpeedup is the throughput ratio the experiment asserts and
	// packingErrBudget the per-lane decode-error ceiling. packingOut is the
	// JSON path ("" disables).
	packingBatch                   int
	packingMinLogN, packingMaxLogN int
	packingMinSpeedup              float64
	packingErrBudget               float64
	packingOut                     string
	// bootLayers/bootLogN/bootWindow size the deep-network bootstrapping
	// experiment; bootErrBudget is the output-precision ceiling it asserts
	// and bootOut its JSON path ("" disables).
	bootLayers    int
	bootLogN      int
	bootWindow    int
	bootErrBudget float64
	bootOut       string
	// fleetOpts sizes the sharded-serving scaling sweep; fleetMinSpeedup is
	// the images/sec ratio asserted at fleetAssertWorkers workers (0 skips
	// the assertion), fleetOut its JSON path ("" disables").
	fleetOpts          bench.FleetOptions
	fleetMinSpeedup    float64
	fleetAssertWorkers int
	fleetOut           string
	// obsOpts sizes the fleet-observability experiment (traced-vs-untraced
	// overhead plus the cross-process trace stitch); obsOut is its JSON path
	// ("" disables).
	obsOpts bench.ObsOptions
	obsOut  string
}

func defaultConfig() benchConfig {
	small, _ := nn.ByName("LeNet-5-small")
	return benchConfig{
		models:       bench.SmallModels(),
		fig6Models:   []*nn.Model{nn.LeNetTiny(), small},
		fig6LogN:     12,
		table1Sizes:  [][2]int{{11, 2}, {11, 4}, {11, 8}, {12, 4}, {13, 4}},
		workers:      runtime.GOMAXPROCS(0),
		rotLogN:      12,
		rotPrimes:    5,
		rotAmounts:   8,
		benchOut:     "BENCH_rotations.json",
		ringLogN:     12,
		ringPrimes:   5,
		ringOut:      "BENCH_ring.json",
		batchSizes:   []int{1, 2, 4, 8, 16},
		batchMinLogN: 11,
		batchMaxLogN: 13,
		batchOut:     "BENCH_batching.json",

		telemetryLogN:      12,
		telemetryReps:      5,
		telemetryBudgetPct: 5,
		telemetryOut:       "BENCH_telemetry.json",

		packingBatch:      8,
		packingMinLogN:    11,
		packingMaxLogN:    13,
		packingMinSpeedup: 1.7,
		packingErrBudget:  5e-2,
		packingOut:        "BENCH_packing.json",

		bootLayers:    6,
		bootLogN:      9,
		bootWindow:    3,
		bootErrBudget: 5e-2,
		bootOut:       "BENCH_bootstrap.json",

		fleetOpts: bench.FleetOptions{
			Counts:   []int{1, 2, 4, 8},
			Requests: 16,
			// The eval floor must dominate the real per-image crypto cost
			// (~0.3s end to end on the single-core reference box) times the
			// concurrent worker count, so worker overlap rather than the
			// shared CPU sets throughput; see internal/bench/fleet.go.
			ExecDelay:        4800 * time.Millisecond,
			MinSessions:      5,
			FailoverAt:       4,
			FailoverRequests: 10,
		},
		fleetMinSpeedup:    3,
		fleetAssertWorkers: 4,
		fleetOut:           "BENCH_fleet.json",

		obsOpts: bench.ObsOptions{
			Layers: 6, LogN: 9, Window: 3,
			Workers: 2, Sessions: 2, Requests: 2, Reps: 1,
			OverheadBudget: 0.05,
		},
		obsOut: "BENCH_obs.json",
	}
}

// experiments returns every experiment in display order.
func experiments(cfg benchConfig) []experiment {
	return []experiment{
		{"table1", func(w io.Writer) error {
			rows, err := bench.Table1(cfg.table1Sizes)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderTable1(rows))
			fmt.Fprintln(w, "expected shape: add/sMul/pMul scale ~N*r; ctMul/rot scale ~N*logN*r^2")
			return nil
		}},
		{"table3", func(w io.Writer) error {
			fmt.Fprint(w, bench.RenderTable3(bench.Table3(cfg.models, true)))
			fmt.Fprintln(w, "fidelity = max |encrypted - plaintext| output deviation (substitutes for accuracy; see DESIGN.md)")
			return nil
		}},
		{"table4", func(w io.Writer) error {
			rows, err := bench.Table4(cfg.models, bench.Table4Options{
				UseScaleSearch: cfg.scaleSearch,
				SearchStep:     8,
				Tolerance:      0.1,
			})
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderTable4(rows))
			return nil
		}},
		{"table5", func(w io.Writer) error {
			rows, err := bench.LayoutTable(cfg.models, core.SchemeRNS)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "CHET-SEAL (RNS-CKKS) estimated latency per data layout, seconds:")
			fmt.Fprint(w, bench.RenderLayoutTable(rows))
			return nil
		}},
		{"table6", func(w io.Writer) error {
			rows, err := bench.LayoutTable(cfg.models, core.SchemeCKKS)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "CHET-HEAAN (CKKS) estimated latency per data layout, seconds:")
			fmt.Fprint(w, bench.RenderLayoutTable(rows))
			return nil
		}},
		{"fig5", func(w io.Writer) error {
			rows, err := bench.Figure5(cfg.models)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderFigure5(rows))
			fmt.Fprintln(w, "expected shape: Manual-HEAAN > CHET-HEAAN > CHET-SEAL for every network")
			return nil
		}},
		{"fig6", func(w io.Writer) error {
			points, err := bench.Figure6(cfg.fig6Models, cfg.fig6LogN)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderFigure6(points))
			return nil
		}},
		{"fig7", func(w io.Writer) error {
			rows, err := bench.Figure7(cfg.models, []core.Scheme{core.SchemeRNS, core.SchemeCKKS})
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderFigure7(rows))
			return nil
		}},
		{"parallel", func(w io.Writer) error {
			rows, err := bench.ParallelSpeedup(cfg.fig6Models, cfg.fig6LogN, cfg.workers)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderSpeedup(rows))
			fmt.Fprintf(w, "GOMAXPROCS=%d; parallel output is bit-identical to serial (see internal/htc)\n",
				runtime.GOMAXPROCS(0))
			return nil
		}},
		{"rotations", func(w io.Writer) error {
			res, err := bench.RotationsBench(cfg.rotLogN, cfg.rotPrimes, cfg.rotAmounts, cfg.workers)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderRotations(res))
			fmt.Fprintln(w, "hoisted shares one digit decomposition across all amounts (see DESIGN.md)")
			if cfg.benchOut == "" {
				return nil
			}
			if err := bench.WriteStampedJSON(cfg.benchOut, res); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", cfg.benchOut)
			return nil
		}},
		{"ring", func(w io.Writer) error {
			res, err := bench.RingBench(cfg.ringLogN, cfg.ringPrimes, cfg.workers)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderRing(res))
			fmt.Fprintln(w, "fused path folds the rescale correction into the key-switch mod-P pass (see DESIGN.md)")
			if cfg.ringOut == "" {
				return nil
			}
			if err := bench.WriteStampedJSON(cfg.ringOut, res); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", cfg.ringOut)
			return nil
		}},
		{"batching", func(w io.Writer) error {
			res, err := bench.BatchingBench(nn.LeNetTiny(), cfg.batchSizes, cfg.batchMinLogN, cfg.batchMaxLogN)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderBatching(res))
			fmt.Fprintln(w, "one homomorphic evaluation serves the whole batch; lanes demultiplex for free (see DESIGN.md)")
			if cfg.batchOut == "" {
				return nil
			}
			if err := bench.WriteStampedJSON(cfg.batchOut, res); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", cfg.batchOut)
			return nil
		}},
		{"packing", func(w io.Writer) error {
			res, err := bench.PackingBench(nn.LeNetTiny(), cfg.packingBatch,
				cfg.packingMinLogN, cfg.packingMaxLogN, cfg.workers, cfg.packingErrBudget)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderPacking(res))
			fmt.Fprintln(w, "complex packing doubles lane occupancy (real+imaginary components); lazy relinearization halves activation key-switches")
			if cfg.packingOut != "" {
				if err := bench.WriteStampedJSON(cfg.packingOut, res); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", cfg.packingOut)
			}
			for _, e := range res.Errors {
				if !e.Pass {
					return fmt.Errorf("per-lane decode error %.2e on %s exceeds the %.0e budget",
						e.MaxErr, e.Backend, res.ErrBudget)
				}
			}
			if res.Speedup < cfg.packingMinSpeedup {
				return fmt.Errorf("complex packing throughput ratio %.2fx below the %.2fx floor",
					res.Speedup, cfg.packingMinSpeedup)
			}
			return nil
		}},
		{"fleet", func(w io.Writer) error {
			res, err := bench.FleetBench(nn.LeNetTiny(), cfg.fleetOpts)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderFleet(res))
			fmt.Fprintln(w, "sessions are sticky (eval keys live on workers); the router heals a kill by replaying keys to a survivor")
			if cfg.fleetOut != "" {
				if err := bench.WriteStampedJSON(cfg.fleetOut, res); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", cfg.fleetOut)
			}
			if f := res.Failover; f != nil && f.ClientErrors != 0 {
				return fmt.Errorf("worker kill leaked %d errors to clients, want 0", f.ClientErrors)
			}
			if cfg.fleetMinSpeedup > 0 {
				if got := res.SpeedupAt(cfg.fleetAssertWorkers); got < cfg.fleetMinSpeedup {
					return fmt.Errorf("fleet speedup %.2fx at %d workers below the %.2fx floor",
						got, cfg.fleetAssertWorkers, cfg.fleetMinSpeedup)
				}
			}
			return nil
		}},
		{"bootstrap", func(w io.Writer) error {
			res, err := bench.BootstrapBench(cfg.bootLayers, cfg.bootLogN, cfg.bootWindow, cfg.bootErrBudget)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderBootstrap(res))
			fmt.Fprintln(w, "the compiler reserves the pipeline depth on the chain and refreshes exactly where its level model exhausts (see DESIGN.md)")
			if cfg.bootOut != "" {
				if err := bench.WriteStampedJSON(cfg.bootOut, res); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", cfg.bootOut)
			}
			if !res.PlacementParity {
				return fmt.Errorf("runtime performed %d bootstraps, compiler placed %d",
					res.RuntimeBootstraps, res.Placements)
			}
			if res.MaxErr > res.ErrBudget {
				return fmt.Errorf("post-bootstrap output error %.2e exceeds the %.0e budget",
					res.MaxErr, res.ErrBudget)
			}
			return nil
		}},
		{"obs", func(w io.Writer) error {
			res, err := bench.ObsBench(cfg.obsOpts)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderObs(res))
			fmt.Fprintln(w, "one trace ID spans client, router, and worker; budget telemetry rides the health probes (see DESIGN.md)")
			if cfg.obsOut != "" {
				if err := bench.WriteStampedJSON(cfg.obsOut, res); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", cfg.obsOut)
			}
			if !res.BitExact {
				return fmt.Errorf("traced outputs diverged from untraced")
			}
			if !res.Stitch.Stitched || res.Stitch.BootstrapSpans == 0 {
				return fmt.Errorf("cross-process trace did not stitch (router spans %d, worker spans %d, bootstrap spans %d)",
					res.Stitch.RouterSpans, res.Stitch.WorkerSpans, res.Stitch.BootstrapSpans)
			}
			if res.WallOverhead > res.OverheadBudget {
				return fmt.Errorf("tracing overhead %.2f%% exceeds the %.0f%% budget",
					100*res.WallOverhead, 100*res.OverheadBudget)
			}
			return nil
		}},
		{"telemetry", func(w io.Writer) error {
			rows, err := bench.TelemetryOverhead(cfg.fig6Models, cfg.telemetryLogN,
				cfg.workers, cfg.telemetryReps, cfg.telemetryBudgetPct)
			if err != nil {
				return err
			}
			fmt.Fprint(w, bench.RenderTelemetry(rows))
			fmt.Fprintln(w, "traced output is verified bit-identical to untraced (the tracer observes, never perturbs)")
			if cfg.telemetryOut != "" {
				if err := bench.WriteStampedJSON(cfg.telemetryOut, rows); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", cfg.telemetryOut)
			}
			for _, r := range rows {
				if !r.Pass {
					return fmt.Errorf("tracing overhead %.2f%% on %s exceeds the %.1f%% budget",
						r.OverheadPct, r.Name, r.BudgetPct)
				}
			}
			return nil
		}},
	}
}

// runExperiments executes the experiment named want ("all" runs every one)
// and writes the rendered results to w. Unknown names are an error.
func runExperiments(w io.Writer, want string, cfg benchConfig) error {
	want = strings.ToLower(want)
	matched := false
	for _, e := range experiments(cfg) {
		if want != "all" && want != e.name {
			continue
		}
		matched = true
		fmt.Fprintf(w, "=== %s ===\n", e.name)
		start := time.Now()
		if err := e.run(w); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", want)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all",
		"experiment: table1, table3, table4, table5, table6, fig5, fig6, fig7, parallel, rotations, ring, batching, packing, fleet, bootstrap, obs, telemetry, or all")
	full := flag.Bool("full", false,
		"use all five evaluation networks (slower analysis sweeps; fig6 always uses the small set)")
	scaleSearch := flag.Bool("scalesearch", false,
		"run the profile-guided scale search for table4 (slow)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker-pool size for the parallel experiment (default: one per CPU)")
	benchOut := flag.String("benchout", "BENCH_rotations.json",
		"output path for the rotations experiment JSON (empty disables)")
	ringOut := flag.String("ringout", "BENCH_ring.json",
		"output path for the ring-rewrite experiment JSON (empty disables)")
	batchOut := flag.String("batchout", "BENCH_batching.json",
		"output path for the batching experiment JSON (empty disables)")
	telemetryOut := flag.String("telemetryout", "BENCH_telemetry.json",
		"output path for the telemetry experiment JSON (empty disables)")
	budget := flag.Float64("telemetry-budget", 5,
		"tracing-overhead budget in percent the telemetry experiment asserts")
	packingOut := flag.String("packingout", "BENCH_packing.json",
		"output path for the packing experiment JSON (empty disables)")
	packingMinSpeedup := flag.Float64("packing-min-speedup", 1.7,
		"throughput ratio (complex/real) the packing experiment asserts")
	bootOut := flag.String("bootstrapout", "BENCH_bootstrap.json",
		"output path for the bootstrapping experiment JSON (empty disables)")
	fleetOut := flag.String("fleetout", "BENCH_fleet.json",
		"output path for the fleet experiment JSON (empty disables)")
	fleetMinSpeedup := flag.Float64("fleet-min-speedup", 3,
		"images/sec ratio at 4 workers the fleet experiment asserts (0 disables)")
	obsOut := flag.String("obsout", "BENCH_obs.json",
		"output path for the observability experiment JSON (empty disables)")
	obsBudget := flag.Float64("obs-budget", 0.05,
		"traced-over-untraced wall-time overhead ratio the obs experiment asserts")
	flag.Parse()

	cfg := defaultConfig()
	cfg.scaleSearch = *scaleSearch
	cfg.workers = *workers
	cfg.benchOut = *benchOut
	cfg.ringOut = *ringOut
	cfg.batchOut = *batchOut
	cfg.telemetryOut = *telemetryOut
	cfg.telemetryBudgetPct = *budget
	cfg.packingOut = *packingOut
	cfg.packingMinSpeedup = *packingMinSpeedup
	cfg.bootOut = *bootOut
	cfg.fleetOut = *fleetOut
	cfg.fleetMinSpeedup = *fleetMinSpeedup
	cfg.obsOut = *obsOut
	cfg.obsOpts.OverheadBudget = *obsBudget
	if *full {
		cfg.models = bench.EvalModels()
	}

	if err := runExperiments(os.Stdout, *exp, cfg); err != nil {
		log.Fatal(err)
	}
}
