// chet-bench regenerates the tables and figures of the paper's evaluation
// (Section 6). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	chet-bench -exp all            # every experiment on the small model set
//	chet-bench -exp table4 -full   # all five evaluation networks
//	chet-bench -exp fig6           # measured real-crypto latency vs cost model
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"chet/internal/bench"
	"chet/internal/core"
	"chet/internal/nn"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all",
		"experiment: table1, table3, table4, table5, table6, fig5, fig6, fig7, or all")
	full := flag.Bool("full", false,
		"use all five evaluation networks (slower analysis sweeps; fig6 always uses the small set)")
	scaleSearch := flag.Bool("scalesearch", false,
		"run the profile-guided scale search for table4 (slow)")
	flag.Parse()

	models := bench.SmallModels()
	if *full {
		models = bench.EvalModels()
	}

	run := func(name string, f func() error) {
		want := strings.ToLower(*exp)
		if want != "all" && want != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error {
		rows, err := bench.Table1([][2]int{{11, 2}, {11, 4}, {11, 8}, {12, 4}, {13, 4}})
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderTable1(rows))
		fmt.Println("expected shape: add/sMul/pMul scale ~N*r; ctMul/rot scale ~N*logN*r^2")
		return nil
	})

	run("table3", func() error {
		fmt.Print(bench.RenderTable3(bench.Table3(models, true)))
		fmt.Println("fidelity = max |encrypted - plaintext| output deviation (substitutes for accuracy; see DESIGN.md)")
		return nil
	})

	run("table4", func() error {
		rows, err := bench.Table4(models, bench.Table4Options{
			UseScaleSearch: *scaleSearch,
			SearchStep:     8,
			Tolerance:      0.1,
		})
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderTable4(rows))
		return nil
	})

	run("table5", func() error {
		rows, err := bench.LayoutTable(models, core.SchemeRNS)
		if err != nil {
			return err
		}
		fmt.Println("CHET-SEAL (RNS-CKKS) estimated latency per data layout, seconds:")
		fmt.Print(bench.RenderLayoutTable(rows))
		return nil
	})

	run("table6", func() error {
		rows, err := bench.LayoutTable(models, core.SchemeCKKS)
		if err != nil {
			return err
		}
		fmt.Println("CHET-HEAAN (CKKS) estimated latency per data layout, seconds:")
		fmt.Print(bench.RenderLayoutTable(rows))
		return nil
	})

	run("fig5", func() error {
		rows, err := bench.Figure5(models)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFigure5(rows))
		fmt.Println("expected shape: Manual-HEAAN > CHET-HEAAN > CHET-SEAL for every network")
		return nil
	})

	run("fig6", func() error {
		small, _ := nn.ByName("LeNet-5-small")
		points, err := bench.Figure6([]*nn.Model{nn.LeNetTiny(), small}, 12)
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFigure6(points))
		return nil
	})

	run("fig7", func() error {
		rows, err := bench.Figure7(models, []core.Scheme{core.SchemeRNS, core.SchemeCKKS})
		if err != nil {
			return err
		}
		fmt.Print(bench.RenderFigure7(rows))
		return nil
	})
}
