package wire

import (
	"bytes"
	"testing"
	"time"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
	"chet/internal/telemetry"
)

// fuzzSeedFrames builds one valid frame of every type, so the fuzzer starts
// from deep-decoding inputs instead of rediscovering the header format.
func fuzzSeedFrames(f *testing.F) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 4, LogQ: []int{30}, LogP: 30, LogScale: 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params: params, PRNG: ring.NewTestPRNG(3), Rotations: []int{1},
	})
	keys := b.PublicKeys()
	ct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2}, 1<<20))},
	}

	frame := func(t MsgType, payload []byte, err error) []byte {
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, t, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// A batched variant: two lanes of a 1x1x2 image in the 16-slot ring.
	bct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		B: 2, BatchStride: 4,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2, 0, 0, 3, 4}, 1<<20))},
	}

	open := &SessionOpen{Rotations: keys.Rotations, PK: keys.PK, RLK: keys.RLK, RTKS: keys.RTKS}
	p, err := open.Encode()
	f.Add(frame(MsgSessionOpen, p, err))
	p, err = (&SessionAccept{SessionID: 1}).Encode()
	f.Add(frame(MsgSessionAccept, p, err))
	p, err = (&InferRequest{SessionID: 1, RequestID: 2, TraceID: 0xABCD, ParentSpan: 0x1234, Tensor: ct}).Encode()
	f.Add(frame(MsgInferRequest, p, err))
	p, err = (&InferResponse{RequestID: 2, Tensor: ct}).Encode()
	f.Add(frame(MsgInferResponse, p, err))
	p, err = (&InferResponse{RequestID: 2, Batch: 2, Lane: 1, Tensor: bct}).Encode()
	f.Add(frame(MsgInferResponse, p, err))
	p, err = (&ErrorFrame{Code: CodeInternal, Message: "boom"}).Encode()
	f.Add(frame(MsgError, p, err))
	p, err = (&InferBatchRequest{SessionID: 1, RequestID: 3, TraceID: 0xEF01, ParentSpan: 0x5678, Count: 2, Tensor: bct}).Encode()
	f.Add(frame(MsgInferBatchRequest, p, err))
	p, err = (&InferBatchResponse{RequestID: 3, Count: 2, Tensor: bct}).Encode()
	f.Add(frame(MsgInferBatchResponse, p, err))
	p, err = (&HealthProbe{Nonce: 99}).Encode()
	f.Add(frame(MsgHealthProbe, p, err))
	p, err = (&HealthAck{Nonce: 99, ActiveSessions: 2, Inflight: 1, Draining: true,
		Bootstraps: 5, MinHeadroom: -1, HeadroomKnown: true}).Encode()
	f.Add(frame(MsgHealthAck, p, err))
	p, err = (&RegistrySync{Entries: []RegistryEntry{{Model: "LeNet-tiny", LogN: 13, Batch: 8}}}).Encode()
	f.Add(frame(MsgRegistrySync, p, err))
	p, err = (&RegistrySyncAck{Entries: []RegistryEntry{{Model: "m", LogN: 11, Batch: 1}}}).Encode()
	f.Add(frame(MsgRegistrySyncAck, p, err))
	openPayload, err := open.Encode()
	if err != nil {
		f.Fatal(err)
	}
	p, err = (&SessionHandoff{RouterSessionID: 7, Open: openPayload}).Encode()
	f.Add(frame(MsgSessionHandoff, p, err))
	p, err = (&SessionHandoffAck{RouterSessionID: 7, WorkerSessionID: 8}).Encode()
	f.Add(frame(MsgSessionHandoffAck, p, err))
	p, err = (&TraceDump{TraceID: 0xABCD}).Encode()
	f.Add(frame(MsgTraceDump, p, err))
	p, err = (&TraceDumpAck{Process: "worker-a", EpochUnixNano: 1_700_000_000_000_000_000,
		Spans: []telemetry.Span{{
			Kind: telemetry.KindScope, Op: "request", Dur: time.Millisecond,
			LevelIn: 9, LevelOut: 3, ScaleIn: 1 << 40, ScaleOut: 1 << 40,
			TraceID: 0xABCD, SpanID: 0x1234, Parent: 0x5678,
		}}}).Encode()
	f.Add(frame(MsgTraceDumpAck, p, err))
	f.Add([]byte{})
	f.Add([]byte{0xF1, 0x5E, 0xE7, 0xC4, 1, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
}

// FuzzWireFrame proves the whole receive path is total: framing plus every
// message decoder accepts arbitrary bytes without panicking, and anything
// that decodes re-encodes to bytes that decode again.
func FuzzWireFrame(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the frame size so a lying header cannot make the fuzzer OOM;
		// the limit logic itself is under test too.
		tp, payload, err := ReadFrame(bytes.NewReader(data), 1<<22)
		if err != nil {
			return
		}
		switch tp {
		case MsgSessionOpen:
			var m SessionOpen
			if m.Decode(payload) == nil {
				reenc, err := m.Encode()
				if err != nil {
					t.Fatalf("decoded session-open does not re-encode: %v", err)
				}
				var m2 SessionOpen
				if err := m2.Decode(reenc); err != nil {
					t.Fatalf("re-encoded session-open does not decode: %v", err)
				}
			}
		case MsgSessionAccept:
			var m SessionAccept
			_ = m.Decode(payload)
		case MsgInferRequest:
			var m InferRequest
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-request does not re-encode: %v", err)
				}
			}
		case MsgInferResponse:
			var m InferResponse
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-response does not re-encode: %v", err)
				}
			}
		case MsgError:
			var m ErrorFrame
			_ = m.Decode(payload)
		case MsgInferBatchRequest:
			var m InferBatchRequest
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-batch-request does not re-encode: %v", err)
				}
			}
		case MsgInferBatchResponse:
			var m InferBatchResponse
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-batch-response does not re-encode: %v", err)
				}
			}
		case MsgHealthProbe:
			var m HealthProbe
			_ = m.Decode(payload)
		case MsgHealthAck:
			var m HealthAck
			if m.Decode(payload) == nil {
				reenc, err := m.Encode()
				if err != nil {
					t.Fatalf("decoded health-ack does not re-encode: %v", err)
				}
				var m2 HealthAck
				if err := m2.Decode(reenc); err != nil {
					t.Fatalf("re-encoded health-ack does not decode: %v", err)
				}
				if m2 != m {
					t.Fatal("health-ack not stable across re-encoding")
				}
			}
		case MsgRegistrySync:
			var m RegistrySync
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded registry-sync does not re-encode: %v", err)
				}
			}
		case MsgRegistrySyncAck:
			var m RegistrySyncAck
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded registry-sync-ack does not re-encode: %v", err)
				}
			}
		case MsgSessionHandoff:
			var m SessionHandoff
			if m.Decode(payload) == nil {
				// A decoded handoff carries an opaque session-open blob; the
				// worker-side path runs it through the SessionOpen decoder,
				// which must itself be total.
				var inner SessionOpen
				_ = inner.Decode(m.Open)
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded session-handoff does not re-encode: %v", err)
				}
			}
		case MsgSessionHandoffAck:
			var m SessionHandoffAck
			_ = m.Decode(payload)
		case MsgTraceDump:
			var m TraceDump
			_ = m.Decode(payload)
		case MsgTraceDumpAck:
			var m TraceDumpAck
			if m.Decode(payload) == nil {
				reenc, err := m.Encode()
				if err != nil {
					t.Fatalf("decoded trace-dump-ack does not re-encode: %v", err)
				}
				var m2 TraceDumpAck
				if err := m2.Decode(reenc); err != nil {
					t.Fatalf("re-encoded trace-dump-ack does not decode: %v", err)
				}
				if m2.Process != m.Process || m2.EpochUnixNano != m.EpochUnixNano || len(m2.Spans) != len(m.Spans) {
					t.Fatal("trace-dump-ack not stable across re-encoding")
				}
			}
		}
	})
}

// FuzzControlFrame hits the fleet control-plane decoders below the framing
// layer: arbitrary payload bytes must never panic, and whatever decodes must
// re-encode to bytes that decode to the same value.
func FuzzControlFrame(f *testing.F) {
	seed := func(p []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	seed((&HealthProbe{Nonce: 1}).Encode())
	seed((&HealthAck{Nonce: 2, ActiveSessions: 1, Inflight: 3, Draining: true,
		Bootstraps: 7, MinHeadroom: 2, HeadroomKnown: true}).Encode())
	seed((&RegistrySync{Entries: []RegistryEntry{
		{Model: "LeNet-tiny", LogN: 13, Batch: 8},
		{Model: "SqueezeNet-CIFAR", LogN: 16, Batch: 1},
	}}).Encode())
	seed((&SessionHandoff{RouterSessionID: 3, Open: []byte("opaque keys")}).Encode())
	seed((&SessionHandoffAck{RouterSessionID: 3, WorkerSessionID: 4}).Encode())
	seed((&TraceDump{TraceID: 5}).Encode())
	seed((&TraceDumpAck{Process: "w", EpochUnixNano: 42, Spans: []telemetry.Span{
		{Kind: telemetry.KindOp, Op: "mul", Dur: time.Microsecond, TraceID: 5, SpanID: 6, Parent: 7},
		{Kind: telemetry.KindScope, Op: "request", Scope: "sess", TraceID: 5, SpanID: 7},
	}}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var probe HealthProbe
		_ = probe.Decode(data)
		var ack HealthAck
		if ack.Decode(data) == nil {
			reenc, err := ack.Encode()
			if err != nil {
				t.Fatalf("decoded health-ack does not re-encode: %v", err)
			}
			var again HealthAck
			if err := again.Decode(reenc); err != nil || again != ack {
				t.Fatalf("health-ack not stable: %v", err)
			}
		}
		var sync RegistrySync
		if sync.Decode(data) == nil {
			reenc, err := sync.Encode()
			if err != nil {
				t.Fatalf("decoded registry-sync does not re-encode: %v", err)
			}
			var again RegistrySync
			if err := again.Decode(reenc); err != nil {
				t.Fatalf("re-encoded registry-sync does not decode: %v", err)
			}
			if len(again.Entries) != len(sync.Entries) {
				t.Fatal("registry-sync entry count not stable across re-encoding")
			}
		}
		var ho SessionHandoff
		if ho.Decode(data) == nil {
			reenc, err := ho.Encode()
			if err != nil {
				t.Fatalf("decoded session-handoff does not re-encode: %v", err)
			}
			var again SessionHandoff
			if err := again.Decode(reenc); err != nil {
				t.Fatalf("re-encoded session-handoff does not decode: %v", err)
			}
		}
		var hoAck SessionHandoffAck
		_ = hoAck.Decode(data)
		var td TraceDump
		if td.Decode(data) == nil {
			reenc, err := td.Encode()
			if err != nil {
				t.Fatalf("decoded trace-dump does not re-encode: %v", err)
			}
			var again TraceDump
			if err := again.Decode(reenc); err != nil || again != td {
				t.Fatalf("trace-dump not stable: %v", err)
			}
		}
		var tda TraceDumpAck
		if tda.Decode(data) == nil {
			reenc, err := tda.Encode()
			if err != nil {
				t.Fatalf("decoded trace-dump-ack does not re-encode: %v", err)
			}
			var again TraceDumpAck
			if err := again.Decode(reenc); err != nil {
				t.Fatalf("re-encoded trace-dump-ack does not decode: %v", err)
			}
			if len(again.Spans) != len(tda.Spans) {
				t.Fatal("trace-dump-ack span count not stable across re-encoding")
			}
		}
	})
}

// FuzzDecodeCipherTensor hits the tensor codec below the message layer.
func FuzzDecodeCipherTensor(f *testing.F) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 4, LogQ: []int{30}, LogP: 30, LogScale: 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(5)})
	ct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 2, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2, 3, 4}, 1<<20))},
	}
	seed, err := EncodeCipherTensor(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	bct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		B: 4, BatchStride: 4,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2}, 1<<20))},
	}
	bseed, err := EncodeCipherTensor(bct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bseed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeCipherTensor(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same metadata.
		reenc, err := EncodeCipherTensor(got)
		if err != nil {
			t.Fatalf("decoded tensor does not re-encode: %v", err)
		}
		again, err := DecodeCipherTensor(reenc)
		if err != nil {
			t.Fatalf("re-encoded tensor does not decode: %v", err)
		}
		if again.C != got.C || again.H != got.H || again.W != got.W || len(again.CTs) != len(got.CTs) ||
			again.B != got.B || again.BatchStride != got.BatchStride {
			t.Fatal("metadata not stable across re-encoding")
		}
	})
}
