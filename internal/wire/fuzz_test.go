package wire

import (
	"bytes"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
)

// fuzzSeedFrames builds one valid frame of every type, so the fuzzer starts
// from deep-decoding inputs instead of rediscovering the header format.
func fuzzSeedFrames(f *testing.F) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 4, LogQ: []int{30}, LogP: 30, LogScale: 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params: params, PRNG: ring.NewTestPRNG(3), Rotations: []int{1},
	})
	keys := b.PublicKeys()
	ct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2}, 1<<20))},
	}

	frame := func(t MsgType, payload []byte, err error) []byte {
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, t, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// A batched variant: two lanes of a 1x1x2 image in the 16-slot ring.
	bct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		B: 2, BatchStride: 4,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2, 0, 0, 3, 4}, 1<<20))},
	}

	open := &SessionOpen{Rotations: keys.Rotations, PK: keys.PK, RLK: keys.RLK, RTKS: keys.RTKS}
	p, err := open.Encode()
	f.Add(frame(MsgSessionOpen, p, err))
	p, err = (&SessionAccept{SessionID: 1}).Encode()
	f.Add(frame(MsgSessionAccept, p, err))
	p, err = (&InferRequest{SessionID: 1, RequestID: 2, Tensor: ct}).Encode()
	f.Add(frame(MsgInferRequest, p, err))
	p, err = (&InferResponse{RequestID: 2, Tensor: ct}).Encode()
	f.Add(frame(MsgInferResponse, p, err))
	p, err = (&InferResponse{RequestID: 2, Batch: 2, Lane: 1, Tensor: bct}).Encode()
	f.Add(frame(MsgInferResponse, p, err))
	p, err = (&ErrorFrame{Code: CodeInternal, Message: "boom"}).Encode()
	f.Add(frame(MsgError, p, err))
	p, err = (&InferBatchRequest{SessionID: 1, RequestID: 3, Count: 2, Tensor: bct}).Encode()
	f.Add(frame(MsgInferBatchRequest, p, err))
	p, err = (&InferBatchResponse{RequestID: 3, Count: 2, Tensor: bct}).Encode()
	f.Add(frame(MsgInferBatchResponse, p, err))
	f.Add([]byte{})
	f.Add([]byte{0xF1, 0x5E, 0xE7, 0xC4, 1, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
}

// FuzzWireFrame proves the whole receive path is total: framing plus every
// message decoder accepts arbitrary bytes without panicking, and anything
// that decodes re-encodes to bytes that decode again.
func FuzzWireFrame(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the frame size so a lying header cannot make the fuzzer OOM;
		// the limit logic itself is under test too.
		tp, payload, err := ReadFrame(bytes.NewReader(data), 1<<22)
		if err != nil {
			return
		}
		switch tp {
		case MsgSessionOpen:
			var m SessionOpen
			if m.Decode(payload) == nil {
				reenc, err := m.Encode()
				if err != nil {
					t.Fatalf("decoded session-open does not re-encode: %v", err)
				}
				var m2 SessionOpen
				if err := m2.Decode(reenc); err != nil {
					t.Fatalf("re-encoded session-open does not decode: %v", err)
				}
			}
		case MsgSessionAccept:
			var m SessionAccept
			_ = m.Decode(payload)
		case MsgInferRequest:
			var m InferRequest
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-request does not re-encode: %v", err)
				}
			}
		case MsgInferResponse:
			var m InferResponse
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-response does not re-encode: %v", err)
				}
			}
		case MsgError:
			var m ErrorFrame
			_ = m.Decode(payload)
		case MsgInferBatchRequest:
			var m InferBatchRequest
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-batch-request does not re-encode: %v", err)
				}
			}
		case MsgInferBatchResponse:
			var m InferBatchResponse
			if m.Decode(payload) == nil {
				if _, err := m.Encode(); err != nil {
					t.Fatalf("decoded infer-batch-response does not re-encode: %v", err)
				}
			}
		}
	})
}

// FuzzDecodeCipherTensor hits the tensor codec below the message layer.
func FuzzDecodeCipherTensor(f *testing.F) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 4, LogQ: []int{30}, LogP: 30, LogScale: 20,
	})
	if err != nil {
		f.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(5)})
	ct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 2, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2, 3, 4}, 1<<20))},
	}
	seed, err := EncodeCipherTensor(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	bct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		B: 4, BatchStride: 4,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1, 2}, 1<<20))},
	}
	bseed, err := EncodeCipherTensor(bct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bseed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeCipherTensor(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same metadata.
		reenc, err := EncodeCipherTensor(got)
		if err != nil {
			t.Fatalf("decoded tensor does not re-encode: %v", err)
		}
		again, err := DecodeCipherTensor(reenc)
		if err != nil {
			t.Fatalf("re-encoded tensor does not decode: %v", err)
		}
		if again.C != got.C || again.H != got.H || again.W != got.W || len(again.CTs) != len(got.CTs) ||
			again.B != got.B || again.BatchStride != got.BatchStride {
			t.Fatal("metadata not stable across re-encoding")
		}
	})
}
