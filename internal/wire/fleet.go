package wire

import "fmt"

// Fleet control-plane messages: the frames a router tier exchanges with its
// chet-serve workers. They ride the same versioned framing as the inference
// frames; every decoder here is total over adversarial bytes (see the fuzz
// targets), because a router must survive a byzantine worker and vice versa.

// Sanity caps on the control-plane payloads.
const (
	// maxRegistryEntries bounds a registry-sync frame. A fleet serves a
	// handful of compiled models, not thousands; a lying count cannot drive
	// pathological allocation.
	maxRegistryEntries = 1 << 12
	// maxModelName bounds a registry entry's model-name bytes.
	maxModelName = 1 << 8
)

// RegistryEntry describes one compiled model in the replicated registry,
// keyed by the compilation fingerprint that the session-open handshake
// quotes. LogN and Batch are the compiled ring degree (log2) and batch
// capacity — enough for a router to admission-check a handshake without
// holding the compiled circuit itself.
type RegistryEntry struct {
	Fingerprint [32]byte
	Model       string
	LogN        uint32
	Batch       uint32
}

func (e *RegistryEntry) encode(enc *enc) error {
	if len(e.Model) > maxModelName {
		return fmt.Errorf("wire: registry entry model name of %d bytes exceeds cap %d", len(e.Model), maxModelName)
	}
	enc.buf = append(enc.buf, e.Fingerprint[:]...)
	enc.blob([]byte(e.Model))
	enc.u32(e.LogN)
	enc.u32(e.Batch)
	return nil
}

func decodeRegistryEntry(d *dec) (e RegistryEntry) {
	if d.err == nil && d.pos+32 > len(d.buf) {
		d.fail("truncated registry-entry fingerprint")
		return
	}
	if d.err != nil {
		return
	}
	copy(e.Fingerprint[:], d.buf[d.pos:d.pos+32])
	d.pos += 32
	name := d.blob()
	if d.err == nil && len(name) > maxModelName {
		d.fail(fmt.Sprintf("registry entry model name of %d bytes exceeds cap", len(name)))
		return
	}
	e.Model = string(name)
	e.LogN = d.u32()
	e.Batch = d.u32()
	return
}

// encodeEntries serializes a count-prefixed entry list.
func encodeEntries(entries []RegistryEntry) ([]byte, error) {
	if len(entries) > maxRegistryEntries {
		return nil, fmt.Errorf("wire: %d registry entries exceed cap %d", len(entries), maxRegistryEntries)
	}
	e := &enc{}
	e.u32(uint32(len(entries)))
	for i := range entries {
		if err := entries[i].encode(e); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// decodeEntries parses a count-prefixed entry list.
func decodeEntries(data []byte) ([]RegistryEntry, error) {
	d := &dec{buf: data}
	n := int(d.u32())
	if d.err == nil && (n < 0 || n > maxRegistryEntries) {
		d.fail(fmt.Sprintf("implausible registry entry count %d", n))
	}
	entries := make([]RegistryEntry, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		entries = append(entries, decodeRegistryEntry(d))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return entries, nil
}

// HealthProbe asks a worker whether it is alive and accepting work. The
// nonce is echoed in the ack so a router matching probes to responses over a
// reused connection cannot be confused by a stale reply.
type HealthProbe struct {
	Nonce uint64
}

// Encode serializes the message payload.
func (m *HealthProbe) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.Nonce)
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *HealthProbe) Decode(data []byte) error {
	d := &dec{buf: data}
	m.Nonce = d.u64()
	return d.finish()
}

// HealthAck reports a worker's status: the compiled-model fingerprint it
// serves, its live session count, the requests currently in flight, and
// whether it is draining (a draining worker finishes admitted work but
// rejects new requests — a router must stop routing to it). Since protocol
// version 5 it also carries the worker's ciphertext-budget telemetry, so
// the router's /metrics can export fleet-wide refresh pressure without a
// second scrape path.
type HealthAck struct {
	Nonce          uint64
	Fingerprint    [32]byte
	ActiveSessions uint32
	Inflight       uint32
	Draining       bool
	// Bootstraps is the worker's cumulative bootstrap-refresh tally across
	// all sessions (hisa.Refresher triggered + explicit).
	Bootstraps uint64
	// MinHeadroom is the worker's low-water mark of remaining levels above
	// the refresh floor, valid only when HeadroomKnown (no session has run
	// a multiplicative op yet otherwise). Zero or negative means a refresh
	// fired.
	MinHeadroom   int64
	HeadroomKnown bool
}

// Encode serializes the message payload.
func (m *HealthAck) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.Nonce)
	e.buf = append(e.buf, m.Fingerprint[:]...)
	e.u32(m.ActiveSessions)
	e.u32(m.Inflight)
	if m.Draining {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u64(m.Bootstraps)
	e.u64(uint64(m.MinHeadroom))
	if m.HeadroomKnown {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *HealthAck) Decode(data []byte) error {
	d := &dec{buf: data}
	nonce := d.u64()
	var fp [32]byte
	if d.err == nil && d.pos+32 > len(d.buf) {
		d.fail("truncated health-ack fingerprint")
	}
	if d.err == nil {
		copy(fp[:], d.buf[d.pos:d.pos+32])
		d.pos += 32
	}
	active := d.u32()
	inflight := d.u32()
	draining := d.u8()
	if d.err == nil && draining > 1 {
		d.fail(fmt.Sprintf("non-boolean draining byte %d", draining))
	}
	boots := d.u64()
	headroom := int64(d.u64())
	known := d.u8()
	if d.err == nil && known > 1 {
		d.fail(fmt.Sprintf("non-boolean headroom-known byte %d", known))
	}
	if err := d.finish(); err != nil {
		return err
	}
	m.Nonce, m.Fingerprint = nonce, fp
	m.ActiveSessions, m.Inflight, m.Draining = active, inflight, draining == 1
	m.Bootstraps, m.MinHeadroom, m.HeadroomKnown = boots, headroom, known == 1
	return nil
}

// RegistrySync carries the router's merged view of the compiled-model
// registry, pushed to every worker so the registry is replicated across the
// fleet (a restarted router can rebuild it from any worker's ack).
type RegistrySync struct {
	Entries []RegistryEntry
}

// Encode serializes the message payload.
func (m *RegistrySync) Encode() ([]byte, error) { return encodeEntries(m.Entries) }

// Decode parses a payload produced by Encode.
func (m *RegistrySync) Decode(data []byte) error {
	entries, err := decodeEntries(data)
	if err != nil {
		return err
	}
	m.Entries = entries
	return nil
}

// RegistrySyncAck answers a RegistrySync with the models this worker serves.
type RegistrySyncAck struct {
	Entries []RegistryEntry
}

// Encode serializes the message payload.
func (m *RegistrySyncAck) Encode() ([]byte, error) { return encodeEntries(m.Entries) }

// Decode parses a payload produced by Encode.
func (m *RegistrySyncAck) Decode(data []byte) error {
	entries, err := decodeEntries(data)
	if err != nil {
		return err
	}
	m.Entries = entries
	return nil
}

// SessionHandoff replays a session's evaluation-key frames to a worker. The
// router stores the raw session-open payload a client uploaded once and
// replays it whenever the session's owner changes (a worker died, or the
// ring rebalanced after a join), so placement changes cost one key transfer
// instead of a client-visible failure. Open is an opaque SessionOpen payload;
// the worker runs it through the ordinary bounds-checked decoder.
type SessionHandoff struct {
	// RouterSessionID is the router-scoped session being handed off; echoed
	// in the ack so the router can match responses on a shared connection.
	RouterSessionID uint64
	// Open is the session's original session-open payload (fingerprint,
	// rotation amounts, public evaluation keys).
	Open []byte
}

// Encode serializes the message payload.
func (m *SessionHandoff) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.RouterSessionID)
	e.blob(m.Open)
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *SessionHandoff) Decode(data []byte) error {
	d := &dec{buf: data}
	id := d.u64()
	open := d.blob()
	if err := d.finish(); err != nil {
		return err
	}
	m.RouterSessionID, m.Open = id, open
	return nil
}

// SessionHandoffAck acknowledges a handoff with the worker-local session ID
// the router must quote on relayed requests for this session.
type SessionHandoffAck struct {
	RouterSessionID uint64
	WorkerSessionID uint64
}

// Encode serializes the message payload.
func (m *SessionHandoffAck) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.RouterSessionID)
	e.u64(m.WorkerSessionID)
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *SessionHandoffAck) Decode(data []byte) error {
	d := &dec{buf: data}
	m.RouterSessionID = d.u64()
	m.WorkerSessionID = d.u64()
	return d.finish()
}
