package wire

import (
	"fmt"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/htc"
)

// Caps on tensor metadata. Metadata is attacker-controlled on the server
// side, so every field is bounded before any allocation or use; the serve
// layer additionally validates the geometry against the backend's slot
// count before evaluating.
const (
	maxTensorCTs = 1 << 14
	maxTensorDim = 1 << 20
	maxSlotIndex = 1 << 26 // beyond any supported ring (N <= 2^16)

	// tensorComplexFlag marks a complex-packed tensor in the layout byte's
	// high bit (layout values occupy the low bits).
	tensorComplexFlag = 0x80
)

// encodeCipherTensor appends the layout metadata and ciphertexts of ct.
// Only RNS-CKKS ciphertexts (*ckks.Ciphertext) cross the wire: the mock
// HEAAN backend has no transferable key material, so serving is an
// RNS-scheme feature.
func encodeCipherTensor(e *enc, ct *htc.CipherTensor) error {
	if ct == nil {
		return fmt.Errorf("wire: nil cipher tensor")
	}
	// The layout byte carries the complex-packing flag in its high bit, so
	// the frame format (and every real-packed frame) is unchanged.
	lb := byte(ct.Layout)
	if ct.Complex {
		lb |= tensorComplexFlag
	}
	e.u8(lb)
	// B is normalized on encode (0 and 1 both mean unbatched), so the wire
	// form of a legacy tensor and an explicit batch-1 tensor is identical.
	b := ct.B
	if b < 1 {
		b = 1
	}
	for _, v := range []int{ct.C, ct.H, ct.W, ct.Offset, ct.RowStride,
		ct.ColStride, ct.ChanStride, ct.CPerCT, b, ct.BatchStride} {
		e.i64(v)
	}
	if len(ct.CTs) > maxTensorCTs {
		return fmt.Errorf("wire: tensor with %d ciphertexts exceeds cap %d", len(ct.CTs), maxTensorCTs)
	}
	e.u32(uint32(len(ct.CTs)))
	for i, c := range ct.CTs {
		cc, ok := c.(*ckks.Ciphertext)
		if !ok {
			return fmt.Errorf("wire: ciphertext %d is %T, want *ckks.Ciphertext (serve requires the RNS scheme)", i, c)
		}
		if err := e.marshalInto(cc); err != nil {
			return err
		}
	}
	return nil
}

// decodeCipherTensor parses what encodeCipherTensor wrote, validating every
// metadata field against the caps above.
func decodeCipherTensor(d *dec) (*htc.CipherTensor, error) {
	lb := d.u8()
	layout := lb &^ tensorComplexFlag
	cplx := lb&tensorComplexFlag != 0
	var dims [10]int
	for i := range dims {
		dims[i] = d.i64()
	}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if layout > 1 {
		return nil, fmt.Errorf("wire: unknown tensor layout %d", layout)
	}
	c, h, w := dims[0], dims[1], dims[2]
	offset, rowS, colS, chanS, cPerCT := dims[3], dims[4], dims[5], dims[6], dims[7]
	batch, batchS := dims[8], dims[9]
	switch {
	case c < 1 || c > maxTensorDim || h < 1 || h > maxTensorDim || w < 1 || w > maxTensorDim:
		return nil, fmt.Errorf("wire: implausible tensor dims C=%d H=%d W=%d", c, h, w)
	case cPerCT < 1 || cPerCT > maxTensorDim:
		return nil, fmt.Errorf("wire: implausible channels-per-ciphertext %d", cPerCT)
	case offset < 0 || offset > maxSlotIndex,
		rowS < 0 || rowS > maxSlotIndex,
		colS < 0 || colS > maxSlotIndex,
		chanS < 0 || chanS > maxSlotIndex:
		return nil, fmt.Errorf("wire: implausible tensor strides (offset %d, row %d, col %d, chan %d)",
			offset, rowS, colS, chanS)
	case batch < 1 || batch > maxBatchLanes:
		return nil, fmt.Errorf("wire: implausible tensor batch %d", batch)
	case batchS < 0 || batchS > maxSlotIndex:
		return nil, fmt.Errorf("wire: implausible tensor batch stride %d", batchS)
	case batch > 1 && batchS < 1:
		return nil, fmt.Errorf("wire: batched tensor (B=%d) without a batch stride", batch)
	case n < 0 || n > maxTensorCTs:
		return nil, fmt.Errorf("wire: implausible ciphertext count %d", n)
	}
	want := (c + cPerCT - 1) / cPerCT
	if n != want {
		return nil, fmt.Errorf("wire: tensor carries %d ciphertexts, metadata implies %d", n, want)
	}
	out := &htc.CipherTensor{
		Layout: htc.Layout(layout), C: c, H: h, W: w,
		Offset: offset, RowStride: rowS, ColStride: colS,
		ChanStride: chanS, CPerCT: cPerCT,
		B: batch, BatchStride: batchS,
		Complex: cplx,
		CTs:     make([]hisa.Ciphertext, 0, n),
	}
	for i := 0; i < n; i++ {
		blob := d.blob()
		if d.err != nil {
			return nil, d.err
		}
		ct := &ckks.Ciphertext{}
		if err := ct.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("wire: ciphertext %d: %w", i, err)
		}
		out.CTs = append(out.CTs, ct)
	}
	return out, nil
}

// EncodeCipherTensor serializes an RNS-CKKS cipher tensor standalone (the
// message codecs embed the same format inline).
func EncodeCipherTensor(ct *htc.CipherTensor) ([]byte, error) {
	e := &enc{}
	if err := encodeCipherTensor(e, ct); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// DecodeCipherTensor parses a standalone cipher tensor.
func DecodeCipherTensor(data []byte) (*htc.CipherTensor, error) {
	d := &dec{buf: data}
	ct, err := decodeCipherTensor(d)
	if err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return ct, nil
}
