package wire

import (
	"fmt"

	"chet/internal/ckks"
	"chet/internal/htc"
)

// Sanity caps on adversarial counts, chosen far above anything the
// compiler produces but small enough that a lying prefix cannot drive
// pathological allocation.
const (
	maxRotations  = 1 << 16
	maxMessage    = 1 << 16 // error-message bytes
	maxBatchLanes = 1 << 12 // batch counts / lane indices on the wire
)

// ErrorCode classifies server-side failures on the wire.
type ErrorCode uint32

// The error codes a server may return.
const (
	// CodeBadMessage: the frame decoded but its contents are invalid.
	CodeBadMessage ErrorCode = 1 + iota
	// CodeFingerprintMismatch: client and server compiled different circuits.
	CodeFingerprintMismatch
	// CodeUnknownSession: the quoted session was never opened or has been
	// evicted; the client must re-open (re-upload keys).
	CodeUnknownSession
	// CodeQueueFull: the admission queue is at capacity (backpressure).
	CodeQueueFull
	// CodeDeadlineExceeded: the request missed its deadline in queue or
	// during evaluation.
	CodeDeadlineExceeded
	// CodeShuttingDown: the server is draining and accepts no new work.
	CodeShuttingDown
	// CodeInternal: the evaluation failed (malformed ciphertext, layout
	// mismatch, ...). The connection survives.
	CodeInternal
)

func (c ErrorCode) String() string {
	switch c {
	case CodeBadMessage:
		return "bad-message"
	case CodeFingerprintMismatch:
		return "fingerprint-mismatch"
	case CodeUnknownSession:
		return "unknown-session"
	case CodeQueueFull:
		return "queue-full"
	case CodeDeadlineExceeded:
		return "deadline-exceeded"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint32(c))
	}
}

// SessionOpen carries the client's public evaluation keys and the
// fingerprint of its compilation. Keys are uploaded once per session and
// cached server-side across requests.
type SessionOpen struct {
	Fingerprint [32]byte
	Rotations   []int // rotation amounts realized by RTKS
	PK          *ckks.PublicKey
	RLK         *ckks.RelinearizationKey
	RTKS        *ckks.RotationKeySet
}

// Encode serializes the message payload.
func (m *SessionOpen) Encode() ([]byte, error) {
	if m.PK == nil || m.RLK == nil || m.RTKS == nil {
		return nil, fmt.Errorf("wire: session-open requires pk, rlk, and rtks")
	}
	if len(m.Rotations) > maxRotations {
		return nil, fmt.Errorf("wire: %d rotations exceed cap %d", len(m.Rotations), maxRotations)
	}
	e := &enc{}
	e.buf = append(e.buf, m.Fingerprint[:]...)
	e.u32(uint32(len(m.Rotations)))
	for _, r := range m.Rotations {
		e.i64(r)
	}
	if err := e.marshalInto(m.PK); err != nil {
		return nil, err
	}
	if err := e.marshalInto(m.RLK); err != nil {
		return nil, err
	}
	if err := e.marshalInto(m.RTKS); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode. All cryptographic material
// passes through the bounds-checked ckks unmarshalers.
func (m *SessionOpen) Decode(data []byte) error {
	d := &dec{buf: data}
	if len(data) < 32 {
		return fmt.Errorf("wire: session-open shorter than fingerprint")
	}
	copy(m.Fingerprint[:], data[:32])
	d.pos = 32
	n := int(d.u32())
	if d.err == nil && (n < 0 || n > maxRotations) {
		d.fail(fmt.Sprintf("implausible rotation count %d", n))
	}
	rots := make([]int, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		rots = append(rots, d.i64())
	}
	pkb, rlkb, rtksb := d.blob(), d.blob(), d.blob()
	if err := d.finish(); err != nil {
		return err
	}
	pk := &ckks.PublicKey{}
	if err := pk.UnmarshalBinary(pkb); err != nil {
		return fmt.Errorf("wire: session-open public key: %w", err)
	}
	rlk := &ckks.RelinearizationKey{}
	if err := rlk.UnmarshalBinary(rlkb); err != nil {
		return fmt.Errorf("wire: session-open relinearization key: %w", err)
	}
	rtks := &ckks.RotationKeySet{}
	if err := rtks.UnmarshalBinary(rtksb); err != nil {
		return fmt.Errorf("wire: session-open rotation keys: %w", err)
	}
	m.Rotations, m.PK, m.RLK, m.RTKS = rots, pk, rlk, rtks
	return nil
}

// SessionAccept acknowledges a session-open with the registry ID.
type SessionAccept struct {
	SessionID uint64
}

// Encode serializes the message payload.
func (m *SessionAccept) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.SessionID)
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *SessionAccept) Decode(data []byte) error {
	d := &dec{buf: data}
	m.SessionID = d.u64()
	return d.finish()
}

// InferRequest asks the server to evaluate the compiled circuit on one
// encrypted input under an open session.
type InferRequest struct {
	SessionID uint64
	RequestID uint64
	// TraceID correlates this request with the server-side spans and batch
	// assignment it produces (logged and echoed in the response). Zero
	// means the client did not ask for correlation.
	TraceID uint64
	// ParentSpan is the span the receiver should parent its request scope
	// under: the client's call span, or — after a router rewrote the header
	// in flight — the router's relay span, which is what stitches router
	// and worker span trees into one trace. Zero means "no parent".
	ParentSpan uint64
	// TimeoutMillis caps this request's total latency (queue + execution).
	// Zero defers to the server's configured default.
	TimeoutMillis uint32
	Tensor        *htc.CipherTensor
}

// Encode serializes the message payload.
func (m *InferRequest) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.SessionID)
	e.u64(m.RequestID)
	e.u64(m.TraceID)
	e.u64(m.ParentSpan)
	e.u32(m.TimeoutMillis)
	if err := encodeCipherTensor(e, m.Tensor); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *InferRequest) Decode(data []byte) error {
	d := &dec{buf: data}
	m.SessionID = d.u64()
	m.RequestID = d.u64()
	m.TraceID = d.u64()
	m.ParentSpan = d.u64()
	m.TimeoutMillis = d.u32()
	ct, err := decodeCipherTensor(d)
	if err != nil {
		return err
	}
	if err := d.finish(); err != nil {
		return err
	}
	m.Tensor = ct
	return nil
}

// InferResponse returns the encrypted prediction for one request. When the
// server coalesced the request into a batch, Batch carries the number of
// co-packed requests and Lane the slot lane holding this request's
// prediction; the client extracts its lane before decrypting. Batch <= 1
// means the prediction occupies lane 0 (the unbatched wire shape).
type InferResponse struct {
	RequestID uint64
	// TraceID echoes the request's trace ID.
	TraceID uint64
	Batch   uint32
	Lane    uint32
	Tensor  *htc.CipherTensor
}

// Encode serializes the message payload.
func (m *InferResponse) Encode() ([]byte, error) {
	if m.Batch > maxBatchLanes || m.Lane >= maxBatchLanes {
		return nil, fmt.Errorf("wire: infer-response batch %d / lane %d exceed cap %d",
			m.Batch, m.Lane, maxBatchLanes)
	}
	e := &enc{}
	e.u64(m.RequestID)
	e.u64(m.TraceID)
	e.u32(m.Batch)
	e.u32(m.Lane)
	if err := encodeCipherTensor(e, m.Tensor); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *InferResponse) Decode(data []byte) error {
	d := &dec{buf: data}
	m.RequestID = d.u64()
	m.TraceID = d.u64()
	batch := d.u32()
	lane := d.u32()
	if d.err == nil && (batch > maxBatchLanes || lane >= maxBatchLanes) {
		d.fail(fmt.Sprintf("implausible batch %d / lane %d", batch, lane))
	}
	if d.err == nil && batch > 1 && lane >= batch {
		d.fail(fmt.Sprintf("lane %d outside batch %d", lane, batch))
	}
	ct, err := decodeCipherTensor(d)
	if err != nil {
		return err
	}
	if err := d.finish(); err != nil {
		return err
	}
	m.Batch, m.Lane, m.Tensor = batch, lane, ct
	return nil
}

// InferBatchRequest asks the server to evaluate the compiled circuit on a
// tensor the client already packed with Count images in its leading batch
// lanes. Count must not exceed the tensor's compiled batch capacity; the
// server answers with one InferBatchResponse (or an ErrorFrame).
type InferBatchRequest struct {
	SessionID uint64
	RequestID uint64
	// TraceID correlates this request with its server-side spans in logs
	// and traces; echoed in the response. Zero disables correlation.
	TraceID uint64
	// ParentSpan parents the receiver's request scope (see
	// InferRequest.ParentSpan); routers rewrite it in flight.
	ParentSpan uint64
	// TimeoutMillis caps this request's total latency (queue + execution).
	// Zero defers to the server's configured default.
	TimeoutMillis uint32
	// Count is the number of occupied batch lanes (>= 1).
	Count  uint32
	Tensor *htc.CipherTensor
}

// Encode serializes the message payload.
func (m *InferBatchRequest) Encode() ([]byte, error) {
	if m.Count < 1 || m.Count > maxBatchLanes {
		return nil, fmt.Errorf("wire: infer-batch-request count %d outside [1, %d]", m.Count, maxBatchLanes)
	}
	e := &enc{}
	e.u64(m.SessionID)
	e.u64(m.RequestID)
	e.u64(m.TraceID)
	e.u64(m.ParentSpan)
	e.u32(m.TimeoutMillis)
	e.u32(m.Count)
	if err := encodeCipherTensor(e, m.Tensor); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *InferBatchRequest) Decode(data []byte) error {
	d := &dec{buf: data}
	m.SessionID = d.u64()
	m.RequestID = d.u64()
	m.TraceID = d.u64()
	m.ParentSpan = d.u64()
	m.TimeoutMillis = d.u32()
	count := d.u32()
	if d.err == nil && (count < 1 || count > maxBatchLanes) {
		d.fail(fmt.Sprintf("implausible batch count %d", count))
	}
	ct, err := decodeCipherTensor(d)
	if err != nil {
		return err
	}
	if err := d.finish(); err != nil {
		return err
	}
	if int(count) > ct.Batches() {
		return fmt.Errorf("wire: infer-batch-request count %d exceeds tensor batch capacity %d",
			count, ct.Batches())
	}
	m.Count, m.Tensor = count, ct
	return nil
}

// InferBatchResponse returns the encrypted predictions of a batched
// request: one tensor whose leading Count lanes hold the per-image outputs.
type InferBatchResponse struct {
	RequestID uint64
	// TraceID echoes the request's trace ID.
	TraceID uint64
	Count   uint32
	Tensor  *htc.CipherTensor
}

// Encode serializes the message payload.
func (m *InferBatchResponse) Encode() ([]byte, error) {
	if m.Count < 1 || m.Count > maxBatchLanes {
		return nil, fmt.Errorf("wire: infer-batch-response count %d outside [1, %d]", m.Count, maxBatchLanes)
	}
	e := &enc{}
	e.u64(m.RequestID)
	e.u64(m.TraceID)
	e.u32(m.Count)
	if err := encodeCipherTensor(e, m.Tensor); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *InferBatchResponse) Decode(data []byte) error {
	d := &dec{buf: data}
	m.RequestID = d.u64()
	m.TraceID = d.u64()
	count := d.u32()
	if d.err == nil && (count < 1 || count > maxBatchLanes) {
		d.fail(fmt.Sprintf("implausible batch count %d", count))
	}
	ct, err := decodeCipherTensor(d)
	if err != nil {
		return err
	}
	if err := d.finish(); err != nil {
		return err
	}
	if int(count) > ct.Batches() {
		return fmt.Errorf("wire: infer-batch-response count %d exceeds tensor batch capacity %d",
			count, ct.Batches())
	}
	m.Count, m.Tensor = count, ct
	return nil
}

// ErrorFrame reports a failure. RequestID is zero for connection-level
// failures (e.g. a rejected session-open).
type ErrorFrame struct {
	Code      ErrorCode
	RequestID uint64
	Message   string
}

// Error renders the frame as a Go error string.
func (m *ErrorFrame) Error() string {
	return fmt.Sprintf("server error %v: %s", m.Code, m.Message)
}

// Encode serializes the message payload.
func (m *ErrorFrame) Encode() ([]byte, error) {
	msg := m.Message
	if len(msg) > maxMessage {
		msg = msg[:maxMessage]
	}
	e := &enc{}
	e.u32(uint32(m.Code))
	e.u64(m.RequestID)
	e.blob([]byte(msg))
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *ErrorFrame) Decode(data []byte) error {
	d := &dec{buf: data}
	code := ErrorCode(d.u32())
	req := d.u64()
	msg := d.blob()
	if d.err == nil && len(msg) > maxMessage {
		d.fail(fmt.Sprintf("error message of %d bytes exceeds cap", len(msg)))
	}
	if err := d.finish(); err != nil {
		return err
	}
	m.Code, m.RequestID, m.Message = code, req, string(msg)
	return nil
}
