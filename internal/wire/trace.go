package wire

import (
	"fmt"
	"math"
	"time"

	"chet/internal/telemetry"
)

// Sanity caps for trace-dump payloads: a span ring holds at most 1<<16
// spans by default, and labels are short mnemonics/scope paths.
const (
	maxTraceSpans   = 1 << 17
	maxSpanLabel    = 1 << 10
	maxProcessLabel = 1 << 8
)

// TraceDump (router → worker) requests the worker's retained telemetry
// spans. TraceID filters to one trace; zero requests the whole ring.
type TraceDump struct {
	TraceID uint64
}

// Encode serializes the message payload.
func (m *TraceDump) Encode() ([]byte, error) {
	e := &enc{}
	e.u64(m.TraceID)
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *TraceDump) Decode(data []byte) error {
	d := &dec{buf: data}
	m.TraceID = d.u64()
	return d.finish()
}

// TraceDumpAck (worker → router) carries one process's span ring: the
// process label the merged trace displays, the epoch its span Start
// offsets measure from (Unix nanoseconds, so rings from different
// processes rebase onto one timeline), and the spans themselves.
type TraceDumpAck struct {
	Process       string
	EpochUnixNano int64
	Spans         []telemetry.Span
}

// Encode serializes the message payload.
func (m *TraceDumpAck) Encode() ([]byte, error) {
	if len(m.Process) > maxProcessLabel {
		return nil, fmt.Errorf("wire: trace-dump-ack process label of %d bytes exceeds cap %d",
			len(m.Process), maxProcessLabel)
	}
	if len(m.Spans) > maxTraceSpans {
		return nil, fmt.Errorf("wire: trace-dump-ack %d spans exceed cap %d", len(m.Spans), maxTraceSpans)
	}
	e := &enc{}
	e.blob([]byte(m.Process))
	e.u64(uint64(m.EpochUnixNano))
	e.u32(uint32(len(m.Spans)))
	for i := range m.Spans {
		if err := encodeSpan(e, &m.Spans[i]); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// Decode parses a payload produced by Encode.
func (m *TraceDumpAck) Decode(data []byte) error {
	d := &dec{buf: data}
	proc := d.blob()
	if d.err == nil && len(proc) > maxProcessLabel {
		d.fail(fmt.Sprintf("process label of %d bytes exceeds cap", len(proc)))
	}
	epoch := int64(d.u64())
	n := int(d.u32())
	if d.err == nil && (n < 0 || n > maxTraceSpans) {
		d.fail(fmt.Sprintf("implausible span count %d", n))
	}
	spans := make([]telemetry.Span, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		s, err := decodeSpan(d)
		if err != nil {
			return err
		}
		spans = append(spans, s)
	}
	if err := d.finish(); err != nil {
		return err
	}
	m.Process, m.EpochUnixNano, m.Spans = string(proc), epoch, spans
	return nil
}

// encodeSpan appends one telemetry span. Durations and levels travel as
// signed 64-bit values, scales as IEEE 754 bits.
func encodeSpan(e *enc, s *telemetry.Span) error {
	if s.Kind > telemetry.KindScope {
		return fmt.Errorf("wire: unknown span kind %d", s.Kind)
	}
	if len(s.Op) > maxSpanLabel || len(s.Scope) > maxSpanLabel {
		return fmt.Errorf("wire: span label exceeds cap %d", maxSpanLabel)
	}
	e.u8(byte(s.Kind))
	e.blob([]byte(s.Op))
	e.blob([]byte(s.Scope))
	e.u64(uint64(s.Start))
	e.u64(uint64(s.Dur))
	e.i64(s.LevelIn)
	e.i64(s.LevelOut)
	e.u64(math.Float64bits(s.ScaleIn))
	e.u64(math.Float64bits(s.ScaleOut))
	e.i64(s.Rot)
	e.u64(uint64(s.GID))
	e.u64(s.TraceID)
	e.u64(s.SpanID)
	e.u64(s.Parent)
	return nil
}

// decodeSpan reads one span, validating the kind and label caps.
func decodeSpan(d *dec) (telemetry.Span, error) {
	var s telemetry.Span
	kind := d.u8()
	if d.err == nil && kind > uint8(telemetry.KindScope) {
		d.fail(fmt.Sprintf("unknown span kind %d", kind))
	}
	op := d.blob()
	if d.err == nil && len(op) > maxSpanLabel {
		d.fail(fmt.Sprintf("op label of %d bytes exceeds cap", len(op)))
	}
	scope := d.blob()
	if d.err == nil && len(scope) > maxSpanLabel {
		d.fail(fmt.Sprintf("scope label of %d bytes exceeds cap", len(scope)))
	}
	s.Kind = telemetry.SpanKind(kind)
	s.Op = string(op)
	s.Scope = string(scope)
	s.Start = time.Duration(d.u64())
	s.Dur = time.Duration(d.u64())
	s.LevelIn = d.i64()
	s.LevelOut = d.i64()
	s.ScaleIn = math.Float64frombits(d.u64())
	s.ScaleOut = math.Float64frombits(d.u64())
	s.Rot = d.i64()
	s.GID = int64(d.u64())
	s.TraceID = d.u64()
	s.SpanID = d.u64()
	s.Parent = d.u64()
	if d.err != nil {
		return telemetry.Span{}, d.err
	}
	return s, nil
}
