// Package wire defines the versioned binary framing protocol of the CHET
// serving subsystem: the bytes a client and an inference server exchange in
// the paper's deployment model (Figure 3). A connection carries a sequence
// of length-prefixed frames; each frame has a fixed 12-byte header and a
// typed payload encoded with the bounds-checked codecs in this package,
// which reuse the ckks MarshalBinary/UnmarshalBinary formats for all
// cryptographic material.
//
// Frame header (little-endian):
//
//	offset  size  field
//	0       4     magic   0xC4E75EF1
//	4       1     version (currently 5)
//	5       1     type    (MsgType)
//	6       2     flags   (reserved, must be zero)
//	8       4     payload length in bytes
//
// Every decoder in this package is total: corrupted, truncated, or
// adversarial bytes yield an error, never a panic, and oversized frames are
// rejected from the header alone before any payload allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// FrameMagic begins every frame.
	FrameMagic uint32 = 0xC4E75EF1
	// Version is the protocol version this package speaks. Version 2 added
	// the batch fields to the tensor codec and the batched inference frames;
	// version 3 added the request trace IDs that correlate a client request
	// with its server-side spans and batch assignment; version 4 added the
	// fleet control frames (health probes, model-registry sync, and
	// eval-key session handoff) a router tier exchanges with its workers;
	// version 5 added the parent-span field to the inference requests (so a
	// router can interpose its relay span between the client and the worker)
	// and the trace-dump control frames that collect per-process span rings
	// into one cross-process trace. Older peers are rejected at the header.
	Version byte = 5
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 12
	// DefaultMaxFrame bounds a frame's payload when the caller does not
	// choose a limit. Rotation-key sets dominate: at logN 16 a full CHET
	// key set runs to hundreds of megabytes, so the default is generous.
	DefaultMaxFrame = 1 << 30
)

// MsgType identifies a frame's payload.
type MsgType uint8

// The frame types of the serving protocol.
const (
	// MsgSessionOpen (client → server): evaluation keys plus the compiled
	// circuit fingerprint.
	MsgSessionOpen MsgType = 1 + iota
	// MsgSessionAccept (server → client): the session ID to quote on
	// subsequent requests.
	MsgSessionAccept
	// MsgInferRequest (client → server): an encrypted input tensor.
	MsgInferRequest
	// MsgInferResponse (server → client): the encrypted prediction.
	MsgInferResponse
	// MsgError (server → client): a typed failure for one request or for
	// the connection.
	MsgError
	// MsgInferBatchRequest (client → server): one tensor carrying several
	// images pre-packed into batch lanes, evaluated as a single request.
	MsgInferBatchRequest
	// MsgInferBatchResponse (server → client): the encrypted predictions of
	// a batched request, one per lane.
	MsgInferBatchResponse
	// MsgHealthProbe (router → worker): a liveness/readiness probe.
	MsgHealthProbe
	// MsgHealthAck (worker → router): the probe echo plus worker status.
	MsgHealthAck
	// MsgRegistrySync (router → worker): the router's replicated
	// compiled-model registry, pushed so every worker holds a copy.
	MsgRegistrySync
	// MsgRegistrySyncAck (worker → router): the models this worker serves,
	// merged into the router's registry.
	MsgRegistrySyncAck
	// MsgSessionHandoff (router → worker): a session's evaluation-key
	// frames replayed to a (possibly new) owner worker.
	MsgSessionHandoff
	// MsgSessionHandoffAck (worker → router): the worker-local session ID
	// the handed-off session evaluates under.
	MsgSessionHandoffAck
	// MsgTraceDump (router → worker): ask for the worker's retained spans,
	// optionally filtered to one trace ID.
	MsgTraceDump
	// MsgTraceDumpAck (worker → router): the worker's span ring plus the
	// epoch its span offsets measure from, ready to merge into a
	// cross-process trace.
	MsgTraceDumpAck
)

func (t MsgType) String() string {
	switch t {
	case MsgSessionOpen:
		return "session-open"
	case MsgSessionAccept:
		return "session-accept"
	case MsgInferRequest:
		return "infer-request"
	case MsgInferResponse:
		return "infer-response"
	case MsgError:
		return "error"
	case MsgInferBatchRequest:
		return "infer-batch-request"
	case MsgInferBatchResponse:
		return "infer-batch-response"
	case MsgHealthProbe:
		return "health-probe"
	case MsgHealthAck:
		return "health-ack"
	case MsgRegistrySync:
		return "registry-sync"
	case MsgRegistrySyncAck:
		return "registry-sync-ack"
	case MsgSessionHandoff:
		return "session-handoff"
	case MsgSessionHandoffAck:
		return "session-handoff-ack"
	case MsgTraceDump:
		return "trace-dump"
	case MsgTraceDumpAck:
		return "trace-dump-ack"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Sentinel errors a frame reader can classify on.
var (
	// ErrBadFrame marks a malformed header (magic, version, flags, type).
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrFrameTooLarge marks a header whose payload exceeds the cap.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
)

// WriteFrame writes one frame. It performs exactly two writes (header,
// payload), so callers serializing access to w get atomic frames.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = Version
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint16(hdr[6:], 0)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting malformed headers and payloads
// larger than maxFrame (0 selects DefaultMaxFrame). io.EOF is returned
// verbatim when the stream ends cleanly between frames.
func ReadFrame(r io.Reader, maxFrame int) (MsgType, []byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != FrameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%08x", ErrBadFrame, m)
	}
	if v := hdr[4]; v != Version {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, v)
	}
	t := MsgType(hdr[5])
	if t < MsgSessionOpen || t > MsgTraceDumpAck {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, hdr[5])
	}
	if f := binary.LittleEndian.Uint16(hdr[6:]); f != 0 {
		return 0, nil, fmt.Errorf("%w: nonzero reserved flags 0x%04x", ErrBadFrame, f)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("%w: payload %d > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return t, payload, nil
}

// --- bounds-checked payload codecs ---

// enc is an append-only payload builder.
type enc struct{ buf []byte }

func (e *enc) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int)     { e.u64(uint64(int64(v))) }
func (e *enc) blob(b []byte) { e.u32(uint32(len(b))); e.buf = append(e.buf, b...) }

// marshalInto appends m's binary form as a length-prefixed blob.
func (e *enc) marshalInto(m interface{ MarshalBinary() ([]byte, error) }) error {
	b, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	e.blob(b)
	return nil
}

// dec is a bounds-checked payload cursor: the first failure latches and
// every subsequent read returns a zero value, so decoders can run straight
// through and check the error once.
type dec struct {
	buf []byte
	pos int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode: %s at offset %d", msg, d.pos)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos+1 > len(d.buf) {
		d.fail("truncated u8")
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.buf) {
		d.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

func (d *dec) i64() int { return int(int64(d.u64())) }

// blob reads a length-prefixed byte section. The length is validated
// against the remaining buffer before any allocation, so a lying prefix
// cannot trigger a huge make.
func (d *dec) blob() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.fail(fmt.Sprintf("blob length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos))
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("wire: decode: %d trailing bytes", len(d.buf)-d.pos)
	}
	return nil
}
