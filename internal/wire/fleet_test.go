package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestHealthProbeRoundTrip(t *testing.T) {
	in := &HealthProbe{Nonce: 0xDEADBEEFCAFEF00D}
	p, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var out HealthProbe
	if err := out.Decode(p); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip: got %+v, want %+v", out, *in)
	}
}

func TestHealthAckRoundTrip(t *testing.T) {
	in := &HealthAck{Nonce: 7, ActiveSessions: 3, Inflight: 11, Draining: true}
	for i := range in.Fingerprint {
		in.Fingerprint[i] = byte(i * 7)
	}
	p, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var out HealthAck
	if err := out.Decode(p); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip: got %+v, want %+v", out, *in)
	}
	// A non-boolean draining byte is rejected, not silently truthy.
	p[len(p)-1] = 2
	if err := out.Decode(p); err == nil {
		t.Fatal("expected an error for draining byte 2")
	}
}

func TestRegistrySyncRoundTrip(t *testing.T) {
	in := &RegistrySync{Entries: []RegistryEntry{
		{Model: "LeNet-tiny", LogN: 13, Batch: 8},
		{Model: "SqueezeNet-CIFAR", LogN: 16, Batch: 1},
	}}
	in.Entries[0].Fingerprint[0] = 0xAA
	in.Entries[1].Fingerprint[31] = 0xBB
	p, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var out RegistrySync
	if err := out.Decode(p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Entries, in.Entries) {
		t.Fatalf("round trip: got %+v, want %+v", out.Entries, in.Entries)
	}

	var ack RegistrySyncAck
	if err := ack.Decode(p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ack.Entries, in.Entries) {
		t.Fatal("ack decoder disagrees with sync decoder on identical bytes")
	}

	// Empty registries are legal (a cold router syncing before any worker
	// has answered).
	p, err = (&RegistrySync{}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Decode(p); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 {
		t.Fatalf("empty registry decoded to %d entries", len(out.Entries))
	}
}

func TestRegistrySyncRejectsOversize(t *testing.T) {
	long := make([]byte, maxModelName+1)
	in := &RegistrySync{Entries: []RegistryEntry{{Model: string(long)}}}
	if _, err := in.Encode(); err == nil {
		t.Fatal("expected an error for an oversized model name")
	}
	entries := make([]RegistryEntry, maxRegistryEntries+1)
	if _, err := (&RegistrySync{Entries: entries}).Encode(); err == nil {
		t.Fatal("expected an error for too many entries")
	}
}

func TestSessionHandoffRoundTrip(t *testing.T) {
	in := &SessionHandoff{RouterSessionID: 42, Open: []byte{1, 2, 3, 4, 5}}
	p, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var out SessionHandoff
	if err := out.Decode(p); err != nil {
		t.Fatal(err)
	}
	if out.RouterSessionID != in.RouterSessionID || !bytes.Equal(out.Open, in.Open) {
		t.Fatalf("round trip: got %+v, want %+v", out, *in)
	}

	ackIn := &SessionHandoffAck{RouterSessionID: 42, WorkerSessionID: 9}
	p, err = ackIn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var ackOut SessionHandoffAck
	if err := ackOut.Decode(p); err != nil {
		t.Fatal(err)
	}
	if ackOut != *ackIn {
		t.Fatalf("ack round trip: got %+v, want %+v", ackOut, *ackIn)
	}
}

func TestControlFramesOverFraming(t *testing.T) {
	// A full control exchange over the frame layer: probe, ack, sync,
	// handoff — each frame decodes back to what was written.
	var buf bytes.Buffer
	write := func(mt MsgType, m interface{ Encode() ([]byte, error) }) {
		t.Helper()
		p, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, mt, p); err != nil {
			t.Fatal(err)
		}
	}
	write(MsgHealthProbe, &HealthProbe{Nonce: 1})
	write(MsgHealthAck, &HealthAck{Nonce: 1, ActiveSessions: 2})
	write(MsgRegistrySync, &RegistrySync{Entries: []RegistryEntry{{Model: "m", LogN: 11, Batch: 2}}})
	write(MsgSessionHandoff, &SessionHandoff{RouterSessionID: 5, Open: []byte("keys")})
	write(MsgSessionHandoffAck, &SessionHandoffAck{RouterSessionID: 5, WorkerSessionID: 6})

	wantTypes := []MsgType{MsgHealthProbe, MsgHealthAck, MsgRegistrySync, MsgSessionHandoff, MsgSessionHandoffAck}
	for _, want := range wantTypes {
		mt, _, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("reading %v frame: %v", want, err)
		}
		if mt != want {
			t.Fatalf("frame type %v, want %v", mt, want)
		}
	}
}
