package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
)

// testBackend builds a tiny RNS backend with deterministic keys.
func testBackend(t *testing.T) *hisa.RNSBackend {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 5, LogQ: []int{30, 25}, LogP: 30, LogScale: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(7),
		Rotations: []int{1, 2, 5},
	})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	if err := WriteFrame(&buf, MsgInferRequest, payload); err != nil {
		t.Fatal(err)
	}
	tp, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp != MsgInferRequest || !bytes.Equal(got, payload) {
		t.Fatalf("round trip gave type %v payload %q", tp, got)
	}
	// Clean EOF between frames.
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("want io.EOF on empty stream, got %v", err)
	}
}

func TestFrameRejectsMalformedHeaders(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		_ = WriteFrame(&buf, MsgError, []byte{1, 2, 3})
		return buf.Bytes()
	}

	cases := map[string]func([]byte) []byte{
		"bad magic":      func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version":    func(b []byte) []byte { b[4] = 99; return b },
		"unknown type 0": func(b []byte) []byte { b[5] = 0; return b },
		"unknown type":   func(b []byte) []byte { b[5] = 200; return b },
		"nonzero flags":  func(b []byte) []byte { b[6] = 1; return b },
		"truncated header": func(b []byte) []byte {
			return b[:HeaderSize-3]
		},
		"truncated payload": func(b []byte) []byte {
			return b[:len(b)-1]
		},
	}
	for name, corrupt := range cases {
		b := corrupt(valid())
		if _, _, err := ReadFrame(bytes.NewReader(b), 0); err == nil {
			t.Errorf("%s: accepted", name)
		} else if errors.Is(err, io.EOF) && name != "empty" {
			t.Errorf("%s: classified as clean EOF", name)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = Version
	hdr[5] = byte(MsgInferRequest)
	binary.LittleEndian.PutUint32(hdr[8:], 1<<31-1) // claims a ~2 GiB payload
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame gave %v, want ErrFrameTooLarge", err)
	}
	// The rejection must come from the header alone: no payload bytes were
	// provided, and no attempt to read them may be made.
}

func TestSessionOpenRoundTrip(t *testing.T) {
	b := testBackend(t)
	keys := b.PublicKeys()
	msg := &SessionOpen{
		Rotations: keys.Rotations,
		PK:        keys.PK,
		RLK:       keys.RLK,
		RTKS:      keys.RTKS,
	}
	for i := range msg.Fingerprint {
		msg.Fingerprint[i] = byte(i)
	}
	data, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got SessionOpen
	if err := got.Decode(data); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != msg.Fingerprint {
		t.Fatal("fingerprint mismatch")
	}
	if len(got.Rotations) != len(msg.Rotations) {
		t.Fatalf("rotations %v != %v", got.Rotations, msg.Rotations)
	}
	if len(got.RTKS.Keys) != len(msg.RTKS.Keys) {
		t.Fatalf("rotation key set size %d != %d", len(got.RTKS.Keys), len(msg.RTKS.Keys))
	}
	// The decoded keys must validate against the generating parameters.
	if err := hisa.ValidateRNSKeys(b.Params(), hisa.RNSPublicKeys{
		PK: got.PK, RLK: got.RLK, RTKS: got.RTKS, Rotations: got.Rotations,
	}); err != nil {
		t.Fatalf("decoded keys do not validate: %v", err)
	}
	// Corrupt every byte offset class: decode must error, never panic.
	for i := 0; i < len(data); i += 7 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x5A
		var m SessionOpen
		_ = m.Decode(bad) // must not panic; error or (rarely) benign change
	}
	// Truncations must error.
	for i := 0; i < len(data)-1; i += 101 {
		var m SessionOpen
		if err := m.Decode(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestCipherTensorRoundTrip(t *testing.T) {
	b := testBackend(t)
	enc := func(vals []float64) hisa.Ciphertext {
		return b.Encrypt(b.Encode(vals, 1<<25))
	}
	ct := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 2, H: 2, W: 3,
		Offset: 1, RowStride: 4, ColStride: 1, ChanStride: 0, CPerCT: 1,
		CTs: []hisa.Ciphertext{enc([]float64{1, 2}), enc([]float64{3, 4})},
	}
	data, err := EncodeCipherTensor(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCipherTensor(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.C != ct.C || got.H != ct.H || got.W != ct.W || got.CPerCT != ct.CPerCT ||
		got.Offset != ct.Offset || got.RowStride != ct.RowStride || got.Layout != ct.Layout {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, ct)
	}
	if err := got.Validate(b.Slots()); err != nil {
		t.Fatalf("decoded tensor does not validate: %v", err)
	}
	// Decrypt-decode both and compare bit-identically.
	for i := range ct.CTs {
		want := b.Decode(b.Decrypt(ct.CTs[i]))
		have := b.Decode(b.Decrypt(got.CTs[i]))
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("ciphertext %d slot %d differs after round trip", i, j)
			}
		}
	}
}

// TestCipherTensorComplexRoundTrip: the complex-packing marker rides the
// layout byte's high bit and the batch geometry rides two metadata ints, so
// a complex-packed batched tensor must come back with Complex, B, and
// BatchStride intact — and a real-packed tensor must stay unflagged.
func TestCipherTensorComplexRoundTrip(t *testing.T) {
	b := testBackend(t)
	enc := func(vals []float64) hisa.Ciphertext {
		return b.Encrypt(b.Encode(vals, 1<<25))
	}
	ct := &htc.CipherTensor{
		Layout: htc.LayoutCHW, C: 1, H: 2, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		B: 2, BatchStride: 8, Complex: true,
		CTs: []hisa.Ciphertext{enc([]float64{1, 2, 3, 4})},
	}
	data, err := EncodeCipherTensor(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCipherTensor(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Complex {
		t.Fatal("Complex flag lost in round trip")
	}
	if got.B != 2 || got.BatchStride != 8 {
		t.Fatalf("batch geometry lost: B=%d BatchStride=%d", got.B, got.BatchStride)
	}
	if got.Layout != htc.LayoutCHW {
		t.Fatalf("layout corrupted by the flag bit: %v", got.Layout)
	}
	if err := got.Validate(b.Slots()); err != nil {
		t.Fatalf("decoded tensor does not validate: %v", err)
	}
	want := b.Decode(b.Decrypt(ct.CTs[0]))
	have := b.Decode(b.Decrypt(got.CTs[0]))
	for j := range want {
		if want[j] != have[j] {
			t.Fatalf("slot %d differs after round trip", j)
		}
	}

	// A real-packed tensor must not grow the flag.
	ct.Complex = false
	data, err = EncodeCipherTensor(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeCipherTensor(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Complex {
		t.Fatal("real-packed tensor decoded as complex")
	}
}

func TestCipherTensorRejectsBadMetadata(t *testing.T) {
	b := testBackend(t)
	good := &htc.CipherTensor{
		Layout: htc.LayoutHW, C: 1, H: 2, W: 2,
		RowStride: 2, ColStride: 1, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{1}, 1<<25))},
	}
	data, err := EncodeCipherTensor(good)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*htc.CipherTensor)) []byte {
		c := *good
		f(&c)
		// Encode manually bypassing Encode-side validation (there is none
		// on metadata), so the decoder is what must reject.
		d, err := EncodeCipherTensor(&c)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := map[string][]byte{
		"zero C":          mutate(func(c *htc.CipherTensor) { c.C = 0 }),
		"negative offset": mutate(func(c *htc.CipherTensor) { c.Offset = -1 }),
		"huge stride":     mutate(func(c *htc.CipherTensor) { c.RowStride = 1 << 40 }),
		"count mismatch":  mutate(func(c *htc.CipherTensor) { c.C = 5 }),
	}
	for name, d := range cases {
		if _, err := DecodeCipherTensor(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Bad layout byte.
	bad := append([]byte(nil), data...)
	bad[0] = 9
	if _, err := DecodeCipherTensor(bad); err == nil {
		t.Error("layout 9 accepted")
	}
}

func TestInferMessagesRoundTrip(t *testing.T) {
	b := testBackend(t)
	ct := &htc.CipherTensor{
		Layout: htc.LayoutCHW, C: 1, H: 1, W: 2,
		RowStride: 2, ColStride: 1, ChanStride: 2, CPerCT: 1,
		CTs: []hisa.Ciphertext{b.Encrypt(b.Encode([]float64{5, 6}, 1<<25))},
	}
	req := &InferRequest{SessionID: 42, RequestID: 7, TimeoutMillis: 1500, Tensor: ct}
	data, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var gotReq InferRequest
	if err := gotReq.Decode(data); err != nil {
		t.Fatal(err)
	}
	if gotReq.SessionID != 42 || gotReq.RequestID != 7 || gotReq.TimeoutMillis != 1500 {
		t.Fatalf("header fields mangled: %+v", gotReq)
	}

	resp := &InferResponse{RequestID: 7, Tensor: ct}
	data, err = resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var gotResp InferResponse
	if err := gotResp.Decode(data); err != nil {
		t.Fatal(err)
	}
	if gotResp.RequestID != 7 || gotResp.Tensor.NumCTs() != 1 {
		t.Fatalf("response mangled: %+v", gotResp)
	}

	ef := &ErrorFrame{Code: CodeQueueFull, RequestID: 9, Message: "admission queue full"}
	data, err = ef.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var gotErr ErrorFrame
	if err := gotErr.Decode(data); err != nil {
		t.Fatal(err)
	}
	if gotErr.Code != CodeQueueFull || gotErr.RequestID != 9 || gotErr.Message != "admission queue full" {
		t.Fatalf("error frame mangled: %+v", gotErr)
	}

	var accept SessionAccept
	data, _ = (&SessionAccept{SessionID: 11}).Encode()
	if err := accept.Decode(data); err != nil || accept.SessionID != 11 {
		t.Fatalf("session accept mangled: %+v err %v", accept, err)
	}
	// Trailing garbage must be rejected.
	if err := accept.Decode(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
