package ring

import (
	"math/big"
	"testing"
	"testing/quick"
)

func testRing(t testing.TB, logN, nPrimes int) *Ring {
	t.Helper()
	primes, err := GenerateNTTPrimes(55, logN, nPrimes)
	if err != nil {
		t.Fatalf("GenerateNTTPrimes: %v", err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func TestAddSubNegMod(t *testing.T) {
	q := uint64(0x1fffffffffe00001)
	f := func(a, b uint64) bool {
		x, y := a%q, b%q
		sum := AddMod(x, y, q)
		if sum != (x+y)%q {
			return false
		}
		if SubMod(sum, y, q) != x {
			return false
		}
		return AddMod(x, NegMod(x, q), q) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulModAgainstBig(t *testing.T) {
	q := uint64(0x1fffffffffe00001)
	bq := new(big.Int).SetUint64(q)
	f := func(a, b uint64) bool {
		x, y := a%q, b%q
		want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		want.Mod(want, bq)
		return MulMod(x, y, q) == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBRedMatchesMulMod(t *testing.T) {
	for _, q := range []uint64{97, 12289, 0xffffee001, 0x1fffffffffe00001, (1 << 60) - 93} {
		if !IsPrime(q) {
			continue
		}
		m := NewModulus(q)
		f := func(a, b uint64) bool {
			x, y := a%q, b%q
			return m.BRed(x, y) == MulMod(x, y, q)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestMulModShoupMatchesMulMod(t *testing.T) {
	q := uint64(0x1fffffffffe00001)
	prng := NewTestPRNG(1)
	for i := 0; i < 5000; i++ {
		x := prng.Uint64() % q
		w := prng.Uint64() % q
		ws := MForm(w, q)
		if got, want := MulModShoup(x, w, ws, q), MulMod(x, w, q); got != want {
			t.Fatalf("MulModShoup(%d,%d)=%d want %d", x, w, got, want)
		}
	}
}

func TestPowInvMod(t *testing.T) {
	q := uint64(0x3ffffffff040001)
	if !IsPrime(q) {
		t.Skip("test modulus not prime")
	}
	for _, x := range []uint64{1, 2, 3, 12345, q - 1} {
		inv := InvMod(x, q)
		if MulMod(x, inv, q) != 1 {
			t.Fatalf("InvMod(%d) incorrect", x)
		}
	}
	if PowMod(3, 0, q) != 1 {
		t.Fatal("x^0 != 1")
	}
	if PowMod(0, 5, q) != 0 {
		t.Fatal("0^5 != 0")
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 12289: true,
		786433: true, 0: false, 1: false, 4: false, 9: false, 561: false,
		25326001: false, // Carmichael-ish composites
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	logN := 10
	primes, err := GenerateNTTPrimes(40, logN, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 5 {
		t.Fatalf("got %d primes, want 5", len(primes))
	}
	seen := map[uint64]bool{}
	for _, p := range primes {
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if !IsPrime(p) {
			t.Fatalf("%d is not prime", p)
		}
		if (p-1)%(2<<uint(logN)) != 0 {
			t.Fatalf("%d is not ≡ 1 mod 2N", p)
		}
		if p>>39 != 1 {
			t.Fatalf("%d is not a 40-bit prime", p)
		}
	}
}

func TestPrimitiveRoot(t *testing.T) {
	primes, err := GenerateNTTPrimes(45, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range primes {
		psi := primitiveRoot2N(q, 8)
		n := uint64(1) << 8
		if PowMod(psi, n, q) != q-1 {
			t.Fatalf("psi^N != -1 for q=%d", q)
		}
		if PowMod(psi, 2*n, q) != 1 {
			t.Fatalf("psi^2N != 1 for q=%d", q)
		}
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 9, 3)
	s := NewSampler(r, NewTestPRNG(42))
	p := r.NewPoly(r.MaxLevel())
	s.UniformPoly(p, p.Level())
	orig := p.CopyNew()
	r.NTT(p, p.Level())
	r.InvNTT(p, p.Level())
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != orig.Coeffs[i][j] {
				t.Fatalf("NTT roundtrip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// schoolbookNegacyclic computes a*b mod (X^N+1, q) directly.
func schoolbookNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := MulMod(a[i], b[j], q)
			k := i + j
			if k < n {
				out[k] = AddMod(out[k], p, q)
			} else {
				out[k-n] = SubMod(out[k-n], p, q)
			}
		}
	}
	return out
}

func TestNTTMultiplicationMatchesSchoolbook(t *testing.T) {
	r := testRing(t, 6, 2)
	s := NewSampler(r, NewTestPRNG(7))
	level := r.MaxLevel()
	a := r.NewPoly(level)
	b := r.NewPoly(level)
	s.UniformPoly(a, level)
	s.UniformPoly(b, level)

	want := make([][]uint64, level+1)
	for i := 0; i <= level; i++ {
		want[i] = schoolbookNegacyclic(a.Coeffs[i], b.Coeffs[i], r.Moduli[i].Q)
	}

	r.NTT(a, level)
	r.NTT(b, level)
	c := r.NewPoly(level)
	r.MulCoeffs(a, b, c, level)
	r.InvNTT(c, level)

	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if c.Coeffs[i][j] != want[i][j] {
				t.Fatalf("NTT mul mismatch at (%d,%d): got %d want %d", i, j, c.Coeffs[i][j], want[i][j])
			}
		}
	}
}

func TestAutomorphismNTTMatchesCoeffDomain(t *testing.T) {
	r := testRing(t, 7, 2)
	s := NewSampler(r, NewTestPRNG(3))
	level := r.MaxLevel()
	a := r.NewPoly(level)
	s.UniformPoly(a, level)

	for _, k := range []int{1, 2, 3, -1, 13} {
		galEl := r.GaloisElementForRotation(k)

		// Reference: coefficient-domain automorphism, then NTT.
		want := r.NewPoly(level)
		r.AutomorphismCoeff(a, galEl, want, level)
		r.NTT(want, level)

		// NTT-domain permutation.
		ntt := a.CopyNew()
		r.NTT(ntt, level)
		got := r.NewPoly(level)
		r.AutomorphismNTT(ntt, galEl, got, level)

		for i := 0; i <= level; i++ {
			for j := 0; j < r.N; j++ {
				if got.Coeffs[i][j] != want.Coeffs[i][j] {
					t.Fatalf("rot %d: automorphism mismatch at (%d,%d)", k, i, j)
				}
			}
		}
	}

	// Conjugation element too.
	galEl := r.GaloisElementConjugate()
	want := r.NewPoly(level)
	r.AutomorphismCoeff(a, galEl, want, level)
	r.NTT(want, level)
	ntt := a.CopyNew()
	r.NTT(ntt, level)
	got := r.NewPoly(level)
	r.AutomorphismNTT(ntt, galEl, got, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if got.Coeffs[i][j] != want.Coeffs[i][j] {
				t.Fatalf("conjugate automorphism mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestGaloisElementRotationComposes(t *testing.T) {
	r := testRing(t, 8, 1)
	m := uint64(2 * r.N)
	g1 := r.GaloisElementForRotation(1)
	g2 := r.GaloisElementForRotation(2)
	if MulMod(g1, g1, m) != g2 {
		t.Fatalf("5^1 * 5^1 != 5^2 mod 2N")
	}
	gm1 := r.GaloisElementForRotation(-1)
	if MulMod(g1, gm1, m) != 1 {
		t.Fatalf("rot(1) and rot(-1) are not inverses")
	}
}

func TestCRTRoundTrip(t *testing.T) {
	r := testRing(t, 5, 3)
	level := r.MaxLevel()
	s := NewSampler(r, NewTestPRNG(9))
	p := r.NewPoly(level)
	s.UniformPoly(p, level)

	coeffs := r.PolyToBigintCentered(p, level)
	q := r.NewPoly(level)
	r.SetCoeffsBigint(coeffs, q, level)

	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				t.Fatalf("CRT roundtrip mismatch at (%d,%d)", i, j)
			}
		}
	}

	// Centered: all values within (-Q/2, Q/2].
	half := new(big.Int).Rsh(r.ModulusAtLevel(level), 1)
	for j, c := range coeffs {
		if c.CmpAbs(half) > 0 {
			t.Fatalf("coefficient %d not centered: %v", j, c)
		}
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 10, 1)
	s := NewSampler(r, NewTestPRNG(11))

	tern := r.NewPoly(0)
	s.TernaryPoly(tern, 0)
	q := r.Moduli[0].Q
	counts := map[uint64]int{}
	for _, v := range tern.Coeffs[0] {
		if v != 0 && v != 1 && v != q-1 {
			t.Fatalf("ternary coefficient %d out of {-1,0,1}", v)
		}
		counts[v]++
	}
	// Roughly uniform over three values.
	for v, c := range counts {
		if c < r.N/6 {
			t.Errorf("ternary value %d underrepresented: %d of %d", v, c, r.N)
		}
	}

	gauss := r.NewPoly(0)
	s.GaussianPoly(gauss, 0)
	var sum, sumSq float64
	for _, v := range gauss.Coeffs[0] {
		var x float64
		if v > q/2 {
			x = -float64(q - v)
		} else {
			x = float64(v)
		}
		if x > 6*DefaultSigma+1 || x < -6*DefaultSigma-1 {
			t.Fatalf("gaussian sample %v exceeds tail bound", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(r.N)
	std := sumSq / float64(r.N)
	if mean > 0.5 || mean < -0.5 {
		t.Errorf("gaussian mean %v too far from 0", mean)
	}
	if std < 2.0 || std > 25.0 {
		t.Errorf("gaussian variance %v implausible for sigma=3.2", std)
	}
}

func TestPolyArithmeticProperties(t *testing.T) {
	r := testRing(t, 6, 2)
	s := NewSampler(r, NewTestPRNG(5))
	level := r.MaxLevel()

	a, b, c := r.NewPoly(level), r.NewPoly(level), r.NewPoly(level)
	s.UniformPoly(a, level)
	s.UniformPoly(b, level)

	// a + b - b == a
	r.Add(a, b, c, level)
	r.Sub(c, b, c, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if c.Coeffs[i][j] != a.Coeffs[i][j] {
				t.Fatal("add/sub inverse property failed")
			}
		}
	}

	// a + (-a) == 0
	r.Neg(a, c, level)
	r.Add(a, c, c, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if c.Coeffs[i][j] != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}

	// MulScalar(1) is identity; MulScalar distributes over Add.
	r.MulScalar(a, 1, c, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if c.Coeffs[i][j] != a.Coeffs[i][j] {
				t.Fatal("MulScalar(1) not identity")
			}
		}
	}

	d, e := r.NewPoly(level), r.NewPoly(level)
	r.Add(a, b, c, level)
	r.MulScalar(c, 7, c, level)
	r.MulScalar(a, 7, d, level)
	r.MulScalar(b, 7, e, level)
	r.Add(d, e, d, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if c.Coeffs[i][j] != d.Coeffs[i][j] {
				t.Fatal("MulScalar does not distribute over Add")
			}
		}
	}
}

func TestNewPolyLevelsAndCopy(t *testing.T) {
	r := testRing(t, 4, 3)
	p := r.NewPoly(1)
	if p.Level() != 1 {
		t.Fatalf("level = %d, want 1", p.Level())
	}
	p.Coeffs[0][0] = 42
	cp := p.CopyNew()
	cp.Coeffs[0][0] = 7
	if p.Coeffs[0][0] != 42 {
		t.Fatal("CopyNew aliases the original")
	}
	p.DropLevel(0)
	if p.Level() != 0 {
		t.Fatalf("level after drop = %d, want 0", p.Level())
	}
	p.Zero()
	if p.Coeffs[0][0] != 0 {
		t.Fatal("Zero did not clear coefficients")
	}
}

func TestMulCoeffsAndAdd(t *testing.T) {
	r := testRing(t, 5, 2)
	s := NewSampler(r, NewTestPRNG(8))
	level := r.MaxLevel()
	a, b := r.NewPoly(level), r.NewPoly(level)
	s.UniformPoly(a, level)
	s.UniformPoly(b, level)

	acc := r.NewPoly(level)
	prod := r.NewPoly(level)
	r.MulCoeffs(a, b, prod, level)
	r.MulCoeffsAndAdd(a, b, acc, level)
	r.MulCoeffsAndAdd(a, b, acc, level)
	want := r.NewPoly(level)
	r.Add(prod, prod, want, level)
	for i := 0; i <= level; i++ {
		for j := 0; j < r.N; j++ {
			if acc.Coeffs[i][j] != want.Coeffs[i][j] {
				t.Fatal("MulCoeffsAndAdd accumulation mismatch")
			}
		}
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		primes, err := GenerateNTTPrimes(55, logN, 1)
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewRing(logN, primes)
		if err != nil {
			b.Fatal(err)
		}
		s := NewSampler(r, NewTestPRNG(1))
		p := r.NewPoly(0)
		s.UniformPoly(p, 0)
		b.Run("N="+itoa(1<<uint(logN)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.NTT(p, 0)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
