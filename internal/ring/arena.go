package ring

import (
	"sync"
	"sync/atomic"
)

// Poly arena: pooled contiguous RNS limb storage.
//
// FHE primitives are memory-bandwidth-bound, and the previous hot path paid
// for that twice: every operation allocated fresh [][]uint64 limb matrices
// (GC pressure proportional to op rate), and nothing guaranteed the limbs of
// one polynomial were adjacent in memory (each NTT pass walked rows the
// allocator had scattered). The arena fixes both. Every pooled Poly owns one
// contiguous []uint64 backing buffer covering all of its limbs — row i is
// the sub-slice [i*N, (i+1)*N) — and whole polynomials are recycled through
// per-row-count sync.Pools, so a steady-state Mul/Rotate/key-switch pipeline
// performs zero heap allocations for limb storage.
//
// Ownership protocol: GetPoly leases a polynomial whose contents are
// UNDEFINED (the borrower must write every row it reads back); PutPoly
// returns it. A Poly must not be used after PutPoly, and must be Put at most
// once. Polys whose level was dropped (DropLevel) remember their allocated
// row count through the backing buffer and are restored to full height on
// return, so the pools never shrink. Foreign polys — rows assembled by hand
// (unmarshaling, Shoup tables) — carry no backing buffer and are silently
// ignored by PutPoly rather than poisoning a pool with non-contiguous rows.
type arena struct {
	n     int
	pools []sync.Pool // pools[rows-1] holds *Poly with exactly `rows` limbs
	// outstanding counts polys currently leased via get and not yet returned.
	// Long homomorphic pipelines (a full bootstrap is thousands of leases)
	// leak silently if any path forgets its PutPoly — the counter makes that
	// a testable invariant instead of quiet GC pressure.
	outstanding atomic.Int64
}

func newArena(n, maxRows int) *arena {
	a := &arena{n: n, pools: make([]sync.Pool, maxRows)}
	for r := 1; r <= maxRows; r++ {
		rows := r
		a.pools[r-1].New = func() any { return newContiguousPoly(n, rows) }
	}
	return a
}

// newContiguousPoly builds a Poly with `rows` limbs over one backing buffer.
func newContiguousPoly(n, rows int) *Poly {
	backing := make([]uint64, rows*n)
	p := &Poly{Coeffs: make([][]uint64, rows), buf: backing}
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return p
}

func (a *arena) get(rows int) *Poly {
	p := a.pools[rows-1].Get().(*Poly)
	p.leased = true
	a.outstanding.Add(1)
	return p
}

func (a *arena) put(p *Poly) {
	if p == nil || p.buf == nil {
		return // foreign rows; let the GC have it
	}
	rows := len(p.buf) / a.n
	if rows < 1 || rows > len(a.pools) || len(p.buf) != rows*a.n {
		return // built against a different ring geometry
	}
	// Restore any rows DropLevel truncated: the backing buffer still holds
	// the full height, so this is pure re-slicing.
	if len(p.Coeffs) != rows {
		if cap(p.Coeffs) >= rows {
			p.Coeffs = p.Coeffs[:rows]
		} else {
			p.Coeffs = make([][]uint64, rows)
		}
		for i := 0; i < rows; i++ {
			p.Coeffs[i] = p.buf[i*a.n : (i+1)*a.n : (i+1)*a.n]
		}
	}
	if p.leased {
		p.leased = false
		a.outstanding.Add(-1)
	}
	a.pools[rows-1].Put(p)
}

// GetPoly leases a polynomial at the given level from the ring's arena. Its
// coefficient contents are undefined; callers that need zeros must call
// Zero. Pair with PutPoly on hot paths — unreturned polys are simply
// reclaimed by the GC.
func (r *Ring) GetPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic("ring: GetPoly level out of range")
	}
	return r.arena.get(level + 1)
}

// GetPolyZero is GetPoly followed by Zero.
func (r *Ring) GetPolyZero(level int) *Poly {
	p := r.GetPoly(level)
	p.Zero()
	return p
}

// PutPoly returns a polynomial to the ring's arena for reuse. The poly must
// not be referenced afterwards. Polys without contiguous backing (assembled
// row-by-row) are ignored.
func (r *Ring) PutPoly(p *Poly) { r.arena.put(p) }

// OutstandingPolys returns the number of polys currently leased from the
// arena (GetPoly without a matching PutPoly). Tests bracket a pipeline with
// two reads and assert the delta is zero: any positive delta is a leaked
// lease in that pipeline. Donated polys (NewPoly storage entering the pool
// via PutPoly) do not count; rejected foreign polys never counted.
func (r *Ring) OutstandingPolys() int64 { return r.arena.outstanding.Load() }
