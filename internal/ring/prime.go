package ring

import (
	"fmt"
	"math/bits"
)

// IsPrime reports whether q is prime, using a deterministic Miller-Rabin
// test valid for all 64-bit integers (fixed witness set).
func IsPrime(q uint64) bool {
	if q < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if q == p {
			return true
		}
		if q%p == 0 {
			return false
		}
	}
	// q-1 = d * 2^s with d odd.
	d := q - 1
	s := bits.TrailingZeros64(d)
	d >>= uint(s)

	// This witness set is deterministic for all n < 3.3e24.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := PowMod(a, d, q)
		if x == 1 || x == q-1 {
			continue
		}
		composite := true
		for i := 0; i < s-1; i++ {
			x = MulMod(x, x, q)
			if x == q-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GenerateNTTPrimes returns count distinct primes of the given bit size that
// are congruent to 1 modulo 2N, searching downward from 2^bitSize. Such
// primes admit a negacyclic NTT of length N. It panics on invalid arguments
// and returns an error if not enough primes exist in the range.
func GenerateNTTPrimes(bitSize, logN, count int) ([]uint64, error) {
	if bitSize < 2 || bitSize > 60 {
		panic(fmt.Sprintf("ring: prime bit size %d out of range [2, 60]", bitSize))
	}
	if logN < 1 || logN > 17 {
		panic(fmt.Sprintf("ring: logN %d out of range [1, 17]", logN))
	}
	m := uint64(2) << uint(logN) // 2N
	primes := make([]uint64, 0, count)

	// Largest candidate ≡ 1 mod 2N strictly below 2^bitSize.
	upper := uint64(1) << uint(bitSize)
	c := (upper-1)/m*m + 1
	lower := uint64(1) << uint(bitSize-1)

	for c > lower {
		if IsPrime(c) {
			primes = append(primes, c)
			if len(primes) == count {
				return primes, nil
			}
		}
		if c < m {
			break
		}
		c -= m
	}
	return nil, fmt.Errorf("ring: found only %d of %d %d-bit NTT primes for logN=%d",
		len(primes), count, bitSize, logN)
}

// primitiveRoot2N returns a primitive 2N-th root of unity modulo the prime q,
// which must satisfy q ≡ 1 mod 2N.
func primitiveRoot2N(q uint64, logN int) uint64 {
	m := uint64(2) << uint(logN) // 2N
	n := uint64(1) << uint(logN) // N
	if (q-1)%m != 0 {
		panic(fmt.Sprintf("ring: prime %d is not ≡ 1 mod %d", q, m))
	}
	exp := (q - 1) / m
	// Deterministic search: successive candidates x, test y = x^((q-1)/2N).
	// y is a primitive 2N-th root iff y^N = -1.
	for x := uint64(2); ; x++ {
		y := PowMod(x, exp, q)
		if y == 0 || y == 1 {
			continue
		}
		if PowMod(y, n, q) == q-1 {
			return y
		}
	}
}
