// Package ring implements arithmetic over the negacyclic polynomial rings
// Z_q[X]/(X^N+1) used by the RNS-CKKS homomorphic encryption scheme: 64-bit
// prime fields, NTT-friendly prime generation, negacyclic number-theoretic
// transforms, RNS (residue number system) polynomials, Galois automorphisms,
// and the random samplers required for lattice cryptography.
package ring

import (
	"fmt"
	"math/bits"
)

// Modulus bundles a word-sized prime q with the precomputed constants needed
// for fast modular reduction.
type Modulus struct {
	Q uint64 // the prime, q < 2^61

	// BRedConst is floor(2^128 / q), split into high and low 64-bit words.
	// It drives Barrett reduction of 128-bit products.
	BRedConst [2]uint64
}

// NewModulus precomputes reduction constants for the prime q.
// It panics if q is zero or does not fit the supported range.
func NewModulus(q uint64) Modulus {
	if q == 0 || q >= 1<<61 {
		panic(fmt.Sprintf("ring: modulus %d out of supported range (0, 2^61)", q))
	}
	return Modulus{Q: q, BRedConst: bRedConstant(q)}
}

// bRedConstant returns floor(2^128/q) as (hi, lo) 64-bit words.
func bRedConstant(q uint64) [2]uint64 {
	// hi = floor(2^128/q) >> 64 = floor(2^64/q) since q > 1.
	hi, r := bits.Div64(1, 0, q) // floor(2^64/q), remainder
	// lo = floor((r << 64) / q)
	lo, _ := bits.Div64(r, 0, q)
	return [2]uint64{hi, lo}
}

// AddMod returns (x + y) mod q. Inputs must be < q.
func AddMod(x, y, q uint64) uint64 {
	r := x + y
	if r >= q {
		r -= q
	}
	return r
}

// SubMod returns (x - y) mod q. Inputs must be < q.
func SubMod(x, y, q uint64) uint64 {
	r := x - y
	if x < y {
		r += q
	}
	return r
}

// NegMod returns (-x) mod q. Input must be < q.
func NegMod(x, q uint64) uint64 {
	if x == 0 {
		return 0
	}
	return q - x
}

// MulMod returns (x * y) mod q for x, y < q using 128-bit division.
// It is exact for any q < 2^63.
func MulMod(x, y, q uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, rem := bits.Div64(hi%q, lo, q)
	return rem
}

// BRed returns (x * y) mod q using Barrett reduction with the precomputed
// constant. Inputs must be < q. The result is fully reduced.
func (m Modulus) BRed(x, y uint64) uint64 {
	q := m.Q
	u0, u1 := m.BRedConst[0], m.BRedConst[1]
	mhi, mlo := bits.Mul64(x, y)

	// qhat = floor((mhi*2^64 + mlo) * (u0*2^64 + u1) / 2^128), possibly
	// underestimated by at most 2, corrected below.
	t1hi, t1lo := bits.Mul64(mhi, u1)
	t2hi, t2lo := bits.Mul64(mlo, u0)
	t3hi, _ := bits.Mul64(mlo, u1)

	s, c1 := bits.Add64(t1lo, t2lo, 0)
	_, c2 := bits.Add64(s, t3hi, 0)

	qhat := mhi*u0 + t1hi + t2hi + c1 + c2

	r := mlo - qhat*q
	for r >= q {
		r -= q
	}
	return r
}

// MForm computes the Shoup representation floor(x * 2^64 / q) of a fixed
// multiplicand x < q, for use with MulModShoup.
func MForm(x, q uint64) uint64 {
	hi, _ := bits.Div64(x, 0, q)
	return hi
}

// MulModShoup returns (x * w) mod q where wShoup = MForm(w, q) was
// precomputed. The result is in [0, q). This is the fast path used for
// multiplications by fixed constants such as NTT twiddle factors.
func MulModShoup(x, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(x, wShoup)
	r := x*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// mulModShoupLazy is MulModShoup with result in [0, 2q).
func mulModShoupLazy(x, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(x, wShoup)
	return x*w - hi*q
}

// PowMod returns x^e mod q by square-and-multiply.
func PowMod(x, e, q uint64) uint64 {
	if q == 1 {
		return 0
	}
	result := uint64(1)
	base := x % q
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return result
}

// InvMod returns x^{-1} mod q for prime q. It panics if x ≡ 0 mod q.
func InvMod(x, q uint64) uint64 {
	if x%q == 0 {
		panic("ring: division by zero in InvMod")
	}
	return PowMod(x, q-2, q)
}
