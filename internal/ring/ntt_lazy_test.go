package ring

import (
	"math/rand"
	"testing"
)

// chainPrimes generates a realistic RNS chain (mixed bit sizes) for the
// lazy-vs-strict agreement tests.
func chainPrimes(t *testing.T, logN int) []uint64 {
	t.Helper()
	var primes []uint64
	for _, bits := range []int{30, 40, 50, 60} {
		ps, err := GenerateNTTPrimes(bits, logN, 2)
		if err != nil {
			t.Fatalf("generating %d-bit primes: %v", bits, err)
		}
		primes = append(primes, ps...)
	}
	return primes
}

// TestLazyNTTMatchesStrict checks that the lazy-reduction forward and
// inverse transforms are bit-identical to the fully-reduced reference
// transforms on random inputs, for every chain prime and several sizes.
func TestLazyNTTMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, logN := range []int{4, 8, 11} {
		n := 1 << uint(logN)
		for _, q := range chainPrimes(t, logN) {
			tables := newNTTTables(q, logN)
			for trial := 0; trial < 4; trial++ {
				a := make([]uint64, n)
				for i := range a {
					a[i] = rng.Uint64() % q
				}
				lazy := append([]uint64(nil), a...)
				strict := append([]uint64(nil), a...)

				tables.forward(lazy)
				tables.forwardStrict(strict)
				for i := range lazy {
					if lazy[i] != strict[i] {
						t.Fatalf("logN=%d q=%d: forward lazy[%d]=%d strict=%d", logN, q, i, lazy[i], strict[i])
					}
					if lazy[i] >= q {
						t.Fatalf("logN=%d q=%d: forward output %d not reduced", logN, q, lazy[i])
					}
				}

				tables.inverse(lazy)
				tables.inverseStrict(strict)
				for i := range lazy {
					if lazy[i] != strict[i] {
						t.Fatalf("logN=%d q=%d: inverse lazy[%d]=%d strict=%d", logN, q, i, lazy[i], strict[i])
					}
					if lazy[i] != a[i] {
						t.Fatalf("logN=%d q=%d: round trip[%d]=%d, want %d", logN, q, i, lazy[i], a[i])
					}
				}
			}
		}
	}
}

// TestVecMulAddShoupLazy checks the lazy inner-product kernels against a
// scalar AddMod/MulMod reference, including the permuted variant and the
// final reduction to [0, q).
func TestVecMulAddShoupLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	primes, err := GenerateNTTPrimes(50, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := primes[0]
	const n = 64
	const digits = 12 // enough accumulation passes to stress the invariant

	acc := make([]uint64, n)
	accPerm := make([]uint64, n)
	want := make([]uint64, n)
	wantPerm := make([]uint64, n)
	perm := rng.Perm(n)

	for d := 0; d < digits; d++ {
		x := make([]uint64, n)
		w := make([]uint64, n)
		wS := make([]uint64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Uint64() % q
			w[i] = rng.Uint64() % q
			wS[i] = MForm(w[i], q)
		}
		VecMulAddShoupLazy(acc, x, w, wS, q)
		VecMulAddShoupLazyPerm(accPerm, x, perm, w, wS, q)
		twoQ := q << 1
		for i := 0; i < n; i++ {
			if acc[i] >= twoQ || accPerm[i] >= twoQ {
				t.Fatalf("digit %d: accumulator escaped [0, 2q)", d)
			}
			want[i] = AddMod(want[i], MulMod(x[i], w[i], q), q)
			wantPerm[i] = AddMod(wantPerm[i], MulMod(x[perm[i]], w[i], q), q)
		}
	}
	VecReduceLazy(acc, q)
	VecReduceLazy(accPerm, q)
	for i := 0; i < n; i++ {
		if acc[i] != want[i] {
			t.Fatalf("acc[%d] = %d, want %d", i, acc[i], want[i])
		}
		if accPerm[i] != wantPerm[i] {
			t.Fatalf("accPerm[%d] = %d, want %d", i, accPerm[i], wantPerm[i])
		}
	}
}
