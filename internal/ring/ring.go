package ring

import (
	"fmt"
	"math/bits"
	"sync"
)

// Ring represents the family of residue rings Z_{q_i}[X]/(X^N+1) for a chain
// of NTT-friendly primes q_0, ..., q_L. A Poly of level ℓ carries one residue
// row per prime q_0..q_ℓ. All multiplicative operations expect operands in
// the NTT (evaluation) domain unless documented otherwise.
type Ring struct {
	LogN   int
	N      int
	Moduli []Modulus

	tables []*nttTables

	autoMu    sync.Mutex
	autoPerms map[uint64][]int // NTT-domain permutation per Galois element
}

// NewRing constructs a Ring with degree 2^logN and the given prime chain.
// Every prime must be ≡ 1 mod 2N and distinct.
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of range [1, 17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	n := 1 << uint(logN)
	seen := make(map[uint64]bool, len(primes))
	r := &Ring{
		LogN:      logN,
		N:         n,
		Moduli:    make([]Modulus, len(primes)),
		tables:    make([]*nttTables, len(primes)),
		autoPerms: make(map[uint64][]int),
	}
	for i, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate prime %d", q)
		}
		seen[q] = true
		if !IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: prime %d is not NTT-friendly for N=%d", q, n)
		}
		r.Moduli[i] = NewModulus(q)
		r.tables[i] = newNTTTables(q, logN)
	}
	return r, nil
}

// MaxLevel returns the highest level (index of the last prime in the chain).
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// Poly is a polynomial in RNS representation: Coeffs[i][j] is the j-th
// coefficient modulo the i-th prime. The level of a Poly is len(Coeffs)-1.
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial at the given level.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0, %d]", level, r.MaxLevel()))
	}
	rows := level + 1
	backing := make([]uint64, rows*r.N)
	p := &Poly{Coeffs: make([][]uint64, rows)}
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return p
}

// Level returns the level of p.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs))}
	for i := range p.Coeffs {
		out.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return out
}

// Copy copies src into p. Levels must match.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: level mismatch in Copy")
	}
	for i := range p.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
}

// DropLevel removes the top rows so that p has the given level.
func (p *Poly) DropLevel(level int) {
	if level >= len(p.Coeffs) {
		panic("ring: DropLevel cannot raise level")
	}
	p.Coeffs = p.Coeffs[:level+1]
}

// Zero sets all coefficients of p to zero.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
}

func (r *Ring) checkLevels(level int, ps ...*Poly) {
	for _, p := range ps {
		if p.Level() < level {
			panic(fmt.Sprintf("ring: operand level %d below requested level %d", p.Level(), level))
		}
	}
}

// NTT transforms p (levels 0..level) into the evaluation domain in place.
func (r *Ring) NTT(p *Poly, level int) {
	r.checkLevels(level, p)
	for i := 0; i <= level; i++ {
		r.tables[i].forward(p.Coeffs[i])
	}
}

// InvNTT transforms p (levels 0..level) back to coefficient domain in place.
func (r *Ring) InvNTT(p *Poly, level int) {
	r.checkLevels(level, p)
	for i := 0; i <= level; i++ {
		r.tables[i].inverse(p.Coeffs[i])
	}
}

// NTTSingle applies the forward NTT for the i-th prime to a raw row.
func (r *Ring) NTTSingle(i int, row []uint64) { r.tables[i].forward(row) }

// InvNTTSingle applies the inverse NTT for the i-th prime to a raw row.
func (r *Ring) InvNTTSingle(i int, row []uint64) { r.tables[i].inverse(row) }

// Add sets out = a + b at the given level.
func (r *Ring) Add(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = AddMod(ra[j], rb[j], q)
		}
	}
}

// Sub sets out = a - b at the given level.
func (r *Ring) Sub(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = SubMod(ra[j], rb[j], q)
		}
	}
}

// Neg sets out = -a at the given level.
func (r *Ring) Neg(a, out *Poly, level int) {
	r.checkLevels(level, a, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = NegMod(ra[j], q)
		}
	}
}

// MulCoeffs sets out = a ⊙ b (pointwise product; NTT domain) at level.
func (r *Ring) MulCoeffs(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.BRed(ra[j], rb[j])
		}
	}
}

// MulCoeffsAndAdd sets out += a ⊙ b (pointwise; NTT domain) at level.
func (r *Ring) MulCoeffsAndAdd(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		m := r.Moduli[i]
		q := m.Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = AddMod(ro[j], m.BRed(ra[j], rb[j]), q)
		}
	}
}

// MulScalar sets out = a * scalar at the given level. The scalar is reduced
// modulo each prime; it works in either domain.
func (r *Ring) MulScalar(a *Poly, scalar uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		s := scalar % q
		ss := MForm(s, q)
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = MulModShoup(ra[j], s, ss, q)
		}
	}
}

// GaloisGen is the generator of the cyclic rotation group of CKKS slots:
// the automorphism X -> X^{5^k} rotates the slot vector by k positions.
const GaloisGen uint64 = 5

// GaloisElementForRotation returns the Galois element 5^k mod 2N that
// rotates CKKS slots left by k (k may be negative).
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	m := uint64(2 * r.N)
	order := uint64(r.N / 2) // order of 5 in Z_{2N}^* / {±1} slots cycle
	kk := uint64(((k % int(order)) + int(order))) % order
	return PowMod(GaloisGen, kk, m)
}

// GaloisElementConjugate returns the Galois element 2N-1 realizing complex
// conjugation of the slots.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// permTable returns (building if needed) the NTT-domain permutation for the
// Galois automorphism X -> X^galEl.
func (r *Ring) permTable(galEl uint64) []int {
	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	if p, ok := r.autoPerms[galEl]; ok {
		return p
	}
	n := r.N
	m := uint64(2 * n)
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	logN := r.LogN
	shift := 64 - uint(logN)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		// Storage slot i holds the evaluation at psi^{2*rev(i)+1}.
		iRev := int(bits.Reverse64(uint64(i)) >> shift)
		// After the automorphism the value at exponent e comes from
		// exponent e*galEl.
		e := (uint64(2*iRev+1) * galEl) % m
		j := int((e - 1) / 2)
		jRev := int(bits.Reverse64(uint64(j)) >> shift)
		perm[i] = jRev
	}
	r.autoPerms[galEl] = perm
	return perm
}

// NTTPermutation returns the NTT-domain index permutation realizing the
// Galois automorphism X -> X^galEl: applying perm[j] as a gather index maps
// a polynomial's NTT row to the NTT row of its automorphic image. The slice
// is owned by the ring's cache and must not be modified.
func (r *Ring) NTTPermutation(galEl uint64) []int { return r.permTable(galEl) }

// AutomorphismNTT applies X -> X^galEl to a (in NTT domain), writing to out.
// a and out must not alias.
func (r *Ring) AutomorphismNTT(a *Poly, galEl uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	perm := r.permTable(galEl)
	for i := 0; i <= level; i++ {
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j, pj := range perm {
			ro[j] = ra[pj]
		}
	}
}

// AutomorphismCoeff applies X -> X^galEl to a in the coefficient domain,
// writing to out. a and out must not alias. Exposed for testing the
// NTT-domain permutation against the definition.
func (r *Ring) AutomorphismCoeff(a *Poly, galEl uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	n := uint64(r.N)
	m := 2 * n
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			e := (j * galEl) % m
			if e < n {
				ro[e] = ra[j]
			} else {
				ro[e-n] = NegMod(ra[j], q)
			}
		}
	}
}
