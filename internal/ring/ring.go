package ring

import (
	"fmt"
	"math/bits"
	"sync"
)

// Ring represents the family of residue rings Z_{q_i}[X]/(X^N+1) for a chain
// of NTT-friendly primes q_0, ..., q_L. A Poly of level ℓ carries one residue
// row per prime q_0..q_ℓ. All multiplicative operations expect operands in
// the NTT (evaluation) domain unless documented otherwise.
type Ring struct {
	LogN   int
	N      int
	Moduli []Modulus

	tables []*nttTables

	// arena pools contiguous limb storage per row count (see arena.go).
	arena *arena

	autoMu    sync.Mutex
	autoPerms map[uint64][]int // NTT-domain permutation per Galois element
}

// NewRing constructs a Ring with degree 2^logN and the given prime chain.
// Every prime must be ≡ 1 mod 2N and distinct.
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of range [1, 17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	n := 1 << uint(logN)
	seen := make(map[uint64]bool, len(primes))
	r := &Ring{
		LogN:      logN,
		N:         n,
		Moduli:    make([]Modulus, len(primes)),
		tables:    make([]*nttTables, len(primes)),
		autoPerms: make(map[uint64][]int),
	}
	for i, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate prime %d", q)
		}
		seen[q] = true
		if !IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: prime %d is not NTT-friendly for N=%d", q, n)
		}
		r.Moduli[i] = NewModulus(q)
		r.tables[i] = newNTTTables(q, logN)
	}
	r.arena = newArena(n, len(primes))
	return r, nil
}

// MaxLevel returns the highest level (index of the last prime in the chain).
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// Poly is a polynomial in RNS representation: Coeffs[i][j] is the j-th
// coefficient modulo the i-th prime. The level of a Poly is len(Coeffs)-1.
//
// Polys produced by NewPoly or the ring arena store all limbs in one
// contiguous backing buffer (row i is buf[i*N:(i+1)*N]), so multi-limb
// passes stream memory sequentially and whole-poly copies are single
// memmoves. Rows may also be assembled by hand (buf == nil), e.g. when
// unmarshaling; all operations accept both layouts.
type Poly struct {
	Coeffs [][]uint64
	// buf is the contiguous backing of Coeffs when the poly was allocated
	// whole; nil for row-assembled polys. It retains the full allocated
	// height across DropLevel, which is what lets the arena restore and
	// recycle level-dropped polys.
	buf []uint64
	// leased marks a poly currently checked out of the arena via GetPoly.
	// It gates the outstanding-lease counter so that donated polys (NewPoly
	// storage entering the pool through PutPoly for the first time) do not
	// drive the counter negative.
	leased bool
}

// NewPoly allocates a zero polynomial at the given level with contiguous
// limb storage.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0, %d]", level, r.MaxLevel()))
	}
	return newContiguousPoly(r.N, level+1)
}

// Level returns the level of p.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// contiguous reports whether rows 0..len(Coeffs)-1 are a prefix of one
// backing buffer, and returns that prefix.
func (p *Poly) contiguous() ([]uint64, bool) {
	if p.buf == nil || len(p.Coeffs) == 0 {
		return nil, false
	}
	n := len(p.Coeffs[0])
	total := len(p.Coeffs) * n
	if total > len(p.buf) {
		return nil, false
	}
	return p.buf[:total], true
}

// CopyNew returns a deep copy of p (contiguous regardless of p's layout).
func (p *Poly) CopyNew() *Poly {
	if len(p.Coeffs) == 0 {
		return &Poly{}
	}
	out := newContiguousPoly(len(p.Coeffs[0]), len(p.Coeffs))
	out.Copy(p)
	return out
}

// Copy copies src into p. Levels must match. When both polys are contiguous
// the copy is one memmove over all limbs.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: level mismatch in Copy")
	}
	if db, ok := p.contiguous(); ok {
		if sb, ok := src.contiguous(); ok && len(db) == len(sb) {
			copy(db, sb)
			return
		}
	}
	for i := range p.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
}

// CopyLevel copies rows 0..level of src into p. Both polys must reach level.
func (p *Poly) CopyLevel(src *Poly, level int) {
	for i := 0; i <= level; i++ {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
}

// DropLevel removes the top rows so that p has the given level.
func (p *Poly) DropLevel(level int) {
	if level >= len(p.Coeffs) {
		panic("ring: DropLevel cannot raise level")
	}
	p.Coeffs = p.Coeffs[:level+1]
}

// Zero sets all coefficients of p to zero.
func (p *Poly) Zero() {
	if b, ok := p.contiguous(); ok {
		for j := range b {
			b[j] = 0
		}
		return
	}
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
}

func (r *Ring) checkLevels(level int, ps ...*Poly) {
	for _, p := range ps {
		if p.Level() < level {
			panic(fmt.Sprintf("ring: operand level %d below requested level %d", p.Level(), level))
		}
	}
}

// NTT transforms p (levels 0..level) into the evaluation domain in place.
func (r *Ring) NTT(p *Poly, level int) {
	r.checkLevels(level, p)
	for i := 0; i <= level; i++ {
		r.tables[i].forward(p.Coeffs[i])
	}
}

// InvNTT transforms p (levels 0..level) back to coefficient domain in place.
func (r *Ring) InvNTT(p *Poly, level int) {
	r.checkLevels(level, p)
	for i := 0; i <= level; i++ {
		r.tables[i].inverse(p.Coeffs[i])
	}
}

// NTTSingle applies the forward NTT for the i-th prime to a raw row.
func (r *Ring) NTTSingle(i int, row []uint64) { r.tables[i].forward(row) }

// InvNTTSingle applies the inverse NTT for the i-th prime to a raw row.
func (r *Ring) InvNTTSingle(i int, row []uint64) { r.tables[i].inverse(row) }

// parallelNTTMinWork is the total coefficient count below which the
// parallel NTT entry points run serially: under ~2^14 butterfly rows the
// goroutine handoff costs more than the transform itself, which is exactly
// how the earlier amount-level parallelism ended up losing to serial.
const parallelNTTMinWork = 1 << 14

// nttWorkers clamps a requested worker count to something the transform can
// use: at most one worker per limb, and serial whenever the total work is
// too small to amortize scheduling.
func nttWorkers(workers, limbs, n int) int {
	if workers > limbs {
		workers = limbs
	}
	if workers <= 1 || limbs*n < parallelNTTMinWork {
		return 1
	}
	return workers
}

// forEachLimbParallel runs fn(i) for i in [0, limbs) across `workers`
// goroutines with limb-granular work partitioning (limb i goes to worker
// i%workers, so the per-worker load differs by at most one limb). workers
// must already be clamped by nttWorkers.
func forEachLimbParallel(limbs, workers int, fn func(i int)) {
	if workers == 1 {
		for i := 0; i < limbs; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < limbs; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// NTTParallel is NTT with the per-limb transforms partitioned across up to
// `workers` goroutines. Below the work cutoff (or with workers <= 1) it runs
// the exact serial loop, so results are always bit-identical to NTT and
// small transforms never pay goroutine overhead — the fix for the
// amount-level parallelism that lost to serial by thrashing shared
// bandwidth.
func (r *Ring) NTTParallel(p *Poly, level, workers int) {
	r.checkLevels(level, p)
	workers = nttWorkers(workers, level+1, r.N)
	forEachLimbParallel(level+1, workers, func(i int) {
		r.tables[i].forward(p.Coeffs[i])
	})
}

// InvNTTParallel is InvNTT with per-limb partitioning (see NTTParallel).
func (r *Ring) InvNTTParallel(p *Poly, level, workers int) {
	r.checkLevels(level, p)
	workers = nttWorkers(workers, level+1, r.N)
	forEachLimbParallel(level+1, workers, func(i int) {
		r.tables[i].inverse(p.Coeffs[i])
	})
}

// Add sets out = a + b at the given level.
func (r *Ring) Add(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = AddMod(ra[j], rb[j], q)
		}
	}
}

// Sub sets out = a - b at the given level.
func (r *Ring) Sub(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = SubMod(ra[j], rb[j], q)
		}
	}
}

// Neg sets out = -a at the given level.
func (r *Ring) Neg(a, out *Poly, level int) {
	r.checkLevels(level, a, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = NegMod(ra[j], q)
		}
	}
}

// MulCoeffs sets out = a ⊙ b (pointwise product; NTT domain) at level.
func (r *Ring) MulCoeffs(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		m := r.Moduli[i]
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = m.BRed(ra[j], rb[j])
		}
	}
}

// MulCoeffsAndAdd sets out += a ⊙ b (pointwise; NTT domain) at level.
func (r *Ring) MulCoeffsAndAdd(a, b, out *Poly, level int) {
	r.checkLevels(level, a, b, out)
	for i := 0; i <= level; i++ {
		m := r.Moduli[i]
		q := m.Q
		ra, rb, ro := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = AddMod(ro[j], m.BRed(ra[j], rb[j]), q)
		}
	}
}

// MulScalar sets out = a * scalar at the given level. The scalar is reduced
// modulo each prime; it works in either domain.
func (r *Ring) MulScalar(a *Poly, scalar uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		s := scalar % q
		ss := MForm(s, q)
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := range ro {
			ro[j] = MulModShoup(ra[j], s, ss, q)
		}
	}
}

// GaloisGen is the generator of the cyclic rotation group of CKKS slots:
// the automorphism X -> X^{5^k} rotates the slot vector by k positions.
const GaloisGen uint64 = 5

// GaloisElementForRotation returns the Galois element 5^k mod 2N that
// rotates CKKS slots left by k (k may be negative).
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	m := uint64(2 * r.N)
	order := uint64(r.N / 2) // order of 5 in Z_{2N}^* / {±1} slots cycle
	kk := uint64(((k % int(order)) + int(order))) % order
	return PowMod(GaloisGen, kk, m)
}

// GaloisElementConjugate returns the Galois element 2N-1 realizing complex
// conjugation of the slots.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// permTable returns (building if needed) the NTT-domain permutation for the
// Galois automorphism X -> X^galEl.
func (r *Ring) permTable(galEl uint64) []int {
	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	if p, ok := r.autoPerms[galEl]; ok {
		return p
	}
	n := r.N
	m := uint64(2 * n)
	if galEl%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	logN := r.LogN
	shift := 64 - uint(logN)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		// Storage slot i holds the evaluation at psi^{2*rev(i)+1}.
		iRev := int(bits.Reverse64(uint64(i)) >> shift)
		// After the automorphism the value at exponent e comes from
		// exponent e*galEl.
		e := (uint64(2*iRev+1) * galEl) % m
		j := int((e - 1) / 2)
		jRev := int(bits.Reverse64(uint64(j)) >> shift)
		perm[i] = jRev
	}
	r.autoPerms[galEl] = perm
	return perm
}

// NTTPermutation returns the NTT-domain index permutation realizing the
// Galois automorphism X -> X^galEl: applying perm[j] as a gather index maps
// a polynomial's NTT row to the NTT row of its automorphic image. The slice
// is owned by the ring's cache and must not be modified.
func (r *Ring) NTTPermutation(galEl uint64) []int { return r.permTable(galEl) }

// AutomorphismNTT applies X -> X^galEl to a (in NTT domain), writing to out.
// a and out must not alias.
func (r *Ring) AutomorphismNTT(a *Poly, galEl uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	perm := r.permTable(galEl)
	for i := 0; i <= level; i++ {
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j, pj := range perm {
			ro[j] = ra[pj]
		}
	}
}

// AutomorphismCoeff applies X -> X^galEl to a in the coefficient domain,
// writing to out. a and out must not alias. Exposed for testing the
// NTT-domain permutation against the definition.
func (r *Ring) AutomorphismCoeff(a *Poly, galEl uint64, out *Poly, level int) {
	r.checkLevels(level, a, out)
	n := uint64(r.N)
	m := 2 * n
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		ra, ro := a.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			e := (j * galEl) % m
			if e < n {
				ro[e] = ra[j]
			} else {
				ro[e-n] = NegMod(ra[j], q)
			}
		}
	}
}
