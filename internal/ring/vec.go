package ring

// Vectorized multiply-accumulate kernels for the key-switch inner product.
// The accumulator convention is lazy: rows passed to the VecMulAdd* helpers
// stay in [0, 2q) across any number of accumulation passes and are brought
// back to the canonical [0, q) range by one final VecReduceLazy call. Each
// lazy term is produced by mulModShoupLazy (result in [0, 2q)), so the
// running sum never exceeds 4q < 2^63 before its conditional reduction.

// VecMulAddShoupLazy accumulates acc[k] += x[k]*w[k] mod q with lazy
// reduction: acc values are kept in [0, 2q). wS must hold the Shoup forms
// MForm(w[k], q); x values must be in [0, q).
func VecMulAddShoupLazy(acc, x, w, wS []uint64, q uint64) {
	twoQ := q << 1
	_ = acc[len(x)-1]
	_ = w[len(x)-1]
	_ = wS[len(x)-1]
	for k := 0; k < len(x); k++ {
		t := acc[k] + mulModShoupLazy(x[k], w[k], wS[k], q)
		if t >= twoQ {
			t -= twoQ
		}
		acc[k] = t
	}
}

// VecMulAddShoupLazyPerm is VecMulAddShoupLazy reading x through an index
// permutation: acc[k] += x[perm[k]]*w[k] mod q. This fuses the NTT-domain
// Galois automorphism of a hoisted key-switch digit with the inner-product
// accumulation, so the permuted digit is never materialized.
func VecMulAddShoupLazyPerm(acc, x []uint64, perm []int, w, wS []uint64, q uint64) {
	twoQ := q << 1
	_ = acc[len(perm)-1]
	_ = w[len(perm)-1]
	_ = wS[len(perm)-1]
	for k := 0; k < len(perm); k++ {
		t := acc[k] + mulModShoupLazy(x[perm[k]], w[k], wS[k], q)
		if t >= twoQ {
			t -= twoQ
		}
		acc[k] = t
	}
}

// VecReduceLazy reduces a lazy accumulator row from [0, 2q) to [0, q).
func VecReduceLazy(a []uint64, q uint64) {
	for k := range a {
		if a[k] >= q {
			a[k] -= q
		}
	}
}
