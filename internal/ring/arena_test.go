package ring

import (
	"math/rand"
	"sync"
	"testing"
)

func randomPoly(r *Ring, level int, rng *rand.Rand) *Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % q
		}
	}
	return p
}

// TestArenaReuse pins the pooling contract: a returned poly comes back on
// the next lease (same backing buffer, full height), including after its
// level was dropped while on loan.
func TestArenaLeaseCounter(t *testing.T) {
	r := testRing(t, 6, 4)
	base := r.OutstandingPolys()

	// Leases are counted; returns bring the counter back down.
	a := r.GetPoly(3)
	b := r.GetPoly(1)
	if got := r.OutstandingPolys() - base; got != 2 {
		t.Fatalf("outstanding after 2 leases = %d, want 2", got)
	}
	r.PutPoly(a)
	r.PutPoly(b)
	if got := r.OutstandingPolys() - base; got != 0 {
		t.Fatalf("outstanding after returns = %d, want 0", got)
	}

	// A level-dropped lease still checks back in as one lease.
	p := r.GetPoly(3)
	p.DropLevel(1)
	r.PutPoly(p)
	if got := r.OutstandingPolys() - base; got != 0 {
		t.Fatalf("outstanding after dropped-level return = %d, want 0", got)
	}

	// Donated storage (NewPoly entering the pool for the first time) and
	// rejected foreign polys must not drive the counter negative.
	r.PutPoly(r.NewPoly(3))
	r.PutPoly(&Poly{Coeffs: make([][]uint64, 2)})
	if got := r.OutstandingPolys() - base; got != 0 {
		t.Fatalf("outstanding after donations = %d, want 0", got)
	}

	// An unreturned lease is visible — this is the leak signal tests gate on.
	leak := r.GetPoly(2)
	if got := r.OutstandingPolys() - base; got != 1 {
		t.Fatalf("outstanding with a live lease = %d, want 1", got)
	}
	r.PutPoly(leak)
}

func TestArenaReuse(t *testing.T) {
	r := testRing(t, 6, 4)
	p := r.GetPoly(3)
	if len(p.Coeffs) != 4 {
		t.Fatalf("GetPoly(3) rows = %d, want 4", len(p.Coeffs))
	}
	if _, ok := p.contiguous(); !ok {
		t.Fatal("arena poly is not contiguous")
	}
	first := &p.buf[0]
	p.DropLevel(1)
	r.PutPoly(p)
	q := r.GetPoly(3)
	if &q.buf[0] != first {
		t.Error("arena did not reuse the returned backing buffer")
	}
	if len(q.Coeffs) != 4 {
		t.Errorf("recycled poly rows = %d, want full height 4 after DropLevel on loan", len(q.Coeffs))
	}
	for i, row := range q.Coeffs {
		if len(row) != r.N {
			t.Fatalf("row %d length %d, want %d", i, len(row), r.N)
		}
		if &row[0] != &q.buf[i*r.N] {
			t.Fatalf("row %d not re-sliced from backing buffer", i)
		}
	}
}

// TestArenaForeignPolyIgnored verifies that polys assembled row-by-row
// (unmarshaling, Shoup tables) never enter a pool.
func TestArenaForeignPolyIgnored(t *testing.T) {
	r := testRing(t, 5, 2)
	foreign := &Poly{Coeffs: [][]uint64{make([]uint64, r.N), make([]uint64, r.N)}}
	r.PutPoly(foreign) // must not panic or poison the pool
	p := r.GetPoly(1)
	if _, ok := p.contiguous(); !ok {
		t.Fatal("pool handed back a non-contiguous poly")
	}
	r.PutPoly(nil) // nil is a no-op too
}

// TestArenaAliasSafety hammers the arena from concurrent goroutines, each
// writing a distinct sentinel into its leased poly and verifying it after a
// round of ring ops. Run under -race this pins that leases never alias.
func TestArenaAliasSafety(t *testing.T) {
	r := testRing(t, 8, 3)
	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				level := (w + it) % 3
				p := r.GetPoly(level)
				sentinel := uint64(w*1000 + it)
				for i := 0; i <= level; i++ {
					q := r.Moduli[i].Q
					for j := range p.Coeffs[i] {
						p.Coeffs[i][j] = sentinel % q
					}
				}
				r.NTT(p, level)
				r.InvNTT(p, level)
				for i := 0; i <= level; i++ {
					q := r.Moduli[i].Q
					want := sentinel % q
					for j := range p.Coeffs[i] {
						if p.Coeffs[i][j] != want {
							t.Errorf("worker %d iter %d: leased poly corrupted: got %d want %d",
								w, it, p.Coeffs[i][j], want)
							return
						}
					}
				}
				r.PutPoly(p)
			}
		}(w)
	}
	wg.Wait()
}

// TestPolyCopyFastPath checks the contiguous whole-buffer copy against the
// row-by-row path, in both directions and across mixed layouts.
func TestPolyCopyFastPath(t *testing.T) {
	r := testRing(t, 7, 3)
	rng := rand.New(rand.NewSource(7))
	src := randomPoly(r, 2, rng)

	cp := src.CopyNew()
	for i := range src.Coeffs {
		for j := range src.Coeffs[i] {
			if cp.Coeffs[i][j] != src.Coeffs[i][j] {
				t.Fatalf("CopyNew mismatch at (%d,%d)", i, j)
			}
		}
	}
	if &cp.Coeffs[0][0] == &src.Coeffs[0][0] {
		t.Fatal("CopyNew aliases its source")
	}

	foreign := &Poly{Coeffs: make([][]uint64, 3)}
	for i := range foreign.Coeffs {
		foreign.Coeffs[i] = make([]uint64, r.N)
	}
	foreign.Copy(src) // contiguous -> foreign takes the row path
	dst := r.NewPoly(2)
	dst.Copy(foreign) // foreign -> contiguous takes the row path
	for i := range src.Coeffs {
		for j := range src.Coeffs[i] {
			if dst.Coeffs[i][j] != src.Coeffs[i][j] {
				t.Fatalf("mixed-layout Copy mismatch at (%d,%d)", i, j)
			}
		}
	}

	// A level-dropped destination must not blindly memcpy the full buffer.
	drop := src.CopyNew()
	drop.DropLevel(1)
	short := r.NewPoly(1)
	short.Copy(drop)
	for i := 0; i <= 1; i++ {
		for j := range short.Coeffs[i] {
			if short.Coeffs[i][j] != src.Coeffs[i][j] {
				t.Fatalf("level-dropped Copy mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestParallelNTTMatchesSerial pins bit-identity of the per-limb parallel
// transforms against the serial loops, both under the work cutoff (where
// the parallel entry points degrade to the serial code) and above it.
func TestParallelNTTMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ logN, primes, workers int }{
		{5, 2, 4},  // below cutoff: serial fallback
		{11, 8, 4}, // above cutoff: real goroutine partitioning
		{11, 8, 16},
	} {
		r := testRing(t, tc.logN, tc.primes)
		level := tc.primes - 1
		a := randomPoly(r, level, rng)
		b := a.CopyNew()

		r.NTT(a, level)
		r.NTTParallel(b, level, tc.workers)
		for i := 0; i <= level; i++ {
			for j := range a.Coeffs[i] {
				if a.Coeffs[i][j] != b.Coeffs[i][j] {
					t.Fatalf("logN=%d workers=%d: forward mismatch at (%d,%d)", tc.logN, tc.workers, i, j)
				}
			}
		}
		r.InvNTT(a, level)
		r.InvNTTParallel(b, level, tc.workers)
		for i := 0; i <= level; i++ {
			for j := range a.Coeffs[i] {
				if a.Coeffs[i][j] != b.Coeffs[i][j] {
					t.Fatalf("logN=%d workers=%d: inverse mismatch at (%d,%d)", tc.logN, tc.workers, i, j)
				}
			}
		}
	}
}

// TestRingKernelAllocs is the alloc-regression gate for the hot ring
// kernels: a steady-state Mul/Rotate/key-switch pipeline built on these
// primitives must not allocate. ci.sh runs this test explicitly.
func TestRingKernelAllocs(t *testing.T) {
	r := testRing(t, 11, 4)
	level := 3
	rng := rand.New(rand.NewSource(3))
	p := randomPoly(r, level, rng)
	x := randomPoly(r, level, rng)
	out := r.NewPoly(level)
	perm := r.NTTPermutation(r.GaloisElementForRotation(3)) // warm the perm cache
	q := r.Moduli[0].Q
	acc := make([]uint64, r.N)
	w := p.Coeffs[0]
	ws := make([]uint64, r.N)
	for k := range ws {
		ws[k] = MForm(w[k], q)
	}

	checks := []struct {
		name string
		fn   func()
	}{
		{"ntt_forward", func() { r.NTT(p, level) }},
		{"ntt_inverse", func() { r.InvNTT(p, level) }},
		{"arena_roundtrip", func() { r.PutPoly(r.GetPoly(level)) }},
		{"poly_copy", func() { out.Copy(p) }},
		{"vec_muladd_shoup", func() { VecMulAddShoupLazy(acc, x.Coeffs[0], w, ws, q) }},
		{"vec_muladd_perm", func() { VecMulAddShoupLazyPerm(acc, x.Coeffs[0], perm, w, ws, q) }},
		{"vec_reduce", func() { VecReduceLazy(acc, q) }},
		{"automorphism_ntt", func() { r.AutomorphismNTT(p, r.GaloisElementForRotation(3), out, level) }},
		{"add", func() { r.Add(p, x, out, level) }},
		{"mul_coeffs", func() { r.MulCoeffs(p, x, out, level) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s allocates %.0f times per op, want 0", c.name, n)
		}
	}
}
