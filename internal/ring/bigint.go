package ring

import "math/big"

// ModulusAtLevel returns Q = q_0 * ... * q_level as a big integer.
func (r *Ring) ModulusAtLevel(level int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= level; i++ {
		q.Mul(q, new(big.Int).SetUint64(r.Moduli[i].Q))
	}
	return q
}

// PolyToBigintCentered reconstructs the coefficients of p (coefficient
// domain) at the given level via the Chinese Remainder Theorem and returns
// them centered in (-Q/2, Q/2].
func (r *Ring) PolyToBigintCentered(p *Poly, level int) []*big.Int {
	n := r.N
	bigQ := r.ModulusAtLevel(level)
	half := new(big.Int).Rsh(bigQ, 1)

	// Precompute CRT constants: c_i = (Q/q_i) * ((Q/q_i)^{-1} mod q_i).
	consts := make([]*big.Int, level+1)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		qhat := new(big.Int).Div(bigQ, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qhat, qi), qi)
		consts[i] = new(big.Int).Mul(qhat, inv)
	}

	out := make([]*big.Int, n)
	tmp := new(big.Int)
	for j := 0; j < n; j++ {
		acc := new(big.Int)
		for i := 0; i <= level; i++ {
			tmp.SetUint64(p.Coeffs[i][j])
			tmp.Mul(tmp, consts[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, bigQ)
		if acc.Cmp(half) > 0 {
			acc.Sub(acc, bigQ)
		}
		out[j] = acc
	}
	return out
}

// SetCoeffsBigint writes arbitrary-precision coefficients into p
// (coefficient domain) at the given level, reducing each modulo every prime.
func (r *Ring) SetCoeffsBigint(coeffs []*big.Int, p *Poly, level int) {
	tmp := new(big.Int)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		row := p.Coeffs[i]
		for j, c := range coeffs {
			tmp.Mod(c, qi)
			row[j] = tmp.Uint64()
		}
	}
}
