package ring

import (
	"testing"
	"testing/quick"
)

func TestNewRingValidation(t *testing.T) {
	goodPrimes, err := GenerateNTTPrimes(40, 8, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		logN   int
		primes []uint64
	}{
		{"logN too small", 0, goodPrimes},
		{"logN too large", 18, goodPrimes},
		{"empty chain", 8, nil},
		{"duplicate prime", 8, []uint64{goodPrimes[0], goodPrimes[0]}},
		{"composite modulus", 8, []uint64{goodPrimes[0] - 1}},
		{"not NTT friendly", 8, []uint64{97}}, // 97-1 = 96 not divisible by 512
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.logN, tc.primes); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestGenerateNTTPrimesExhaustion(t *testing.T) {
	// 21-bit primes congruent 1 mod 2^18 are rare; asking for many must
	// fail gracefully rather than loop forever.
	if _, err := GenerateNTTPrimes(21, 17, 50); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestGenerateNTTPrimesPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { GenerateNTTPrimes(1, 8, 1) },
		func() { GenerateNTTPrimes(61, 8, 1) },
		func() { GenerateNTTPrimes(40, 0, 1) },
		func() { GenerateNTTPrimes(40, 18, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFermatLittleTheoremProperty(t *testing.T) {
	q := uint64(0x3ffffffff040001)
	f := func(a uint64) bool {
		x := a % q
		if x == 0 {
			return true
		}
		return PowMod(x, q-1, q) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGaloisElementWrapsAtSlotCount(t *testing.T) {
	r := testRing(t, 8, 1)
	slots := r.N / 2
	if r.GaloisElementForRotation(0) != 1 {
		t.Fatal("rotation by 0 must map to the identity automorphism")
	}
	if r.GaloisElementForRotation(slots) != 1 {
		t.Fatal("rotation by the slot count must wrap to the identity")
	}
	if r.GaloisElementForRotation(3) != r.GaloisElementForRotation(3+slots) {
		t.Fatal("rotations must be periodic in the slot count")
	}
}

func TestAutomorphismPanicsOnEvenElement(t *testing.T) {
	r := testRing(t, 6, 1)
	a := r.NewPoly(0)
	out := r.NewPoly(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even Galois element")
		}
	}()
	r.AutomorphismNTT(a, 2, out, 0)
}

func TestMulScalarReducesLargeScalars(t *testing.T) {
	r := testRing(t, 5, 2)
	s := NewSampler(r, NewTestPRNG(13))
	a := r.NewPoly(r.MaxLevel())
	s.UniformPoly(a, a.Level())

	// scalar > both moduli: must behave as scalar mod q per row.
	big := ^uint64(0) - 5
	got := r.NewPoly(r.MaxLevel())
	r.MulScalar(a, big, got, a.Level())
	for i := 0; i <= a.Level(); i++ {
		q := r.Moduli[i].Q
		sm := big % q
		for j := 0; j < r.N; j++ {
			if got.Coeffs[i][j] != MulMod(a.Coeffs[i][j], sm, q) {
				t.Fatalf("row %d slot %d mismatch", i, j)
			}
		}
	}
}

func TestPolyLevelGuards(t *testing.T) {
	r := testRing(t, 5, 2)
	p := r.NewPoly(0)

	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("NewPoly negative", func() { r.NewPoly(-1) })
	assertPanics("NewPoly too high", func() { r.NewPoly(5) })
	assertPanics("DropLevel raise", func() { p.DropLevel(1) })
	assertPanics("op above operand level", func() { r.Add(p, p, p, 1) })
	assertPanics("copy level mismatch", func() { p.Copy(r.NewPoly(1)) })
}

func TestInvModZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InvMod(0, 97)
}

func TestNewModulusRange(t *testing.T) {
	for _, q := range []uint64{0, 1 << 61} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModulus(%d): expected panic", q)
				}
			}()
			NewModulus(q)
		}()
	}
}

func TestCryptoPRNGProducesDistinctStreams(t *testing.T) {
	a, b := NewCryptoPRNG(), NewCryptoPRNG()
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("two crypto PRNGs produced identical streams")
	}
}

func TestTestPRNGDeterminism(t *testing.T) {
	a, b := NewTestPRNG(5), NewTestPRNG(5)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed test PRNGs diverged")
		}
	}
}
