package ring

import (
	"math/rand"
	"testing"
)

// benchSetup builds one NTT table and a random row for the given size.
func benchSetup(b *testing.B, logN int) (*nttTables, []uint64) {
	b.Helper()
	primes, err := GenerateNTTPrimes(50, logN, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := primes[0]
	tables := newNTTTables(q, logN)
	rng := rand.New(rand.NewSource(7))
	a := make([]uint64, 1<<uint(logN))
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return tables, a
}

// BenchmarkNTTForward measures the lazy-reduction forward transform.
func BenchmarkNTTForward(b *testing.B) {
	tables, a := benchSetup(b, 13)
	b.SetBytes(int64(8 * len(a)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables.forward(a)
	}
}

// BenchmarkPooledRingKernels measures the arena-backed hot path the
// evaluator runs per ciphertext op: lease a poly, NTT round trip, key-switch
// MAC, automorphism, release. ReportAllocs is the point — the pooled rewrite
// holds this at 0 allocs/op (gated exactly by TestRingKernelAllocs).
func BenchmarkPooledRingKernels(b *testing.B) {
	r := testRing(b, 12, 4)
	level := r.MaxLevel()
	s := NewSampler(r, NewTestPRNG(5))
	a := r.NewPoly(level)
	w := r.NewPoly(level)
	out := r.NewPoly(level)
	s.UniformPoly(a, level)
	s.UniformPoly(w, level)
	galEl := r.GaloisElementForRotation(1)
	b.SetBytes(int64(8 * r.N * (level + 1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := r.GetPoly(level)
		t.CopyLevel(a, level)
		r.NTT(t, level)
		r.InvNTT(t, level)
		r.MulCoeffsAndAdd(t, w, out, level)
		r.AutomorphismNTT(t, galEl, out, level)
		r.PutPoly(t)
	}
}

// BenchmarkNTTForwardStrict measures the fully-reduced reference forward
// transform, the baseline the lazy variant is an optimization over.
func BenchmarkNTTForwardStrict(b *testing.B) {
	tables, a := benchSetup(b, 13)
	b.SetBytes(int64(8 * len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables.forwardStrict(a)
	}
}

// BenchmarkNTTInverse measures the lazy-reduction inverse transform.
func BenchmarkNTTInverse(b *testing.B) {
	tables, a := benchSetup(b, 13)
	b.SetBytes(int64(8 * len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables.inverse(a)
	}
}

// BenchmarkKeySwitchInnerProduct measures one row of the key-switch
// multiply-accumulate in both forms: the Barrett baseline the evaluator
// used before hoisting, and the Shoup-lazy kernel it uses now.
func BenchmarkKeySwitchInnerProduct(b *testing.B) {
	const logN = 13
	primes, err := GenerateNTTPrimes(50, logN, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := primes[0]
	m := NewModulus(q)
	rng := rand.New(rand.NewSource(11))
	n := 1 << uint(logN)
	x := make([]uint64, n)
	w := make([]uint64, n)
	wS := make([]uint64, n)
	acc := make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64() % q
		w[i] = rng.Uint64() % q
		wS[i] = MForm(w[i], q)
	}

	b.Run("barrett", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			for k := 0; k < n; k++ {
				acc[k] = AddMod(acc[k], m.BRed(x[k], w[k]), q)
			}
		}
	})
	b.Run("shoup-lazy", func(b *testing.B) {
		for i := range acc {
			acc[i] = 0
		}
		b.SetBytes(int64(8 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			VecMulAddShoupLazy(acc, x, w, wS, q)
		}
	})
}
