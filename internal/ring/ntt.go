package ring

import "math/bits"

// nttTables holds the precomputed twiddle factors for a negacyclic NTT of
// length N modulo one prime.
type nttTables struct {
	q        uint64
	n        int
	psiRev   []uint64 // psi^i in bit-reversed order, psi a primitive 2N-th root
	psiRevS  []uint64 // Shoup form of psiRev
	ipsiRev  []uint64 // psi^{-i} in bit-reversed order
	ipsiRevS []uint64 // Shoup form of ipsiRev
	nInv     uint64   // N^{-1} mod q
	nInvS    uint64   // Shoup form of nInv
}

func newNTTTables(q uint64, logN int) *nttTables {
	n := 1 << uint(logN)
	psi := primitiveRoot2N(q, logN)
	ipsi := InvMod(psi, q)

	t := &nttTables{
		q:        q,
		n:        n,
		psiRev:   make([]uint64, n),
		psiRevS:  make([]uint64, n),
		ipsiRev:  make([]uint64, n),
		ipsiRevS: make([]uint64, n),
		nInv:     InvMod(uint64(n), q),
	}
	t.nInvS = MForm(t.nInv, q)

	p, ip := uint64(1), uint64(1)
	shift := 64 - uint(logN)
	for i := 0; i < n; i++ {
		r := int(bits.Reverse64(uint64(i)) >> shift)
		t.psiRev[r] = p
		t.ipsiRev[r] = ip
		p = MulMod(p, psi, q)
		ip = MulMod(ip, ipsi, q)
	}
	for i := 0; i < n; i++ {
		t.psiRevS[i] = MForm(t.psiRev[i], q)
		t.ipsiRevS[i] = MForm(t.ipsiRev[i], q)
	}
	return t
}

// nttBlock is the cache-block segment length in coefficients. The butterfly
// loops are blocked so that once a transform's independent sub-problems are
// contiguous and no longer than this, each segment runs to completion while
// resident in L1: the segment data (8 KiB at 1024) plus the twiddle pairs
// its local stages touch (~16 KiB) fit a 32 KiB L1d. Without blocking,
// every stage of an N=8192 transform streams the full 64 KiB row through
// the cache, so the 13 stages move ~13x the row from L2/DRAM; blocked, only
// the first logN-10 stages do.
const nttBlock = 1024

// forward transforms a into the NTT (evaluation) domain in place.
// Cooley-Tukey butterflies with merged negacyclic twist (Longa-Naehrig),
// executed with lazy reduction (Harvey): intermediate values live in
// [0, 4q) and are only brought back to [0, 2q) at the top of each
// butterfly, with one full reduction pass at the end. Inputs must be in
// [0, q); outputs are in [0, q) and bit-identical to forwardStrict.
// Correctness needs 4q < 2^63, guaranteed by the q < 2^61 modulus bound.
//
// The stage loop is cache-blocked: the decimation-in-time recursion makes
// group i of the stage with m groups a contiguous segment that only ever
// splits into its own sub-segments at later stages, so once segments reach
// nttBlock length each one runs all remaining stages locally (heap node
// m+i indexes its twiddles; a sub-group i' of node `node` at local depth m'
// is heap node m'*node+i', which is the same psiRev entry the flat loop
// would read). Per-element butterfly order is unchanged, so blocking is
// bit-identical.
func (t *nttTables) forward(a []uint64) {
	q := t.q
	twoQ := q << 1
	n := t.n
	seg := nttBlock
	if seg > n {
		seg = n
	}
	mSwitch := n / seg
	dist := n
	for m := 1; m < mSwitch; m <<= 1 {
		dist >>= 1
		for i := 0; i < m; i++ {
			w := t.psiRev[m+i]
			ws := t.psiRevS[m+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j] // [0, 4q)
				if u >= twoQ {
					u -= twoQ // [0, 2q)
				}
				v := mulModShoupLazy(a[j+dist], w, ws, q) // [0, 2q)
				a[j] = u + v                              // [0, 4q)
				a[j+dist] = u + twoQ - v                  // [0, 4q)
			}
		}
	}
	for s := 0; s < mSwitch; s++ {
		t.forwardSeg(a[s*seg:(s+1)*seg], mSwitch+s)
	}
	for j := range a {
		v := a[j]
		if v >= twoQ {
			v -= twoQ
		}
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}

// forwardSeg runs all remaining forward stages on one contiguous segment,
// the heap node `node` of the decimation-in-time recursion: its local stage
// with m groups uses twiddles psiRev[m*node+i].
func (t *nttTables) forwardSeg(a []uint64, node int) {
	q := t.q
	twoQ := q << 1
	n := len(a)
	dist := n
	for m := 1; m < n; m <<= 1 {
		dist >>= 1
		tw := m * node
		for i := 0; i < m; i++ {
			w := t.psiRev[tw+i]
			ws := t.psiRevS[tw+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := mulModShoupLazy(a[j+dist], w, ws, q)
				a[j] = u + v
				a[j+dist] = u + twoQ - v
			}
		}
	}
}

// inverse transforms a back to the coefficient domain in place.
// Gentleman-Sande butterflies with lazy reduction (values kept in [0, 2q)
// between stages) followed by multiplication with N^{-1}. Inputs must be
// in [0, q); outputs are in [0, q) and bit-identical to inverseStrict.
//
// Blocking mirrors forward: decimation-in-frequency consumes its small
// contiguous groups FIRST, so each nttBlock segment runs its early stages
// to completion in L1 before the remaining large-stride stages execute
// globally. Twiddle indexing is the same heap scheme as forwardSeg.
func (t *nttTables) inverse(a []uint64) {
	q := t.q
	twoQ := q << 1
	n := t.n
	seg := nttBlock
	if seg > n {
		seg = n
	}
	node0 := n / seg
	for s := 0; s < node0; s++ {
		t.inverseSeg(a[s*seg:(s+1)*seg], node0+s)
	}
	dist := seg
	for m := node0 >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.ipsiRev[m+i]
			ws := t.ipsiRevS[m+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j]      // [0, 2q)
				v := a[j+dist] // [0, 2q)
				s := u + v     // [0, 4q)
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s                                        // [0, 2q)
				a[j+dist] = mulModShoupLazy(u+twoQ-v, w, ws, q) // [0, 2q)
			}
		}
		dist <<= 1
	}
	for j := range a {
		r := mulModShoupLazy(a[j], t.nInv, t.nInvS, q)
		if r >= q {
			r -= q
		}
		a[j] = r
	}
}

// inverseSeg runs the early inverse stages local to one contiguous segment
// (heap node `node`): its local stage with m groups uses ipsiRev[m*node+i].
func (t *nttTables) inverseSeg(a []uint64, node int) {
	q := t.q
	twoQ := q << 1
	n := len(a)
	dist := 1
	for m := n >> 1; m >= 1; m >>= 1 {
		tw := m * node
		for i := 0; i < m; i++ {
			w := t.ipsiRev[tw+i]
			ws := t.ipsiRevS[tw+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j]
				v := a[j+dist]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+dist] = mulModShoupLazy(u+twoQ-v, w, ws, q)
			}
		}
		dist <<= 1
	}
}

// forwardStrict is the fully-reduced reference forward transform (every
// butterfly output in [0, q)). It is retained as the oracle the lazy
// forward is tested against.
func (t *nttTables) forwardStrict(a []uint64) {
	q := t.q
	n := t.n
	dist := n
	for m := 1; m < n; m <<= 1 {
		dist >>= 1
		for i := 0; i < m; i++ {
			w := t.psiRev[m+i]
			ws := t.psiRevS[m+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j]
				v := MulModShoup(a[j+dist], w, ws, q)
				a[j] = AddMod(u, v, q)
				a[j+dist] = SubMod(u, v, q)
			}
		}
	}
}

// inverseStrict is the fully-reduced reference inverse transform, the
// oracle the lazy inverse is tested against.
func (t *nttTables) inverseStrict(a []uint64) {
	q := t.q
	n := t.n
	dist := 1
	for m := n >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.ipsiRev[m+i]
			ws := t.ipsiRevS[m+i]
			base := 2 * i * dist
			for j := base; j < base+dist; j++ {
				u := a[j]
				v := a[j+dist]
				a[j] = AddMod(u, v, q)
				a[j+dist] = MulModShoup(SubMod(u, v, q), w, ws, q)
			}
		}
		dist <<= 1
	}
	for j := range a {
		a[j] = MulModShoup(a[j], t.nInv, t.nInvS, q)
	}
}
