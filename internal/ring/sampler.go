package ring

import (
	"crypto/rand"
	"encoding/binary"
	"math"
)

// PRNG is the source of randomness used by the samplers. Implementations
// must return uniformly distributed 64-bit words.
type PRNG interface {
	Uint64() uint64
}

// cryptoPRNG draws from crypto/rand with an internal buffer.
type cryptoPRNG struct {
	buf []byte
	pos int
}

// NewCryptoPRNG returns a cryptographically secure PRNG backed by
// crypto/rand.
func NewCryptoPRNG() PRNG {
	return &cryptoPRNG{buf: make([]byte, 4096), pos: 4096}
}

func (c *cryptoPRNG) Uint64() uint64 {
	if c.pos+8 > len(c.buf) {
		if _, err := rand.Read(c.buf); err != nil {
			panic("ring: crypto/rand failure: " + err.Error())
		}
		c.pos = 0
	}
	v := binary.LittleEndian.Uint64(c.buf[c.pos:])
	c.pos += 8
	return v
}

// testPRNG is a fast deterministic splitmix64 generator for tests and
// reproducible benchmarks. It is NOT cryptographically secure.
type testPRNG struct{ state uint64 }

// NewTestPRNG returns a deterministic PRNG seeded with seed. For tests and
// benchmarks only.
func NewTestPRNG(seed uint64) PRNG { return &testPRNG{state: seed} }

func (t *testPRNG) Uint64() uint64 {
	t.state += 0x9e3779b97f4a7c15
	z := t.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampler draws random ring elements.
type Sampler struct {
	r     *Ring
	prng  PRNG
	sigma float64 // Gaussian parameter for error sampling
	bound float64 // rejection bound (6*sigma)
}

// DefaultSigma is the standard deviation of the error distribution used by
// the homomorphic-encryption standard.
const DefaultSigma = 3.2

// NewSampler creates a sampler over r using the given randomness source.
func NewSampler(r *Ring, prng PRNG) *Sampler {
	return &Sampler{r: r, prng: prng, sigma: DefaultSigma, bound: 6 * DefaultSigma}
}

// uniform64Below returns a uniform value in [0, q) by rejection.
func (s *Sampler) uniform64Below(q uint64) uint64 {
	mask := uint64(1)<<uint(64-clz64(q)) - 1
	for {
		v := s.prng.Uint64() & mask
		if v < q {
			return v
		}
	}
}

func clz64(x uint64) int {
	n := 0
	for x < 1<<63 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

// UniformPoly fills out with independent uniform residues (valid in either
// domain, since the uniform distribution is NTT-invariant).
func (s *Sampler) UniformPoly(out *Poly, level int) {
	for i := 0; i <= level; i++ {
		q := s.r.Moduli[i].Q
		row := out.Coeffs[i]
		for j := range row {
			row[j] = s.uniform64Below(q)
		}
	}
}

// TernaryPoly fills out (coefficient domain) with uniform ternary
// coefficients in {-1, 0, 1}, the secret-key distribution of the HE
// standard. The same signed value is used across all residue rows.
func (s *Sampler) TernaryPoly(out *Poly, level int) {
	n := s.r.N
	vals := make([]int8, n)
	for j := 0; j < n; j++ {
		// Uniform over {-1, 0, 1} by rejection on 2 bits.
		for {
			b := s.prng.Uint64() & 3
			if b < 3 {
				vals[j] = int8(b) - 1
				break
			}
		}
	}
	s.setSigned(out, vals, level)
}

// GaussianPoly fills out (coefficient domain) with centered discrete
// Gaussian coefficients of parameter sigma, truncated at 6 sigma.
func (s *Sampler) GaussianPoly(out *Poly, level int) {
	n := s.r.N
	vals := make([]int8, n)
	for j := 0; j < n; j += 2 {
		x, y := s.normalPair()
		vals[j] = clampInt8(math.Round(x * s.sigma))
		if j+1 < n {
			vals[j+1] = clampInt8(math.Round(y * s.sigma))
		}
	}
	s.setSigned(out, vals, level)
}

// normalPair returns two independent standard normal samples (Box-Muller),
// each truncated to |v| <= 6.
func (s *Sampler) normalPair() (float64, float64) {
	for {
		u1 := float64(s.prng.Uint64()>>11) / (1 << 53)
		u2 := float64(s.prng.Uint64()>>11) / (1 << 53)
		if u1 == 0 {
			continue
		}
		r := math.Sqrt(-2 * math.Log(u1))
		x := r * math.Cos(2*math.Pi*u2)
		y := r * math.Sin(2*math.Pi*u2)
		if math.Abs(x) <= 6 && math.Abs(y) <= 6 {
			return x, y
		}
	}
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return int8(v)
}

// setSigned writes small signed coefficients into every residue row of out.
func (s *Sampler) setSigned(out *Poly, vals []int8, level int) {
	for i := 0; i <= level; i++ {
		q := s.r.Moduli[i].Q
		row := out.Coeffs[i]
		for j, v := range vals {
			if v >= 0 {
				row[j] = uint64(v)
			} else {
				row[j] = q - uint64(-v)
			}
		}
	}
}
