// Package telemetry is the observability layer of the repository: a
// low-overhead, race-clean tracing and profiling facility that threads
// through hisa → htc → core → serve. Its center is Tracer, a hisa.Backend
// wrapper that records one span per homomorphic operation — op kind, wall
// time, ciphertext level and scale before/after, rotation amount, worker
// goroutine — into a bounded ring, nesting ops under the kernel/layer
// scopes the htc executor opens. A recorded run exports either a flat
// per-op/per-scope profile (count, total, p50/p99, % of wall) or Chrome
// trace_event JSON viewable in Perfetto (chrome.go); precision.go runs the
// same circuit against the plaintext Ref oracle and records the per-layer
// error the paper's profile-guided scale search consumes.
//
// Tracer composes with hisa.Meter in either order: both implement
// hisa.Unwrapper, and Tracer mirrors Meter's counting semantics exactly
// (whole-slot rotations and divisor-1 rescales are non-ops; Copy/Free/Scale
// are metadata and never recorded), so span tallies and op counts agree.
package telemetry

import (
	"math/big"
	"runtime"
	"strings"
	"sync"
	"time"

	"chet/internal/hisa"
)

// SpanKind distinguishes operation spans from the enclosing scope spans the
// executor opens around each circuit node.
type SpanKind uint8

// The two span kinds.
const (
	// KindOp is one HISA instruction execution.
	KindOp SpanKind = iota
	// KindScope is one kernel/layer scope (a circuit node, or a serve-side
	// request evaluation); its duration encloses the ops recorded under it.
	KindScope
)

// Span is one recorded event. Times are offsets from the Tracer's epoch so
// spans from concurrent goroutines share one timeline.
type Span struct {
	Kind SpanKind
	// Op is the instruction mnemonic ("mul", "rotl", ...) for KindOp, or
	// the scope label ("conv2d:conv1") for KindScope.
	Op string
	// Scope is the enclosing scope path at record time ("" at top level;
	// nested scopes join with '/').
	Scope string
	Start time.Duration
	Dur   time.Duration
	// LevelIn/LevelOut are the ciphertext level before/after the op when
	// the backend exposes levels (RNS); -1 otherwise.
	LevelIn, LevelOut int
	// ScaleIn/ScaleOut are the fixed-point scales of the ciphertext
	// operand/result (0 when the op has none, e.g. encode).
	ScaleIn, ScaleOut float64
	// Rot is the rotation amount for rotl/rotr spans.
	Rot int
	// GID is the goroutine that executed the op (worker attribution).
	GID int64
	// TraceID correlates spans across processes: the client allocates it,
	// the wire protocol carries it through router and worker hops, and every
	// span recorded under a request scope inherits it. 0 = untraced.
	TraceID uint64
	// SpanID identifies a scope span so children can reference it; op spans
	// are leaves and leave it 0.
	SpanID uint64
	// Parent is the SpanID of the enclosing span — for a worker's request
	// scope, the router's relay span, which is how cross-process span trees
	// stitch into one trace.
	Parent uint64
}

// OpTotal is a cumulative per-op tally; unlike the span ring it never drops
// history, so long-running servers export exact totals.
type OpTotal struct {
	Count int64
	Total time.Duration
}

// Config parameterizes a Tracer. The zero value selects the defaults.
type Config struct {
	// Capacity bounds the span ring; once full, the oldest spans are
	// overwritten (Dropped counts them). Default 1 << 16.
	Capacity int
}

// levelBackend is the optional capability (RNSBackend) for reading a
// ciphertext's remaining level.
type levelBackend interface {
	LevelOf(c hisa.Ciphertext) int
}

// scopeFrame is one open scope: its label plus the trace context every op
// and nested scope recorded under it inherits.
type scopeFrame struct {
	label   string
	traceID uint64
	spanID  uint64
	parent  uint64
}

// Tracer wraps a hisa.Backend and records per-op spans. It implements
// Backend (kernels are oblivious to it), hisa.Unwrapper, and the
// RotateManyBackend capability, and is safe for concurrent op execution:
// the ring and scope stack are mutex-guarded, and the lock is held only for
// the append — never across the wrapped operation.
type Tracer struct {
	inner   hisa.Backend
	epoch   time.Time
	levelOf func(hisa.Ciphertext) int // nil when the chain has no levels

	mu      sync.Mutex
	ring    []Span
	next    int    // write cursor once the ring is full
	full    bool   // ring has wrapped at least once
	dropped uint64 // spans overwritten after wrap
	stack   []scopeFrame
	scope   string // joined stack labels, cached
	totals  map[string]*OpTotal
}

// NewTracer wraps inner. The level probe is resolved once, through any
// Unwrap chain, so Tracer(Meter(RNS)) still records levels. When the chain
// exposes bootstrap stage hooks (RNSBackend with bootstrapping enabled or
// enabled later), the tracer installs one so each refresh records its
// pipeline stages ("boot:modraise", "boot:coeff-to-slot", ...) as child
// spans under whatever scope the refresh ran in.
func NewTracer(inner hisa.Backend, cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 16
	}
	t := &Tracer{
		inner:  inner,
		epoch:  time.Now(),
		ring:   make([]Span, 0, cfg.Capacity),
		totals: make(map[string]*OpTotal),
	}
	if lb, ok := hisa.FindCapability[levelBackend](inner); ok {
		t.levelOf = lb.LevelOf
	}
	if sb, ok := hisa.FindCapability[stageBackend](inner); ok {
		sb.SetBootstrapStageHook(func(stage string, start, end time.Time) {
			t.RecordManual(KindOp, "boot:"+stage, start, end.Sub(start), 0, 0, 0)
		})
	}
	return t
}

// stageBackend is the optional capability (RNSBackend) for observing the
// interior stages of each bootstrap refresh.
type stageBackend interface {
	SetBootstrapStageHook(func(stage string, start, end time.Time))
}

// Unwrap exposes the wrapped backend for capability discovery.
func (t *Tracer) Unwrap() hisa.Backend { return t.inner }

// Epoch returns the instant span Start offsets are measured from, so spans
// from several tracers (or processes) can be rebased onto one timeline.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// joinFrames rebuilds the cached scope path from the stack labels.
func joinFrames(stack []scopeFrame) string {
	labels := make([]string, len(stack))
	for i, f := range stack {
		labels[i] = f.label
	}
	return strings.Join(labels, "/")
}

// StartScope pushes a named scope; ops recorded until the returned func
// runs are attributed to it. The close func records the scope's own span.
// Scopes nest (the htc executor opens one per circuit node inside any
// request-level scope serve opened); open/close must pair on one goroutine,
// which the serial node loop guarantees. The scope inherits the enclosing
// scope's trace context, so executor-opened kernel scopes ride on the
// request's trace ID without knowing it exists.
func (t *Tracer) StartScope(label string) func() {
	end, _ := t.StartScopeCtx(label, 0, 0)
	return end
}

// StartScopeCtx is StartScope with explicit trace context: the scope (and
// everything recorded under it) is stamped with traceID and parented under
// parent — for a serve-side request scope, the span ID the router wrote
// into the wire frame. It returns the scope's own span ID so callers can
// parent siblings (queue-wait spans, batch flush spans) under it. A zero
// traceID inherits the enclosing scope's context instead.
func (t *Tracer) StartScopeCtx(label string, traceID, parent uint64) (func(), uint64) {
	start := time.Now()
	sid := NewSpanID()
	t.mu.Lock()
	if traceID == 0 {
		if n := len(t.stack); n > 0 {
			traceID = t.stack[n-1].traceID
			parent = t.stack[n-1].spanID
		}
	}
	t.stack = append(t.stack, scopeFrame{label: label, traceID: traceID, spanID: sid, parent: parent})
	t.scope = joinFrames(t.stack)
	t.mu.Unlock()
	return func() {
		end := time.Now()
		t.mu.Lock()
		// Unwind to this scope's frame: inner scopes leaked by a recovered
		// kernel panic are discarded rather than pinned forever.
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i].label == label {
				t.stack = t.stack[:i]
				t.scope = joinFrames(t.stack)
				break
			}
		}
		parentScope := t.scope
		t.append(Span{
			Kind:    KindScope,
			Op:      label,
			Scope:   parentScope,
			Start:   start.Sub(t.epoch),
			Dur:     end.Sub(start),
			LevelIn: -1, LevelOut: -1,
			GID:     goroutineID(),
			TraceID: traceID,
			SpanID:  sid,
			Parent:  parent,
		})
		t.mu.Unlock()
	}, sid
}

// RecordManual records a span the backend wrapper cannot see — a queue
// wait, a batch flush, a bootstrap pipeline stage. A zero traceID inherits
// the current scope's trace context (like an op span would); an explicit
// one stands alone.
func (t *Tracer) RecordManual(kind SpanKind, op string, start time.Time, dur time.Duration, traceID, spanID, parent uint64) {
	s := Span{
		Kind:    kind,
		Op:      op,
		Start:   start.Sub(t.epoch),
		Dur:     dur,
		LevelIn: -1, LevelOut: -1,
		GID:     goroutineID(),
		TraceID: traceID,
		SpanID:  spanID,
		Parent:  parent,
	}
	t.mu.Lock()
	s.Scope = t.scope
	if s.TraceID == 0 {
		if n := len(t.stack); n > 0 {
			s.TraceID = t.stack[n-1].traceID
			s.Parent = t.stack[n-1].spanID
		}
	}
	if kind == KindOp {
		agg := t.totals[op]
		if agg == nil {
			agg = &OpTotal{}
			t.totals[op] = agg
		}
		agg.Count++
		agg.Total += dur
	}
	t.append(s)
	t.mu.Unlock()
}

// append inserts a span into the ring. Callers hold t.mu.
func (t *Tracer) append(s Span) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.full = true
	t.dropped++
}

// record finishes an op span started at start with operand c and result out
// (either may be nil for ops without a ciphertext on that side).
func (t *Tracer) record(op string, rot int, c, out hisa.Ciphertext, start time.Time) {
	s := Span{
		Kind:    KindOp,
		Op:      op,
		Start:   start.Sub(t.epoch),
		Dur:     time.Since(start),
		Rot:     rot,
		LevelIn: -1, LevelOut: -1,
		GID: goroutineID(),
	}
	if c != nil {
		s.ScaleIn = t.inner.Scale(c)
		if t.levelOf != nil {
			s.LevelIn = t.levelOf(c)
		}
	}
	if out != nil {
		s.ScaleOut = t.inner.Scale(out)
		if t.levelOf != nil {
			s.LevelOut = t.levelOf(out)
		}
	}
	t.mu.Lock()
	s.Scope = t.scope
	if n := len(t.stack); n > 0 {
		s.TraceID = t.stack[n-1].traceID
		s.Parent = t.stack[n-1].spanID
	}
	agg := t.totals[op]
	if agg == nil {
		agg = &OpTotal{}
		t.totals[op] = agg
	}
	agg.Count++
	agg.Total += s.Dur
	t.append(s)
	t.mu.Unlock()
}

// Snapshot copies the retained spans in chronological order.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Totals copies the cumulative per-op tallies (never truncated by the ring).
func (t *Tracer) Totals() map[string]OpTotal {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]OpTotal, len(t.totals))
	for k, v := range t.totals {
		out[k] = *v
	}
	return out
}

// SpanCount returns the cumulative number of op spans recorded (scope spans
// excluded), including any the ring has since dropped.
func (t *Tracer) SpanCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, v := range t.totals {
		n += v.Count
	}
	return n
}

// Dropped reports how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the ring and the cumulative totals; the epoch is preserved
// so pre- and post-reset spans stay on one timeline.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.full = false
	t.dropped = 0
	t.totals = make(map[string]*OpTotal)
}

// --- hisa.Backend ---

func (t *Tracer) Name() string { return t.inner.Name() + "+trace" }
func (t *Tracer) Slots() int   { return t.inner.Slots() }

func (t *Tracer) Encrypt(p hisa.Plaintext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.Encrypt(p)
	t.record("encrypt", 0, nil, out, start)
	return out
}

func (t *Tracer) Decrypt(c hisa.Ciphertext) hisa.Plaintext {
	start := time.Now()
	out := t.inner.Decrypt(c)
	t.record("decrypt", 0, c, nil, start)
	return out
}

// Copy and Free are metadata-only and never recorded, mirroring Meter.
func (t *Tracer) Copy(c hisa.Ciphertext) hisa.Ciphertext { return t.inner.Copy(c) }
func (t *Tracer) Free(h any)                             { t.inner.Free(h) }

func (t *Tracer) Encode(m []float64, f float64) hisa.Plaintext {
	start := time.Now()
	out := t.inner.Encode(m, f)
	t.record("encode", 0, nil, nil, start)
	return out
}

func (t *Tracer) Decode(p hisa.Plaintext) []float64 {
	start := time.Now()
	out := t.inner.Decode(p)
	t.record("decode", 0, nil, nil, start)
	return out
}

func (t *Tracer) RotLeft(c hisa.Ciphertext, x int) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.RotLeft(c, x)
	if x%t.Slots() != 0 { // whole-slot rotations are non-ops, as in Meter
		t.record("rotl", x, c, out, start)
	}
	return out
}

func (t *Tracer) RotRight(c hisa.Ciphertext, x int) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.RotRight(c, x)
	if x%t.Slots() != 0 {
		t.record("rotr", x, c, out, start)
	}
	return out
}

// RotLeftMany forwards the batch (hoisting amortizes shared work across the
// amounts) and records one span per non-trivial amount with the batch
// duration split evenly, so per-op totals are comparable whether or not a
// kernel batched its rotations and span counts mirror Meter's tallies.
func (t *Tracer) RotLeftMany(c hisa.Ciphertext, ks []int) []hisa.Ciphertext {
	start := time.Now()
	outs := hisa.RotLeftMany(t.inner, c, ks)
	dur := time.Since(start)
	n := 0
	for _, k := range ks {
		if k%t.Slots() != 0 {
			n++
		}
	}
	if n == 0 {
		return outs
	}
	per := dur / time.Duration(n)
	at := start
	for i, k := range ks {
		if k%t.Slots() == 0 {
			continue
		}
		s := Span{
			Kind:    KindOp,
			Op:      "rotl",
			Start:   at.Sub(t.epoch),
			Dur:     per,
			Rot:     k,
			LevelIn: -1, LevelOut: -1,
			GID: goroutineID(),
		}
		s.ScaleIn = t.inner.Scale(c)
		s.ScaleOut = t.inner.Scale(outs[i])
		if t.levelOf != nil {
			s.LevelIn = t.levelOf(c)
			s.LevelOut = t.levelOf(outs[i])
		}
		t.mu.Lock()
		s.Scope = t.scope
		if n := len(t.stack); n > 0 {
			s.TraceID = t.stack[n-1].traceID
			s.Parent = t.stack[n-1].spanID
		}
		agg := t.totals["rotl"]
		if agg == nil {
			agg = &OpTotal{}
			t.totals["rotl"] = agg
		}
		agg.Count++
		agg.Total += per
		t.append(s)
		t.mu.Unlock()
		at = at.Add(per)
	}
	return outs
}

func (t *Tracer) Add(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.Add(c, c2)
	t.record("add", 0, c, out, start)
	return out
}

func (t *Tracer) AddPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.AddPlain(c, p)
	t.record("addplain", 0, c, out, start)
	return out
}

func (t *Tracer) AddScalar(c hisa.Ciphertext, x float64) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.AddScalar(c, x)
	t.record("addscalar", 0, c, out, start)
	return out
}

func (t *Tracer) Sub(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.Sub(c, c2)
	t.record("sub", 0, c, out, start)
	return out
}

func (t *Tracer) SubPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.SubPlain(c, p)
	t.record("subplain", 0, c, out, start)
	return out
}

func (t *Tracer) SubScalar(c hisa.Ciphertext, x float64) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.SubScalar(c, x)
	t.record("subscalar", 0, c, out, start)
	return out
}

func (t *Tracer) Mul(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.Mul(c, c2)
	t.record("mul", 0, c, out, start)
	// Relinearization is intrinsic to every backend's Mul (ct-ct products
	// relinearize internally), so it surfaces as a distinct zero-duration
	// span: relin counts become first-class in profiles and /metrics without
	// double-counting Mul's wall time. Mirrors Meter's Relinearize tally.
	t.record("relin", 0, nil, out, time.Now())
	return out
}

// lazyInner asserts the wrapped backend's deferred-relinearization
// capability; LazyRelinCapable gates callers before they reach it.
func (t *Tracer) lazyInner() hisa.LazyRelinBackend {
	lb, ok := t.inner.(hisa.LazyRelinBackend)
	if !ok {
		panic("telemetry: backend " + t.inner.Name() + " does not support deferred relinearization")
	}
	return lb
}

func (t *Tracer) LazyRelinCapable() bool {
	lb, ok := t.inner.(hisa.LazyRelinBackend)
	return ok && lb.LazyRelinCapable()
}

// MulNoRelin records only a mul span; the relin span is emitted — with its
// real duration, unlike Mul's intrinsic zero-duration marker — when the
// deferred Relinearize runs.
func (t *Tracer) MulNoRelin(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	lb := t.lazyInner()
	start := time.Now()
	out := lb.MulNoRelin(c, c2)
	t.record("mul", 0, c, out, start)
	return out
}

func (t *Tracer) Relinearize(c hisa.Ciphertext) hisa.Ciphertext {
	lb := t.lazyInner()
	start := time.Now()
	out := lb.Relinearize(c)
	t.record("relin", 0, c, out, start)
	return out
}

// FusedRescaleCapable forwards the fused rescale-into-key-switch capability
// (gated on the inner backend, like LazyRelinCapable).
func (t *Tracer) FusedRescaleCapable() bool {
	fb, ok := t.inner.(hisa.FusedRescaleBackend)
	return ok && fb.FusedRescaleCapable()
}

// RelinearizeRescale records the fused op as a full-duration rescale span
// plus a zero-duration relin marker (mirroring Mul's intrinsic relin
// marker): span tallies stay in step with Meter's counts and no wall time
// is double-counted. Divisor-1 calls are pure relinearizations and record
// only the relin span, with its real duration.
func (t *Tracer) RelinearizeRescale(c hisa.Ciphertext, x *big.Int) hisa.Ciphertext {
	fb, ok := t.inner.(hisa.FusedRescaleBackend)
	if !ok {
		panic("telemetry: backend " + t.inner.Name() + " does not support fused rescale")
	}
	start := time.Now()
	out := fb.RelinearizeRescale(c, x)
	if x.Cmp(bigOne) != 0 {
		t.record("rescale", 0, c, out, start)
		t.record("relin", 0, nil, out, time.Now())
	} else {
		t.record("relin", 0, c, out, start)
	}
	return out
}

func (t *Tracer) MulPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.MulPlain(c, p)
	t.record("mulplain", 0, c, out, start)
	return out
}

func (t *Tracer) MulScalar(c hisa.Ciphertext, x float64, f float64) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.MulScalar(c, x, f)
	t.record("mulscalar", 0, c, out, start)
	return out
}

func (t *Tracer) Rescale(c hisa.Ciphertext, x *big.Int) hisa.Ciphertext {
	start := time.Now()
	out := t.inner.Rescale(c, x)
	if x.Cmp(bigOne) != 0 { // divisor-1 rescales are non-ops, as in Meter
		t.record("rescale", 0, c, out, start)
	}
	return out
}

var bigOne = big.NewInt(1)

func (t *Tracer) MaxRescale(c hisa.Ciphertext, ub *big.Int) *big.Int {
	start := time.Now()
	out := t.inner.MaxRescale(c, ub)
	t.record("maxrescale", 0, c, nil, start)
	return out
}

func (t *Tracer) Scale(c hisa.Ciphertext) float64 { return t.inner.Scale(c) }

// --- hisa.ConjugateBackend ---

// conjInner resolves the wrapped backend's conjugation capability. Tracer
// structurally satisfies hisa.ConjugateBackend, so the real capability check
// happens here, with a clear message when the base backend lacks it.
func (t *Tracer) conjInner() hisa.ConjugateBackend {
	cb, ok := hisa.AsConjugate(t.inner)
	if !ok {
		panic("telemetry: wrapped backend " + t.inner.Name() + " does not support complex slot operations")
	}
	return cb
}

func (t *Tracer) Conjugate(c hisa.Ciphertext) hisa.Ciphertext {
	cb := t.conjInner()
	start := time.Now()
	out := cb.Conjugate(c)
	t.record("conj", 0, c, out, start)
	return out
}

// The complex encode/decode/plaintext variants record under the same
// mnemonics as their real counterparts, mirroring Meter's tallies.
func (t *Tracer) EncryptC(m []complex128, f float64) hisa.Ciphertext {
	cb := t.conjInner()
	start := time.Now()
	out := cb.EncryptC(m, f)
	t.record("encrypt", 0, nil, out, start)
	return out
}

func (t *Tracer) DecryptC(c hisa.Ciphertext) []complex128 {
	cb := t.conjInner()
	start := time.Now()
	out := cb.DecryptC(c)
	t.record("decrypt", 0, c, nil, start)
	return out
}

func (t *Tracer) AddPlainC(c hisa.Ciphertext, m []complex128) hisa.Ciphertext {
	cb := t.conjInner()
	start := time.Now()
	out := cb.AddPlainC(c, m)
	t.record("addplain", 0, c, out, start)
	return out
}

func (t *Tracer) MulScalarC(c hisa.Ciphertext, z complex128, f float64) hisa.Ciphertext {
	cb := t.conjInner()
	start := time.Now()
	out := cb.MulScalarC(c, z, f)
	t.record("mulscalar", 0, c, out, start)
	return out
}

// --- hisa.BootstrapBackend ---

// bootInner resolves the wrapped backend's bootstrap capability;
// BootstrapCapable gates callers before they reach it.
func (t *Tracer) bootInner() hisa.BootstrapBackend {
	bb, ok := hisa.AsBootstrap(t.inner)
	if !ok {
		panic("telemetry: wrapped backend " + t.inner.Name() + " does not support bootstrapping")
	}
	return bb
}

// BootstrapCapable forwards the refresh capability (gated on the inner
// backend, like LazyRelinCapable).
func (t *Tracer) BootstrapCapable() bool {
	_, ok := hisa.AsBootstrap(t.inner)
	return ok
}

// Bootstrap records one span for the whole refresh pipeline: in profiles a
// bootstrap is a single (dominant) instruction, matching Meter's tally; its
// interior rotations and multiplications run below the HISA layer.
func (t *Tracer) Bootstrap(c hisa.Ciphertext) hisa.Ciphertext {
	bb := t.bootInner()
	start := time.Now()
	out := bb.Bootstrap(c)
	t.record("bootstrap", 0, c, out, start)
	return out
}

// BudgetOf, FreshBudget, and DropToFresh are metadata and record no spans.
func (t *Tracer) BudgetOf(c hisa.Ciphertext) int { return t.bootInner().BudgetOf(c) }

func (t *Tracer) FreshBudget() int { return t.bootInner().FreshBudget() }

func (t *Tracer) DropToFresh(c hisa.Ciphertext) hisa.Ciphertext {
	return t.bootInner().DropToFresh(c)
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 ["). Sub-microsecond against millisecond-scale lattice
// ops; tests assert the end-to-end tracer overhead budget.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, ch := range buf[prefix:n] {
		if ch < '0' || ch > '9' {
			break
		}
		id = id*10 + int64(ch-'0')
	}
	return id
}
