package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Quantile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using linear interpolation between the two closest ranks, so a
// small window reports e.g. q(0.99) between its top two samples instead of
// collapsing to the maximum (the nearest-rank failure mode for windows
// under 100 samples).
func Quantile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	// Round to the nearest nanosecond: truncation would report 909.999999ms
	// for an exact 910ms interpolation point.
	return sorted[lo] + time.Duration(math.Round(frac*float64(sorted[hi]-sorted[lo])))
}

// OpProfile is the flat per-op view of a recorded run.
type OpProfile struct {
	Op       string
	Count    int
	Total    time.Duration
	P50, P99 time.Duration
	// PctOfWall is Total as a percentage of the run's wall time. Op work
	// on concurrent workers overlaps, so the column may sum past 100%.
	PctOfWall float64
}

// ScopeProfile aggregates the scope spans sharing one label (one circuit
// node's kernel, or one serve-side request evaluation).
type ScopeProfile struct {
	Scope     string
	Count     int
	Total     time.Duration
	PctOfWall float64
}

// Profile is a flat summary of the retained spans.
type Profile struct {
	// Wall spans the first recorded start to the last recorded end.
	Wall time.Duration
	// ScopeTotal sums the top-level scope spans (nested scopes excluded,
	// so serial kernels sum to ~the executor's wall time).
	ScopeTotal time.Duration
	Ops        []OpProfile   // sorted by Total descending
	Scopes     []ScopeProfile // in first-seen (execution) order
}

// Profile aggregates the tracer's retained spans.
func (t *Tracer) Profile() Profile {
	return ProfileSpans(t.Snapshot())
}

// ProfileSpans aggregates an explicit span slice (e.g. a Snapshot taken
// earlier or filtered by scope).
func ProfileSpans(spans []Span) Profile {
	var p Profile
	if len(spans) == 0 {
		return p
	}
	var first, last time.Duration = spans[0].Start, 0
	byOp := map[string][]time.Duration{}
	scopeIdx := map[string]int{}
	for _, s := range spans {
		if s.Start < first {
			first = s.Start
		}
		if end := s.Start + s.Dur; end > last {
			last = end
		}
		switch s.Kind {
		case KindOp:
			byOp[s.Op] = append(byOp[s.Op], s.Dur)
		case KindScope:
			i, ok := scopeIdx[s.Op]
			if !ok {
				i = len(p.Scopes)
				scopeIdx[s.Op] = i
				p.Scopes = append(p.Scopes, ScopeProfile{Scope: s.Op})
			}
			p.Scopes[i].Count++
			p.Scopes[i].Total += s.Dur
			if s.Scope == "" {
				p.ScopeTotal += s.Dur
			}
		}
	}
	p.Wall = last - first
	for op, durs := range byOp {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		p.Ops = append(p.Ops, OpProfile{
			Op:        op,
			Count:     len(durs),
			Total:     total,
			P50:       Quantile(durs, 0.50),
			P99:       Quantile(durs, 0.99),
			PctOfWall: pct(total, p.Wall),
		})
	}
	sort.Slice(p.Ops, func(i, j int) bool { return p.Ops[i].Total > p.Ops[j].Total })
	for i := range p.Scopes {
		p.Scopes[i].PctOfWall = pct(p.Scopes[i].Total, p.Wall)
	}
	return p
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// RenderProfile formats a profile as the two tables chet-run prints.
func RenderProfile(p Profile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-op profile (wall %v):\n", p.Wall.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  %-10s %8s %12s %12s %12s %7s\n", "op", "count", "total", "p50", "p99", "%wall")
	for _, o := range p.Ops {
		fmt.Fprintf(&sb, "  %-10s %8d %12v %12v %12v %6.1f%%\n",
			o.Op, o.Count, o.Total.Round(time.Microsecond),
			o.P50.Round(time.Microsecond), o.P99.Round(time.Microsecond), o.PctOfWall)
	}
	if len(p.Scopes) > 0 {
		fmt.Fprintf(&sb, "per-kernel profile (scope total %v):\n", p.ScopeTotal.Round(time.Microsecond))
		fmt.Fprintf(&sb, "  %-28s %6s %12s %7s\n", "kernel", "count", "total", "%wall")
		for _, s := range p.Scopes {
			fmt.Fprintf(&sb, "  %-28s %6d %12v %6.1f%%\n",
				s.Scope, s.Count, s.Total.Round(time.Microsecond), s.PctOfWall)
		}
	}
	return sb.String()
}
