package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

// testBackend is one backend the cross-cutting tests run against.
type testBackend struct {
	name       string
	b          hisa.Backend
	canDecrypt bool
}

// fourBackends returns the full backend matrix: the plaintext oracle, the
// CKKS mock, the real RNS-CKKS scheme with keys, and the eval-only RNS
// backend built from transferred public keys (serve's server side).
func fourBackends(t testing.TB) []testBackend {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	rotations := []int{1, 2, 3, params.Slots() - 1}
	rns := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(0xABCDEF),
		Rotations: rotations,
	})
	evalOnly := hisa.NewRNSBackendFromKeys(params, rns.PublicKeys(), ring.NewTestPRNG(0xF00D))
	return []testBackend{
		{"ref", hisa.NewRefBackend(512), true},
		{"sim", hisa.NewSimBackend(hisa.SimParams{LogN: 10, LogQ: 240, Seed: 7, NoNoise: true}), true},
		{"rns", rns, true},
		{"rns-from-keys", evalOnly, false},
	}
}

const testScale = float64(1 << 40)

// driveOps executes a fixed HISA workload through b, covering every traced
// mnemonic plus the non-ops (whole-slot rotation, divisor-1 rescale,
// Copy/Free) that neither Meter nor Tracer may count.
func driveOps(b hisa.Backend, canDecrypt bool) {
	slots := b.Slots()
	v := make([]float64, slots)
	for i := range v {
		v[i] = 0.25 + float64(i%7)/16
	}
	p := b.Encode(v, testScale)
	c := b.Encrypt(p)
	c2 := b.Encrypt(p)

	b.Add(c, c2)
	b.AddPlain(c, p)
	b.AddScalar(c, 0.5)
	b.Sub(c, c2)
	b.SubPlain(c, p)
	b.SubScalar(c, 0.125)
	prod := b.Mul(c, c2)
	b.MulPlain(c, p)
	b.MulScalar(c, 1.5, testScale)

	b.RotLeft(c, 1)
	b.RotLeft(c, slots) // whole-slot: a non-op in both Meter and Tracer
	b.RotRight(c, 1)
	hisa.RotLeftMany(b, c, []int{1, 2, slots}) // slots amount is a non-op

	if d := b.MaxRescale(prod, new(big.Int).Lsh(big.NewInt(1), 41)); d.Cmp(big.NewInt(1)) > 0 {
		b.Rescale(prod, d)
	}
	b.Rescale(c, big.NewInt(1)) // divisor-1: a non-op in both

	b.Free(b.Copy(c)) // metadata-only, never counted
	if canDecrypt {
		b.Decode(b.Decrypt(c))
	}
}

// tallyFromCounts maps Meter's OpCounts onto the Tracer's mnemonic space
// (rotl and rotr both land in Rotations).
func tallyFromCounts(c hisa.OpCounts) map[string]int64 {
	m := map[string]int64{
		"encrypt": int64(c.Encrypt), "decrypt": int64(c.Decrypt),
		"encode": int64(c.Encode), "decode": int64(c.Decode),
		"rot": int64(c.Rotations),
		"add": int64(c.Add), "addplain": int64(c.AddPlain), "addscalar": int64(c.AddScalar),
		"sub": int64(c.Sub), "subplain": int64(c.SubPlain), "subscalar": int64(c.SubScalar),
		"mul": int64(c.Mul), "mulplain": int64(c.MulPlain), "mulscalar": int64(c.MulScalar),
		"rescale": int64(c.Rescale), "maxrescale": int64(c.MaxRescaleQueries),
		"relin": int64(c.Relinearize), "conj": int64(c.Conjugate),
	}
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

// tallyFromTotals folds the Tracer's per-op totals into the same space.
func tallyFromTotals(tot map[string]OpTotal) map[string]int64 {
	m := map[string]int64{}
	for op, v := range tot {
		switch op {
		case "rotl", "rotr":
			m["rot"] += v.Count
		default:
			m[op] += v.Count
		}
	}
	return m
}

// TestMeterTracerComposition wraps each backend both ways — Meter(Tracer(b))
// and Tracer(Meter(b)) — and requires the Meter's op counts and the Tracer's
// span tallies to agree exactly with each other in both orders.
func TestMeterTracerComposition(t *testing.T) {
	for _, tb := range fourBackends(t) {
		for _, order := range []string{"meter-outside", "tracer-outside"} {
			t.Run(tb.name+"/"+order, func(t *testing.T) {
				var outer hisa.Backend
				var meter *hisa.Meter
				var tracer *Tracer
				if order == "meter-outside" {
					tracer = NewTracer(tb.b, Config{})
					meter = hisa.NewMeter(tracer, nil)
					outer = meter
				} else {
					meter = hisa.NewMeter(tb.b, nil)
					tracer = NewTracer(meter, Config{})
					outer = tracer
				}
				driveOps(outer, tb.canDecrypt)

				want := tallyFromCounts(meter.Counts())
				got := tallyFromTotals(tracer.Totals())
				if len(want) == 0 {
					t.Fatal("meter counted nothing; the driver is broken")
				}
				for op, n := range want {
					if got[op] != n {
						t.Errorf("%s: meter counted %d, tracer recorded %d spans", op, n, got[op])
					}
				}
				for op, n := range got {
					if want[op] != n {
						t.Errorf("%s: tracer recorded %d spans, meter counted %d", op, n, want[op])
					}
				}
				var wantSpans int64
				for _, n := range want {
					wantSpans += n
				}
				if tracer.SpanCount() != wantSpans {
					t.Errorf("SpanCount %d, want %d", tracer.SpanCount(), wantSpans)
				}
			})
		}
	}
}

// TestLevelsThroughWrapChain checks the level probe resolves through a Meter
// in the middle of the chain: Tracer(Meter(RNS)) must still record levels.
func TestLevelsThroughWrapChain(t *testing.T) {
	backs := fourBackends(t)
	rns := backs[2]
	tracer := NewTracer(hisa.NewMeter(rns.b, nil), Config{})
	driveOps(tracer, rns.canDecrypt)
	sawLevel := false
	for _, s := range tracer.Snapshot() {
		if s.Kind == KindOp && s.LevelIn >= 0 {
			sawLevel = true
			break
		}
	}
	if !sawLevel {
		t.Error("no span recorded a ciphertext level despite wrapping an RNS backend")
	}
}

// TestTracedExecutionBitExact runs LeNet-tiny's compiled circuit twice on
// the same encrypted input — bare backend and Tracer-wrapped — and requires
// bitwise-identical decrypted outputs on every backend. The tracer observes;
// it must never perturb.
func TestTracedExecutionBitExact(t *testing.T) {
	m := nn.LeNetTiny()
	comp, err := core.Compile(m.Circuit, core.Options{
		Scheme: core.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rns, err := core.BuildBackend(comp, ring.NewTestPRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	backends := []testBackend{
		{"rns", rns, true},
		{"ref", hisa.NewRefBackend(rns.Slots()), true},
		// NoNoise: Sim decryption otherwise samples its noise estimate, which
		// would make even two untraced runs disagree.
		{"sim", hisa.NewSimBackend(hisa.SimParams{
			LogN: comp.Best.LogN, LogQ: int(comp.Best.LogQ), Seed: 5, NoNoise: true,
		}), true},
	}
	img := nn.SyntheticImage(m.InputShape, 23)
	sc := comp.Options.Scales
	policy := comp.Best.Policy
	plan := htc.PlanFor(m.Circuit, policy)
	for _, tb := range backends {
		t.Run(tb.name, func(t *testing.T) {
			enc := htc.EncryptTensor(tb.b, img, plan, sc)
			bare := htc.DecryptTensor(tb.b, htc.Execute(tb.b, m.Circuit, enc, policy, sc))
			tracer := NewTracer(tb.b, Config{})
			traced := htc.DecryptTensor(tb.b, htc.Execute(tracer, m.Circuit, enc, policy, sc))
			if len(bare.Data) != len(traced.Data) {
				t.Fatalf("output sizes differ: %d vs %d", len(bare.Data), len(traced.Data))
			}
			for i := range bare.Data {
				if bare.Data[i] != traced.Data[i] {
					t.Fatalf("element %d: bare %v, traced %v", i, bare.Data[i], traced.Data[i])
				}
			}
			if tracer.SpanCount() == 0 {
				t.Fatal("tracer recorded no spans")
			}
			// The executor opened one scope per non-input circuit node.
			scopes := 0
			for _, s := range tracer.Snapshot() {
				if s.Kind == KindScope {
					scopes++
				}
			}
			if want := len(m.Circuit.Nodes) - 1; scopes != want {
				t.Errorf("recorded %d scope spans, want %d (one per non-input node)", scopes, want)
			}
		})
	}
}

// TestQuantileInterpolation pins the linear-interpolation quantiles on a
// known ladder: 100ms..1000ms in steps of 100.
func TestQuantileInterpolation(t *testing.T) {
	sorted := make([]time.Duration, 10)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * 100 * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 550 * time.Millisecond},
		{0.90, 910 * time.Millisecond},
		{0.99, 991 * time.Millisecond},
		{0, 100 * time.Millisecond},
		{1, 1000 * time.Millisecond},
		{-1, 100 * time.Millisecond},
		{2, 1000 * time.Millisecond},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); got != c.want {
			t.Errorf("Quantile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	if got := Quantile(one, 0.99); got != 42*time.Millisecond {
		t.Errorf("Quantile(single, 0.99) = %v, want 42ms", got)
	}
}

// TestRingWrapAndReset exercises the bounded ring: over-capacity recording
// must retain the newest spans in order, count drops, and Reset must clear.
func TestRingWrapAndReset(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{Capacity: 16})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	for i := 0; i < 40; i++ {
		tr.Add(c, c)
	}
	spans := tr.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	if tr.Dropped() != 25 { // 41 recorded - 16 retained
		t.Errorf("Dropped = %d, want 25", tr.Dropped())
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
	if tr.SpanCount() != 41 {
		t.Errorf("SpanCount = %d, want 41 (totals survive ring wrap)", tr.SpanCount())
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.SpanCount() != 0 || tr.Dropped() != 0 {
		t.Error("Reset left state behind")
	}
}

// TestScopeUnwindAfterPanic checks a scope leaked by a recovered panic is
// discarded when its enclosing scope closes.
func TestScopeUnwindAfterPanic(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)

	endOuter := tr.StartScope("outer")
	func() {
		defer func() { recover() }()
		_ = tr.StartScope("inner") // leaked: close never runs
		panic("kernel died")
	}()
	endOuter()
	tr.Add(c, c)

	spans := tr.Snapshot()
	last := spans[len(spans)-1]
	if last.Op != "add" || last.Scope != "" {
		t.Errorf("op after unwind recorded scope %q, want top level", last.Scope)
	}
}

// TestConcurrentTracing hammers one tracer from many goroutines while
// snapshots, profiles, and totals are read concurrently; run under -race
// (ci.sh gates it) this is the data-race check for the whole package.
func TestConcurrentTracing(t *testing.T) {
	b := hisa.NewRefBackend(64)
	tr := NewTracer(b, Config{Capacity: 256})
	p := b.Encode(make([]float64, 64), testScale)
	c := tr.Encrypt(p)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 4 {
				case 0:
					tr.Add(c, c)
				case 1:
					tr.Mul(c, c)
				case 2:
					tr.RotLeft(c, 1)
				default:
					tr.MulScalar(c, 1.0, testScale)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot()
			tr.Totals()
			tr.Profile()
			tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	// 1600 driven ops + 1 encrypt, plus one relin span per Mul (each worker
	// hits the Mul arm 50 times per 200 iterations).
	if got := tr.SpanCount(); got != 8*200+1+8*50 {
		t.Errorf("SpanCount = %d, want %d", got, 8*200+1+8*50)
	}
}

// TestChromeTraceOutput validates the trace_event JSON end to end: every
// span becomes a complete event, categories split op/kernel, and otherData
// rides along.
func TestChromeTraceOutput(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	end := tr.StartScope("conv2d:conv1")
	tr.Add(c, c)
	tr.RotLeft(c, 3)
	end()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot(), map[string]any{"wallUS": 123}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 { // encode + add + rotl + the scope
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur", e.Name)
		}
		cats[e.Cat]++
	}
	if cats["op"] != 3 || cats["kernel"] != 1 {
		t.Errorf("category split op=%d kernel=%d, want 3/1", cats["op"], cats["kernel"])
	}
	if fmt.Sprint(doc.OtherData["wallUS"]) != "123" {
		t.Errorf("otherData lost: %v", doc.OtherData)
	}
}

// TestProfileAttribution checks the per-op and per-scope rollups: totals
// partition by mnemonic and top-level scopes only feed ScopeTotal.
func TestProfileAttribution(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	endOuter := tr.StartScope("infer")
	endInner := tr.StartScope("conv2d:c1")
	tr.Add(c, c)
	tr.Add(c, c)
	tr.Mul(c, c)
	endInner()
	endOuter()

	prof := tr.Profile()
	byOp := map[string]OpProfile{}
	for _, op := range prof.Ops {
		byOp[op.Op] = op
	}
	if byOp["add"].Count != 2 || byOp["mul"].Count != 1 || byOp["encrypt"].Count != 1 {
		t.Errorf("op counts wrong: %+v", prof.Ops)
	}
	if len(prof.Scopes) != 2 {
		t.Fatalf("got %d scopes, want 2", len(prof.Scopes))
	}
	var topTotal time.Duration
	for _, s := range prof.Scopes {
		if s.Scope == "infer" {
			topTotal = s.Total
		}
	}
	if prof.ScopeTotal != topTotal {
		t.Errorf("ScopeTotal %v should equal the top-level scope's total %v (nested scopes must not double-count)",
			prof.ScopeTotal, topTotal)
	}
}

// TestTraceContextPropagation pins the distributed-tracing contract: ops and
// manual spans recorded under a StartScopeCtx scope inherit its trace ID and
// are parented under the scope's span, nested scopes ride the same context,
// and FilterTrace slices a mixed ring down to one trace.
func TestTraceContextPropagation(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p) // before any scope: no trace context

	const traceID, parent = 0xDEAD, 0x1111
	end, scopeSpan := tr.StartScopeCtx("request", traceID, parent)
	if scopeSpan == 0 {
		t.Fatal("StartScopeCtx returned zero span ID")
	}
	tr.Add(c, c)
	inner := tr.StartScope("conv2d:conv1") // zero ctx: must inherit
	tr.Mul(c, c)
	inner()
	tr.RecordManual(KindOp, "queue-wait", time.Now(), time.Millisecond, 0, 0, 0)
	end()

	spans := tr.Snapshot()
	byOp := map[string]Span{}
	for _, s := range spans {
		byOp[s.Op] = s
	}
	if s := byOp["encrypt"]; s.TraceID != 0 {
		t.Errorf("pre-scope op carries trace ID %#x, want none", s.TraceID)
	}
	if s := byOp["add"]; s.TraceID != traceID || s.Parent != scopeSpan {
		t.Errorf("add span ctx = (%#x, parent %#x), want (%#x, %#x)", s.TraceID, s.Parent, traceID, scopeSpan)
	}
	innerScope := byOp["conv2d:conv1"]
	if innerScope.TraceID != traceID || innerScope.Parent != scopeSpan {
		t.Errorf("nested scope ctx = (%#x, parent %#x), want (%#x, %#x)",
			innerScope.TraceID, innerScope.Parent, traceID, scopeSpan)
	}
	if s := byOp["mul"]; s.TraceID != traceID || s.Parent != innerScope.SpanID {
		t.Errorf("mul span parent = %#x, want nested scope %#x", s.Parent, innerScope.SpanID)
	}
	if s := byOp["queue-wait"]; s.TraceID != traceID || s.Parent != scopeSpan {
		t.Errorf("manual span ctx = (%#x, parent %#x), want inherited (%#x, %#x)",
			s.TraceID, s.Parent, traceID, scopeSpan)
	}
	if s := byOp["request"]; s.TraceID != traceID || s.SpanID != scopeSpan || s.Parent != parent {
		t.Errorf("scope span = (%#x, %#x, parent %#x), want (%#x, %#x, %#x)",
			s.TraceID, s.SpanID, s.Parent, traceID, scopeSpan, parent)
	}

	got := FilterTrace(spans, traceID)
	for _, s := range got {
		if s.TraceID != traceID {
			t.Fatalf("FilterTrace leaked span %q from trace %#x", s.Op, s.TraceID)
		}
	}
	// encrypt (and the relin sub-span's context matches mul's) — everything
	// but the pre-scope encrypt belongs to the trace.
	if len(got) != len(spans)-1 {
		t.Errorf("FilterTrace kept %d of %d spans, want all but the pre-scope encrypt", len(got), len(spans))
	}
	if all := FilterTrace(spans, 0); len(all) != len(spans) {
		t.Errorf("FilterTrace(0) kept %d of %d spans, want all", len(all), len(spans))
	}
}

// TestNewSpanIDUnique checks concurrent span-ID allocation never collides —
// the IDs stitch cross-process traces, so a dup would merge unrelated spans.
func TestNewSpanIDUnique(t *testing.T) {
	const goroutines, per = 8, 1000
	ids := make(chan uint64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- NewSpanID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool, goroutines*per)
	for id := range ids {
		if id == 0 {
			t.Fatal("NewSpanID returned 0 (reserved for absent)")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %#x", id)
		}
		seen[id] = true
	}
}

// TestSpanRingWrap exercises the standalone ring the router records into:
// over-capacity recording keeps the newest spans, counts drops, and
// snapshots in order.
func TestSpanRingWrap(t *testing.T) {
	r := NewSpanRing(4)
	base := r.Epoch()
	for i := 0; i < 10; i++ {
		start := base.Add(time.Duration(i) * time.Millisecond)
		r.Record(KindScope, fmt.Sprintf("relay-%d", i), start, start.Add(time.Millisecond), 7, uint64(i+1), 0)
	}
	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("relay-%d", 6+i); s.Op != want {
			t.Errorf("span %d = %q, want %q (newest retained, in order)", i, s.Op, want)
		}
	}
	if r.SpanCount() != 10 || r.Dropped() != 6 {
		t.Errorf("count/dropped = %d/%d, want 10/6", r.SpanCount(), r.Dropped())
	}
}

// TestChromeTraceMultiProcess validates the merged multi-process export:
// distinct pids with process_name metadata, timestamps rebased to the
// earliest epoch, and tids preserving goroutine attribution.
func TestChromeTraceMultiProcess(t *testing.T) {
	base := time.Unix(1000, 0)
	procs := []ProcessTrace{
		{Name: "chet-router", PID: 1, Epoch: base.Add(time.Second), Spans: []Span{
			{Kind: KindScope, Op: "relay:w0", Start: 0, Dur: 5 * time.Millisecond,
				GID: 11, TraceID: 0xAB, SpanID: 2, Parent: 1},
		}},
		{Name: "worker:127.0.0.1:7001", PID: 2, Epoch: base, Spans: []Span{
			{Kind: KindScope, Op: "request", Start: time.Second, Dur: 4 * time.Millisecond,
				GID: 22, TraceID: 0xAB, SpanID: 3, Parent: 2},
			{Kind: KindOp, Op: "queue-wait", Start: time.Second, Dur: time.Millisecond,
				GID: 22, TraceID: 0xAB, SpanID: 0, Parent: 2, LevelIn: -1, LevelOut: -1},
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceMulti(&buf, procs, map[string]any{"fleet": 2}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[int]string{}
	var spanEvents int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Pid] = fmt.Sprint(e.Args["name"])
			continue
		}
		spanEvents++
		switch e.Name {
		case "relay:w0":
			if e.Pid != 1 || e.Tid != 11 {
				t.Errorf("router span on pid/tid %d/%d, want 1/11", e.Pid, e.Tid)
			}
			// Router epoch is 1s after the worker's, so its t=0 span lands at
			// 1s on the merged timeline.
			if e.Ts != 1e6 {
				t.Errorf("router span ts = %v us, want 1e6 (epoch rebase)", e.Ts)
			}
			if e.Args["trace_id"] != fmt.Sprintf("%016x", 0xAB) {
				t.Errorf("router span args = %v, want trace_id", e.Args)
			}
		case "request":
			if e.Pid != 2 || e.Tid != 22 {
				t.Errorf("worker span on pid/tid %d/%d, want 2/22", e.Pid, e.Tid)
			}
			if e.Ts != 1e6 {
				t.Errorf("worker span ts = %v us, want 1e6 (earliest epoch is base)", e.Ts)
			}
			if e.Args["parent"] != fmt.Sprintf("%016x", 2) {
				t.Errorf("worker request parent args = %v, want router relay span", e.Args)
			}
		}
	}
	if names[1] != "chet-router" || names[2] != "worker:127.0.0.1:7001" {
		t.Errorf("process_name metadata = %v, want both processes labeled", names)
	}
	if spanEvents != 3 {
		t.Errorf("got %d span events, want 3", spanEvents)
	}
	if fmt.Sprint(doc.OtherData["fleet"]) != "2" {
		t.Errorf("otherData lost: %v", doc.OtherData)
	}
}
