package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

// testBackend is one backend the cross-cutting tests run against.
type testBackend struct {
	name       string
	b          hisa.Backend
	canDecrypt bool
}

// fourBackends returns the full backend matrix: the plaintext oracle, the
// CKKS mock, the real RNS-CKKS scheme with keys, and the eval-only RNS
// backend built from transferred public keys (serve's server side).
func fourBackends(t testing.TB) []testBackend {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	rotations := []int{1, 2, 3, params.Slots() - 1}
	rns := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(0xABCDEF),
		Rotations: rotations,
	})
	evalOnly := hisa.NewRNSBackendFromKeys(params, rns.PublicKeys(), ring.NewTestPRNG(0xF00D))
	return []testBackend{
		{"ref", hisa.NewRefBackend(512), true},
		{"sim", hisa.NewSimBackend(hisa.SimParams{LogN: 10, LogQ: 240, Seed: 7, NoNoise: true}), true},
		{"rns", rns, true},
		{"rns-from-keys", evalOnly, false},
	}
}

const testScale = float64(1 << 40)

// driveOps executes a fixed HISA workload through b, covering every traced
// mnemonic plus the non-ops (whole-slot rotation, divisor-1 rescale,
// Copy/Free) that neither Meter nor Tracer may count.
func driveOps(b hisa.Backend, canDecrypt bool) {
	slots := b.Slots()
	v := make([]float64, slots)
	for i := range v {
		v[i] = 0.25 + float64(i%7)/16
	}
	p := b.Encode(v, testScale)
	c := b.Encrypt(p)
	c2 := b.Encrypt(p)

	b.Add(c, c2)
	b.AddPlain(c, p)
	b.AddScalar(c, 0.5)
	b.Sub(c, c2)
	b.SubPlain(c, p)
	b.SubScalar(c, 0.125)
	prod := b.Mul(c, c2)
	b.MulPlain(c, p)
	b.MulScalar(c, 1.5, testScale)

	b.RotLeft(c, 1)
	b.RotLeft(c, slots) // whole-slot: a non-op in both Meter and Tracer
	b.RotRight(c, 1)
	hisa.RotLeftMany(b, c, []int{1, 2, slots}) // slots amount is a non-op

	if d := b.MaxRescale(prod, new(big.Int).Lsh(big.NewInt(1), 41)); d.Cmp(big.NewInt(1)) > 0 {
		b.Rescale(prod, d)
	}
	b.Rescale(c, big.NewInt(1)) // divisor-1: a non-op in both

	b.Free(b.Copy(c)) // metadata-only, never counted
	if canDecrypt {
		b.Decode(b.Decrypt(c))
	}
}

// tallyFromCounts maps Meter's OpCounts onto the Tracer's mnemonic space
// (rotl and rotr both land in Rotations).
func tallyFromCounts(c hisa.OpCounts) map[string]int64 {
	m := map[string]int64{
		"encrypt": int64(c.Encrypt), "decrypt": int64(c.Decrypt),
		"encode": int64(c.Encode), "decode": int64(c.Decode),
		"rot": int64(c.Rotations),
		"add": int64(c.Add), "addplain": int64(c.AddPlain), "addscalar": int64(c.AddScalar),
		"sub": int64(c.Sub), "subplain": int64(c.SubPlain), "subscalar": int64(c.SubScalar),
		"mul": int64(c.Mul), "mulplain": int64(c.MulPlain), "mulscalar": int64(c.MulScalar),
		"rescale": int64(c.Rescale), "maxrescale": int64(c.MaxRescaleQueries),
		"relin": int64(c.Relinearize), "conj": int64(c.Conjugate),
	}
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

// tallyFromTotals folds the Tracer's per-op totals into the same space.
func tallyFromTotals(tot map[string]OpTotal) map[string]int64 {
	m := map[string]int64{}
	for op, v := range tot {
		switch op {
		case "rotl", "rotr":
			m["rot"] += v.Count
		default:
			m[op] += v.Count
		}
	}
	return m
}

// TestMeterTracerComposition wraps each backend both ways — Meter(Tracer(b))
// and Tracer(Meter(b)) — and requires the Meter's op counts and the Tracer's
// span tallies to agree exactly with each other in both orders.
func TestMeterTracerComposition(t *testing.T) {
	for _, tb := range fourBackends(t) {
		for _, order := range []string{"meter-outside", "tracer-outside"} {
			t.Run(tb.name+"/"+order, func(t *testing.T) {
				var outer hisa.Backend
				var meter *hisa.Meter
				var tracer *Tracer
				if order == "meter-outside" {
					tracer = NewTracer(tb.b, Config{})
					meter = hisa.NewMeter(tracer, nil)
					outer = meter
				} else {
					meter = hisa.NewMeter(tb.b, nil)
					tracer = NewTracer(meter, Config{})
					outer = tracer
				}
				driveOps(outer, tb.canDecrypt)

				want := tallyFromCounts(meter.Counts())
				got := tallyFromTotals(tracer.Totals())
				if len(want) == 0 {
					t.Fatal("meter counted nothing; the driver is broken")
				}
				for op, n := range want {
					if got[op] != n {
						t.Errorf("%s: meter counted %d, tracer recorded %d spans", op, n, got[op])
					}
				}
				for op, n := range got {
					if want[op] != n {
						t.Errorf("%s: tracer recorded %d spans, meter counted %d", op, n, want[op])
					}
				}
				var wantSpans int64
				for _, n := range want {
					wantSpans += n
				}
				if tracer.SpanCount() != wantSpans {
					t.Errorf("SpanCount %d, want %d", tracer.SpanCount(), wantSpans)
				}
			})
		}
	}
}

// TestLevelsThroughWrapChain checks the level probe resolves through a Meter
// in the middle of the chain: Tracer(Meter(RNS)) must still record levels.
func TestLevelsThroughWrapChain(t *testing.T) {
	backs := fourBackends(t)
	rns := backs[2]
	tracer := NewTracer(hisa.NewMeter(rns.b, nil), Config{})
	driveOps(tracer, rns.canDecrypt)
	sawLevel := false
	for _, s := range tracer.Snapshot() {
		if s.Kind == KindOp && s.LevelIn >= 0 {
			sawLevel = true
			break
		}
	}
	if !sawLevel {
		t.Error("no span recorded a ciphertext level despite wrapping an RNS backend")
	}
}

// TestTracedExecutionBitExact runs LeNet-tiny's compiled circuit twice on
// the same encrypted input — bare backend and Tracer-wrapped — and requires
// bitwise-identical decrypted outputs on every backend. The tracer observes;
// it must never perturb.
func TestTracedExecutionBitExact(t *testing.T) {
	m := nn.LeNetTiny()
	comp, err := core.Compile(m.Circuit, core.Options{
		Scheme: core.SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rns, err := core.BuildBackend(comp, ring.NewTestPRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	backends := []testBackend{
		{"rns", rns, true},
		{"ref", hisa.NewRefBackend(rns.Slots()), true},
		// NoNoise: Sim decryption otherwise samples its noise estimate, which
		// would make even two untraced runs disagree.
		{"sim", hisa.NewSimBackend(hisa.SimParams{
			LogN: comp.Best.LogN, LogQ: int(comp.Best.LogQ), Seed: 5, NoNoise: true,
		}), true},
	}
	img := nn.SyntheticImage(m.InputShape, 23)
	sc := comp.Options.Scales
	policy := comp.Best.Policy
	plan := htc.PlanFor(m.Circuit, policy)
	for _, tb := range backends {
		t.Run(tb.name, func(t *testing.T) {
			enc := htc.EncryptTensor(tb.b, img, plan, sc)
			bare := htc.DecryptTensor(tb.b, htc.Execute(tb.b, m.Circuit, enc, policy, sc))
			tracer := NewTracer(tb.b, Config{})
			traced := htc.DecryptTensor(tb.b, htc.Execute(tracer, m.Circuit, enc, policy, sc))
			if len(bare.Data) != len(traced.Data) {
				t.Fatalf("output sizes differ: %d vs %d", len(bare.Data), len(traced.Data))
			}
			for i := range bare.Data {
				if bare.Data[i] != traced.Data[i] {
					t.Fatalf("element %d: bare %v, traced %v", i, bare.Data[i], traced.Data[i])
				}
			}
			if tracer.SpanCount() == 0 {
				t.Fatal("tracer recorded no spans")
			}
			// The executor opened one scope per non-input circuit node.
			scopes := 0
			for _, s := range tracer.Snapshot() {
				if s.Kind == KindScope {
					scopes++
				}
			}
			if want := len(m.Circuit.Nodes) - 1; scopes != want {
				t.Errorf("recorded %d scope spans, want %d (one per non-input node)", scopes, want)
			}
		})
	}
}

// TestQuantileInterpolation pins the linear-interpolation quantiles on a
// known ladder: 100ms..1000ms in steps of 100.
func TestQuantileInterpolation(t *testing.T) {
	sorted := make([]time.Duration, 10)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * 100 * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 550 * time.Millisecond},
		{0.90, 910 * time.Millisecond},
		{0.99, 991 * time.Millisecond},
		{0, 100 * time.Millisecond},
		{1, 1000 * time.Millisecond},
		{-1, 100 * time.Millisecond},
		{2, 1000 * time.Millisecond},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); got != c.want {
			t.Errorf("Quantile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	if got := Quantile(one, 0.99); got != 42*time.Millisecond {
		t.Errorf("Quantile(single, 0.99) = %v, want 42ms", got)
	}
}

// TestRingWrapAndReset exercises the bounded ring: over-capacity recording
// must retain the newest spans in order, count drops, and Reset must clear.
func TestRingWrapAndReset(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{Capacity: 16})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	for i := 0; i < 40; i++ {
		tr.Add(c, c)
	}
	spans := tr.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	if tr.Dropped() != 25 { // 41 recorded - 16 retained
		t.Errorf("Dropped = %d, want 25", tr.Dropped())
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
	if tr.SpanCount() != 41 {
		t.Errorf("SpanCount = %d, want 41 (totals survive ring wrap)", tr.SpanCount())
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.SpanCount() != 0 || tr.Dropped() != 0 {
		t.Error("Reset left state behind")
	}
}

// TestScopeUnwindAfterPanic checks a scope leaked by a recovered panic is
// discarded when its enclosing scope closes.
func TestScopeUnwindAfterPanic(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)

	endOuter := tr.StartScope("outer")
	func() {
		defer func() { recover() }()
		_ = tr.StartScope("inner") // leaked: close never runs
		panic("kernel died")
	}()
	endOuter()
	tr.Add(c, c)

	spans := tr.Snapshot()
	last := spans[len(spans)-1]
	if last.Op != "add" || last.Scope != "" {
		t.Errorf("op after unwind recorded scope %q, want top level", last.Scope)
	}
}

// TestConcurrentTracing hammers one tracer from many goroutines while
// snapshots, profiles, and totals are read concurrently; run under -race
// (ci.sh gates it) this is the data-race check for the whole package.
func TestConcurrentTracing(t *testing.T) {
	b := hisa.NewRefBackend(64)
	tr := NewTracer(b, Config{Capacity: 256})
	p := b.Encode(make([]float64, 64), testScale)
	c := tr.Encrypt(p)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 4 {
				case 0:
					tr.Add(c, c)
				case 1:
					tr.Mul(c, c)
				case 2:
					tr.RotLeft(c, 1)
				default:
					tr.MulScalar(c, 1.0, testScale)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot()
			tr.Totals()
			tr.Profile()
			tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	// 1600 driven ops + 1 encrypt, plus one relin span per Mul (each worker
	// hits the Mul arm 50 times per 200 iterations).
	if got := tr.SpanCount(); got != 8*200+1+8*50 {
		t.Errorf("SpanCount = %d, want %d", got, 8*200+1+8*50)
	}
}

// TestChromeTraceOutput validates the trace_event JSON end to end: every
// span becomes a complete event, categories split op/kernel, and otherData
// rides along.
func TestChromeTraceOutput(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	end := tr.StartScope("conv2d:conv1")
	tr.Add(c, c)
	tr.RotLeft(c, 3)
	end()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot(), map[string]any{"wallUS": 123}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 { // encode + add + rotl + the scope
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur", e.Name)
		}
		cats[e.Cat]++
	}
	if cats["op"] != 3 || cats["kernel"] != 1 {
		t.Errorf("category split op=%d kernel=%d, want 3/1", cats["op"], cats["kernel"])
	}
	if fmt.Sprint(doc.OtherData["wallUS"]) != "123" {
		t.Errorf("otherData lost: %v", doc.OtherData)
	}
}

// TestProfileAttribution checks the per-op and per-scope rollups: totals
// partition by mnemonic and top-level scopes only feed ScopeTotal.
func TestProfileAttribution(t *testing.T) {
	b := hisa.NewRefBackend(8)
	tr := NewTracer(b, Config{})
	p := b.Encode(make([]float64, 8), testScale)
	c := tr.Encrypt(p)
	endOuter := tr.StartScope("infer")
	endInner := tr.StartScope("conv2d:c1")
	tr.Add(c, c)
	tr.Add(c, c)
	tr.Mul(c, c)
	endInner()
	endOuter()

	prof := tr.Profile()
	byOp := map[string]OpProfile{}
	for _, op := range prof.Ops {
		byOp[op.Op] = op
	}
	if byOp["add"].Count != 2 || byOp["mul"].Count != 1 || byOp["encrypt"].Count != 1 {
		t.Errorf("op counts wrong: %+v", prof.Ops)
	}
	if len(prof.Scopes) != 2 {
		t.Fatalf("got %d scopes, want 2", len(prof.Scopes))
	}
	var topTotal time.Duration
	for _, s := range prof.Scopes {
		if s.Scope == "infer" {
			topTotal = s.Total
		}
	}
	if prof.ScopeTotal != topTotal {
		t.Errorf("ScopeTotal %v should equal the top-level scope's total %v (nested scopes must not double-count)",
			prof.ScopeTotal, topTotal)
	}
}
