package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Span IDs must be unique across every process participating in one trace —
// a router and its workers allocate them independently and the merged trace
// must not collide. Each process draws a random 40-bit base at startup and
// counts up through the low 24 bits, so collisions require two processes to
// land on the same base.
var (
	spanIDBase uint64
	spanIDCtr  atomic.Uint64
	spanIDOnce sync.Once
)

// NewSpanID allocates a process-unique, cross-process-collision-resistant
// span ID. Never returns 0 (0 means "no span").
func NewSpanID() uint64 {
	spanIDOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			spanIDBase = binary.LittleEndian.Uint64(b[:]) &^ ((1 << 24) - 1)
		}
		if spanIDBase == 0 {
			spanIDBase = 1 << 24
		}
	})
	return spanIDBase + spanIDCtr.Add(1)
}

// SpanRing is a standalone bounded span recorder for processes that have no
// hisa.Backend to wrap — the router records its admission, placement,
// relay, failover, and handoff spans here. Like the Tracer's ring it is
// mutex-guarded, overwrite-on-wrap, and snapshot-in-order.
type SpanRing struct {
	epoch time.Time

	mu      sync.Mutex
	ring    []Span
	next    int
	full    bool
	count   int64
	dropped uint64
}

// NewSpanRing builds a ring holding up to capacity spans (default 1 << 16).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &SpanRing{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// Epoch returns the instant span Start offsets are measured from.
func (r *SpanRing) Epoch() time.Time { return r.epoch }

// Record appends one span. Start/end are wall-clock instants; the ring
// stores the epoch offset so its spans merge with Tracer spans on one
// timeline.
func (r *SpanRing) Record(kind SpanKind, op string, start, end time.Time, traceID, spanID, parent uint64) {
	s := Span{
		Kind:    kind,
		Op:      op,
		Start:   start.Sub(r.epoch),
		Dur:     end.Sub(start),
		LevelIn: -1, LevelOut: -1,
		GID:     goroutineID(),
		TraceID: traceID,
		SpanID:  spanID,
		Parent:  parent,
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
		r.next = (r.next + 1) % len(r.ring)
		r.full = true
		r.dropped++
	}
	r.count++
	r.mu.Unlock()
}

// Snapshot copies the retained spans in chronological order.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.ring...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// SpanCount returns the cumulative number of spans recorded, including any
// the ring has since dropped.
func (r *SpanRing) SpanCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped reports how many spans the ring has overwritten.
func (r *SpanRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// FilterTrace returns the spans matching traceID, or all spans when
// traceID is 0.
func FilterTrace(spans []Span, traceID uint64) []Span {
	if traceID == 0 {
		return spans
	}
	out := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}
