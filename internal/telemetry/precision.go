package telemetry

import (
	"fmt"
	"math"
	"strings"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/tensor"
)

// LayerPrecision records, for one circuit node, how far a backend's
// encrypted execution has drifted from the plaintext Ref oracle running the
// identical homomorphic program — the per-layer observable the paper's
// profile-guided scaling search consumes (§5.5): max/RMS output error plus
// the live fixed-point scale on both executions.
type LayerPrecision struct {
	Node string // "conv2d:conv1"
	// MaxErr/RMSErr compare the decrypted node output against the Ref
	// oracle's, element-wise over the node's logical tensor.
	MaxErr, RMSErr float64
	// Scale and RefScale are the fixed-point scales of the first output
	// ciphertext on the profiled backend and the oracle; ScaleDrift is
	// their log2 difference (0 means the schedules agree exactly).
	Scale, RefScale, ScaleDrift float64
	// Level is the output ciphertext level on the profiled backend
	// (-1 when the backend has no level notion).
	Level int
	// Elems is the number of compared elements.
	Elems int
}

// PrecisionProfile executes the circuit twice — once on b, once on a fresh
// plaintext Ref oracle — and compares every node's decrypted output. The
// backend must hold decryption capability (a session backend, not an
// eval-only one); run it behind a flag, since decrypting every intermediate
// costs a decrypt+decode per ciphertext per layer.
func PrecisionProfile(b hisa.Backend, c *circuit.Circuit, img *tensor.Tensor,
	policy htc.LayoutPolicy, sc htc.Scales, workers int) []LayerPrecision {

	plan := htc.PlanFor(c, policy)
	ref := hisa.NewRefBackend(b.Slots())

	// Pass 1: the profiled backend, collecting each node's output tensor.
	outs := make(map[int]*htc.CipherTensor, len(c.Nodes))
	encB := htc.EncryptTensor(b, img, plan, sc)
	htc.ExecuteOpts(b, c, encB, policy, sc, htc.ExecOptions{
		Workers: workers,
		OnNode:  func(n *circuit.Node, out *htc.CipherTensor) { outs[n.ID] = out },
	})

	var levelOf func(hisa.Ciphertext) int
	if lb, ok := hisa.FindCapability[levelBackend](b); ok {
		levelOf = lb.LevelOf
	}

	// Pass 2: the oracle in lockstep, comparing node by node.
	var rows []LayerPrecision
	encR := htc.EncryptTensor(ref, img, plan, sc)
	htc.ExecuteOpts(ref, c, encR, policy, sc, htc.ExecOptions{
		OnNode: func(n *circuit.Node, refOut *htc.CipherTensor) {
			bOut := outs[n.ID]
			if bOut == nil {
				return
			}
			got := htc.DecryptTensor(b, bOut)
			want := htc.DecryptTensor(ref, refOut)
			row := LayerPrecision{
				Node:     fmt.Sprintf("%v:%s", n.Kind, n.Name),
				Scale:    b.Scale(bOut.CTs[0]),
				RefScale: ref.Scale(refOut.CTs[0]),
				Level:    -1,
				Elems:    len(want.Data),
			}
			if row.Scale > 0 && row.RefScale > 0 {
				row.ScaleDrift = math.Log2(row.Scale) - math.Log2(row.RefScale)
			}
			if levelOf != nil {
				row.Level = levelOf(bOut.CTs[0])
			}
			var sumSq float64
			for i := range want.Data {
				e := math.Abs(got.Data[i] - want.Data[i])
				if e > row.MaxErr {
					row.MaxErr = e
				}
				sumSq += e * e
			}
			if row.Elems > 0 {
				row.RMSErr = math.Sqrt(sumSq / float64(row.Elems))
			}
			rows = append(rows, row)
		},
	})
	return rows
}

// RenderPrecision formats the per-layer table chet-run -profile prints.
func RenderPrecision(rows []LayerPrecision) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-layer precision vs plaintext oracle:\n")
	fmt.Fprintf(&sb, "  %-28s %10s %10s %6s %10s %10s\n",
		"layer", "max|err|", "rms err", "level", "scale", "drift(b)")
	for _, r := range rows {
		lvl := "-"
		if r.Level >= 0 {
			lvl = fmt.Sprintf("%d", r.Level)
		}
		fmt.Fprintf(&sb, "  %-28s %10.2e %10.2e %6s %10.3g %+10.2f\n",
			r.Node, r.MaxErr, r.RMSErr, lvl, r.Scale, r.ScaleDrift)
	}
	return sb.String()
}
