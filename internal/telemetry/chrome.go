package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one complete ("ph":"X") event of the Chrome trace_event
// format; a file of them loads directly in Perfetto / chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event file format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes spans as Chrome trace_event JSON. Op spans land
// on their worker goroutine's track (tid = goroutine id); scope spans keep
// their own goroutine's track, so a node's scope bar encloses the op bars
// of the workers it fanned out to on the shared timeline. otherData carries
// caller-supplied run facts (e.g. inference wall time) for machine checks.
func WriteChromeTrace(w io.Writer, spans []Span, otherData map[string]any) error {
	tr := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Op,
			Cat:  "op",
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  s.GID,
		}
		args := map[string]any{}
		if s.Kind == KindScope {
			ev.Cat = "kernel"
		} else {
			if s.Scope != "" {
				args["scope"] = s.Scope
			}
			if s.Rot != 0 {
				args["rot"] = s.Rot
			}
			if s.LevelIn >= 0 || s.LevelOut >= 0 {
				args["level_in"] = s.LevelIn
				args["level_out"] = s.LevelOut
			}
			if s.ScaleIn != 0 {
				args["scale_in"] = s.ScaleIn
			}
			if s.ScaleOut != 0 {
				args["scale_out"] = s.ScaleOut
			}
		}
		if len(args) > 0 {
			ev.Args = args
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
