package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one event of the Chrome trace_event format; a file of them
// loads directly in Perfetto / chrome://tracing. Complete spans use
// "ph":"X"; process metadata uses "ph":"M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event file format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// ProcessTrace is one process's contribution to a merged multi-process
// trace: a name and pid for the Perfetto track group, the epoch its span
// Start offsets are measured from, and the spans themselves.
type ProcessTrace struct {
	Name string
	// PID labels the process track; each process in a merged trace must use
	// a distinct value or their rows interleave.
	PID int
	// Epoch is the absolute instant the spans' Start offsets measure from
	// (Tracer.Epoch / SpanRing.Epoch). Merged traces are normalized to the
	// earliest epoch so cross-process spans line up on one timeline.
	Epoch time.Time
	Spans []Span
}

// spanEvent converts one span to a complete event. shift is the offset of
// this process's epoch from the merged trace's start.
func spanEvent(s Span, pid int, shift time.Duration) chromeEvent {
	ev := chromeEvent{
		Name: s.Op,
		Cat:  "op",
		Ph:   "X",
		TS:   float64(s.Start+shift) / float64(time.Microsecond),
		Dur:  float64(s.Dur) / float64(time.Microsecond),
		PID:  pid,
		TID:  s.GID,
	}
	args := map[string]any{}
	if s.Kind == KindScope {
		ev.Cat = "kernel"
	} else {
		if s.Scope != "" {
			args["scope"] = s.Scope
		}
		if s.Rot != 0 {
			args["rot"] = s.Rot
		}
		if s.LevelIn >= 0 || s.LevelOut >= 0 {
			args["level_in"] = s.LevelIn
			args["level_out"] = s.LevelOut
		}
		if s.ScaleIn != 0 {
			args["scale_in"] = s.ScaleIn
		}
		if s.ScaleOut != 0 {
			args["scale_out"] = s.ScaleOut
		}
	}
	if s.TraceID != 0 {
		args["trace_id"] = fmt.Sprintf("%016x", s.TraceID)
	}
	if s.SpanID != 0 {
		args["span_id"] = fmt.Sprintf("%016x", s.SpanID)
	}
	if s.Parent != 0 {
		args["parent"] = fmt.Sprintf("%016x", s.Parent)
	}
	if len(args) > 0 {
		ev.Args = args
	}
	return ev
}

// WriteChromeTrace writes one process's spans as Chrome trace_event JSON.
// Op spans land on their worker goroutine's track (tid = goroutine id);
// scope spans keep their own goroutine's track, so a node's scope bar
// encloses the op bars of the workers it fanned out to on the shared
// timeline. otherData carries caller-supplied run facts (e.g. inference
// wall time) for machine checks.
func WriteChromeTrace(w io.Writer, spans []Span, otherData map[string]any) error {
	tr := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	}
	for _, s := range spans {
		tr.TraceEvents = append(tr.TraceEvents, spanEvent(s, 1, 0))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteChromeTraceMulti merges spans from several processes into one Chrome
// trace. Each process gets a distinct pid (its ProcessTrace.PID) and a
// "process_name" metadata event, so Perfetto renders router and workers as
// separate track groups instead of interleaving everything on pid 1; within
// a process, tid remains the recording goroutine. Timestamps are rebased to
// the earliest per-process epoch so spans recorded by different processes
// share one timeline.
func WriteChromeTraceMulti(w io.Writer, procs []ProcessTrace, otherData map[string]any) error {
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       otherData,
	}
	var base time.Time
	for _, p := range procs {
		if p.Epoch.IsZero() {
			continue
		}
		if base.IsZero() || p.Epoch.Before(base) {
			base = p.Epoch
		}
	}
	for _, p := range procs {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  p.PID,
			Args: map[string]any{"name": p.Name},
		})
		var shift time.Duration
		if !base.IsZero() && !p.Epoch.IsZero() {
			shift = p.Epoch.Sub(base)
		}
		for _, s := range p.Spans {
			tr.TraceEvents = append(tr.TraceEvents, spanEvent(s, p.PID, shift))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
