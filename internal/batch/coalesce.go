// Package batch implements a request-coalescing scheduler: items arriving
// for the same key (in serving, the same session — same evaluation keys and
// circuit fingerprint) are held briefly and flushed together, so one
// homomorphic evaluation can amortize across a whole batch of packed
// requests. A queue flushes when it reaches the configured batch size or
// when its oldest item has waited the maximum delay, whichever comes first;
// Close drains every partial batch.
package batch

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by Add after Close.
var ErrClosed = errors.New("batch: coalescer closed")

// Config parameterizes a Coalescer.
type Config struct {
	// MaxBatch flushes a queue as soon as it holds this many items
	// (minimum 1; 1 degenerates to immediate per-item flushes).
	MaxBatch int
	// MaxWait bounds how long the oldest item of a partial batch waits
	// before the queue is flushed anyway. <= 0 flushes every Add
	// immediately (latency-first).
	MaxWait time.Duration
	// WaitFor, when non-nil, supersedes MaxWait: it is consulted at each
	// Add so the flush deadline can track live load — shrink toward zero
	// when requests are already queueing (batches form on their own; added
	// delay is pure latency) and grow back toward the static MaxWait when
	// traffic is sparse. A non-positive return flushes the triggering Add
	// immediately; otherwise the returned wait arms the deadline timer of a
	// queue that does not have one yet. The callback runs with the
	// coalescer's lock held and must not call back into the coalescer.
	WaitFor func() time.Duration
}

// Coalescer groups items by key and delivers them in batches to the flush
// callback. It is safe for concurrent use. The flush callback runs on the
// goroutine that triggered the flush (an Add that filled the batch, the
// deadline timer, or Close) and receives ownership of the batch slice.
type Coalescer[K comparable, T any] struct {
	cfg   Config
	flush func(key K, items []T)

	mu     sync.Mutex
	queues map[K]*queue[T]
	gen    uint64
	closed bool
}

// queue is one key's pending batch. gen distinguishes the queue instance a
// timer was armed for: a flush bumps nothing — it removes the queue — so a
// stale timer firing later finds either no queue or a younger generation and
// does nothing.
type queue[T any] struct {
	items []T
	gen   uint64
	timer *time.Timer
}

// New creates a Coalescer delivering batches to flush.
func New[K comparable, T any](cfg Config, flush func(key K, items []T)) *Coalescer[K, T] {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if flush == nil {
		panic("batch: nil flush callback")
	}
	return &Coalescer[K, T]{cfg: cfg, flush: flush, queues: map[K]*queue[T]{}}
}

// Add enqueues one item. If the item completes a batch (or batching is
// effectively disabled), the flush callback runs synchronously before Add
// returns; otherwise the item waits for more arrivals or the deadline.
func (c *Coalescer[K, T]) Add(key K, item T) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	q, ok := c.queues[key]
	if !ok {
		q = &queue[T]{gen: c.nextGen()}
		c.queues[key] = q
	}
	q.items = append(q.items, item)

	wait := c.cfg.MaxWait
	if c.cfg.WaitFor != nil {
		wait = c.cfg.WaitFor()
	}
	if len(q.items) >= c.cfg.MaxBatch || wait <= 0 {
		items := c.takeLocked(key, q)
		c.mu.Unlock()
		c.flush(key, items)
		return nil
	}
	if q.timer == nil {
		gen := q.gen
		q.timer = time.AfterFunc(wait, func() { c.fire(key, gen) })
	}
	c.mu.Unlock()
	return nil
}

// Pending returns the number of items currently waiting (all keys).
func (c *Coalescer[K, T]) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, q := range c.queues {
		n += len(q.items)
	}
	return n
}

// Close flushes every partial batch and rejects further Adds. It is
// idempotent; flushes run synchronously on the calling goroutine.
func (c *Coalescer[K, T]) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	type pending struct {
		key   K
		items []T
	}
	var drained []pending
	for key, q := range c.queues {
		drained = append(drained, pending{key, c.takeLocked(key, q)})
	}
	c.mu.Unlock()
	for _, p := range drained {
		c.flush(p.key, p.items)
	}
}

// fire is the deadline-timer body: flush the queue the timer was armed for,
// unless that queue has already been flushed (and possibly replaced).
func (c *Coalescer[K, T]) fire(key K, gen uint64) {
	c.mu.Lock()
	q, ok := c.queues[key]
	if !ok || q.gen != gen || c.closed {
		c.mu.Unlock()
		return
	}
	items := c.takeLocked(key, q)
	c.mu.Unlock()
	c.flush(key, items)
}

// takeLocked removes the queue and returns its items; the caller holds mu.
func (c *Coalescer[K, T]) takeLocked(key K, q *queue[T]) []T {
	if q.timer != nil {
		q.timer.Stop()
	}
	delete(c.queues, key)
	return q.items
}

// nextGen issues a process-unique queue generation; the caller holds mu.
func (c *Coalescer[K, T]) nextGen() uint64 {
	c.gen++
	return c.gen
}
