package batch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector records flushed batches thread-safely.
type collector struct {
	mu      sync.Mutex
	batches [][]int
	keys    []string
	done    chan struct{} // closed (once) when total items reach want
	want    int
	got     int
}

func newCollector(want int) *collector {
	return &collector{done: make(chan struct{}), want: want}
}

func (c *collector) flush(key string, items []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches = append(c.batches, items)
	c.keys = append(c.keys, key)
	c.got += len(items)
	if c.got == c.want {
		close(c.done)
	}
}

func (c *collector) wait(t *testing.T) {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %d items (got %d)", c.want, c.got)
	}
}

func TestFlushOnSize(t *testing.T) {
	col := newCollector(8)
	// MaxWait is long enough that only the size trigger can flush.
	c := New[string, int](Config{MaxBatch: 4, MaxWait: time.Hour}, col.flush)
	for i := 0; i < 8; i++ {
		if err := c.Add("s", i); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t)
	if len(col.batches) != 2 || len(col.batches[0]) != 4 || len(col.batches[1]) != 4 {
		t.Fatalf("want two batches of 4, got %v", col.batches)
	}
	// Items arrive in order within and across batches (single producer).
	for i, want := 0, 0; i < len(col.batches); i++ {
		for _, v := range col.batches[i] {
			if v != want {
				t.Fatalf("out-of-order item %d, want %d", v, want)
			}
			want++
		}
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("pending %d after full flushes", n)
	}
}

func TestFlushOnDeadline(t *testing.T) {
	col := newCollector(3)
	c := New[string, int](Config{MaxBatch: 100, MaxWait: 30 * time.Millisecond}, col.flush)
	for i := 0; i < 3; i++ {
		if err := c.Add("s", i); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	col.wait(t)
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("deadline flush took %v", e)
	}
	if len(col.batches) != 1 || len(col.batches[0]) != 3 {
		t.Fatalf("want one partial batch of 3, got %v", col.batches)
	}
}

func TestCloseDrainsPartialBatch(t *testing.T) {
	col := newCollector(5)
	c := New[string, int](Config{MaxBatch: 100, MaxWait: time.Hour}, col.flush)
	for i := 0; i < 3; i++ {
		_ = c.Add("a", i)
	}
	for i := 3; i < 5; i++ {
		_ = c.Add("b", i)
	}
	c.Close()
	col.wait(t)
	if len(col.batches) != 2 {
		t.Fatalf("want two drained batches, got %v", col.batches)
	}
	if err := c.Add("a", 99); err != ErrClosed {
		t.Fatalf("Add after Close: err=%v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

func TestKeysDoNotCoalesceAcross(t *testing.T) {
	col := newCollector(4)
	c := New[string, int](Config{MaxBatch: 2, MaxWait: time.Hour}, col.flush)
	_ = c.Add("a", 1)
	_ = c.Add("b", 2)
	_ = c.Add("a", 3)
	_ = c.Add("b", 4)
	col.wait(t)
	for i, b := range col.batches {
		if len(b) != 2 {
			t.Fatalf("batch %d for key %q has %d items, want 2", i, col.keys[i], len(b))
		}
	}
}

// TestStaleTimerDoesNotDoubleFlush arms a deadline, fills the batch (flush
// removes the queue), then immediately starts a new queue under the same
// key: the old timer must not flush the new queue early.
func TestStaleTimerDoesNotDoubleFlush(t *testing.T) {
	col := newCollector(3)
	c := New[string, int](Config{MaxBatch: 2, MaxWait: 50 * time.Millisecond}, col.flush)
	_ = c.Add("s", 1) // arms timer
	_ = c.Add("s", 2) // size flush; timer stopped/stale
	_ = c.Add("s", 3) // new queue, new generation
	col.wait(t)
	if len(col.batches) != 2 {
		t.Fatalf("want 2 batches, got %v", col.batches)
	}
	if len(col.batches[0]) != 2 || len(col.batches[1]) != 1 {
		t.Fatalf("want [2 1] split, got %v", col.batches)
	}
}

func TestZeroWaitFlushesImmediately(t *testing.T) {
	var flushes atomic.Int64
	c := New[string, int](Config{MaxBatch: 8, MaxWait: 0}, func(string, []int) {
		flushes.Add(1)
	})
	for i := 0; i < 5; i++ {
		_ = c.Add("s", i)
	}
	if flushes.Load() != 5 {
		t.Fatalf("want 5 immediate flushes, got %d", flushes.Load())
	}
}

// TestWaitForOverridesMaxWait drives the dynamic-deadline hook through its
// three regimes: a positive return arms the timer with the returned wait (not
// MaxWait), a non-positive return flushes the triggering Add immediately, and
// the hook is consulted fresh on each Add so a load swing takes effect on the
// very next request.
func TestWaitForOverridesMaxWait(t *testing.T) {
	var wait atomic.Int64
	wait.Store(int64(20 * time.Millisecond))
	col := newCollector(1)
	c := New[string, int](Config{
		MaxBatch: 100,
		MaxWait:  time.Hour, // would never flush if honored
		WaitFor:  func() time.Duration { return time.Duration(wait.Load()) },
	}, col.flush)

	start := time.Now()
	if err := c.Add("s", 1); err != nil {
		t.Fatal(err)
	}
	col.wait(t)
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("dynamic deadline flush took %v; MaxWait was honored over WaitFor", e)
	}

	// Shrink the wait to zero: the next Add must flush synchronously.
	wait.Store(0)
	var flushes atomic.Int64
	c2 := New[string, int](Config{
		MaxBatch: 100,
		MaxWait:  time.Hour,
		WaitFor:  func() time.Duration { return time.Duration(wait.Load()) },
	}, func(string, []int) { flushes.Add(1) })
	_ = c2.Add("s", 1)
	if flushes.Load() != 1 {
		t.Fatalf("zero dynamic wait: want synchronous flush, got %d", flushes.Load())
	}

	// Grow it back: batching resumes (Add leaves the item pending).
	wait.Store(int64(time.Hour))
	_ = c2.Add("s", 2)
	if flushes.Load() != 1 {
		t.Fatalf("grown dynamic wait: unexpected flush")
	}
	if n := c2.Pending(); n != 1 {
		t.Fatalf("pending %d, want 1", n)
	}
	c2.Close()
}

// TestConcurrentStress hammers the coalescer from many producers across
// several keys with a live deadline timer, then closes it mid-traffic. Run
// under -race (ci.sh does); every item must be delivered exactly once.
func TestConcurrentStress(t *testing.T) {
	const producers, perProducer, keys = 8, 200, 3
	total := producers * perProducer

	var mu sync.Mutex
	seen := make(map[int]int)
	delivered := 0
	done := make(chan struct{})
	c := New[int, int](Config{MaxBatch: 4, MaxWait: time.Millisecond}, func(_ int, items []int) {
		mu.Lock()
		defer mu.Unlock()
		for _, v := range items {
			seen[v]++
			delivered++
		}
		if delivered == total {
			close(done)
		}
	})

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				if err := c.Add(v%keys, v); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	c.Close() // drains whatever the timers haven't flushed yet
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("delivered %d of %d items", delivered, total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d delivered %d times", v, n)
		}
	}
}
