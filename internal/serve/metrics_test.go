package serve

import (
	"sync"
	"testing"
	"time"
)

// TestLatencySummaryInterpolatedQuantiles pins the recorder's quantiles on
// a known ladder: with samples 100ms..1000ms, nearest-rank would report
// P90=1000ms and P99=1000ms; linear interpolation must land between ranks.
func TestLatencySummaryInterpolatedQuantiles(t *testing.T) {
	l := newLatencyRecorder()
	// Record in a scrambled order: summary() sorts.
	for _, i := range []int{7, 2, 10, 1, 9, 4, 6, 3, 8, 5} {
		l.record(time.Duration(i) * 100 * time.Millisecond)
	}
	s := l.summary()
	if s.Count != 10 {
		t.Fatalf("Count = %d, want 10", s.Count)
	}
	if want := 5500 * time.Millisecond; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if want := 550 * time.Millisecond; s.P50 != want {
		t.Errorf("P50 = %v, want %v", s.P50, want)
	}
	if want := 910 * time.Millisecond; s.P90 != want {
		t.Errorf("P90 = %v, want %v", s.P90, want)
	}
	if want := 991 * time.Millisecond; s.P99 != want {
		t.Errorf("P99 = %v, want %v", s.P99, want)
	}
}

// TestLatencySummaryEmptyAndSingle covers the window edge cases.
func TestLatencySummaryEmptyAndSingle(t *testing.T) {
	l := newLatencyRecorder()
	if s := l.summary(); s.Count != 0 || s.P50 != 0 || s.Sum != 0 {
		t.Errorf("empty recorder summary = %+v, want zeros", s)
	}
	l.record(42 * time.Millisecond)
	s := l.summary()
	if s.P50 != 42*time.Millisecond || s.P99 != 42*time.Millisecond {
		t.Errorf("single-sample quantiles = %+v, want 42ms across", s)
	}
}

// TestLatencyWindowBounds checks the ring keeps only the newest
// latencyWindow samples while Count and Sum track everything ever recorded.
func TestLatencyWindowBounds(t *testing.T) {
	l := newLatencyRecorder()
	for i := 0; i < latencyWindow+100; i++ {
		l.record(time.Millisecond)
	}
	s := l.summary()
	if s.Count != latencyWindow+100 {
		t.Errorf("Count = %d, want %d", s.Count, latencyWindow+100)
	}
	if want := time.Duration(latencyWindow+100) * time.Millisecond; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if len(l.ring) != latencyWindow {
		t.Errorf("ring grew to %d, want %d", len(l.ring), latencyWindow)
	}
}

// TestLatencyQuantilesAfterWraparound pins quantile behavior across a ring
// wrap: once the window overwrites, quantiles must reflect the retained mix
// of old and new samples, and a full overwrite must forget the old regime
// entirely.
func TestLatencyQuantilesAfterWraparound(t *testing.T) {
	l := newLatencyRecorder()
	// Fill the window with 1ms, then half a window of 1s: the ring now holds
	// exactly half of each regime. P50 interpolates across the boundary
	// (midpoint of 1ms and 1s); P90 sits firmly in the new regime.
	for i := 0; i < latencyWindow; i++ {
		l.record(time.Millisecond)
	}
	for i := 0; i < latencyWindow/2; i++ {
		l.record(time.Second)
	}
	s := l.summary()
	if want := (time.Millisecond + time.Second) / 2; s.P50 != want {
		t.Errorf("half-wrapped P50 = %v, want %v (interpolated across regimes)", s.P50, want)
	}
	if s.P90 != time.Second {
		t.Errorf("half-wrapped P90 = %v, want 1s", s.P90)
	}
	// Finish the overwrite: the old regime must vanish from every quantile.
	for i := 0; i < latencyWindow/2; i++ {
		l.record(time.Second)
	}
	s = l.summary()
	if s.P50 != time.Second || s.P99 != time.Second {
		t.Errorf("fully-wrapped quantiles = P50 %v / P99 %v, want 1s across", s.P50, s.P99)
	}
	if want := uint64(2 * latencyWindow); s.Count != want {
		t.Errorf("Count = %d, want %d (lifetime, not window)", s.Count, want)
	}
}

// newMetricsTestServer builds the minimal Server state Metrics() touches,
// without a compiled circuit.
func newMetricsTestServer() *Server {
	return &Server{
		reg:         newRegistry(4),
		latency:     newLatencyRecorder(),
		queueWait:   newLatencyRecorder(),
		evalLatency: newLatencyRecorder(),
		batchSizes:  map[int]uint64{},
		fleet:       newFleetStore(),
	}
}

// TestBatchSizesSnapshotIsDeepCopy checks Metrics() hands out an
// independent map: mutating the snapshot must not corrupt server state.
func TestBatchSizesSnapshotIsDeepCopy(t *testing.T) {
	s := newMetricsTestServer()
	s.batchMu.Lock()
	s.batchSizes[4] = 7
	s.batchMu.Unlock()

	m := s.Metrics()
	m.BatchSizes[4] = 999
	m.BatchSizes[16] = 1

	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batchSizes[4] != 7 {
		t.Errorf("mutating the snapshot changed server state: batchSizes[4] = %d, want 7", s.batchSizes[4])
	}
	if _, ok := s.batchSizes[16]; ok {
		t.Error("mutating the snapshot inserted a key into server state")
	}
}

// TestMetricsSnapshotConcurrentWithMutation hammers Metrics() while the
// batch tallies and latency recorders mutate; run under -race (ci.sh gates
// it) this is the data-race check for the metrics surface.
func TestMetricsSnapshotConcurrentWithMutation(t *testing.T) {
	s := newMetricsTestServer()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.batchMu.Lock()
				s.batchSizes[1+i%8]++
				s.batchMu.Unlock()
				s.latency.record(time.Duration(i) * time.Microsecond)
				s.requests.Add(1)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		m := s.Metrics()
		// Read and mutate the snapshot: both must be safe mid-flight.
		for k := range m.BatchSizes {
			m.BatchSizes[k]++
		}
		_ = m.Latency.P99
	}
	close(stop)
	wg.Wait()
}
