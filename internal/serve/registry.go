package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"chet/internal/hisa"
	"chet/internal/telemetry"
)

// session is one client's cached evaluation context: the eval-only backend
// built from the keys uploaded at session-open (wrapped in an atomic Meter
// for op counts, and — with Config.Trace — a telemetry.Tracer under it)
// plus per-session metrics. Keys are uploaded once and reused across every
// request the session makes.
type session struct {
	id      uint64
	backend hisa.Backend // the top of the wrap chain, as the kernels see it
	meter   *hisa.Meter
	// tracer records per-op spans when Config.Trace is set; nil otherwise.
	tracer *telemetry.Tracer
	// refresher realizes the compiler's bootstrap placements when the served
	// circuit has a BootPlan; nil otherwise. Its atomic tally feeds the
	// per-session refresh counters in /metrics and the health acks.
	refresher *hisa.Refresher

	requests atomic.Uint64
	errors   atomic.Uint64
	latency  *latencyRecorder
}

func (s *session) metrics() SessionMetrics {
	m := SessionMetrics{
		ID:       s.id,
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Ops:      s.meter.Counts(),
		Latency:  s.latency.summary(),
	}
	if s.refresher != nil {
		m.Bootstraps = uint64(s.refresher.Bootstraps())
		if h, ok := s.refresher.MinHeadroom(); ok {
			m.MinHeadroom, m.HeadroomKnown = int64(h), true
		}
	}
	return m
}

// registry caches sessions with LRU eviction under a fixed cap. Eval keys
// are the expensive upload (hundreds of kilobytes to hundreds of megabytes),
// so the registry is exactly a key cache: hitting it skips the re-upload;
// an evicted client re-opens and pays the transfer again.
type registry struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *session
	byID    map[uint64]*list.Element
	nextID  uint64
	opened  uint64
	evicted uint64
}

func newRegistry(cap int) *registry {
	return &registry{cap: cap, ll: list.New(), byID: make(map[uint64]*list.Element)}
}

// add registers a new session, assigning its ID and evicting the least
// recently used session beyond the cap.
func (r *registry) add(s *session) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.opened++
	s.id = r.nextID
	r.byID[s.id] = r.ll.PushFront(s)
	for r.ll.Len() > r.cap {
		last := r.ll.Back()
		victim := last.Value.(*session)
		r.ll.Remove(last)
		delete(r.byID, victim.id)
		r.evicted++
	}
	return s.id
}

// get returns the session and marks it most recently used. In-flight
// requests hold their own *session, so eviction never invalidates work
// already admitted — it only forces the client's next request to re-open.
func (r *registry) get(id uint64) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	r.ll.MoveToFront(el)
	return el.Value.(*session), true
}

func (r *registry) stats() (opened, evicted uint64, active int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opened, r.evicted, r.ll.Len()
}

// sessions snapshots the live sessions, most recently used first.
func (r *registry) sessions() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, r.ll.Len())
	for el := r.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*session))
	}
	return out
}
