package serve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"chet/internal/ring"
	"chet/internal/wire"
)

// TestDialRedialsThroughFlakyListener exercises the reconnect policy against
// a listener that slams the first connections shut before the handshake can
// complete — the transient-failure mode of a worker mid-restart. The client
// must retry through the flaky phase and land a working session.
func TestDialRedialsThroughFlakyListener(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Flaky phase: accept and immediately close two connections, then hand
	// the listener to the real server. The client dials sequentially, so its
	// first two attempts deterministically hit the flaky phase.
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
		s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	cli, err := Dial(ln.Addr().String(), ClientConfig{
		Compiled: comp,
		PRNG:     ring.NewTestPRNG(42),
		Redial:   RedialPolicy{Attempts: 5, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dial through flaky listener: %v", err)
	}
	defer cli.Close()

	img := randTensor([]int{1, 5, 5}, 1, 7)
	if _, err := cli.Infer(cli.Encrypt(img)); err != nil {
		t.Fatalf("infer after flaky dial: %v", err)
	}
}

// TestInferRedialsAfterConnCut cuts the established connection out from
// under a client mid-stream: the next Infer must reconnect, re-open the
// session (replaying the keys), and succeed. The same cut without a policy
// must surface the transport error — redial is strictly opt-in.
func TestInferRedialsAfterConnCut(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	cli, err := Dial(addr, ClientConfig{
		Compiled: comp,
		PRNG:     ring.NewTestPRNG(43),
		Redial:   RedialPolicy{Attempts: 3, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	img := randTensor([]int{1, 5, 5}, 1, 8)
	enc := cli.Encrypt(img)
	if _, err := cli.Infer(enc); err != nil {
		t.Fatalf("warm-up infer: %v", err)
	}

	cli.mu.Lock()
	cli.conn.Close()
	cli.mu.Unlock()
	if _, err := cli.Infer(enc); err != nil {
		t.Fatalf("infer after connection cut: %v", err)
	}

	// Without a policy, the identical cut is fatal (pre-fleet behavior).
	bare, err := Dial(addr, ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(44)})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	enc2 := bare.Encrypt(img)
	if _, err := bare.Infer(enc2); err != nil {
		t.Fatalf("bare warm-up infer: %v", err)
	}
	bare.mu.Lock()
	bare.conn.Close()
	bare.mu.Unlock()
	if _, err := bare.Infer(enc2); err == nil {
		t.Fatal("bare client survived a cut connection; redial must be opt-in")
	}
}

// TestRedialNeverRetriesErrorFrames proves a server-sent error frame is
// permanent under the policy: a fingerprint-mismatched handshake fails
// immediately instead of burning the retry budget against a healthy server.
func TestRedialNeverRetriesErrorFrames(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	other := testBatchCompiled(t) // same model, different options => different fingerprint
	start := time.Now()
	_, err = Dial(addr, ClientConfig{
		Compiled: other,
		PRNG:     ring.NewTestPRNG(45),
		Redial:   RedialPolicy{Attempts: 8, Backoff: 200 * time.Millisecond},
	})
	var ef *wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeFingerprintMismatch {
		t.Fatalf("want a fingerprint-mismatch error frame, got %v", err)
	}
	// Eight attempts at doubling 200ms backoff would take tens of seconds;
	// a permanent failure must return without sleeping through them.
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("error frame burned the retry budget (%v elapsed)", e)
	}
}
