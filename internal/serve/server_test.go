package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"chet"
	"chet/internal/circuit"
	"chet/internal/core"
	"chet/internal/ring"
	"chet/internal/tensor"
	"chet/internal/wire"
)

func randTensor(shape []int, bound float64, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

var (
	compileOnce sync.Once
	compiled    *core.Compiled
	compileErr  error
)

// testCompiled compiles one small CNN shared by every test in this package:
// compilation and the per-client key generation dominate test wall-clock,
// so the circuit is kept tiny and the security check disabled.
func testCompiled(t *testing.T) *core.Compiled {
	t.Helper()
	compileOnce.Do(func() {
		b := circuit.NewBuilder("serve-test-cnn")
		x := b.Input(1, 5, 5)
		x = b.Conv2D(x, randTensor([]int{2, 1, 3, 3}, 0.4, 1), randTensor([]int{2}, 0.2, 2), 1, 0, "conv1")
		x = b.Activation(x, 0.1, 0.9, "act1")
		x = b.Flatten(x, "flat")
		x = b.Dense(x, randTensor([]int{3, 18}, 0.4, 3), randTensor([]int{3}, 0.2, 4), "fc")
		compiled, compileErr = core.Compile(b.Build(x), core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      5,
			MaxLogN:      9,
		})
	})
	if compileErr != nil {
		t.Fatalf("compiling test circuit: %v", compileErr)
	}
	return compiled
}

// startServer runs a Server on a loopback listener and tears it down with
// the test.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func dialClient(t *testing.T, addr string, comp *core.Compiled, seed uint64) *Client {
	t.Helper()
	c, err := Dial(addr, ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(seed)})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func errCode(t *testing.T, err error) wire.ErrorCode {
	t.Helper()
	var ef *wire.ErrorFrame
	if !errors.As(err, &ef) {
		t.Fatalf("expected a wire.ErrorFrame, got %v", err)
	}
	return ef.Code
}

// TestServeE2EBitIdentical is the acceptance test: several concurrent client
// sessions, each verifying that the server's encrypted prediction decrypts
// bit-identically to the same circuit run locally through chet.Session on
// the client's own backend (same keys, same input ciphertext — homomorphic
// evaluation is deterministic, so equality is exact, not approximate).
func TestServeE2EBitIdentical(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp, Workers: 2, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	const clients = 3
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(uint64(100 + i))})
			if err != nil {
				t.Errorf("client %d: dial: %v", i, err)
				return
			}
			defer c.Close()
			local := &chet.Session{Compiled: comp, Backend: c.backend}
			for req := 0; req < 2; req++ {
				img := randTensor([]int{1, 5, 5}, 1, int64(10*i+req))
				enc := c.Encrypt(img)
				want := local.Decrypt(local.Infer(enc))
				out, err := c.Infer(enc)
				if err != nil {
					t.Errorf("client %d req %d: %v", i, req, err)
					return
				}
				got := c.Decrypt(out)
				if len(got.Data) != len(want.Data) {
					t.Errorf("client %d req %d: got %d outputs, want %d", i, req, len(got.Data), len(want.Data))
					return
				}
				for k := range got.Data {
					if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
						t.Errorf("client %d req %d output %d: server %v != local %v (not bit-identical)",
							i, req, k, got.Data[k], want.Data[k])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	m := s.Metrics()
	if m.SessionsOpened != clients || m.Completed != 2*clients {
		t.Fatalf("metrics: opened %d completed %d, want %d/%d", m.SessionsOpened, m.Completed, clients, 2*clients)
	}
	if m.Latency.Count != 2*clients || m.Latency.P50 <= 0 {
		t.Fatalf("latency summary not recorded: %+v", m.Latency)
	}
	for _, sm := range m.Sessions {
		if sm.Requests != 2 || sm.Ops.Total() == 0 {
			t.Fatalf("session %d metrics: %+v", sm.ID, sm)
		}
	}
}

// TestSessionEvictionUnderCap holds the registry at one session: a second
// client evicts the first, whose next request transparently re-opens.
func TestSessionEvictionUnderCap(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	a := dialClient(t, addr, comp, 201)
	b := dialClient(t, addr, comp, 202)
	img := randTensor([]int{1, 5, 5}, 1, 9)

	if _, err := b.Infer(b.Encrypt(img)); err != nil {
		t.Fatalf("fresh session: %v", err)
	}
	// a's session was evicted when b opened; Infer must recover via one
	// transparent re-open (which in turn evicts b).
	if _, err := a.Infer(a.Encrypt(img)); err != nil {
		t.Fatalf("evicted session did not recover: %v", err)
	}
	m := s.Metrics()
	if m.SessionsOpened != 3 || m.SessionsEvicted != 2 || m.SessionsActive != 1 {
		t.Fatalf("opened/evicted/active = %d/%d/%d, want 3/2/1", m.SessionsOpened, m.SessionsEvicted, m.SessionsActive)
	}
}

// TestUnknownSessionErrorFrame drives the wire directly: an infer for a
// session ID that was never opened earns an error frame, not a dead server.
func TestUnknownSessionErrorFrame(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr, comp, 203)
	enc := c.Encrypt(randTensor([]int{1, 5, 5}, 1, 9))

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload, err := (&wire.InferRequest{SessionID: 777, RequestID: 1, Tensor: enc}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgInferRequest, payload); err != nil {
		t.Fatal(err)
	}
	tp, resp, err := wire.ReadFrame(conn, wire.DefaultMaxFrame)
	if err != nil || tp != wire.MsgError {
		t.Fatalf("expected error frame, got type %v err %v", tp, err)
	}
	var ef wire.ErrorFrame
	if err := ef.Decode(resp); err != nil {
		t.Fatal(err)
	}
	if ef.Code != wire.CodeUnknownSession {
		t.Fatalf("code = %v, want %v", ef.Code, wire.CodeUnknownSession)
	}
}

// TestFingerprintMismatch rejects a client whose compile disagrees.
func TestFingerprintMismatch(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fp := comp.Fingerprint()
	fp[0] ^= 0xFF
	c := dialClient(t, addr, comp, 204) // donor for valid key material
	payload, err := (&wire.SessionOpen{
		Fingerprint: fp, Rotations: c.keys.Rotations,
		PK: c.keys.PK, RLK: c.keys.RLK, RTKS: c.keys.RTKS,
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgSessionOpen, payload); err != nil {
		t.Fatal(err)
	}
	tp, resp, err := wire.ReadFrame(conn, wire.DefaultMaxFrame)
	if err != nil || tp != wire.MsgError {
		t.Fatalf("expected error frame, got type %v err %v", tp, err)
	}
	var ef wire.ErrorFrame
	if err := ef.Decode(resp); err != nil {
		t.Fatal(err)
	}
	if ef.Code != wire.CodeFingerprintMismatch {
		t.Fatalf("code = %v, want %v", ef.Code, wire.CodeFingerprintMismatch)
	}
}

// TestQueueFullRejection saturates a depth-1 queue behind a blocked
// executor and expects immediate backpressure, then completion of the
// admitted work once the executor resumes.
func TestQueueFullRejection(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp, QueueDepth: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.execHook = func() {
		started <- struct{}{}
		<-release
	}
	addr := startServer(t, s)

	c1 := dialClient(t, addr, comp, 211)
	c2 := dialClient(t, addr, comp, 212)
	c3 := dialClient(t, addr, comp, 213)
	img := randTensor([]int{1, 5, 5}, 1, 9)

	type result struct {
		err error
	}
	res1, res2 := make(chan result, 1), make(chan result, 1)
	go func() { _, err := c1.Infer(c1.Encrypt(img)); res1 <- result{err} }()
	<-started // c1's job occupies the executor
	go func() { _, err := c2.Infer(c2.Encrypt(img)); res2 <- result{err} }()
	for i := 0; s.requests.Load() < 2; i++ { // c2's job sits in the queue
		if i > 5000 {
			t.Fatal("second request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = c3.Infer(c3.Encrypt(img))
	if code := errCode(t, err); code != wire.CodeQueueFull {
		t.Fatalf("code = %v, want %v", code, wire.CodeQueueFull)
	}

	close(release)
	if r := <-res1; r.err != nil {
		t.Fatalf("admitted request 1 failed: %v", r.err)
	}
	if r := <-res2; r.err != nil {
		t.Fatalf("admitted request 2 failed: %v", r.err)
	}
	if m := s.Metrics(); m.RejectedQueueFull != 1 || m.Completed != 2 {
		t.Fatalf("rejected/completed = %d/%d, want 1/2", m.RejectedQueueFull, m.Completed)
	}
}

// TestDeadlineExpiry exercises both deadline checkpoints: a request whose
// evaluation overruns its deadline, and a request that expires while queued
// behind it.
func TestDeadlineExpiry(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp, QueueDepth: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var once sync.Once
	s.execHook = func() {
		// Only the first evaluation stalls; anything after runs free.
		once.Do(func() { <-gate })
	}
	addr := startServer(t, s)

	slow := dialClient(t, addr, comp, 221)
	slow.cfg.Timeout = 100 * time.Millisecond
	queued := dialClient(t, addr, comp, 222)
	queued.cfg.Timeout = 100 * time.Millisecond
	img := randTensor([]int{1, 5, 5}, 1, 9)

	type result struct {
		err error
	}
	resSlow, resQueued := make(chan result, 1), make(chan result, 1)
	go func() { _, err := slow.Infer(slow.Encrypt(img)); resSlow <- result{err} }()
	for i := 0; s.requests.Load() < 1; i++ {
		if i > 5000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	go func() { _, err := queued.Infer(queued.Encrypt(img)); resQueued <- result{err} }()

	time.Sleep(150 * time.Millisecond) // both deadlines pass
	close(gate)

	if code := errCode(t, (<-resSlow).err); code != wire.CodeDeadlineExceeded {
		t.Fatalf("overrunning request: code = %v, want %v", code, wire.CodeDeadlineExceeded)
	}
	if code := errCode(t, (<-resQueued).err); code != wire.CodeDeadlineExceeded {
		t.Fatalf("queued request: code = %v, want %v", code, wire.CodeDeadlineExceeded)
	}
	if m := s.Metrics(); m.RejectedDeadline != 2 {
		t.Fatalf("RejectedDeadline = %d, want 2", m.RejectedDeadline)
	}
}

// TestGracefulShutdownDrain starts an inference, begins Shutdown while it
// is executing, and checks that (1) requests arriving during the drain get
// shutting-down error frames, (2) the in-flight inference completes and its
// response is delivered, (3) Shutdown returns cleanly.
func TestGracefulShutdownDrain(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	s.execHook = func() {
		once.Do(func() {
			started <- struct{}{}
			<-release
		})
	}
	addr := startServer(t, s)

	inflight := dialClient(t, addr, comp, 231)
	late := dialClient(t, addr, comp, 232)
	img := randTensor([]int{1, 5, 5}, 1, 9)

	type result struct {
		err error
	}
	res := make(chan result, 1)
	go func() { _, err := inflight.Infer(inflight.Encrypt(img)); res <- result{err} }()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for i := 0; !s.draining.Load(); i++ {
		if i > 5000 {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// A request during the drain is refused, not queued.
	_, err = late.Infer(late.Encrypt(img))
	if code := errCode(t, err); code != wire.CodeShuttingDown {
		t.Fatalf("drain-time request: code = %v, want %v", code, wire.CodeShuttingDown)
	}

	close(release)
	if r := <-res; r.err != nil {
		t.Fatalf("in-flight request lost during graceful shutdown: %v", r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if m := s.Metrics(); m.Completed != 1 || m.RejectedShutdown < 1 {
		t.Fatalf("completed/rejectedShutdown = %d/%d, want 1/>=1", m.Completed, m.RejectedShutdown)
	}
}

// TestMalformedFramesDoNotCrash throws junk at a live server and checks it
// answers with error frames (or drops the connection) and keeps serving.
func TestMalformedFramesDoNotCrash(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	for _, junk := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0xF1, 0x5E, 0xE7, 0xC4, 99, 1, 0, 0, 0, 0, 0, 0},                 // bad version
		{0xF1, 0x5E, 0xE7, 0xC4, 1, 3, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},     // absurd length
		{0xF1, 0x5E, 0xE7, 0xC4, 1, 3, 0, 0, 4, 0, 0, 0, 1, 2, 3, 4},     // garbage infer payload
		{0xF1, 0x5E, 0xE7, 0xC4, 1, 1, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0}, // truncated open payload
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(junk)
		// Whether the server answers with an error frame or just hangs up,
		// the connection must terminate promptly.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			if _, _, err := wire.ReadFrame(conn, wire.DefaultMaxFrame); err != nil {
				break
			}
		}
		conn.Close()
	}

	// The server is still healthy: a real client round-trips.
	c := dialClient(t, addr, comp, 241)
	if _, err := c.Infer(c.Encrypt(randTensor([]int{1, 5, 5}, 1, 9))); err != nil {
		t.Fatalf("server unhealthy after junk: %v", err)
	}
}

// TestBadTensorRejected sends a structurally valid request whose tensor
// metadata lies about its ciphertext count.
func TestBadTensorRejected(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr, comp, 251)

	enc := c.Encrypt(randTensor([]int{1, 5, 5}, 1, 9))
	bad := *enc
	bad.W = bad.W * 1024 // origin stays fine; extent overflows the slot count
	_, err = c.Infer(&bad)
	if code := errCode(t, err); code != wire.CodeBadMessage {
		t.Fatalf("code = %v, want %v", code, wire.CodeBadMessage)
	}
}

// TestNewRejectsMockScheme: the HEAAN mock has no transferable keys, so a
// server (or client) over it must be refused at construction.
func TestNewRejectsMockScheme(t *testing.T) {
	b := circuit.NewBuilder("mock")
	x := b.Input(1, 4, 4)
	x = b.Flatten(x, "flat")
	x = b.Dense(x, randTensor([]int{2, 16}, 0.4, 1), nil, "fc")
	comp, err := core.Compile(b.Build(x), core.Options{
		Scheme:       core.SchemeCKKS,
		SecurityBits: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Compiled: comp}); err == nil {
		t.Fatal("New accepted the mock scheme")
	}
	if _, err := NewClient(nil, ClientConfig{Compiled: comp}); err == nil {
		t.Fatal("NewClient accepted the mock scheme")
	}
}

