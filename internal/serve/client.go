package serve

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
	"chet/internal/telemetry"
	"chet/internal/tensor"
	"chet/internal/wire"
)

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Compiled is the client-side compile of the same model with the same
	// options as the server; the session-open handshake enforces agreement
	// via the circuit fingerprint. Required; must target core.SchemeRNS.
	Compiled *core.Compiled
	// PRNG seeds key generation and encryption. Nil selects crypto/rand.
	PRNG ring.PRNG
	// Timeout is the per-request deadline sent with every inference.
	// Zero defers to the server's default.
	Timeout time.Duration
	// MaxFrame bounds accepted response frames. Default wire.DefaultMaxFrame.
	MaxFrame int
	// Redial bounds reconnect-with-backoff on transient transport failures
	// (refused dials, connections cut mid-request). The zero value disables
	// reconnection: transport errors surface immediately, the pre-fleet
	// behavior. Only clients created with Dial can redial (they know the
	// address); wire-level error frames are never retried — the server
	// answered, so the transport is fine and the failure is real.
	Redial RedialPolicy
	// TraceBase, when nonzero, overrides the random per-stream trace-ID
	// prefix: request n is sent with trace ID TraceBase+n. Benches and tests
	// use it to know a request's trace ID before sending, so they can pull
	// the exact trace back out of the fleet afterwards.
	TraceBase uint64
}

// RedialPolicy bounds a client's reconnect behavior.
type RedialPolicy struct {
	// Attempts is the maximum number of reconnects tried per operation
	// before the transport error is surfaced. Zero disables redialing.
	Attempts int
	// Backoff is the delay before the first reconnect; it doubles after
	// each failed attempt. Zero retries immediately.
	Backoff time.Duration
}

// Client is the trusting side of the deployment model: it holds the secret
// key, encrypts inputs, ships public evaluation keys plus ciphertexts to an
// untrusted server, and decrypts the encrypted predictions that come back.
// Methods are safe for concurrent use; requests on one client serialize
// over its single connection (open more clients for parallel streams).
type Client struct {
	cfg     ClientConfig
	backend *hisa.RNSBackend
	keys    hisa.RNSPublicKeys
	plan    htc.Plan
	addr    string // set by Dial; empty for NewClient-wrapped connections

	// traceBase is this stream's random trace-ID prefix: request n is sent
	// with trace ID traceBase+n, so server-side span scopes and dispatch
	// logs correlate to a specific client stream without coordination.
	traceBase uint64

	mu        sync.Mutex
	conn      net.Conn
	sessionID uint64
	nextReq   uint64
}

// newTraceBase draws a random 64-bit stream prefix with the low 20 bits
// cleared, leaving a million request IDs before two streams could collide.
func newTraceBase() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0 // trace IDs degrade to the bare request counter
	}
	return binary.LittleEndian.Uint64(b[:]) &^ ((1 << 20) - 1)
}

// Dial connects to addr and opens a session (uploading the evaluation keys).
// With a RedialPolicy configured, transient dial and handshake failures are
// retried with exponential backoff; a server-sent error frame (fingerprint
// mismatch, draining) came from a live server, so retrying cannot help and
// it is surfaced immediately.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	backoff := cfg.Redial.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > cfg.Redial.Attempts {
				return nil, lastErr
			}
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = fmt.Errorf("serve: dial %s: %w", addr, err)
			continue
		}
		c, err := NewClient(conn, cfg)
		if err != nil {
			conn.Close()
			var ef *wire.ErrorFrame
			if errors.As(err, &ef) {
				return nil, err
			}
			lastErr = err
			continue
		}
		c.addr = addr
		return c, nil
	}
}

// NewStream opens an additional connection that shares this client's keys
// and server-side session. Requests on one Client serialize over its single
// connection, so a tenant that wants the server to coalesce its requests
// into one batched evaluation needs several in flight at once — one stream
// per concurrent request. Streams skip the session handshake entirely (the
// server's registry is keyed by session ID, not connection); only clients
// created with Dial can open them. Close each stream independently.
func (c *Client) NewStream() (*Client, error) {
	c.mu.Lock()
	addr, sessID := c.addr, c.sessionID
	c.mu.Unlock()
	if addr == "" {
		return nil, errors.New("serve: NewStream requires a client created with Dial")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{
		cfg:       c.cfg,
		backend:   c.backend,
		keys:      c.keys,
		plan:      c.plan,
		addr:      addr,
		traceBase: newTraceBase(),
		conn:      conn,
		sessionID: sessID,
	}, nil
}

// NewClient wraps an established connection: it generates this client's
// keys locally and performs the session-open handshake.
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.Compiled == nil {
		return nil, errors.New("serve: ClientConfig.Compiled is required")
	}
	if cfg.Compiled.Options.Scheme != core.SchemeRNS {
		return nil, fmt.Errorf("serve: scheme %v has no transferable keys; compile for core.SchemeRNS",
			cfg.Compiled.Options.Scheme)
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	params, err := core.RNSParameters(cfg.Compiled)
	if err != nil {
		return nil, err
	}
	rnsCfg := hisa.RNSConfig{
		Params:    params,
		PRNG:      cfg.PRNG,
		Rotations: cfg.Compiled.Best.Rotations,
	}
	// A bootstrap-compiled circuit is evaluated on the server through the
	// refresh pipeline; the client's rotation-key set must carry the
	// pipeline's amounts or the handed-off keys cannot bootstrap.
	if cfg.Compiled.BootPlan != nil {
		rnsCfg.Bootstrap = &cfg.Compiled.BootPlan.Spec
	}
	backend := hisa.NewRNSBackend(rnsCfg)
	traceBase := cfg.TraceBase
	if traceBase == 0 {
		traceBase = newTraceBase()
	}
	c := &Client{
		cfg:       cfg,
		backend:   backend,
		keys:      backend.PublicKeys(),
		plan:      cfg.Compiled.Plan(),
		traceBase: traceBase,
		conn:      conn,
	}
	if err := c.open(); err != nil {
		return nil, err
	}
	return c, nil
}

// open performs the session handshake on the current connection.
// Callers hold c.mu or are the constructor.
func (c *Client) open() error {
	fp := c.cfg.Compiled.Fingerprint()
	msg := &wire.SessionOpen{
		Fingerprint: fp,
		Rotations:   c.keys.Rotations,
		PK:          c.keys.PK,
		RLK:         c.keys.RLK,
		RTKS:        c.keys.RTKS,
	}
	payload, err := msg.Encode()
	if err != nil {
		return fmt.Errorf("serve: encoding session-open: %w", err)
	}
	if err := wire.WriteFrame(c.conn, wire.MsgSessionOpen, payload); err != nil {
		return fmt.Errorf("serve: sending session-open: %w", err)
	}
	t, resp, err := wire.ReadFrame(c.conn, c.cfg.MaxFrame)
	if err != nil {
		return fmt.Errorf("serve: reading session-accept: %w", err)
	}
	switch t {
	case wire.MsgSessionAccept:
		var accept wire.SessionAccept
		if err := accept.Decode(resp); err != nil {
			return fmt.Errorf("serve: session-accept: %w", err)
		}
		c.sessionID = accept.SessionID
		return nil
	case wire.MsgError:
		var ef wire.ErrorFrame
		if err := ef.Decode(resp); err != nil {
			return fmt.Errorf("serve: undecodable error frame: %w", err)
		}
		return &ef
	default:
		return fmt.Errorf("serve: unexpected %v frame during handshake", t)
	}
}

// TraceBase reports this stream's trace-ID prefix: request n carried trace
// ID TraceBase()+n.
func (c *Client) TraceBase() uint64 { return c.traceBase }

// Encrypt encodes and encrypts an input image under this client's keys,
// laid out as the compiled circuit expects.
func (c *Client) Encrypt(img *tensor.Tensor) *htc.CipherTensor {
	return htc.EncryptTensor(c.backend, img, c.plan, c.cfg.Compiled.Options.Scales)
}

// Decrypt recovers the prediction tensor from an encrypted result,
// flattening 1x1xK predictions exactly as chet.Session.Decrypt does.
func (c *Client) Decrypt(out *htc.CipherTensor) *tensor.Tensor {
	t := htc.DecryptTensor(c.backend, out)
	if t.Rank() == 3 && t.Shape[0] == 1 && t.Shape[1] == 1 {
		return t.Reshape(t.Size())
	}
	return t
}

// redialLocked replaces a dead connection and re-runs the session handshake
// over the new one. Callers hold c.mu.
func (c *Client) redialLocked() error {
	if c.addr == "" {
		return errors.New("serve: cannot redial a client not created with Dial")
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("serve: redial %s: %w", c.addr, err)
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	return c.open()
}

// retryTransport runs op, redialing per the configured policy when it fails
// at the transport layer (connection cut mid-request, write to a dead
// socket). A *wire.ErrorFrame is the server's answer — the transport worked —
// so it is returned without a retry; re-sending after a redial is safe
// because an inference is a pure function of its ciphertext. Callers hold
// c.mu (backoff sleeps while holding it; requests on one client serialize
// anyway).
func (c *Client) retryTransport(op func() (*htc.CipherTensor, error)) (*htc.CipherTensor, error) {
	out, err := op()
	if err == nil || c.addr == "" || c.cfg.Redial.Attempts <= 0 {
		return out, err
	}
	var ef *wire.ErrorFrame
	if errors.As(err, &ef) {
		return out, err
	}
	backoff := c.cfg.Redial.Backoff
	for attempt := 1; attempt <= c.cfg.Redial.Attempts; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		if rerr := c.redialLocked(); rerr != nil {
			if errors.As(rerr, &ef) {
				return nil, rerr
			}
			err = rerr
			continue
		}
		out, err = op()
		if err == nil || errors.As(err, &ef) {
			return out, err
		}
	}
	return nil, err
}

// Infer ships an encrypted tensor to the server and returns the encrypted
// result. If the server reports the session unknown (evicted under the
// session cap), the client transparently re-opens once and retries; with a
// RedialPolicy configured, transient transport failures reconnect and retry.
func (c *Client) Infer(in *htc.CipherTensor) (*htc.CipherTensor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := func() (*htc.CipherTensor, error) { return c.inferLocked(in) }
	out, err := c.retryTransport(op)
	var ef *wire.ErrorFrame
	if errors.As(err, &ef) && ef.Code == wire.CodeUnknownSession {
		if err := c.open(); err != nil {
			return nil, fmt.Errorf("serve: re-opening evicted session: %w", err)
		}
		return c.retryTransport(op)
	}
	return out, err
}

func (c *Client) inferLocked(in *htc.CipherTensor) (*htc.CipherTensor, error) {
	if c.conn == nil {
		return nil, errors.New("serve: client is closed")
	}
	c.nextReq++
	msg := &wire.InferRequest{
		SessionID:  c.sessionID,
		RequestID:  c.nextReq,
		TraceID:    c.traceBase + c.nextReq,
		ParentSpan: telemetry.NewSpanID(),
		Tensor:     in,
	}
	if c.cfg.Timeout > 0 {
		msg.TimeoutMillis = uint32(min(c.cfg.Timeout.Milliseconds(), int64(^uint32(0))))
	}
	payload, err := msg.Encode()
	if err != nil {
		return nil, fmt.Errorf("serve: encoding infer-request: %w", err)
	}
	if err := wire.WriteFrame(c.conn, wire.MsgInferRequest, payload); err != nil {
		return nil, fmt.Errorf("serve: sending infer-request: %w", err)
	}
	t, resp, err := wire.ReadFrame(c.conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("serve: reading infer-response: %w", err)
	}
	switch t {
	case wire.MsgInferResponse:
		var ir wire.InferResponse
		if err := ir.Decode(resp); err != nil {
			return nil, fmt.Errorf("serve: infer-response: %w", err)
		}
		if ir.RequestID != msg.RequestID {
			return nil, fmt.Errorf("serve: response for request %d, expected %d", ir.RequestID, msg.RequestID)
		}
		if ir.TraceID != msg.TraceID {
			return nil, fmt.Errorf("serve: response trace %016x, expected %016x", ir.TraceID, msg.TraceID)
		}
		// A coalesced response carries the whole batch's predictions; this
		// request's is in the indicated lane. The lane view is pure metadata
		// (origin shift), so demultiplexing costs no homomorphic operations.
		if ir.Batch > 1 {
			if int(ir.Lane) >= ir.Tensor.Batches() {
				return nil, fmt.Errorf("serve: response lane %d out of range for batch capacity %d",
					ir.Lane, ir.Tensor.Batches())
			}
			return htc.LaneView(ir.Tensor, int(ir.Lane), c.backend.Slots()), nil
		}
		return ir.Tensor, nil
	case wire.MsgError:
		var ef wire.ErrorFrame
		if err := ef.Decode(resp); err != nil {
			return nil, fmt.Errorf("serve: undecodable error frame: %w", err)
		}
		return nil, &ef
	default:
		return nil, fmt.Errorf("serve: unexpected %v frame", t)
	}
}

// Run is the full client loop for one input: encrypt, send, decrypt.
func (c *Client) Run(img *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := c.Infer(c.Encrypt(img))
	if err != nil {
		return nil, err
	}
	return c.Decrypt(out), nil
}

// EncryptBatch encrypts up to the compiled batch capacity of images into the
// lanes of one cipher tensor, for InferBatch.
func (c *Client) EncryptBatch(imgs []*tensor.Tensor) *htc.CipherTensor {
	return htc.EncryptTensorBatch(c.backend, imgs, c.plan, c.cfg.Compiled.Options.Scales)
}

// DecryptBatch recovers the first n lane predictions of a batched result,
// flattening 1x1xK predictions exactly as Decrypt does.
func (c *Client) DecryptBatch(out *htc.CipherTensor, n int) []*tensor.Tensor {
	ts := htc.DecryptTensorBatch(c.backend, out, n)
	for i, t := range ts {
		if t.Rank() == 3 && t.Shape[0] == 1 && t.Shape[1] == 1 {
			ts[i] = t.Reshape(t.Size())
		}
	}
	return ts
}

// InferBatch ships a client-packed batch (count images in the leading lanes
// of one tensor, from EncryptBatch) and returns the encrypted batched
// result. Like Infer, it transparently re-opens once if the session was
// evicted.
func (c *Client) InferBatch(in *htc.CipherTensor, count int) (*htc.CipherTensor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := func() (*htc.CipherTensor, error) { return c.inferBatchLocked(in, count) }
	out, err := c.retryTransport(op)
	var ef *wire.ErrorFrame
	if errors.As(err, &ef) && ef.Code == wire.CodeUnknownSession {
		if err := c.open(); err != nil {
			return nil, fmt.Errorf("serve: re-opening evicted session: %w", err)
		}
		return c.retryTransport(op)
	}
	return out, err
}

func (c *Client) inferBatchLocked(in *htc.CipherTensor, count int) (*htc.CipherTensor, error) {
	if c.conn == nil {
		return nil, errors.New("serve: client is closed")
	}
	c.nextReq++
	msg := &wire.InferBatchRequest{
		SessionID:  c.sessionID,
		RequestID:  c.nextReq,
		TraceID:    c.traceBase + c.nextReq,
		ParentSpan: telemetry.NewSpanID(),
		Count:      uint32(count),
		Tensor:     in,
	}
	if c.cfg.Timeout > 0 {
		msg.TimeoutMillis = uint32(min(c.cfg.Timeout.Milliseconds(), int64(^uint32(0))))
	}
	payload, err := msg.Encode()
	if err != nil {
		return nil, fmt.Errorf("serve: encoding infer-batch-request: %w", err)
	}
	if err := wire.WriteFrame(c.conn, wire.MsgInferBatchRequest, payload); err != nil {
		return nil, fmt.Errorf("serve: sending infer-batch-request: %w", err)
	}
	t, resp, err := wire.ReadFrame(c.conn, c.cfg.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("serve: reading infer-batch-response: %w", err)
	}
	switch t {
	case wire.MsgInferBatchResponse:
		var ir wire.InferBatchResponse
		if err := ir.Decode(resp); err != nil {
			return nil, fmt.Errorf("serve: infer-batch-response: %w", err)
		}
		if ir.RequestID != msg.RequestID {
			return nil, fmt.Errorf("serve: response for request %d, expected %d", ir.RequestID, msg.RequestID)
		}
		if ir.TraceID != msg.TraceID {
			return nil, fmt.Errorf("serve: response trace %016x, expected %016x", ir.TraceID, msg.TraceID)
		}
		if int(ir.Count) != count {
			return nil, fmt.Errorf("serve: response carries %d lanes, expected %d", ir.Count, count)
		}
		return ir.Tensor, nil
	case wire.MsgError:
		var ef wire.ErrorFrame
		if err := ef.Decode(resp); err != nil {
			return nil, fmt.Errorf("serve: undecodable error frame: %w", err)
		}
		return nil, &ef
	default:
		return nil, fmt.Errorf("serve: unexpected %v frame", t)
	}
}

// RunBatch is the full client loop for several inputs at once: encrypt into
// lanes, send as one batched request, decrypt each lane's prediction.
func (c *Client) RunBatch(imgs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	out, err := c.InferBatch(c.EncryptBatch(imgs), len(imgs))
	if err != nil {
		return nil, err
	}
	return c.DecryptBatch(out, len(imgs)), nil
}

// Close tears down the connection. The server garbage-collects the session
// through LRU eviction; there is no explicit close frame.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
