package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chet"
	"chet/internal/circuit"
	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/tensor"
	"chet/internal/wire"
)

var (
	batchCompileOnce sync.Once
	batchCompiled    *core.Compiled
	batchCompileErr  error
)

// testBatchCompiled compiles the same tiny CNN as testCompiled but with a
// batch capacity of 4, shared by every batching test in this package.
func testBatchCompiled(t *testing.T) *core.Compiled {
	t.Helper()
	batchCompileOnce.Do(func() {
		b := circuit.NewBuilder("serve-test-cnn-batched")
		x := b.Input(1, 5, 5)
		x = b.Conv2D(x, randTensor([]int{2, 1, 3, 3}, 0.4, 1), randTensor([]int{2}, 0.2, 2), 1, 0, "conv1")
		x = b.Activation(x, 0.1, 0.9, "act1")
		x = b.Flatten(x, "flat")
		x = b.Dense(x, randTensor([]int{3, 18}, 0.4, 3), randTensor([]int{3}, 0.2, 4), "fc")
		batchCompiled, batchCompileErr = core.Compile(b.Build(x), core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      5,
			MaxLogN:      11,
			Batch:        4,
		})
	})
	if batchCompileErr != nil {
		t.Fatalf("compiling batched test circuit: %v", batchCompileErr)
	}
	return batchCompiled
}

func closeEnough(t *testing.T, got, want []float64, tol float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d outputs, want %d", ctx, len(got), len(want))
	}
	for k := range got {
		if math.Abs(got[k]-want[k]) > tol {
			t.Fatalf("%s output %d: got %v, want %v (tol %g)", ctx, k, got[k], want[k], tol)
		}
	}
}

// TestCoalescedBatchE2E is the tentpole acceptance test for server-side
// coalescing: four concurrent requests on streams of one session are packed
// into a single evaluation (flush on MaxBatch), and each stream's
// demultiplexed lane decrypts to its own prediction.
func TestCoalescedBatchE2E(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 4, BatchWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	root := dialClient(t, addr, comp, 301)
	clients := []*Client{root}
	for len(clients) < 4 {
		st, err := root.NewStream()
		if err != nil {
			t.Fatalf("stream %d: %v", len(clients), err)
		}
		t.Cleanup(func() { st.Close() })
		clients = append(clients, st)
	}

	local := &chet.Session{Compiled: comp, Backend: root.backend}
	var wg sync.WaitGroup
	for i, c := range clients {
		img := randTensor([]int{1, 5, 5}, 1, int64(400+i))
		enc := c.Encrypt(img)
		want := local.Decrypt(local.Infer(enc))
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			out, err := c.Infer(enc)
			if err != nil {
				t.Errorf("stream %d: %v", i, err)
				return
			}
			got := c.Decrypt(out)
			closeEnough(t, got.Data, want.Data, 1e-3, "coalesced stream")
		}(i, c)
	}
	wg.Wait()

	m := s.Metrics()
	if m.Completed != 4 || m.BatchSizes[4] != 1 {
		t.Fatalf("completed=%d batchSizes=%v, want 4 completions in one batch of 4", m.Completed, m.BatchSizes)
	}
	if m.Evaluation.Count != 1 {
		t.Fatalf("Evaluation.Count = %d, want 1 (one circuit execution for the whole batch)", m.Evaluation.Count)
	}
	if m.QueueWait.Count != 4 {
		t.Fatalf("QueueWait.Count = %d, want 4 (one sample per request)", m.QueueWait.Count)
	}
}

// TestCoalesceFlushOnDeadline sends only two requests against a capacity-4
// coalescer: the partial batch must flush at the BatchWait deadline and
// still evaluate as one packed execution.
func TestCoalesceFlushOnDeadline(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 4, BatchWait: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	root := dialClient(t, addr, comp, 311)
	st, err := root.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	var wg sync.WaitGroup
	for i, c := range []*Client{root, st} {
		enc := c.Encrypt(randTensor([]int{1, 5, 5}, 1, int64(410+i)))
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if _, err := c.Infer(enc); err != nil {
				t.Errorf("stream %d: %v", i, err)
			}
		}(i, c)
	}
	wg.Wait()

	m := s.Metrics()
	if m.Completed != 2 || m.BatchSizes[2] != 1 || m.Evaluation.Count != 1 {
		t.Fatalf("completed=%d batchSizes=%v evaluations=%d, want one deadline-flushed batch of 2",
			m.Completed, m.BatchSizes, m.Evaluation.Count)
	}
}

// TestClientBatchRequestE2E exercises the client-packed path: three images
// encrypted into the lanes of one tensor, one InferBatch round-trip, and a
// per-lane parity check against local single-image inference.
func TestClientBatchRequestE2E(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)
	c := dialClient(t, addr, comp, 321)

	local := &chet.Session{Compiled: comp, Backend: c.backend}
	var wantOut [][]float64
	var inputs []*tensor.Tensor
	for i := 0; i < 3; i++ {
		img := randTensor([]int{1, 5, 5}, 1, int64(420+i))
		inputs = append(inputs, img)
		wantOut = append(wantOut, local.Decrypt(local.Infer(c.Encrypt(img))).Data)
	}
	got, err := c.RunBatch(inputs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("RunBatch returned %d tensors, want 3", len(got))
	}
	for i := range got {
		closeEnough(t, got[i].Data, wantOut[i], 1e-3, "batch lane")
	}
	if m := s.Metrics(); m.Completed != 1 || m.BatchSizes[1] != 1 {
		t.Fatalf("completed=%d batchSizes=%v, want one pre-packed evaluation", m.Completed, m.BatchSizes)
	}
}

// TestPoisonedTensorRejected sends a scale-poisoned request under an active
// coalescer: scale and level are cleartext metadata, so admission rejects
// the lie outright (it would otherwise feed silent garbage into a packed
// batch), while a healthy request coalesced in the same window is served
// bit-identically.
func TestPoisonedTensorRejected(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 2, BatchWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	root := dialClient(t, addr, comp, 331)
	st, err := root.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	local := &chet.Session{Compiled: comp, Backend: root.backend}
	healthyEnc := root.Encrypt(randTensor([]int{1, 5, 5}, 1, 430))
	want := local.Decrypt(local.Infer(healthyEnc))

	poisonEnc := st.Encrypt(randTensor([]int{1, 5, 5}, 1, 431))
	poisonEnc.CTs[0].(*ckks.Ciphertext).Scale = math.Exp2(200)

	_, poisonErr := st.Infer(poisonEnc)
	if code := errCode(t, poisonErr); code != wire.CodeBadMessage {
		t.Fatalf("poisoned request: code = %v, want %v", code, wire.CodeBadMessage)
	}

	out, err := root.Infer(healthyEnc) // deadline-flushes as a batch of one
	if err != nil {
		t.Fatalf("healthy request failed alongside a poisoned one: %v", err)
	}
	got := root.Decrypt(out)
	for k := range got.Data {
		if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
			t.Fatalf("healthy output %d: %v != %v (not bit-identical)", k, got.Data[k], want.Data[k])
		}
	}
	if m := s.Metrics(); m.Completed != 1 || m.BatchSizes[1] != 1 {
		t.Fatalf("completed=%d batchSizes=%v, want the healthy request alone", m.Completed, m.BatchSizes)
	}
}

// TestBatchPanicIsolationFallback injects a panic into the packed evaluation
// of a coalesced batch (and into the first request's retry): the engine must
// fall back to per-request evaluation, fail only the first request, and
// serve its batch-mate bit-identically.
func TestBatchPanicIsolationFallback(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 2, BatchWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	s.execHook = func() {
		// Call 1 is the packed batch, call 2 the first request's isolated
		// retry; call 3 (the second request's retry) runs free.
		if calls.Add(1) <= 2 {
			panic("injected poison")
		}
	}
	addr := startServer(t, s)

	root := dialClient(t, addr, comp, 341)
	st, err := root.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	local := &chet.Session{Compiled: comp, Backend: root.backend}
	encA := root.Encrypt(randTensor([]int{1, 5, 5}, 1, 440))
	encB := st.Encrypt(randTensor([]int{1, 5, 5}, 1, 441))
	wantB := local.Decrypt(local.Infer(encB))

	resA := make(chan error, 1)
	go func() {
		_, err := root.Infer(encA)
		resA <- err
	}()
	// Admit A first so the fallback order (and therefore which request the
	// injected panic fails) is deterministic.
	for i := 0; s.requests.Load() < 1; i++ {
		if i > 5000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	outB, errB := st.Infer(encB) // completes the batch of two

	if code := errCode(t, <-resA); code != wire.CodeInternal {
		t.Fatalf("poisoned request: code = %v, want %v", code, wire.CodeInternal)
	}
	if errB != nil {
		t.Fatalf("batch-mate failed alongside the poisoned request: %v", errB)
	}
	gotB := st.Decrypt(outB)
	for k := range gotB.Data {
		if math.Float64bits(gotB.Data[k]) != math.Float64bits(wantB.Data[k]) {
			t.Fatalf("batch-mate output %d: %v != %v (isolated retry should be bit-identical)",
				k, gotB.Data[k], wantB.Data[k])
		}
	}
	m := s.Metrics()
	if m.Completed != 1 || m.Errors != 1 || m.BatchSizes[2] != 1 || m.Evaluation.Count != 3 {
		t.Fatalf("completed=%d errors=%d batchSizes=%v evaluations=%d, want 1/1/{2:1}/3",
			m.Completed, m.Errors, m.BatchSizes, m.Evaluation.Count)
	}
}
