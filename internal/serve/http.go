package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"chet/internal/hisa"
	"chet/internal/telemetry"
)

// ObservabilityMux returns an http.Handler exposing the server's live state:
//
//	/metrics        Prometheus text exposition (counters, latency summaries,
//	                per-op HISA counts, and — with Config.Trace — per-op
//	                durations from the session tracers)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The mux is safe to serve while inference traffic is live; every series is
// derived from the same snapshots Metrics returns.
func (s *Server) ObservabilityMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writePromMetrics(w, m, s.reg.sessions(), s.cfg.Compiled.Options.Scales.Pc)
}

// writePromMetrics renders a ServerMetrics snapshot in the Prometheus text
// exposition format (version 0.0.4), handwritten because the repo takes no
// dependencies. Sessions supply the per-op series; they are passed alongside
// the snapshot so tracer totals need not round-trip through ServerMetrics.
// defaultScale is the compiled input scale Δ; traced ciphertext scales are
// reported as log2 drift against it (zero disables the drift series).
func writePromMetrics(w io.Writer, m ServerMetrics, sessions []*session, defaultScale float64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("chet_sessions_opened_total", "Sessions ever opened.", m.SessionsOpened)
	counter("chet_sessions_evicted_total", "Sessions evicted by the LRU registry.", m.SessionsEvicted)
	fmt.Fprintf(w, "# HELP chet_sessions_active Live sessions in the registry.\n# TYPE chet_sessions_active gauge\nchet_sessions_active %d\n",
		m.SessionsActive)
	counter("chet_requests_total", "Inference requests admitted to the queue.", m.Requests)
	counter("chet_requests_completed_total", "Inference requests answered successfully.", m.Completed)
	counter("chet_eval_errors_total", "Evaluations that failed.", m.Errors)
	counter("chet_rejected_queue_full_total", "Requests rejected on a full admission queue.", m.RejectedQueueFull)
	counter("chet_rejected_deadline_total", "Requests rejected past their deadline.", m.RejectedDeadline)
	counter("chet_rejected_shutdown_total", "Requests rejected during shutdown.", m.RejectedShutdown)
	fmt.Fprintf(w, "# HELP chet_inflight_requests Admitted requests not yet answered.\n# TYPE chet_inflight_requests gauge\nchet_inflight_requests %d\n",
		m.Inflight)
	counter("chet_session_handoffs_total", "Sessions admitted via router handoff.", m.Handoffs)
	counter("chet_health_probes_total", "Health probes answered.", m.HealthProbes)
	counter("chet_registry_syncs_total", "Registry-sync frames merged.", m.RegistrySyncs)
	fmt.Fprintf(w, "# HELP chet_registry_models Models in the replicated registry view.\n# TYPE chet_registry_models gauge\nchet_registry_models %d\n",
		m.RegistryModels)

	summary := func(name, help string, l LatencySummary) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		q := func(p float64, d time.Duration) {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", p), d.Seconds())
		}
		q(0.5, l.P50)
		q(0.9, l.P90)
		q(0.99, l.P99)
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, l.Sum.Seconds(), name, l.Count)
	}
	summary("chet_request_seconds", "End-to-end request latency (admission to response).", m.Latency)
	summary("chet_queue_wait_seconds", "Time requests spent queued (admission + coalescing).", m.QueueWait)
	summary("chet_evaluation_seconds", "Homomorphic evaluation time per circuit execution.", m.Evaluation)

	fmt.Fprintf(w, "# HELP chet_batch_evaluations_total Evaluations by the number of requests they served.\n# TYPE chet_batch_evaluations_total counter\n")
	sizes := make([]int, 0, len(m.BatchSizes))
	for k := range m.BatchSizes {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	for _, k := range sizes {
		fmt.Fprintf(w, "chet_batch_evaluations_total{size=\"%d\"} %d\n", k, m.BatchSizes[k])
	}

	// Per-op HISA instruction counts, summed over the live sessions' Meters.
	var ops hisa.OpCounts
	traced := map[string]telemetry.OpTotal{}
	for _, sess := range sessions {
		c := sess.meter.Counts()
		ops.Encrypt += c.Encrypt
		ops.Decrypt += c.Decrypt
		ops.Encode += c.Encode
		ops.Decode += c.Decode
		ops.Rotations += c.Rotations
		ops.Add += c.Add
		ops.AddPlain += c.AddPlain
		ops.AddScalar += c.AddScalar
		ops.Sub += c.Sub
		ops.SubPlain += c.SubPlain
		ops.SubScalar += c.SubScalar
		ops.Mul += c.Mul
		ops.MulPlain += c.MulPlain
		ops.MulScalar += c.MulScalar
		ops.Relinearize += c.Relinearize
		ops.Conjugate += c.Conjugate
		ops.Rescale += c.Rescale
		ops.MaxRescaleQueries += c.MaxRescaleQueries
		if sess.tracer != nil {
			for op, tot := range sess.tracer.Totals() {
				agg := traced[op]
				agg.Count += tot.Count
				agg.Total += tot.Total
				traced[op] = agg
			}
		}
	}
	fmt.Fprintf(w, "# HELP chet_hisa_ops_total HISA instructions executed, by op kind (live sessions).\n# TYPE chet_hisa_ops_total counter\n")
	for _, kv := range []struct {
		op string
		n  int
	}{
		{"encrypt", ops.Encrypt}, {"decrypt", ops.Decrypt},
		{"encode", ops.Encode}, {"decode", ops.Decode},
		{"rot", ops.Rotations},
		{"add", ops.Add}, {"addplain", ops.AddPlain}, {"addscalar", ops.AddScalar},
		{"sub", ops.Sub}, {"subplain", ops.SubPlain}, {"subscalar", ops.SubScalar},
		{"mul", ops.Mul}, {"mulplain", ops.MulPlain}, {"mulscalar", ops.MulScalar},
		{"relin", ops.Relinearize}, {"conj", ops.Conjugate},
		{"rescale", ops.Rescale}, {"maxrescale", ops.MaxRescaleQueries},
	} {
		fmt.Fprintf(w, "chet_hisa_ops_total{op=%q} %d\n", kv.op, kv.n)
	}

	if len(traced) > 0 {
		names := make([]string, 0, len(traced))
		for op := range traced {
			names = append(names, op)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP chet_hisa_op_seconds_total Wall time spent in HISA ops, by op kind (traced sessions).\n# TYPE chet_hisa_op_seconds_total counter\n")
		for _, op := range names {
			fmt.Fprintf(w, "chet_hisa_op_seconds_total{op=%q} %g\n", op, traced[op].Total.Seconds())
		}
		fmt.Fprintf(w, "# HELP chet_hisa_op_spans_total Spans recorded by the session tracers, by op kind.\n# TYPE chet_hisa_op_spans_total counter\n")
		for _, op := range names {
			fmt.Fprintf(w, "chet_hisa_op_spans_total{op=%q} %d\n", op, traced[op].Count)
		}
	}

	// Ciphertext-budget telemetry. The aggregate refresh counter is always
	// present (zero without a bootstrap plan) so dashboards can rate() it
	// unconditionally; headroom only appears once a session has done
	// multiplicative work, because until then the low-water mark is unknown.
	counter("chet_bootstrap_refreshes_total", "Bootstrap refreshes across live sessions (hisa.Refresher tally).", m.Bootstraps)
	if m.HeadroomKnown {
		fmt.Fprintf(w, "# HELP chet_min_headroom_levels Low-water mark of ciphertext levels above the refresh floor.\n# TYPE chet_min_headroom_levels gauge\nchet_min_headroom_levels %d\n",
			m.MinHeadroom)
	}
	var wroteSessionBoots bool
	for _, sess := range sessions {
		sm := sess.metrics()
		if sm.Bootstraps == 0 && !sm.HeadroomKnown {
			continue
		}
		if !wroteSessionBoots {
			fmt.Fprintf(w, "# HELP chet_session_bootstrap_refreshes_total Bootstrap refreshes, by session.\n# TYPE chet_session_bootstrap_refreshes_total counter\n")
			wroteSessionBoots = true
		}
		fmt.Fprintf(w, "chet_session_bootstrap_refreshes_total{session=\"%d\"} %d\n", sm.ID, sm.Bootstraps)
	}

	// Scale drift: the worst |log2(scale/Δ)| any traced op emitted, a direct
	// reading of how far waterline management let ciphertext scales wander
	// from the compiled default. Stays near zero under the scale plan; growth
	// here means rescale placement is drifting.
	if defaultScale > 0 {
		drift, seen := 0.0, false
		for _, sess := range sessions {
			if sess.tracer == nil {
				continue
			}
			for _, sp := range sess.tracer.Snapshot() {
				if sp.ScaleOut <= 0 {
					continue
				}
				seen = true
				if d := math.Abs(math.Log2(sp.ScaleOut / defaultScale)); d > drift {
					drift = d
				}
			}
		}
		if seen {
			fmt.Fprintf(w, "# HELP chet_scale_drift_log2_max Max |log2(scale/default)| over traced op outputs.\n# TYPE chet_scale_drift_log2_max gauge\nchet_scale_drift_log2_max %g\n",
				drift)
		}
	}
}
