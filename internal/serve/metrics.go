package serve

import (
	"sort"
	"sync"
	"time"

	"chet/internal/hisa"
	"chet/internal/telemetry"
)

// latencyRecorder keeps a bounded ring of recent request latencies so
// quantile snapshots stay O(window) regardless of uptime. Homomorphic
// inferences run milliseconds to minutes each, so a small window spans a
// long operational history.
type latencyRecorder struct {
	mu    sync.Mutex
	ring  []time.Duration
	next  int
	count uint64        // total ever recorded
	sum   time.Duration // total duration ever recorded
	// ewma tracks an exponentially-weighted moving average (alpha 1/8) of
	// the recorded durations — cheap enough to consult on every admission,
	// unlike the sort the quantile summary pays.
	ewma time.Duration
}

const latencyWindow = 1024

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{ring: make([]time.Duration, 0, latencyWindow)}
}

func (l *latencyRecorder) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.sum += d
	if l.count == 1 {
		l.ewma = d
	} else {
		l.ewma += (d - l.ewma) / 8
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, d)
		return
	}
	l.ring[l.next] = d
	l.next = (l.next + 1) % len(l.ring)
}

// average returns the moving average (zero until the first sample).
func (l *latencyRecorder) average() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ewma
}

// LatencySummary is a quantile snapshot over the recent-latency window.
type LatencySummary struct {
	Count         uint64        // total requests ever measured
	Sum           time.Duration // total duration ever measured
	P50, P90, P99 time.Duration
}

// summary snapshots the window. Quantiles interpolate linearly between the
// two closest ranks (telemetry.Quantile), so q(0.99) on a window under 100
// samples lands between the top samples instead of degenerating to the max.
func (l *latencyRecorder) summary() LatencySummary {
	l.mu.Lock()
	sample := append([]time.Duration(nil), l.ring...)
	count, sum := l.count, l.sum
	l.mu.Unlock()
	out := LatencySummary{Count: count, Sum: sum}
	if len(sample) == 0 {
		return out
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	q := func(p float64) time.Duration {
		return telemetry.Quantile(sample, p)
	}
	out.P50, out.P90, out.P99 = q(0.50), q(0.90), q(0.99)
	return out
}

// SessionMetrics is a point-in-time view of one session.
type SessionMetrics struct {
	ID       uint64
	Requests uint64
	Errors   uint64
	// Ops tallies the HISA instructions this session's backend executed
	// (from the atomic hisa.Meter wrapped around it).
	Ops     hisa.OpCounts
	Latency LatencySummary

	// Bootstraps counts this session's bootstrap refreshes (hisa.Refresher
	// tally, triggered + explicit); zero when the served circuit has no
	// bootstrap plan. MinHeadroom is the session's low-water mark of levels
	// above the refresh floor, valid when HeadroomKnown.
	Bootstraps    uint64
	MinHeadroom   int64
	HeadroomKnown bool
}

// ServerMetrics is a point-in-time view of the whole server.
type ServerMetrics struct {
	SessionsOpened  uint64
	SessionsEvicted uint64
	SessionsActive  int

	Requests          uint64 // infer requests admitted to the queue
	Completed         uint64
	Errors            uint64 // evaluation failures
	RejectedQueueFull uint64
	RejectedDeadline  uint64
	RejectedShutdown  uint64
	// Inflight is the admitted-but-unanswered request gauge (also reported
	// in health acks so a router can balance on live load).
	Inflight int64

	// Fleet control-plane counters: sessions admitted via router handoff,
	// health probes answered, registry syncs folded in, and the size of this
	// worker's replicated model-registry view.
	Handoffs       uint64
	HealthProbes   uint64
	RegistrySyncs  uint64
	RegistryModels int

	// Ciphertext-budget telemetry, aggregated over the live sessions'
	// refreshers (zero-valued when the served circuit has no bootstrap
	// plan): cumulative bootstrap refreshes and the worker-wide low-water
	// mark of levels above the refresh floor (valid when HeadroomKnown).
	Bootstraps    uint64
	MinHeadroom   int64
	HeadroomKnown bool

	// Latency is the end-to-end per-request view (admission to response);
	// QueueWait and Evaluation split it into the time a request spent
	// waiting (admission queue + batch coalescing) and the time its
	// homomorphic evaluation ran. Evaluation is recorded once per
	// evaluation, so under batching its Count is the number of circuit
	// executions, not the number of requests they served.
	Latency    LatencySummary
	QueueWait  LatencySummary
	Evaluation LatencySummary

	// BatchSizes counts evaluations by the number of requests they served:
	// BatchSizes[4] == 7 means seven evaluations each packed four requests.
	BatchSizes map[int]uint64

	Sessions []SessionMetrics
}
