package serve

import (
	"bytes"
	"sync"

	"chet/internal/wire"
)

// fleetStore is this worker's replica of the fleet-wide compiled-model
// registry, keyed by compilation fingerprint. A router pushes its merged view
// with registry-sync frames; the worker folds them in and acks with its own
// snapshot (which always contains the model this server itself serves), so
// the registry survives any single process — a restarted router rebuilds it
// from whichever worker answers first.
type fleetStore struct {
	mu      sync.Mutex
	entries map[[32]byte]wire.RegistryEntry
}

func newFleetStore() *fleetStore {
	return &fleetStore{entries: map[[32]byte]wire.RegistryEntry{}}
}

// merge folds entries into the replica. Fingerprints are content hashes of
// the compilation, so two entries with the same key describe the same model
// and last-writer-wins is safe.
func (f *fleetStore) merge(entries []wire.RegistryEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range entries {
		f.entries[e.Fingerprint] = e
	}
}

// snapshot returns the replica sorted by fingerprint, so syncs and acks are
// deterministic byte-for-byte regardless of merge order.
func (f *fleetStore) snapshot() []wire.RegistryEntry {
	f.mu.Lock()
	out := make([]wire.RegistryEntry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, e)
	}
	f.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && bytes.Compare(out[j].Fingerprint[:], out[j-1].Fingerprint[:]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (f *fleetStore) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}
