package serve

import "time"

// Adaptive batch-flush control (Config.BatchAdaptive). The coalescer's wait
// is a latency/throughput trade: waiting lets more requests join a batch (one
// evaluation amortizes across them), but once the server is saturated the
// admission queue itself delays dispatch long enough for batches to fill —
// any further coalescing wait is pure added latency. The controller therefore
// scales the wait by how loaded the server already is, using two signals the
// engine records anyway: the average time a request spends queued and the
// average time one evaluation takes.

// adaptiveFlushWait maps the load signals to a flush deadline:
//
//	wait = base * clamp(1 - queueWait/eval, 0, 1)
//
// When requests queue for a full evaluation time (ratio >= 1) the executor is
// the bottleneck and arrivals pile up on their own — flush immediately. When
// the queue is empty (ratio ~ 0) traffic is sparse and the full base wait is
// the only chance a batch has to form. In between, the wait degrades
// linearly. Zero-signal cases (no samples yet) keep the static base.
func adaptiveFlushWait(base, queueWait, eval time.Duration) time.Duration {
	if base <= 0 || eval <= 0 || queueWait <= 0 {
		return base
	}
	f := 1 - float64(queueWait)/float64(eval)
	if f <= 0 {
		return 0
	}
	return time.Duration(float64(base) * f)
}

// adaptiveWait is the coalescer's WaitFor hook: it feeds the controller the
// live EWMAs of queue wait and evaluation time. It runs on every admission
// (under the coalescer's lock), so it reads the cheap moving averages, not
// the sorted quantile summaries.
func (s *Server) adaptiveWait() time.Duration {
	return adaptiveFlushWait(s.cfg.BatchWait, s.queueWait.average(), s.evalLatency.average())
}
