package serve

import (
	"testing"
	"time"
)

func TestAdaptiveFlushWait(t *testing.T) {
	const base = 20 * time.Millisecond
	cases := []struct {
		name            string
		queueWait, eval time.Duration
		want            time.Duration
	}{
		{"no samples keeps static base", 0, 0, base},
		{"no eval signal keeps static base", time.Millisecond, 0, base},
		{"idle queue keeps static base", 0, 10 * time.Millisecond, base},
		{"half-loaded halves the wait", 5 * time.Millisecond, 10 * time.Millisecond, base / 2},
		{"saturated flushes immediately", 10 * time.Millisecond, 10 * time.Millisecond, 0},
		{"overloaded flushes immediately", time.Second, 10 * time.Millisecond, 0},
	}
	for _, c := range cases {
		if got := adaptiveFlushWait(base, c.queueWait, c.eval); got != c.want {
			t.Errorf("%s: adaptiveFlushWait(%v, %v, %v) = %v, want %v",
				c.name, base, c.queueWait, c.eval, got, c.want)
		}
	}
	if got := adaptiveFlushWait(0, time.Millisecond, time.Millisecond); got != 0 {
		t.Errorf("zero base must stay zero, got %v", got)
	}
}

func TestLatencyRecorderAverage(t *testing.T) {
	l := newLatencyRecorder()
	if l.average() != 0 {
		t.Fatalf("empty recorder average %v, want 0", l.average())
	}
	l.record(80 * time.Millisecond)
	if l.average() != 80*time.Millisecond {
		t.Fatalf("first sample must seed the average, got %v", l.average())
	}
	// A run of much-smaller samples pulls the average down geometrically.
	for i := 0; i < 64; i++ {
		l.record(8 * time.Millisecond)
	}
	if avg := l.average(); avg > 10*time.Millisecond || avg < 8*time.Millisecond {
		t.Fatalf("average %v did not converge toward 8ms", avg)
	}
}

// TestServerAdaptiveWait exercises the controller through a real server's
// recorders: fresh server keeps the static wait, a saturated queue-wait
// signal collapses it to zero.
func TestServerAdaptiveWait(t *testing.T) {
	comp := testBatchCompiled(t)
	s, err := New(Config{Compiled: comp, MaxBatch: 2, BatchWait: 15 * time.Millisecond, BatchAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.adaptiveWait(); got != 15*time.Millisecond {
		t.Fatalf("cold server wait %v, want the static 15ms", got)
	}
	s.evalLatency.record(10 * time.Millisecond)
	s.queueWait.record(40 * time.Millisecond)
	if got := s.adaptiveWait(); got != 0 {
		t.Fatalf("saturated server wait %v, want 0", got)
	}
}
