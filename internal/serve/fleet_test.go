package serve

import (
	"net"
	"testing"

	"chet/internal/wire"
)

// TestWorkerControlFrames drives the router-facing control plane against a
// live worker over one raw connection: health probe, registry sync, and an
// eval-key handoff whose admitted session then answers a relayed inference.
func TestWorkerControlFrames(t *testing.T) {
	comp := testCompiled(t)
	s, err := New(Config{Compiled: comp})
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip := func(mt wire.MsgType, m interface{ Encode() ([]byte, error) }, want wire.MsgType) []byte {
		t.Helper()
		p, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, mt, p); err != nil {
			t.Fatal(err)
		}
		got, resp, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			if got == wire.MsgError {
				var ef wire.ErrorFrame
				_ = ef.Decode(resp)
				t.Fatalf("wanted %v, got error frame: %s", want, ef.Message)
			}
			t.Fatalf("wanted %v frame, got %v", want, got)
		}
		return resp
	}

	// Health probe: the ack echoes the nonce and reports this worker's
	// fingerprint with nothing in flight.
	resp := roundTrip(wire.MsgHealthProbe, &wire.HealthProbe{Nonce: 99}, wire.MsgHealthAck)
	var ack wire.HealthAck
	if err := ack.Decode(resp); err != nil {
		t.Fatal(err)
	}
	if ack.Nonce != 99 || ack.Fingerprint != s.fingerprint || ack.Draining || ack.Inflight != 0 {
		t.Fatalf("health ack %+v: want nonce 99, server fingerprint, not draining", ack)
	}

	// Registry sync: push a foreign model; the ack must hold the merged view
	// (the worker's own model plus the pushed one).
	foreign := wire.RegistryEntry{Model: "other-model", LogN: 13, Batch: 4}
	foreign.Fingerprint[0] = 0xEE
	resp = roundTrip(wire.MsgRegistrySync, &wire.RegistrySync{Entries: []wire.RegistryEntry{foreign}}, wire.MsgRegistrySyncAck)
	var sack wire.RegistrySyncAck
	if err := sack.Decode(resp); err != nil {
		t.Fatal(err)
	}
	seen := map[[32]byte]bool{}
	for _, e := range sack.Entries {
		seen[e.Fingerprint] = true
	}
	if len(sack.Entries) != 2 || !seen[s.fingerprint] || !seen[foreign.Fingerprint] {
		t.Fatalf("sync ack entries %+v: want the worker's own model plus the pushed one", sack.Entries)
	}

	// Handoff: replay a real client's session-open payload. The worker must
	// admit it through the ordinary validation path and serve requests that
	// quote the worker-local ID from the ack.
	cli := dialClient(t, addr, comp, 77)
	open, err := (&wire.SessionOpen{
		Fingerprint: comp.Fingerprint(),
		Rotations:   cli.keys.Rotations,
		PK:          cli.keys.PK,
		RLK:         cli.keys.RLK,
		RTKS:        cli.keys.RTKS,
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp = roundTrip(wire.MsgSessionHandoff, &wire.SessionHandoff{RouterSessionID: 424242, Open: open}, wire.MsgSessionHandoffAck)
	var hack wire.SessionHandoffAck
	if err := hack.Decode(resp); err != nil {
		t.Fatal(err)
	}
	if hack.RouterSessionID != 424242 || hack.WorkerSessionID == 0 {
		t.Fatalf("handoff ack %+v: want router id echoed and a live worker session", hack)
	}

	enc := cli.Encrypt(randTensor([]int{1, 5, 5}, 1, 9))
	resp = roundTrip(wire.MsgInferRequest, &wire.InferRequest{
		SessionID: hack.WorkerSessionID, RequestID: 1, Tensor: enc,
	}, wire.MsgInferResponse)
	var ir wire.InferResponse
	if err := ir.Decode(resp); err != nil {
		t.Fatal(err)
	}
	if ir.RequestID != 1 || ir.Tensor == nil {
		t.Fatalf("relayed inference response %+v: want request 1 with a tensor", ir)
	}

	m := s.Metrics()
	if m.Handoffs != 1 || m.HealthProbes != 1 || m.RegistrySyncs != 1 || m.RegistryModels != 2 {
		t.Fatalf("control-plane counters %+v: want 1 handoff, 1 probe, 1 sync, 2 registry models", m)
	}
}
