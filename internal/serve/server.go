// Package serve implements the server side of CHET's encrypted-inference
// deployment model (Figure 3 of the paper) as a long-running engine: clients
// open sessions by uploading public evaluation keys once, then stream
// inference requests whose encrypted tensors are dispatched onto the
// worker-pool htc executor. The engine adds what a one-shot demo lacks —
// a bounded admission queue with backpressure, per-request deadlines, an
// LRU-capped session registry, graceful shutdown that drains in-flight
// work, and per-session/per-server metrics with HISA op counts.
//
// The wire format lives in internal/wire; only the RNS-CKKS scheme is
// servable, because the mock HEAAN backend has no transferable keys.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chet/internal/batch"
	"chet/internal/ckks"
	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
	"chet/internal/telemetry"
	"chet/internal/wire"
)

// Config parameterizes a Server. The zero value of every optional field
// selects the documented default.
type Config struct {
	// Compiled is the compiled circuit this server evaluates. Required;
	// must target core.SchemeRNS.
	Compiled *core.Compiled

	// MaxSessions caps the session registry; beyond it the least recently
	// used session is evicted and its client must re-open. Default 64.
	MaxSessions int
	// QueueDepth bounds the admission queue. A request arriving with the
	// queue full is rejected immediately with a queue-full error frame
	// (backpressure, not buffering). Default 64.
	QueueDepth int
	// RequestTimeout is the default per-request deadline (queue wait plus
	// evaluation); a request may tighten it via TimeoutMillis. Default 60s.
	RequestTimeout time.Duration
	// Workers is the htc worker-pool size each inference fans kernel work
	// across (PR 1's executor). Values <= 1 evaluate serially. Default 1.
	Workers int
	// Parallel is the number of inferences evaluated concurrently (the
	// executor pool draining the admission queue). Default 1.
	Parallel int
	// MaxFrame bounds accepted frame payloads. Default wire.DefaultMaxFrame.
	MaxFrame int
	// MaxBatch enables request coalescing: up to MaxBatch single-image
	// requests from the same session are packed into one ciphertext
	// evaluation. Requires the circuit to be compiled with Options.Batch >=
	// MaxBatch (the compiled batch capacity provisions the slot lanes and
	// packing rotation keys). Values <= 1 disable coalescing. Default 1.
	MaxBatch int
	// BatchWait bounds how long a partial batch waits for more requests
	// before being evaluated anyway. Only meaningful with MaxBatch > 1.
	// Default 20ms; negative flushes immediately (coalescing off in effect).
	BatchWait time.Duration
	// BatchAdaptive derives the flush deadline from live load instead of
	// using BatchWait verbatim: when requests are already queueing about as
	// long as an evaluation takes, batches form on their own and added wait
	// is pure latency, so the deadline shrinks toward zero; when traffic is
	// sparse the deadline grows back to BatchWait to give coalescing a
	// chance. BatchWait remains the ceiling. Off by default (static waits).
	BatchAdaptive bool
	// ExecDelay, when positive, adds an artificial latency floor to every
	// evaluation (slept inside the executor, after the real circuit runs).
	// It exists for load and fleet experiments: with a tiny circuit, real
	// evaluations are too fast to expose queueing or multi-worker scaling
	// behavior, and a sleeping evaluation occupies an executor slot exactly
	// like a slow one without burning CPU. Zero (the default) disables it;
	// production configs must leave it zero.
	ExecDelay time.Duration
	// Trace wraps each session's backend in a telemetry.Tracer: /metrics
	// gains per-op duration series, every evaluation runs under a scope
	// named by the requests' wire trace IDs, and each dispatch is logged
	// with its trace IDs and batch assignment. With tracing on, evaluation
	// scopes also carry the requests' wire trace context (trace ID + parent
	// span), queue waits and batch flushes are recorded as spans, and the
	// worker answers trace-dump frames with its merged span rings. Off by
	// default (the tracer costs a few percent and a bounded span ring per
	// session).
	Trace bool
	// ProcessLabel names this worker in merged cross-process traces
	// (TraceDumpAck.Process). Empty lets the collector label the worker by
	// its address, which keeps multi-worker fleets distinguishable without
	// configuration.
	ProcessLabel string
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured per-request events (dispatches,
	// completions, failures) with trace_id attributes, correlating log lines
	// with the distributed trace. Default discards.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Parallel < 1 {
		c.Parallel = 1
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.BatchWait == 0 {
		c.BatchWait = 20 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// job is one admitted inference request.
type job struct {
	sess       *session
	tensor     *htc.CipherTensor
	reqID      uint64
	traceID    uint64 // client-chosen correlation id (0 = none)
	parentSpan uint64 // upstream span (client call or router relay; 0 = none)
	arrived    time.Time
	deadline   time.Time
	respond    chan jobResult // buffered(1); runBatch always sends exactly once
}

type jobResult struct {
	tensor *htc.CipherTensor
	// batch/lane tell a coalesced requester how many requests shared the
	// evaluation and which slot lane holds its prediction (batch <= 1 means
	// the tensor is this request's alone).
	batch, lane int
	errf        *wire.ErrorFrame
}

// batchJob is the executor's unit of work: one or more requests of the same
// session evaluated together. Coalesced jobs carry one single-image tensor
// per item and are packed homomorphically before evaluation; pre-packed
// jobs (MsgInferBatchRequest) arrive as a single item whose tensor already
// holds several images in its batch lanes.
type batchJob struct {
	items []*job
}

// Server is a concurrent encrypted-inference server for one compiled
// circuit. Create with New, run with Serve, stop with Shutdown.
type Server struct {
	cfg         Config
	params      *ckks.Parameters
	fingerprint [32]byte
	// wantMeta is the exact input-tensor geometry this compilation expects;
	// network tensors are checked against it field by field.
	wantMeta htc.CipherTensor

	reg  *registry
	jobs chan *batchJob
	quit chan struct{} // closed by Shutdown after the drain completes
	// coal groups compatible single-image requests (same session) into
	// batches; nil when MaxBatch <= 1.
	coal *batch.Coalescer[uint64, *job]

	draining  atomic.Bool
	inflight  sync.WaitGroup // admitted jobs not yet responded
	inflightN atomic.Int64   // gauge twin of the WaitGroup, for health acks
	execWG    sync.WaitGroup // executor goroutines
	connWG    sync.WaitGroup // per-connection handlers

	// fleet is this worker's replica of the fleet-wide compiled-model
	// registry (seeded with the model this server itself serves and merged
	// with every registry-sync a router pushes).
	fleet     *fleetStore
	selfEntry wire.RegistryEntry

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	shutdown bool

	// Counters (atomic; see Metrics).
	requests, completed, evalErrors        atomic.Uint64
	rejQueueFull, rejDeadline, rejShutdown atomic.Uint64
	handoffs, probes, registrySyncs        atomic.Uint64
	latency                                *latencyRecorder
	queueWait                              *latencyRecorder
	evalLatency                            *latencyRecorder
	batchMu                                sync.Mutex
	batchSizes                             map[int]uint64

	// execHook, when non-nil, runs inside every evaluation; tests use it to
	// make execution observably slow without touching kernels.
	execHook func()
}

// New validates the configuration and builds a server. Executors start on
// the first Serve call.
func New(cfg Config) (*Server, error) {
	if cfg.Compiled == nil {
		return nil, errors.New("serve: Config.Compiled is required")
	}
	if cfg.Compiled.Options.Scheme != core.SchemeRNS {
		return nil, fmt.Errorf("serve: scheme %v is not servable (no transferable keys); compile for core.SchemeRNS",
			cfg.Compiled.Options.Scheme)
	}
	cfg.fillDefaults()
	params, err := core.RNSParameters(cfg.Compiled)
	if err != nil {
		return nil, err
	}
	capacity := cfg.Compiled.Best.Batch
	if capacity < 1 {
		capacity = 1
	}
	if cfg.MaxBatch > capacity {
		return nil, fmt.Errorf("serve: MaxBatch %d exceeds the compiled batch capacity %d; recompile with Options.Batch >= MaxBatch",
			cfg.MaxBatch, capacity)
	}
	in := cfg.Compiled.Circuit.Input.OutShape
	s := &Server{
		cfg:         cfg,
		params:      params,
		fingerprint: cfg.Compiled.Fingerprint(),
		wantMeta:    htc.NewLayout(cfg.Compiled.Plan(), in[0], in[1], in[2], params.Slots()),
		reg:         newRegistry(cfg.MaxSessions),
		jobs:        make(chan *batchJob, cfg.QueueDepth),
		quit:        make(chan struct{}),
		conns:       map[net.Conn]struct{}{},
		latency:     newLatencyRecorder(),
		queueWait:   newLatencyRecorder(),
		evalLatency: newLatencyRecorder(),
		batchSizes:  map[int]uint64{},
		fleet:       newFleetStore(),
	}
	s.selfEntry = wire.RegistryEntry{
		Fingerprint: s.fingerprint,
		Model:       cfg.Compiled.Circuit.Name,
		LogN:        uint32(cfg.Compiled.Best.LogN),
		Batch:       uint32(capacity),
	}
	s.fleet.merge([]wire.RegistryEntry{s.selfEntry})
	if cfg.MaxBatch > 1 {
		bc := batch.Config{MaxBatch: cfg.MaxBatch, MaxWait: cfg.BatchWait}
		if cfg.BatchAdaptive {
			bc.WaitFor = s.adaptiveWait
		}
		s.coal = batch.New[uint64, *job](bc, s.enqueueBatch)
	}
	return s, nil
}

// Fingerprint returns the compiled-circuit fingerprint this server demands
// at session-open.
func (s *Server) Fingerprint() [32]byte { return s.fingerprint }

// Serve accepts connections on ln until Shutdown (or a listener error).
// It always returns a non-nil error; after a clean Shutdown the error is
// net.ErrClosed-wrapped and can be ignored.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return errors.New("serve: server already shut down")
	}
	s.ln = ln
	if !s.started {
		s.started = true
		s.execWG.Add(s.cfg.Parallel)
		for i := 0; i < s.cfg.Parallel; i++ {
			go s.executor()
		}
	}
	s.mu.Unlock()
	s.cfg.Logf("serve: listening on %v (model %q, N=2^%d, %d-deep queue, %d executor(s) x %d worker(s))",
		ln.Addr(), s.cfg.Compiled.Circuit.Name, s.cfg.Compiled.Best.LogN,
		s.cfg.QueueDepth, s.cfg.Parallel, s.cfg.Workers)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		if s.shutdown || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: new sessions and requests are rejected with
// shutting-down error frames, in-flight (queued or executing) requests run
// to completion and their responses are delivered, then connections close.
// If ctx expires first, remaining queued jobs are answered with
// shutting-down errors and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	ln := s.ln
	s.mu.Unlock()

	s.draining.Store(true)
	if ln != nil {
		ln.Close()
	}
	// Flush partial batches held by the coalescer into the queue so the
	// drain below covers them; handlers racing this see ErrClosed on Add
	// and reject their request as shutting-down.
	if s.coal != nil {
		s.coal.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Stop executors. On the forced path they first answer whatever is
	// still queued with shutting-down errors so no handler blocks forever.
	close(s.quit)
	s.execWG.Wait()

	// A handler racing the drain could still admit one last job after the
	// executors exit; a reaper answers anything that slips through until
	// every handler has returned.
	reaperDone := make(chan struct{})
	go func() {
		for {
			select {
			case bj := <-s.jobs:
				s.rejectBatchShutdown(bj)
			case <-reaperDone:
				return
			}
		}
	}()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	close(reaperDone)
	s.cfg.Logf("serve: shutdown complete (%d sessions served)", s.Metrics().SessionsOpened)
	return err
}

// Metrics snapshots server and per-session counters.
func (s *Server) Metrics() ServerMetrics {
	opened, evicted, active := s.reg.stats()
	m := ServerMetrics{
		SessionsOpened:    opened,
		SessionsEvicted:   evicted,
		SessionsActive:    active,
		Requests:          s.requests.Load(),
		Completed:         s.completed.Load(),
		Errors:            s.evalErrors.Load(),
		RejectedQueueFull: s.rejQueueFull.Load(),
		RejectedDeadline:  s.rejDeadline.Load(),
		RejectedShutdown:  s.rejShutdown.Load(),
		Inflight:          s.inflightN.Load(),
		Handoffs:          s.handoffs.Load(),
		HealthProbes:      s.probes.Load(),
		RegistrySyncs:     s.registrySyncs.Load(),
		RegistryModels:    s.fleet.size(),
		Latency:           s.latency.summary(),
		QueueWait:         s.queueWait.summary(),
		Evaluation:        s.evalLatency.summary(),
		BatchSizes:        map[int]uint64{},
	}
	m.Bootstraps, m.MinHeadroom, m.HeadroomKnown = s.budgetTelemetry()
	s.batchMu.Lock()
	for k, v := range s.batchSizes {
		m.BatchSizes[k] = v
	}
	s.batchMu.Unlock()
	for _, sess := range s.reg.sessions() {
		m.Sessions = append(m.Sessions, sess.metrics())
	}
	return m
}

// --- connection handling ---

// handleConn processes one client connection: frames are handled strictly
// in order, and this goroutine is the connection's only writer, so
// responses never interleave.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connWG.Done()
	}()

	writeErr := func(code wire.ErrorCode, reqID uint64, format string, args ...any) bool {
		msg := fmt.Sprintf(format, args...)
		payload, err := (&wire.ErrorFrame{Code: code, RequestID: reqID, Message: msg}).Encode()
		if err != nil {
			return false
		}
		return wire.WriteFrame(conn, wire.MsgError, payload) == nil
	}

	for {
		t, payload, err := wire.ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			// Clean EOF and closed connections end the handler silently; a
			// malformed frame earns a best-effort error frame first. Framing
			// is unrecoverable after a bad header, so the connection drops
			// either way.
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				writeErr(wire.CodeBadMessage, 0, "%v", err)
			}
			return
		}
		switch t {
		case wire.MsgSessionOpen:
			if !s.handleSessionOpen(conn, payload, writeErr) {
				return
			}
		case wire.MsgInferRequest:
			if !s.handleInfer(conn, payload, writeErr) {
				return
			}
		case wire.MsgInferBatchRequest:
			if !s.handleInferBatch(conn, payload, writeErr) {
				return
			}
		case wire.MsgHealthProbe:
			if !s.handleHealthProbe(conn, payload, writeErr) {
				return
			}
		case wire.MsgRegistrySync:
			if !s.handleRegistrySync(conn, payload, writeErr) {
				return
			}
		case wire.MsgSessionHandoff:
			if !s.handleSessionHandoff(conn, payload, writeErr) {
				return
			}
		case wire.MsgTraceDump:
			if !s.handleTraceDump(conn, payload, writeErr) {
				return
			}
		default:
			if !writeErr(wire.CodeBadMessage, 0, "unexpected %v frame", t) {
				return
			}
		}
	}
}

// handleSessionOpen validates keys and registers a session. Returns false
// when the connection is beyond use.
func (s *Server) handleSessionOpen(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	id, code, err := s.admitSession(payload)
	if err != nil {
		if code == wire.CodeShuttingDown {
			s.rejShutdown.Add(1)
		}
		return writeErr(code, 0, "session-open: %v", err)
	}
	accept, err := (&wire.SessionAccept{SessionID: id}).Encode()
	if err != nil {
		return writeErr(wire.CodeInternal, 0, "encoding accept: %v", err)
	}
	return wire.WriteFrame(conn, wire.MsgSessionAccept, accept) == nil
}

// admitSession validates a session-open payload and registers the session,
// returning the new session ID. It is the shared admission path for direct
// client opens and router-driven handoffs (which replay a stored session-open
// payload); on failure the returned code classifies the rejection.
func (s *Server) admitSession(payload []byte) (uint64, wire.ErrorCode, error) {
	if s.draining.Load() {
		return 0, wire.CodeShuttingDown, errors.New("server is draining")
	}
	var msg wire.SessionOpen
	if err := msg.Decode(payload); err != nil {
		return 0, wire.CodeBadMessage, err
	}
	if msg.Fingerprint != s.fingerprint {
		return 0, wire.CodeFingerprintMismatch, fmt.Errorf(
			"client compiled %x, server compiled %x; recompile with identical model and options",
			msg.Fingerprint[:8], s.fingerprint[:8])
	}
	keys := hisa.RNSPublicKeys{PK: msg.PK, RLK: msg.RLK, RTKS: msg.RTKS, Rotations: msg.Rotations}
	if err := hisa.ValidateRNSKeys(s.params, keys); err != nil {
		return 0, wire.CodeBadMessage, err
	}

	backend := hisa.NewRNSBackendFromKeys(s.params, keys, nil)
	// A bootstrap-compiled circuit evaluates through the refresh pipeline:
	// the session's backend gains a bootstrapper (built over the client's
	// shipped rotation keys, which NewClient provisions with the pipeline
	// amounts) and a Refresher realizing the compiler's placements.
	if bp := s.cfg.Compiled.BootPlan; bp != nil {
		if err := backend.EnableBootstrap(bp.Spec); err != nil {
			return 0, wire.CodeBadMessage, fmt.Errorf("enabling bootstrap: %w", err)
		}
	}
	slots := s.params.Slots()
	provisioned := make(map[int]bool, len(msg.Rotations))
	for _, k := range msg.Rotations {
		k = ((k % slots) + slots) % slots
		if k != 0 {
			provisioned[k] = true
		}
	}
	var inner hisa.Backend = backend
	var tracer *telemetry.Tracer
	if s.cfg.Trace {
		tracer = telemetry.NewTracer(backend, telemetry.Config{})
		inner = tracer
	}
	meter := hisa.NewMeter(inner, func(x int) int {
		return len(hisa.RotationSteps(x, slots, func(k int) bool { return provisioned[k] }))
	})
	var top hisa.Backend = meter
	var refresher *hisa.Refresher
	if bp := s.cfg.Compiled.BootPlan; bp != nil {
		rf, err := hisa.NewRefresher(meter, bp.Floor)
		if err != nil {
			return 0, wire.CodeInternal, fmt.Errorf("wrapping refresher: %w", err)
		}
		refresher, top = rf, rf
	}
	sess := &session{backend: top, meter: meter, tracer: tracer, refresher: refresher, latency: newLatencyRecorder()}
	id := s.reg.add(sess)
	s.cfg.Logf("serve: session %d opened (%d rotation keys)", id, len(msg.RTKS.Keys))
	return id, 0, nil
}

// handleHealthProbe answers a router's liveness probe with this worker's
// status. Probes are answered even while draining — Draining=true is exactly
// what tells the router to stop routing here while the drain completes.
func (s *Server) handleHealthProbe(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.HealthProbe
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "health-probe: %v", err)
	}
	s.probes.Add(1)
	_, _, active := s.reg.stats()
	boots, headroom, known := s.budgetTelemetry()
	ack := &wire.HealthAck{
		Nonce:          msg.Nonce,
		Fingerprint:    s.fingerprint,
		ActiveSessions: uint32(active),
		Inflight:       uint32(min(s.inflightN.Load(), int64(^uint32(0)))),
		Draining:       s.draining.Load(),
		Bootstraps:     boots,
		MinHeadroom:    headroom,
		HeadroomKnown:  known,
	}
	out, err := ack.Encode()
	if err != nil {
		return writeErr(wire.CodeInternal, 0, "encoding health-ack: %v", err)
	}
	return wire.WriteFrame(conn, wire.MsgHealthAck, out) == nil
}

// budgetTelemetry aggregates the live sessions' ciphertext-budget state:
// the cumulative bootstrap tally and the fleet-reportable low-water mark of
// levels above the refresh floor (known only once some session has run a
// multiplicative op).
func (s *Server) budgetTelemetry() (bootstraps uint64, minHeadroom int64, known bool) {
	minHeadroom = math.MaxInt64
	for _, sess := range s.reg.sessions() {
		if sess.refresher == nil {
			continue
		}
		bootstraps += uint64(sess.refresher.Bootstraps())
		if h, ok := sess.refresher.MinHeadroom(); ok {
			known = true
			if int64(h) < minHeadroom {
				minHeadroom = int64(h)
			}
		}
	}
	if !known {
		minHeadroom = 0
	}
	return bootstraps, minHeadroom, known
}

// handleTraceDump answers a trace-dump frame with this worker's retained
// spans: every traced session's ring, rebased onto one worker-wide epoch
// (the earliest session epoch) so the collector can merge workers onto a
// single timeline. An untraced server answers with an empty ring rather
// than an error — collection must not depend on configuration agreement.
func (s *Server) handleTraceDump(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.TraceDump
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "trace-dump: %v", err)
	}
	sessions := s.reg.sessions()
	var base time.Time
	for _, sess := range sessions {
		if sess.tracer == nil {
			continue
		}
		if e := sess.tracer.Epoch(); base.IsZero() || e.Before(base) {
			base = e
		}
	}
	var spans []telemetry.Span
	for _, sess := range sessions {
		if sess.tracer == nil {
			continue
		}
		shift := sess.tracer.Epoch().Sub(base)
		for _, sp := range telemetry.FilterTrace(sess.tracer.Snapshot(), msg.TraceID) {
			sp.Start += shift
			spans = append(spans, sp)
		}
	}
	// The wire codec caps a dump at 1<<17 spans; keep the newest if the
	// combined session rings exceed it (older spans wrapped anyway).
	const dumpCap = 1 << 17
	if len(spans) > dumpCap {
		spans = spans[len(spans)-dumpCap:]
	}
	if base.IsZero() {
		base = time.Now()
	}
	ack := &wire.TraceDumpAck{Process: s.cfg.ProcessLabel, EpochUnixNano: base.UnixNano(), Spans: spans}
	out, err := ack.Encode()
	if err != nil {
		return writeErr(wire.CodeInternal, 0, "encoding trace-dump-ack: %v", err)
	}
	return wire.WriteFrame(conn, wire.MsgTraceDumpAck, out) == nil
}

// handleRegistrySync merges the router's pushed registry view into this
// worker's replica and acks with the merged set (which always includes the
// model this worker itself serves), so a restarted router can rebuild the
// fleet-wide registry from any single worker.
func (s *Server) handleRegistrySync(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.RegistrySync
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "registry-sync: %v", err)
	}
	s.registrySyncs.Add(1)
	s.fleet.merge(msg.Entries)
	ack := &wire.RegistrySyncAck{Entries: s.fleet.snapshot()}
	out, err := ack.Encode()
	if err != nil {
		return writeErr(wire.CodeInternal, 0, "encoding registry-sync-ack: %v", err)
	}
	return wire.WriteFrame(conn, wire.MsgRegistrySyncAck, out) == nil
}

// handleSessionHandoff replays a router-stored session-open payload through
// the ordinary admission path and acks with the worker-local session ID the
// router must quote on relayed requests.
func (s *Server) handleSessionHandoff(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.SessionHandoff
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "session-handoff: %v", err)
	}
	id, code, err := s.admitSession(msg.Open)
	if err != nil {
		if code == wire.CodeShuttingDown {
			s.rejShutdown.Add(1)
		}
		return writeErr(code, msg.RouterSessionID, "session-handoff: %v", err)
	}
	s.handoffs.Add(1)
	s.cfg.Logf("serve: session %d admitted via handoff (router session %d)", id, msg.RouterSessionID)
	ack := &wire.SessionHandoffAck{RouterSessionID: msg.RouterSessionID, WorkerSessionID: id}
	out, err := ack.Encode()
	if err != nil {
		return writeErr(wire.CodeInternal, msg.RouterSessionID, "encoding handoff-ack: %v", err)
	}
	return wire.WriteFrame(conn, wire.MsgSessionHandoffAck, out) == nil
}

// handleInfer admits a request to the queue and relays its result. Returns
// false when the connection is beyond use.
func (s *Server) handleInfer(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.InferRequest
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "infer-request: %v", err)
	}
	if s.draining.Load() {
		s.rejShutdown.Add(1)
		return writeErr(wire.CodeShuttingDown, msg.RequestID, "server is draining")
	}
	sess, ok := s.reg.get(msg.SessionID)
	if !ok {
		return writeErr(wire.CodeUnknownSession, msg.RequestID,
			"session %d unknown or evicted; re-open", msg.SessionID)
	}
	if err := s.checkTensor(msg.Tensor); err != nil {
		sess.errors.Add(1)
		return writeErr(wire.CodeBadMessage, msg.RequestID, "infer-request: %v", err)
	}

	j := s.newJob(sess, msg.Tensor, msg.RequestID, msg.TraceID, msg.ParentSpan, msg.TimeoutMillis)

	// Admission: the queue never blocks the handler. Full queue means the
	// server is saturated past its configured buffer — reject now so the
	// client can back off, rather than letting latency grow unboundedly.
	// The inflight count is held by this handler until the response hits
	// the wire, so a graceful Shutdown never cuts a connection mid-reply.
	// With coalescing on, the request instead joins its session's pending
	// batch; queue-full is then decided at flush time (enqueueBatch).
	s.admitOne()
	if s.coal != nil {
		if err := s.coal.Add(msg.SessionID, j); err != nil {
			s.doneOne()
			s.rejShutdown.Add(1)
			return writeErr(wire.CodeShuttingDown, msg.RequestID, "server is draining")
		}
		s.requests.Add(1)
		sess.requests.Add(1)
	} else {
		select {
		case s.jobs <- &batchJob{items: []*job{j}}:
			s.requests.Add(1)
			sess.requests.Add(1)
		default:
			s.doneOne()
			s.rejQueueFull.Add(1)
			return writeErr(wire.CodeQueueFull, msg.RequestID,
				"admission queue full (%d deep); retry with backoff", s.cfg.QueueDepth)
		}
	}

	res := <-j.respond
	wrote := func() bool {
		if res.errf != nil {
			return writeErr(res.errf.Code, msg.RequestID, "%s", res.errf.Message)
		}
		resp := &wire.InferResponse{RequestID: msg.RequestID, TraceID: msg.TraceID, Tensor: res.tensor}
		if res.batch > 1 {
			resp.Batch = uint32(res.batch)
			resp.Lane = uint32(res.lane)
		} else {
			resp.Batch = 1
		}
		out, err := resp.Encode()
		if err != nil {
			return writeErr(wire.CodeInternal, msg.RequestID, "encoding response: %v", err)
		}
		return wire.WriteFrame(conn, wire.MsgInferResponse, out) == nil
	}()
	s.doneOne()
	return wrote
}

// admitOne/doneOne track admitted-but-unanswered requests twice over: the
// WaitGroup gates graceful shutdown, the atomic gauge feeds health acks and
// /metrics (a WaitGroup cannot be read without racing it).
func (s *Server) admitOne() {
	s.inflight.Add(1)
	s.inflightN.Add(1)
}

func (s *Server) doneOne() {
	s.inflightN.Add(-1)
	s.inflight.Done()
}

// newJob builds an admitted job with the effective deadline.
func (s *Server) newJob(sess *session, ct *htc.CipherTensor, reqID, traceID, parentSpan uint64, timeoutMillis uint32) *job {
	timeout := s.cfg.RequestTimeout
	if timeoutMillis != 0 {
		if t := time.Duration(timeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	now := time.Now()
	return &job{
		sess:       sess,
		tensor:     ct,
		reqID:      reqID,
		traceID:    traceID,
		parentSpan: parentSpan,
		arrived:    now,
		deadline:   now.Add(timeout),
		respond:    make(chan jobResult, 1),
	}
}

// enqueueBatch is the coalescer's flush callback: it moves one formed batch
// into the executor queue. A full queue rejects the whole batch — the same
// backpressure contract as the unbatched path, decided at flush time.
func (s *Server) enqueueBatch(_ uint64, items []*job) {
	select {
	case s.jobs <- &batchJob{items: items}:
	default:
		for _, j := range items {
			s.rejQueueFull.Add(1)
			j.respond <- jobResult{errf: &wire.ErrorFrame{
				Code: wire.CodeQueueFull, RequestID: j.reqID,
				Message: fmt.Sprintf("admission queue full (%d deep); retry with backoff", s.cfg.QueueDepth)}}
		}
	}
}

// handleInferBatch admits a client-packed batch request (one tensor, Count
// images in its leading lanes) directly to the queue — it is already a
// batch, so it bypasses the coalescer. Returns false when the connection is
// beyond use.
func (s *Server) handleInferBatch(conn net.Conn, payload []byte, writeErr func(wire.ErrorCode, uint64, string, ...any) bool) bool {
	var msg wire.InferBatchRequest
	if err := msg.Decode(payload); err != nil {
		return writeErr(wire.CodeBadMessage, 0, "infer-batch-request: %v", err)
	}
	if s.draining.Load() {
		s.rejShutdown.Add(1)
		return writeErr(wire.CodeShuttingDown, msg.RequestID, "server is draining")
	}
	sess, ok := s.reg.get(msg.SessionID)
	if !ok {
		return writeErr(wire.CodeUnknownSession, msg.RequestID,
			"session %d unknown or evicted; re-open", msg.SessionID)
	}
	if err := s.checkTensor(msg.Tensor); err != nil {
		sess.errors.Add(1)
		return writeErr(wire.CodeBadMessage, msg.RequestID, "infer-batch-request: %v", err)
	}
	if int(msg.Count) > s.wantMeta.Batches() {
		sess.errors.Add(1)
		return writeErr(wire.CodeBadMessage, msg.RequestID,
			"batch count %d exceeds compiled capacity %d", msg.Count, s.wantMeta.Batches())
	}

	j := s.newJob(sess, msg.Tensor, msg.RequestID, msg.TraceID, msg.ParentSpan, msg.TimeoutMillis)
	s.admitOne()
	select {
	case s.jobs <- &batchJob{items: []*job{j}}:
		s.requests.Add(1)
		sess.requests.Add(1)
	default:
		s.doneOne()
		s.rejQueueFull.Add(1)
		return writeErr(wire.CodeQueueFull, msg.RequestID,
			"admission queue full (%d deep); retry with backoff", s.cfg.QueueDepth)
	}

	res := <-j.respond
	wrote := func() bool {
		if res.errf != nil {
			return writeErr(res.errf.Code, msg.RequestID, "%s", res.errf.Message)
		}
		out, err := (&wire.InferBatchResponse{
			RequestID: msg.RequestID, TraceID: msg.TraceID, Count: msg.Count, Tensor: res.tensor}).Encode()
		if err != nil {
			return writeErr(wire.CodeInternal, msg.RequestID, "encoding response: %v", err)
		}
		return wire.WriteFrame(conn, wire.MsgInferBatchResponse, out) == nil
	}()
	s.doneOne()
	return wrote
}

// checkTensor validates a network-received tensor against this server's
// parameters before any kernel touches it. Geometry must match the compiled
// input layout exactly — coalescing adds ciphertexts of different requests
// together, so admitting "close enough" layouts would corrupt batch-mates.
func (s *Server) checkTensor(ct *htc.CipherTensor) error {
	if ct == nil {
		return errors.New("missing tensor")
	}
	slots := s.params.Slots()
	if err := ct.Validate(slots); err != nil {
		return err
	}
	w := &s.wantMeta
	laneOf := func(c *htc.CipherTensor) int {
		if c.BatchStride > 0 {
			return c.BatchStride
		}
		return slots
	}
	if ct.Layout != w.Layout || ct.C != w.C || ct.H != w.H || ct.W != w.W ||
		ct.Offset != w.Offset || ct.RowStride != w.RowStride ||
		ct.ColStride != w.ColStride || ct.ChanStride != w.ChanStride ||
		ct.CPerCT != w.CPerCT || ct.Batches() != w.Batches() || laneOf(ct) != laneOf(w) {
		return fmt.Errorf("tensor geometry %dx%dx%d (offset %d, strides %d/%d/%d, batch %dx%d) does not match the compiled input layout %dx%dx%d (offset %d, strides %d/%d/%d, batch %dx%d)",
			ct.C, ct.H, ct.W, ct.Offset, ct.RowStride, ct.ColStride, ct.ChanStride, ct.Batches(), laneOf(ct),
			w.C, w.H, w.W, w.Offset, w.RowStride, w.ColStride, w.ChanStride, w.Batches(), laneOf(w))
	}
	n := s.params.N()
	maxLvl := s.params.MaxLevel()
	wantScale := s.cfg.Compiled.Options.Scales.Pc
	for i, c := range ct.CTs {
		cc, ok := c.(*ckks.Ciphertext)
		if !ok {
			return fmt.Errorf("ciphertext %d has foreign type %T", i, c)
		}
		// Inputs are fresh encryptions: full level and the compiled input
		// scale. Both are cleartext metadata a poisoned request could lie
		// about; admitting either lie would feed the circuit (or a packed
		// batch-mate) silent garbage rather than a detectable failure.
		if cc.Lvl != maxLvl {
			return fmt.Errorf("ciphertext %d at level %d, fresh inputs are at level %d", i, cc.Lvl, maxLvl)
		}
		if diff := cc.Scale - wantScale; diff > 1e-6*wantScale || diff < -1e-6*wantScale {
			return fmt.Errorf("ciphertext %d at scale %g, compiled input scale is %g", i, cc.Scale, wantScale)
		}
		for _, p := range []*htcPoly{{cc.C0, "c0"}, {cc.C1, "c1"}} {
			if p.p == nil || len(p.p.Coeffs) != cc.Lvl+1 {
				return fmt.Errorf("ciphertext %d %s has wrong RNS row count", i, p.name)
			}
			for _, row := range p.p.Coeffs {
				if len(row) != n {
					return fmt.Errorf("ciphertext %d %s row length %d, ring degree %d", i, p.name, len(row), n)
				}
			}
		}
	}
	return nil
}

// --- execution ---

// executor drains the admission queue. After quit it answers any remaining
// queued batches with shutting-down errors (forced-shutdown path) and exits.
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		select {
		case bj := <-s.jobs:
			s.runBatch(bj)
		case <-s.quit:
			for {
				select {
				case bj := <-s.jobs:
					s.rejectBatchShutdown(bj)
				default:
					return
				}
			}
		}
	}
}

// rejectBatchShutdown answers every request of a queued batch with a
// shutting-down error frame.
func (s *Server) rejectBatchShutdown(bj *batchJob) {
	for _, j := range bj.items {
		s.rejShutdown.Add(1)
		j.respond <- jobResult{errf: &wire.ErrorFrame{
			Code: wire.CodeShuttingDown, RequestID: j.reqID,
			Message: "server shut down before the request ran"}}
	}
}

// runBatch evaluates one admitted batch, enforcing each request's deadline at
// the two points the engine controls: before starting (queue expiry) and
// after finishing (evaluation overrun). A homomorphic evaluation cannot be
// preempted mid-circuit, so an overrunning result is discarded rather than
// returned late.
//
// Multi-request batches (all from one session, formed by the coalescer) are
// packed homomorphically into one ciphertext and evaluated once. If packing
// or the packed evaluation fails — the designed failure mode for a request
// whose ciphertexts arrive scale-poisoned, since PackBatch adds strictly —
// the batch falls back to evaluating each request alone, so only the
// poisoned request fails and its batch-mates still get answers.
func (s *Server) runBatch(bj *batchJob) {
	now := time.Now()
	live := bj.items[:0]
	for _, j := range bj.items {
		if !now.Before(j.deadline) {
			s.rejDeadline.Add(1)
			j.sess.errors.Add(1)
			j.respond <- jobResult{errf: &wire.ErrorFrame{
				Code: wire.CodeDeadlineExceeded, RequestID: j.reqID,
				Message: fmt.Sprintf("deadline expired after %v in queue", time.Since(j.arrived).Round(time.Millisecond))}}
			continue
		}
		s.queueWait.record(now.Sub(j.arrived))
		// The queue-wait span attaches under the request's upstream span
		// (client call or router relay), so the merged trace shows time
		// spent queued apart from time spent evaluating.
		if j.sess.tracer != nil {
			j.sess.tracer.RecordManual(telemetry.KindOp, "queue-wait",
				j.arrived, now.Sub(j.arrived), j.traceID, 0, j.parentSpan)
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	s.batchMu.Lock()
	s.batchSizes[len(live)]++
	s.batchMu.Unlock()

	if s.cfg.Trace {
		s.cfg.Logf("serve: session %d dispatching batch of %d [%s]",
			live[0].sess.id, len(live), traceList(live))
	}
	s.cfg.Logger.Debug("dispatch",
		"trace_id", fmt.Sprintf("%016x", live[0].traceID),
		"session", live[0].sess.id, "batch", len(live))
	if len(live) == 1 {
		j := live[0]
		out, err := s.evaluateTimed(j.sess, j.tensor, evalLabel(live), j.traceID, j.parentSpan)
		s.finish(j, out, err, 1, 0)
		return
	}

	sess := live[0].sess // coalescing is keyed by session; all items share it
	// A coalesced evaluation is one flush of the batch collector; the span
	// covers the window from the earliest admission to dispatch.
	if sess.tracer != nil {
		earliest := live[0].arrived
		for _, j := range live[1:] {
			if j.arrived.Before(earliest) {
				earliest = j.arrived
			}
		}
		sess.tracer.RecordManual(telemetry.KindOp, "batch-flush",
			earliest, now.Sub(earliest), live[0].traceID, 0, live[0].parentSpan)
	}
	tensors := make([]*htc.CipherTensor, len(live))
	for i, j := range live {
		tensors[i] = j.tensor
	}
	packed, err := s.pack(sess, tensors)
	if err == nil {
		var out *htc.CipherTensor
		out, err = s.evaluateTimed(sess, packed, evalLabel(live), live[0].traceID, live[0].parentSpan)
		if err == nil {
			for i, j := range live {
				s.finish(j, out, nil, len(live), i)
			}
			return
		}
	}
	s.cfg.Logf("serve: batch of %d failed (%v); isolating — retrying requests individually [%s]",
		len(live), err, traceList(live))
	for _, j := range live {
		out, err := s.evaluateTimed(j.sess, j.tensor, evalLabel([]*job{j}), j.traceID, j.parentSpan)
		s.finish(j, out, err, 1, 0)
	}
}

// traceList renders the wire trace IDs of a batch's requests for log lines,
// in admission order, so a client-held trace ID finds its batch assignment.
func traceList(items []*job) string {
	var sb strings.Builder
	for i, j := range items {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "trace=%016x", j.traceID)
	}
	return sb.String()
}

// evalLabel names one evaluation's tracer scope after the requests it
// serves, correlating client trace IDs with the spans recorded under it.
func evalLabel(items []*job) string {
	return "infer " + traceList(items)
}

// finish delivers one request's result, applying the post-evaluation
// deadline check and recording completion metrics.
func (s *Server) finish(j *job, out *htc.CipherTensor, err error, batchSize, lane int) {
	switch {
	case err != nil:
		s.evalErrors.Add(1)
		j.sess.errors.Add(1)
		s.cfg.Logger.Warn("evaluation failed",
			"trace_id", fmt.Sprintf("%016x", j.traceID), "request", j.reqID, "err", err.Error())
		j.respond <- jobResult{errf: &wire.ErrorFrame{
			Code: wire.CodeInternal, RequestID: j.reqID, Message: err.Error()}}
	case !time.Now().Before(j.deadline):
		s.rejDeadline.Add(1)
		j.sess.errors.Add(1)
		j.respond <- jobResult{errf: &wire.ErrorFrame{
			Code: wire.CodeDeadlineExceeded, RequestID: j.reqID,
			Message: fmt.Sprintf("evaluation finished %v past the deadline", time.Since(j.deadline).Round(time.Millisecond))}}
	default:
		d := time.Since(j.arrived)
		s.completed.Add(1)
		s.latency.record(d)
		j.sess.latency.record(d)
		s.cfg.Logger.Debug("completed",
			"trace_id", fmt.Sprintf("%016x", j.traceID), "request", j.reqID,
			"batch", batchSize, "dur", d.Round(time.Microsecond))
		j.respond <- jobResult{tensor: out, batch: batchSize, lane: lane}
	}
}

// evaluateTimed wraps evaluate with the evaluation-latency recorder (one
// sample per circuit execution, however many requests it serves).
func (s *Server) evaluateTimed(sess *session, in *htc.CipherTensor, label string, traceID, parent uint64) (*htc.CipherTensor, error) {
	start := time.Now()
	out, err := s.evaluate(sess, in, label, traceID, parent)
	s.evalLatency.record(time.Since(start))
	return out, err
}

// pack combines the single-lane tensors of coalesced requests into one
// batched ciphertext, converting PackBatch's strict-failure panics (the
// poison-isolation trip wire) into errors.
func (s *Server) pack(sess *session, ts []*htc.CipherTensor) (out *htc.CipherTensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("packing failed: %v", r)
		}
	}()
	return htc.PackBatch(sess.backend, ts), nil
}

// evaluate runs the compiled circuit on the session's backend, converting
// kernel panics (the trusted-path failure mode for inconsistent data) into
// errors: a hostile request must never take the server down.
func (s *Server) evaluate(sess *session, in *htc.CipherTensor, label string, traceID, parent uint64) (out *htc.CipherTensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("evaluation failed: %v", r)
		}
	}()
	if sess.tracer != nil {
		// The request-level scope, carrying the wire trace context so every
		// span recorded under it (ops, bootstrap stages, nested scopes)
		// joins the distributed trace under the upstream relay span. The
		// executor nests one scope per circuit node under it. Closed via
		// defer so a recovered kernel panic still unwinds the span.
		closeScope, _ := sess.tracer.StartScopeCtx(label, traceID, parent)
		defer closeScope()
	}
	// A bootstrap-compiled circuit starts at the compiler's fresh level:
	// clients send full-level encryptions (checkTensor demands them), so the
	// inputs are dropped exactly as Refresher.Encrypt drops local ones. The
	// dropped copies are Refresher-owned intermediates, freed after the run.
	if sess.refresher != nil {
		fresh := *in
		fresh.CTs = make([]hisa.Ciphertext, len(in.CTs))
		for i, c := range in.CTs {
			fresh.CTs[i] = sess.refresher.DropToFresh(c)
		}
		defer func() {
			for _, c := range fresh.CTs {
				sess.backend.Free(c)
			}
		}()
		in = &fresh
	}
	if s.execHook != nil {
		s.execHook()
	}
	if s.cfg.ExecDelay > 0 {
		time.Sleep(s.cfg.ExecDelay)
	}
	comp := s.cfg.Compiled
	execOpts := htc.ExecOptions{Workers: s.cfg.Workers}
	if comp.ScalePlan != nil {
		execOpts.Scale = htc.PlanPolicy{Plan: comp.ScalePlan}
	}
	out = htc.ExecuteOpts(sess.backend, comp.Circuit, in, comp.Best.Policy,
		comp.Options.Scales, execOpts)
	return out, nil
}

// htcPoly pairs a polynomial with its name for checkTensor diagnostics.
type htcPoly struct {
	p    *ring.Poly
	name string
}
