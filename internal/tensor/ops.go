package tensor

import "fmt"

// Conv2D computes a 2-D cross-correlation of a CHW input with OIHW filters,
// using the given stride and symmetric zero padding, producing a CHW output.
// This matches the semantics of the conv2d tensor operation in the CHET DSL.
func Conv2D(input, filters *Tensor, stride, pad int) *Tensor {
	if input.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Conv2D input must be CHW, got %v", input.Shape))
	}
	if filters.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D filters must be OIHW, got %v", filters.Shape))
	}
	cin, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	cout, fcin, kh, kw := filters.Shape[0], filters.Shape[1], filters.Shape[2], filters.Shape[3]
	if fcin != cin {
		panic(fmt.Sprintf("tensor: filter input channels %d != input channels %d", fcin, cin))
	}
	hout := (h+2*pad-kh)/stride + 1
	wout := (w+2*pad-kw)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic("tensor: Conv2D output would be empty")
	}
	out := New(cout, hout, wout)
	for oc := 0; oc < cout; oc++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				acc := 0.0
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							acc += input.At(ic, iy, ix) * filters.At(oc, ic, ky, kx)
						}
					}
				}
				out.Set(acc, oc, oy, ox)
			}
		}
	}
	return out
}

// MatVec computes weights * x + bias for a [out, in] weight matrix, a
// flattened input of length in, and a bias of length out (bias may be nil).
func MatVec(weights *Tensor, x *Tensor, bias *Tensor) *Tensor {
	if weights.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatVec weights must be 2-D, got %v", weights.Shape))
	}
	outDim, inDim := weights.Shape[0], weights.Shape[1]
	if x.Size() != inDim {
		panic(fmt.Sprintf("tensor: MatVec input size %d != weights columns %d", x.Size(), inDim))
	}
	if bias != nil && bias.Size() != outDim {
		panic(fmt.Sprintf("tensor: bias size %d != output size %d", bias.Size(), outDim))
	}
	out := New(outDim)
	for o := 0; o < outDim; o++ {
		acc := 0.0
		row := weights.Data[o*inDim : (o+1)*inDim]
		for i, wv := range row {
			acc += wv * x.Data[i]
		}
		if bias != nil {
			acc += bias.Data[o]
		}
		out.Data[o] = acc
	}
	return out
}

// AvgPool2D applies average pooling with the given window and stride to a
// CHW tensor (valid padding).
func AvgPool2D(input *Tensor, window, stride int) *Tensor {
	if input.Rank() != 3 {
		panic(fmt.Sprintf("tensor: AvgPool2D input must be CHW, got %v", input.Shape))
	}
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	hout := (h-window)/stride + 1
	wout := (w-window)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic("tensor: AvgPool2D output would be empty")
	}
	inv := 1.0 / float64(window*window)
	out := New(c, hout, wout)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				acc := 0.0
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						acc += input.At(ic, oy*stride+ky, ox*stride+kx)
					}
				}
				out.Set(acc*inv, ic, oy, ox)
			}
		}
	}
	return out
}

// GlobalAvgPool2D averages each channel of a CHW tensor to a single value.
func GlobalAvgPool2D(input *Tensor) *Tensor {
	if input.Rank() != 3 {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2D input must be CHW, got %v", input.Shape))
	}
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	inv := 1.0 / float64(h*w)
	out := New(c)
	for ic := 0; ic < c; ic++ {
		acc := 0.0
		for i := 0; i < h*w; i++ {
			acc += input.Data[ic*h*w+i]
		}
		out.Data[ic] = acc * inv
	}
	return out
}

// PolyActivation applies the HE-compatible learnable activation
// f(x) = a*x^2 + b*x elementwise (the paper's replacement for ReLU).
func PolyActivation(input *Tensor, a, b float64) *Tensor {
	out := input.Clone()
	for i, v := range out.Data {
		out.Data[i] = a*v*v + b*v
	}
	return out
}

// AddBiasPerChannel adds bias[c] to every element of channel c of a CHW
// tensor.
func AddBiasPerChannel(input, bias *Tensor) *Tensor {
	if input.Rank() != 3 || bias.Size() != input.Shape[0] {
		panic("tensor: AddBiasPerChannel shape mismatch")
	}
	out := input.Clone()
	hw := input.Shape[1] * input.Shape[2]
	for c := 0; c < input.Shape[0]; c++ {
		b := bias.Data[c]
		for i := 0; i < hw; i++ {
			out.Data[c*hw+i] += b
		}
	}
	return out
}

// BatchNorm applies per-channel affine normalization y = g[c]*x + h[c]
// (inference-time batch normalization folded into scale and shift).
func BatchNorm(input, gamma, beta *Tensor) *Tensor {
	if input.Rank() != 3 || gamma.Size() != input.Shape[0] || beta.Size() != input.Shape[0] {
		panic("tensor: BatchNorm shape mismatch")
	}
	out := input.Clone()
	hw := input.Shape[1] * input.Shape[2]
	for c := 0; c < input.Shape[0]; c++ {
		g, b := gamma.Data[c], beta.Data[c]
		for i := 0; i < hw; i++ {
			out.Data[c*hw+i] = g*out.Data[c*hw+i] + b
		}
	}
	return out
}

// Add returns the elementwise sum of equal-shaped tensors.
func Add(a, b *Tensor) *Tensor {
	if a.Size() != b.Size() {
		panic("tensor: Add size mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// ConcatChannels concatenates CHW tensors along the channel axis; all inputs
// must share H and W.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels needs at least one input")
	}
	h, w := ts[0].Shape[1], ts[0].Shape[2]
	totalC := 0
	for _, t := range ts {
		if t.Rank() != 3 || t.Shape[1] != h || t.Shape[2] != w {
			panic("tensor: ConcatChannels shape mismatch")
		}
		totalC += t.Shape[0]
	}
	out := New(totalC, h, w)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += t.Size()
	}
	return out
}

// Pad2D zero-pads a CHW tensor symmetrically by pad on each spatial side.
func Pad2D(input *Tensor, pad int) *Tensor {
	if input.Rank() != 3 {
		panic("tensor: Pad2D input must be CHW")
	}
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	out := New(c, h+2*pad, w+2*pad)
	for ic := 0; ic < c; ic++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set(input.At(ic, y, x), ic, y+pad, x+pad)
			}
		}
	}
	return out
}

// FLOP counters used by the Table 3 reproduction.

// Conv2DFlops counts multiply-add operations (as 2 FLOPs each) of a conv.
func Conv2DFlops(cin, h, w, cout, kh, kw, stride, pad int) int64 {
	hout := (h+2*pad-kh)/stride + 1
	wout := (w+2*pad-kw)/stride + 1
	return 2 * int64(cout) * int64(hout) * int64(wout) * int64(cin) * int64(kh) * int64(kw)
}

// MatVecFlops counts FLOPs of a dense layer.
func MatVecFlops(in, out int) int64 { return 2 * int64(in) * int64(out) }

// PolyActivationFlops counts FLOPs of the square activation (x*x, *a, *b,
// add = 4 per element).
func PolyActivationFlops(elems int) int64 { return 4 * int64(elems) }

// AvgPool2DFlops counts FLOPs of average pooling.
func AvgPool2DFlops(c, h, w, window, stride int) int64 {
	hout := (h-window)/stride + 1
	wout := (w-window)/stride + 1
	return int64(c) * int64(hout) * int64(wout) * int64(window*window+1)
}
