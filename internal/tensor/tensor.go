// Package tensor provides the dense plaintext tensors and reference
// neural-network kernels used by CHET as the unencrypted inference engine:
// the functional specification that homomorphic kernels are validated
// against, the engine behind profile-guided scale selection, and the source
// of the floating-point operation counts reported in the evaluation.
package tensor

import "fmt"

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	size := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		size *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, size)}
}

// FromData wraps data with a shape, validating the element count.
func FromData(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...)}
	size := 1
	for _, d := range shape {
		size *= d
	}
	if size != len(data) {
		panic(fmt.Sprintf("tensor: %d elements do not fit shape %v", len(data), shape))
	}
	t.Data = data
	return t
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]float64(nil), t.Data...),
	}
}

// Reshape returns a view-copy with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	size := 1
	for _, d := range shape {
		size *= d
	}
	if size != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// index computes the flat offset of a multi-index.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set writes the element at the multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest element.
func (t *Tensor) ArgMax() int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
