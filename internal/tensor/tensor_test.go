package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAndIndexing(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Size() != 24 || tt.Rank() != 3 {
		t.Fatalf("size/rank wrong: %d/%d", tt.Size(), tt.Rank())
	}
	tt.Set(5, 1, 2, 3)
	if tt.At(1, 2, 3) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if tt.Data[1*12+2*4+3] != 5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexOutOfBoundsPanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.At(2, 0)
}

func TestFromDataAndReshape(t *testing.T) {
	tt := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := tt.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Fatal("reshape changed element order")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	tt.Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromData([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	// 1x1 identity filter.
	f := FromData([]float64{1}, 1, 1, 1, 1)
	out := Conv2D(in, f, 1, 0)
	for i := range in.Data {
		if !almostEqual(out.Data[i], in.Data[i]) {
			t.Fatal("1x1 identity conv changed values")
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 averaging filter, valid padding.
	in := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	f := FromData([]float64{0.25, 0.25, 0.25, 0.25}, 1, 1, 2, 2)
	out := Conv2D(in, f, 1, 0)
	want := []float64{3, 4, 6, 7} // window means
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("output shape %v", out.Shape)
	}
	for i, w := range want {
		if !almostEqual(out.Data[i], w) {
			t.Fatalf("conv[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = 1
	}
	f := FromData([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	// Same padding, stride 1: corners see 4 ones, centers see 9.
	out := Conv2D(in, f, 1, 1)
	if out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("same-pad output shape %v", out.Shape)
	}
	if !almostEqual(out.At(0, 0, 0), 4) || !almostEqual(out.At(0, 1, 1), 9) {
		t.Fatalf("padding semantics wrong: corner %g center %g", out.At(0, 0, 0), out.At(0, 1, 1))
	}
	// Stride 2.
	out2 := Conv2D(in, f, 2, 1)
	if out2.Shape[1] != 2 || out2.Shape[2] != 2 {
		t.Fatalf("strided output shape %v", out2.Shape)
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels, filter sums them; one output channel.
	in := New(2, 2, 2)
	for i := range in.Data {
		in.Data[i] = float64(i + 1)
	}
	f := FromData([]float64{1, 1}, 1, 2, 1, 1)
	out := Conv2D(in, f, 1, 0)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			want := in.At(0, y, x) + in.At(1, y, x)
			if !almostEqual(out.At(0, y, x), want) {
				t.Fatal("multi-channel conv sum wrong")
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	w := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromData([]float64{1, 1, 1}, 3)
	bias := FromData([]float64{10, 20}, 2)
	out := MatVec(w, x, bias)
	if !almostEqual(out.Data[0], 16) || !almostEqual(out.Data[1], 35) {
		t.Fatalf("MatVec got %v", out.Data)
	}
	out = MatVec(w, x, nil)
	if !almostEqual(out.Data[0], 6) || !almostEqual(out.Data[1], 15) {
		t.Fatalf("MatVec no-bias got %v", out.Data)
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 4, 4)
	out := AvgPool2D(in, 2, 2)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if !almostEqual(out.Data[i], w) {
			t.Fatalf("pool[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := FromData([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	out := GlobalAvgPool2D(in)
	if !almostEqual(out.Data[0], 2.5) || !almostEqual(out.Data[1], 25) {
		t.Fatalf("global pool got %v", out.Data)
	}
}

func TestPolyActivation(t *testing.T) {
	in := FromData([]float64{-1, 0, 2}, 3)
	out := PolyActivation(in, 0.5, 1)
	want := []float64{0.5*1 - 1, 0, 0.5*4 + 2}
	for i, w := range want {
		if !almostEqual(out.Data[i], w) {
			t.Fatalf("act[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestBatchNormAndBias(t *testing.T) {
	in := FromData([]float64{1, 2, 3, 4}, 2, 1, 2)
	gamma := FromData([]float64{2, 3}, 2)
	beta := FromData([]float64{1, -1}, 2)
	out := BatchNorm(in, gamma, beta)
	want := []float64{3, 5, 8, 11}
	for i, w := range want {
		if !almostEqual(out.Data[i], w) {
			t.Fatalf("bn[%d] = %g, want %g", i, out.Data[i], w)
		}
	}

	out = AddBiasPerChannel(in, FromData([]float64{10, 20}, 2))
	want = []float64{11, 12, 23, 24}
	for i, w := range want {
		if !almostEqual(out.Data[i], w) {
			t.Fatalf("bias[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestConcatChannels(t *testing.T) {
	a := FromData([]float64{1, 2, 3, 4}, 1, 2, 2)
	b := FromData([]float64{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2)
	out := ConcatChannels(a, b)
	if out.Shape[0] != 3 {
		t.Fatalf("concat channels = %d", out.Shape[0])
	}
	if out.At(0, 0, 0) != 1 || out.At(1, 0, 0) != 5 || out.At(2, 1, 1) != 12 {
		t.Fatal("concat values misplaced")
	}
}

func TestPad2D(t *testing.T) {
	in := FromData([]float64{1, 2, 3, 4}, 1, 2, 2)
	out := Pad2D(in, 1)
	if out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("pad shape %v", out.Shape)
	}
	if out.At(0, 0, 0) != 0 || out.At(0, 1, 1) != 1 || out.At(0, 2, 2) != 4 {
		t.Fatal("pad values misplaced")
	}
}

func TestAddProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		ta := FromData(a[:], 8)
		tb := FromData(b[:], 8)
		sum := Add(ta, tb)
		for i := range sum.Data {
			if sum.Data[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsAndArgMax(t *testing.T) {
	tt := FromData([]float64{-5, 2, 4, -1}, 4)
	if tt.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %g", tt.MaxAbs())
	}
	if tt.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", tt.ArgMax())
	}
}

func TestFlopCounters(t *testing.T) {
	// A 1-channel 3x3 input with one 2x2 filter: 4 output positions? No —
	// valid padding gives 2x2 outputs, each 4 MACs = 8 FLOPs, total 32.
	if got := Conv2DFlops(1, 3, 3, 1, 2, 2, 1, 0); got != 32 {
		t.Fatalf("Conv2DFlops = %d, want 32", got)
	}
	if got := MatVecFlops(10, 5); got != 100 {
		t.Fatalf("MatVecFlops = %d", got)
	}
	if got := PolyActivationFlops(7); got != 28 {
		t.Fatalf("PolyActivationFlops = %d", got)
	}
	if got := AvgPool2DFlops(1, 4, 4, 2, 2); got != 4*5 {
		t.Fatalf("AvgPool2DFlops = %d", got)
	}
}
