package htc

import (
	"math"
	"math/rand"
	"testing"

	"chet/internal/circuit"
	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
	"chet/internal/tensor"
)

func refBackend() hisa.Backend { return hisa.NewRefBackend(4096) }

func randTensor(shape []int, bound float64, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

func tensorsClose(t *testing.T, name string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d want %d (shapes %v vs %v)", name, got.Size(), want.Size(), got.Shape, want.Shape)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("%s: element %d = %g, want %g (err %g)", name, i, got.Data[i], want.Data[i],
				math.Abs(got.Data[i]-want.Data[i]))
		}
	}
}

func roundTrip(t *testing.T, layout Layout, apron int, in *tensor.Tensor,
	f func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor) *tensor.Tensor {
	t.Helper()
	b := refBackend()
	sc := DefaultScales()
	ct := EncryptTensor(b, in, Plan{Layout: layout, Apron: apron}, sc)
	out := f(b, ct, sc)
	res := DecryptTensor(b, out)
	if out.H == 1 && out.W > 1 && out.C == 1 {
		return res.Reshape(res.Size())
	}
	return res
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	in := randTensor([]int{3, 5, 4}, 2, 1)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 2, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor { return ct })
		tensorsClose(t, layout.String(), got, in, 1e-9)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	in := randTensor([]int{3, 8, 8}, 1, 2)
	filters := randTensor([]int{4, 3, 3, 3}, 0.5, 3)
	bias := randTensor([]int{4}, 0.2, 4)

	cases := []struct {
		name        string
		stride, pad int
	}{
		{"valid-s1", 1, 0},
		{"same-s1", 1, 1},
		{"valid-s2", 2, 0},
		{"same-s2", 2, 1},
	}
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		for _, tc := range cases {
			want := tensor.AddBiasPerChannel(tensor.Conv2D(in, filters, tc.stride, tc.pad), bias)
			got := roundTrip(t, layout, tc.pad, in,
				func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
					return Conv2D(b, ct, filters, bias, tc.stride, tc.pad, sc)
				})
			tensorsClose(t, layout.String()+"/"+tc.name, got, want, 1e-6)
		}
	}
}

func TestConv2DStacked(t *testing.T) {
	// Two convolutions in sequence exercise the strided-grid metadata.
	in := randTensor([]int{2, 9, 9}, 1, 5)
	f1 := randTensor([]int{3, 2, 3, 3}, 0.4, 6)
	f2 := randTensor([]int{2, 3, 2, 2}, 0.4, 7)
	want := tensor.Conv2D(tensor.Conv2D(in, f1, 2, 0), f2, 1, 0)

	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				c1 := Conv2D(b, ct, f1, nil, 2, 0, sc)
				return Conv2D(b, c1, f2, nil, 1, 0, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestAvgPool2DMatchesReference(t *testing.T) {
	in := randTensor([]int{3, 6, 6}, 1, 8)
	want := tensor.AvgPool2D(in, 2, 2)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				return AvgPool2D(b, ct, 2, 2, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestGlobalAvgPoolMatchesReference(t *testing.T) {
	for _, dims := range [][]int{{4, 4, 4}, {3, 5, 6}} {
		in := randTensor(dims, 1, 9)
		want := tensor.GlobalAvgPool2D(in)
		for _, layout := range []Layout{LayoutHW, LayoutCHW} {
			got := roundTrip(t, layout, 0, in,
				func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
					return GlobalAvgPool2D(b, ct, sc)
				})
			got = got.Reshape(got.Size())
			tensorsClose(t, layout.String(), got, want, 1e-6)
		}
	}
}

func TestActivationMatchesReference(t *testing.T) {
	in := randTensor([]int{2, 4, 4}, 1, 10)
	want := tensor.PolyActivation(in, 0.3, -0.7)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				return Activation(b, ct, 0.3, -0.7, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
	// Linear-only activation path.
	wantLin := tensor.PolyActivation(in, 0, 2)
	got := roundTrip(t, LayoutCHW, 0, in,
		func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
			return Activation(b, ct, 0, 2, sc)
		})
	tensorsClose(t, "linear", got, wantLin, 1e-6)
}

func TestBatchNormMatchesReference(t *testing.T) {
	in := randTensor([]int{4, 3, 3}, 1, 11)
	gamma := randTensor([]int{4}, 1, 12)
	beta := randTensor([]int{4}, 1, 13)
	want := tensor.BatchNorm(in, gamma, beta)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				return BatchNorm(b, ct, gamma, beta, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestAddAndConcat(t *testing.T) {
	x := randTensor([]int{4, 3, 3}, 1, 14)
	y := randTensor([]int{4, 3, 3}, 1, 15)
	wantSum := tensor.Add(x, y)
	wantCat := tensor.ConcatChannels(x, y)

	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		b := refBackend()
		sc := DefaultScales()
		plan := Plan{Layout: layout}
		cx := EncryptTensor(b, x, plan, sc)
		cy := EncryptTensor(b, y, plan, sc)
		gotSum := DecryptTensor(b, Add(b, cx, cy))
		tensorsClose(t, layout.String()+"/add", gotSum, wantSum, 1e-9)
		gotCat := DecryptTensor(b, Concat(b, sc, cx, cy))
		tensorsClose(t, layout.String()+"/concat", gotCat, wantCat, 1e-6)
	}
}

func TestConcatUnalignedCHW(t *testing.T) {
	// 3 channels with CPerCT 2 forces the mask-and-rotate slow path.
	b := hisa.NewRefBackend(64)
	sc := DefaultScales()
	x := randTensor([]int{3, 2, 2}, 1, 16)
	y := randTensor([]int{2, 2, 2}, 1, 17)
	plan := Plan{Layout: LayoutCHW}
	cx := EncryptTensor(b, x, plan, sc)
	cy := EncryptTensor(b, y, plan, sc)
	if cx.CPerCT < 2 {
		t.Skip("slot budget too small to pack channels")
	}
	got := DecryptTensor(b, Concat(b, sc, cx, cy))
	tensorsClose(t, "unaligned concat", got, tensor.ConcatChannels(x, y), 1e-6)
}

func TestDenseMatchesReference(t *testing.T) {
	in := randTensor([]int{2, 3, 3}, 1, 18)
	w := randTensor([]int{5, 18}, 0.5, 19)
	bias := randTensor([]int{5}, 0.2, 20)
	want := tensor.MatVec(w, in.Reshape(in.Size()), bias)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				return Dense(b, ct, w, bias, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestDenseAfterStridedConv(t *testing.T) {
	in := randTensor([]int{1, 6, 6}, 1, 21)
	f := randTensor([]int{2, 1, 3, 3}, 0.4, 22)
	w := randTensor([]int{3, 8}, 0.5, 23)
	conv := tensor.Conv2D(in, f, 2, 0) // 2x2x2
	want := tensor.MatVec(w, conv.Reshape(conv.Size()), nil)

	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				c := Conv2D(b, ct, f, nil, 2, 0, sc)
				return Dense(b, c, w, nil, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestPad2DIsFree(t *testing.T) {
	in := randTensor([]int{2, 3, 3}, 1, 24)
	want := tensor.Pad2D(in, 1)
	b := refBackend()
	sc := DefaultScales()
	m := hisa.NewMeter(b, nil)
	ct := EncryptTensor(m, in, Plan{Layout: LayoutCHW, Apron: 1}, sc)
	before := m.Counts().Total()
	out := Pad2D(ct, 1)
	if m.Counts().Total() != before {
		t.Fatal("Pad2D executed homomorphic operations; it must be metadata-only")
	}
	tensorsClose(t, "pad", DecryptTensor(m, out), want, 1e-9)
}

func TestLayoutConversions(t *testing.T) {
	in := randTensor([]int{4, 3, 3}, 1, 25)
	b := refBackend()
	sc := DefaultScales()
	hw := EncryptTensor(b, in, Plan{Layout: LayoutHW}, sc)
	chw := ToCHW(b, hw)
	if chw.Layout != LayoutCHW {
		t.Fatal("ToCHW did not change layout")
	}
	tensorsClose(t, "hw->chw", DecryptTensor(b, chw), in, 1e-9)
	back := ToHW(b, chw, sc)
	if back.Layout != LayoutHW || back.NumCTs() != 4 {
		t.Fatalf("ToHW produced layout %v with %d cts", back.Layout, back.NumCTs())
	}
	tensorsClose(t, "chw->hw", DecryptTensor(b, back), in, 1e-6)
}

// testCNN builds a LeNet-style circuit small enough for every backend.
func testCNN() (*circuit.Circuit, *tensor.Tensor) {
	b := circuit.NewBuilder("test-cnn")
	x := b.Input(1, 8, 8)
	f1 := randTensor([]int{2, 1, 3, 3}, 0.4, 30)
	x = b.Conv2D(x, f1, randTensor([]int{2}, 0.2, 31), 1, 1, "conv1")
	x = b.Activation(x, 0.2, 0.8, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1") // 2x4x4
	f2 := randTensor([]int{4, 2, 3, 3}, 0.4, 32)
	x = b.Conv2D(x, f2, nil, 1, 0, "conv2") // 4x2x2
	x = b.Activation(x, 0.2, 0.8, "act2")
	x = b.Flatten(x, "flat")
	x = b.Dense(x, randTensor([]int{10, 16}, 0.4, 33), randTensor([]int{10}, 0.2, 34), "fc1")
	x = b.Activation(x, 0.2, 0.8, "act3")
	x = b.Dense(x, randTensor([]int{3, 10}, 0.4, 35), nil, "fc2")
	c := b.Build(x)
	img := randTensor([]int{1, 8, 8}, 1, 36)
	return c, img
}

func TestExecuteAllPoliciesOnRef(t *testing.T) {
	c, img := testCNN()
	want := c.Evaluate(img)
	for _, policy := range AllPolicies {
		b := refBackend()
		sc := DefaultScales()
		in := EncryptTensor(b, img, PlanFor(c, policy), sc)
		out := Execute(b, c, in, policy, sc)
		got := DecryptTensor(b, out)
		got = got.Reshape(got.Size())
		tensorsClose(t, policy.String(), got, want, 1e-5)
	}
}

func TestRequiredApron(t *testing.T) {
	c, _ := testCNN()
	// conv1 has pad 1 at cumulative stride 1; conv2 has pad 0.
	if got := RequiredApron(c); got != 1 {
		t.Fatalf("RequiredApron = %d, want 1", got)
	}

	// Padded conv after a stride-2 pool needs a doubled apron.
	b := circuit.NewBuilder("deep-pad")
	x := b.Input(1, 8, 8)
	x = b.AvgPool2D(x, 2, 2, "pool")
	x = b.Conv2D(x, randTensor([]int{1, 1, 3, 3}, 1, 37), nil, 1, 1, "conv")
	c2 := b.Build(x)
	if got := RequiredApron(c2); got != 2 {
		t.Fatalf("RequiredApron = %d, want 2", got)
	}
}

func TestExecuteOnSimBackend(t *testing.T) {
	c, img := testCNN()
	want := c.Evaluate(img)
	b := hisa.NewSimBackend(hisa.SimParams{LogN: 13, LogQ: 900, Seed: 5})
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(30), Pu: math.Exp2(30), Pm: math.Exp2(25)}
	in := EncryptTensor(b, img, PlanFor(c, PolicyCHW), sc)
	out := Execute(b, c, in, PolicyCHW, sc)
	got := DecryptTensor(b, out)
	got = got.Reshape(got.Size())
	tensorsClose(t, "sim", got, want, 5e-2)
}

func TestExecuteOnRealRNSCKKS(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	c, img := testCNN()
	want := c.Evaluate(img)

	// The circuit performs 15 rescales (each conv/dense costs two: weights
	// plus mask; activations two; pooling one), so the chain needs 16
	// primes. Security is irrelevant for this functional test.
	logQ := []int{50}
	for i := 0; i < 15; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     logQ,
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(99)})
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40)}
	in := EncryptTensor(b, img, PlanFor(c, PolicyCHW), sc)
	out := Execute(b, c, in, PolicyCHW, sc)
	got := DecryptTensor(b, out)
	got = got.Reshape(got.Size())
	tensorsClose(t, "rns", got, want, 1e-2)
}
