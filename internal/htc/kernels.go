package htc

import (
	"fmt"
	"sync"

	"chet/internal/hisa"
	"chet/internal/tensor"
)

// accumulate adds t into acc, treating a nil acc as zero.
func accumulate(b hisa.Backend, acc, t hisa.Ciphertext) hisa.Ciphertext {
	if acc == nil {
		return t
	}
	x, y := alignScales(b, acc, t)
	return b.Add(x, y)
}

// rotCache caches rotations of one ciphertext by amount. It is safe for
// concurrent use: each rotation amount is computed exactly once
// (single-flight), so parallel workers sharing a cache never duplicate a
// rotation and the op count matches a serial run.
//
// A kernel that knows its rotation amounts up front registers them with
// planRotations; the first get then executes the whole plan as one
// RotLeftMany batch, which backends with the hisa.RotateManyBackend
// capability serve with one shared hoisted decomposition. Amounts outside
// the plan still take the lazy per-amount path. Because RotLeftMany is
// bit-identical to sequential RotLeft and the plan holds exactly the
// amounts the kernel draws, results and op counts are unchanged.
type rotCache struct {
	b    hisa.Backend
	base hisa.Ciphertext
	mu   sync.Mutex
	m    map[int]*rotEntry

	planned  []int
	planOnce sync.Once
}

type rotEntry struct {
	once sync.Once
	ct   hisa.Ciphertext
}

func newRotCache(b hisa.Backend, base hisa.Ciphertext) *rotCache {
	return &rotCache{b: b, base: base, m: map[int]*rotEntry{}}
}

// planRotations registers the amounts the kernel will request from this
// cache. Zero amounts and duplicates are dropped (get(0) is the base and
// the serial path computes each distinct amount once, so the batch must
// too). Must be called before the first get; later calls are ignored.
func (rc *rotCache) planRotations(ks []int) {
	seen := make(map[int]bool, len(ks))
	for _, k := range ks {
		if k == 0 || seen[k] {
			continue
		}
		seen[k] = true
		rc.planned = append(rc.planned, k)
	}
}

// runPlan executes the registered plan as one batch. It runs inside
// planOnce.Do, so every get blocks until the batch lands and no worker can
// race a per-amount computation against it (which would skew op counts).
func (rc *rotCache) runPlan() {
	if len(rc.planned) == 0 {
		return
	}
	if _, ok := rc.b.(hisa.RotateManyBackend); !ok {
		// No batch capability: stay lazy so unused plans (there are none
		// today, but the contract allows them) cost nothing.
		return
	}
	outs := hisa.RotLeftMany(rc.b, rc.base, rc.planned)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i, k := range rc.planned {
		e, ok := rc.m[k]
		if !ok {
			e = &rotEntry{}
			rc.m[k] = e
		}
		ct := outs[i]
		e.once.Do(func() { e.ct = ct })
	}
}

func (rc *rotCache) get(r int) hisa.Ciphertext {
	if r == 0 {
		return rc.base
	}
	rc.planOnce.Do(rc.runPlan)
	rc.mu.Lock()
	e, ok := rc.m[r]
	if !ok {
		e = &rotEntry{}
		rc.m[r] = e
	}
	rc.mu.Unlock()
	// The rotation runs outside the map lock so workers waiting on other
	// amounts aren't serialized behind it; Once guarantees one flight.
	e.once.Do(func() { e.ct = rc.b.RotLeft(rc.base, r) })
	return e.ct
}

// Conv2D computes a homomorphic convolution with plaintext OIHW filters,
// optional per-channel bias, stride, and symmetric zero padding. The output
// stays on the input's slot grid with strides multiplied by the conv stride
// (reshapes are metadata-only, performed lazily). Figure 4 of the paper is
// the HW instance of this kernel.
func Conv2D(b hisa.Backend, in *CipherTensor, filters, bias *tensor.Tensor, stride, pad int, sc Scales) *CipherTensor {
	return Conv2DOpts(b, in, filters, bias, stride, pad, sc, ExecOptions{})
}

// Conv2DOpts is Conv2D with an execution-options parameter: output channels
// are computed by opts.Workers goroutines and folded into the output in
// serial channel order, so the result is bit-identical to a serial run.
func Conv2DOpts(b hisa.Backend, in *CipherTensor, filters, bias *tensor.Tensor, stride, pad int, sc Scales, opts ExecOptions) *CipherTensor {
	if filters.Rank() != 4 || filters.Shape[1] != in.C {
		panic(fmt.Sprintf("htc: conv filters %v incompatible with input channels %d", filters.Shape, in.C))
	}
	cout, kh, kw := filters.Shape[0], filters.Shape[2], filters.Shape[3]
	hout := (in.H+2*pad-kh)/stride + 1
	wout := (in.W+2*pad-kw)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic("htc: conv output would be empty")
	}
	if pad > 0 && in.Offset < pad*(in.RowStride+in.ColStride) {
		panic(fmt.Sprintf("htc: conv padding %d exceeds the layout apron; recompile with a larger apron", pad))
	}

	out := metaClone(in)
	out.C = cout
	out.H, out.W = hout, wout
	out.RowStride = in.RowStride * stride
	out.ColStride = in.ColStride * stride

	rot := func(ky, kx int) int {
		return (ky-pad)*in.RowStride + (kx-pad)*in.ColStride
	}
	// Every filter tap's rotation amount, known before any rotation runs —
	// the hoisting opportunity of the conv kernel.
	amounts := make([]int, 0, kh*kw)
	for ky := 0; ky < kh; ky++ {
		for kx := 0; kx < kw; kx++ {
			amounts = append(amounts, rot(ky, kx))
		}
	}

	if in.Layout == LayoutHW {
		out.CPerCT = 1
		out.CTs = make([]hisa.Ciphertext, cout)
		caches := make([]*rotCache, in.C)
		for ic := range caches {
			caches[ic] = newRotCache(b, in.CTs[ic])
			caches[ic].planRotations(amounts)
		}
		mask := b.Encode(validMask(&out, 0, b.Slots(), 1), sc.Pm)
		parallelFor(opts.workers(), cout, func(oc int) {
			var acc hisa.Ciphertext
			for ic := 0; ic < in.C; ic++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						t := b.MulScalar(caches[ic].get(rot(ky, kx)), filters.At(oc, ic, ky, kx), sc.Pu)
						acc = accumulate(b, acc, t)
					}
				}
			}
			acc = opts.reduce(b, acc, sc.Pc)
			acc = b.MulPlain(acc, mask)
			acc = opts.reduce(b, acc, sc.Pc)
			if bias != nil {
				bv := validMask(&out, 0, b.Slots(), bias.Data[oc])
				acc = addVecBoth(b, out.Complex, acc, bv)
			}
			out.CTs[oc] = acc
		})
		out.validate(b.Slots())
		return &out
	}

	// CHW layout. Channel blocking is computed against one batch lane so the
	// fold and placement rotations below stay lane-local.
	outCPerCT := blockCapacity(in.laneStride(b.Slots()), in.ChanStride)
	out.CPerCT = outCPerCT
	numOutCTs := (cout + outCPerCT - 1) / outCPerCT
	out.CTs = make([]hisa.Ciphertext, numOutCTs)

	numInCTs := in.NumCTs()
	// The block-0 mask of the output grid, used to isolate the folded
	// channel sum before placing it at its output channel block.
	blockMask := metaClone(&out)
	blockMask.C = 1
	blockMask.CPerCT = 1
	mask := b.Encode(validMask(&blockMask, 0, b.Slots(), 1), sc.Pm)

	for g := 0; g < numInCTs; g++ {
		cache := newRotCache(b, in.CTs[g])
		cache.planRotations(amounts)
		// Partial sums of this ciphertext's occupied channels, folded to
		// block 0, masked, and placed at the output channel block.
		chInGroup := min(in.C-g*in.CPerCT, in.CPerCT)
		partial := make([]hisa.Ciphertext, cout)
		// Weight plaintexts per (oc, ky, kx): w[oc][ic][ky][kx] spread over
		// channel ic's whole block (invalid input slots hold zeros, so the
		// product is zero there).
		parallelFor(opts.workers(), cout, func(oc int) {
			var acc hisa.Ciphertext
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					wv := make([]float64, b.Slots())
					ls := in.laneStride(b.Slots())
					for lane := 0; lane < in.Lanes(); lane++ {
						laneBase := lane * ls
						for ci := 0; ci < in.CPerCT; ci++ {
							ic := g*in.CPerCT + ci
							if ic >= in.C {
								break
							}
							w := filters.At(oc, ic, ky, kx)
							base := laneBase + ci*in.ChanStride
							for s := base; s < base+in.ChanStride && s < b.Slots(); s++ {
								wv[s] = w
							}
						}
					}
					t := b.MulPlain(cache.get(rot(ky, kx)), b.Encode(wv, sc.Pw))
					acc = accumulate(b, acc, t)
				}
			}
			acc = opts.reduce(b, acc, sc.Pc)
			// Fold the partial sums of this ciphertext's occupied channels
			// into channel block 0 (unoccupied blocks hold zeros).
			for step := 1; step < nextPow2(chInGroup); step <<= 1 {
				acc = b.Add(acc, b.RotLeft(acc, step*in.ChanStride))
			}
			acc = b.MulPlain(acc, mask)
			acc = opts.reduce(b, acc, sc.Pc)

			if bOut := oc % outCPerCT; bOut != 0 {
				acc = b.RotRight(acc, bOut*in.ChanStride)
			}
			partial[oc] = acc
		})
		// Fold in serial channel order so the accumulation sequence — and
		// hence every rounding decision — matches a serial run exactly.
		for oc := 0; oc < cout; oc++ {
			gOut := oc / outCPerCT
			out.CTs[gOut] = accumulate(b, out.CTs[gOut], partial[oc])
		}
	}

	if bias != nil {
		for gOut := range out.CTs {
			bv := perChannelVector(&out, gOut, b.Slots(), func(ch int) float64 { return bias.Data[ch] })
			out.CTs[gOut] = addVecBoth(b, out.Complex, out.CTs[gOut], bv)
		}
	}
	out.validate(b.Slots())
	return &out
}

// AvgPool2D applies average pooling (valid padding). The window sum is
// collected with rotations shared across channels; the division by the
// window size is folded into the output mask, so pooling costs a single
// mask-depth multiplication.
func AvgPool2D(b hisa.Backend, in *CipherTensor, window, stride int, sc Scales) *CipherTensor {
	return AvgPool2DOpts(b, in, window, stride, sc, ExecOptions{})
}

// AvgPool2DOpts is AvgPool2D with an execution-options parameter:
// ciphertext groups are pooled by opts.Workers goroutines.
func AvgPool2DOpts(b hisa.Backend, in *CipherTensor, window, stride int, sc Scales, opts ExecOptions) *CipherTensor {
	hout := (in.H-window)/stride + 1
	wout := (in.W-window)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic("htc: pool output would be empty")
	}
	out := metaClone(in)
	out.H, out.W = hout, wout
	out.RowStride = in.RowStride * stride
	out.ColStride = in.ColStride * stride
	out.CTs = make([]hisa.Ciphertext, in.NumCTs())

	inv := 1.0 / float64(window*window)
	// Groups share a mask except a possibly ragged final group. Masks are
	// encoded up front so the worker pool reads the map without locking.
	masks := map[int]hisa.Plaintext{}
	for g := range in.CTs {
		chInGroup := min(in.C-g*in.CPerCT, in.CPerCT)
		if _, ok := masks[chInGroup]; !ok {
			masks[chInGroup] = b.Encode(validMask(&out, g, b.Slots(), inv), sc.Pm)
		}
	}

	windowAmounts := make([]int, 0, window*window)
	for ky := 0; ky < window; ky++ {
		for kx := 0; kx < window; kx++ {
			windowAmounts = append(windowAmounts, ky*in.RowStride+kx*in.ColStride)
		}
	}
	parallelFor(opts.workers(), len(in.CTs), func(g int) {
		cache := newRotCache(b, in.CTs[g])
		cache.planRotations(windowAmounts)
		var acc hisa.Ciphertext
		for ky := 0; ky < window; ky++ {
			for kx := 0; kx < window; kx++ {
				acc = accumulate(b, acc, cache.get(ky*in.RowStride+kx*in.ColStride))
			}
		}
		acc = b.MulPlain(acc, masks[min(in.C-g*in.CPerCT, in.CPerCT)])
		out.CTs[g] = opts.reduce(b, acc, sc.Pc)
	})
	out.validate(b.Slots())
	return &out
}

// GlobalAvgPool2D averages each channel down to a single value at grid
// position (0, 0), using logarithmic folding when the spatial dims are
// powers of two.
func GlobalAvgPool2D(b hisa.Backend, in *CipherTensor, sc Scales) *CipherTensor {
	return GlobalAvgPool2DOpts(b, in, sc, ExecOptions{})
}

// GlobalAvgPool2DOpts is GlobalAvgPool2D with an execution-options
// parameter: ciphertext groups are reduced by opts.Workers goroutines.
func GlobalAvgPool2DOpts(b hisa.Backend, in *CipherTensor, sc Scales, opts ExecOptions) *CipherTensor {
	out := metaClone(in)
	out.H, out.W = 1, 1
	out.CTs = make([]hisa.Ciphertext, in.NumCTs())

	inv := 1.0 / float64(in.H*in.W)
	mask := b.Encode(validMask(&out, 0, b.Slots(), inv), sc.Pm)

	parallelFor(opts.workers(), len(in.CTs), func(g int) {
		acc := in.CTs[g]
		if isPow2(in.W) {
			for step := 1; step < in.W; step <<= 1 {
				acc = b.Add(acc, b.RotLeft(acc, step*in.ColStride))
			}
		} else {
			cache := newRotCache(b, acc)
			colAmounts := make([]int, 0, in.W-1)
			for x := 1; x < in.W; x++ {
				colAmounts = append(colAmounts, x*in.ColStride)
			}
			cache.planRotations(colAmounts)
			sum := acc
			for x := 1; x < in.W; x++ {
				sum = b.Add(sum, cache.get(x*in.ColStride))
			}
			acc = sum
		}
		if isPow2(in.H) {
			for step := 1; step < in.H; step <<= 1 {
				acc = b.Add(acc, b.RotLeft(acc, step*in.RowStride))
			}
		} else {
			cache := newRotCache(b, acc)
			rowAmounts := make([]int, 0, in.H-1)
			for y := 1; y < in.H; y++ {
				rowAmounts = append(rowAmounts, y*in.RowStride)
			}
			cache.planRotations(rowAmounts)
			sum := acc
			for y := 1; y < in.H; y++ {
				sum = b.Add(sum, cache.get(y*in.RowStride))
			}
			acc = sum
		}
		acc = b.MulPlain(acc, mask)
		out.CTs[g] = opts.reduce(b, acc, sc.Pc)
	})
	out.validate(b.Slots())
	return &out
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Activation applies f(x) = a*x^2 + b*x, computed as x*(a*x + b) to spend
// one ciphertext multiplication and one scalar multiplication.
func Activation(b hisa.Backend, in *CipherTensor, a, bb float64, sc Scales) *CipherTensor {
	return ActivationOpts(b, in, a, bb, sc, ExecOptions{})
}

// ActivationOpts is Activation with an execution-options parameter:
// ciphertext groups are transformed by opts.Workers goroutines.
func ActivationOpts(b hisa.Backend, in *CipherTensor, a, bb float64, sc Scales, opts ExecOptions) *CipherTensor {
	out := metaClone(in)
	out.CTs = make([]hisa.Ciphertext, in.NumCTs())
	parallelFor(opts.workers(), len(in.CTs), func(g int) {
		x := in.CTs[g]
		if a == 0 {
			y := b.MulScalar(x, bb, sc.Pu)
			out.CTs[g] = opts.reduce(b, y, sc.Pc)
			return
		}
		var y hisa.Ciphertext
		if in.Complex {
			y = activationPairwise(b, x, a, bb, sc, opts)
		} else {
			t := b.MulScalar(x, a, sc.Pu)
			t = opts.reduce(b, t, sc.Pc)
			// Adding b everywhere is safe: invalid slots of x are zero, so
			// the final product restores the zero invariant.
			t = b.AddScalar(t, bb)
			if lr, ok := hisa.AsLazyRelin(b); ok {
				y = lr.MulNoRelin(t, x)
			} else {
				y = b.Mul(t, x)
			}
		}
		// reduceRelin closes the product: the site's rescale decision and
		// the relinearization run as one fused limb pass on backends that
		// support it, and in the conventional order everywhere else. The
		// complex path's two shared-relin products land here too.
		out.CTs[g] = opts.reduceRelin(b, y, sc.Pc)
	})
	return &out
}

// PolyEval applies a general polynomial activation p(x) = sum c_i x^i by
// Horner's rule: degree-1 ciphertext multiplications plus one scalar
// multiplication. The constant term is added only at valid positions so the
// zero-slot invariant survives.
func PolyEval(b hisa.Backend, in *CipherTensor, coeffs []float64, sc Scales) *CipherTensor {
	return PolyEvalOpts(b, in, coeffs, sc, ExecOptions{})
}

// PolyEvalOpts is PolyEval with an execution-options parameter: ciphertext
// groups are evaluated by opts.Workers goroutines.
func PolyEvalOpts(b hisa.Backend, in *CipherTensor, coeffs []float64, sc Scales, opts ExecOptions) *CipherTensor {
	d := len(coeffs) - 1
	if d < 1 {
		panic("htc: PolyEval needs degree >= 1")
	}
	out := metaClone(in)
	out.CTs = make([]hisa.Ciphertext, in.NumCTs())
	parallelFor(opts.workers(), len(in.CTs), func(g int) {
		x := in.CTs[g]
		// Horner multiplies by the same x every round, so the complex path
		// conjugates x once per group and shares it across iterations.
		var xbar hisa.Ciphertext
		if in.Complex {
			xbar = mustConjugate(b).Conjugate(x)
		}
		// acc = c_d * x, then repeatedly acc = (acc + c_i) * x.
		acc := b.MulScalar(x, coeffs[d], sc.Pu)
		acc = opts.reduce(b, acc, sc.Pc)
		for i := d - 1; i >= 1; i-- {
			// AddScalar touches invalid slots too, but the following
			// multiplication by x (zero there) restores the invariant.
			acc = addScalarBoth(b, in.Complex, acc, coeffs[i])
			if in.Complex {
				acc = mulPairwiseY(b, acc, x, xbar)
				acc = opts.reduce(b, acc, sc.Pc)
			} else {
				if lr, ok := hisa.AsLazyRelin(b); ok {
					acc = lr.MulNoRelin(acc, x)
				} else {
					acc = b.Mul(acc, x)
				}
				acc = opts.reduceRelin(b, acc, sc.Pc)
			}
		}
		if coeffs[0] != 0 {
			cv := perChannelVector(in, g, b.Slots(), func(int) float64 { return coeffs[0] })
			acc = addVecBoth(b, in.Complex, acc, cv)
		}
		out.CTs[g] = acc
	})
	return &out
}

// BatchNorm applies the folded inference-time normalization
// y = gamma[c]*x + beta[c]. In HW layout the per-channel scale is a cheap
// scalar multiplication; in CHW it requires a plaintext vector — the
// layout-dependent cost difference the paper highlights.
func BatchNorm(b hisa.Backend, in *CipherTensor, gamma, beta *tensor.Tensor, sc Scales) *CipherTensor {
	return BatchNormOpts(b, in, gamma, beta, sc, ExecOptions{})
}

// BatchNormOpts is BatchNorm with an execution-options parameter:
// ciphertext groups are normalized by opts.Workers goroutines.
func BatchNormOpts(b hisa.Backend, in *CipherTensor, gamma, beta *tensor.Tensor, sc Scales, opts ExecOptions) *CipherTensor {
	if gamma.Size() != in.C || beta.Size() != in.C {
		panic("htc: batchnorm parameter size mismatch")
	}
	out := metaClone(in)
	out.CTs = make([]hisa.Ciphertext, in.NumCTs())
	parallelFor(opts.workers(), len(in.CTs), func(g int) {
		var t hisa.Ciphertext
		if in.Layout == LayoutHW {
			t = b.MulScalar(in.CTs[g], gamma.Data[g], sc.Pu)
		} else {
			gv := perChannelVector(in, g, b.Slots(), func(ch int) float64 { return gamma.Data[ch] })
			t = b.MulPlain(in.CTs[g], b.Encode(gv, sc.Pw))
		}
		t = opts.reduce(b, t, sc.Pc)
		bv := perChannelVector(in, g, b.Slots(), func(ch int) float64 { return beta.Data[ch] })
		t = addVecBoth(b, in.Complex, t, bv)
		out.CTs[g] = t
	})
	return &out
}

// Add computes the elementwise sum of two CipherTensors with identical
// metadata (residual connections).
func Add(b hisa.Backend, x, y *CipherTensor) *CipherTensor {
	return AddOpts(b, x, y, ExecOptions{})
}

// AddOpts is Add with an execution-options parameter: ciphertext groups are
// summed by opts.Workers goroutines.
func AddOpts(b hisa.Backend, x, y *CipherTensor, opts ExecOptions) *CipherTensor {
	if x.C != y.C || x.H != y.H || x.W != y.W ||
		x.Offset != y.Offset || x.RowStride != y.RowStride || x.ColStride != y.ColStride ||
		x.CPerCT != y.CPerCT || x.B != y.B || x.BatchStride != y.BatchStride ||
		x.Complex != y.Complex {
		panic("htc: Add requires identical layouts; insert a layout conversion")
	}
	out := metaClone(x)
	out.CTs = make([]hisa.Ciphertext, x.NumCTs())
	parallelFor(opts.workers(), len(x.CTs), func(g int) {
		a, bb := alignScales(b, x.CTs[g], y.CTs[g])
		out.CTs[g] = b.Add(a, bb)
	})
	return &out
}

// Concat concatenates CipherTensors along the channel axis. When every
// input's channel count is a multiple of the block capacity the
// concatenation is free (ciphertext list append); otherwise channels are
// moved individually with mask-and-rotate.
func Concat(b hisa.Backend, sc Scales, ins ...*CipherTensor) *CipherTensor {
	return ConcatOpts(b, sc, ExecOptions{}, ins...)
}

// ConcatOpts is Concat with an execution-options parameter: on the
// mask-and-rotate path, per-channel isolation runs on opts.Workers
// goroutines and the isolated channels are folded into the output in serial
// channel order.
func ConcatOpts(b hisa.Backend, sc Scales, opts ExecOptions, ins ...*CipherTensor) *CipherTensor {
	if len(ins) < 2 {
		panic("htc: Concat needs at least two inputs")
	}
	first := ins[0]
	totalC := 0
	for _, in := range ins {
		if in.H != first.H || in.W != first.W || in.Offset != first.Offset ||
			in.RowStride != first.RowStride || in.ColStride != first.ColStride ||
			in.CPerCT != first.CPerCT || in.ChanStride != first.ChanStride ||
			in.B != first.B || in.BatchStride != first.BatchStride ||
			in.Complex != first.Complex {
			panic("htc: Concat inputs must share geometry")
		}
		totalC += in.C
	}
	out := metaClone(first)
	out.C = totalC

	if first.Layout == LayoutHW {
		out.CTs = nil
		for _, in := range ins {
			out.CTs = append(out.CTs, in.CTs...)
		}
		out.validate(b.Slots())
		return &out
	}

	// Fast path: all inputs group-aligned.
	aligned := true
	for _, in := range ins[:len(ins)-1] {
		if in.C%in.CPerCT != 0 {
			aligned = false
			break
		}
	}
	if aligned {
		out.CTs = nil
		for _, in := range ins {
			out.CTs = append(out.CTs, in.CTs...)
		}
		out.validate(b.Slots())
		return &out
	}

	// Slow path: isolate each channel and place it at its target block.
	numOutCTs := (totalC + out.CPerCT - 1) / out.CPerCT
	out.CTs = make([]hisa.Ciphertext, numOutCTs)
	type job struct {
		in      *CipherTensor
		ch, och int
	}
	jobs := make([]job, 0, totalC)
	base := 0
	for _, in := range ins {
		for ch := 0; ch < in.C; ch++ {
			jobs = append(jobs, job{in: in, ch: ch, och: base + ch})
		}
		base += in.C
	}
	isolated := make([]hisa.Ciphertext, len(jobs))
	parallelFor(opts.workers(), len(jobs), func(j int) {
		in, ch := jobs[j].in, jobs[j].ch
		gIn, bIn := ch/in.CPerCT, ch%in.CPerCT
		bOut := jobs[j].och % out.CPerCT

		single := metaClone(in)
		single.C = 1
		single.CPerCT = 1
		single.Offset = in.Offset + bIn*in.ChanStride
		mv := validMask(&single, 0, b.Slots(), 1)
		t := b.MulPlain(in.CTs[gIn], b.Encode(mv, sc.Pm))
		t = opts.reduce(b, t, sc.Pc)
		if shift := (bOut - bIn) * in.ChanStride; shift > 0 {
			t = b.RotRight(t, shift)
		} else if shift < 0 {
			t = b.RotLeft(t, -shift)
		}
		isolated[j] = t
	})
	// Fold in original (input, channel) order for a bit-identical result.
	for j := range jobs {
		gOut := jobs[j].och / out.CPerCT
		out.CTs[gOut] = accumulate(b, out.CTs[gOut], isolated[j])
	}
	out.validate(b.Slots())
	return &out
}

// Dense computes a fully connected layer out = W*flatten(in) + bias. The
// flatten order is CHW row-major, matching the plaintext reference. Each
// output neuron is produced by a plaintext weight multiplication, a
// logarithmic rotate-and-add reduction, a slot-0 mask, and a placement
// rotation.
func Dense(b hisa.Backend, in *CipherTensor, weights, bias *tensor.Tensor, sc Scales) *CipherTensor {
	return DenseOpts(b, in, weights, bias, sc, ExecOptions{})
}

// DenseOpts is Dense with an execution-options parameter: output neurons
// are computed by opts.Workers goroutines and folded into the output in
// serial neuron order, so the result is bit-identical to a serial run.
func DenseOpts(b hisa.Backend, in *CipherTensor, weights, bias *tensor.Tensor, sc Scales, opts ExecOptions) *CipherTensor {
	inSize := in.C * in.H * in.W
	if weights.Rank() != 2 || weights.Shape[1] != inSize {
		panic(fmt.Sprintf("htc: dense weights %v incompatible with input size %d", weights.Shape, inSize))
	}
	outDim := weights.Shape[0]
	ls := in.laneStride(b.Slots())
	if outDim > ls {
		panic("htc: dense output exceeds batch-lane slot count")
	}

	// Highest occupied slot bound for the reduction length. Clamped to the
	// lane stride (both powers of two) so the log-fold at a lane origin only
	// ever pulls from its own lane.
	maxPos := in.pos(min(in.C, in.CPerCT)-1, in.H-1, in.W-1)
	m := nextPow2(maxPos + 1)
	if m > ls {
		m = ls
	}

	out := CipherTensor{
		Layout: in.Layout, C: 1, H: 1, W: outDim,
		Offset: 0, RowStride: outDim, ColStride: 1,
		ChanStride: ls, CPerCT: 1,
		B: in.B, BatchStride: in.BatchStride,
		Complex: in.Complex,
	}

	// One-hot at every lane origin: after the log-fold, each lane's dot
	// product sits at its lane origin and everything else is garbage.
	e0 := make([]float64, b.Slots())
	for lane := 0; lane < in.Lanes(); lane++ {
		e0[lane*ls] = 1
	}
	e0Plain := b.Encode(e0, sc.Pm)

	neurons := make([]hisa.Ciphertext, outDim)
	parallelFor(opts.workers(), outDim, func(o int) {
		var total hisa.Ciphertext
		for g := range in.CTs {
			wv := make([]float64, b.Slots())
			for lane := 0; lane < in.Lanes(); lane++ {
				laneBase := lane * ls
				for ci := 0; ci < in.CPerCT; ci++ {
					ch := g*in.CPerCT + ci
					if ch >= in.C {
						break
					}
					for y := 0; y < in.H; y++ {
						for x := 0; x < in.W; x++ {
							logical := ch*in.H*in.W + y*in.W + x
							wv[laneBase+in.pos(ci, y, x)] = weights.At(o, logical)
						}
					}
				}
			}
			t := b.MulPlain(in.CTs[g], b.Encode(wv, sc.Pw))
			total = accumulate(b, total, t)
		}
		total = opts.reduce(b, total, sc.Pc)
		for step := m / 2; step >= 1; step >>= 1 {
			total = b.Add(total, b.RotLeft(total, step))
		}
		total = b.MulPlain(total, e0Plain)
		total = opts.reduce(b, total, sc.Pc)
		if o > 0 {
			total = b.RotRight(total, o)
		}
		neurons[o] = total
	})

	// Fold in serial neuron order for a bit-identical result.
	var acc hisa.Ciphertext
	for o := 0; o < outDim; o++ {
		acc = accumulate(b, acc, neurons[o])
	}

	if bias != nil {
		bv := make([]float64, b.Slots())
		for lane := 0; lane < in.Lanes(); lane++ {
			copy(bv[lane*ls:], bias.Data)
		}
		acc = addVecBoth(b, in.Complex, acc, bv)
	}
	out.CTs = []hisa.Ciphertext{acc}
	out.validate(b.Slots())
	return &out
}

// Pad2D grows the logical spatial dims into the layout apron. The apron
// slots are already zero, so padding is purely a metadata operation — the
// "avoid or delay these expensive operations" optimization of Section 4.2.
func Pad2D(in *CipherTensor, pad int) *CipherTensor {
	if in.Offset < pad*(in.RowStride+in.ColStride) {
		panic(fmt.Sprintf("htc: pad %d exceeds the layout apron; recompile with a larger apron", pad))
	}
	out := metaClone(in)
	out.H = in.H + 2*pad
	out.W = in.W + 2*pad
	out.Offset = in.Offset - pad*in.RowStride - pad*in.ColStride
	out.CTs = in.CTs
	return &out
}

// ToCHW converts an HW-layout tensor to CHW by shifting each channel into
// its block and adding (no masks needed: invalid slots are zero).
func ToCHW(b hisa.Backend, in *CipherTensor) *CipherTensor {
	if in.Layout == LayoutCHW {
		return in
	}
	out := metaClone(in)
	out.Layout = LayoutCHW
	cPerCT := blockCapacity(in.laneStride(b.Slots()), in.ChanStride)
	out.CPerCT = cPerCT
	numCTs := (in.C + cPerCT - 1) / cPerCT
	out.CTs = make([]hisa.Ciphertext, numCTs)
	for ch := 0; ch < in.C; ch++ {
		g, blk := ch/cPerCT, ch%cPerCT
		t := in.CTs[ch]
		if blk > 0 {
			t = b.RotRight(t, blk*in.ChanStride)
		}
		out.CTs[g] = accumulate(b, out.CTs[g], t)
	}
	out.validate(b.Slots())
	return &out
}

// ToHW converts a CHW-layout tensor to HW: each channel is rotated to block
// zero and isolated with a mask (the conversion that costs depth).
func ToHW(b hisa.Backend, in *CipherTensor, sc Scales) *CipherTensor {
	return ToHWOpts(b, in, sc, ExecOptions{})
}

// ToHWOpts is ToHW with an execution-options parameter (the conversion's
// rescale site consults the scale policy like every kernel site).
func ToHWOpts(b hisa.Backend, in *CipherTensor, sc Scales, opts ExecOptions) *CipherTensor {
	if in.Layout == LayoutHW {
		return in
	}
	out := metaClone(in)
	out.Layout = LayoutHW
	out.CPerCT = 1
	out.CTs = make([]hisa.Ciphertext, in.C)

	single := metaClone(in)
	single.C = 1
	single.CPerCT = 1
	maskVals := validMask(&single, 0, b.Slots(), 1)
	var mask hisa.Plaintext
	for ch := 0; ch < in.C; ch++ {
		g, blk := ch/in.CPerCT, ch%in.CPerCT
		t := in.CTs[g]
		if blk > 0 {
			t = b.RotLeft(t, blk*in.ChanStride)
		}
		if mask == nil {
			mask = b.Encode(maskVals, sc.Pm)
		}
		t = b.MulPlain(t, mask)
		out.CTs[ch] = opts.reduce(b, t, sc.Pc)
	}
	out.validate(b.Slots())
	return &out
}
