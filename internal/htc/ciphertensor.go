// Package htc implements CHET's Homomorphic Tensor Circuit runtime: the
// CipherTensor datatype with its layout metadata (HW and CHW layouts,
// strides, physical apron padding, channel blocking across ciphertexts) and
// the homomorphic kernels for every tensor operation of the circuit DSL.
// All kernels are written against the HISA, so they execute unchanged under
// the plaintext reference backend, both CKKS backends, and the compiler's
// analysis interpretations.
//
// Invariant maintained by every kernel: all ciphertext slots outside a
// CipherTensor's valid positions are (approximately) zero. Kernels restore
// the invariant with mask multiplications, which is why masks appear in the
// multiplicative depth — exactly the trade-off the paper describes.
package htc

import (
	"fmt"
	"math"
	"math/big"

	"chet/internal/hisa"
	"chet/internal/tensor"
)

// Layout selects how tensors map onto ciphertext vectors.
type Layout int

// The two layouts implemented by the runtime (Section 4.2 of the paper).
const (
	// LayoutHW places each channel in its own ciphertext.
	LayoutHW Layout = iota
	// LayoutCHW blocks multiple channels into one ciphertext.
	LayoutCHW
)

func (l Layout) String() string {
	if l == LayoutHW {
		return "HW"
	}
	return "CHW"
}

// Scales carries the four fixed-point scaling factors CHET exposes
// (Section 5.5): Pc for the ciphertext/image, Pw for plaintext (vector)
// weights, Pu for scalar weights, and Pm for masks.
type Scales struct {
	Pc, Pw, Pu, Pm float64
}

// DefaultScales mirrors the paper's starting point of 2^40 for the image and
// generous weight/mask scales.
func DefaultScales() Scales {
	return Scales{
		Pc: math.Exp2(30),
		Pw: math.Exp2(20),
		Pu: math.Exp2(20),
		Pm: math.Exp2(10),
	}
}

// Plan fixes the physical layout decisions for one circuit execution: the
// layout family and the apron (physical zero padding around the original
// grid) that lets padded convolutions pull in zeros instead of neighbouring
// data.
type Plan struct {
	Layout Layout
	Apron  int
	// Batch is the number of images packed along the slot batch axis
	// (nGraph-HE2-style batching): the slot vector is split into
	// nextPow2(Batch) equal lanes and image i lives in lane i. 0 and 1 both
	// mean unbatched.
	Batch int
	// Complex packs two images per batch lane, one in the real and one in
	// the imaginary slot component (nGraph-HE2's complex packing). Batch
	// still counts images; the lane count halves, doubling capacity at
	// constant ring size. Requires a hisa.ConjugateBackend.
	Complex bool
}

// batches normalizes the plan's batch count (0 means 1).
func (p Plan) batches() int {
	if p.Batch < 1 {
		return 1
	}
	return p.Batch
}

// lanes is the number of physical batch lanes the plan needs.
func (p Plan) lanes() int {
	b := p.batches()
	if p.Complex {
		return (b + 1) / 2
	}
	return b
}

// CipherTensor is an encrypted tensor: ciphertexts plus the plain metadata
// describing where each logical element lives.
type CipherTensor struct {
	Layout Layout

	// Logical dimensions.
	C, H, W int

	// Slot geometry: element (c, y, x) of ciphertext CTs[c/CPerCT] lives at
	// slot Offset + (c%CPerCT)*ChanStride + y*RowStride + x*ColStride.
	Offset     int
	RowStride  int
	ColStride  int
	ChanStride int
	CPerCT     int

	// Batch axis: the slot vector is split into nextPow2(B) lanes of
	// BatchStride slots each, and image b occupies slots
	// [b*BatchStride, (b+1)*BatchStride). All per-image geometry above is
	// lane-relative (lane 0); kernels are batch-oblivious because every
	// homomorphic rotation they issue is smaller than BatchStride and the
	// apron/mask invariant keeps taps from crossing lane boundaries.
	// B == 0 means an unbatched legacy tensor (treated as B == 1 with
	// BatchStride == slots).
	B           int
	BatchStride int

	// Complex marks complex-packed tensors: image 2k lives in the real and
	// image 2k+1 in the imaginary slot component of lane k, so the tensor
	// has ceil(B/2) physical lanes. All real-plaintext kernel arithmetic is
	// componentwise and thus packing-oblivious; only ciphertext-ciphertext
	// products and additive constants branch on this flag.
	Complex bool

	CTs []hisa.Ciphertext
}

// Batches returns the number of packed images, treating the zero value as 1.
func (ct *CipherTensor) Batches() int {
	if ct.B < 1 {
		return 1
	}
	return ct.B
}

// Lanes returns the number of physical batch lanes: equal to Batches for
// real packing, halved (rounded up) for complex packing.
func (ct *CipherTensor) Lanes() int {
	b := ct.Batches()
	if ct.Complex {
		return (b + 1) / 2
	}
	return b
}

// laneStride returns the slot span of one batch lane: BatchStride when set,
// otherwise the full slot vector (legacy unbatched tensors).
func (ct *CipherTensor) laneStride(slots int) int {
	if ct.BatchStride > 0 {
		return ct.BatchStride
	}
	return slots
}

// NumCTs returns the number of ciphertexts.
func (ct *CipherTensor) NumCTs() int { return len(ct.CTs) }

// pos returns the slot of logical element (c within its ciphertext, y, x).
func (ct *CipherTensor) pos(cInCT, y, x int) int {
	return ct.Offset + cInCT*ct.ChanStride + y*ct.RowStride + x*ct.ColStride
}

// Shape returns the logical CHW shape.
func (ct *CipherTensor) Shape() []int { return []int{ct.C, ct.H, ct.W} }

// Validate checks the metadata against itself and a backend's slot count
// without panicking: every logical position must land in [0, slots) and the
// ciphertext count must match the channel blocking. The serving layer calls
// this on tensors received from the network before touching a kernel, where
// the panicking internal checks would take the whole server down.
func (ct *CipherTensor) Validate(slots int) error {
	if ct.C <= 0 || ct.H <= 0 || ct.W <= 0 || ct.CPerCT <= 0 {
		return fmt.Errorf("htc: invalid CipherTensor dims C=%d H=%d W=%d cPerCT=%d",
			ct.C, ct.H, ct.W, ct.CPerCT)
	}
	if ct.Offset < 0 || ct.RowStride < 0 || ct.ColStride < 0 || ct.ChanStride < 0 {
		return fmt.Errorf("htc: negative CipherTensor strides (offset %d, row %d, col %d, chan %d)",
			ct.Offset, ct.RowStride, ct.ColStride, ct.ChanStride)
	}
	if minPos := ct.pos(0, 0, 0); minPos < 0 || minPos >= slots {
		return fmt.Errorf("htc: CipherTensor origin at slot %d outside %d slots", minPos, slots)
	}
	maxPos := ct.pos(min(ct.C, ct.CPerCT)-1, ct.H-1, ct.W-1)
	if maxPos < 0 || maxPos >= slots {
		return fmt.Errorf("htc: CipherTensor overflows %d slots (max position %d)", slots, maxPos)
	}
	if ct.B < 0 || ct.BatchStride < 0 {
		return fmt.Errorf("htc: negative batch metadata (B %d, batchStride %d)", ct.B, ct.BatchStride)
	}
	if ct.B > 1 {
		if ct.BatchStride < 1 {
			return fmt.Errorf("htc: batched CipherTensor (B=%d) without a batch stride", ct.B)
		}
		if maxPos >= ct.BatchStride {
			return fmt.Errorf("htc: CipherTensor lane overflows batch stride %d (max position %d)",
				ct.BatchStride, maxPos)
		}
		if last := (ct.Lanes()-1)*ct.BatchStride + maxPos; last >= slots {
			return fmt.Errorf("htc: %d batch lanes of stride %d overflow %d slots",
				ct.Lanes(), ct.BatchStride, slots)
		}
	}
	want := (ct.C + ct.CPerCT - 1) / ct.CPerCT
	if len(ct.CTs) != want {
		return fmt.Errorf("htc: CipherTensor has %d ciphertexts, metadata implies %d", len(ct.CTs), want)
	}
	for i, c := range ct.CTs {
		if c == nil {
			return fmt.Errorf("htc: CipherTensor ciphertext %d is nil", i)
		}
	}
	return nil
}

// validate panics when metadata is inconsistent with the slot count.
func (ct *CipherTensor) validate(slots int) {
	if err := ct.Validate(slots); err != nil {
		panic(err.Error())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// planGeometry computes the physical grid for a logical HxW image under the
// plan's apron.
func planGeometry(plan Plan, h, w int) (hp, wp, offset int) {
	p := plan.Apron
	hp, wp = h+2*p, w+2*p
	offset = p*wp + p
	return hp, wp, offset
}

// NewLayout computes the CipherTensor metadata (without ciphertexts) for a
// fresh CHW tensor under the plan on a backend with the given slot count.
// When the plan batches B > 1 images, the slot vector is divided into
// nextPow2(B) equal lanes and the per-image geometry must fit one lane.
func NewLayout(plan Plan, c, h, w, slots int) CipherTensor {
	hp, wp, offset := planGeometry(plan, h, w)
	chanStride := hp * wp
	batch := plan.batches()
	laneSlots := slots / nextPow2(plan.lanes())
	if laneSlots < 1 || chanStride > laneSlots {
		panic(fmt.Sprintf("htc: a %dx%d image (apron %d) does not fit a batch lane of %d slots (batch %d, %d slots)",
			h, w, plan.Apron, laneSlots, batch, slots))
	}
	cPerCT := 1
	if plan.Layout == LayoutCHW {
		cPerCT = blockCapacity(laneSlots, chanStride)
	}
	return CipherTensor{
		Layout:      plan.Layout,
		C:           c,
		H:           h,
		W:           w,
		Offset:      offset,
		RowStride:   wp,
		ColStride:   1,
		ChanStride:  chanStride,
		CPerCT:      cPerCT,
		B:           batch,
		BatchStride: laneSlots,
		Complex:     plan.Complex,
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// blockCapacity returns the power-of-two number of channel blocks that fit
// one ciphertext. Using the full capacity (rather than the channel count)
// keeps the geometry of same-grid tensors identical, so residual adds and
// concatenations line up without repacking.
func blockCapacity(slots, chanStride int) int {
	c := 1
	for c*2 <= slots/chanStride {
		c *= 2
	}
	return c
}

// EncryptTensor encodes and encrypts a plaintext CHW tensor under the plan
// at scale sc.Pc.
func EncryptTensor(b hisa.Backend, t *tensor.Tensor, plan Plan, sc Scales) *CipherTensor {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("htc: EncryptTensor wants CHW input, got %v", t.Shape))
	}
	c, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	meta := NewLayout(plan, c, h, w, b.Slots())

	numCTs := (c + meta.CPerCT - 1) / meta.CPerCT
	meta.CTs = make([]hisa.Ciphertext, numCTs)
	for g := 0; g < numCTs; g++ {
		vals := make([]float64, b.Slots())
		for ci := 0; ci < meta.CPerCT; ci++ {
			ch := g*meta.CPerCT + ci
			if ch >= c {
				break
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					vals[meta.pos(ci, y, x)] = t.At(ch, y, x)
				}
			}
		}
		meta.CTs[g] = b.Encrypt(b.Encode(vals, sc.Pc))
	}
	meta.validate(b.Slots())
	return &meta
}

// DecryptTensor decrypts a CipherTensor back into a logical CHW tensor
// (or a vector when H == W == 1 ... the CHW shape is always returned;
// callers reshape as needed).
func DecryptTensor(b hisa.Backend, ct *CipherTensor) *tensor.Tensor {
	out := tensor.New(ct.C, ct.H, ct.W)
	for g := 0; g < ct.NumCTs(); g++ {
		vals := b.Decode(b.Decrypt(ct.CTs[g]))
		for ci := 0; ci < ct.CPerCT; ci++ {
			ch := g*ct.CPerCT + ci
			if ch >= ct.C {
				break
			}
			for y := 0; y < ct.H; y++ {
				for x := 0; x < ct.W; x++ {
					out.Set(vals[ct.pos(ci, y, x)], ch, y, x)
				}
			}
		}
	}
	return out
}

// metaClone copies the metadata of src without ciphertexts.
func metaClone(src *CipherTensor) CipherTensor {
	out := *src
	out.CTs = nil
	return out
}

// validMask builds a 0/1 vector marking the valid positions of the channels
// in ciphertext group g, scaled by value. The pattern is replicated into
// every batch lane so one plaintext multiplication serves all packed images.
func validMask(ct *CipherTensor, g, slots int, value float64) []float64 {
	vals := make([]float64, slots)
	ls := ct.laneStride(slots)
	for lane := 0; lane < ct.Lanes(); lane++ {
		base := lane * ls
		for ci := 0; ci < ct.CPerCT; ci++ {
			ch := g*ct.CPerCT + ci
			if ch >= ct.C {
				break
			}
			for y := 0; y < ct.H; y++ {
				for x := 0; x < ct.W; x++ {
					vals[base+ct.pos(ci, y, x)] = value
				}
			}
		}
	}
	return vals
}

// perChannelVector builds a plaintext vector assigning val(ch) to every
// valid position of each channel in group g, replicated into every batch
// lane (the same weights apply to every packed image).
func perChannelVector(ct *CipherTensor, g, slots int, val func(ch int) float64) []float64 {
	vals := make([]float64, slots)
	ls := ct.laneStride(slots)
	for lane := 0; lane < ct.Lanes(); lane++ {
		base := lane * ls
		for ci := 0; ci < ct.CPerCT; ci++ {
			ch := g*ct.CPerCT + ci
			if ch >= ct.C {
				break
			}
			v := val(ch)
			for y := 0; y < ct.H; y++ {
				for x := 0; x < ct.W; x++ {
					vals[base+ct.pos(ci, y, x)] = v
				}
			}
		}
	}
	return vals
}

// tryRescale applies the HISA rescaling protocol: if the ciphertext's scale
// has grown past base, rescale by the largest divisor the scheme offers
// under scale/base. Works for both power-of-two (CKKS) and prime-product
// (RNS-CKKS) divisor rules.
func tryRescale(b hisa.Backend, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	s := b.Scale(c)
	if s <= base*1.0001 {
		return c
	}
	ub, _ := big.NewFloat(s / base).Int(nil)
	if ub.Sign() <= 0 {
		return c
	}
	d := b.MaxRescale(c, ub)
	if d.Cmp(big.NewInt(1)) == 0 {
		return c
	}
	return b.Rescale(c, d)
}

// alignScales brings two ciphertexts to a common scale before addition,
// multiplying the lower-scaled one by 1 at the ratio when they diverge.
func alignScales(b hisa.Backend, x, y hisa.Ciphertext) (hisa.Ciphertext, hisa.Ciphertext) {
	sx, sy := b.Scale(x), b.Scale(y)
	switch {
	case math.Abs(sx-sy) <= 1e-6*math.Max(sx, sy):
		return x, y
	case sx < sy:
		return b.MulScalar(x, 1, sy/sx), y
	default:
		return x, b.MulScalar(y, 1, sx/sy)
	}
}
