package htc

import (
	"fmt"

	"chet/internal/hisa"
)

// This file holds the arithmetic that makes complex packing work. Under a
// complex plan two images share each slot — one in the real and one in the
// imaginary component — and every real-plaintext operation the kernels issue
// (Add, MulPlain, MulScalar, rotations, Rescale) acts componentwise, so the
// kernels stay packing-oblivious except at exactly two kinds of sites:
//
//   - additive constants (biases, Horner coefficients, polynomial constant
//     terms) must reach both components, so the real value v becomes v(1+i);
//   - ciphertext-ciphertext products must be componentwise rather than
//     complex, which takes the conjugation identity below.
//
// Both need the hisa.ConjugateBackend capability; executing a complex-packed
// tensor on a backend without it panics with a clear message.

// mustConjugate returns the backend's conjugation capability or panics.
func mustConjugate(b hisa.Backend) hisa.ConjugateBackend {
	cb, ok := hisa.AsConjugate(b)
	if !ok {
		panic(fmt.Sprintf("htc: complex packing requires a hisa.ConjugateBackend (backend %T lacks conjugation)", b))
	}
	return cb
}

// addVecBoth adds the real vector v into ciphertext c: plainly for real
// packing, and as v(1+i) — reaching both slot components — for complex
// packing. The plaintext is encoded at c's scale either way, so the
// operation is scale-neutral like every bias addition in the kernels.
func addVecBoth(b hisa.Backend, complexPacked bool, c hisa.Ciphertext, v []float64) hisa.Ciphertext {
	if !complexPacked {
		return b.AddPlain(c, b.Encode(v, b.Scale(c)))
	}
	cb := mustConjugate(b)
	m := make([]complex128, len(v))
	for i, x := range v {
		m[i] = complex(x, x)
	}
	return cb.AddPlainC(c, m)
}

// addScalarBoth adds the scalar s to every slot: plainly for real packing,
// as s(1+i) for complex packing.
func addScalarBoth(b hisa.Backend, complexPacked bool, c hisa.Ciphertext, s float64) hisa.Ciphertext {
	if !complexPacked {
		return b.AddScalar(c, s)
	}
	cb := mustConjugate(b)
	m := make([]complex128, b.Slots())
	for i := range m {
		m[i] = complex(s, s)
	}
	return cb.AddPlainC(c, m)
}

// mulPairwise computes the componentwise product of two complex-packed
// ciphertexts: for x = p+qi and y = r+si it returns pr + qs·i, so each
// packed image sees an ordinary elementwise product. It is the generic
// two-conjugation form; callers that can obtain conj(y) cheaply use
// mulPairwiseY, and the activation kernels use activationPairwise, which
// gets by with a single conjugation.
func mulPairwise(b hisa.Backend, x, y hisa.Ciphertext) hisa.Ciphertext {
	return mulPairwiseY(b, x, y, mustConjugate(b).Conjugate(y))
}

// mulPairwiseY is mulPairwise with conj(y) supplied by the caller — one
// conjugation instead of two when ybar is already on hand (Horner loops
// conjugate the shared x once per group). With z = xy and w = x·conj(y),
//
//	z + conj(z) = 2(pr − qs)  and  w + conj(w) = 2(pr + qs),
//
// both real, and
//
//	(z+z̄)·(1−i)/4 + (w+w̄)·(1+i)/4 = pr + qs·i.
//
// The two trailing conjugations fold into one: with P = (z+w)/4 and
// Q = i·(w−z)/4, the expression above equals (P+Q) + conj(P−Q), because
// conj(P−Q) = z̄(1−i)/4 + w̄(1+i)/4.
//
// The /4 constants multiply at scale factor 4, so the encoded constant is
// round(0.25·4) = 1 exactly: the division costs two bits of scale instead of
// a full scalar-weight level, and the complex compilation's modulus chain
// stays the length of the real one. Cost versus a real ct-ct product: one
// extra Mul (and its relinearization), the trailing conjugation, and two
// exact constant multiplications — the price nGraph-HE2 pays for doubling
// batch capacity.
func mulPairwiseY(b hisa.Backend, x, y, ybar hisa.Ciphertext) hisa.Ciphertext {
	cb := mustConjugate(b)
	z := b.Mul(x, y)
	w := b.Mul(x, ybar)
	p := cb.MulScalarC(b.Add(z, w), complex(0.25, 0), 4)
	q := cb.MulScalarC(b.Sub(w, z), complex(0, 0.25), 4)
	return b.Add(b.Add(p, q), cb.Conjugate(b.Sub(p, q)))
}

// activationPairwise evaluates the complex-packed quadratic activation
// (a·x + bias)·x componentwise with a single conjugation. Conjugation
// commutes with every real-scalar operation, so both factors' conjugates
// derive from conj(x) alone; working directly with the real combinations
//
//	S = x + x̄ = 2p            D = x − x̄ = 2qi
//	ts = a·S + 2·bias = t+t̄   td = a·D + 2i·bias = t−t̄
//	A = ts·S = 4·Re(t)·p      B = td·D = −4·Im(t)·q
//
// gives (A − i·B)/4 = Re(t)·Re(x) + Im(t)·Im(x)·i, the componentwise
// product, with no trailing conjugation at all. The scalar multiplications
// mirror the real path's sites — same node, same scales — so the recorded
// scale plan replays identically, and invalid slots stay zero because S and
// D vanish there. Cost versus the real path: one extra Mul+relin, one
// conjugation, and two exact /4 constant multiplications.
func activationPairwise(b hisa.Backend, x hisa.Ciphertext, a, bias float64, sc Scales, opts ExecOptions) hisa.Ciphertext {
	cb := mustConjugate(b)
	xbar := cb.Conjugate(x)
	sum := b.Add(x, xbar)
	dif := b.Sub(x, xbar)
	ts := opts.reduce(b, b.MulScalar(sum, a, sc.Pu), sc.Pc)
	td := opts.reduce(b, b.MulScalar(dif, a, sc.Pu), sc.Pc)
	if bias != 0 {
		ts = b.AddScalar(ts, 2*bias)
		m := make([]complex128, b.Slots())
		for i := range m {
			m[i] = complex(0, 2*bias)
		}
		td = cb.AddPlainC(td, m)
	}
	// Everything between the two products and the activation's final rescale
	// is linear, so on backends with deferred relinearization both products
	// stay at degree 2 and share a single relinearization — halving the
	// relin key-switches the complex path pays per activation. The caller
	// performs it after its reduce (relinearization commutes with rescale),
	// where the ciphertext is one limb lighter and the key-switch cheaper.
	if lr, ok := hisa.AsLazyRelin(b); ok {
		A := lr.MulNoRelin(ts, sum)
		B := lr.MulNoRelin(td, dif)
		p := cb.MulScalarC(A, complex(0.25, 0), 4)
		q := cb.MulScalarC(B, complex(0, -0.25), 4)
		return b.Add(p, q)
	}
	A := b.Mul(ts, sum)
	B := b.Mul(td, dif)
	p := cb.MulScalarC(A, complex(0.25, 0), 4)
	q := cb.MulScalarC(B, complex(0, -0.25), 4)
	return b.Add(p, q)
}
