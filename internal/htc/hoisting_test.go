package htc

import (
	"math"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
)

// noBatchShim hides a backend's batch-rotation capability: embedding the
// Backend interface promotes only its methods, so the shim never satisfies
// hisa.RotateManyBackend even when the wrapped backend does. Kernels run on
// it take the per-amount rotation path.
type noBatchShim struct{ hisa.Backend }

// TestKernelsHoistedParityRNS runs the rotation-heavy kernels on the real
// RNS backend twice — once with the RotateMany capability visible (hoisted
// batches) and once behind a capability-hiding shim (per-amount rotations)
// — and requires bit-identical decrypted outputs. This pins the end-to-end
// guarantee that hoisting is a pure execution-cost optimization.
func TestKernelsHoistedParityRNS(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(41)})
	if _, ok := any(b).(hisa.RotateManyBackend); !ok {
		t.Fatal("RNS backend should expose the batch-rotation capability")
	}
	shim := noBatchShim{b}
	if _, ok := any(shim).(hisa.RotateManyBackend); ok {
		t.Fatal("shim should hide the batch-rotation capability")
	}

	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40)}
	img := randTensor([]int{2, 7, 7}, 1, 11)
	filters := randTensor([]int{3, 2, 3, 3}, 0.5, 12)
	bias := randTensor([]int{3}, 0.2, 13)

	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		// One encryption shared by both runs: kernels are functional, so
		// the two executions see the very same input ciphertexts.
		in := EncryptTensor(b, img, Plan{Layout: layout, Apron: 1}, sc)

		conv := Conv2DOpts(b, in, filters, bias, 1, 1, sc, ExecOptions{Workers: 4})
		convShim := Conv2DOpts(shim, in, filters, bias, 1, 1, sc, ExecOptions{Workers: 4})
		requireBitIdentical(t, layout.String()+"/conv",
			DecryptTensor(b, conv), DecryptTensor(b, convShim))

		pool := AvgPool2DOpts(b, conv, 2, 2, sc, ExecOptions{})
		poolShim := AvgPool2DOpts(shim, conv, 2, 2, sc, ExecOptions{})
		requireBitIdentical(t, layout.String()+"/pool",
			DecryptTensor(b, pool), DecryptTensor(b, poolShim))

		// 3x3 spatial dims at this point are non-powers-of-two, which is
		// exactly the global-pool path that uses a rotation cache.
		gap := GlobalAvgPool2DOpts(b, pool, sc, ExecOptions{})
		gapShim := GlobalAvgPool2DOpts(shim, pool, sc, ExecOptions{})
		requireBitIdentical(t, layout.String()+"/gap",
			DecryptTensor(b, gap), DecryptTensor(b, gapShim))
	}
}

// TestRotCachePlanOpCounts checks that planned (batched) and unplanned
// (lazy) cache use report identical meter tallies: the plan holds exactly
// the distinct nonzero amounts the kernel draws, so batching must not
// change what an op-counting interpretation observes.
func TestRotCachePlanOpCounts(t *testing.T) {
	run := func(plan bool) (hisa.OpCounts, []float64) {
		inner := hisa.NewRefBackend(64)
		m := hisa.NewMeter(inner, func(x int) int { return 1 })
		base := m.Encrypt(m.Encode([]float64{1, 2, 3, 4, 5}, 1<<20))
		rc := newRotCache(m, base)
		amounts := []int{0, 1, 3, 3, 0, 5, 1}
		if plan {
			rc.planRotations(amounts)
		}
		var last hisa.Ciphertext
		for _, k := range amounts {
			last = rc.get(k)
		}
		return m.Counts(), m.Decode(m.Decrypt(last))
	}
	planned, vPlanned := run(true)
	lazy, vLazy := run(false)
	if planned != lazy {
		t.Fatalf("op counts diverge: planned %+v lazy %+v", planned, lazy)
	}
	if planned.Rotations != 3 {
		t.Fatalf("rotations = %d, want 3 (distinct nonzero amounts)", planned.Rotations)
	}
	for i := range vPlanned {
		if vPlanned[i] != vLazy[i] {
			t.Fatalf("slot %d: planned %g != lazy %g", i, vPlanned[i], vLazy[i])
		}
	}
}
