package htc

import (
	"math"

	"chet/internal/hisa"
)

// This file centralizes the kernels' rescale protocol behind a policy
// object. Kernels never call tryRescale directly any more: every site where
// a kernel would reduce a grown scale back toward a base scale routes
// through ExecOptions.reduce, which consults a ScalePolicy. The compiler's
// scale-management pass (core/scalepass) records a per-site plan on its
// analysis run and ships it back here as a PlanPolicy, turning rescale
// placement from a hard-coded per-op heuristic into a graph-level decision —
// the nGraph-HE2-style lazy rescaling CHET's op-local protocol lacked.

// ScaleDecision is the planned action at one reduce site.
type ScaleDecision uint8

const (
	// ScaleRescale applies the greedy rescale protocol at this site (the
	// pre-pass behavior): rescale by the largest divisor under scale/base.
	ScaleRescale ScaleDecision = iota
	// ScaleDefer leaves the ciphertext at its grown scale; a later site (or
	// decryption, which normalizes by the final scale) absorbs the excess.
	ScaleDefer
)

func (d ScaleDecision) String() string {
	if d == ScaleDefer {
		return "defer"
	}
	return "rescale"
}

// ScaleKey identifies a reduce site within a circuit node. Sites are keyed
// by the quantized input scale rather than by call-site position, so the
// lookup is stateless: parallel kernel workers hitting sites in any order
// resolve the same decisions as the compiler's serial recording run. Two
// different sites of one node collide only when they see the same scale, in
// which case they would make the same greedy decision anyway; the recorder
// drops any key it observes with conflicting decisions.
type ScaleKey struct {
	// Node is the circuit node ID executing the kernel.
	Node int
	// ScaleBits is round(log2(scale)) of the ciphertext entering the site.
	// Integer rounding absorbs the sub-millibit drift of near-power-of-two
	// RNS primes across a chain.
	ScaleBits int
}

// ScaleKeyFor builds the key for a reduce site observing the given scale.
func ScaleKeyFor(node int, scale float64) ScaleKey {
	return ScaleKey{Node: node, ScaleBits: int(math.Round(math.Log2(scale)))}
}

// ScalePlan is the compiler-emitted rescale placement: one decision per
// observed reduce site. Sites missing from the map (a kernel path the
// recording run did not take) fall back to the greedy protocol, which is
// always functionally safe.
type ScalePlan struct {
	Decisions map[ScaleKey]ScaleDecision
}

// Deferred counts the sites planned as ScaleDefer.
func (p *ScalePlan) Deferred() int {
	n := 0
	for _, d := range p.Decisions {
		if d == ScaleDefer {
			n++
		}
	}
	return n
}

// ScalePolicy decides what happens at each kernel reduce site. Policies
// must be safe for concurrent use by parallel kernel workers.
type ScalePolicy interface {
	// Reduce is called where a kernel's ciphertext scale may have grown past
	// base; it returns the ciphertext to continue with (rescaled or not).
	Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext
}

// GreedyPolicy reproduces the pre-pass op-local behavior: rescale at every
// site by the largest divisor the scheme offers under scale/base. It is the
// fallback policy (a nil ExecOptions.Scale) and the baseline the lazy plan
// is validated against.
type GreedyPolicy struct{}

// Reduce applies the greedy rescale protocol.
func (GreedyPolicy) Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	return tryRescale(b, c, base)
}

// PlanPolicy executes a compiler-emitted ScalePlan: sites planned ScaleDefer
// keep their grown scale, everything else (including unplanned sites) takes
// the greedy protocol.
type PlanPolicy struct {
	Plan *ScalePlan
}

// Reduce consults the plan for this (node, scale) site.
func (p PlanPolicy) Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	s := b.Scale(c)
	if s <= base*1.0001 {
		return c
	}
	if p.Plan != nil {
		if d, ok := p.Plan.Decisions[ScaleKeyFor(node, s)]; ok && d == ScaleDefer {
			return c
		}
	}
	return tryRescale(b, c, base)
}

// reduce routes a kernel reduce site through the configured policy (greedy
// when none is set). The executor stamps the current circuit node into o
// before dispatching a kernel, so policies see stable site identities.
func (o ExecOptions) reduce(b hisa.Backend, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	if o.Scale == nil {
		return tryRescale(b, c, base)
	}
	return o.Scale.Reduce(b, o.node, c, base)
}
