package htc

import (
	"math"
	"math/big"

	"chet/internal/hisa"
)

// This file centralizes the kernels' rescale protocol behind a policy
// object. Kernels never call tryRescale directly any more: every site where
// a kernel would reduce a grown scale back toward a base scale routes
// through ExecOptions.reduce, which consults a ScalePolicy. The compiler's
// scale-management pass (core/scalepass) records a per-site plan on its
// analysis run and ships it back here as a PlanPolicy, turning rescale
// placement from a hard-coded per-op heuristic into a graph-level decision —
// the nGraph-HE2-style lazy rescaling CHET's op-local protocol lacked.

// ScaleDecision is the planned action at one reduce site.
type ScaleDecision uint8

const (
	// ScaleRescale applies the greedy rescale protocol at this site (the
	// pre-pass behavior): rescale by the largest divisor under scale/base.
	ScaleRescale ScaleDecision = iota
	// ScaleDefer leaves the ciphertext at its grown scale; a later site (or
	// decryption, which normalizes by the final scale) absorbs the excess.
	ScaleDefer
)

func (d ScaleDecision) String() string {
	if d == ScaleDefer {
		return "defer"
	}
	return "rescale"
}

// ScaleKey identifies a reduce site within a circuit node. Sites are keyed
// by the quantized input scale rather than by call-site position, so the
// lookup is stateless: parallel kernel workers hitting sites in any order
// resolve the same decisions as the compiler's serial recording run. Two
// different sites of one node collide only when they see the same scale, in
// which case they would make the same greedy decision anyway; the recorder
// drops any key it observes with conflicting decisions.
type ScaleKey struct {
	// Node is the circuit node ID executing the kernel.
	Node int
	// ScaleBits is round(log2(scale)) of the ciphertext entering the site.
	// Integer rounding absorbs the sub-millibit drift of near-power-of-two
	// RNS primes across a chain.
	ScaleBits int
}

// ScaleKeyFor builds the key for a reduce site observing the given scale.
func ScaleKeyFor(node int, scale float64) ScaleKey {
	return ScaleKey{Node: node, ScaleBits: int(math.Round(math.Log2(scale)))}
}

// ScalePlan is the compiler-emitted rescale placement: one decision per
// observed reduce site. Sites missing from the map (a kernel path the
// recording run did not take) fall back to the greedy protocol, which is
// always functionally safe.
type ScalePlan struct {
	Decisions map[ScaleKey]ScaleDecision
}

// Deferred counts the sites planned as ScaleDefer.
func (p *ScalePlan) Deferred() int {
	n := 0
	for _, d := range p.Decisions {
		if d == ScaleDefer {
			n++
		}
	}
	return n
}

// ScalePolicy decides what happens at each kernel reduce site. Policies
// must be safe for concurrent use by parallel kernel workers.
type ScalePolicy interface {
	// Reduce is called where a kernel's ciphertext scale may have grown past
	// base; it returns the ciphertext to continue with (rescaled or not).
	Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext
}

// scaleDecider is an optional ScalePolicy refinement: policies that can
// predict a site's decision without executing it implement Defers, which
// lets reduceRelin hand the whole rescale-plus-relinearize sequence to a
// backend's fused pass. Policies without it (custom ScalePolicy
// implementations) still work — reduceRelin falls back to the conventional
// relinearize-then-Reduce order for them.
type scaleDecider interface {
	// Defers reports whether the site (node, scale) keeps its grown scale.
	Defers(node int, scale float64) bool
}

// GreedyPolicy reproduces the pre-pass op-local behavior: rescale at every
// site by the largest divisor the scheme offers under scale/base. It is the
// fallback policy (a nil ExecOptions.Scale) and the baseline the lazy plan
// is validated against.
type GreedyPolicy struct{}

// Reduce applies the greedy rescale protocol.
func (GreedyPolicy) Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	return tryRescale(b, c, base)
}

// Defers reports false: the greedy protocol rescales at every opportunity.
func (GreedyPolicy) Defers(int, float64) bool { return false }

// PlanPolicy executes a compiler-emitted ScalePlan: sites planned ScaleDefer
// keep their grown scale, everything else (including unplanned sites) takes
// the greedy protocol.
type PlanPolicy struct {
	Plan *ScalePlan
}

// Reduce consults the plan for this (node, scale) site.
func (p PlanPolicy) Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	s := b.Scale(c)
	if s <= base*1.0001 {
		return c
	}
	if p.Defers(node, s) {
		return c
	}
	return tryRescale(b, c, base)
}

// Defers consults the plan for this (node, scale) site.
func (p PlanPolicy) Defers(node int, scale float64) bool {
	if p.Plan == nil {
		return false
	}
	d, ok := p.Plan.Decisions[ScaleKeyFor(node, scale)]
	return ok && d == ScaleDefer
}

// reduce routes a kernel reduce site through the configured policy (greedy
// when none is set). The executor stamps the current circuit node into o
// before dispatching a kernel, so policies see stable site identities.
func (o ExecOptions) reduce(b hisa.Backend, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	if o.Scale == nil {
		return tryRescale(b, c, base)
	}
	return o.Scale.Reduce(b, o.node, c, base)
}

// reduceRelin closes a ciphertext-ciphertext product: it applies this site's
// scale decision AND the relinearization, fusing them into one pass over the
// limbs when the backend supports it (hisa.FusedRescaleBackend). c may be a
// lazy degree-2 product or an eager degree-1 one.
//
// The fused path needs the site's decision up front, so it requires a
// predictable policy (nil — greedy — or a scaleDecider). Unpredictable
// custom policies, and backends without the fused capability, take the
// conventional relinearize-then-Reduce order instead. Sites that defer
// their rescale still relinearize.
func (o ExecOptions) reduceRelin(b hisa.Backend, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	lr, lazy := hisa.AsLazyRelin(b)
	if !lazy {
		// Eager backends already returned degree 1; only the scale moves.
		return o.reduce(b, c, base)
	}
	fr, fused := hisa.AsFusedRescale(b)
	var decider scaleDecider
	if o.Scale != nil {
		var ok bool
		if decider, ok = o.Scale.(scaleDecider); !ok {
			fused = false
		}
	}
	if !fused {
		return o.reduce(b, lr.Relinearize(c), base)
	}
	s := b.Scale(c)
	doRescale := s > base*1.0001
	if doRescale && decider != nil && decider.Defers(o.node, s) {
		doRescale = false
	}
	if doRescale {
		if ub, _ := big.NewFloat(s / base).Int(nil); ub.Sign() > 0 {
			return fr.RelinearizeRescale(c, b.MaxRescale(c, ub))
		}
	}
	return lr.Relinearize(c)
}
