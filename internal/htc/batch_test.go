package htc

import (
	"math"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
	"chet/internal/tensor"
)

func argmax(t *tensor.Tensor) int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// batchParity runs the shared property on one backend: a batched evaluation
// of B images must agree per-lane with B independent unbatched evaluations —
// elementwise within tol, and with identical argmax predictions.
func batchParity(t *testing.T, name string, mkBackend func() hisa.Backend, sc Scales, tol float64) {
	t.Helper()
	const B = 4
	c, _ := testCNN()
	plan := PlanFor(c, PolicyCHW)
	plan.Batch = B

	imgs := make([]*tensor.Tensor, B)
	for i := range imgs {
		imgs[i] = randTensor([]int{1, 8, 8}, 1, int64(500+i))
	}

	b := mkBackend()
	in := EncryptTensorBatch(b, imgs, plan, sc)
	out := Execute(b, c, in, PolicyCHW, sc)
	batched := DecryptTensorBatch(b, out, B)

	unplan := PlanFor(c, PolicyCHW) // same geometry decisions, batch 1
	for i, img := range imgs {
		ub := mkBackend()
		uin := EncryptTensor(ub, img, unplan, sc)
		uout := Execute(ub, c, uin, PolicyCHW, sc)
		want := DecryptTensor(ub, uout)
		got := batched[i]
		if got.Size() != want.Size() {
			t.Fatalf("%s lane %d: %d outputs, want %d", name, i, got.Size(), want.Size())
		}
		for k := range want.Data {
			if math.Abs(got.Data[k]-want.Data[k]) > tol {
				t.Fatalf("%s lane %d output %d: batched %g vs unbatched %g (tol %g)",
					name, i, k, got.Data[k], want.Data[k], tol)
			}
		}
		if ga, wa := argmax(got), argmax(want); ga != wa {
			t.Fatalf("%s lane %d: batched argmax %d != unbatched argmax %d", name, i, ga, wa)
		}
	}
}

func TestBatchedParityRef(t *testing.T) {
	batchParity(t, "ref", func() hisa.Backend { return hisa.NewRefBackend(4096) },
		DefaultScales(), 1e-5)
}

func TestBatchedParitySim(t *testing.T) {
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(30), Pu: math.Exp2(30), Pm: math.Exp2(25)}
	batchParity(t, "sim", func() hisa.Backend {
		return hisa.NewSimBackend(hisa.SimParams{LogN: 13, LogQ: 900, Seed: 7})
	}, sc, 5e-2)
}

func TestBatchedParityRNS(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	logQ := []int{50}
	for i := 0; i < 15; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 11, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40)}
	batchParity(t, "rns", func() hisa.Backend {
		return hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(101)})
	}, sc, 1e-2)
}

// TestPackBatchRoundTrip proves the server-side coalescing primitive: images
// encrypted independently at lane 0 of a batch-capacity layout, packed
// homomorphically, decrypt per-lane to the original images.
func TestPackBatchRoundTrip(t *testing.T) {
	const B = 4
	b := refBackend()
	sc := DefaultScales()
	plan := Plan{Layout: LayoutCHW, Batch: B}

	imgs := make([]*tensor.Tensor, B)
	lanes := make([]*CipherTensor, B)
	for i := range imgs {
		imgs[i] = randTensor([]int{3, 5, 5}, 1, int64(520+i))
		lanes[i] = EncryptTensor(b, imgs[i], plan, sc)
	}
	packed := PackBatch(b, lanes)
	for i, img := range imgs {
		tensorsClose(t, "packed lane", DecryptTensorLane(b, packed, i), img, 1e-9)
	}
	// A lane view of the packed tensor addresses the same image without any
	// homomorphic work.
	view := LaneView(packed, 2, b.Slots())
	tensorsClose(t, "lane view", DecryptTensor(b, view), imgs[2], 1e-9)
}

// TestPackBatchRejectsScaleMismatch: the pack adds strictly, so a tensor
// whose declared scale disagrees must panic rather than be silently aligned
// into corrupting its batch-mates.
func TestPackBatchRejectsScaleMismatch(t *testing.T) {
	const B = 2
	b := hisa.NewSimBackend(hisa.SimParams{LogN: 10, LogQ: 300, Seed: 9})
	sc := DefaultScales()
	plan := Plan{Layout: LayoutCHW, Batch: B}
	good := EncryptTensor(b, randTensor([]int{1, 3, 3}, 1, 530), plan, sc)
	bad := EncryptTensor(b, randTensor([]int{1, 3, 3}, 1, 531),
		plan, Scales{Pc: sc.Pc * 4, Pw: sc.Pw, Pu: sc.Pu, Pm: sc.Pm})
	defer func() {
		if recover() == nil {
			t.Fatal("PackBatch accepted a scale-mismatched tensor")
		}
	}()
	PackBatch(b, []*CipherTensor{good, bad})
}
