// Batch-axis slot packing (nGraph-HE2-style): B images share one ciphertext
// vector by living in disjoint power-of-two-aligned lanes of BatchStride
// slots. Every kernel in this package is batch-oblivious — its homomorphic
// rotations are lane-local and its plaintext vectors are replicated per lane
// — so one evaluation amortizes across the whole batch.
package htc

import (
	"fmt"

	"chet/internal/hisa"
	"chet/internal/tensor"
)

// EncryptTensorBatch encodes and encrypts up to plan-capacity CHW images
// into the batch lanes of one CipherTensor. All images must share the same
// shape. Unused lanes stay zero, preserving the zero-outside-valid-slots
// invariant for partial batches.
func EncryptTensorBatch(b hisa.Backend, ts []*tensor.Tensor, plan Plan, sc Scales) *CipherTensor {
	if len(ts) == 0 {
		panic("htc: EncryptTensorBatch wants at least one tensor")
	}
	if len(ts) > plan.batches() {
		panic(fmt.Sprintf("htc: %d images exceed the plan's batch capacity %d", len(ts), plan.Batch))
	}
	shape := ts[0].Shape
	for i, t := range ts {
		if t.Rank() != 3 || t.Shape[0] != shape[0] || t.Shape[1] != shape[1] || t.Shape[2] != shape[2] {
			panic(fmt.Sprintf("htc: EncryptTensorBatch image %d has shape %v, want %v", i, t.Shape, shape))
		}
	}
	c, h, w := shape[0], shape[1], shape[2]
	meta := NewLayout(plan, c, h, w, b.Slots())

	numCTs := (c + meta.CPerCT - 1) / meta.CPerCT
	meta.CTs = make([]hisa.Ciphertext, numCTs)
	ls := meta.laneStride(b.Slots())
	if meta.Complex {
		// Complex packing: image i lives in the real (i even) or imaginary
		// (i odd) slot component of physical lane i/2 — twice the images at
		// the same ring size.
		cb := mustConjugate(b)
		for g := 0; g < numCTs; g++ {
			cvals := make([]complex128, b.Slots())
			for i, t := range ts {
				base := (i / 2) * ls
				imPart := i%2 == 1
				for ci := 0; ci < meta.CPerCT; ci++ {
					ch := g*meta.CPerCT + ci
					if ch >= c {
						break
					}
					for y := 0; y < h; y++ {
						for x := 0; x < w; x++ {
							idx := base + meta.pos(ci, y, x)
							if imPart {
								cvals[idx] = complex(real(cvals[idx]), t.At(ch, y, x))
							} else {
								cvals[idx] = complex(t.At(ch, y, x), imag(cvals[idx]))
							}
						}
					}
				}
			}
			meta.CTs[g] = cb.EncryptC(cvals, sc.Pc)
		}
		meta.validate(b.Slots())
		return &meta
	}
	for g := 0; g < numCTs; g++ {
		vals := make([]float64, b.Slots())
		for lane, t := range ts {
			base := lane * ls
			for ci := 0; ci < meta.CPerCT; ci++ {
				ch := g*meta.CPerCT + ci
				if ch >= c {
					break
				}
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						vals[base+meta.pos(ci, y, x)] = t.At(ch, y, x)
					}
				}
			}
		}
		meta.CTs[g] = b.Encrypt(b.Encode(vals, sc.Pc))
	}
	meta.validate(b.Slots())
	return &meta
}

// DecryptTensorLane decrypts one packed image by its image index. For real
// packing image i is batch lane i; for complex packing image i lives in the
// real (i even) or imaginary (i odd) component of physical lane i/2.
func DecryptTensorLane(b hisa.Backend, ct *CipherTensor, lane int) *tensor.Tensor {
	if lane < 0 || lane >= ct.Batches() {
		panic(fmt.Sprintf("htc: lane %d out of range for batch %d", lane, ct.Batches()))
	}
	out := tensor.New(ct.C, ct.H, ct.W)
	if ct.Complex {
		cb := mustConjugate(b)
		base := (lane / 2) * ct.laneStride(b.Slots())
		imPart := lane%2 == 1
		for g := 0; g < ct.NumCTs(); g++ {
			vals := cb.DecryptC(ct.CTs[g])
			for ci := 0; ci < ct.CPerCT; ci++ {
				ch := g*ct.CPerCT + ci
				if ch >= ct.C {
					break
				}
				for y := 0; y < ct.H; y++ {
					for x := 0; x < ct.W; x++ {
						v := vals[base+ct.pos(ci, y, x)]
						if imPart {
							out.Set(imag(v), ch, y, x)
						} else {
							out.Set(real(v), ch, y, x)
						}
					}
				}
			}
		}
		return out
	}
	base := lane * ct.laneStride(b.Slots())
	for g := 0; g < ct.NumCTs(); g++ {
		vals := b.Decode(b.Decrypt(ct.CTs[g]))
		for ci := 0; ci < ct.CPerCT; ci++ {
			ch := g*ct.CPerCT + ci
			if ch >= ct.C {
				break
			}
			for y := 0; y < ct.H; y++ {
				for x := 0; x < ct.W; x++ {
					out.Set(vals[base+ct.pos(ci, y, x)], ch, y, x)
				}
			}
		}
	}
	return out
}

// DecryptTensorBatch decrypts all n leading batch lanes (n <= Batches()).
func DecryptTensorBatch(b hisa.Backend, ct *CipherTensor, n int) []*tensor.Tensor {
	if n < 1 || n > ct.Batches() {
		panic(fmt.Sprintf("htc: cannot decrypt %d lanes of a batch-%d tensor", n, ct.Batches()))
	}
	out := make([]*tensor.Tensor, n)
	for lane := 0; lane < n; lane++ {
		out[lane] = DecryptTensorLane(b, ct, lane)
	}
	return out
}

// LaneView returns metadata addressing a single physical lane of a batched
// tensor as an unbatched view: same ciphertexts, origin shifted into the
// lane. The view shares the underlying ciphertexts with ct. Decrypting the
// view yields exactly that lane's image; other lanes' slots are simply never
// read. Under complex packing the index is a physical lane (of Lanes(), not
// Batches()); a real Decode of the view reads the lane's real component,
// which is how the server-side coalescing path (PackBatch) addresses its
// real-only occupants.
func LaneView(ct *CipherTensor, lane, slots int) *CipherTensor {
	if lane < 0 || lane >= ct.Lanes() {
		panic(fmt.Sprintf("htc: lane %d out of range for %d lanes", lane, ct.Lanes()))
	}
	v := *ct
	v.Offset += lane * ct.laneStride(slots)
	v.B = 1
	v.BatchStride = 0
	v.Complex = false
	return &v
}

// PackBatch combines n single-lane tensors (each carrying its image in lane
// 0 of a batch-capacity layout) into one batched tensor by rotating tensor i
// right into lane i and adding. This is the server-side coalescing path:
// clients encrypt unbatched-at-lane-0 under the batched layout, and the
// server packs compatible requests homomorphically. The rotation amounts
// i*BatchStride must be covered by the session's rotation keys (the compiler
// provisions them when Options.Batch > 1).
//
// The additions are deliberately strict (no scale alignment): all inputs
// were encrypted at the same scale by construction, and a request whose
// ciphertexts arrive scale-poisoned must fail loudly here rather than be
// silently "repaired" into corrupting its batch-mates.
func PackBatch(b hisa.Backend, ts []*CipherTensor) *CipherTensor {
	if len(ts) == 0 {
		panic("htc: PackBatch wants at least one tensor")
	}
	// Rotation cannot move data between the real and imaginary slot
	// components, so homomorphic packing fills one image per physical lane
	// (its real part) even under a complex plan: coalescing capacity is
	// Lanes(). Full complex occupancy is the client-side path
	// (EncryptTensorBatch), which packs components at encode time.
	first := ts[0]
	if len(ts) > first.Lanes() {
		panic(fmt.Sprintf("htc: cannot pack %d tensors into %d batch lanes", len(ts), first.Lanes()))
	}
	for i, t := range ts {
		if t.C != first.C || t.H != first.H || t.W != first.W ||
			t.Offset != first.Offset || t.RowStride != first.RowStride ||
			t.ColStride != first.ColStride || t.ChanStride != first.ChanStride ||
			t.CPerCT != first.CPerCT || t.B != first.B || t.BatchStride != first.BatchStride ||
			t.Complex != first.Complex || t.NumCTs() != first.NumCTs() {
			panic(fmt.Sprintf("htc: PackBatch tensor %d has incompatible geometry", i))
		}
	}
	out := metaClone(first)
	out.CTs = make([]hisa.Ciphertext, first.NumCTs())
	for g := 0; g < first.NumCTs(); g++ {
		acc := ts[0].CTs[g]
		for i := 1; i < len(ts); i++ {
			acc = b.Add(acc, b.RotRight(ts[i].CTs[g], i*first.BatchStride))
		}
		out.CTs[g] = acc
	}
	out.validate(b.Slots())
	return &out
}
