package htc

import (
	"math"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// complexParity is batchParity's complex-packed sibling: B images packed two
// per slot lane (real and imaginary components) must decode per-lane to the
// same outputs as B independent unbatched real evaluations. This exercises
// every packing-aware site at once — addVecBoth/addScalarBoth bias reaching
// both components, activationPairwise's single-conjugation identity, and the
// deferred relinearization on backends that support it.
func complexParity(t *testing.T, name string, mkBackend func() hisa.Backend, sc Scales, tol float64) {
	t.Helper()
	const B = 4
	c, _ := testCNN()
	plan := PlanFor(c, PolicyCHW)
	plan.Batch = B
	plan.Complex = true

	imgs := make([]*tensor.Tensor, B)
	for i := range imgs {
		imgs[i] = randTensor([]int{1, 8, 8}, 1, int64(700+i))
	}

	b := mkBackend()
	in := EncryptTensorBatch(b, imgs, plan, sc)
	if !in.Complex {
		t.Fatalf("%s: encrypted batch lost the Complex flag", name)
	}
	out := Execute(b, c, in, PolicyCHW, sc)
	batched := DecryptTensorBatch(b, out, B)

	unplan := PlanFor(c, PolicyCHW) // same geometry, batch 1, real packing
	for i, img := range imgs {
		ub := mkBackend()
		uin := EncryptTensor(ub, img, unplan, sc)
		uout := Execute(ub, c, uin, PolicyCHW, sc)
		want := DecryptTensor(ub, uout)
		got := batched[i]
		if got.Size() != want.Size() {
			t.Fatalf("%s lane %d: %d outputs, want %d", name, i, got.Size(), want.Size())
		}
		for k := range want.Data {
			if math.Abs(got.Data[k]-want.Data[k]) > tol {
				t.Fatalf("%s lane %d output %d: complex-packed %g vs unbatched %g (tol %g)",
					name, i, k, got.Data[k], want.Data[k], tol)
			}
		}
		if ga, wa := argmax(got), argmax(want); ga != wa {
			t.Fatalf("%s lane %d: complex-packed argmax %d != unbatched argmax %d", name, i, ga, wa)
		}
	}
}

func TestComplexParityRef(t *testing.T) {
	complexParity(t, "ref", func() hisa.Backend { return hisa.NewRefBackend(4096) },
		DefaultScales(), 1e-5)
}

func TestComplexParitySim(t *testing.T) {
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(30), Pu: math.Exp2(30), Pm: math.Exp2(25)}
	complexParity(t, "sim", func() hisa.Backend {
		return hisa.NewSimBackend(hisa.SimParams{LogN: 13, LogQ: 900, Seed: 7})
	}, sc, 5e-2)
}

func TestComplexParityRNS(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	logQ := []int{50}
	for i := 0; i < 15; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 11, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40)}
	complexParity(t, "rns", func() hisa.Backend {
		return hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(103)})
	}, sc, 1e-2)
}

// TestMulPairwiseComponentwise pins the conjugation identity directly: for
// complex-packed x = p+qi and y = r+si, mulPairwise must return pr + qs·i —
// each lane sees an ordinary elementwise product, nothing leaks across
// components. Verified on the plaintext oracle where the only error is float
// roundoff.
func TestMulPairwiseComponentwise(t *testing.T) {
	b := refBackend()
	sc := DefaultScales()
	plan := Plan{Layout: LayoutCHW, Batch: 2, Complex: true}

	ts := make([]*tensor.Tensor, 4)
	for i := range ts {
		ts[i] = randTensor([]int{2, 3, 3}, 1, int64(710+i))
	}
	x := EncryptTensorBatch(b, ts[:2], plan, sc)
	y := EncryptTensorBatch(b, ts[2:], plan, sc)

	out := metaClone(x)
	out.CTs = make([]hisa.Ciphertext, x.NumCTs())
	for g := range x.CTs {
		out.CTs[g] = mulPairwise(b, x.CTs[g], y.CTs[g])
	}

	for lane := 0; lane < 2; lane++ {
		want := tensor.New(ts[lane].Shape...)
		for k := range want.Data {
			want.Data[k] = ts[lane].Data[k] * ts[2+lane].Data[k]
		}
		tensorsClose(t, "pairwise product lane", DecryptTensorLane(b, &out, lane), want, 1e-9)
	}
}
