package htc

import (
	"runtime"
	"sync"
	"sync/atomic"

	"chet/internal/circuit"
)

// ExecOptions configures homomorphic execution. The zero value executes
// serially, which is always safe (including on the compiler's analysis
// backends, which are not goroutine-safe).
type ExecOptions struct {
	// Workers is the number of goroutines the kernels fan independent
	// ciphertext operations across. Values <= 1 execute serially. Parallel
	// execution is bit-identical to serial execution on every executable
	// backend: per-output work is computed concurrently but accumulated in
	// the serial program order.
	Workers int

	// OnNode, when non-nil, observes each circuit node's output tensor as
	// it is computed, on the executing goroutine in circuit order. The
	// telemetry precision profiler uses it to compare every layer against
	// the plaintext oracle; observers must not mutate the tensor.
	OnNode func(n *circuit.Node, out *CipherTensor)

	// Scale routes every kernel rescale site through a policy (see
	// scale.go). nil means the op-local greedy protocol, which preserves
	// the pre-pass behavior exactly.
	Scale ScalePolicy

	// node is the circuit node ID currently executing; the executor stamps
	// it into the per-node options copy it hands each kernel so scale
	// policies can key decisions by site.
	node int
}

// DefaultExecOptions uses one worker per available CPU.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{Workers: runtime.GOMAXPROCS(0)}
}

func (o ExecOptions) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines,
// returning when all iterations are done. Iterations are claimed from a
// shared atomic counter, so uneven per-iteration cost balances itself
// (the runtime analogue of the cost model's makespan view). workers <= 1
// or n <= 1 degrades to a plain loop on the calling goroutine.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
