package htc

import (
	"math"
	"testing"

	"chet/internal/hisa"
	"chet/internal/tensor"
)

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestConv2DMultiGroupCHW(t *testing.T) {
	// Force multiple ciphertexts per tensor: 6 channels of 2x2 on a 16-slot
	// backend pack 4 channels per ciphertext.
	b := hisa.NewRefBackend(16)
	sc := DefaultScales()
	in := randTensor([]int{6, 2, 2}, 1, 61)
	filters := randTensor([]int{3, 6, 1, 1}, 0.5, 62)
	want := tensor.Conv2D(in, filters, 1, 0)

	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW}, sc)
	if ct.NumCTs() < 2 {
		t.Fatalf("expected multi-ciphertext packing, got %d cts (CPerCT=%d)", ct.NumCTs(), ct.CPerCT)
	}
	out := Conv2D(b, ct, filters, nil, 1, 0, sc)
	tensorsClose(t, "multi-group conv", DecryptTensor(b, out), want, 1e-6)
}

func TestDenseMultiGroupInput(t *testing.T) {
	b := hisa.NewRefBackend(16)
	sc := DefaultScales()
	in := randTensor([]int{6, 2, 2}, 1, 63)
	w := randTensor([]int{3, 24}, 0.5, 64)
	want := tensor.MatVec(w, in.Reshape(24), nil)

	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW}, sc)
	out := Dense(b, ct, w, nil, sc)
	got := DecryptTensor(b, out).Reshape(3)
	tensorsClose(t, "multi-group dense", got, want, 1e-6)
}

func TestPoolWindowNotEqualStride(t *testing.T) {
	// Overlapping pooling (window 3, stride 1) exercises independent window
	// and stride handling.
	in := randTensor([]int{2, 5, 5}, 1, 65)
	want := tensor.AvgPool2D(in, 3, 1)
	for _, layout := range []Layout{LayoutHW, LayoutCHW} {
		got := roundTrip(t, layout, 0, in,
			func(b hisa.Backend, ct *CipherTensor, sc Scales) *CipherTensor {
				return AvgPool2D(b, ct, 3, 1, sc)
			})
		tensorsClose(t, layout.String(), got, want, 1e-6)
	}
}

func TestScaleProtocolKeepsWorkingScale(t *testing.T) {
	// After each kernel the ciphertext scale must sit near the base Pc —
	// the rescaling protocol at work (Section 5.5 of the paper).
	b := hisa.NewRefBackend(1024)
	sc := DefaultScales()
	in := randTensor([]int{2, 6, 6}, 1, 66)
	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW}, sc)

	conv := Conv2D(b, ct, randTensor([]int{2, 2, 3, 3}, 0.5, 67), nil, 1, 0, sc)
	for _, c := range conv.CTs {
		if s := b.Scale(c); math.Abs(math.Log2(s)-math.Log2(sc.Pc)) > 1 {
			t.Fatalf("conv output scale 2^%.1f drifted from base 2^%.1f",
				math.Log2(s), math.Log2(sc.Pc))
		}
	}
	act := Activation(b, conv, 0.25, 1, sc)
	for _, c := range act.CTs {
		if s := b.Scale(c); math.Abs(math.Log2(s)-math.Log2(sc.Pc)) > 1 {
			t.Fatalf("activation output scale 2^%.1f drifted", math.Log2(s))
		}
	}
}

func TestKernelValidationPanics(t *testing.T) {
	b := hisa.NewRefBackend(1024)
	sc := DefaultScales()
	in := randTensor([]int{2, 4, 4}, 1, 68)
	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW}, sc)

	assertPanics(t, "conv filter channels", func() {
		Conv2D(b, ct, randTensor([]int{2, 3, 3, 3}, 1, 69), nil, 1, 0, sc)
	})
	assertPanics(t, "conv without apron", func() {
		Conv2D(b, ct, randTensor([]int{2, 2, 3, 3}, 1, 70), nil, 1, 1, sc)
	})
	assertPanics(t, "pool empty output", func() {
		AvgPool2D(b, ct, 5, 1, sc)
	})
	assertPanics(t, "dense weight size", func() {
		Dense(b, ct, randTensor([]int{2, 5}, 1, 71), nil, sc)
	})
	assertPanics(t, "polyeval degree 0", func() {
		PolyEval(b, ct, []float64{1}, sc)
	})
	assertPanics(t, "pad without apron", func() {
		Pad2D(ct, 1)
	})
	assertPanics(t, "batchnorm size", func() {
		BatchNorm(b, ct, tensor.New(3), tensor.New(3), sc)
	})
	assertPanics(t, "encrypt non-CHW", func() {
		EncryptTensor(b, tensor.New(4), Plan{Layout: LayoutHW}, sc)
	})
	assertPanics(t, "layout too big for slots", func() {
		small := hisa.NewRefBackend(16)
		EncryptTensor(small, randTensor([]int{1, 8, 8}, 1, 72), Plan{Layout: LayoutHW}, sc)
	})

	other := EncryptTensor(b, randTensor([]int{2, 4, 4}, 1, 73), Plan{Layout: LayoutHW}, sc)
	assertPanics(t, "add layout mismatch", func() {
		Add(b, ct, other)
	})
	assertPanics(t, "concat geometry mismatch", func() {
		pooled := AvgPool2D(b, ct, 2, 2, sc)
		Concat(b, sc, ct, pooled)
	})
}

func TestExecutePolicyInputMismatchPanics(t *testing.T) {
	c, img := testCNN()
	b := refBackend()
	sc := DefaultScales()
	in := EncryptTensor(b, img, PlanFor(c, PolicyCHW), sc)
	assertPanics(t, "wrong input layout", func() {
		Execute(b, c, in, PolicyHW, sc)
	})
}

func TestConcatThreeWay(t *testing.T) {
	b := hisa.NewRefBackend(1024)
	sc := DefaultScales()
	xs := make([]*CipherTensor, 3)
	plains := make([]*tensor.Tensor, 3)
	for i := range xs {
		plains[i] = randTensor([]int{2, 3, 3}, 1, int64(80+i))
		xs[i] = EncryptTensor(b, plains[i], Plan{Layout: LayoutCHW}, sc)
	}
	want := tensor.ConcatChannels(plains...)
	got := DecryptTensor(b, Concat(b, sc, xs...))
	tensorsClose(t, "3-way concat", got, want, 1e-6)
}

func TestPolyEvalWithConstantTermKeepsZeroInvariant(t *testing.T) {
	// p(x) = x^2 + 1: the constant must appear only at valid positions so
	// later kernels still see zeros elsewhere.
	b := hisa.NewRefBackend(256)
	sc := DefaultScales()
	in := randTensor([]int{1, 3, 3}, 1, 90)
	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW}, sc)
	out := PolyEval(b, ct, []float64{1, 0, 1}, sc)

	// Reference values.
	want := in.Clone()
	for i, v := range want.Data {
		want.Data[i] = v*v + 1
	}
	tensorsClose(t, "values", DecryptTensor(b, out), want, 1e-6)

	// Invariant: decode the raw ciphertext and check invalid slots ~ 0.
	raw := b.Decode(b.Decrypt(out.CTs[0]))
	valid := map[int]bool{}
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			valid[out.pos(0, y, x)] = true
		}
	}
	for i, v := range raw {
		if !valid[i] && math.Abs(v) > 1e-9 {
			t.Fatalf("invalid slot %d holds %g; zero invariant broken", i, v)
		}
	}
}

func TestZeroInvariantAfterEveryKernel(t *testing.T) {
	// The documented invariant: all slots outside valid positions stay zero
	// after every kernel (checked on the exact Ref backend).
	b := hisa.NewRefBackend(1024)
	sc := DefaultScales()
	in := randTensor([]int{2, 6, 6}, 1, 91)
	ct := EncryptTensor(b, in, Plan{Layout: LayoutCHW, Apron: 1}, sc)

	check := func(name string, x *CipherTensor) {
		t.Helper()
		for g := range x.CTs {
			raw := b.Decode(b.Decrypt(x.CTs[g]))
			valid := map[int]bool{}
			for ci := 0; ci < x.CPerCT; ci++ {
				if g*x.CPerCT+ci >= x.C {
					break
				}
				for y := 0; y < x.H; y++ {
					for xx := 0; xx < x.W; xx++ {
						valid[x.pos(ci, y, xx)] = true
					}
				}
			}
			for i, v := range raw {
				if !valid[i] && math.Abs(v) > 1e-9 {
					t.Fatalf("%s: ct %d slot %d holds %g", name, g, i, v)
				}
			}
		}
	}

	conv := Conv2D(b, ct, randTensor([]int{3, 2, 3, 3}, 0.5, 92), randTensor([]int{3}, 0.2, 93), 1, 1, sc)
	check("conv", conv)
	act := Activation(b, conv, 0.25, 1, sc)
	check("activation", act)
	pool := AvgPool2D(b, act, 2, 2, sc)
	check("pool", pool)
	bn := BatchNorm(b, pool, randTensor([]int{3}, 1, 94), randTensor([]int{3}, 1, 95), sc)
	check("batchnorm", bn)
	gap := GlobalAvgPool2D(b, bn, sc)
	check("globalpool", gap)
}
