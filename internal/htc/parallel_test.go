package htc

import (
	"math"
	"sync"
	"testing"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// execBoth runs the circuit serially and with 8 workers on the same backend
// and input ciphertext, returning both decrypted outputs.
func execBoth(b hisa.Backend, m *nn.Model, img *tensor.Tensor, policy LayoutPolicy, sc Scales) (serial, parallel *tensor.Tensor) {
	in := EncryptTensor(b, img, PlanFor(m.Circuit, policy), sc)
	serial = DecryptTensor(b, Execute(b, m.Circuit, in, policy, sc))
	parallel = DecryptTensor(b, ExecuteOpts(b, m.Circuit, in, policy, sc, ExecOptions{Workers: 8}))
	return serial, parallel
}

func requireBitIdentical(t *testing.T, name string, serial, parallel *tensor.Tensor) {
	t.Helper()
	if serial.Size() != parallel.Size() {
		t.Fatalf("%s: size mismatch: %d vs %d", name, serial.Size(), parallel.Size())
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("%s: slot %d: parallel %v != serial %v (not bit-identical)",
				name, i, parallel.Data[i], serial.Data[i])
		}
	}
}

// TestParallelExecuteDeterministicRef checks that Workers=8 execution of
// LeNet-5-small is bit-identical to serial execution on the reference
// backend, for all four layout policies: the kernels compute per-output
// work in parallel but fold accumulations in serial program order.
func TestParallelExecuteDeterministicRef(t *testing.T) {
	m := nn.LeNet5Small()
	img := nn.SyntheticImage(m.InputShape, 7)
	for _, policy := range AllPolicies {
		b := hisa.NewRefBackend(4096)
		sc := DefaultScales()
		serial, parallel := execBoth(b, m, img, policy, sc)
		requireBitIdentical(t, "ref/"+policy.String(), serial, parallel)
	}
}

// TestParallelExecuteDeterministicSim is the same check on the simulation
// backend, whose noise-estimate bookkeeping rides along with every op.
// NoNoise decryption keeps the comparison exact.
func TestParallelExecuteDeterministicSim(t *testing.T) {
	m := nn.LeNet5Small()
	img := nn.SyntheticImage(m.InputShape, 7)
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(30), Pu: math.Exp2(30), Pm: math.Exp2(25)}
	for _, policy := range AllPolicies {
		b := hisa.NewSimBackend(hisa.SimParams{LogN: 13, LogQ: 2400, Seed: 5, NoNoise: true})
		serial, parallel := execBoth(b, m, img, policy, sc)
		requireBitIdentical(t, "sim/"+policy.String(), serial, parallel)
	}
}

// TestParallelExecuteDeterministicRNS runs the small test CNN on the real
// RNS-CKKS backend: all evaluator ops are deterministic and the parallel
// schedule folds in serial order, so even lattice execution is
// bit-identical between Workers=1 and Workers=8.
func TestParallelExecuteDeterministicRNS(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	c, img := testCNN()
	logQ := []int{50}
	for i := 0; i < 15; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 11, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{Params: params, PRNG: ring.NewTestPRNG(99)})
	sc := Scales{Pc: math.Exp2(40), Pw: math.Exp2(40), Pu: math.Exp2(40), Pm: math.Exp2(40)}

	in := EncryptTensor(b, img, PlanFor(c, PolicyCHW), sc)
	serial := DecryptTensor(b, Execute(b, c, in, PolicyCHW, sc))
	parallel := DecryptTensor(b, ExecuteOpts(b, c, in, PolicyCHW, sc, ExecOptions{Workers: 8}))
	requireBitIdentical(t, "rns/CHW", serial, parallel)

	// And the values are right, not merely consistent with each other.
	want := c.Evaluate(img)
	got := parallel.Reshape(parallel.Size())
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
			t.Fatalf("rns parallel output diverges from plaintext reference at %d: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
}

// TestRotCacheSingleFlight hammers one rotation cache from 8 goroutines
// (run with -race): every worker must observe the same ciphertext per
// amount, and the backend must see each rotation exactly once.
func TestRotCacheSingleFlight(t *testing.T) {
	inner := hisa.NewRefBackend(64)
	m := hisa.NewMeter(inner, func(x int) int { return 1 })
	base := m.Encrypt(m.Encode([]float64{1, 2, 3, 4}, 1<<20))
	rc := newRotCache(m, base)

	const workers, amounts = 8, 5
	got := make([][amounts]hisa.Ciphertext, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for r := 1; r <= amounts; r++ {
					got[w][r-1] = rc.get(r)
				}
			}
		}(w)
	}
	wg.Wait()

	for r := 0; r < amounts; r++ {
		for w := 1; w < workers; w++ {
			if got[w][r] != got[0][r] {
				t.Fatalf("rotation %d: worker %d saw a different ciphertext than worker 0", r+1, w)
			}
		}
	}
	if n := m.Counts().Rotations; n != amounts {
		t.Fatalf("backend saw %d rotations, want %d (single-flight violated)", n, amounts)
	}
}
