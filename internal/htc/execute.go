package htc

import (
	"fmt"

	"chet/internal/circuit"
	"chet/internal/hisa"
)

// LayoutPolicy is one of the four layout strategies CHET's data-layout
// selection pass searches over (Section 5.3).
type LayoutPolicy int

// The pruned layout search space of the paper.
const (
	// PolicyHW: every operation uses the HW layout.
	PolicyHW LayoutPolicy = iota
	// PolicyCHW: every operation uses the CHW layout.
	PolicyCHW
	// PolicyHWConv: convolutions in HW, everything else in CHW.
	PolicyHWConv
	// PolicyCHWFC: HW until the first fully connected layer, CHW after.
	PolicyCHWFC
)

// AllPolicies lists the search space in the paper's order.
var AllPolicies = []LayoutPolicy{PolicyHW, PolicyCHW, PolicyHWConv, PolicyCHWFC}

func (p LayoutPolicy) String() string {
	switch p {
	case PolicyHW:
		return "HW"
	case PolicyCHW:
		return "CHW"
	case PolicyHWConv:
		return "HW-conv/CHW-rest"
	case PolicyCHWFC:
		return "CHW-fc/HW-before"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// inputLayout returns the layout the circuit input should be encrypted in
// under the policy.
func (p LayoutPolicy) inputLayout() Layout {
	if p == PolicyCHW {
		return LayoutCHW
	}
	return LayoutHW
}

// opLayout returns the layout an operation's inputs should be in.
func (p LayoutPolicy) opLayout(kind circuit.OpKind, seenDense bool) Layout {
	switch p {
	case PolicyHW:
		return LayoutHW
	case PolicyCHW:
		return LayoutCHW
	case PolicyHWConv:
		if kind == circuit.OpConv2D {
			return LayoutHW
		}
		return LayoutCHW
	case PolicyCHWFC:
		if seenDense || kind == circuit.OpDense {
			return LayoutCHW
		}
		return LayoutHW
	default:
		panic("htc: unknown layout policy")
	}
}

// RequiredApron computes the physical apron (zero border) the input layout
// must reserve so every padded convolution in the circuit pulls in zeros:
// the maximum over operations of pad times the cumulative stride at that
// point.
func RequiredApron(c *circuit.Circuit) int {
	cumStride := make(map[int]int, len(c.Nodes))
	apron := 0
	for _, n := range c.Nodes {
		s := 1
		for _, in := range n.Inputs {
			if cumStride[in.ID] > s {
				s = cumStride[in.ID]
			}
		}
		switch n.Kind {
		case circuit.OpConv2D:
			if need := n.Pad * s; need > apron {
				apron = need
			}
			s *= n.Stride
		case circuit.OpAvgPool2D:
			s *= n.Stride
		case circuit.OpPad2D:
			if need := n.Pad * s; need > apron {
				apron = need
			}
		}
		cumStride[n.ID] = s
	}
	return apron
}

// PlanFor returns the input-encryption plan implied by a circuit and policy.
func PlanFor(c *circuit.Circuit, policy LayoutPolicy) Plan {
	return Plan{Layout: policy.inputLayout(), Apron: RequiredApron(c)}
}

// convert brings t into the requested layout (no-op when already there).
func convert(b hisa.Backend, t *CipherTensor, want Layout, sc Scales, opts ExecOptions) *CipherTensor {
	if t.Layout == want {
		return t
	}
	if want == LayoutCHW {
		return ToCHW(b, t)
	}
	return ToHWOpts(b, t, sc, opts)
}

// Execute runs the circuit homomorphically on backend b, serially. The
// input must have been encrypted with PlanFor(c, policy). All layout
// conversions demanded by the policy are inserted automatically.
func Execute(b hisa.Backend, c *circuit.Circuit, input *CipherTensor, policy LayoutPolicy, sc Scales) *CipherTensor {
	return ExecuteOpts(b, c, input, policy, sc, ExecOptions{})
}

// ExecuteOpts runs the circuit homomorphically with the given execution
// options. With opts.Workers > 1 the kernels fan their independent
// per-output work across a worker pool; the backend must satisfy the
// concurrency contract of hisa.Backend (all executable backends do — the
// compiler's analysis backends do not, and must use Execute). The result is
// bit-identical to a serial run on every executable backend.
// scoper is the structural capability a tracing backend
// (telemetry.Tracer) exposes for attributing ops to the circuit node that
// issued them. It is probed structurally, through any wrapper chain, so htc
// carries no dependency on the telemetry package.
type scoper interface {
	StartScope(label string) func()
}

func ExecuteOpts(b hisa.Backend, c *circuit.Circuit, input *CipherTensor, policy LayoutPolicy, sc Scales, opts ExecOptions) *CipherTensor {
	results := make(map[int]*CipherTensor, len(c.Nodes))
	seenDense := false
	var startScope func(string) func()
	if tb, ok := hisa.FindCapability[scoper](b); ok {
		startScope = tb.StartScope
	}
	// nodeOpts is the per-node options copy handed to kernels: it carries
	// the executing node's ID so scale policies can key decisions by site.
	nodeOpts := opts
	arg := func(n *circuit.Node, i int) *CipherTensor {
		t, ok := results[n.Inputs[i].ID]
		if !ok {
			panic(fmt.Sprintf("htc: node %q input not yet computed (circuit not topological?)", n.Name))
		}
		return convert(b, t, policy.opLayout(n.Kind, seenDense), sc, nodeOpts)
	}

	for _, n := range c.Nodes {
		nodeOpts = opts
		nodeOpts.node = n.ID
		var out *CipherTensor
		// The node scope opens before arg() runs so the layout conversions
		// a node demands are billed to it, not to the gap between nodes.
		var endScope func()
		if startScope != nil && n.Kind != circuit.OpInput {
			endScope = startScope(fmt.Sprintf("%v:%s", n.Kind, n.Name))
		}
		switch n.Kind {
		case circuit.OpInput:
			if input.Layout != policy.inputLayout() {
				panic(fmt.Sprintf("htc: input encrypted in %v but policy %v wants %v",
					input.Layout, policy, policy.inputLayout()))
			}
			out = input
		case circuit.OpConv2D:
			out = Conv2DOpts(b, arg(n, 0), n.Weights, n.Bias, n.Stride, n.Pad, sc, nodeOpts)
		case circuit.OpDense:
			out = DenseOpts(b, arg(n, 0), n.Weights, n.Bias, sc, nodeOpts)
			seenDense = true
		case circuit.OpAvgPool2D:
			out = AvgPool2DOpts(b, arg(n, 0), n.Window, n.Stride, sc, nodeOpts)
		case circuit.OpGlobalAvgPool2D:
			out = GlobalAvgPool2DOpts(b, arg(n, 0), sc, nodeOpts)
		case circuit.OpActivation:
			out = ActivationOpts(b, arg(n, 0), n.ActA, n.ActB, sc, nodeOpts)
		case circuit.OpPolyEval:
			out = PolyEvalOpts(b, arg(n, 0), n.Coeffs, sc, nodeOpts)
		case circuit.OpBatchNorm:
			out = BatchNormOpts(b, arg(n, 0), n.Weights, n.Bias, sc, nodeOpts)
		case circuit.OpAdd:
			out = AddOpts(b, arg(n, 0), arg(n, 1), nodeOpts)
		case circuit.OpConcat:
			ins := make([]*CipherTensor, len(n.Inputs))
			for i := range n.Inputs {
				ins[i] = arg(n, i)
			}
			out = ConcatOpts(b, sc, nodeOpts, ins...)
		case circuit.OpFlatten:
			out = results[n.Inputs[0].ID] // metadata-only
		case circuit.OpPad2D:
			out = Pad2D(results[n.Inputs[0].ID], n.Pad)
		default:
			panic(fmt.Sprintf("htc: unhandled op %v", n.Kind))
		}
		if endScope != nil {
			endScope()
		}
		results[n.ID] = out
		if opts.OnNode != nil {
			opts.OnNode(n, out)
		}
	}
	return results[c.Output.ID]
}
