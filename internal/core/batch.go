package core

import (
	"sort"

	"chet/internal/circuit"
	"chet/internal/htc"
)

// Plan returns the physical layout plan the compiled circuit executes under,
// including the batch capacity baked into the parameters. Every consumer of
// a Compiled (local sessions, the serving client and server) must derive its
// plan here so batched geometry agrees on both sides of the wire.
func (c *Compiled) Plan() htc.Plan {
	plan := htc.PlanFor(c.Circuit, c.Best.Policy)
	plan.Batch = c.Best.Batch
	plan.Complex = c.Options.Complex
	return plan
}

// packRotations returns the rotation-key amounts (normalized to left
// rotations) that htc.PackBatch needs to coalesce single-lane tensors into
// the physical lanes: tensor i is rotated right by i*laneSlots, and a right
// rotation by x is a left rotation by slots-x. The count is the lane count,
// not the image count — under complex packing the coalescer fills one image
// per lane (rotations cannot cross slot components).
func packRotations(lanes, slots int) []int {
	if lanes <= 1 {
		return nil
	}
	laneSlots := slots / nextPow2(lanes)
	out := make([]int, 0, lanes-1)
	for i := 1; i < lanes; i++ {
		if k := (slots - i*laneSlots) % slots; k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// mergeRotations unions two sorted-or-unsorted rotation lists into one
// sorted, deduplicated key set.
func mergeRotations(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, k := range append(append([]int{}, a...), b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SelectBatchCapacity finds the largest power-of-two batch size <= maxBatch
// that compiles without growing the ring degree beyond the unbatched
// choice: batching is free amortization only while the per-image footprint
// still fits a lane of the same ring, so the search doubles B and stops at
// the first capacity that fails to compile or forces a larger N. With
// opts.Complex the per-lane footprint halves the lane count, so the search
// naturally lands on roughly twice the real-packing capacity.
func SelectBatchCapacity(c *circuit.Circuit, opts Options, maxBatch int) (int, error) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	opts.Batch = 1
	base, err := Compile(c, opts)
	if err != nil {
		return 0, err
	}
	best := 1
	for b := 2; b <= maxBatch; b *= 2 {
		opts.Batch = b
		comp, err := Compile(c, opts)
		if err != nil || comp.Best.LogN > base.Best.LogN {
			break
		}
		best = b
	}
	return best, nil
}
