package core

import (
	"fmt"

	"chet/internal/boot"
	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/tensor"
)

// This file is the bootstrap-placement pass. A circuit deeper than any
// secure modulus chain cannot compile at all without bootstrapping; with
// Options.Bootstrap the compiler instead lays out a bootstrap chain
// (boot.Spec.ChainBits: base prime, a working window of data levels, the
// pipeline's own levels, the CoeffToSlot prime on top) and mirrors the
// runtime hisa.Refresher inside the Analysis interpretation: whenever a
// multiplicative operand's remaining level falls below the floor, the
// analysis records a placement, resets the operand to the fresh level, and
// charges the bootstrap's full instruction inventory (boot.Spec.Ops) to the
// cost model. Because the trigger rule, the fresh level, and the rescale
// quantization are byte-for-byte the ones the Refresher applies over the RNS
// backend, the number and order of placements the compiler predicts equal
// the bootstraps the runtime performs.

// BootstrapOptions enables and configures compiler-placed bootstrapping
// (Options.Bootstrap). Requires SchemeRNS and ScaleGreedy.
type BootstrapOptions struct {
	// Window is the number of working levels between bootstraps — the data
	// band of the modulus chain. Larger windows bootstrap less often but
	// need a taller (less secure per ring degree) chain. Default 4.
	Window int
	// Degree overrides the Chebyshev degree of the sine approximation
	// (default boot.DefaultDegree).
	Degree int
	// Floor is the minimum level a multiplicative operand must hold;
	// operands below it are bootstrapped first. Default 1 — the smallest
	// budget that still admits the op's own rescale.
	Floor int
}

// BootConfig is the analysis-side bootstrap configuration: the derived
// arithmetic spec plus the placement parameters (AnalysisConfig.Bootstrap).
type BootConfig struct {
	Spec   boot.Spec
	Window int
	Floor  int
}

// BootPlacement is one compiler-placed bootstrap — a row of the
// chet-compile -explain placement table.
type BootPlacement struct {
	// Index is the placement ordinal in execution order.
	Index int
	// Node is the circuit node whose kernel triggered the placement
	// (-1 until the recording pass attributes it); Name is its
	// "kind:name" label.
	Node int
	Name string
	// Op is the HISA instruction whose operand fell below the floor.
	Op string
	// LevelBefore is the operand's remaining level at the trigger;
	// LevelAfter is the fresh level it returns at (= Window).
	LevelBefore, LevelAfter int
	// Cost is the cost-model estimate of this bootstrap (microseconds).
	Cost float64
}

// BootReport is the bootstrap-placement plan attached to a compilation
// (Compiled.BootPlan).
type BootReport struct {
	// Spec is the bootstrap arithmetic the chain was laid out for; the
	// runtime backend is constructed against the same spec.
	Spec boot.Spec
	// Window, Floor mirror the options; FreshLevel is the level every
	// bootstrap (and every dropped fresh encryption) returns at.
	Window, Floor, FreshLevel int
	// Depth is the number of chain levels one bootstrap consumes.
	Depth int
	// Placements in execution order, attributed to circuit nodes.
	Placements []BootPlacement
	// EstCost is the summed placement estimate (microseconds).
	EstCost float64
}

// bootSpecFor derives the bootstrap arithmetic for a ring degree under the
// compilation options: full slot packing (the compiler always packs N/2
// slots), working primes sized like the candidate chain moduli.
func bootSpecFor(logN int, opts *Options) (boot.Spec, error) {
	spec, err := boot.DeriveSpec(logN, logN-1, opts.Bootstrap.Degree)
	if err != nil {
		return boot.Spec{}, err
	}
	spec.PrimeBits = opts.RNSPrimeBits
	return spec, nil
}

// bootConfig rebuilds the analysis bootstrap configuration for a finished
// compilation; nil when bootstrapping was not requested.
func (c *Compiled) bootConfig() *BootConfig {
	if c.Options.Bootstrap == nil {
		return nil
	}
	spec, err := bootSpecFor(c.Best.LogN, &c.Options)
	if err != nil {
		// The winning LogN was derived through the same call during the
		// parameter search; it cannot fail here.
		panic("core: bootstrap spec for compiled ring: " + err.Error())
	}
	return &BootConfig{Spec: spec, Window: c.Options.Bootstrap.Window, Floor: c.Options.Bootstrap.Floor}
}

// bootCost prices one bootstrap's instruction inventory under the cost
// model at the full-chain modulus state — a conservative upper bound, since
// the pipeline starts at the top of the chain and descends.
func bootCost(spec boot.Spec, m CostModel, n float64, st state) float64 {
	ops := spec.Ops()
	return float64(ops.Rotations)*m.Rotate(n, st) +
		float64(ops.PlainMuls)*m.PlainMul(n, st) +
		float64(ops.CtMuls)*m.CtMul(n, st) +
		float64(ops.ScalarMuls)*m.ScalarMul(n, st) +
		float64(ops.Rescales)*m.Rescale(n, st)
}

// recordBootPlan executes the compiled circuit once more under a bootstrap-
// aware analysis and attaches the placement report: each placement the
// analysis triggers is attributed to the circuit node whose kernel was
// executing. The run is serial, so placement order is deterministic and
// identical to the parameter pass that sized the chain.
func recordBootPlan(c *circuit.Circuit, comp *Compiled) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recording run aborted: %v", r)
		}
	}()
	cfg := comp.bootConfig()
	if cfg == nil {
		return nil
	}
	opts := comp.Options
	a := NewAnalysis(AnalysisConfig{
		Scheme:        opts.Scheme,
		Slots:         1 << uint(comp.Best.LogN-1),
		RNSPrimeBits:  opts.RNSPrimeBits,
		MagMarginBits: opts.MagMarginBits,
		CostPrimes:    float64(len(comp.Best.RNSChainBits)),
		Model:         opts.CostModel,
		Batch:         opts.Batch,
		Bootstrap:     cfg,
	})

	names := make(map[int]string, len(c.Nodes))
	for _, n := range c.Nodes {
		names[n.ID] = fmt.Sprintf("%v:%s", n.Kind, n.Name)
	}
	var placements []BootPlacement
	prev := 0
	attribute := func(node int, name string) {
		ps := a.BootPlacements()
		for ; prev < len(ps); prev++ {
			p := ps[prev]
			p.Node = node
			p.Name = name
			placements = append(placements, p)
		}
	}

	img := tensor.New(c.Input.OutShape...)
	enc := htc.EncryptTensor(a, img, comp.Plan(), opts.Scales)
	htc.ExecuteOpts(a, c, enc, comp.Best.Policy, opts.Scales, htc.ExecOptions{
		OnNode: func(n *circuit.Node, _ *htc.CipherTensor) { attribute(n.ID, names[n.ID]) },
	})
	attribute(-1, "(output)")

	total := 0.0
	for _, p := range placements {
		total += p.Cost
	}
	comp.BootPlan = &BootReport{
		Spec:       cfg.Spec,
		Window:     cfg.Window,
		Floor:      cfg.Floor,
		FreshLevel: cfg.Window,
		Depth:      cfg.Spec.Depth(),
		Placements: placements,
		EstCost:    total,
	}
	return nil
}

// BootBackend wraps a compiled circuit's runtime backend with the
// hisa.Refresher that realizes the compiler's bootstrap placements; without
// a BootPlan the backend is returned unchanged. Callers that want the
// runtime bootstrap tally assert the result to *hisa.Refresher.
func BootBackend(comp *Compiled, b hisa.Backend) (hisa.Backend, error) {
	if comp.BootPlan == nil {
		return b, nil
	}
	rf, err := hisa.NewRefresher(b, comp.BootPlan.Floor)
	if err != nil {
		return nil, fmt.Errorf("core: wrapping refresher: %w", err)
	}
	return rf, nil
}
