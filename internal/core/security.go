// Package core implements the CHET compiler: the dataflow
// analysis-and-transformation framework that executes homomorphic tensor
// circuits under analysis interpretations of the HISA (Section 5.1), and the
// four passes built on it — encryption parameter selection (5.2), data
// layout selection with a calibrated cost model (5.3), rotation keys
// selection (5.4), and profile-guided fixed-point scale selection (5.5).
package core

import "fmt"

// securityRow gives the maximum total modulus bits (log2 of the coefficient
// modulus, including any key-switching special modulus) admissible for a
// ring degree at each security level, per the Homomorphic Encryption
// Standard table for uniform ternary secrets cited by the paper [12].
type securityRow struct {
	logN                      int
	bits128, bits192, bits256 int
}

var securityTable = []securityRow{
	{10, 27, 19, 14},
	{11, 54, 37, 29},
	{12, 109, 75, 58},
	{13, 218, 152, 118},
	{14, 438, 305, 237},
	{15, 881, 611, 476},
	// LogN 16 is an extrapolation (not part of the published table); it
	// follows the same doubling trend and matches common library defaults.
	{16, 1772, 1229, 955},
}

// MaxLogQ returns the largest admissible total modulus bit count for ring
// degree 2^logN at the given security level (128, 192, or 256 bits).
// It returns 0 for unsupported inputs.
func MaxLogQ(logN, securityBits int) int {
	for _, row := range securityTable {
		if row.logN != logN {
			continue
		}
		switch securityBits {
		case 128:
			return row.bits128
		case 192:
			return row.bits192
		case 256:
			return row.bits256
		}
	}
	return 0
}

// MinLogN returns the smallest supported logN whose modulus budget at the
// given security level covers logQP total modulus bits.
func MinLogN(logQP float64, securityBits int) (int, error) {
	for _, row := range securityTable {
		if float64(MaxLogQ(row.logN, securityBits)) >= logQP {
			return row.logN, nil
		}
	}
	return 0, fmt.Errorf("core: no supported ring degree provides %d-bit security for logQP=%.0f",
		securityBits, logQP)
}
