package core

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"chet/internal/hisa"
)

// Analysis is the compiler's reinterpretation of the HISA (Section 5.1): it
// implements hisa.Backend, but its ciphertexts carry dataflow facts instead
// of encrypted data. Executing the unmodified tensor kernels against it
// unrolls the circuit's dataflow graph on the fly and composes the per-
// instruction transfer functions, yielding:
//
//   - the modulus consumed by rescaling and the peak modulus requirement
//     (encryption parameter selection, Section 5.2),
//   - the estimated execution cost under a scheme cost model when totals
//     from a prior parameter pass are supplied (layout selection, 5.3),
//   - the set of rotation steps performed (rotation keys selection, 5.4).
type Analysis struct {
	scheme Scheme
	slots  int
	n      float64

	// rnsPrimeBits is the idealized size of the pre-generated candidate
	// moduli list for RNS-CKKS (the paper's footnote: 60-bit SEAL primes;
	// we default to 40-bit primes matching the runtime's scale regime).
	rnsPrimeBits float64

	// magMarginBits bounds log2 of message magnitude plus noise headroom.
	magMarginBits float64

	// rotKey reports whether a single-step rotation key exists; nil means
	// all keys exist (CHET provisions exactly the keys the circuit needs).
	rotKey func(int) bool

	// Results of the parameter analysis.
	consumedFinal float64 // log2 of modulus consumed on the output path
	peakNeed      float64 // max over live ciphertexts of consumed+scale+margin
	rotations     map[int]int

	// Cost estimation (active when totals is non-nil).
	totals    *costTotals
	model     CostModel
	totalCost float64
	// threads is T in the T-thread cost model; opCosts records per-op
	// costs for the makespan computation when threads > 1.
	threads int
	opCosts []float64
	// batch amortizes the total cost across packed images (>= 1).
	batch int

	// boot, when non-nil, mirrors the runtime hisa.Refresher: multiplicative
	// operands below the level floor are bootstrapped (placement recorded,
	// cost charged, consumption reset) before the op's transfer function.
	boot *bootRun
}

// bootRun is the bootstrap-placement state of one analysis run.
type bootRun struct {
	cfg BootConfig
	// cost is one bootstrap's cost-model estimate (0 without cost totals).
	cost       float64
	placements []BootPlacement
}

// costTotals fixes the overall modulus so per-op costs can use the current
// modulus size.
type costTotals struct {
	logQ   float64 // CKKS: total modulus bits
	primes float64 // RNS: total chain primes
}

// analysisCT is the dataflow fact attached to each ciphertext.
type analysisCT struct {
	scale    float64
	consumed float64 // log2 of modulus consumed so far (CKKS bits; RNS primes*bits)
}

type analysisPT struct{ scale float64 }

// AnalysisConfig parameterizes an analysis run.
type AnalysisConfig struct {
	Scheme        Scheme
	Slots         int
	RNSPrimeBits  int
	MagMarginBits float64
	// RotKey restricts available single-step rotation keys (nil = all).
	RotKey func(int) bool
	// CostTotals enables cost estimation: total modulus bits (CKKS) or
	// total chain primes (RNS) from a prior parameter pass.
	CostLogQ   float64
	CostPrimes float64
	Model      *CostModel
	// CostThreads is T in the T-thread cost model (see LPTMakespan);
	// values <= 1 keep the serial sum-of-costs estimate.
	CostThreads int
	// Batch is the number of images packed per evaluation; CostPerImage
	// divides the total estimate by it. Values <= 1 mean unbatched.
	Batch int
	// Bootstrap enables bootstrap-aware level accounting: a multiplicative
	// operand whose remaining level (Window minus consumed chain primes)
	// falls below Floor is bootstrapped — placement recorded, cost charged,
	// consumption reset — exactly the trigger rule hisa.Refresher applies
	// at runtime, so placement counts match runtime tallies.
	Bootstrap *BootConfig
}

// NewAnalysis creates an analysis interpretation of the HISA.
func NewAnalysis(cfg AnalysisConfig) *Analysis {
	if cfg.Slots <= 0 || cfg.Slots&(cfg.Slots-1) != 0 {
		panic(fmt.Sprintf("core: analysis slots %d must be a power of two", cfg.Slots))
	}
	a := &Analysis{
		scheme:        cfg.Scheme,
		slots:         cfg.Slots,
		n:             float64(2 * cfg.Slots),
		rnsPrimeBits:  40,
		magMarginBits: 12,
		rotKey:        cfg.RotKey,
		rotations:     map[int]int{},
	}
	if cfg.RNSPrimeBits > 0 {
		a.rnsPrimeBits = float64(cfg.RNSPrimeBits)
	}
	if cfg.MagMarginBits > 0 {
		a.magMarginBits = cfg.MagMarginBits
	}
	if cfg.CostLogQ > 0 || cfg.CostPrimes > 0 {
		a.totals = &costTotals{logQ: cfg.CostLogQ, primes: cfg.CostPrimes}
		if cfg.Model != nil {
			a.model = *cfg.Model
		} else {
			a.model = DefaultCostModel(cfg.Scheme)
		}
		a.threads = cfg.CostThreads
	}
	a.batch = cfg.Batch
	if a.batch < 1 {
		a.batch = 1
	}
	if cfg.Bootstrap != nil {
		a.boot = &bootRun{cfg: *cfg.Bootstrap}
		if a.totals != nil {
			st := state{logQ: a.totals.logQ, r: a.totals.primes}
			a.boot.cost = bootCost(a.boot.cfg.Spec, a.model, a.n, st)
		}
	}
	return a
}

// maybeBootstrap is the analysis mirror of hisa.Refresher.refreshed: when
// the operand's remaining level is below the floor, place a bootstrap —
// record it, charge its instruction inventory, and return a fact reset to
// the fresh level (consumption zero, scale preserved, exactly what the
// runtime pipeline produces). op names the triggering HISA instruction.
func (a *Analysis) maybeBootstrap(cc *analysisCT, op string) *analysisCT {
	if a.boot == nil {
		return cc
	}
	lvl := a.boot.cfg.Window - int(math.Round(cc.consumed/a.rnsPrimeBits))
	if lvl >= a.boot.cfg.Floor {
		return cc
	}
	a.boot.placements = append(a.boot.placements, BootPlacement{
		Index:       len(a.boot.placements),
		Node:        -1, // attributed by the recording pass
		Op:          op,
		LevelBefore: lvl,
		LevelAfter:  a.boot.cfg.Window,
		Cost:        a.boot.cost,
	})
	a.charge(a.boot.cost)
	return a.observe(&analysisCT{scale: cc.scale})
}

// Bootstraps returns the number of bootstraps this run placed.
func (a *Analysis) Bootstraps() int {
	if a.boot == nil {
		return 0
	}
	return len(a.boot.placements)
}

// BootPlacements returns the placements in execution order.
func (a *Analysis) BootPlacements() []BootPlacement {
	if a.boot == nil {
		return nil
	}
	return a.boot.placements
}

func (a *Analysis) Name() string { return "analysis-" + a.scheme.String() }
func (a *Analysis) Slots() int   { return a.slots }

func (a *Analysis) ct(c hisa.Ciphertext) *analysisCT {
	v, ok := c.(*analysisCT)
	if !ok {
		panic(fmt.Sprintf("core: foreign ciphertext %T in analysis", c))
	}
	return v
}

func (a *Analysis) pt(p hisa.Plaintext) *analysisPT {
	v, ok := p.(*analysisPT)
	if !ok {
		panic(fmt.Sprintf("core: foreign plaintext %T in analysis", p))
	}
	return v
}

// observe records a freshly produced ciphertext fact: the peak modulus
// requirement and the output-path consumption.
func (a *Analysis) observe(c *analysisCT) *analysisCT {
	need := c.consumed + math.Log2(c.scale) + a.magMarginBits
	if need > a.peakNeed {
		a.peakNeed = need
	}
	if c.consumed > a.consumedFinal {
		a.consumedFinal = c.consumed
	}
	return c
}

// state translates a fact into the modulus state a cost model consumes.
func (a *Analysis) state(c *analysisCT) state {
	if a.totals == nil {
		return state{}
	}
	if a.scheme == SchemeCKKS {
		return state{logQ: math.Max(1, a.totals.logQ-c.consumed)}
	}
	used := c.consumed / a.rnsPrimeBits
	return state{r: math.Max(1, a.totals.primes-used)}
}

func (a *Analysis) charge(cost float64) {
	if a.totals == nil {
		return
	}
	a.totalCost += cost
	if a.threads > 1 {
		a.opCosts = append(a.opCosts, cost)
	}
}

// --- HISA implementation ---

func (a *Analysis) Encode(m []float64, f float64) hisa.Plaintext {
	if len(m) > a.slots {
		panic(fmt.Sprintf("core: %d values exceed %d slots", len(m), a.slots))
	}
	return &analysisPT{scale: f}
}

func (a *Analysis) Decode(hisa.Plaintext) []float64 { return make([]float64, a.slots) }

func (a *Analysis) Encrypt(p hisa.Plaintext) hisa.Ciphertext {
	return a.observe(&analysisCT{scale: a.pt(p).scale})
}

func (a *Analysis) Decrypt(c hisa.Ciphertext) hisa.Plaintext {
	return &analysisPT{scale: a.ct(c).scale}
}

func (a *Analysis) Copy(c hisa.Ciphertext) hisa.Ciphertext {
	cc := *a.ct(c)
	return &cc
}

func (a *Analysis) Free(any) {}

func (a *Analysis) join(x, y *analysisCT, scale float64) *analysisCT {
	return a.observe(&analysisCT{scale: scale, consumed: math.Max(x.consumed, y.consumed)})
}

// requireSameScale catches kernel scale-management bugs during analysis,
// mirroring the runtime backends' checks.
func requireSameScale(s1, s2 float64, op string) {
	if math.Abs(s1-s2) > 1e-6*math.Max(s1, s2) {
		panic(fmt.Sprintf("core: scale mismatch in %s during analysis: %g vs %g", op, s1, s2))
	}
}

func (a *Analysis) Add(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	x, y := a.ct(c), a.ct(c2)
	requireSameScale(x.scale, y.scale, "add")
	a.charge(a.model.Add(a.n, a.state(x)))
	return a.join(x, y, x.scale)
}

func (a *Analysis) Sub(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	x, y := a.ct(c), a.ct(c2)
	requireSameScale(x.scale, y.scale, "sub")
	a.charge(a.model.Add(a.n, a.state(x)))
	return a.join(x, y, x.scale)
}

func (a *Analysis) AddPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	x := a.ct(c)
	requireSameScale(x.scale, a.pt(p).scale, "addPlain")
	a.charge(a.model.Add(a.n, a.state(x)))
	return a.observe(&analysisCT{scale: x.scale, consumed: x.consumed})
}

func (a *Analysis) SubPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	return a.AddPlain(c, p)
}

func (a *Analysis) AddScalar(c hisa.Ciphertext, x float64) hisa.Ciphertext {
	cc := a.ct(c)
	a.charge(a.model.Add(a.n, a.state(cc)))
	return a.observe(&analysisCT{scale: cc.scale, consumed: cc.consumed})
}

func (a *Analysis) SubScalar(c hisa.Ciphertext, x float64) hisa.Ciphertext {
	return a.AddScalar(c, -x)
}

func (a *Analysis) Mul(c, c2 hisa.Ciphertext) hisa.Ciphertext {
	x, y := a.ct(c), a.ct(c2)
	bx := a.maybeBootstrap(x, "mul")
	by := bx
	if y != x {
		by = a.maybeBootstrap(y, "mul")
	}
	a.charge(a.model.CtMul(a.n, a.state(bx)))
	return a.join(bx, by, bx.scale*by.scale)
}

// LazyRelinCapable marks the analysis interpretation as supporting deferred
// relinearization, so recording runs walk the same kernel branches as the
// real backend (hisa.LazyRelinBackend).
func (a *Analysis) LazyRelinCapable() bool { return true }

// MulNoRelin charges like Mul: the dataflow facts (scale, consumed modulus)
// are identical, and the relinearization cost estimate stays attached to the
// product for a conservative op model.
func (a *Analysis) MulNoRelin(c, c2 hisa.Ciphertext) hisa.Ciphertext { return a.Mul(c, c2) }

// Relinearize is a dataflow no-op: scale and modulus are untouched.
func (a *Analysis) Relinearize(c hisa.Ciphertext) hisa.Ciphertext { return c }

func (a *Analysis) MulPlain(c hisa.Ciphertext, p hisa.Plaintext) hisa.Ciphertext {
	x, pp := a.ct(c), a.pt(p)
	x = a.maybeBootstrap(x, "mulPlain")
	a.charge(a.model.PlainMul(a.n, a.state(x)))
	return a.observe(&analysisCT{scale: x.scale * pp.scale, consumed: x.consumed})
}

func (a *Analysis) MulScalar(c hisa.Ciphertext, x float64, f float64) hisa.Ciphertext {
	cc := a.maybeBootstrap(a.ct(c), "mulScalar")
	a.charge(a.model.ScalarMul(a.n, a.state(cc)))
	return a.observe(&analysisCT{scale: cc.scale * f, consumed: cc.consumed})
}

func (a *Analysis) RotLeft(c hisa.Ciphertext, x int) hisa.Ciphertext {
	cc := a.ct(c)
	steps := hisa.RotationSteps(x, a.slots, a.rotKey)
	for _, s := range steps {
		a.rotations[s]++
		a.charge(a.model.Rotate(a.n, a.state(cc)))
	}
	out := *cc
	return a.observe(&out)
}

func (a *Analysis) RotRight(c hisa.Ciphertext, x int) hisa.Ciphertext {
	return a.RotLeft(c, -x)
}

// RotLeftMany is the analysis transfer function for hoisted rotation
// batches (hisa.RotateManyBackend): with the RNS target, amounts served by
// an exact key share one digit decomposition — setup is charged once and
// each amount adds only the cheap inner-product step. Amounts that
// decompose into several primitive steps, and the CKKS target, fall back
// to per-step rotation charges. The recorded rotation steps are identical
// to the equivalent RotLeft sequence, so rotation-key selection and op
// counts are independent of whether a kernel batched its rotations.
func (a *Analysis) RotLeftMany(c hisa.Ciphertext, ks []int) []hisa.Ciphertext {
	cc := a.ct(c)
	outs := make([]hisa.Ciphertext, len(ks))
	setupCharged := false
	for i, x := range ks {
		steps := hisa.RotationSteps(x, a.slots, a.rotKey)
		if a.scheme == SchemeRNS && len(steps) == 1 {
			if !setupCharged {
				a.charge(a.model.RotateHoistedSetup(a.n, a.state(cc)))
				setupCharged = true
			}
			a.rotations[steps[0]]++
			a.charge(a.model.RotateHoistedStep(a.n, a.state(cc)))
			out := *cc
			outs[i] = a.observe(&out)
			continue
		}
		outs[i] = a.RotLeft(c, x)
	}
	return outs
}

// MaxRescale implements each scheme's divisor rule on the dataflow fact.
func (a *Analysis) MaxRescale(c hisa.Ciphertext, ub *big.Int) *big.Int {
	if ub.Sign() <= 0 {
		return big.NewInt(1)
	}
	if a.scheme == SchemeCKKS {
		bits := ub.BitLen() - 1
		if bits < 1 {
			return big.NewInt(1)
		}
		return new(big.Int).Lsh(big.NewInt(1), uint(bits))
	}
	// RNS: the largest product of the next idealized chain primes <= ub.
	primeBits := int(a.rnsPrimeBits)
	k := (ub.BitLen() - 1) / primeBits
	if k < 1 {
		return big.NewInt(1)
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(k*primeBits))
}

func (a *Analysis) Rescale(c hisa.Ciphertext, x *big.Int) hisa.Ciphertext {
	cc := a.ct(c)
	if x.Cmp(big.NewInt(1)) == 0 {
		out := *cc
		return &out
	}
	bits := float64(x.BitLen() - 1)
	a.charge(a.model.Rescale(a.n, a.state(cc)))
	return a.observe(&analysisCT{scale: cc.scale / math.Exp2(bits), consumed: cc.consumed + bits})
}

func (a *Analysis) Scale(c hisa.Ciphertext) float64 { return a.ct(c).scale }

// --- hisa.ConjugateBackend ---
//
// The complex-packing operations have straightforward transfer functions:
// conjugation is a key switch (priced like a rotation) that leaves both
// scale and consumption unchanged, and the complex encode/plaintext variants
// mirror their real counterparts. Implementing the capability here lets the
// compiler analyze complex-packed circuits with the same unmodified kernels.

func (a *Analysis) Conjugate(c hisa.Ciphertext) hisa.Ciphertext {
	cc := a.ct(c)
	a.charge(a.model.Rotate(a.n, a.state(cc)))
	out := *cc
	return a.observe(&out)
}

func (a *Analysis) EncryptC(m []complex128, f float64) hisa.Ciphertext {
	if len(m) > a.slots {
		panic(fmt.Sprintf("core: %d values exceed %d slots", len(m), a.slots))
	}
	return a.observe(&analysisCT{scale: f})
}

func (a *Analysis) DecryptC(c hisa.Ciphertext) []complex128 {
	a.ct(c)
	return make([]complex128, a.slots)
}

func (a *Analysis) AddPlainC(c hisa.Ciphertext, m []complex128) hisa.Ciphertext {
	x := a.ct(c)
	a.charge(a.model.Add(a.n, a.state(x)))
	return a.observe(&analysisCT{scale: x.scale, consumed: x.consumed})
}

func (a *Analysis) MulScalarC(c hisa.Ciphertext, z complex128, f float64) hisa.Ciphertext {
	cc := a.maybeBootstrap(a.ct(c), "mulScalarC")
	a.charge(a.model.ScalarMul(a.n, a.state(cc)))
	return a.observe(&analysisCT{scale: cc.scale * f, consumed: cc.consumed})
}

// ConsumedOf exposes a ciphertext fact's consumed modulus bits; the scale-
// management pass uses it to bound deferrals against the modulus budget.
func (a *Analysis) ConsumedOf(c hisa.Ciphertext) float64 { return a.ct(c).consumed }

// --- Results ---

// PeakLogQ returns the modulus requirement discovered by the run: the
// maximum over all ciphertexts of consumed bits plus live scale plus the
// magnitude margin.
func (a *Analysis) PeakLogQ() float64 { return a.peakNeed }

// ConsumedLogQ returns the modulus consumed along the deepest path.
func (a *Analysis) ConsumedLogQ() float64 { return a.consumedFinal }

// ConsumedPrimes returns the RNS chain primes consumed by rescaling.
func (a *Analysis) ConsumedPrimes() int {
	return int(math.Round(a.consumedFinal / a.rnsPrimeBits))
}

// Rotations returns the distinct rotation steps executed, sorted
// ascending — the exact key set the encryptor must generate.
func (a *Analysis) Rotations() []int {
	out := make([]int, 0, len(a.rotations))
	for k := range a.rotations {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// RotationOps returns the total number of primitive rotations executed
// (used by the Figure 7 reproduction).
func (a *Analysis) RotationOps() int {
	total := 0
	for _, c := range a.rotations {
		total += c
	}
	return total
}

// Cost returns the cost estimate in microseconds (0 unless cost totals
// were supplied). With CostThreads T > 1 it is the T-thread makespan of
// the executed ops (see LPTMakespan); otherwise it is the exact serial
// running sum, unchanged from the single-threaded model.
func (a *Analysis) Cost() float64 {
	if a.threads > 1 {
		return LPTMakespan(a.opCosts, a.threads)
	}
	return a.totalCost
}

// CostPerImage amortizes Cost over the batch lanes: the op sequence of a
// batched evaluation is identical to the unbatched one (the batch axis
// rides along in the slot strides), so per-image cost is total/B.
func (a *Analysis) CostPerImage() float64 {
	return a.Cost() / float64(a.batch)
}
