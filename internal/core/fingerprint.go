package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"chet/internal/tensor"
)

// fpVersion tags the canonical encoding below; bump it whenever the byte
// layout of the digest changes so old and new binaries never agree by
// accident.
const fpVersion = "chet-fingerprint-v4"

// Fingerprint returns a stable digest of everything that must match between
// two parties for their homomorphic executions of this compilation to be
// interchangeable: the compiler options, the selected encryption parameters,
// the layout policy, the fixed-point scales, the rotation-key set, and the
// circuit itself (structure and weights). Client and server exchange it at
// session-open so a compilation mismatch is detected before any ciphertext
// is wasted on an incompatible evaluation.
//
// The digest is a pure function of the Compiled value: compiling the same
// circuit with the same Options on any machine yields the same fingerprint.
func (c *Compiled) Fingerprint() [32]byte {
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	i64 := func(v int) { u64(uint64(int64(v))) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		i64(len(s))
		h.Write([]byte(s))
	}
	ints := func(vs []int) {
		i64(len(vs))
		for _, v := range vs {
			i64(v)
		}
	}
	floats := func(vs []float64) {
		i64(len(vs))
		for _, v := range vs {
			f64(v)
		}
	}
	tens := func(t *tensor.Tensor) {
		if t == nil {
			i64(-1)
			return
		}
		ints(t.Shape)
		floats(t.Data)
	}

	str(fpVersion)

	// Options: every field, so any change in how the circuit was compiled
	// flips the digest (defaults are filled before Compile stores Options,
	// so an explicit default and an omitted field agree, as they must).
	o := c.Options
	i64(int(o.Scheme))
	f64(o.Scales.Pc)
	f64(o.Scales.Pw)
	f64(o.Scales.Pu)
	f64(o.Scales.Pm)
	i64(o.SecurityBits)
	i64(o.RNSPrimeBits)
	f64(o.MagMarginBits)
	i64(o.MinLogN)
	i64(o.MaxLogN)
	i64(len(o.Policies))
	for _, p := range o.Policies {
		i64(int(p))
	}
	if o.CostModel == nil {
		i64(0)
	} else {
		m := *o.CostModel
		i64(1)
		i64(int(m.Scheme))
		f64(m.CAdd)
		f64(m.CScalarMul)
		f64(m.CPlainMul)
		f64(m.CCtMul)
		f64(m.CRotate)
		f64(m.CRescale)
		f64(m.CRotHoistSetup)
		f64(m.CRotHoistStep)
	}
	if o.PowerOfTwoRotationsOnly {
		i64(1)
	} else {
		i64(0)
	}
	i64(o.CostThreads)
	i64(o.Batch)
	if o.Complex {
		i64(1)
	} else {
		i64(0)
	}
	i64(int(o.ScaleMode))
	if o.Bootstrap == nil {
		i64(-1)
	} else {
		i64(o.Bootstrap.Window)
		i64(o.Bootstrap.Degree)
		i64(o.Bootstrap.Floor)
	}

	// The compiler's decisions: parameters, layout, rotation set.
	b := c.Best
	i64(int(b.Policy))
	i64(b.LogN)
	f64(b.LogQ)
	ints(b.RNSChainBits)
	i64(b.SpecialBits)
	ints(b.Rotations)
	i64(b.RotationOps)
	i64(b.Batch)
	i64(b.Bootstraps)

	// The bootstrap plan: both parties must refresh at the same sites with
	// the same spec, or ciphertext levels (and every scale downstream of a
	// refresh) diverge. Hashed as the spec's chain-shaping fields plus the
	// ordered placement skeleton.
	if c.BootPlan == nil {
		i64(-1)
	} else {
		p := c.BootPlan
		i64(p.Spec.LogN)
		i64(p.Spec.LogSlots)
		i64(p.Spec.Q0Bits)
		i64(p.Spec.PrimeBits)
		i64(p.Spec.C2SBits)
		i64(p.Spec.Degree)
		i64(p.Spec.K)
		i64(p.Spec.DoubleAngles)
		i64(p.Window)
		i64(p.Floor)
		i64(len(p.Placements))
		for _, pl := range p.Placements {
			i64(pl.Node)
			i64(pl.LevelBefore)
			i64(pl.LevelAfter)
		}
	}

	// The scale plan: runtime rescale placement is part of what both parties
	// must agree on — a deferred site changes every downstream scale, so two
	// executions under different plans are not interchangeable. Hashed as
	// sorted (node, scaleBits, decision) triples; nil (greedy) hashes as -1.
	if c.ScalePlan == nil {
		i64(-1)
	} else {
		keys := sortedPlanKeys(c.ScalePlan)
		i64(len(keys))
		for _, k := range keys {
			i64(k.Node)
			i64(k.ScaleBits)
			i64(int(c.ScalePlan.Decisions[k]))
		}
	}

	// The circuit: structure, attributes, and weight values. Two circuits
	// that differ only in weights execute compatibly but predict different
	// things, which is exactly the kind of silent divergence a session-open
	// check exists to catch.
	str(c.Circuit.Name)
	i64(len(c.Circuit.Nodes))
	for _, n := range c.Circuit.Nodes {
		i64(n.ID)
		i64(int(n.Kind))
		str(n.Name)
		i64(len(n.Inputs))
		for _, in := range n.Inputs {
			i64(in.ID)
		}
		i64(n.Stride)
		i64(n.Pad)
		i64(n.Window)
		f64(n.ActA)
		f64(n.ActB)
		floats(n.Coeffs)
		tens(n.Weights)
		tens(n.Bias)
		ints(n.OutShape)
	}
	i64(c.Circuit.Output.ID)

	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FingerprintHex renders the fingerprint as a hex string for logs and
// human-facing diagnostics.
func (c *Compiled) FingerprintHex() string {
	fp := c.Fingerprint()
	return hex.EncodeToString(fp[:])
}
