package core

import (
	"math"
	"sort"
)

// Scheme selects the compilation target.
type Scheme int

// The two FHE schemes CHET targets.
const (
	// SchemeCKKS is the CKKS scheme of HEAAN v1.0 (power-of-two modulus,
	// big-integer arithmetic).
	SchemeCKKS Scheme = iota
	// SchemeRNS is the RNS-CKKS scheme of SEAL v3.1 (prime modulus chain).
	SchemeRNS
)

func (s Scheme) String() string {
	if s == SchemeCKKS {
		return "CKKS(HEAAN)"
	}
	return "RNS-CKKS(SEAL)"
}

// CostModel estimates the latency of HISA primitives in microseconds,
// following the asymptotic complexities of Table 1 with constants tuned by
// microbenchmarking (Section 5.3: "a combination of theoretical and
// experimental analysis"). All methods take the ring degree N and the
// current modulus state: logQ bits for CKKS, prime count r for RNS-CKKS.
type CostModel struct {
	Scheme Scheme

	// Constants are multipliers on the asymptotic terms; the defaults were
	// calibrated against this repository's own backends (cost unit: us).
	CAdd, CScalarMul, CPlainMul, CCtMul, CRotate, CRescale float64

	// Hoisted-rotation constants (RNS only): a batch of rotations of one
	// ciphertext pays Setup once (the digit decomposition: inverse NTT plus
	// r forward NTTs per digit, ~ n log n r^2) and Step per rotation amount
	// (permuted key inner product ~ n r^2 plus modDown ~ n log n r).
	CRotHoistSetup, CRotHoistStep float64
}

// DefaultCostModel returns calibrated constants for a scheme.
func DefaultCostModel(s Scheme) CostModel {
	if s == SchemeCKKS {
		// HEAAN-style big-integer arithmetic: M(Q) ~ logQ^1.58.
		return CostModel{
			Scheme: s,
			CAdd:   6e-4, CScalarMul: 1.2e-5, CPlainMul: 1.6e-6,
			CCtMul: 3.2e-6, CRotate: 3.2e-6, CRescale: 1.2e-5,
		}
	}
	return CostModel{
		Scheme: s,
		CAdd:   9e-4, CScalarMul: 1.4e-3, CPlainMul: 1.4e-3,
		CCtMul: 4.5e-4, CRotate: 4.5e-4, CRescale: 2.2e-4,
		// Calibrated so setup+step ~ one full rotation at moderate depth
		// (the decomposition dominates a single key switch) while each
		// extra amount costs only the inner-product step.
		CRotHoistSetup: 2.9e-4, CRotHoistStep: 4.8e-4,
	}
}

// mulComplexity is M(Q), the big-integer multiplication complexity used by
// the CKKS column of Table 1.
func mulComplexity(logQ float64) float64 {
	if logQ < 1 {
		logQ = 1
	}
	return math.Pow(logQ, 1.58)
}

// state carries the modulus position a cost estimate depends on.
type state struct {
	logQ float64 // CKKS: remaining modulus bits
	r    float64 // RNS: remaining prime count
}

// Add returns the cost of a ciphertext addition.
func (m CostModel) Add(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CAdd * n * st.logQ
	}
	return m.CAdd * n * st.r
}

// ScalarMul returns the cost of a scalar multiplication.
func (m CostModel) ScalarMul(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CScalarMul * n * mulComplexity(st.logQ)
	}
	return m.CScalarMul * n * st.r
}

// PlainMul returns the cost of a plaintext (vector) multiplication.
func (m CostModel) PlainMul(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CPlainMul * n * math.Log2(n) * mulComplexity(st.logQ)
	}
	return m.CPlainMul * n * st.r
}

// CtMul returns the cost of a ciphertext-ciphertext multiplication
// (including relinearization).
func (m CostModel) CtMul(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CCtMul * n * math.Log2(n) * mulComplexity(st.logQ)
	}
	return m.CCtMul * n * math.Log2(n) * st.r * st.r
}

// Rotate returns the cost of one primitive rotation (one key switch).
func (m CostModel) Rotate(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CRotate * n * math.Log2(n) * mulComplexity(st.logQ)
	}
	return m.CRotate * n * math.Log2(n) * st.r * st.r
}

// RotateHoistedSetup returns the one-time cost of a hoisted rotation
// batch: the digit decomposition of the source ciphertext, shared by every
// rotation amount drawn from it. For CKKS (no hoisted path modeled) it is
// zero, so setup + k*step degenerates to k plain rotations.
func (m CostModel) RotateHoistedSetup(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return 0
	}
	return m.CRotHoistSetup * n * math.Log2(n) * st.r * st.r
}

// RotateHoistedStep returns the per-amount cost of a hoisted rotation: the
// permuted key-switch inner product plus the division by the special
// prime. For CKKS it falls back to a full rotation.
func (m CostModel) RotateHoistedStep(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.Rotate(n, st)
	}
	return m.CRotHoistStep * n * (st.r*st.r + math.Log2(n)*st.r)
}

// LPTMakespan estimates the wall-clock latency of executing operations
// with the given per-op costs on T parallel threads: ops are placed in
// longest-processing-time-first order onto the least-loaded thread and the
// makespan (maximum thread load) is returned. This is the T-thread
// extension of the cost analysis — the paper evaluates on a 16-core
// machine and takes the max across threads rather than the sum. Greedy LPT
// is within 4/3 of the optimal makespan, which is ample for comparing
// layout policies.
//
// threads <= 1 returns the plain left-to-right running sum, bit-exactly
// reproducing the serial sum-of-costs model (no reordering, so no
// floating-point ULP drift against historical estimates).
func LPTMakespan(costs []float64, threads int) float64 {
	if threads <= 1 {
		sum := 0.0
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	sorted := append([]float64(nil), costs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, threads)
	for _, c := range sorted {
		argmin := 0
		for i := 1; i < threads; i++ {
			if loads[i] < loads[argmin] {
				argmin = i
			}
		}
		loads[argmin] += c
	}
	makespan := 0.0
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return makespan
}

// Rescale returns the cost of a rescaling operation.
func (m CostModel) Rescale(n float64, st state) float64 {
	if m.Scheme == SchemeCKKS {
		return m.CRescale * n * mulComplexity(st.logQ)
	}
	return m.CRescale * n * math.Log2(n) * st.r
}
