package core

import (
	"math"
	"math/rand"
	"testing"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
	"chet/internal/tensor"
)

func randTensor(shape []int, bound float64, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

// testCNN is a small LeNet-style network.
func testCNN() (*circuit.Circuit, *tensor.Tensor) {
	b := circuit.NewBuilder("core-test-cnn")
	x := b.Input(1, 8, 8)
	x = b.Conv2D(x, randTensor([]int{2, 1, 3, 3}, 0.4, 1), randTensor([]int{2}, 0.2, 2), 1, 1, "conv1")
	x = b.Activation(x, 0.2, 0.8, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1")
	x = b.Conv2D(x, randTensor([]int{4, 2, 3, 3}, 0.4, 3), nil, 1, 0, "conv2")
	x = b.Activation(x, 0.2, 0.8, "act2")
	x = b.Flatten(x, "flat")
	x = b.Dense(x, randTensor([]int{3, 16}, 0.4, 4), randTensor([]int{3}, 0.2, 5), "fc")
	return b.Build(x), randTensor([]int{1, 8, 8}, 1, 6)
}

func TestSecurityTable(t *testing.T) {
	if MaxLogQ(13, 128) != 218 {
		t.Fatalf("MaxLogQ(13,128) = %d", MaxLogQ(13, 128))
	}
	if MaxLogQ(15, 256) != 476 {
		t.Fatalf("MaxLogQ(15,256) = %d", MaxLogQ(15, 256))
	}
	if MaxLogQ(9, 128) != 0 || MaxLogQ(13, 100) != 0 {
		t.Fatal("unsupported lookups must return 0")
	}
	n, err := MinLogN(400, 128)
	if err != nil || n != 14 {
		t.Fatalf("MinLogN(400,128) = %d, %v", n, err)
	}
	if _, err := MinLogN(5000, 128); err == nil {
		t.Fatal("expected error for impossible budget")
	}
	// Stronger security always shrinks the budget.
	for _, logN := range []int{10, 12, 14, 16} {
		if !(MaxLogQ(logN, 128) > MaxLogQ(logN, 192) && MaxLogQ(logN, 192) > MaxLogQ(logN, 256)) {
			t.Fatalf("security monotonicity violated at logN=%d", logN)
		}
	}
}

func TestCostModelShapes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeCKKS, SchemeRNS} {
		m := DefaultCostModel(scheme)
		st := state{logQ: 400, r: 10}
		n := 16384.0
		if m.Add(n, st) <= 0 || m.ScalarMul(n, st) <= 0 || m.PlainMul(n, st) <= 0 ||
			m.CtMul(n, st) <= 0 || m.Rotate(n, st) <= 0 || m.Rescale(n, st) <= 0 {
			t.Fatalf("%v: non-positive costs", scheme)
		}
		// Rotation and ct-mult dominate additions, per Table 1.
		if m.Rotate(n, st) <= m.Add(n, st) {
			t.Fatalf("%v: rotation should cost more than addition", scheme)
		}
		// Costs grow with N.
		if m.Rotate(2*n, st) <= m.Rotate(n, st) {
			t.Fatalf("%v: cost not monotone in N", scheme)
		}
	}
	// The RNS r^2 law: doubling r quadruples rotation cost.
	m := DefaultCostModel(SchemeRNS)
	c1 := m.Rotate(16384, state{r: 4})
	c2 := m.Rotate(16384, state{r: 8})
	if math.Abs(c2/c1-4) > 1e-9 {
		t.Fatalf("RNS rotation cost ratio = %g, want 4", c2/c1)
	}
}

func TestAnalysisMatchesMeterOnRef(t *testing.T) {
	// The analysis interpretation must execute exactly the same instruction
	// stream as a real backend: compare rotation-step counts with a metered
	// reference run.
	c, img := testCNN()
	sc := htc.DefaultScales()
	policy := htc.PolicyCHW
	slots := 2048

	a := NewAnalysis(AnalysisConfig{Scheme: SchemeCKKS, Slots: slots})
	plan := htc.PlanFor(c, policy)
	encA := htc.EncryptTensor(a, tensor.New(img.Shape...), plan, sc)
	htc.Execute(a, c, encA, policy, sc)

	ref := hisa.NewRefBackend(slots)
	meter := hisa.NewMeter(ref, nil)
	encR := htc.EncryptTensor(meter, img, plan, sc)
	htc.Execute(meter, c, encR, policy, sc)

	if a.RotationOps() != meter.Counts().Rotations {
		t.Fatalf("analysis rotations %d != metered rotations %d",
			a.RotationOps(), meter.Counts().Rotations)
	}
	if len(a.Rotations()) == 0 {
		t.Fatal("no rotation keys collected")
	}
}

func TestCompileSelectsParameters(t *testing.T) {
	c, _ := testCNN()
	for _, scheme := range []Scheme{SchemeCKKS, SchemeRNS} {
		comp, err := Compile(c, Options{Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(comp.Trace) != len(htc.AllPolicies) {
			t.Fatalf("%v: expected %d policy results, got %d", scheme, len(htc.AllPolicies), len(comp.Trace))
		}
		best := comp.Best
		if best.LogN < 12 || best.LogN > 16 {
			t.Fatalf("%v: implausible LogN %d", scheme, best.LogN)
		}
		if best.LogQ <= 0 {
			t.Fatalf("%v: no modulus selected", scheme)
		}
		if len(best.Rotations) == 0 {
			t.Fatalf("%v: no rotation keys selected", scheme)
		}
		if best.EstimatedCost <= 0 {
			t.Fatalf("%v: no cost estimate", scheme)
		}
		// Security: the selected parameters fit the table budget.
		logQP := best.LogQ
		if scheme == SchemeRNS {
			logQP += float64(best.SpecialBits)
			if len(best.RNSChainBits) == 0 {
				t.Fatalf("RNS chain missing")
			}
		}
		if float64(MaxLogQ(best.LogN, 128)) < logQP {
			t.Fatalf("%v: selected parameters are not 128-bit secure: logQP=%g at logN=%d",
				scheme, logQP, best.LogN)
		}
		// The best policy is the argmin of the trace.
		for _, r := range comp.Trace {
			if r.EstimatedCost < best.EstimatedCost {
				t.Fatalf("%v: best policy is not minimal", scheme)
			}
		}
	}
}

func TestCompiledSimBackendMeetsPrecision(t *testing.T) {
	// End-to-end: the parameters the compiler picks must be sufficient for
	// the circuit to execute within tolerance on the CKKS noise model.
	c, img := testCNN()
	want := c.Evaluate(img)

	comp, err := Compile(c, Options{Scheme: SchemeCKKS})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBackend(comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := comp.Options.Scales
	plan := htc.PlanFor(c, comp.Best.Policy)
	enc := htc.EncryptTensor(b, img, plan, sc)
	out := htc.Execute(b, c, enc, comp.Best.Policy, sc)
	got := htc.DecryptTensor(b, out)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
			t.Fatalf("output %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCompiledRNSBackendMeetsPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	c, img := testCNN()
	want := c.Evaluate(img)

	// Small insecure ring for test speed, mirroring the paper's
	// non-standard HEAAN comparison parameters.
	comp, err := Compile(c, Options{
		Scheme:       SchemeRNS,
		SecurityBits: -1,
		MinLogN:      11,
		MaxLogN:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBackend(comp, ring.NewTestPRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	sc := comp.Options.Scales
	plan := htc.PlanFor(c, comp.Best.Policy)
	enc := htc.EncryptTensor(b, img, plan, sc)
	out := htc.Execute(b, c, enc, comp.Best.Policy, sc)
	got := htc.DecryptTensor(b, out)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
			t.Fatalf("output %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
	// The backend provisioned exactly the compiler-selected keys.
	rns := b.(*hisa.RNSBackend)
	if rns.ProvisionedRotations() != len(comp.Best.Rotations) {
		t.Fatalf("provisioned %d keys, compiler selected %d",
			rns.ProvisionedRotations(), len(comp.Best.Rotations))
	}
}

func TestPowerOfTwoBaselineNeedsMoreRotations(t *testing.T) {
	// Figure 7's premise: with only power-of-two keys, the circuit executes
	// more primitive rotations than with CHET-selected keys.
	c, _ := testCNN()
	opt, err := Compile(c, Options{Scheme: SchemeRNS})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(c, Options{Scheme: SchemeRNS, PowerOfTwoRotationsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Best.RotationOps <= opt.Best.RotationOps {
		t.Fatalf("power-of-two baseline executed %d rotations, CHET %d — baseline should be worse",
			base.Best.RotationOps, opt.Best.RotationOps)
	}
	if base.Best.EstimatedCost <= opt.Best.EstimatedCost {
		t.Fatal("power-of-two baseline should cost more")
	}
}

func TestSelectScales(t *testing.T) {
	c, img := testCNN()
	inputs := []*tensor.Tensor{img, randTensor([]int{1, 8, 8}, 1, 7)}
	sc, err := SelectScales(c, inputs, ScaleSearch{Tolerance: 0.05, Step: 4}, Options{Scheme: SchemeCKKS})
	if err != nil {
		t.Fatal(err)
	}
	// The search must have moved off the 2^40 start for at least one knob.
	start := math.Exp2(40)
	if sc.Pc >= start && sc.Pw >= start && sc.Pu >= start && sc.Pm >= start {
		t.Fatalf("search did not shrink any scale: %+v", sc)
	}
	// And the chosen scales must actually be acceptable end to end.
	comp, err := Compile(c, Options{Scheme: SchemeCKKS, Scales: sc})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBackend(comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Evaluate(img)
	plan := htc.PlanFor(c, comp.Best.Policy)
	enc := htc.EncryptTensor(b, img, plan, sc)
	got := htc.DecryptTensor(b, htc.Execute(b, c, enc, comp.Best.Policy, sc))
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 0.05 {
			t.Fatalf("selected scales violate tolerance at output %d: %g vs %g",
				i, got.Data[i], want.Data[i])
		}
	}
}

func TestSplitBits(t *testing.T) {
	cases := []struct {
		total, max int
		wantLen    int
	}{
		{52, 60, 1},
		{90, 60, 2},
		{180, 60, 3},
		{0, 60, 1},
	}
	for _, tc := range cases {
		got := splitBits(tc.total, tc.max)
		if len(got) != tc.wantLen {
			t.Fatalf("splitBits(%d,%d) = %v", tc.total, tc.max, got)
		}
		sum := 0
		for _, b := range got {
			if b > tc.max || b < 20 {
				t.Fatalf("splitBits(%d,%d) produced out-of-range prime %d", tc.total, tc.max, b)
			}
			sum += b
		}
		if tc.total > 0 && sum < tc.total {
			t.Fatalf("splitBits(%d,%d) sums to %d", tc.total, tc.max, sum)
		}
	}
}
