package core

import (
	"fmt"
	"math"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/tensor"
)

// ScaleSearch configures the profile-guided fixed-point scale selection
// (Section 5.5).
type ScaleSearch struct {
	// Tolerance is the maximum absolute output deviation from the
	// unencrypted reference permitted on every profiling input.
	Tolerance float64
	// StartBits is the initial exponent of all four factors (default 40,
	// as in the paper).
	StartBits int
	// MinBits floors the search (default 6).
	MinBits int
	// Step is the exponent decrement per accepted move (default 1).
	Step int
}

func (s *ScaleSearch) fillDefaults() {
	if s.StartBits == 0 {
		s.StartBits = 40
	}
	if s.MinBits == 0 {
		s.MinBits = 6
	}
	if s.Step == 0 {
		s.Step = 1
	}
	if s.Tolerance == 0 {
		s.Tolerance = 0.1
	}
}

// SelectScales runs CHET's profile-guided optimization: starting from 2^40
// for all four fixed-point factors (image Pc, plaintext weights Pw, scalar
// weights Pu, masks Pm), it decreases the exponents round-robin as long as
// the homomorphic output stays within tolerance of the unencrypted
// reference on every profiling input. Candidates are evaluated on the
// noise-modeling CKKS backend configured with the parameters the candidate
// scales themselves induce.
func SelectScales(c *circuit.Circuit, inputs []*tensor.Tensor, search ScaleSearch, opts Options) (htc.Scales, error) {
	search.fillDefaults()
	if len(inputs) == 0 {
		return htc.Scales{}, fmt.Errorf("core: scale selection needs at least one profiling input")
	}
	opts.fillDefaults()

	refs := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		refs[i] = c.Evaluate(in)
	}

	exps := [4]int{search.StartBits, search.StartBits, search.StartBits, search.StartBits}
	toScales := func(e [4]int) htc.Scales {
		return htc.Scales{
			Pc: math.Exp2(float64(e[0])),
			Pw: math.Exp2(float64(e[1])),
			Pu: math.Exp2(float64(e[2])),
			Pm: math.Exp2(float64(e[3])),
		}
	}

	if !scalesAcceptable(c, inputs, refs, toScales(exps), search.Tolerance, opts) {
		return htc.Scales{}, fmt.Errorf(
			"core: even the starting scales 2^%d do not meet tolerance %g; the circuit may be too deep",
			search.StartBits, search.Tolerance)
	}

	frozen := [4]bool{}
	for !(frozen[0] && frozen[1] && frozen[2] && frozen[3]) {
		for k := 0; k < 4; k++ {
			if frozen[k] {
				continue
			}
			cand := exps
			cand[k] -= search.Step
			if cand[k] < search.MinBits {
				frozen[k] = true
				continue
			}
			if scalesAcceptable(c, inputs, refs, toScales(cand), search.Tolerance, opts) {
				exps = cand
			} else {
				frozen[k] = true
			}
		}
	}
	return toScales(exps), nil
}

// scalesAcceptable compiles the circuit under the candidate scales and
// checks the encrypted output against the reference on every input.
func scalesAcceptable(c *circuit.Circuit, inputs, refs []*tensor.Tensor,
	sc htc.Scales, tol float64, opts Options) (ok bool) {
	defer func() {
		// Modulus exhaustion or capacity overflow means "not acceptable".
		if recover() != nil {
			ok = false
		}
	}()

	opts.Scales = sc
	comp, err := Compile(c, opts)
	if err != nil {
		return false
	}
	best := comp.Best
	b := hisa.NewSimBackend(hisa.SimParams{
		LogN:    best.LogN,
		LogQ:    int(best.LogQ),
		NoNoise: true, // deterministic values; noise enters via the 6-sigma bound
	})
	policy := best.Policy
	plan := htc.PlanFor(c, policy)
	for i, in := range inputs {
		enc := htc.EncryptTensor(b, in, plan, sc)
		out := htc.Execute(b, c, enc, policy, sc)
		noiseBound := 0.0
		for _, ct := range out.CTs {
			if n := 6 * b.NoiseOf(ct); n > noiseBound {
				noiseBound = n
			}
		}
		dec := htc.DecryptTensor(b, out)
		for j := range refs[i].Data {
			if math.Abs(dec.Data[j]-refs[i].Data[j])+noiseBound > tol {
				return false
			}
		}
	}
	return true
}
