package core

import (
	"fmt"
	"math"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
)

// BuildBackend instantiates the runtime backend that realizes a compiled
// circuit: the HEAAN-style CKKS backend or the real RNS-CKKS scheme, with
// exactly the encryption parameters and rotation keys the compiler chose.
// prng may be nil for a cryptographically secure source (RNS only).
func BuildBackend(comp *Compiled, prng ring.PRNG) (hisa.Backend, error) {
	best := comp.Best
	switch comp.Options.Scheme {
	case SchemeCKKS:
		var rotSet map[int]bool
		if comp.Options.PowerOfTwoRotationsOnly {
			rotSet = powerOfTwoSet(1 << uint(best.LogN-1))
		} else {
			rotSet = make(map[int]bool, len(best.Rotations))
			for _, r := range best.Rotations {
				rotSet[r] = true
			}
		}
		return hisa.NewSimBackend(hisa.SimParams{
			LogN:      best.LogN,
			LogQ:      int(best.LogQ),
			Rotations: rotSet,
		}), nil
	case SchemeRNS:
		params, err := RNSParameters(comp)
		if err != nil {
			return nil, fmt.Errorf("core: building RNS parameters: %w", err)
		}
		rotations := best.Rotations
		if comp.Options.PowerOfTwoRotationsOnly {
			rotations = nil // backend provisions power-of-two defaults
		}
		cfg := hisa.RNSConfig{
			Params:    params,
			PRNG:      prng,
			Rotations: rotations,
		}
		if comp.BootPlan != nil {
			// Provision the bootstrapper (and its extra rotation keys)
			// against the exact spec the chain was laid out for.
			spec := comp.BootPlan.Spec
			cfg.Bootstrap = &spec
		}
		return hisa.NewRNSBackend(cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", comp.Options.Scheme)
	}
}

// RNSParameters materializes the RNS-CKKS parameter set a compilation
// selected. Both endpoints of the serving protocol derive parameters this
// way — compilation is deterministic, so client and server agree without
// shipping anything but the model — and it is the single place the
// Compiled → ckks.Parameters mapping lives.
func RNSParameters(comp *Compiled) (*ckks.Parameters, error) {
	if comp.Options.Scheme != SchemeRNS {
		return nil, fmt.Errorf("core: scheme %v has no RNS parameters", comp.Options.Scheme)
	}
	return ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     comp.Best.LogN,
		LogQ:     comp.Best.RNSChainBits,
		LogP:     comp.Best.SpecialBits,
		LogScale: int(math.Round(math.Log2(comp.Options.Scales.Pc))),
	})
}

func powerOfTwoSet(slots int) map[int]bool {
	set := map[int]bool{}
	for p := 1; p < slots; p <<= 1 {
		set[p] = true
	}
	return set
}
