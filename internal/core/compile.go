package core

import (
	"fmt"
	"math"

	"chet/internal/circuit"
	"chet/internal/htc"
	"chet/internal/tensor"
)

// Options configures a compilation.
type Options struct {
	// Scheme is the target FHE scheme.
	Scheme Scheme
	// Scales are the four fixed-point scaling factors (use
	// SelectScales for the profile-guided search).
	Scales htc.Scales
	// SecurityBits is the demanded security level (default 128). Zero keeps
	// the default; a negative value disables the security check entirely,
	// matching the paper's HEAAN runs with hand-written non-standard
	// parameters.
	SecurityBits int
	// RNSPrimeBits sizes the candidate chain moduli for RNS-CKKS
	// (default 40).
	RNSPrimeBits int
	// MagMarginBits is headroom for message magnitude and noise (default 12).
	MagMarginBits float64
	// MinLogN / MaxLogN bound the ring-degree search (defaults 12 / 16).
	MinLogN, MaxLogN int
	// Policies restricts the layout search space (default: all four).
	Policies []htc.LayoutPolicy
	// CostModel overrides the calibrated default for the scheme.
	CostModel *CostModel
	// PowerOfTwoRotationsOnly disables CHET's rotation-keys selection and
	// models the library-default power-of-two keys (the Figure 7 baseline).
	PowerOfTwoRotationsOnly bool
	// CostThreads is T in the T-thread cost model: EstimatedCost becomes
	// the makespan of greedily binning per-op costs onto T threads (the
	// paper's evaluation machine has 16 cores and its cost analysis takes
	// the max across threads). 0 or 1 reproduces the serial sum-of-costs
	// estimate exactly, so existing layout decisions are unchanged.
	CostThreads int
	// Batch packs this many images into the slot vector's batch lanes
	// (nGraph-HE2-style batching): each image occupies a lane of
	// slots/nextPow2(Batch) slots, one evaluation serves the whole batch,
	// and CostPerImage amortizes the estimate by Batch. The layout search
	// only admits ring degrees whose lanes fit the per-image footprint, and
	// the rotation-key set grows by the Batch-1 lane-packing rotations the
	// serving layer uses to coalesce requests. 0 or 1 means unbatched.
	Batch int
	// Complex packs two images per batch lane — one in the real and one in
	// the imaginary slot component (nGraph-HE2's complex packing) — doubling
	// Batch capacity at constant ring size. The runtime backend must expose
	// hisa.ConjugateBackend (all three executable backends do); ct-ct
	// products spend one extra Pu depth on the conjugation identity.
	Complex bool
	// ScaleMode selects rescale placement: ScaleGreedy (default) keeps the
	// op-local kernel protocol; ScaleLazy runs the graph-level scale-
	// management pass and ships a per-site defer/rescale plan in Compiled.
	ScaleMode ScaleMode
	// Bootstrap enables compiler-placed bootstrapping for circuits deeper
	// than any secure modulus chain (see bootplace.go). Requires SchemeRNS
	// and ScaleGreedy; the modulus chain is laid out from the bootstrap
	// spec instead of the circuit's consumption, and Compiled.BootPlan
	// reports where bootstraps land.
	Bootstrap *BootstrapOptions
}

// lanes is the number of physical batch lanes the options imply (complex
// packing halves the lane count for the same image capacity).
func (o *Options) lanes() int {
	b := o.Batch
	if b < 1 {
		b = 1
	}
	if o.Complex {
		return (b + 1) / 2
	}
	return b
}

func (o *Options) fillDefaults() {
	if o.SecurityBits == 0 {
		o.SecurityBits = 128
	}
	if o.RNSPrimeBits == 0 {
		o.RNSPrimeBits = 40
	}
	if o.MagMarginBits == 0 {
		o.MagMarginBits = 12
	}
	if o.MinLogN == 0 {
		o.MinLogN = 12
	}
	if o.MaxLogN == 0 {
		o.MaxLogN = 16
	}
	if len(o.Policies) == 0 {
		o.Policies = append([]htc.LayoutPolicy(nil), htc.AllPolicies...)
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.Bootstrap != nil {
		// Copy before filling so the caller's struct is never mutated.
		b := *o.Bootstrap
		if b.Window == 0 {
			b.Window = 4
		}
		if b.Floor == 0 {
			b.Floor = 1
		}
		o.Bootstrap = &b
	}
	if o.Scales == (htc.Scales{}) {
		if o.Bootstrap != nil {
			// Bootstrap mode requires prime-aligned scales (see Compile's
			// validation): every factor is one chain prime.
			p := math.Exp2(float64(o.RNSPrimeBits))
			o.Scales = htc.Scales{Pc: p, Pw: p, Pu: p, Pm: p}
		} else {
			// Conservative defaults near the paper's 2^40 search start; the
			// profile-guided SelectScales shrinks them per circuit.
			o.Scales = htc.Scales{
				Pc: math.Exp2(40), Pw: math.Exp2(35), Pu: math.Exp2(35), Pm: math.Exp2(30),
			}
		}
	}
}

// PolicyResult captures the compiler's decisions for one layout policy.
type PolicyResult struct {
	Policy htc.LayoutPolicy

	// Encryption parameters.
	LogN         int
	LogQ         float64 // total ciphertext modulus bits
	RNSChainBits []int   // RNS-CKKS chain prime sizes, q_0 first
	SpecialBits  int     // RNS-CKKS key-switching special prime size

	// Rotation keys the circuit needs (slot amounts, sorted).
	Rotations []int
	// RotationOps is the number of primitive rotations executed.
	RotationOps int

	// EstimatedCost is the cost-model latency estimate (microseconds).
	EstimatedCost float64

	// Batch is the number of images packed per evaluation (>= 1) and
	// CostPerImage the amortized estimate EstimatedCost / Batch — the
	// figure of merit for throughput-oriented serving.
	Batch        int
	CostPerImage float64

	// Bootstraps is the number of compiler-placed bootstraps this policy's
	// execution performs (0 without Options.Bootstrap).
	Bootstraps int
}

// Compiled is the result of compiling a tensor circuit: the optimized
// homomorphic tensor circuit description (best layout policy plus the
// parameters, keys, and scales that realize it) and the per-policy search
// trace.
type Compiled struct {
	Circuit *circuit.Circuit
	Options Options
	Best    PolicyResult
	Trace   []PolicyResult

	// ScalePlan is the graph-level rescale placement recorded by the scale-
	// management pass (Options.ScaleMode == ScaleLazy); nil means every
	// kernel reduce site uses the greedy op-local protocol. Sessions thread
	// it into execution as an htc.PlanPolicy.
	ScalePlan *htc.ScalePlan
	// ScaleReport is the pass's per-site trace (chet-compile -explain).
	ScaleReport *ScaleReport

	// BootPlan is the bootstrap-placement report (Options.Bootstrap set):
	// the spec the chain was laid out for and every placement, attributed
	// to circuit nodes. BuildBackend provisions the runtime bootstrapper
	// from it; BootBackend wraps the backend with the realizing Refresher.
	BootPlan *BootReport
}

// Compile runs CHET's compilation pipeline on a tensor circuit: for every
// candidate data layout it selects encryption parameters with the
// modulus-consumption analysis, prices the circuit with the scheme cost
// model, and returns the cheapest policy along with its rotation-key set.
func Compile(c *circuit.Circuit, opts Options) (*Compiled, error) {
	opts.fillDefaults()
	if opts.Bootstrap != nil {
		if opts.Scheme != SchemeRNS {
			return nil, fmt.Errorf("core: bootstrap placement requires the RNS scheme (got %v)", opts.Scheme)
		}
		if opts.ScaleMode != ScaleGreedy {
			return nil, fmt.Errorf("core: bootstrap placement requires greedy scale mode (deferred scales desynchronize the level accounting the placement trigger relies on)")
		}
		if opts.Bootstrap.Window < opts.Bootstrap.Floor {
			return nil, fmt.Errorf("core: bootstrap window %d below floor %d: fresh ciphertexts would re-trigger immediately",
				opts.Bootstrap.Window, opts.Bootstrap.Floor)
		}
		// Prime-aligned scales: every fixed-point factor must be one chain
		// prime, so each multiplication repays exactly one level and operand
		// scales at op boundaries are always the base scale. Sub-prime
		// factors let the greedy protocol accumulate scale excess a
		// ciphertext can carry to level 0, where its residue mod q0
		// overflows and the message can no longer be bootstrapped.
		prime := math.Exp2(float64(opts.RNSPrimeBits))
		for _, s := range []float64{opts.Scales.Pc, opts.Scales.Pw, opts.Scales.Pu, opts.Scales.Pm} {
			if math.Abs(s-prime) > 1e-6*prime {
				return nil, fmt.Errorf("core: bootstrap placement requires prime-aligned scales (all factors 2^%d, got %v)",
					opts.RNSPrimeBits, opts.Scales)
			}
		}
	}
	out := &Compiled{Circuit: c, Options: opts}
	var firstErr error
	for _, policy := range opts.Policies {
		res, err := compilePolicy(c, policy, opts)
		if err != nil {
			// A policy can be infeasible (e.g. its layout consumes too much
			// modulus for any secure ring degree) while others still work;
			// record the failure and keep searching.
			if firstErr == nil {
				firstErr = fmt.Errorf("policy %v: %w", policy, err)
			}
			continue
		}
		out.Trace = append(out.Trace, res)
	}
	if len(out.Trace) == 0 {
		return nil, fmt.Errorf("core: no layout policy compiles: %w", firstErr)
	}
	best := out.Trace[0]
	for _, r := range out.Trace[1:] {
		if r.EstimatedCost < best.EstimatedCost {
			best = r
		}
	}
	out.Best = best
	// The scale-management pass runs on the winning policy's parameters: it
	// records the per-site rescale plan (lazy mode) and the explain report
	// without changing parameters, keys, or the layout decision.
	if err := recordScalePlan(c, out); err != nil {
		return nil, fmt.Errorf("core: scale-management pass: %w", err)
	}
	// The bootstrap-placement pass attributes each placement the winning
	// policy's analysis triggered to the circuit node that caused it.
	if err := recordBootPlan(c, out); err != nil {
		return nil, fmt.Errorf("core: bootstrap-placement pass: %w", err)
	}
	return out, nil
}

// runAnalysis executes the circuit under an analysis interpretation,
// converting kernel panics (layout does not fit, modulus exhausted) into
// errors so the parameter search can move to the next ring degree.
func runAnalysis(c *circuit.Circuit, policy htc.LayoutPolicy, opts Options, a *Analysis, sc htc.Scales) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("analysis aborted: %v", r)
		}
	}()
	plan := htc.PlanFor(c, policy)
	plan.Batch = opts.Batch
	plan.Complex = opts.Complex
	in := c.Input.OutShape
	// Encrypting an all-zero image is enough: analysis facts are data-
	// independent.
	img := tensor.New(in...)
	enc := htc.EncryptTensor(a, img, plan, sc)
	htc.Execute(a, c, enc, policy, sc)
	return nil
}

func compilePolicy(c *circuit.Circuit, policy htc.LayoutPolicy, opts Options) (PolicyResult, error) {
	var rotKey func(int) bool
	if opts.PowerOfTwoRotationsOnly {
		rotKey = func(int) bool { return false }
	}

	var firstErr error
	for logN := opts.MinLogN; logN <= opts.MaxLogN; logN++ {
		slots := 1 << uint(logN-1)

		// With bootstrapping requested, the chain is laid out from the
		// bootstrap spec instead of the circuit's consumption, and the
		// analysis mirrors the runtime refresh trigger.
		var bootCfg *BootConfig
		if opts.Bootstrap != nil {
			spec, err := bootSpecFor(logN, &opts)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			bootCfg = &BootConfig{Spec: spec, Window: opts.Bootstrap.Window, Floor: opts.Bootstrap.Floor}
		}

		// Pass 1: encryption parameter selection (Section 5.2). The same
		// run collects the rotation set (Section 5.4).
		params := NewAnalysis(AnalysisConfig{
			Scheme:        opts.Scheme,
			Slots:         slots,
			RNSPrimeBits:  opts.RNSPrimeBits,
			MagMarginBits: opts.MagMarginBits,
			RotKey:        rotKey,
			Bootstrap:     bootCfg,
		})
		if err := runAnalysis(c, policy, opts, params, opts.Scales); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue // layout may simply not fit this ring degree
		}

		res := PolicyResult{
			Policy:      policy,
			LogN:        logN,
			LogQ:        math.Ceil(params.PeakLogQ()),
			Rotations:   mergeRotations(params.Rotations(), packRotations(opts.lanes(), slots)),
			RotationOps: params.RotationOps(),
			Batch:       opts.Batch,
		}

		logQP := res.LogQ
		costPrimes := 0.0
		switch {
		case bootCfg != nil:
			// Bootstrap chain: base prime, the working window, the
			// pipeline's own levels, the CoeffToSlot prime. The working
			// band (window primes + live scale + margin) always fits
			// under the pipeline levels above it, but keep the check as
			// a guard against model drift.
			res.RNSChainBits = bootCfg.Spec.ChainBits(bootCfg.Window)
			res.SpecialBits = 60
			res.LogQ = 0
			for _, b := range res.RNSChainBits {
				res.LogQ += float64(b)
			}
			if math.Ceil(params.PeakLogQ()) > res.LogQ {
				if firstErr == nil {
					firstErr = fmt.Errorf("logN %d: peak %0.f bits exceeds bootstrap chain %0.f bits",
						logN, params.PeakLogQ(), res.LogQ)
				}
				continue
			}
			res.Rotations = mergeRotations(res.Rotations, bootCfg.Spec.RotationAmounts())
			res.Bootstraps = params.Bootstraps()
			logQP = res.LogQ + float64(res.SpecialBits)
			costPrimes = float64(len(res.RNSChainBits))
		case opts.Scheme == SchemeRNS:
			consumed := params.ConsumedPrimes()
			baseBits := int(res.LogQ) - consumed*opts.RNSPrimeBits
			base := splitBits(baseBits, 60)
			res.RNSChainBits = base
			for i := 0; i < consumed; i++ {
				res.RNSChainBits = append(res.RNSChainBits, opts.RNSPrimeBits)
			}
			res.SpecialBits = 60
			res.LogQ = 0
			for _, b := range res.RNSChainBits {
				res.LogQ += float64(b)
			}
			logQP = res.LogQ + float64(res.SpecialBits)
			costPrimes = float64(len(res.RNSChainBits))
		}

		if opts.SecurityBits > 0 && float64(MaxLogQ(logN, opts.SecurityBits)) < logQP {
			continue // not secure at this ring degree; grow N
		}

		// Pass 2: cost estimation (Section 5.3) at the chosen parameters.
		cost := NewAnalysis(AnalysisConfig{
			Scheme:        opts.Scheme,
			Slots:         slots,
			RNSPrimeBits:  opts.RNSPrimeBits,
			MagMarginBits: opts.MagMarginBits,
			RotKey:        rotKey,
			CostLogQ:      res.LogQ,
			CostPrimes:    costPrimes,
			Model:         opts.CostModel,
			CostThreads:   opts.CostThreads,
			Batch:         opts.Batch,
			Bootstrap:     bootCfg,
		})
		if err := runAnalysis(c, policy, opts, cost, opts.Scales); err != nil {
			return PolicyResult{}, err
		}
		res.EstimatedCost = cost.Cost()
		res.CostPerImage = cost.CostPerImage()
		return res, nil
	}
	if firstErr != nil {
		return PolicyResult{}, fmt.Errorf("no ring degree in [2^%d, 2^%d] works: %w",
			opts.MinLogN, opts.MaxLogN, firstErr)
	}
	return PolicyResult{}, fmt.Errorf("no ring degree in [2^%d, 2^%d] meets %d-bit security",
		opts.MinLogN, opts.MaxLogN, opts.SecurityBits)
}

// splitBits splits a bit budget into primes of at most maxBits each
// (at least 20 bits apiece).
func splitBits(total, maxBits int) []int {
	if total <= 0 {
		return []int{30} // minimal base prime
	}
	n := (total + maxBits - 1) / maxBits
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		out[i]++
	}
	for i, b := range out {
		if b < 20 {
			out[i] = 20
		}
	}
	return out
}
