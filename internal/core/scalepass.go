package core

import (
	"fmt"
	"math"
	"sort"

	"chet/internal/circuit"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/tensor"
)

// This file is the graph-level scale-management pass. CHET's kernels
// historically decided rescale placement op-locally: every kernel reduced a
// grown scale back to Pc at fixed protocol points (the greedy protocol, now
// htc.GreedyPolicy). That placement is correct but eager — rescaling is one
// of the most expensive HISA instructions, and nGraph-HE2-style lazy
// rescaling shows many sites can defer the reduction and let a later site
// (or decryption, which normalizes by the final scale) absorb the excess.
//
// The pass reuses the compiler's central trick: execute the unmodified
// kernels against the Analysis interpretation of the HISA, but hang a
// recording ScalePolicy on the executor. Each reduce site the kernels hit
// surfaces here with its circuit node, live scale, and consumed modulus; the
// pass decides defer-vs-rescale per site under the modulus budget the greedy
// compilation already proved feasible, executes its own decision (so the
// analysis observes the lazy dataflow), and records the decision keyed by
// (node, quantized scale). The resulting htc.ScalePlan ships inside Compiled
// and replays at runtime through htc.PlanPolicy — identical parameters and
// keys, fewer rescale operations.
//
// Safety: deferral never changes results on the Ref backend (scale is pure
// bookkeeping there) and is budget-checked twice — per site against
// consumed + log2(scale) + margin <= LogQ, and globally by requiring the
// recorded run's PeakLogQ to stay within the greedy compilation's LogQ. If
// the global check fails the plan is dropped and the runtime falls back to
// the greedy protocol wholesale.

// ScaleMode selects how rescale placement is decided for a compilation.
type ScaleMode int

const (
	// ScaleGreedy keeps the op-local protocol at every kernel site (the
	// pre-pass behavior, and the zero value).
	ScaleGreedy ScaleMode = iota
	// ScaleLazy runs the scale-management pass and ships a per-site plan
	// that defers rescales the modulus budget can absorb.
	ScaleLazy
)

func (m ScaleMode) String() string {
	if m == ScaleLazy {
		return "lazy"
	}
	return "greedy"
}

// maxDeferBits bounds how far past the base scale a deferred ciphertext may
// grow before the pass forces a rescale regardless of budget. The bound is a
// cost model, not just a safety rail: it sits deliberately below one default
// RNS prime (~35–40 bits). On the RNS backend every reduce site's excess is a
// whole prime, and deferring it is peak-neutral but keeps a full extra limb
// live through every downstream operation until the merged repayment — the
// per-op cost of that limb exceeds the one rescale call saved, so whole-prime
// deferrals are never taken and the RNS plan matches the greedy waterline.
// Fractional excesses (the fixed-point CKKS/Sim world, where rescale divides
// exactly) ride free and are deferred. Growth past the bound that the local
// budget check missed is caught by the repair loop.
const maxDeferBits = 32.0

// budgetSlackBits is how far past the greedy budget the recorded run's peak
// may float before the repair loop intervenes. Deferral is nearly peak-
// neutral — a deferred rescale lowers consumed modulus by what it adds to
// the live scale — but RNS primes are only near powers of two, and the
// sub-bit drift would otherwise pin every deferral on a strict comparison.
// The slack is paid out of the magnitude margin (default 12 bits).
const budgetSlackBits = 0.5

// ScaleSite is one recorded kernel reduce site — a row of the explain table.
type ScaleSite struct {
	// Node is the circuit node whose kernel hit the site; Name is its
	// "kind:name" label.
	Node int
	Name string
	// ScaleBits is the quantized log2 of the ciphertext scale entering the
	// site (the plan key); LogScale is the exact value.
	ScaleBits int
	LogScale  float64
	// Consumed is the modulus (bits) already consumed when the site runs;
	// Level is the corresponding RNS chain level (-1 for CKKS).
	Consumed float64
	Level    int
	// Decision is what the pass chose for this site.
	Decision htc.ScaleDecision
}

// ScaleReport is the human-facing trace of the scale-management pass,
// backing chet-compile -explain.
type ScaleReport struct {
	// Mode the pass ran in.
	Mode ScaleMode
	// Sites in execution order (serial recording run).
	Sites []ScaleSite
	// Relins counts ciphertext-ciphertext multiplications — each carrying an
	// implicit relinearization — per circuit node.
	Relins map[int]int
	// Deferred and Rescaled tally the decisions across Sites.
	Deferred, Rescaled int
	// PeakLogQ is the recorded run's peak modulus requirement; Budget is the
	// greedy compilation's LogQ it must stay within.
	PeakLogQ, Budget float64
	// Dropped is set when the lazy plan was discarded (budget exceeded):
	// the runtime falls back to the greedy protocol everywhere.
	Dropped bool
}

// scaleRecorder is the htc.ScalePolicy driving the recording run.
type scaleRecorder struct {
	a      *Analysis
	lazy   bool
	budget float64 // modulus bits the greedy compilation selected
	margin float64 // magnitude margin bits

	decisions map[htc.ScaleKey]htc.ScaleDecision
	conflict  map[htc.ScaleKey]bool
	// pinned holds keys the repair loop forced back to the greedy decision
	// after an earlier recording round overflowed the modulus budget. Pins
	// persist across rounds; everything else resets per round.
	pinned map[htc.ScaleKey]bool
	sites  []ScaleSite
	// excess[i] is sites[i]'s scale growth past its reduce base (bits) — the
	// repair loop's ranking signal.
	excess []float64
}

// reset clears the per-round state ahead of a fresh recording run.
func (r *scaleRecorder) reset(a *Analysis) {
	r.a = a
	r.decisions = map[htc.ScaleKey]htc.ScaleDecision{}
	r.conflict = map[htc.ScaleKey]bool{}
	r.sites = nil
	r.excess = nil
}

// Reduce decides and executes one site. Sites already at base fall through
// without a decision, exactly mirroring PlanPolicy's precheck so the
// recorded sites are the ones runtime will look up.
func (r *scaleRecorder) Reduce(b hisa.Backend, node int, c hisa.Ciphertext, base float64) hisa.Ciphertext {
	s := b.Scale(c)
	if s <= base*1.0001 {
		return c
	}
	key := htc.ScaleKeyFor(node, s)
	logS := math.Log2(s)
	consumed := r.a.ConsumedOf(c)

	decision := htc.ScaleRescale
	if r.lazy && !r.pinned[key] && logS-math.Log2(base) <= maxDeferBits &&
		consumed+logS+r.margin <= r.budget {
		decision = htc.ScaleDefer
	}
	// Two distinct sites can collide on one key (same node, same quantized
	// scale) yet want different decisions when their consumed bits differ.
	// A conflicted key is pinned to the greedy decision — both at record
	// time and, by dropping it from the plan, at runtime.
	if prev, ok := r.decisions[key]; ok && prev != decision {
		r.conflict[key] = true
	}
	if r.conflict[key] {
		decision = htc.ScaleRescale
	}
	r.decisions[key] = decision

	lvl := -1
	if r.a.scheme == SchemeRNS {
		lvl = int(math.Round((r.budget - consumed) / r.a.rnsPrimeBits))
	}
	r.sites = append(r.sites, ScaleSite{
		Node: node, ScaleBits: key.ScaleBits, LogScale: logS,
		Consumed: consumed, Level: lvl, Decision: decision,
	})
	r.excess = append(r.excess, logS-math.Log2(base))
	if decision == htc.ScaleDefer {
		return c
	}
	return htc.GreedyPolicy{}.Reduce(b, node, c, base)
}

// pinWorstDeferral pins the deferred site with the largest scale excess back
// to rescale, returning false when no deferral is left to pin. The per-site
// budget check sees the scale entering a site, but a deferred scale keeps
// growing through downstream multiplications — when the recorded run's peak
// overflows the budget, retiring the largest deferral first shrinks the peak
// fastest.
func (r *scaleRecorder) pinWorstDeferral() bool {
	best, bestExcess := -1, 0.0
	for i, s := range r.sites {
		if s.Decision == htc.ScaleDefer && (best < 0 || r.excess[i] > bestExcess) {
			best, bestExcess = i, r.excess[i]
		}
	}
	if best < 0 {
		return false
	}
	r.pinned[htc.ScaleKey{Node: r.sites[best].Node, ScaleBits: r.sites[best].ScaleBits}] = true
	return true
}

// recordScalePlan executes the compiled circuit once more under a scheme-
// matched analysis with the recording policy and attaches the resulting
// plan (lazy mode) and explain report to comp. The run is serial, so site
// order — and hence every decision — is deterministic.
func recordScalePlan(c *circuit.Circuit, comp *Compiled) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recording run aborted: %v", r)
		}
	}()
	opts := comp.Options
	slots := 1 << uint(comp.Best.LogN-1)
	rec := &scaleRecorder{
		lazy:   opts.ScaleMode == ScaleLazy,
		budget: comp.Best.LogQ,
		margin: opts.MagMarginBits,
		pinned: map[htc.ScaleKey]bool{},
	}

	// The per-site budget check is local — it cannot see that a deferred
	// scale will keep growing through downstream multiplications — so the
	// recording run repairs iteratively: whenever the run's peak modulus
	// requirement overflows the budget, pin the worst deferral back to
	// rescale and re-record. All-pinned reproduces the greedy protocol,
	// whose peak fits the budget by construction, so the loop terminates.
	var a *Analysis
	var relins map[int]int
	for {
		a = NewAnalysis(AnalysisConfig{
			Scheme:        opts.Scheme,
			Slots:         slots,
			RNSPrimeBits:  opts.RNSPrimeBits,
			MagMarginBits: opts.MagMarginBits,
			// Bootstrap-aware level accounting (greedy-only mode), so the
			// recording run's consumption mirrors the runtime's resets.
			Bootstrap: comp.bootConfig(),
		})
		rec.reset(a)

		// A Meter around the analysis supplies the per-node relinearization
		// tallies for the explain report; ciphertext facts pass through it
		// untouched.
		meter := hisa.NewMeter(a, nil)
		relins = map[int]int{}
		prevRelin := int64(0)

		img := tensor.New(c.Input.OutShape...)
		enc := htc.EncryptTensor(meter, img, comp.Plan(), opts.Scales)
		htc.ExecuteOpts(meter, c, enc, comp.Best.Policy, opts.Scales, htc.ExecOptions{
			Scale: rec,
			OnNode: func(n *circuit.Node, _ *htc.CipherTensor) {
				cnt := meter.Counts()
				if d := int64(cnt.Relinearize) - prevRelin; d > 0 {
					relins[n.ID] = int(d)
				}
				prevRelin = int64(cnt.Relinearize)
			},
		})
		if !rec.lazy || a.PeakLogQ() <= comp.Best.LogQ+budgetSlackBits || !rec.pinWorstDeferral() {
			break
		}
	}

	names := make(map[int]string, len(c.Nodes))
	for _, n := range c.Nodes {
		names[n.ID] = fmt.Sprintf("%v:%s", n.Kind, n.Name)
	}
	report := &ScaleReport{
		Mode:     opts.ScaleMode,
		Sites:    rec.sites,
		Relins:   relins,
		PeakLogQ: a.PeakLogQ(),
		Budget:   comp.Best.LogQ,
	}
	for i := range report.Sites {
		report.Sites[i].Name = names[report.Sites[i].Node]
		if report.Sites[i].Decision == htc.ScaleDefer {
			report.Deferred++
		} else {
			report.Rescaled++
		}
	}
	comp.ScaleReport = report

	if opts.ScaleMode != ScaleLazy {
		return nil
	}
	// Global safety net: the lazy run's peak modulus requirement must fit
	// the parameters the greedy compilation already selected (and proved
	// secure). Otherwise the plan is dropped wholesale — greedy fallback.
	if a.PeakLogQ() > comp.Best.LogQ+budgetSlackBits {
		report.Dropped = true
		return nil
	}
	for k := range rec.conflict {
		delete(rec.decisions, k)
	}
	comp.ScalePlan = &htc.ScalePlan{Decisions: rec.decisions}
	return nil
}

// sortedPlanKeys returns a plan's keys in (node, scaleBits) order for
// deterministic hashing and display.
func sortedPlanKeys(p *htc.ScalePlan) []htc.ScaleKey {
	keys := make([]htc.ScaleKey, 0, len(p.Decisions))
	for k := range p.Decisions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].ScaleBits < keys[j].ScaleBits
	})
	return keys
}
