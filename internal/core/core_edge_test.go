package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"chet/internal/circuit"
	"chet/internal/htc"
	"chet/internal/tensor"
)

func TestAnalysisResultsAreDeterministic(t *testing.T) {
	c, _ := testCNN()
	run := func() ([]int, float64, float64) {
		a := NewAnalysis(AnalysisConfig{Scheme: SchemeCKKS, Slots: 2048})
		sc := htc.DefaultScales()
		plan := htc.PlanFor(c, htc.PolicyCHW)
		enc := htc.EncryptTensor(a, tensor.New(1, 8, 8), plan, sc)
		htc.Execute(a, c, enc, htc.PolicyCHW, sc)
		return a.Rotations(), a.PeakLogQ(), a.ConsumedLogQ()
	}
	r1, p1, c1 := run()
	r2, p2, c2 := run()
	if p1 != p2 || c1 != c2 || len(r1) != len(r2) {
		t.Fatal("analysis is not deterministic")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("rotation sets differ between runs")
		}
	}
}

func TestPeakCoversConsumption(t *testing.T) {
	c, _ := testCNN()
	for _, scheme := range []Scheme{SchemeCKKS, SchemeRNS} {
		a := NewAnalysis(AnalysisConfig{Scheme: scheme, Slots: 2048})
		sc := htc.DefaultScales()
		plan := htc.PlanFor(c, htc.PolicyHW)
		enc := htc.EncryptTensor(a, tensor.New(1, 8, 8), plan, sc)
		htc.Execute(a, c, enc, htc.PolicyHW, sc)
		if a.PeakLogQ() < a.ConsumedLogQ() {
			t.Fatalf("%v: peak %g below consumption %g", scheme, a.PeakLogQ(), a.ConsumedLogQ())
		}
		if a.ConsumedLogQ() <= 0 {
			t.Fatalf("%v: no modulus consumed by a circuit with multiplications", scheme)
		}
	}
}

func TestCompileErrorPaths(t *testing.T) {
	c, _ := testCNN()
	// A window too small to ever fit the layout.
	if _, err := Compile(c, Options{Scheme: SchemeCKKS, MinLogN: 4, MaxLogN: 4}); err == nil {
		t.Fatal("expected error when the layout cannot fit any allowed ring")
	}

	// 256-bit security with a deep circuit at a capped ring must fail.
	if _, err := Compile(c, Options{
		Scheme: SchemeCKKS, SecurityBits: 256, MaxLogN: 12,
	}); err == nil {
		t.Fatal("expected error when no ring meets the security budget")
	}
}

func TestHigherSecurityNeedsLargerRing(t *testing.T) {
	c, _ := testCNN()
	c128, err := Compile(c, Options{Scheme: SchemeCKKS, SecurityBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	c256, err := Compile(c, Options{Scheme: SchemeCKKS, SecurityBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	if c256.Best.LogN < c128.Best.LogN {
		t.Fatalf("256-bit security chose a smaller ring (2^%d) than 128-bit (2^%d)",
			c256.Best.LogN, c128.Best.LogN)
	}
}

func TestRNSChainSumsToLogQ(t *testing.T) {
	c, _ := testCNN()
	comp, err := Compile(c, Options{Scheme: SchemeRNS})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, b := range comp.Best.RNSChainBits {
		sum += float64(b)
	}
	if math.Abs(sum-comp.Best.LogQ) > 1e-9 {
		t.Fatalf("chain bits sum %g != LogQ %g", sum, comp.Best.LogQ)
	}
	if comp.Best.SpecialBits != 60 {
		t.Fatalf("special prime bits = %d", comp.Best.SpecialBits)
	}
}

func TestMaxRescaleRules(t *testing.T) {
	// CKKS: power-of-two divisors. RNS: products of idealized 40-bit primes.
	ck := NewAnalysis(AnalysisConfig{Scheme: SchemeCKKS, Slots: 64})
	rn := NewAnalysis(AnalysisConfig{Scheme: SchemeRNS, Slots: 64, RNSPrimeBits: 40})
	ct := ck.Encrypt(ck.Encode([]float64{1}, 1<<20))
	ctR := rn.Encrypt(rn.Encode([]float64{1}, 1<<20))

	f := func(ubBits uint8) bool {
		bits := int(ubBits%70) + 1
		ub := bigPow2(bits)
		d := ck.MaxRescale(ct, ub)
		// Largest power of two <= ub is ub itself here.
		if d.BitLen()-1 != bits {
			return false
		}
		dr := rn.MaxRescale(ctR, ub)
		wantPrimes := bits / 40
		if wantPrimes == 0 {
			return dr.Cmp(bigOne()) == 0
		}
		return dr.BitLen()-1 == wantPrimes*40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisScaleMismatchCaught(t *testing.T) {
	a := NewAnalysis(AnalysisConfig{Scheme: SchemeCKKS, Slots: 64})
	x := a.Encrypt(a.Encode([]float64{1}, 1<<20))
	y := a.Encrypt(a.Encode([]float64{1}, 1<<21))
	defer func() {
		if recover() == nil {
			t.Fatal("expected scale-mismatch panic")
		}
	}()
	a.Add(x, y)
}

func TestDeeperCircuitConsumesMoreModulus(t *testing.T) {
	build := func(depth int) *circuit.Circuit {
		b := circuit.NewBuilder("chain")
		x := b.Input(1, 4, 4)
		for i := 0; i < depth; i++ {
			x = b.Activation(x, 0.25, 1, "act")
		}
		return b.Build(x)
	}
	measure := func(c *circuit.Circuit) float64 {
		a := NewAnalysis(AnalysisConfig{Scheme: SchemeCKKS, Slots: 64})
		sc := htc.DefaultScales()
		enc := htc.EncryptTensor(a, tensor.New(1, 4, 4), htc.PlanFor(c, htc.PolicyCHW), sc)
		htc.Execute(a, c, enc, htc.PolicyCHW, sc)
		return a.ConsumedLogQ()
	}
	if !(measure(build(1)) < measure(build(3)) && measure(build(3)) < measure(build(6))) {
		t.Fatal("modulus consumption not monotone in circuit depth")
	}
}

func bigPow2(bits int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(bits))
}

func bigOne() *big.Int { return big.NewInt(1) }
