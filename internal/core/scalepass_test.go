package core

import (
	"math"
	"testing"

	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// runPlan executes a compilation's circuit on b, replaying the recorded scale
// plan when one exists (lazy mode) and falling back to the greedy protocol
// otherwise — the same dispatch the serving layer and benches use.
func runPlan(comp *Compiled, b hisa.Backend, img *tensor.Tensor) *tensor.Tensor {
	sc := comp.Options.Scales
	plan := htc.PlanFor(comp.Circuit, comp.Best.Policy)
	enc := htc.EncryptTensor(b, img, plan, sc)
	opts := htc.ExecOptions{}
	if comp.ScalePlan != nil {
		opts.Scale = htc.PlanPolicy{Plan: comp.ScalePlan}
	}
	out := htc.ExecuteOpts(b, comp.Circuit, enc, comp.Best.Policy, sc, opts)
	return htc.DecryptTensor(b, out)
}

// TestLazyMatchesGreedyOnRefAndSim is the cross-backend property the scale
// pass must preserve: deferring rescales is an optimization, never a change
// of program meaning. On the fixed-point CKKS world every rescale divides by
// a power of two — exact in floating point — so the plaintext Ref oracle
// must produce bit-identical outputs under the lazy plan and the greedy
// protocol; the noisy CKKS mock must agree within precision.
func TestLazyMatchesGreedyOnRefAndSim(t *testing.T) {
	c, img := testCNN()
	want := c.Evaluate(img)

	greedy, err := Compile(c, Options{Scheme: SchemeCKKS})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Compile(c, Options{Scheme: SchemeCKKS, ScaleMode: ScaleLazy})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.ScalePlan == nil {
		t.Fatal("lazy compilation recorded no scale plan")
	}
	// The fractional world is where laziness pays; if nothing was deferred
	// the property below is vacuously true and the pass is broken.
	if lazy.ScaleReport == nil || lazy.ScaleReport.Deferred == 0 {
		t.Fatalf("lazy CKKS compilation deferred nothing: %+v", lazy.ScaleReport)
	}

	// Plaintext oracle: bit-identical.
	slots := 1 << uint(greedy.Best.LogN-1)
	refGreedy := runPlan(greedy, hisa.NewRefBackend(slots), img)
	refLazy := runPlan(lazy, hisa.NewRefBackend(1<<uint(lazy.Best.LogN-1)), img)
	for i := range refGreedy.Data {
		if refGreedy.Data[i] != refLazy.Data[i] {
			t.Fatalf("Ref output %d: greedy %v != lazy %v (power-of-two rescales must be exact)",
				i, refGreedy.Data[i], refLazy.Data[i])
		}
	}

	// Noise model: both within precision of the plaintext result.
	for name, comp := range map[string]*Compiled{"greedy": greedy, "lazy": lazy} {
		b, err := BuildBackend(comp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(comp, b, img)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
				t.Fatalf("sim %s output %d: got %g want %g", name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestLazyEqualsGreedyWaterlineOnRNS pins the pass's RNS cost model: every
// reduce-site excess there is a whole ~40-bit prime, deferring one is
// peak-neutral but keeps an extra live limb through every downstream op, so
// the one-prime ceiling (maxDeferBits) must reject all of them — the lazy
// plan degenerates to the greedy waterline and executes the same number of
// rescale instructions.
func TestLazyEqualsGreedyWaterlineOnRNS(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	c, img := testCNN()
	want := c.Evaluate(img)

	base := Options{Scheme: SchemeRNS, SecurityBits: -1, MinLogN: 11, MaxLogN: 11}
	lazyOpts := base
	lazyOpts.ScaleMode = ScaleLazy

	greedy, err := Compile(c, base)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Compile(c, lazyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.ScaleReport == nil {
		t.Fatal("lazy compilation has no scale report")
	}
	if lazy.ScaleReport.Deferred != 0 {
		t.Fatalf("RNS lazy plan deferred %d whole-prime rescales; the one-prime ceiling should reject them all",
			lazy.ScaleReport.Deferred)
	}

	counts := map[string]int{}
	for name, comp := range map[string]*Compiled{"greedy": greedy, "lazy": lazy} {
		b, err := BuildBackend(comp, ring.NewTestPRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		m := hisa.NewMeter(b, nil)
		got := runPlan(comp, m, img)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-2 {
				t.Fatalf("rns %s output %d: got %g want %g", name, i, got.Data[i], want.Data[i])
			}
		}
		counts[name] = m.Counts().Rescale
	}
	if counts["greedy"] != counts["lazy"] {
		t.Fatalf("rescale counts diverge: greedy %d, lazy %d", counts["greedy"], counts["lazy"])
	}
}
