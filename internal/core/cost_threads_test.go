package core

import (
	"math"
	"testing"

	"chet/internal/nn"
)

func TestLPTMakespan(t *testing.T) {
	costs := []float64{7, 5, 4, 3, 3, 2}

	// T=1 is the plain left-to-right sum.
	if got := LPTMakespan(costs, 1); got != 24 {
		t.Fatalf("T=1 makespan = %v, want 24", got)
	}
	// LPT on 2 threads: 7|5, 5+4=9, 7+3=10, 9+3=12, 10+2=12 -> max 12.
	if got := LPTMakespan(costs, 2); got != 12 {
		t.Fatalf("T=2 makespan = %v, want 12", got)
	}
	// More threads than ops: the longest op dominates.
	if got := LPTMakespan(costs, 16); got != 7 {
		t.Fatalf("T=16 makespan = %v, want 7", got)
	}
	if got := LPTMakespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %v, want 0", got)
	}

	// Invariants: non-increasing in T, never below the critical bounds.
	prev := math.Inf(1)
	for _, threads := range []int{1, 2, 3, 4, 8} {
		got := LPTMakespan(costs, threads)
		if got > prev {
			t.Fatalf("makespan grew from %v to %v at T=%d", prev, got, threads)
		}
		if got < 24/float64(threads) || got < 7 {
			t.Fatalf("T=%d makespan %v below lower bound", threads, got)
		}
		prev = got
	}
}

// TestCostThreadsSerialParity pins the compatibility guarantee: CostThreads
// of 0 or 1 must reproduce the historical serial estimates bit-for-bit, so
// every layout decision the compiler has ever made is stable.
func TestCostThreadsSerialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every network twice per scheme; run without -short")
	}
	for _, m := range nn.All() {
		for _, scheme := range []Scheme{SchemeCKKS, SchemeRNS} {
			base, err := Compile(m.Circuit, Options{Scheme: scheme})
			if err != nil {
				t.Fatalf("%s/%v: %v", m.Name, scheme, err)
			}
			one, err := Compile(m.Circuit, Options{Scheme: scheme, CostThreads: 1})
			if err != nil {
				t.Fatalf("%s/%v (T=1): %v", m.Name, scheme, err)
			}
			if one.Best.Policy != base.Best.Policy {
				t.Fatalf("%s/%v: T=1 flipped the layout decision: %v vs %v",
					m.Name, scheme, one.Best.Policy, base.Best.Policy)
			}
			for i := range base.Trace {
				b, o := base.Trace[i], one.Trace[i]
				if o.EstimatedCost != b.EstimatedCost {
					t.Fatalf("%s/%v policy %v: T=1 cost %v != serial cost %v (must be exact)",
						m.Name, scheme, b.Policy, o.EstimatedCost, b.EstimatedCost)
				}
			}
		}
	}
}

// TestCostThreadsMakespan checks the T-thread estimate behaves like a
// makespan: below the serial sum, above serial/T, and monotonically
// non-increasing in T.
func TestCostThreadsMakespan(t *testing.T) {
	c := nn.LeNet5Small().Circuit
	serial, err := Compile(c, Options{Scheme: SchemeRNS})
	if err != nil {
		t.Fatal(err)
	}
	prev := serial.Best.EstimatedCost
	for _, threads := range []int{2, 4, 16} {
		comp, err := Compile(c, Options{Scheme: SchemeRNS, CostThreads: threads})
		if err != nil {
			t.Fatalf("T=%d: %v", threads, err)
		}
		got := comp.Best.EstimatedCost
		if got > prev {
			t.Fatalf("T=%d estimate %v exceeds T'<%d estimate %v", threads, got, threads, prev)
		}
		if got < serial.Best.EstimatedCost/float64(threads) {
			t.Fatalf("T=%d estimate %v below serial/T bound %v",
				threads, got, serial.Best.EstimatedCost/float64(threads))
		}
		// Parallelism must actually help a network this wide.
		if threads >= 4 && got >= 0.9*serial.Best.EstimatedCost {
			t.Fatalf("T=%d estimate %v barely below serial %v", threads, got, serial.Best.EstimatedCost)
		}
		prev = got
	}
}
