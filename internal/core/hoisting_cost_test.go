package core

import (
	"math"
	"testing"

	"chet/internal/hisa"
)

// TestHoistedRotationPricing pins the shape of the hoisted cost model: one
// batch pays setup once plus a cheap step per amount, a single hoisted
// rotation costs about one plain rotation, and a batch of 8 is at least
// 1.5x cheaper than 8 plain rotations.
func TestHoistedRotationPricing(t *testing.T) {
	m := DefaultCostModel(SchemeRNS)
	n := 8192.0
	st := state{r: 4}

	rotate := m.Rotate(n, st)
	setup := m.RotateHoistedSetup(n, st)
	step := m.RotateHoistedStep(n, st)
	if setup <= 0 || step <= 0 {
		t.Fatalf("hoisted costs must be positive: setup=%g step=%g", setup, step)
	}
	if one := setup + step; math.Abs(one-rotate)/rotate > 0.15 {
		t.Fatalf("one hoisted rotation %g should cost ~ one plain rotation %g", one, rotate)
	}
	const k = 8
	if hoisted, plain := setup+k*step, k*rotate; plain < 1.5*hoisted {
		t.Fatalf("model must predict >=1.5x speedup for %d amounts: hoisted %g plain %g", k, hoisted, plain)
	}

	// CKKS has no hoisted path: the batch degenerates to plain rotations.
	ck := DefaultCostModel(SchemeCKKS)
	if s := ck.RotateHoistedSetup(n, state{logQ: 600}); s != 0 {
		t.Fatalf("CKKS hoisted setup = %g, want 0", s)
	}
	if s, r := ck.RotateHoistedStep(n, state{logQ: 600}), ck.Rotate(n, state{logQ: 600}); s != r {
		t.Fatalf("CKKS hoisted step = %g, want plain rotation %g", s, r)
	}
}

// TestAnalysisRotLeftManyConsistency checks the batch transfer function
// against the sequential one: identical rotation-step records (so key
// selection and op counts don't depend on batching) and a strictly lower
// cost estimate on the RNS target, including amounts that fall back to
// multi-step decomposition.
func TestAnalysisRotLeftManyConsistency(t *testing.T) {
	pow2 := func(k int) bool { return k&(k-1) == 0 }
	mk := func() *Analysis {
		return NewAnalysis(AnalysisConfig{
			Scheme: SchemeRNS, Slots: 4096,
			RotKey:     pow2,
			CostPrimes: 6,
		})
	}
	ks := []int{1, 2, 4, 8, 16, 32, 64, 128, 3, 0} // 3 = 1+2 fallback, 0 free

	batch := mk()
	ct := batch.Encrypt(batch.Encode(nil, 1<<20))
	batch.RotLeftMany(ct, ks)

	seq := mk()
	ct2 := seq.Encrypt(seq.Encode(nil, 1<<20))
	for _, k := range ks {
		seq.RotLeft(ct2, k)
	}

	if batch.RotationOps() != seq.RotationOps() {
		t.Fatalf("rotation ops diverge: batch %d seq %d", batch.RotationOps(), seq.RotationOps())
	}
	bk, sk := batch.Rotations(), seq.Rotations()
	if len(bk) != len(sk) {
		t.Fatalf("rotation key sets diverge: %v vs %v", bk, sk)
	}
	for i := range bk {
		if bk[i] != sk[i] {
			t.Fatalf("rotation key sets diverge: %v vs %v", bk, sk)
		}
	}
	if batch.Cost() >= seq.Cost() {
		t.Fatalf("hoisted batch cost %g should beat sequential %g", batch.Cost(), seq.Cost())
	}
	if seq.Cost() < 1.5*batch.Cost() {
		t.Fatalf("8 single-step amounts should be >=1.5x cheaper hoisted: %g vs %g", batch.Cost(), seq.Cost())
	}
}

// Compile-time check: Analysis exposes the batch capability, so kernels
// drive the same batched instruction stream through analysis and runtime.
var _ hisa.RotateManyBackend = (*Analysis)(nil)
