package core
