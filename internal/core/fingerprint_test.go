package core

import (
	"math"
	"testing"

	"chet/internal/htc"
)

// fpBaseOptions compiles fast: a small insecure ring is enough because the
// fingerprint is about identity, not security.
func fpBaseOptions() Options {
	return Options{
		Scheme:       SchemeRNS,
		SecurityBits: -1,
		MinLogN:      6,
		MaxLogN:      8,
	}
}

func fpCompile(t *testing.T, opts Options) *Compiled {
	t.Helper()
	c, _ := testCNN()
	comp, err := Compile(c, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return comp
}

func TestFingerprintStable(t *testing.T) {
	a := fpCompile(t, fpBaseOptions())
	b := fpCompile(t, fpBaseOptions())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two identical compilations disagree on fingerprint")
	}
	if len(a.FingerprintHex()) != 64 {
		t.Fatalf("hex fingerprint has length %d, want 64", len(a.FingerprintHex()))
	}
	// Explicitly writing a default must agree with omitting it: Options are
	// stored after fillDefaults.
	explicit := fpBaseOptions()
	explicit.RNSPrimeBits = 40 // the default
	if fpCompile(t, explicit).Fingerprint() != a.Fingerprint() {
		t.Fatal("explicit default changed the fingerprint")
	}
}

// TestFingerprintFlipsOnOptionsChange checks that every meaningful Options
// mutation yields a distinct fingerprint — the property the session-open
// handshake relies on to reject mismatched compilations.
func TestFingerprintFlipsOnOptionsChange(t *testing.T) {
	base := fpCompile(t, fpBaseOptions())

	mutations := map[string]func(*Options){
		"Scheme":       func(o *Options) { o.Scheme = SchemeCKKS },
		"Scales.Pc":    func(o *Options) { o.Scales = htc.Scales{Pc: math.Exp2(41), Pw: math.Exp2(35), Pu: math.Exp2(35), Pm: math.Exp2(30)} },
		"SecurityBits": func(o *Options) { o.SecurityBits = 128; o.MinLogN = 12; o.MaxLogN = 15 },
		"RNSPrimeBits": func(o *Options) { o.RNSPrimeBits = 35 },
		"MagMargin":    func(o *Options) { o.MagMarginBits = 14 },
		"MinLogN":      func(o *Options) { o.MinLogN = 7 },
		"MaxLogN":      func(o *Options) { o.MaxLogN = 9 },
		"Policies":     func(o *Options) { o.Policies = []htc.LayoutPolicy{htc.PolicyCHW} },
		"CostModel": func(o *Options) {
			m := DefaultCostModel(SchemeRNS)
			m.CRotate *= 2
			o.CostModel = &m
		},
		"PowerOfTwoRotationsOnly": func(o *Options) { o.PowerOfTwoRotationsOnly = true },
		"CostThreads":             func(o *Options) { o.CostThreads = 4 },
		"ScaleMode":               func(o *Options) { o.ScaleMode = ScaleLazy },
	}

	for name, mutate := range mutations {
		opts := fpBaseOptions()
		mutate(&opts)
		comp := fpCompile(t, opts)
		if comp.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

// TestFingerprintFlipsOnPackingOptions isolates the v3 additions — Batch and
// Complex — on a ring large enough for batched lanes (the tiny fpBaseOptions
// ring cannot hold batch 2, which would conflate the mutation with a LogN
// change). A real-batched, a complex-packed, and an unbatched compilation
// must all disagree pairwise.
func TestFingerprintFlipsOnPackingOptions(t *testing.T) {
	base := fpBaseOptions()
	base.MinLogN, base.MaxLogN = 9, 10

	batch := base
	batch.Batch = 2
	cplx := base
	cplx.Batch = 2
	cplx.Complex = true

	fps := map[string]string{
		"plain":   fpCompile(t, base).FingerprintHex(),
		"batch":   fpCompile(t, batch).FingerprintHex(),
		"complex": fpCompile(t, cplx).FingerprintHex(),
	}
	seen := map[string]string{}
	for name, fp := range fps {
		if other, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", name, other)
		}
		seen[fp] = name
	}
}

// TestFingerprintV4Golden pins the canonical v4 encoding to a known digest.
// The fingerprint is a wire-visible contract — both sides of the session-open
// handshake must compute the same bytes — so any change to the byte layout
// must come with a version bump (fpVersion), not a silent drift. If this test
// fails and you did not intend an encoding change, you broke compatibility
// with deployed peers; if you did intend it, bump fpVersion and refresh the
// constant below.
func TestFingerprintV4Golden(t *testing.T) {
	opts := fpBaseOptions()
	opts.ScaleMode = ScaleLazy
	const want = "8511b5c92fa2c238ebaf5fc46baa421db4ee62af7422ff45121bd3d92918f4a1"
	if got := fpCompile(t, opts).FingerprintHex(); got != want {
		t.Fatalf("fingerprint v4 golden mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestFingerprintFlipsOnCircuitChange checks the weight and structure
// sensitivity: same options, different circuit contents.
func TestFingerprintFlipsOnCircuitChange(t *testing.T) {
	c, _ := testCNN()
	base, err := Compile(c, fpBaseOptions())
	if err != nil {
		t.Fatal(err)
	}

	c2, _ := testCNN()
	// Perturb one weight: execution stays compatible but predictions differ,
	// which the fingerprint must expose.
	for _, n := range c2.Nodes {
		if n.Weights != nil {
			n.Weights.Data[0] += 1e-3
			break
		}
	}
	changed, err := Compile(c2, fpBaseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if changed.Fingerprint() == base.Fingerprint() {
		t.Fatal("weight perturbation did not change the fingerprint")
	}
}
