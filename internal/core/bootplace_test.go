package core

import (
	"math"
	"testing"

	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

// bootOptions compiles at a small insecure ring so real-lattice runs stay
// fast; window 3 forces several mid-circuit bootstraps on a deep MLP.
func bootOptions(window int) Options {
	return Options{
		Scheme:       SchemeRNS,
		SecurityBits: -1,
		MinLogN:      9,
		MaxLogN:      9,
		Policies:     []htc.LayoutPolicy{htc.PolicyCHW},
		Bootstrap:    &BootstrapOptions{Window: window},
	}
}

func TestBootstrapCompileValidation(t *testing.T) {
	m := nn.DeepMLP(2)
	opts := bootOptions(3)
	opts.Scheme = SchemeCKKS
	if _, err := Compile(m.Circuit, opts); err == nil {
		t.Fatal("bootstrap with CKKS scheme must fail")
	}
	opts = bootOptions(3)
	opts.ScaleMode = ScaleLazy
	if _, err := Compile(m.Circuit, opts); err == nil {
		t.Fatal("bootstrap with lazy scale mode must fail")
	}
	opts = bootOptions(3)
	opts.Bootstrap.Floor = 5
	if _, err := Compile(m.Circuit, opts); err == nil {
		t.Fatal("window below floor must fail")
	}
}

// TestBootstrapPlacement: a circuit too deep for its window compiles with a
// bootstrap chain, places bootstraps at level-exhaustion points, and folds
// their cost into the estimate.
func TestBootstrapPlacement(t *testing.T) {
	m := nn.DeepMLP(6)
	comp, err := Compile(m.Circuit, bootOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if comp.BootPlan == nil {
		t.Fatal("no BootPlan on a bootstrap compilation")
	}
	p := comp.BootPlan
	if len(p.Placements) == 0 {
		t.Fatal("deep MLP with window 3 must place bootstraps")
	}
	if comp.Best.Bootstraps != len(p.Placements) {
		t.Fatalf("Best.Bootstraps = %d, plan has %d placements", comp.Best.Bootstraps, len(p.Placements))
	}
	if p.FreshLevel != 3 || p.Window != 3 {
		t.Fatalf("fresh level %d / window %d, want 3/3", p.FreshLevel, p.Window)
	}
	// The chain is the spec layout: q0, window+Depth-1 working primes, C2S.
	wantChain := 1 + p.Window + p.Depth
	if len(comp.Best.RNSChainBits) != wantChain {
		t.Fatalf("chain has %d primes, want %d", len(comp.Best.RNSChainBits), wantChain)
	}
	for i, pl := range p.Placements {
		if pl.Index != i {
			t.Fatalf("placement %d has index %d", i, pl.Index)
		}
		if pl.Node < 0 {
			t.Fatalf("placement %d not attributed to a node (%+v)", i, pl)
		}
		if pl.LevelBefore >= p.Floor {
			t.Fatalf("placement %d triggered at level %d >= floor %d", i, pl.LevelBefore, p.Floor)
		}
		if pl.LevelAfter != p.FreshLevel {
			t.Fatalf("placement %d lands at level %d, want %d", i, pl.LevelAfter, p.FreshLevel)
		}
		if pl.Cost <= 0 {
			t.Fatalf("placement %d has no cost estimate", i)
		}
		if pl.Name == "" || pl.Op == "" {
			t.Fatalf("placement %d missing attribution: %+v", i, pl)
		}
	}
	if p.EstCost <= 0 || comp.Best.EstimatedCost < p.EstCost {
		t.Fatalf("bootstrap cost %g not folded into estimate %g", p.EstCost, comp.Best.EstimatedCost)
	}
	// The bootstrap rotation amounts must be in the provisioned key set.
	keys := map[int]bool{}
	for _, r := range comp.Best.Rotations {
		keys[r] = true
	}
	for _, amt := range p.Spec.RotationAmounts() {
		if !keys[amt] {
			t.Fatalf("bootstrap rotation %d missing from key set", amt)
		}
	}
	// Deterministic: recompiling reproduces the fingerprint.
	comp2, err := Compile(m.Circuit, bootOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if comp.FingerprintHex() != comp2.FingerprintHex() {
		t.Fatal("bootstrap compilation not deterministic")
	}
	if c3, err := Compile(m.Circuit, bootOptions(4)); err != nil {
		t.Fatal(err)
	} else if c3.FingerprintHex() == comp.FingerprintHex() {
		t.Fatal("window change must flip the fingerprint")
	}
}

// TestBootstrapEndToEnd is the subsystem's closing property: a deep MLP
// compiles with compiler-placed bootstraps, runs end-to-end encrypted on the
// real RNS backend under the Refresher, matches the Ref-backend lockstep
// within the bootstrap epsilon, performs exactly as many bootstraps as the
// compiler placed, and leaks no ring polynomials.
func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-lattice bootstrap run")
	}
	m := nn.DeepMLP(6)
	comp, err := Compile(m.Circuit, bootOptions(3))
	if err != nil {
		t.Fatal(err)
	}

	img := nn.SyntheticImage(m.InputShape, 7)

	// Plaintext-tracking reference over the same circuit.
	ref := hisa.NewRefBackend(1 << (comp.Best.LogN - 1))
	refEnc := htc.EncryptTensor(ref, img, comp.Plan(), comp.Options.Scales)
	refOut := htc.Execute(ref, m.Circuit, refEnc, comp.Best.Policy, comp.Options.Scales)
	want := htc.DecryptTensor(ref, refOut)

	raw, err := BuildBackend(comp, ring.NewTestPRNG(0xDEE9))
	if err != nil {
		t.Fatal(err)
	}
	backend, err := BootBackend(comp, raw)
	if err != nil {
		t.Fatal(err)
	}
	rf := backend.(*hisa.Refresher)
	_ = raw

	enc := htc.EncryptTensor(backend, img, comp.Plan(), comp.Options.Scales)
	out := htc.Execute(backend, m.Circuit, enc, comp.Best.Policy, comp.Options.Scales)
	got := htc.DecryptTensor(backend, out)

	if rf.Bootstraps() != len(comp.BootPlan.Placements) {
		t.Fatalf("runtime performed %d bootstraps, compiler placed %d",
			rf.Bootstraps(), len(comp.BootPlan.Placements))
	}
	if rf.Bootstraps() == 0 {
		t.Fatal("deep MLP ran without bootstrapping")
	}
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > 5e-2 {
			t.Fatalf("output %d: |%g - %g| = %g exceeds bootstrap epsilon", i, got.Data[i], want.Data[i], d)
		}
	}

}
