// Package circuit defines CHET's input language: tensor circuits. A circuit
// is a DAG of tensor operations (convolution, dense layers, pooling,
// polynomial activations, batch normalization, residual adds, channel
// concatenation) over a single encrypted input tensor and plaintext model
// weights, with shapes known at compile time from the input schema — the
// property CHET exploits to unroll its dataflow analyses on the fly.
package circuit

import (
	"fmt"

	"chet/internal/tensor"
)

// OpKind enumerates tensor operations.
type OpKind int

// The tensor operations of the CHET DSL.
const (
	OpInput OpKind = iota
	OpConv2D
	OpDense
	OpAvgPool2D
	OpGlobalAvgPool2D
	OpActivation
	OpBatchNorm
	OpAdd
	OpConcat
	OpFlatten
	OpPad2D
	OpPolyEval
)

func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv2D:
		return "conv2d"
	case OpDense:
		return "dense"
	case OpAvgPool2D:
		return "avgpool2d"
	case OpGlobalAvgPool2D:
		return "globalavgpool2d"
	case OpActivation:
		return "activation"
	case OpBatchNorm:
		return "batchnorm"
	case OpAdd:
		return "add"
	case OpConcat:
		return "concat"
	case OpFlatten:
		return "flatten"
	case OpPad2D:
		return "pad2d"
	case OpPolyEval:
		return "polyeval"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Node is one tensor operation in the circuit DAG.
type Node struct {
	ID     int
	Kind   OpKind
	Name   string
	Inputs []*Node

	// Attributes (populated per kind).
	Stride, Pad, Window int
	ActA, ActB          float64        // activation f(x) = ActA*x^2 + ActB*x
	Coeffs              []float64      // polynomial activation p(x) = sum Coeffs[i] x^i
	Weights             *tensor.Tensor // conv filters OIHW / dense matrix / BN gamma
	Bias                *tensor.Tensor // conv & dense bias / BN beta

	// OutShape is the inferred output shape.
	OutShape []int
}

// Circuit is a tensor circuit with a single encrypted input.
type Circuit struct {
	Name   string
	Input  *Node
	Output *Node
	Nodes  []*Node // topological order (Input first)
}

// Builder constructs circuits with shape inference at each step.
type Builder struct {
	name  string
	nodes []*Node
	input *Node
}

// NewBuilder starts a circuit with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

func (b *Builder) add(n *Node) *Node {
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	return n
}

// Input declares the encrypted input tensor with a CHW shape.
func (b *Builder) Input(c, h, w int) *Node {
	if b.input != nil {
		panic("circuit: multiple inputs declared")
	}
	n := b.add(&Node{Kind: OpInput, Name: "input", OutShape: []int{c, h, w}})
	b.input = n
	return n
}

func shapeCHW(n *Node) (int, int, int) {
	if len(n.OutShape) != 3 {
		panic(fmt.Sprintf("circuit: node %q output %v is not CHW", n.Name, n.OutShape))
	}
	return n.OutShape[0], n.OutShape[1], n.OutShape[2]
}

// Conv2D appends a convolution with OIHW filters, optional per-channel
// bias, stride, and symmetric zero padding.
func (b *Builder) Conv2D(x *Node, filters, bias *tensor.Tensor, stride, pad int, name string) *Node {
	cin, h, w := shapeCHW(x)
	if filters.Rank() != 4 || filters.Shape[1] != cin {
		panic(fmt.Sprintf("circuit: conv %q filter shape %v incompatible with input %v",
			name, filters.Shape, x.OutShape))
	}
	cout, kh, kw := filters.Shape[0], filters.Shape[2], filters.Shape[3]
	if bias != nil && bias.Size() != cout {
		panic(fmt.Sprintf("circuit: conv %q bias size %d != %d output channels", name, bias.Size(), cout))
	}
	hout := (h+2*pad-kh)/stride + 1
	wout := (w+2*pad-kw)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic(fmt.Sprintf("circuit: conv %q produces empty output", name))
	}
	return b.add(&Node{
		Kind: OpConv2D, Name: name, Inputs: []*Node{x},
		Stride: stride, Pad: pad, Weights: filters, Bias: bias,
		OutShape: []int{cout, hout, wout},
	})
}

// Dense appends a fully connected layer on a flattened input.
func (b *Builder) Dense(x *Node, weights, bias *tensor.Tensor, name string) *Node {
	inSize := 1
	for _, d := range x.OutShape {
		inSize *= d
	}
	if weights.Rank() != 2 || weights.Shape[1] != inSize {
		panic(fmt.Sprintf("circuit: dense %q weights %v incompatible with input size %d",
			name, weights.Shape, inSize))
	}
	out := weights.Shape[0]
	if bias != nil && bias.Size() != out {
		panic(fmt.Sprintf("circuit: dense %q bias size mismatch", name))
	}
	return b.add(&Node{
		Kind: OpDense, Name: name, Inputs: []*Node{x},
		Weights: weights, Bias: bias, OutShape: []int{out},
	})
}

// AvgPool2D appends average pooling (valid padding).
func (b *Builder) AvgPool2D(x *Node, window, stride int, name string) *Node {
	c, h, w := shapeCHW(x)
	hout := (h-window)/stride + 1
	wout := (w-window)/stride + 1
	if hout <= 0 || wout <= 0 {
		panic(fmt.Sprintf("circuit: pool %q produces empty output", name))
	}
	return b.add(&Node{
		Kind: OpAvgPool2D, Name: name, Inputs: []*Node{x},
		Window: window, Stride: stride, OutShape: []int{c, hout, wout},
	})
}

// GlobalAvgPool2D appends global average pooling over each channel.
func (b *Builder) GlobalAvgPool2D(x *Node, name string) *Node {
	c, _, _ := shapeCHW(x)
	return b.add(&Node{Kind: OpGlobalAvgPool2D, Name: name, Inputs: []*Node{x}, OutShape: []int{c}})
}

// Activation appends the HE-compatible activation f(x) = a*x^2 + b*x.
func (b *Builder) Activation(x *Node, a, bb float64, name string) *Node {
	return b.add(&Node{
		Kind: OpActivation, Name: name, Inputs: []*Node{x},
		ActA: a, ActB: bb, OutShape: append([]int(nil), x.OutShape...),
	})
}

// PolyEval appends a general polynomial activation p(x) = sum c_i x^i
// (coeffs[i] is the coefficient of x^i), the form produced by the polyfit
// package when approximating ReLU/sigmoid/tanh. Degree >= 1 required; each
// degree costs one multiplicative level under encryption.
func (b *Builder) PolyEval(x *Node, coeffs []float64, name string) *Node {
	if len(coeffs) < 2 {
		panic(fmt.Sprintf("circuit: polyeval %q needs degree >= 1", name))
	}
	return b.add(&Node{
		Kind: OpPolyEval, Name: name, Inputs: []*Node{x},
		Coeffs:   append([]float64(nil), coeffs...),
		OutShape: append([]int(nil), x.OutShape...),
	})
}

// BatchNorm appends inference-time batch normalization with folded
// per-channel scale gamma and shift beta.
func (b *Builder) BatchNorm(x *Node, gamma, beta *tensor.Tensor, name string) *Node {
	c, _, _ := shapeCHW(x)
	if gamma.Size() != c || beta.Size() != c {
		panic(fmt.Sprintf("circuit: batchnorm %q parameter size mismatch", name))
	}
	return b.add(&Node{
		Kind: OpBatchNorm, Name: name, Inputs: []*Node{x},
		Weights: gamma, Bias: beta, OutShape: append([]int(nil), x.OutShape...),
	})
}

// Add appends an elementwise (residual) addition of two equal-shaped nodes.
func (b *Builder) Add(x, y *Node, name string) *Node {
	if fmt.Sprint(x.OutShape) != fmt.Sprint(y.OutShape) {
		panic(fmt.Sprintf("circuit: add %q shape mismatch %v vs %v", name, x.OutShape, y.OutShape))
	}
	return b.add(&Node{
		Kind: OpAdd, Name: name, Inputs: []*Node{x, y},
		OutShape: append([]int(nil), x.OutShape...),
	})
}

// Concat appends channel concatenation of CHW nodes.
func (b *Builder) Concat(name string, xs ...*Node) *Node {
	if len(xs) < 2 {
		panic("circuit: concat needs at least two inputs")
	}
	_, h, w := shapeCHW(xs[0])
	totalC := 0
	for _, x := range xs {
		c, hh, ww := shapeCHW(x)
		if hh != h || ww != w {
			panic(fmt.Sprintf("circuit: concat %q spatial mismatch", name))
		}
		totalC += c
	}
	return b.add(&Node{
		Kind: OpConcat, Name: name, Inputs: append([]*Node(nil), xs...),
		OutShape: []int{totalC, h, w},
	})
}

// Flatten reshapes to a vector. In CHET this is a metadata-only operation.
func (b *Builder) Flatten(x *Node, name string) *Node {
	size := 1
	for _, d := range x.OutShape {
		size *= d
	}
	return b.add(&Node{Kind: OpFlatten, Name: name, Inputs: []*Node{x}, OutShape: []int{size}})
}

// Pad2D appends symmetric spatial zero padding.
func (b *Builder) Pad2D(x *Node, pad int, name string) *Node {
	c, h, w := shapeCHW(x)
	return b.add(&Node{
		Kind: OpPad2D, Name: name, Inputs: []*Node{x}, Pad: pad,
		OutShape: []int{c, h + 2*pad, w + 2*pad},
	})
}

// Build finalizes the circuit with the given output node.
func (b *Builder) Build(output *Node) *Circuit {
	if b.input == nil {
		panic("circuit: no input declared")
	}
	if output == nil {
		panic("circuit: nil output")
	}
	return &Circuit{Name: b.name, Input: b.input, Output: output, Nodes: b.nodes}
}
