package circuit

import (
	"math"
	"testing"

	"chet/internal/tensor"
)

// tinyCNN builds a minimal conv -> act -> pool -> dense circuit.
func tinyCNN(t testing.TB) *Circuit {
	t.Helper()
	b := NewBuilder("tiny")
	x := b.Input(1, 6, 6)
	filters := tensor.New(2, 1, 3, 3)
	for i := range filters.Data {
		filters.Data[i] = 0.1 * float64(i%5)
	}
	bias := tensor.FromData([]float64{0.5, -0.5}, 2)
	x = b.Conv2D(x, filters, bias, 1, 0, "conv1") // -> 2x4x4
	x = b.Activation(x, 0.25, 1.0, "act1")
	x = b.AvgPool2D(x, 2, 2, "pool1") // -> 2x2x2
	x = b.Flatten(x, "flatten")
	w := tensor.New(3, 8)
	for i := range w.Data {
		w.Data[i] = 0.05 * float64(i%7)
	}
	x = b.Dense(x, w, tensor.FromData([]float64{0.1, 0.2, 0.3}, 3), "fc1")
	return b.Build(x)
}

func TestShapeInference(t *testing.T) {
	c := tinyCNN(t)
	wantShapes := map[string][]int{
		"conv1":   {2, 4, 4},
		"act1":    {2, 4, 4},
		"pool1":   {2, 2, 2},
		"flatten": {8},
		"fc1":     {3},
	}
	for _, n := range c.Nodes {
		want, ok := wantShapes[n.Name]
		if !ok {
			continue
		}
		if len(n.OutShape) != len(want) {
			t.Fatalf("%s shape %v want %v", n.Name, n.OutShape, want)
		}
		for i := range want {
			if n.OutShape[i] != want[i] {
				t.Fatalf("%s shape %v want %v", n.Name, n.OutShape, want)
			}
		}
	}
}

func TestEvaluateMatchesManualComputation(t *testing.T) {
	c := tinyCNN(t)
	input := tensor.New(1, 6, 6)
	for i := range input.Data {
		input.Data[i] = float64(i%4) * 0.5
	}
	got := c.Evaluate(input)

	// Manual pipeline with the same reference kernels.
	var conv1 *Node
	for _, n := range c.Nodes {
		if n.Name == "conv1" {
			conv1 = n
		}
	}
	x := tensor.Conv2D(input, conv1.Weights, 1, 0)
	x = tensor.AddBiasPerChannel(x, conv1.Bias)
	x = tensor.PolyActivation(x, 0.25, 1.0)
	x = tensor.AvgPool2D(x, 2, 2)
	var fc *Node
	for _, n := range c.Nodes {
		if n.Name == "fc1" {
			fc = n
		}
	}
	want := tensor.MatVec(fc.Weights, x.Reshape(x.Size()), fc.Bias)

	if got.Size() != want.Size() {
		t.Fatalf("output size %d want %d", got.Size(), want.Size())
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("output[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestResidualAndConcat(t *testing.T) {
	b := NewBuilder("residual")
	x := b.Input(2, 4, 4)
	gamma := tensor.FromData([]float64{1, 1}, 2)
	beta := tensor.FromData([]float64{0, 0}, 2)
	y := b.BatchNorm(x, gamma, beta, "bn")
	sum := b.Add(x, y, "res")
	cat := b.Concat("cat", sum, x)
	c := b.Build(cat)

	in := tensor.New(2, 4, 4)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out := c.Evaluate(in)
	if out.Shape[0] != 4 {
		t.Fatalf("concat output channels %d, want 4", out.Shape[0])
	}
	// Identity BN + residual = 2x input.
	for i := 0; i < in.Size(); i++ {
		if out.Data[i] != 2*in.Data[i] {
			t.Fatalf("residual value %d wrong", i)
		}
	}
	for i := 0; i < in.Size(); i++ {
		if out.Data[in.Size()+i] != in.Data[i] {
			t.Fatalf("concat tail value %d wrong", i)
		}
	}
}

func TestGlobalPoolAndPad(t *testing.T) {
	b := NewBuilder("gp")
	x := b.Input(2, 2, 2)
	x = b.Pad2D(x, 1, "pad")
	if x.OutShape[1] != 4 {
		t.Fatalf("pad shape %v", x.OutShape)
	}
	x = b.GlobalAvgPool2D(x, "gap")
	c := b.Build(x)
	in := tensor.FromData([]float64{4, 4, 4, 4, 8, 8, 8, 8}, 2, 2, 2)
	out := c.Evaluate(in)
	// Padded 4x4 has 16 cells, 4 of them nonzero.
	if out.Data[0] != 1 || out.Data[1] != 2 {
		t.Fatalf("global pool got %v", out.Data)
	}
}

func TestFlopsPositiveAndComposable(t *testing.T) {
	c := tinyCNN(t)
	f := c.Flops()
	if f <= 0 {
		t.Fatalf("flops = %d", f)
	}
	// conv: 2*2*4*4*1*3*3 = 576, +bias 32; act: 4*32 = 128;
	// pool: 2*2*2*5 = 40; dense: 2*8*3 = 48, +bias 3.
	want := int64(576 + 32 + 128 + 40 + 48 + 3)
	if f != want {
		t.Fatalf("flops = %d, want %d", f, want)
	}
}

func TestCountLayersAndDepth(t *testing.T) {
	c := tinyCNN(t)
	lc := c.CountLayers()
	if lc.Conv != 1 || lc.Dense != 1 || lc.Act != 1 || lc.Pool != 1 {
		t.Fatalf("layer counts %+v", lc)
	}
	// conv(1) + act(2) + pool(1) + dense(1) = 5.
	if d := c.MultiplicativeDepth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
}

func TestBuilderValidation(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}

	assertPanics("double input", func() {
		b := NewBuilder("bad")
		b.Input(1, 2, 2)
		b.Input(1, 2, 2)
	})
	assertPanics("bad filter channels", func() {
		b := NewBuilder("bad")
		x := b.Input(3, 8, 8)
		b.Conv2D(x, tensor.New(4, 2, 3, 3), nil, 1, 0, "c")
	})
	assertPanics("bad dense size", func() {
		b := NewBuilder("bad")
		x := b.Input(1, 2, 2)
		b.Dense(x, tensor.New(2, 5), nil, "d")
	})
	assertPanics("add shape mismatch", func() {
		b := NewBuilder("bad")
		x := b.Input(1, 4, 4)
		y := b.AvgPool2D(x, 2, 2, "p")
		b.Add(x, y, "a")
	})
	assertPanics("no input", func() {
		b := NewBuilder("bad")
		b.Build(&Node{})
	})
	assertPanics("input shape mismatch at eval", func() {
		b := NewBuilder("bad")
		x := b.Input(1, 4, 4)
		c := b.Build(x)
		c.Evaluate(tensor.New(1, 3, 3))
	})
}
