package circuit

import (
	"math"
	"testing"

	"chet/internal/tensor"
)

func TestPolyEvalOp(t *testing.T) {
	b := NewBuilder("poly")
	x := b.Input(1, 2, 2)
	// p(x) = 1 - x + 2x^3
	x = b.PolyEval(x, []float64{1, -1, 0, 2}, "p")
	c := b.Build(x)

	in := tensor.FromData([]float64{-1, 0, 0.5, 2}, 1, 2, 2)
	out := c.Evaluate(in)
	want := []float64{1 - (-1) + 2*(-1), 1, 1 - 0.5 + 2*0.125, 1 - 2 + 2*8}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("p(%g) = %g, want %g", in.Data[i], out.Data[i], w)
		}
	}

	// Depth: degree 3 + 1 conservative bound.
	if d := c.MultiplicativeDepth(); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
	// Flops: 4 elements * 2 * degree(3) = 24.
	if f := c.Flops(); f != 24 {
		t.Fatalf("flops = %d, want 24", f)
	}
	if OpPolyEval.String() != "polyeval" {
		t.Fatal("op name wrong")
	}
}

func TestPolyEvalRequiresDegree(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input(1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.PolyEval(x, []float64{1}, "constant")
}

func TestBuilderCoeffsAreCopied(t *testing.T) {
	b := NewBuilder("copy")
	x := b.Input(1, 2, 2)
	coeffs := []float64{0, 1, 1}
	n := b.PolyEval(x, coeffs, "p")
	coeffs[2] = 99
	if n.Coeffs[2] != 1 {
		t.Fatal("builder aliased caller's coefficient slice")
	}
}

func TestOpKindStringsAreDistinct(t *testing.T) {
	kinds := []OpKind{
		OpInput, OpConv2D, OpDense, OpAvgPool2D, OpGlobalAvgPool2D,
		OpActivation, OpBatchNorm, OpAdd, OpConcat, OpFlatten, OpPad2D, OpPolyEval,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate op name %q", s)
		}
		seen[s] = true
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
