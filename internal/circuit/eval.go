package circuit

import (
	"fmt"

	"chet/internal/tensor"
)

// Evaluate runs the circuit on a plaintext input using the reference tensor
// kernels, returning the output tensor. This is CHET's unencrypted
// reference inference engine: the ground truth for validating homomorphic
// execution and for the profile-guided scale selection.
func (c *Circuit) Evaluate(input *tensor.Tensor) *tensor.Tensor {
	results := make(map[int]*tensor.Tensor, len(c.Nodes))
	for _, n := range c.Nodes {
		var out *tensor.Tensor
		switch n.Kind {
		case OpInput:
			if fmt.Sprint(input.Shape) != fmt.Sprint(n.OutShape) {
				panic(fmt.Sprintf("circuit: input shape %v does not match schema %v",
					input.Shape, n.OutShape))
			}
			out = input
		case OpConv2D:
			out = tensor.Conv2D(results[n.Inputs[0].ID], n.Weights, n.Stride, n.Pad)
			if n.Bias != nil {
				out = tensor.AddBiasPerChannel(out, n.Bias)
			}
		case OpDense:
			in := results[n.Inputs[0].ID]
			out = tensor.MatVec(n.Weights, in.Reshape(in.Size()), n.Bias)
		case OpAvgPool2D:
			out = tensor.AvgPool2D(results[n.Inputs[0].ID], n.Window, n.Stride)
		case OpGlobalAvgPool2D:
			out = tensor.GlobalAvgPool2D(results[n.Inputs[0].ID])
		case OpActivation:
			out = tensor.PolyActivation(results[n.Inputs[0].ID], n.ActA, n.ActB)
		case OpBatchNorm:
			out = tensor.BatchNorm(results[n.Inputs[0].ID], n.Weights, n.Bias)
		case OpAdd:
			out = tensor.Add(results[n.Inputs[0].ID], results[n.Inputs[1].ID])
		case OpConcat:
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = results[in.ID]
			}
			out = tensor.ConcatChannels(ins...)
		case OpFlatten:
			in := results[n.Inputs[0].ID]
			out = in.Reshape(in.Size())
		case OpPad2D:
			out = tensor.Pad2D(results[n.Inputs[0].ID], n.Pad)
		case OpPolyEval:
			in := results[n.Inputs[0].ID]
			out = in.Clone()
			for i, v := range out.Data {
				acc := 0.0
				for j := len(n.Coeffs) - 1; j >= 0; j-- {
					acc = acc*v + n.Coeffs[j]
				}
				out.Data[i] = acc
			}
		default:
			panic(fmt.Sprintf("circuit: unhandled op %v", n.Kind))
		}
		results[n.ID] = out
	}
	return results[c.Output.ID]
}

// Flops returns the total floating-point operation count of one inference,
// the statistic reported in Table 3 of the paper.
func (c *Circuit) Flops() int64 {
	var total int64
	for _, n := range c.Nodes {
		switch n.Kind {
		case OpConv2D:
			in := n.Inputs[0].OutShape
			total += tensor.Conv2DFlops(in[0], in[1], in[2],
				n.Weights.Shape[0], n.Weights.Shape[2], n.Weights.Shape[3], n.Stride, n.Pad)
			if n.Bias != nil {
				total += int64(n.OutShape[0] * n.OutShape[1] * n.OutShape[2])
			}
		case OpDense:
			total += tensor.MatVecFlops(n.Weights.Shape[1], n.Weights.Shape[0])
			if n.Bias != nil {
				total += int64(n.OutShape[0])
			}
		case OpAvgPool2D:
			in := n.Inputs[0].OutShape
			total += tensor.AvgPool2DFlops(in[0], in[1], in[2], n.Window, n.Stride)
		case OpGlobalAvgPool2D:
			in := n.Inputs[0].OutShape
			total += int64(in[0]) * int64(in[1]*in[2]+1)
		case OpActivation:
			size := 1
			for _, d := range n.OutShape {
				size *= d
			}
			total += tensor.PolyActivationFlops(size)
		case OpPolyEval:
			size := 1
			for _, d := range n.OutShape {
				size *= d
			}
			total += int64(size) * 2 * int64(len(n.Coeffs)-1)
		case OpBatchNorm:
			total += 2 * int64(n.OutShape[0]*n.OutShape[1]*n.OutShape[2])
		case OpAdd:
			size := 1
			for _, d := range n.OutShape {
				size *= d
			}
			total += int64(size)
		}
	}
	return total
}

// LayerCounts reports the per-kind operation counts of the circuit (the
// "No. of layers" columns of Table 3).
type LayerCounts struct {
	Conv, Dense, Act, Pool, BN, Add, Concat int
}

// CountLayers tallies the circuit's layers by kind.
func (c *Circuit) CountLayers() LayerCounts {
	var lc LayerCounts
	for _, n := range c.Nodes {
		switch n.Kind {
		case OpConv2D:
			lc.Conv++
		case OpDense:
			lc.Dense++
		case OpActivation:
			lc.Act++
		case OpAvgPool2D, OpGlobalAvgPool2D:
			lc.Pool++
		case OpBatchNorm:
			lc.BN++
		case OpAdd:
			lc.Add++
		case OpConcat:
			lc.Concat++
		}
	}
	return lc
}

// MultiplicativeDepth returns a static upper bound on the ciphertext
// multiplicative depth of the circuit, counting one level per
// scalar/plaintext multiplication stage and two per polynomial activation
// (square + affine). This conservative bound is what a manual implementer
// provisions parameters for before any layout-aware optimization.
func (c *Circuit) MultiplicativeDepth() int {
	depth := make(map[int]int, len(c.Nodes))
	for _, n := range c.Nodes {
		d := 0
		for _, in := range n.Inputs {
			if depth[in.ID] > d {
				d = depth[in.ID]
			}
		}
		switch n.Kind {
		case OpConv2D, OpDense, OpAvgPool2D, OpGlobalAvgPool2D, OpBatchNorm:
			d++
		case OpActivation:
			d += 2
		case OpPolyEval:
			d += len(n.Coeffs) - 1 + 1
		}
		depth[n.ID] = d
	}
	return depth[c.Output.ID]
}
