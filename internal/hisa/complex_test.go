package hisa

import (
	"math/cmplx"
	"testing"
)

// complexTestVector fills every slot with a distinct complex value.
func complexTestVector(slots int) []complex128 {
	m := make([]complex128, slots)
	for i := range m {
		m[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	return m
}

// TestMulScalarC drives every branch of the complex-scalar multiply on the
// real RNS backend: pure-real (plain MulScalar), pure-imaginary (MulByI
// composed with MulScalar — the monomial X^(N/2) route, no scale consumed by
// the i), and the general two-part sum.
func TestMulScalarC(t *testing.T) {
	b := newRNSTestBackend(t, nil)
	m := complexTestVector(b.Slots())
	ct := b.EncryptC(m, 1<<40)
	for _, x := range []complex128{complex(0.25, -0.25), complex(0, 1), complex(2, 0), complex(-1.5, 3)} {
		got := b.DecryptC(b.MulScalarC(ct, x, 1<<20))
		for i := range m {
			want := m[i] * x
			if cmplx.Abs(got[i]-want) > 1e-4 {
				t.Fatalf("x=%v slot %d: got %v want %v", x, i, got[i], want)
			}
		}
	}
}

// TestAddPlainC covers both routes through the complex plaintext addition:
// the constant-vector fast path (closed-form residues added pointwise — no
// FFT, no NTT; this is what every kernel bias site hits) and the generic
// encode path for a non-constant vector. A vector that is constant except in
// one slot must NOT take the fast path.
func TestAddPlainC(t *testing.T) {
	b := newRNSTestBackend(t, nil)
	m := complexTestVector(b.Slots())
	ct := b.EncryptC(m, 1<<40)

	constVec := make([]complex128, b.Slots())
	for i := range constVec {
		constVec[i] = complex(1.25, -0.75)
	}
	got := b.DecryptC(b.AddPlainC(ct, constVec))
	for i := range m {
		want := m[i] + constVec[i]
		if cmplx.Abs(got[i]-want) > 1e-4 {
			t.Fatalf("constant vector slot %d: got %v want %v", i, got[i], want)
		}
	}

	// Near-constant: identical everywhere except the last slot, which forces
	// the generic encode path; the fast path would silently add the wrong
	// value there.
	nearVec := make([]complex128, b.Slots())
	for i := range nearVec {
		nearVec[i] = complex(0.5, 2)
	}
	nearVec[len(nearVec)-1] = complex(-4, 0.125)
	got = b.DecryptC(b.AddPlainC(ct, nearVec))
	for i := range m {
		want := m[i] + nearVec[i]
		if cmplx.Abs(got[i]-want) > 1e-4 {
			t.Fatalf("near-constant vector slot %d: got %v want %v", i, got[i], want)
		}
	}
}

// TestConjugateRNS: the Galois conjugation flips every slot's imaginary
// component — the primitive complex packing stands on.
func TestConjugateRNS(t *testing.T) {
	b := newRNSTestBackend(t, nil)
	m := complexTestVector(b.Slots())
	got := b.DecryptC(b.Conjugate(b.EncryptC(m, 1<<40)))
	for i := range m {
		want := cmplx.Conj(m[i])
		if cmplx.Abs(got[i]-want) > 1e-4 {
			t.Fatalf("slot %d: got %v want conj %v", i, got[i], want)
		}
	}
}
