package hisa

import (
	"math"
	"math/big"
	"testing"
)

// equalRNSCiphertexts compares two RNS ciphertext handles bit-for-bit.
func equalRNSCiphertexts(t *testing.T, b *RNSBackend, name string, got, want Ciphertext) {
	t.Helper()
	g, w := b.ct(got), b.ct(want)
	if g.Lvl != w.Lvl {
		t.Fatalf("%s: level %d != %d", name, g.Lvl, w.Lvl)
	}
	if g.Scale != w.Scale {
		t.Fatalf("%s: scale %g != %g", name, g.Scale, w.Scale)
	}
	for i, pg := range [][][]uint64{g.C0.Coeffs, g.C1.Coeffs} {
		pw := [][][]uint64{w.C0.Coeffs, w.C1.Coeffs}[i]
		if len(pg) != len(pw) {
			t.Fatalf("%s: poly %d row count %d != %d", name, i, len(pg), len(pw))
		}
		for j := range pg {
			for k := range pg[j] {
				if pg[j][k] != pw[j][k] {
					t.Fatalf("%s: poly %d row %d coeff %d: %d != %d",
						name, i, j, k, pg[j][k], pw[j][k])
				}
			}
		}
	}
}

// TestRNSFusedRescaleParity checks that the backend's fused
// RelinearizeRescale is bit-identical to the unfused Rescale-then-
// Relinearize sequence for every divisor class MaxRescale can hand it:
// trivial (1), a single top prime, and a multi-prime product.
func TestRNSFusedRescaleParity(t *testing.T) {
	b := newRNSTestBackend(t, nil)
	slots := b.Slots()
	va, vb := rv(slots, 2, 11), rv(slots, 2, 12)
	cta := b.Encrypt(b.Encode(va, testScale))
	ctb := b.Encrypt(b.Encode(vb, testScale))

	prod := b.MulNoRelin(cta, ctb) // degree 2, scale testScale².

	t.Run("divisor-1", func(t *testing.T) {
		got := b.RelinearizeRescale(prod, big.NewInt(1))
		want := b.Relinearize(prod)
		equalRNSCiphertexts(t, b, "divisor-1", got, want)
	})

	t.Run("single-drop", func(t *testing.T) {
		ub, _ := big.NewFloat(b.Scale(prod) / testScale).Int(nil)
		d := b.MaxRescale(prod, ub)
		if d.Cmp(big.NewInt(1)) == 0 {
			t.Fatal("MaxRescale returned trivial divisor")
		}
		got := b.RelinearizeRescale(prod, d)
		want := b.Relinearize(b.Rescale(prod, d))
		equalRNSCiphertexts(t, b, "single-drop", got, want)

		// The fused result must still decode to the product.
		dec := b.Decode(b.Decrypt(got))
		for i := 0; i < slots; i++ {
			if diff := math.Abs(dec[i] - va[i]*vb[i]); diff > 1e-2 {
				t.Fatalf("slot %d: |%g - %g| = %g", i, dec[i], va[i]*vb[i], diff)
			}
		}
	})

	t.Run("multi-drop", func(t *testing.T) {
		// A bound above the product of the two top primes forces drops=2,
		// exercising the RescaleMany prefix in front of the fused final drop.
		ub := new(big.Int).Lsh(big.NewInt(1), 81)
		d := b.MaxRescale(prod, ub)
		one := big.NewInt(1)
		top := new(big.Int).SetUint64(b.params.Qi(b.LevelOf(prod)))
		if d.Cmp(one) == 0 || d.Cmp(top) == 0 {
			t.Fatalf("MaxRescale(%v) = %v; want a two-prime product", ub, d)
		}
		got := b.RelinearizeRescale(prod, d)
		want := b.Relinearize(b.Rescale(prod, d))
		equalRNSCiphertexts(t, b, "multi-drop", got, want)
	})

	t.Run("degree-1", func(t *testing.T) {
		// Fused on an already-relinearized ciphertext degrades to a rescale.
		flat := b.Relinearize(prod)
		ub, _ := big.NewFloat(b.Scale(flat) / testScale).Int(nil)
		d := b.MaxRescale(flat, ub)
		got := b.RelinearizeRescale(flat, d)
		want := b.Rescale(flat, d)
		equalRNSCiphertexts(t, b, "degree-1", got, want)
	})
}

// TestMeterFusedAccounting checks that the Meter forwards the fused
// capability and counts RelinearizeRescale as its two logical instructions.
func TestMeterFusedAccounting(t *testing.T) {
	inner := newRNSTestBackend(t, nil)
	m := NewMeter(inner, nil)

	fr, ok := AsFusedRescale(m)
	if !ok {
		t.Fatal("AsFusedRescale should discover the capability through a Meter")
	}

	slots := m.Slots()
	cta := m.Encrypt(m.Encode(rv(slots, 2, 21), testScale))
	ctb := m.Encrypt(m.Encode(rv(slots, 2, 22), testScale))
	prod := m.MulNoRelin(cta, ctb)

	ub, _ := big.NewFloat(m.Scale(prod) / testScale).Int(nil)
	d := m.MaxRescale(prod, ub)
	fr.RelinearizeRescale(prod, d)

	c := m.Counts()
	if c.Mul != 1 || c.Relinearize != 1 || c.Rescale != 1 {
		t.Fatalf("after fused drop: mul=%d relin=%d rescale=%d; want 1/1/1",
			c.Mul, c.Relinearize, c.Rescale)
	}

	// A trivial divisor is a pure relinearization: no rescale tally.
	fr.RelinearizeRescale(prod, big.NewInt(1))
	c = m.Counts()
	if c.Relinearize != 2 || c.Rescale != 1 {
		t.Fatalf("after trivial-divisor fuse: relin=%d rescale=%d; want 2/1",
			c.Relinearize, c.Rescale)
	}
}

// TestFreeRecyclesIntoArena checks that Free returns a dead handle's limbs
// to the ring arena without corrupting later results: an op repeated after
// freeing its previous output (whose buffers the arena now hands back) must
// be bit-identical to the pinned first run.
func TestFreeRecyclesIntoArena(t *testing.T) {
	b := newRNSTestBackend(t, []int{1})
	slots := b.Slots()
	ct := b.Encrypt(b.Encode(rv(slots, 2, 31), testScale))

	want := b.RotLeft(ct, 1)
	for i := 0; i < 4; i++ {
		got := b.RotLeft(ct, 1)
		equalRNSCiphertexts(t, b, "rot after Free", got, want)
		b.Free(got)
	}

	// Foreign handles and double frees are ignored.
	b.Free(nil)
	b.Free(42)
	freed := b.RotLeft(ct, 1)
	b.Free(freed)
	b.Free(freed)
}

// TestSimBackendLacksFusedRescale pins the capability gate: backends without
// the fused pass must not be discovered as FusedRescaleBackend, so kernels
// fall back to the unfused order.
func TestSimBackendLacksFusedRescale(t *testing.T) {
	if _, ok := AsFusedRescale(NewSimBackend(SimParams{LogN: 10, LogQ: 240, Seed: 7})); ok {
		t.Fatal("sim backend should not expose FusedRescaleBackend")
	}
	if _, ok := AsFusedRescale(NewRefBackend(512)); ok {
		t.Fatal("ref backend should not expose FusedRescaleBackend")
	}
}
