package hisa

import (
	"testing"

	"chet/internal/ckks"
)

// ctBitsEqual compares two RNS ciphertexts for bit identity.
func ctBitsEqual(a, b Ciphertext) bool {
	ca, cb := a.(*ckks.Ciphertext), b.(*ckks.Ciphertext)
	if ca.Lvl != cb.Lvl || ca.Scale != cb.Scale {
		return false
	}
	for i := range ca.C0.Coeffs {
		for j := range ca.C0.Coeffs[i] {
			if ca.C0.Coeffs[i][j] != cb.C0.Coeffs[i][j] || ca.C1.Coeffs[i][j] != cb.C1.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// TestRotLeftManyMatchesSequential checks that the hoisted batch path on
// the RNS backend is bit-identical to per-amount RotLeft, including the
// zero amount and amounts with no exact key (which decompose into several
// power-of-two steps and take the fallback path).
func TestRotLeftManyMatchesSequential(t *testing.T) {
	b := newRNSTestBackend(t, []int{1, 2, 4, 8, 100})
	slots := b.Slots()
	ct := b.Encrypt(b.Encode(rv(slots, 4, 31), testScale))

	// 13=1+4+8 and 3=1+2 have no exact keys: multi-step power-of-two
	// fallback. 0 and slots are identity rotations; -(slots-8) aliases 8.
	ks := []int{0, 1, 2, 4, 8, 100, 13, 3, slots, -(slots - 8)}
	batch := RotLeftMany(b, ct, ks)
	if len(batch) != len(ks) {
		t.Fatalf("got %d outputs for %d amounts", len(batch), len(ks))
	}
	for i, k := range ks {
		want := b.RotLeft(ct, k)
		if !ctBitsEqual(batch[i], want) {
			t.Fatalf("RotLeftMany k=%d differs from RotLeft", k)
		}
	}
}

// TestRotLeftManyThroughMeter checks that the Meter exposes the batch
// capability transparently: outputs stay bit-identical and the rotation
// tally equals what the equivalent RotLeft sequence would record (primitive
// steps, identity rotations free).
func TestRotLeftManyThroughMeter(t *testing.T) {
	b := newRNSTestBackend(t, []int{1, 2, 8})
	slots := b.Slots()
	// The meter mirrors the backend's own decomposition over its
	// provisioned keys.
	keyed := map[int]bool{1: true, 2: true, 8: true}
	stepsOf := func(x int) int {
		return len(RotationSteps(x, slots, func(k int) bool { return keyed[k] }))
	}
	m := NewMeter(b, stepsOf)
	ct := m.Encrypt(m.Encode(rv(slots, 4, 33), testScale))

	ks := []int{0, 1, 2, 8, 3} // 3 = 1+2: two-step fallback
	batch := RotLeftMany(m, ct, ks)
	for i, k := range ks {
		want := b.RotLeft(ct, k)
		if !ctBitsEqual(batch[i], want) {
			t.Fatalf("metered RotLeftMany k=%d differs from RotLeft", k)
		}
	}
	if got, want := m.Counts().Rotations, 5; got != want {
		// 1, 2, 8 are one step each; 3 costs two; 0 is free.
		t.Fatalf("metered rotations = %d, want %d", got, want)
	}
}

// TestRotLeftManyFallbackBackends checks the helper on backends without the
// batch capability: the sequential fallback must decrypt to the rotated
// vector within each backend's noise tolerance (Sim injects fresh noise per
// op, so we compare against the plaintext, not a second RotLeft call).
func TestRotLeftManyFallbackBackends(t *testing.T) {
	for _, tb := range []struct {
		b   Backend
		tol float64
	}{
		{NewRefBackend(512), 1e-9},
		{NewSimBackend(SimParams{LogN: 10, LogQ: 240, Seed: 9}), 1e-3},
	} {
		b := tb.b
		slots := b.Slots()
		values := rv(slots, 4, 35)
		ct := b.Encrypt(b.Encode(values, testScale))
		ks := []int{0, 1, 7, slots / 2}
		batch := RotLeftMany(b, ct, ks)
		for i, k := range ks {
			got := b.Decode(b.Decrypt(batch[i]))
			for j := 0; j < slots; j++ {
				want := values[(j+k)%slots]
				if d := got[j] - want; d > tb.tol || d < -tb.tol {
					t.Fatalf("%s: RotLeftMany k=%d slot %d: got %g want %g", b.Name(), k, j, got[j], want)
				}
			}
		}
	}
}
