package hisa

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"chet/internal/ckks"
	"chet/internal/ring"
)

func newRNSTestBackend(t testing.TB, rotations []int) *RNSBackend {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     10,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     50,
		LogScale: 40,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	return NewRNSBackend(RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(0xABCDEF),
		Rotations: rotations,
	})
}

// backendsUnderTest returns each backend with a matching slot count and a
// per-backend tolerance for comparing against exact plaintext results.
func backendsUnderTest(t testing.TB) []struct {
	b   Backend
	tol float64
} {
	return []struct {
		b   Backend
		tol float64
	}{
		{NewRefBackend(512), 1e-9},
		{NewSimBackend(SimParams{LogN: 10, LogQ: 240, Seed: 7}), 1e-3},
		{newRNSTestBackend(t, nil), 1e-2},
	}
}

func rv(n int, bound float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * bound
	}
	return v
}

const testScale = float64(1 << 40)

func TestBackendArithmeticConformance(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		t.Run(b.Name(), func(t *testing.T) {
			slots := b.Slots()
			a := rv(slots, 2, 1)
			c := rv(slots, 2, 2)

			cta := b.Encrypt(b.Encode(a, testScale))
			ctc := b.Encrypt(b.Encode(c, testScale))

			check := func(name string, ct Ciphertext, want func(i int) float64, tol float64) {
				t.Helper()
				got := b.Decode(b.Decrypt(ct))
				for i := 0; i < slots; i++ {
					if math.Abs(got[i]-want(i)) > tol {
						t.Fatalf("%s slot %d: got %g want %g", name, i, got[i], want(i))
					}
				}
			}

			check("add", b.Add(cta, ctc), func(i int) float64 { return a[i] + c[i] }, tb.tol)
			check("sub", b.Sub(cta, ctc), func(i int) float64 { return a[i] - c[i] }, tb.tol)
			check("addScalar", b.AddScalar(cta, 1.25), func(i int) float64 { return a[i] + 1.25 }, tb.tol)
			check("subScalar", b.SubScalar(cta, 1.25), func(i int) float64 { return a[i] - 1.25 }, tb.tol)

			pt := b.Encode(c, testScale)
			check("addPlain", b.AddPlain(cta, pt), func(i int) float64 { return a[i] + c[i] }, tb.tol)
			check("subPlain", b.SubPlain(cta, pt), func(i int) float64 { return a[i] - c[i] }, tb.tol)

			// Multiplicative ops change the scale; rescale back down using
			// the HISA protocol before checking.
			rescaled := func(ct Ciphertext) Ciphertext {
				bound := new(big.Int).SetUint64(uint64(b.Scale(ct) / testScale))
				d := b.MaxRescale(ct, bound)
				return b.Rescale(ct, d)
			}

			check("mul", rescaled(b.Mul(cta, ctc)), func(i int) float64 { return a[i] * c[i] }, 10*tb.tol)
			check("mulPlain", rescaled(b.MulPlain(cta, pt)), func(i int) float64 { return a[i] * c[i] }, 10*tb.tol)
			check("mulScalar", rescaled(b.MulScalar(cta, -0.5, testScale)),
				func(i int) float64 { return a[i] * -0.5 }, 10*tb.tol)
		})
	}
}

func TestBackendRotationConformance(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		t.Run(b.Name(), func(t *testing.T) {
			slots := b.Slots()
			a := rv(slots, 2, 3)
			ct := b.Encrypt(b.Encode(a, testScale))
			for _, k := range []int{1, 5, slots / 2, slots - 1} {
				got := b.Decode(b.Decrypt(b.RotLeft(ct, k)))
				for i := 0; i < slots; i++ {
					want := a[(i+k)%slots]
					if math.Abs(got[i]-want) > 10*tb.tol {
						t.Fatalf("rotLeft %d slot %d: got %g want %g", k, i, got[i], want)
					}
				}
				got = b.Decode(b.Decrypt(b.RotRight(ct, k)))
				for i := 0; i < slots; i++ {
					want := a[((i-k)%slots+slots)%slots]
					if math.Abs(got[i]-want) > 10*tb.tol {
						t.Fatalf("rotRight %d slot %d: got %g want %g", k, i, got[i], want)
					}
				}
			}
		})
	}
}

func TestBackendsAgreeOnPolynomialCircuit(t *testing.T) {
	// Evaluate y = (x^2 + 0.5x) rotated by 3, on every backend, and compare
	// to the exact computation.
	eval := func(b Backend, a []float64) []float64 {
		ct := b.Encrypt(b.Encode(a, testScale))
		sq := b.Mul(ct, ct)
		d := b.MaxRescale(sq, new(big.Int).SetUint64(uint64(b.Scale(sq)/testScale)))
		sq = b.Rescale(sq, d)
		// Multiply at full scale, then rescale by the same divisor so the
		// scales of sq and half match exactly.
		half := b.MulScalar(ct, 0.5, testScale)
		half = b.Rescale(half, d)
		sum := b.Add(sq, half)
		rot := b.RotLeft(sum, 3)
		return b.Decode(b.Decrypt(rot))
	}
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		slots := b.Slots()
		a := rv(slots, 1, 4)
		got := eval(b, a)
		for i := 0; i < slots; i++ {
			x := a[(i+3)%slots]
			want := x*x + 0.5*x
			if math.Abs(got[i]-want) > 20*tb.tol {
				t.Fatalf("%s slot %d: got %g want %g", b.Name(), i, got[i], want)
			}
		}
	}
}

func TestRotationSteps(t *testing.T) {
	all := func(int) bool { return true }
	none := func(int) bool { return false }

	if got := RotationSteps(0, 64, all); got != nil {
		t.Fatalf("rotation by 0 should yield no steps, got %v", got)
	}
	if got := RotationSteps(6, 64, all); len(got) != 1 || got[0] != 6 {
		t.Fatalf("exact key: want [6], got %v", got)
	}
	got := RotationSteps(6, 64, none)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("power-of-two decomposition of 6: want [2 4], got %v", got)
	}
	// Negative rotations normalize mod slots.
	got = RotationSteps(-1, 64, none)
	sum := 0
	for _, s := range got {
		sum += s
	}
	if sum != 63 {
		t.Fatalf("decomposition of -1 mod 64 should sum to 63, got %v", got)
	}
	// nil availability means every key exists.
	if got := RotationSteps(13, 64, nil); len(got) != 1 || got[0] != 13 {
		t.Fatalf("nil availability: want [13], got %v", got)
	}
}

func TestRNSBackendPowerOfTwoFallback(t *testing.T) {
	// Only key "1" provisioned: rotation by 5 must still be correct via
	// power-of-two decomposition (keys 1 and 4)... but 4 is not provisioned
	// either, so provision {1, 4} and rotate by 5.
	b := newRNSTestBackend(t, []int{1, 4})
	slots := b.Slots()
	a := rv(slots, 2, 5)
	ct := b.Encrypt(b.Encode(a, testScale))
	got := b.Decode(b.Decrypt(b.RotLeft(ct, 5)))
	for i := 0; i < slots; i++ {
		if math.Abs(got[i]-a[(i+5)%slots]) > 1e-2 {
			t.Fatalf("fallback rotation slot %d: got %g want %g", i, got[i], a[(i+5)%slots])
		}
	}
	if b.ProvisionedRotations() != 2 {
		t.Fatalf("provisioned = %d, want 2", b.ProvisionedRotations())
	}
}

func TestSimModulusExhaustionPanics(t *testing.T) {
	b := NewSimBackend(SimParams{LogN: 8, LogQ: 90, Seed: 1})
	a := rv(b.Slots(), 1, 6)
	ct := b.Encrypt(b.Encode(a, testScale))
	defer func() {
		if recover() == nil {
			t.Fatal("expected modulus-exhaustion panic")
		}
	}()
	// Each squaring doubles log(scale); 90 bits cannot absorb two rescales
	// at scale 2^40 plus the initial 40-bit message.
	for i := 0; i < 3; i++ {
		ct = b.Mul(ct, ct)
		d := b.MaxRescale(ct, new(big.Int).SetUint64(1<<40))
		ct = b.Rescale(ct, d)
	}
}

func TestSimNoiseGrowsWithDepth(t *testing.T) {
	b := NewSimBackend(SimParams{LogN: 12, LogQ: 600, Seed: 2})
	a := rv(b.Slots(), 1, 7)
	ct := b.Encrypt(b.Encode(a, testScale))
	prev := b.NoiseOf(ct)
	for i := 0; i < 3; i++ {
		ct = b.Mul(ct, ct)
		d := b.MaxRescale(ct, new(big.Int).SetUint64(1<<40))
		ct = b.Rescale(ct, d)
		if n := b.NoiseOf(ct); n <= prev {
			t.Fatalf("depth %d: noise %g did not grow from %g", i+1, n, prev)
		} else {
			prev = n
		}
	}
}

func TestRNSMaxRescaleMatchesChain(t *testing.T) {
	b := newRNSTestBackend(t, nil)
	a := rv(b.Slots(), 1, 8)
	ct := b.Encrypt(b.Encode(a, testScale))

	// ub below the top prime: no rescale possible.
	if d := b.MaxRescale(ct, big.NewInt(1<<20)); d.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("MaxRescale below top prime: got %v, want 1", d)
	}

	// ub above the top prime: exactly the top prime.
	top := b.Params().Qi(b.Params().MaxLevel())
	d := b.MaxRescale(ct, new(big.Int).SetUint64(1<<45))
	if d.Uint64() != top {
		t.Fatalf("MaxRescale: got %v, want top prime %d", d, top)
	}

	// Rescaling by it drops exactly one level.
	out := b.Rescale(ct, d)
	if lvl := b.LevelOf(out); lvl != b.Params().MaxLevel()-1 {
		t.Fatalf("level after rescale = %d", lvl)
	}
	// Input is untouched (functional semantics).
	if lvl := b.LevelOf(ct); lvl != b.Params().MaxLevel() {
		t.Fatal("Rescale mutated its input")
	}
}

func TestMeterCounts(t *testing.T) {
	inner := NewRefBackend(64)
	m := NewMeter(inner, func(x int) int {
		return len(RotationSteps(x, 64, func(int) bool { return false }))
	})

	a := rv(64, 1, 9)
	ct := m.Encrypt(m.Encode(a, testScale))
	ct2 := m.Add(ct, ct)
	ct2 = m.Mul(ct2, ct)
	ct2 = m.RotLeft(ct2, 6) // decomposes into 2 power-of-two steps
	ct2 = m.RotLeft(ct2, 0) // free
	d := m.MaxRescale(ct2, big.NewInt(1<<40))
	ct2 = m.Rescale(ct2, d)
	m.Decode(m.Decrypt(ct2))

	c := m.Counts()
	if c.Encrypt != 1 || c.Decrypt != 1 || c.Encode != 1 || c.Decode != 1 {
		t.Fatalf("IO counts wrong: %+v", c)
	}
	if c.Add != 1 || c.Mul != 1 {
		t.Fatalf("arith counts wrong: %+v", c)
	}
	if c.Rotations != 2 {
		t.Fatalf("rotation steps = %d, want 2", c.Rotations)
	}
	if c.Rescale != 1 || c.MaxRescaleQueries != 1 {
		t.Fatalf("rescale counts wrong: %+v", c)
	}
	if c.Total() != 7 {
		t.Fatalf("total = %d, want 7", c.Total())
	}
}

func TestRefBackendRejectsForeignHandles(t *testing.T) {
	b := NewRefBackend(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign ciphertext")
		}
	}()
	b.Add("not a ciphertext", "also not")
}
