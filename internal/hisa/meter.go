package hisa

import (
	"math/big"
	"sync/atomic"
)

// OpCounts is a point-in-time tally of HISA instruction executions (a
// snapshot returned by Meter.Counts). Rotations are counted as executed
// primitive steps by the wrapped backend's own decomposition, so a backend
// without the exact key reports the higher power-of-two step count.
type OpCounts struct {
	Encrypt, Decrypt           int
	Encode, Decode             int
	Rotations                  int
	Add, AddPlain, AddScalar   int
	Sub, SubPlain, SubScalar   int
	Mul, MulPlain, MulScalar   int
	Rescale, MaxRescaleQueries int
	// Relinearize counts the key-switches performed to bring
	// ciphertext-ciphertext products back to degree 1 — inside Mul, as
	// explicit Relinearize calls, and inside fused RelinearizeRescale calls
	// (which also bump Rescale: the fused op is one pass but two logical
	// instructions). It is tallied separately so the scale-management pass's
	// op accounting (and /metrics) can report relinearizations as their own
	// series.
	Relinearize int
	// Conjugate counts slot-conjugation automorphisms (complex packing).
	Conjugate int
	// Bootstrap counts ciphertext refreshes. The pipeline's internal
	// rotations, multiplications, and rescales run below the HISA layer, so
	// they are NOT unfolded into the other counters — one bootstrap is one
	// (very expensive) instruction; boot.Spec.Ops itemizes its interior.
	Bootstrap int
}

// Total returns the total number of homomorphic operations (excluding
// encode/decode and MaxRescale queries, which are metadata-only; and
// excluding Relinearize, which is already counted inside Mul).
func (o OpCounts) Total() int {
	return o.Encrypt + o.Decrypt + o.Rotations +
		o.Add + o.AddPlain + o.AddScalar +
		o.Sub + o.SubPlain + o.SubScalar +
		o.Mul + o.MulPlain + o.MulScalar + o.Rescale + o.Conjugate + o.Bootstrap
}

// Meter wraps a Backend and counts the instructions that flow through it.
// It implements Backend, so kernels and the compiler are oblivious to it.
// Counters are atomic, so a Meter may wrap a backend that executes ops from
// many worker goroutines concurrently; Counts returns a snapshot.
type Meter struct {
	Inner Backend

	encrypt, decrypt           atomic.Int64
	encode, decode             atomic.Int64
	rotations                  atomic.Int64
	add, addPlain, addScalar   atomic.Int64
	sub, subPlain, subScalar   atomic.Int64
	mul, mulPlain, mulScalar   atomic.Int64
	rescale, maxRescaleQueries atomic.Int64
	relinearize, conjugate     atomic.Int64
	bootstrap                  atomic.Int64

	// rotationSteps mirrors the step decomposition of the inner backend so
	// multi-step rotations are counted faithfully.
	rotationStepsOf func(x int) int
}

// NewMeter wraps inner. stepsOf may be nil, in which case each RotLeft or
// RotRight call counts as one rotation.
func NewMeter(inner Backend, stepsOf func(x int) int) *Meter {
	return &Meter{Inner: inner, rotationStepsOf: stepsOf}
}

// Counts returns a consistent-enough snapshot of the tallies: each field is
// read atomically, so concurrent mutation never corrupts a value (reading
// while ops are in flight may observe some ops and not others).
func (m *Meter) Counts() OpCounts {
	return OpCounts{
		Encrypt:           int(m.encrypt.Load()),
		Decrypt:           int(m.decrypt.Load()),
		Encode:            int(m.encode.Load()),
		Decode:            int(m.decode.Load()),
		Rotations:         int(m.rotations.Load()),
		Add:               int(m.add.Load()),
		AddPlain:          int(m.addPlain.Load()),
		AddScalar:         int(m.addScalar.Load()),
		Sub:               int(m.sub.Load()),
		SubPlain:          int(m.subPlain.Load()),
		SubScalar:         int(m.subScalar.Load()),
		Mul:               int(m.mul.Load()),
		MulPlain:          int(m.mulPlain.Load()),
		MulScalar:         int(m.mulScalar.Load()),
		Rescale:           int(m.rescale.Load()),
		MaxRescaleQueries: int(m.maxRescaleQueries.Load()),
		Relinearize:       int(m.relinearize.Load()),
		Conjugate:         int(m.conjugate.Load()),
		Bootstrap:         int(m.bootstrap.Load()),
	}
}

func (m *Meter) Name() string { return m.Inner.Name() + "+meter" }
func (m *Meter) Slots() int   { return m.Inner.Slots() }

// Unwrap exposes the wrapped backend for capability discovery
// (hisa.FindCapability).
func (m *Meter) Unwrap() Backend { return m.Inner }

func (m *Meter) Encrypt(p Plaintext) Ciphertext {
	m.encrypt.Add(1)
	return m.Inner.Encrypt(p)
}

func (m *Meter) Decrypt(c Ciphertext) Plaintext {
	m.decrypt.Add(1)
	return m.Inner.Decrypt(c)
}

func (m *Meter) Copy(c Ciphertext) Ciphertext { return m.Inner.Copy(c) }
func (m *Meter) Free(h any)                   { m.Inner.Free(h) }

func (m *Meter) Encode(v []float64, f float64) Plaintext {
	m.encode.Add(1)
	return m.Inner.Encode(v, f)
}

func (m *Meter) Decode(p Plaintext) []float64 {
	m.decode.Add(1)
	return m.Inner.Decode(p)
}

func (m *Meter) countRotation(x int) {
	if x%m.Slots() == 0 {
		return
	}
	if m.rotationStepsOf != nil {
		m.rotations.Add(int64(m.rotationStepsOf(x)))
	} else {
		m.rotations.Add(1)
	}
}

func (m *Meter) RotLeft(c Ciphertext, x int) Ciphertext {
	m.countRotation(x)
	return m.Inner.RotLeft(c, x)
}

func (m *Meter) RotRight(c Ciphertext, x int) Ciphertext {
	m.countRotation(-x)
	return m.Inner.RotRight(c, x)
}

// RotLeftMany counts each amount exactly as the equivalent RotLeft calls
// would (per executed primitive step) and forwards the batch, so metered
// and unmetered backends expose the same batch capability and tallies are
// independent of whether a kernel batched its rotations.
func (m *Meter) RotLeftMany(c Ciphertext, ks []int) []Ciphertext {
	for _, x := range ks {
		m.countRotation(x)
	}
	return RotLeftMany(m.Inner, c, ks)
}

func (m *Meter) Add(c, c2 Ciphertext) Ciphertext {
	m.add.Add(1)
	return m.Inner.Add(c, c2)
}

func (m *Meter) AddPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.addPlain.Add(1)
	return m.Inner.AddPlain(c, p)
}

func (m *Meter) AddScalar(c Ciphertext, x float64) Ciphertext {
	m.addScalar.Add(1)
	return m.Inner.AddScalar(c, x)
}

func (m *Meter) Sub(c, c2 Ciphertext) Ciphertext {
	m.sub.Add(1)
	return m.Inner.Sub(c, c2)
}

func (m *Meter) SubPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.subPlain.Add(1)
	return m.Inner.SubPlain(c, p)
}

func (m *Meter) SubScalar(c Ciphertext, x float64) Ciphertext {
	m.subScalar.Add(1)
	return m.Inner.SubScalar(c, x)
}

func (m *Meter) Mul(c, c2 Ciphertext) Ciphertext {
	m.mul.Add(1)
	m.relinearize.Add(1)
	return m.Inner.Mul(c, c2)
}

// lazyInner asserts the wrapped backend's deferred-relinearization
// capability; LazyRelinCapable gates callers before they reach it.
func (m *Meter) lazyInner() LazyRelinBackend {
	lb, ok := m.Inner.(LazyRelinBackend)
	if !ok {
		panic("hisa: backend " + m.Inner.Name() + " does not support deferred relinearization")
	}
	return lb
}

func (m *Meter) LazyRelinCapable() bool {
	lb, ok := m.Inner.(LazyRelinBackend)
	return ok && lb.LazyRelinCapable()
}

func (m *Meter) MulNoRelin(c, c2 Ciphertext) Ciphertext {
	m.mul.Add(1)
	return m.lazyInner().MulNoRelin(c, c2)
}

func (m *Meter) Relinearize(c Ciphertext) Ciphertext {
	m.relinearize.Add(1)
	return m.lazyInner().Relinearize(c)
}

// FusedRescaleCapable forwards the fused rescale-into-key-switch capability
// (gated on the inner backend, like LazyRelinCapable).
func (m *Meter) FusedRescaleCapable() bool {
	fb, ok := m.Inner.(FusedRescaleBackend)
	return ok && fb.FusedRescaleCapable()
}

// RelinearizeRescale counts the fused op as its two logical instructions —
// one relinearization, plus one rescale when the divisor is non-trivial —
// so tallies are independent of whether a kernel took the fused path.
func (m *Meter) RelinearizeRescale(c Ciphertext, x *big.Int) Ciphertext {
	fb, ok := m.Inner.(FusedRescaleBackend)
	if !ok {
		panic("hisa: backend " + m.Inner.Name() + " does not support fused rescale")
	}
	m.relinearize.Add(1)
	if x.Cmp(big.NewInt(1)) != 0 {
		m.rescale.Add(1)
	}
	return fb.RelinearizeRescale(c, x)
}

func (m *Meter) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.mulPlain.Add(1)
	return m.Inner.MulPlain(c, p)
}

func (m *Meter) MulScalar(c Ciphertext, x float64, f float64) Ciphertext {
	m.mulScalar.Add(1)
	return m.Inner.MulScalar(c, x, f)
}

func (m *Meter) Rescale(c Ciphertext, x *big.Int) Ciphertext {
	if x.Cmp(big.NewInt(1)) != 0 {
		m.rescale.Add(1)
	}
	return m.Inner.Rescale(c, x)
}

func (m *Meter) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	m.maxRescaleQueries.Add(1)
	return m.Inner.MaxRescale(c, ub)
}

func (m *Meter) Scale(c Ciphertext) float64 { return m.Inner.Scale(c) }

// bootInner asserts the wrapped backend's bootstrap capability;
// BootstrapCapable gates callers before they reach it.
func (m *Meter) bootInner() BootstrapBackend {
	bb, ok := m.Inner.(BootstrapBackend)
	if !ok {
		panic("hisa: backend " + m.Inner.Name() + " does not support bootstrapping")
	}
	return bb
}

func (m *Meter) BootstrapCapable() bool {
	bb, ok := m.Inner.(BootstrapBackend)
	return ok && bb.BootstrapCapable()
}

func (m *Meter) Bootstrap(c Ciphertext) Ciphertext {
	m.bootstrap.Add(1)
	return m.bootInner().Bootstrap(c)
}

// BudgetOf, FreshBudget, and DropToFresh are metadata (level bookkeeping,
// not homomorphic work), so they forward uncounted.
func (m *Meter) BudgetOf(c Ciphertext) int { return m.bootInner().BudgetOf(c) }

func (m *Meter) FreshBudget() int { return m.bootInner().FreshBudget() }

func (m *Meter) DropToFresh(c Ciphertext) Ciphertext { return m.bootInner().DropToFresh(c) }

// conjInner asserts the wrapped backend's complex capability. The Meter
// forwards ConjugateBackend unconditionally (like RotLeftMany) so metered
// and unmetered backends expose the same capability surface; calling a
// complex op on a backend without it panics with a clear message.
func (m *Meter) conjInner() ConjugateBackend {
	cb, ok := m.Inner.(ConjugateBackend)
	if !ok {
		panic("hisa: backend " + m.Inner.Name() + " does not support complex slot operations")
	}
	return cb
}

func (m *Meter) Conjugate(c Ciphertext) Ciphertext {
	m.conjugate.Add(1)
	return m.conjInner().Conjugate(c)
}

func (m *Meter) EncryptC(v []complex128, f float64) Ciphertext {
	m.encrypt.Add(1)
	return m.conjInner().EncryptC(v, f)
}

func (m *Meter) DecryptC(c Ciphertext) []complex128 {
	m.decrypt.Add(1)
	return m.conjInner().DecryptC(c)
}

func (m *Meter) AddPlainC(c Ciphertext, v []complex128) Ciphertext {
	m.addPlain.Add(1)
	return m.conjInner().AddPlainC(c, v)
}

func (m *Meter) MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext {
	m.mulScalar.Add(1)
	return m.conjInner().MulScalarC(c, x, f)
}
