package hisa

import "math/big"

// OpCounts tallies HISA instruction executions. Rotations are counted as
// executed primitive steps by the wrapped backend's own decomposition, so a
// backend without the exact key reports the higher power-of-two step count.
type OpCounts struct {
	Encrypt, Decrypt           int
	Encode, Decode             int
	Rotations                  int
	Add, AddPlain, AddScalar   int
	Sub, SubPlain, SubScalar   int
	Mul, MulPlain, MulScalar   int
	Rescale, MaxRescaleQueries int
}

// Total returns the total number of homomorphic operations (excluding
// encode/decode and MaxRescale queries, which are metadata-only).
func (o OpCounts) Total() int {
	return o.Encrypt + o.Decrypt + o.Rotations +
		o.Add + o.AddPlain + o.AddScalar +
		o.Sub + o.SubPlain + o.SubScalar +
		o.Mul + o.MulPlain + o.MulScalar + o.Rescale
}

// Meter wraps a Backend and counts the instructions that flow through it.
// It implements Backend, so kernels and the compiler are oblivious to it.
type Meter struct {
	Inner  Backend
	Counts OpCounts

	// rotationSteps mirrors the step decomposition of the inner backend so
	// multi-step rotations are counted faithfully.
	rotationStepsOf func(x int) int
}

// NewMeter wraps inner. stepsOf may be nil, in which case each RotLeft or
// RotRight call counts as one rotation.
func NewMeter(inner Backend, stepsOf func(x int) int) *Meter {
	return &Meter{Inner: inner, rotationStepsOf: stepsOf}
}

func (m *Meter) Name() string { return m.Inner.Name() + "+meter" }
func (m *Meter) Slots() int   { return m.Inner.Slots() }

func (m *Meter) Encrypt(p Plaintext) Ciphertext {
	m.Counts.Encrypt++
	return m.Inner.Encrypt(p)
}

func (m *Meter) Decrypt(c Ciphertext) Plaintext {
	m.Counts.Decrypt++
	return m.Inner.Decrypt(c)
}

func (m *Meter) Copy(c Ciphertext) Ciphertext { return m.Inner.Copy(c) }
func (m *Meter) Free(h any)                   { m.Inner.Free(h) }

func (m *Meter) Encode(v []float64, f float64) Plaintext {
	m.Counts.Encode++
	return m.Inner.Encode(v, f)
}

func (m *Meter) Decode(p Plaintext) []float64 {
	m.Counts.Decode++
	return m.Inner.Decode(p)
}

func (m *Meter) countRotation(x int) {
	if x%m.Slots() == 0 {
		return
	}
	if m.rotationStepsOf != nil {
		m.Counts.Rotations += m.rotationStepsOf(x)
	} else {
		m.Counts.Rotations++
	}
}

func (m *Meter) RotLeft(c Ciphertext, x int) Ciphertext {
	m.countRotation(x)
	return m.Inner.RotLeft(c, x)
}

func (m *Meter) RotRight(c Ciphertext, x int) Ciphertext {
	m.countRotation(-x)
	return m.Inner.RotRight(c, x)
}

func (m *Meter) Add(c, c2 Ciphertext) Ciphertext {
	m.Counts.Add++
	return m.Inner.Add(c, c2)
}

func (m *Meter) AddPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.Counts.AddPlain++
	return m.Inner.AddPlain(c, p)
}

func (m *Meter) AddScalar(c Ciphertext, x float64) Ciphertext {
	m.Counts.AddScalar++
	return m.Inner.AddScalar(c, x)
}

func (m *Meter) Sub(c, c2 Ciphertext) Ciphertext {
	m.Counts.Sub++
	return m.Inner.Sub(c, c2)
}

func (m *Meter) SubPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.Counts.SubPlain++
	return m.Inner.SubPlain(c, p)
}

func (m *Meter) SubScalar(c Ciphertext, x float64) Ciphertext {
	m.Counts.SubScalar++
	return m.Inner.SubScalar(c, x)
}

func (m *Meter) Mul(c, c2 Ciphertext) Ciphertext {
	m.Counts.Mul++
	return m.Inner.Mul(c, c2)
}

func (m *Meter) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	m.Counts.MulPlain++
	return m.Inner.MulPlain(c, p)
}

func (m *Meter) MulScalar(c Ciphertext, x float64, f float64) Ciphertext {
	m.Counts.MulScalar++
	return m.Inner.MulScalar(c, x, f)
}

func (m *Meter) Rescale(c Ciphertext, x *big.Int) Ciphertext {
	if x.Cmp(big.NewInt(1)) != 0 {
		m.Counts.Rescale++
	}
	return m.Inner.Rescale(c, x)
}

func (m *Meter) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	m.Counts.MaxRescaleQueries++
	return m.Inner.MaxRescale(c, ub)
}

func (m *Meter) Scale(c Ciphertext) float64 { return m.Inner.Scale(c) }
