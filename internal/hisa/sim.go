package hisa

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"chet/internal/ring"
)

// SimParams configures the HEAAN-style CKKS mock backend.
type SimParams struct {
	LogN int // ring degree 2^LogN; slots are N/2
	LogQ int // total ciphertext modulus bits (power-of-two modulus)
	// Rotations optionally restricts single-step rotations to this set;
	// nil means every rotation has a key (the rotation-keys pass decides).
	Rotations map[int]bool
	// Seed makes the injected approximation noise reproducible.
	Seed uint64
	// NoNoise suppresses noise injection at decryption while still tracking
	// the noise estimate; used by the profile-guided scale search, which
	// checks the deterministic value plus a 6-sigma bound instead of
	// sampling.
	NoNoise bool
	// Bootstrap enables the mock bootstrap capability; nil leaves the
	// backend incapable (AsBootstrap reports false).
	Bootstrap *SimBootstrap
}

// SimBootstrap configures the mock bootstrap: the modulus-budget reset and
// approximation noise of a real CKKS bootstrap, without the lattice
// pipeline. Level accounting mirrors the RNS chain layout so the compiler's
// placement model transfers: BudgetOf counts how many PrimeBits rescales fit
// above the Q0Bits base.
type SimBootstrap struct {
	// FreshLogQ is the modulus budget (bits) a bootstrapped ciphertext is
	// refreshed to; 0 selects the full LogQ.
	FreshLogQ float64
	// Noise is the per-slot message-space error std one bootstrap adds (the
	// real pipeline's EvalMod residual); 0 selects 1e-4, the measured error
	// of internal/boot's default spec.
	Noise float64
	// PrimeBits and Q0Bits lay out the mock chain for level accounting;
	// zeros select the boot package defaults (40 and 49).
	PrimeBits int
	Q0Bits    int
}

// withDefaults fills zero fields with the boot-package defaults.
func (s SimBootstrap) withDefaults(logQ int) SimBootstrap {
	if s.FreshLogQ == 0 {
		s.FreshLogQ = float64(logQ)
	}
	if s.Noise == 0 {
		s.Noise = 1e-4
	}
	if s.PrimeBits == 0 {
		s.PrimeBits = 40
	}
	if s.Q0Bits == 0 {
		s.Q0Bits = 49
	}
	return s
}

// SimBackend realizes the CKKS scheme of HEAAN v1.0 as a high-fidelity mock:
// slot values are computed exactly while scale, power-of-two modulus
// consumption, and approximation noise are tracked with the scheme's real
// bookkeeping rules. Decryption injects the accumulated Gaussian noise, so
// precision experiments (and CHET's profile-guided scale selection) observe
// CKKS-like behaviour. See DESIGN.md for the substitution rationale.
type SimBackend struct {
	params SimParams
	slots  int

	// prngMu serializes draws from the stateful noise PRNG (Decrypt is the
	// only operation that samples); everything else is functional, making
	// the backend safe for concurrent op execution.
	prngMu sync.Mutex
	prng   ring.PRNG

	// sigma is the error-distribution parameter of the mimicked scheme.
	sigma float64
}

// NewSimBackend creates the mock HEAAN backend.
func NewSimBackend(params SimParams) *SimBackend {
	if params.LogN < 2 || params.LogN > 17 {
		panic(fmt.Sprintf("hisa: sim LogN %d out of range", params.LogN))
	}
	if params.LogQ <= 0 {
		panic("hisa: sim LogQ must be positive")
	}
	seed := params.Seed
	if seed == 0 {
		seed = 0x5EED
	}
	if params.Bootstrap != nil {
		bs := params.Bootstrap.withDefaults(params.LogQ)
		if bs.FreshLogQ > float64(params.LogQ) {
			panic(fmt.Sprintf("hisa: sim bootstrap FreshLogQ %.0f exceeds LogQ %d", bs.FreshLogQ, params.LogQ))
		}
		params.Bootstrap = &bs
	}
	return &SimBackend{
		params: params,
		slots:  1 << uint(params.LogN-1),
		prng:   ring.NewTestPRNG(seed),
		sigma:  ring.DefaultSigma,
	}
}

type simCT struct {
	vals  []float64
	ivals []float64 // imaginary slot components; nil when purely real
	scale float64
	logQ  float64   // remaining modulus bits
	noise []float64 // per-slot approximation noise (std, message units)
}

// mag returns the slot magnitude |vals[i] + ivals[i]*i|. Purely real
// ciphertexts take the math.Abs path so pre-complex behaviour (including the
// exact floating-point results of the noise model) is preserved bit-for-bit.
func (c *simCT) mag(i int) float64 {
	if c.ivals == nil {
		return math.Abs(c.vals[i])
	}
	return math.Hypot(c.vals[i], c.ivals[i])
}

// hypotInto sets dst[i] = hypot(dst[i], x[i]).
func hypotInto(dst, x []float64) {
	for i := range dst {
		dst[i] = math.Hypot(dst[i], x[i])
	}
}

// hypotConst sets dst[i] = hypot(dst[i], c).
func hypotConst(dst []float64, c float64) {
	for i := range dst {
		dst[i] = math.Hypot(dst[i], c)
	}
}

func constVec(n int, c float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = c
	}
	return v
}

type simPT struct {
	vals  []float64
	ivals []float64
	scale float64
}

func (b *SimBackend) Name() string { return "ckks-sim" }
func (b *SimBackend) Slots() int   { return b.slots }

// LogQ returns the configured total modulus bits.
func (b *SimBackend) LogQ() int { return b.params.LogQ }

func (b *SimBackend) n() float64 { return float64(int(1) << uint(b.params.LogN)) }

// encodingNoise is the slot-domain std of the rounding error introduced by
// encoding at scale f.
func (b *SimBackend) encodingNoise(f float64) float64 {
	return math.Sqrt(b.n()) / (2 * f)
}

// freshNoise is the slot-domain std of fresh encryption noise at scale f.
func (b *SimBackend) freshNoise(f float64) float64 {
	return b.sigma * math.Sqrt(2*b.n()) / f
}

func (b *SimBackend) ct(c Ciphertext) *simCT {
	v, ok := c.(*simCT)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign ciphertext %T passed to sim backend", c))
	}
	return v
}

func (b *SimBackend) pt(p Plaintext) *simPT {
	v, ok := p.(*simPT)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign plaintext %T passed to sim backend", p))
	}
	return v
}

// checkCapacity panics if the scaled message no longer fits the remaining
// modulus — the "corrupted and unrecoverable" overflow the paper's parameter
// selection exists to prevent.
func (b *SimBackend) checkCapacity(c *simCT) {
	mag := 1.0
	for i := range c.vals {
		if m := c.mag(i) + 6*c.noise[i]; m > mag {
			mag = m
		}
	}
	need := math.Log2(c.scale) + math.Log2(mag+1) + 1
	if need > c.logQ {
		panic(fmt.Sprintf(
			"hisa: ckks-sim modulus exhausted: message needs %.1f bits but only %.1f remain (scale 2^%.1f); increase Q",
			need, c.logQ, math.Log2(c.scale)))
	}
}

func (b *SimBackend) Encode(m []float64, f float64) Plaintext {
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	copy(vals, m)
	return &simPT{vals: vals, scale: f}
}

func (b *SimBackend) Decode(p Plaintext) []float64 {
	return append([]float64(nil), b.pt(p).vals...)
}

func (b *SimBackend) Encrypt(p Plaintext) Ciphertext {
	pp := b.pt(p)
	c := &simCT{
		vals:  append([]float64(nil), pp.vals...),
		scale: pp.scale,
		logQ:  float64(b.params.LogQ),
		noise: constVec(b.slots, b.freshNoise(pp.scale)+b.encodingNoise(pp.scale)),
	}
	b.checkCapacity(c)
	return c
}

// Decrypt injects the accumulated approximation noise into the message, the
// observable effect of CKKS's approximate arithmetic.
func (b *SimBackend) Decrypt(c Ciphertext) Plaintext {
	cc := b.ct(c)
	vals := make([]float64, len(cc.vals))
	if b.params.NoNoise {
		copy(vals, cc.vals)
		return &simPT{vals: vals, scale: cc.scale}
	}
	b.prngMu.Lock()
	defer b.prngMu.Unlock()
	for i, v := range cc.vals {
		vals[i] = v + b.gauss()*cc.noise[i]
	}
	return &simPT{vals: vals, scale: cc.scale}
}

// gauss returns a standard normal sample.
func (b *SimBackend) gauss() float64 {
	for {
		u1 := float64(b.prng.Uint64()>>11) / (1 << 53)
		u2 := float64(b.prng.Uint64()>>11) / (1 << 53)
		if u1 == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

func (b *SimBackend) Copy(c Ciphertext) Ciphertext {
	cc := b.ct(c)
	out := *cc
	out.vals = append([]float64(nil), cc.vals...)
	out.ivals = imOrNil(cc.ivals)
	out.noise = append([]float64(nil), cc.noise...)
	return &out
}

func (b *SimBackend) Free(any) {}

// keySwitchNoise is the slot-domain noise added by one key-switching
// operation (rotation or relinearization) at the ciphertext's scale.
func (b *SimBackend) keySwitchNoise(scale float64) float64 {
	return b.sigma * math.Sqrt(2*b.n()) / scale
}

func (b *SimBackend) RotLeft(c Ciphertext, x int) Ciphertext {
	cc := b.ct(c)
	n := b.slots
	x = ((x % n) + n) % n
	steps := RotationSteps(x, n, b.rotationAvailable())
	vals := append([]float64(nil), cc.vals...)
	ivals := imOrNil(cc.ivals)
	noise := append([]float64(nil), cc.noise...)
	if x != 0 {
		rotV := make([]float64, n)
		rotN := make([]float64, n)
		for i := 0; i < n; i++ {
			rotV[i] = vals[(i+x)%n]
			rotN[i] = noise[(i+x)%n]
		}
		vals, noise = rotV, rotN
		if ivals != nil {
			rotI := make([]float64, n)
			for i := 0; i < n; i++ {
				rotI[i] = cc.ivals[(i+x)%n]
			}
			ivals = rotI
		}
	}
	for range steps {
		hypotConst(noise, b.keySwitchNoise(cc.scale))
	}
	return &simCT{vals: vals, ivals: ivals, scale: cc.scale, logQ: cc.logQ, noise: noise}
}

func (b *SimBackend) rotationAvailable() func(int) bool {
	if b.params.Rotations == nil {
		return nil
	}
	return func(k int) bool { return b.params.Rotations[k] }
}

func (b *SimBackend) RotRight(c Ciphertext, x int) Ciphertext { return b.RotLeft(c, -x) }

func (b *SimBackend) requireSameScale(s1, s2 float64, op string) {
	if math.Abs(s1-s2) > 1e-6*math.Max(s1, s2) {
		panic(fmt.Sprintf("hisa: scale mismatch in %s: %g vs %g", op, s1, s2))
	}
}

// zipIm combines the optional imaginary components of two operands, staying
// nil when both are purely real.
func zipIm(xi, yi []float64, n int, op func(a, b float64) float64) []float64 {
	if xi == nil && yi == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = op(imAt(xi, i), imAt(yi, i))
	}
	return out
}

func (b *SimBackend) Add(c, c2 Ciphertext) Ciphertext {
	x, y := b.ct(c), b.ct(c2)
	b.requireSameScale(x.scale, y.scale, "add")
	vals := make([]float64, b.slots)
	noise := make([]float64, b.slots)
	for i := range vals {
		vals[i] = x.vals[i] + y.vals[i]
		noise[i] = math.Hypot(x.noise[i], y.noise[i])
	}
	ivals := zipIm(x.ivals, y.ivals, b.slots, func(a, bb float64) float64 { return a + bb })
	return &simCT{vals: vals, ivals: ivals, scale: x.scale, logQ: math.Min(x.logQ, y.logQ), noise: noise}
}

func (b *SimBackend) Sub(c, c2 Ciphertext) Ciphertext {
	x, y := b.ct(c), b.ct(c2)
	b.requireSameScale(x.scale, y.scale, "sub")
	vals := make([]float64, b.slots)
	noise := make([]float64, b.slots)
	for i := range vals {
		vals[i] = x.vals[i] - y.vals[i]
		noise[i] = math.Hypot(x.noise[i], y.noise[i])
	}
	ivals := zipIm(x.ivals, y.ivals, b.slots, func(a, bb float64) float64 { return a - bb })
	return &simCT{vals: vals, ivals: ivals, scale: x.scale, logQ: math.Min(x.logQ, y.logQ), noise: noise}
}

func (b *SimBackend) AddPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	b.requireSameScale(x.scale, y.scale, "addPlain")
	vals := make([]float64, b.slots)
	noise := append([]float64(nil), x.noise...)
	for i := range vals {
		vals[i] = x.vals[i] + y.vals[i]
	}
	hypotConst(noise, b.encodingNoise(y.scale))
	ivals := zipIm(x.ivals, y.ivals, b.slots, func(a, bb float64) float64 { return a + bb })
	return &simCT{vals: vals, ivals: ivals, scale: x.scale, logQ: x.logQ, noise: noise}
}

func (b *SimBackend) SubPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	b.requireSameScale(x.scale, y.scale, "subPlain")
	vals := make([]float64, b.slots)
	noise := append([]float64(nil), x.noise...)
	for i := range vals {
		vals[i] = x.vals[i] - y.vals[i]
	}
	hypotConst(noise, b.encodingNoise(y.scale))
	ivals := zipIm(x.ivals, y.ivals, b.slots, func(a, bb float64) float64 { return a - bb })
	return &simCT{vals: vals, ivals: ivals, scale: x.scale, logQ: x.logQ, noise: noise}
}

func (b *SimBackend) AddScalar(c Ciphertext, s float64) Ciphertext {
	x := b.ct(c)
	vals := make([]float64, b.slots)
	noise := append([]float64(nil), x.noise...)
	for i := range vals {
		vals[i] = x.vals[i] + s
	}
	hypotConst(noise, 0.5/x.scale)
	return &simCT{vals: vals, ivals: imOrNil(x.ivals), scale: x.scale, logQ: x.logQ, noise: noise}
}

func (b *SimBackend) SubScalar(c Ciphertext, s float64) Ciphertext {
	return b.AddScalar(c, -s)
}

func (b *SimBackend) Mul(c, c2 Ciphertext) Ciphertext {
	x, y := b.ct(c), b.ct(c2)
	vals := make([]float64, b.slots)
	noise := make([]float64, b.slots)
	ks := b.keySwitchNoise(x.scale * y.scale)
	if x.ivals == nil && y.ivals == nil {
		for i := range vals {
			vals[i] = x.vals[i] * y.vals[i]
			noise[i] = math.Hypot(
				math.Hypot(x.noise[i]*math.Abs(y.vals[i]), y.noise[i]*math.Abs(x.vals[i])),
				math.Hypot(x.noise[i]*y.noise[i], ks))
		}
		out := &simCT{vals: vals, scale: x.scale * y.scale, logQ: math.Min(x.logQ, y.logQ), noise: noise}
		b.checkCapacity(out)
		return out
	}
	// Complex slot product; noise bounds use slot magnitudes.
	ivals := make([]float64, b.slots)
	for i := range vals {
		a, bi := x.vals[i], imAt(x.ivals, i)
		cr, di := y.vals[i], imAt(y.ivals, i)
		vals[i] = a*cr - bi*di
		ivals[i] = a*di + bi*cr
		noise[i] = math.Hypot(
			math.Hypot(x.noise[i]*y.mag(i), y.noise[i]*x.mag(i)),
			math.Hypot(x.noise[i]*y.noise[i], ks))
	}
	out := &simCT{vals: vals, ivals: ivals, scale: x.scale * y.scale, logQ: math.Min(x.logQ, y.logQ), noise: noise}
	b.checkCapacity(out)
	return out
}

func (b *SimBackend) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	vals := make([]float64, b.slots)
	noise := make([]float64, b.slots)
	enc := b.encodingNoise(y.scale)
	if x.ivals == nil && y.ivals == nil {
		for i := range vals {
			vals[i] = x.vals[i] * y.vals[i]
			// Per-slot: the ciphertext's noise multiplies this slot's plaintext
			// entry, and the plaintext's encoding error multiplies this slot's
			// (noisy) value.
			noise[i] = math.Hypot(x.noise[i]*math.Abs(y.vals[i]),
				enc*(math.Abs(x.vals[i])+x.noise[i]))
		}
		out := &simCT{vals: vals, scale: x.scale * y.scale, logQ: x.logQ, noise: noise}
		b.checkCapacity(out)
		return out
	}
	ivals := make([]float64, b.slots)
	for i := range vals {
		a, bi := x.vals[i], imAt(x.ivals, i)
		cr, di := y.vals[i], imAt(y.ivals, i)
		vals[i] = a*cr - bi*di
		ivals[i] = a*di + bi*cr
		ymag := math.Hypot(cr, di)
		noise[i] = math.Hypot(x.noise[i]*ymag, enc*(x.mag(i)+x.noise[i]))
	}
	out := &simCT{vals: vals, ivals: ivals, scale: x.scale * y.scale, logQ: x.logQ, noise: noise}
	b.checkCapacity(out)
	return out
}

func (b *SimBackend) MulScalar(c Ciphertext, s float64, f float64) Ciphertext {
	x := b.ct(c)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = x.vals[i] * s
	}
	// A scalar constant encodes with all slots equal, whose encoding noise
	// is smaller than a full plaintext's (footnote 3 in the paper).
	noise := make([]float64, b.slots)
	for i := range noise {
		noise[i] = math.Hypot(x.noise[i]*math.Abs(s), (x.mag(i)+x.noise[i])/(2*f))
	}
	var ivals []float64
	if x.ivals != nil {
		ivals = make([]float64, b.slots)
		for i := range ivals {
			ivals[i] = x.ivals[i] * s
		}
	}
	out := &simCT{vals: vals, ivals: ivals, scale: x.scale * f, logQ: x.logQ, noise: noise}
	b.checkCapacity(out)
	return out
}

func (b *SimBackend) Rescale(c Ciphertext, x *big.Int) Ciphertext {
	cc := b.ct(c)
	if x.BitLen() > 1024 {
		panic("hisa: sim rescale divisor out of range")
	}
	d, _ := new(big.Float).SetInt(x).Float64()
	if d < 1 {
		panic("hisa: sim rescale divisor < 1")
	}
	bitsUsed := math.Log2(d)
	newLogQ := cc.logQ - bitsUsed
	if newLogQ < 0 {
		panic(fmt.Sprintf("hisa: ckks-sim modulus exhausted by rescale: need %.1f bits, have %.1f",
			bitsUsed, cc.logQ))
	}
	newScale := cc.scale / d
	// Message-unit noise is unchanged by exact division; rounding adds
	// sqrt(N)/2 coefficient units at the new scale.
	noise := append([]float64(nil), cc.noise...)
	hypotConst(noise, math.Sqrt(b.n())/(2*newScale))
	out := &simCT{
		vals:  append([]float64(nil), cc.vals...),
		ivals: imOrNil(cc.ivals),
		scale: newScale,
		logQ:  newLogQ,
		noise: noise,
	}
	b.checkCapacity(out)
	return out
}

// MaxRescale implements the CKKS restriction that divisors are powers of
// two, additionally capped by the remaining modulus.
func (b *SimBackend) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	cc := b.ct(c)
	if ub.Sign() <= 0 {
		return big.NewInt(1)
	}
	bits := ub.BitLen() - 1
	if f := int(cc.logQ); bits > f {
		bits = f
	}
	if bits < 1 {
		return big.NewInt(1)
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(bits))
}

func (b *SimBackend) Scale(c Ciphertext) float64 { return b.ct(c).scale }

// NoiseOf exposes the largest per-slot noise std of a ciphertext (for tests
// and the profile-guided scale selection diagnostics).
func (b *SimBackend) NoiseOf(c Ciphertext) float64 {
	m := 0.0
	for _, n := range b.ct(c).noise {
		if n > m {
			m = n
		}
	}
	return m
}

// LogQRemaining exposes the remaining modulus bits of a ciphertext.
func (b *SimBackend) LogQRemaining(c Ciphertext) float64 { return b.ct(c).logQ }

// BootstrapCapable reports whether SimParams.Bootstrap was configured.
func (b *SimBackend) BootstrapCapable() bool { return b.params.Bootstrap != nil }

func (b *SimBackend) bootParams() *SimBootstrap {
	if b.params.Bootstrap == nil {
		panic("hisa: ckks-sim backend built without SimParams.Bootstrap")
	}
	return b.params.Bootstrap
}

// levelsAbove counts how many PrimeBits rescales fit between logQ and the
// Q0Bits base — the sim's level-equivalent of an RNS chain position.
func (b *SimBackend) levelsAbove(logQ float64) int {
	bs := b.bootParams()
	lv := int((logQ - float64(bs.Q0Bits)) / float64(bs.PrimeBits))
	if lv < 0 {
		lv = 0
	}
	return lv
}

// Bootstrap refreshes the ciphertext's modulus budget to FreshLogQ and
// charges the bootstrap's approximation noise — the observable bookkeeping
// of the real pipeline, with the slot values carried exactly.
func (b *SimBackend) Bootstrap(c Ciphertext) Ciphertext {
	bs := b.bootParams()
	cc := b.ct(c)
	out := b.ct(b.Copy(cc)).withLogQ(bs.FreshLogQ)
	hypotConst(out.noise, bs.Noise)
	b.checkCapacity(out)
	return out
}

// BudgetOf reports the ciphertext's remaining budget in chain levels.
func (b *SimBackend) BudgetOf(c Ciphertext) int { return b.levelsAbove(b.ct(c).logQ) }

// FreshBudget is the level budget right after a bootstrap.
func (b *SimBackend) FreshBudget() int { return b.levelsAbove(b.bootParams().FreshLogQ) }

// DropToFresh caps the ciphertext's budget at the fresh level (modulus
// switching is exact, so no noise is charged in message units).
func (b *SimBackend) DropToFresh(c Ciphertext) Ciphertext {
	bs := b.bootParams()
	cc := b.ct(c)
	out := b.ct(b.Copy(cc))
	if out.logQ > bs.FreshLogQ {
		out.logQ = bs.FreshLogQ
	}
	return out
}

func (c *simCT) withLogQ(logQ float64) *simCT {
	c.logQ = logQ
	return c
}

// Conjugate conjugates every slot. Like a rotation it is a key-switching
// automorphism, so it charges one key-switch noise term.
func (b *SimBackend) Conjugate(c Ciphertext) Ciphertext {
	cc := b.ct(c)
	noise := append([]float64(nil), cc.noise...)
	hypotConst(noise, b.keySwitchNoise(cc.scale))
	out := &simCT{
		vals:  append([]float64(nil), cc.vals...),
		scale: cc.scale,
		logQ:  cc.logQ,
		noise: noise,
	}
	if cc.ivals != nil {
		out.ivals = make([]float64, b.slots)
		for i := range out.ivals {
			out.ivals[i] = -cc.ivals[i]
		}
	}
	return out
}

// EncryptC encrypts a complex slot vector at scale f.
func (b *SimBackend) EncryptC(m []complex128, f float64) Ciphertext {
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	for i, z := range m {
		vals[i] = real(z)
		ivals[i] = imag(z)
	}
	c := &simCT{
		vals:  vals,
		ivals: ivals,
		scale: f,
		logQ:  float64(b.params.LogQ),
		noise: constVec(b.slots, b.freshNoise(f)+b.encodingNoise(f)),
	}
	b.checkCapacity(c)
	return c
}

// DecryptC decrypts both slot components, injecting independent noise into
// the real and imaginary parts.
func (b *SimBackend) DecryptC(c Ciphertext) []complex128 {
	cc := b.ct(c)
	out := make([]complex128, b.slots)
	if b.params.NoNoise {
		for i := range out {
			out[i] = complex(cc.vals[i], imAt(cc.ivals, i))
		}
		return out
	}
	b.prngMu.Lock()
	defer b.prngMu.Unlock()
	for i := range out {
		out[i] = complex(
			cc.vals[i]+b.gauss()*cc.noise[i],
			imAt(cc.ivals, i)+b.gauss()*cc.noise[i])
	}
	return out
}

// AddPlainC adds a complex vector encoded at the ciphertext's scale.
func (b *SimBackend) AddPlainC(c Ciphertext, m []complex128) Ciphertext {
	cc := b.ct(c)
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = cc.vals[i]
		ivals[i] = imAt(cc.ivals, i)
	}
	for i, z := range m {
		vals[i] += real(z)
		ivals[i] += imag(z)
	}
	noise := append([]float64(nil), cc.noise...)
	hypotConst(noise, b.encodingNoise(cc.scale))
	return &simCT{vals: vals, ivals: ivals, scale: cc.scale, logQ: cc.logQ, noise: noise}
}

// MulScalarC multiplies every slot by the complex constant x at scale f.
// The mimicked scheme encodes the constant as round(x·f) and multiplies
// exactly, so the applied multiplier is q = round(x·f)/f: the quantization
// error is deterministic (folded into the slot values) and the existing
// noise scales by |q| with no additive encoding term. In particular an
// exactly representable constant — e.g. 0.25 at factor 4, the complex-pack
// division — adds no noise at all, matching the RNS backend.
func (b *SimBackend) MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext {
	cc := b.ct(c)
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	qr := math.Round(real(x)*f) / f
	qi := math.Round(imag(x)*f) / f
	qmag := math.Hypot(qr, qi)
	noise := make([]float64, b.slots)
	for i := range vals {
		a, bi := cc.vals[i], imAt(cc.ivals, i)
		vals[i] = a*qr - bi*qi
		ivals[i] = a*qi + bi*qr
		noise[i] = cc.noise[i] * qmag
	}
	out := &simCT{vals: vals, ivals: ivals, scale: cc.scale * f, logQ: cc.logQ, noise: noise}
	b.checkCapacity(out)
	return out
}
