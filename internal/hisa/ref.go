package hisa

import (
	"fmt"
	"math/big"
)

// RefBackend executes HISA instructions on plaintext vectors. It is the
// functional oracle: kernels validated against it are known to compute the
// right values, independent of any cryptographic concern. Scale bookkeeping
// mirrors a rescaling scheme with arbitrary divisors so the kernels'
// rescale protocol is still exercised. The backend holds no mutable state,
// so it is trivially safe for concurrent op execution.
//
// Slots model the complex coordinates of the CKKS canonical embedding: a
// ciphertext carries a real component vector plus an optional imaginary
// component (nil for purely real data, which keeps the real-only paths
// bit-identical to the pre-complex backend). Ciphertext-ciphertext
// multiplication is the complex slot product, exactly as in the scheme.
type RefBackend struct {
	slots int
}

// NewRefBackend creates a reference backend with the given SIMD width.
func NewRefBackend(slots int) *RefBackend {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic(fmt.Sprintf("hisa: slot count %d must be a positive power of two", slots))
	}
	return &RefBackend{slots: slots}
}

type refCT struct {
	vals  []float64
	ivals []float64 // imaginary slot components; nil when purely real
	scale float64
}

type refPT struct {
	vals  []float64
	ivals []float64
	scale float64
}

func (b *RefBackend) Name() string { return "ref" }
func (b *RefBackend) Slots() int   { return b.slots }

func (b *RefBackend) ct(c Ciphertext) *refCT {
	v, ok := c.(*refCT)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign ciphertext %T passed to ref backend", c))
	}
	return v
}

func (b *RefBackend) pt(p Plaintext) *refPT {
	v, ok := p.(*refPT)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign plaintext %T passed to ref backend", p))
	}
	return v
}

// imOrNil returns a copy of iv, or nil when iv is nil.
func imOrNil(iv []float64) []float64 {
	if iv == nil {
		return nil
	}
	return append([]float64(nil), iv...)
}

// imAt reads component i of an optional imaginary vector.
func imAt(iv []float64, i int) float64 {
	if iv == nil {
		return 0
	}
	return iv[i]
}

func (b *RefBackend) Encode(m []float64, f float64) Plaintext {
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	copy(vals, m)
	return &refPT{vals: vals, scale: f}
}

func (b *RefBackend) Decode(p Plaintext) []float64 {
	return append([]float64(nil), b.pt(p).vals...)
}

func (b *RefBackend) Encrypt(p Plaintext) Ciphertext {
	pp := b.pt(p)
	return &refCT{vals: append([]float64(nil), pp.vals...), ivals: imOrNil(pp.ivals), scale: pp.scale}
}

func (b *RefBackend) Decrypt(c Ciphertext) Plaintext {
	cc := b.ct(c)
	return &refPT{vals: append([]float64(nil), cc.vals...), ivals: imOrNil(cc.ivals), scale: cc.scale}
}

func (b *RefBackend) Copy(c Ciphertext) Ciphertext {
	cc := b.ct(c)
	return &refCT{vals: append([]float64(nil), cc.vals...), ivals: imOrNil(cc.ivals), scale: cc.scale}
}

func (b *RefBackend) Free(any) {}

func (b *RefBackend) RotLeft(c Ciphertext, x int) Ciphertext {
	cc := b.ct(c)
	n := b.slots
	x = ((x % n) + n) % n
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = cc.vals[(i+x)%n]
	}
	var ivals []float64
	if cc.ivals != nil {
		ivals = make([]float64, n)
		for i := 0; i < n; i++ {
			ivals[i] = cc.ivals[(i+x)%n]
		}
	}
	return &refCT{vals: vals, ivals: ivals, scale: cc.scale}
}

func (b *RefBackend) RotRight(c Ciphertext, x int) Ciphertext { return b.RotLeft(c, -x) }

// zipCT combines two ciphertexts componentwise (addition/subtraction).
func (b *RefBackend) zipCT(c, c2 Ciphertext, op func(a, b float64) float64) Ciphertext {
	x, y := b.ct(c), b.ct(c2)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = op(x.vals[i], y.vals[i])
	}
	var ivals []float64
	if x.ivals != nil || y.ivals != nil {
		ivals = make([]float64, b.slots)
		for i := range ivals {
			ivals[i] = op(imAt(x.ivals, i), imAt(y.ivals, i))
		}
	}
	return &refCT{vals: vals, ivals: ivals, scale: x.scale}
}

func (b *RefBackend) Add(c, c2 Ciphertext) Ciphertext {
	return b.zipCT(c, c2, func(a, bb float64) float64 { return a + bb })
}

func (b *RefBackend) Sub(c, c2 Ciphertext) Ciphertext {
	return b.zipCT(c, c2, func(a, bb float64) float64 { return a - bb })
}

func (b *RefBackend) Mul(c, c2 Ciphertext) Ciphertext {
	x, y := b.ct(c), b.ct(c2)
	vals := make([]float64, b.slots)
	if x.ivals == nil && y.ivals == nil {
		for i := range vals {
			vals[i] = x.vals[i] * y.vals[i]
		}
		return &refCT{vals: vals, scale: x.scale * y.scale}
	}
	// Complex slot product: (a+bi)(c+di) = (ac-bd) + (ad+bc)i.
	ivals := make([]float64, b.slots)
	for i := range vals {
		a, bi := x.vals[i], imAt(x.ivals, i)
		cr, di := y.vals[i], imAt(y.ivals, i)
		vals[i] = a*cr - bi*di
		ivals[i] = a*di + bi*cr
	}
	return &refCT{vals: vals, ivals: ivals, scale: x.scale * y.scale}
}

func (b *RefBackend) AddPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = x.vals[i] + y.vals[i]
	}
	var ivals []float64
	if x.ivals != nil || y.ivals != nil {
		ivals = make([]float64, b.slots)
		for i := range ivals {
			ivals[i] = imAt(x.ivals, i) + imAt(y.ivals, i)
		}
	}
	return &refCT{vals: vals, ivals: ivals, scale: x.scale}
}

func (b *RefBackend) SubPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = x.vals[i] - y.vals[i]
	}
	var ivals []float64
	if x.ivals != nil || y.ivals != nil {
		ivals = make([]float64, b.slots)
		for i := range ivals {
			ivals[i] = imAt(x.ivals, i) - imAt(y.ivals, i)
		}
	}
	return &refCT{vals: vals, ivals: ivals, scale: x.scale}
}

func (b *RefBackend) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	x, y := b.ct(c), b.pt(p)
	vals := make([]float64, b.slots)
	if x.ivals == nil && y.ivals == nil {
		for i := range vals {
			vals[i] = x.vals[i] * y.vals[i]
		}
		return &refCT{vals: vals, scale: x.scale * y.scale}
	}
	ivals := make([]float64, b.slots)
	for i := range vals {
		a, bi := x.vals[i], imAt(x.ivals, i)
		cr, di := y.vals[i], imAt(y.ivals, i)
		vals[i] = a*cr - bi*di
		ivals[i] = a*di + bi*cr
	}
	return &refCT{vals: vals, ivals: ivals, scale: x.scale * y.scale}
}

func (b *RefBackend) AddScalar(c Ciphertext, x float64) Ciphertext {
	cc := b.ct(c)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = cc.vals[i] + x
	}
	return &refCT{vals: vals, ivals: imOrNil(cc.ivals), scale: cc.scale}
}

func (b *RefBackend) SubScalar(c Ciphertext, x float64) Ciphertext {
	return b.AddScalar(c, -x)
}

func (b *RefBackend) MulScalar(c Ciphertext, x float64, f float64) Ciphertext {
	cc := b.ct(c)
	vals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = cc.vals[i] * x
	}
	var ivals []float64
	if cc.ivals != nil {
		ivals = make([]float64, b.slots)
		for i := range ivals {
			ivals[i] = cc.ivals[i] * x
		}
	}
	return &refCT{vals: vals, ivals: ivals, scale: cc.scale * f}
}

func (b *RefBackend) Rescale(c Ciphertext, x *big.Int) Ciphertext {
	cc := b.ct(c)
	d, _ := new(big.Float).SetInt(x).Float64()
	return &refCT{vals: append([]float64(nil), cc.vals...), ivals: imOrNil(cc.ivals), scale: cc.scale / d}
}

func (b *RefBackend) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	if ub.Sign() <= 0 {
		return big.NewInt(1)
	}
	// Mirror the CKKS restriction: divisors are powers of two.
	d := new(big.Int).Set(ub)
	bits := d.BitLen() - 1
	return new(big.Int).Lsh(big.NewInt(1), uint(bits))
}

func (b *RefBackend) Scale(c Ciphertext) float64 { return b.ct(c).scale }

// refFreshBudget is the reference backend's unbounded level budget: the
// functional oracle never exhausts, so any ciphertext is "fresh".
const refFreshBudget = 1 << 30

// BootstrapCapable: the oracle backend refreshes trivially (bootstrap is the
// exact identity), so lockstep comparisons against bootstrap-placed circuits
// need no special-casing.
func (b *RefBackend) BootstrapCapable() bool { return true }

// Bootstrap is the exact identity on the oracle backend.
func (b *RefBackend) Bootstrap(c Ciphertext) Ciphertext { return b.Copy(c) }

// BudgetOf: the oracle has no modulus, so the budget is effectively infinite.
func (b *RefBackend) BudgetOf(Ciphertext) int { return refFreshBudget }

// FreshBudget matches BudgetOf: refreshing never changes anything.
func (b *RefBackend) FreshBudget() int { return refFreshBudget }

// DropToFresh is the identity on the oracle backend.
func (b *RefBackend) DropToFresh(c Ciphertext) Ciphertext { return b.Copy(c) }

// Conjugate negates the imaginary slot components.
func (b *RefBackend) Conjugate(c Ciphertext) Ciphertext {
	cc := b.ct(c)
	out := &refCT{vals: append([]float64(nil), cc.vals...), scale: cc.scale}
	if cc.ivals != nil {
		out.ivals = make([]float64, b.slots)
		for i := range out.ivals {
			out.ivals[i] = -cc.ivals[i]
		}
	}
	return out
}

// EncryptC encrypts a complex slot vector at scale f.
func (b *RefBackend) EncryptC(m []complex128, f float64) Ciphertext {
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	for i, z := range m {
		vals[i] = real(z)
		ivals[i] = imag(z)
	}
	return &refCT{vals: vals, ivals: ivals, scale: f}
}

// DecryptC decrypts both slot components.
func (b *RefBackend) DecryptC(c Ciphertext) []complex128 {
	cc := b.ct(c)
	out := make([]complex128, b.slots)
	for i := range out {
		out[i] = complex(cc.vals[i], imAt(cc.ivals, i))
	}
	return out
}

// AddPlainC adds a complex vector encoded at the ciphertext's scale.
func (b *RefBackend) AddPlainC(c Ciphertext, m []complex128) Ciphertext {
	cc := b.ct(c)
	if len(m) > b.slots {
		panic(fmt.Sprintf("hisa: %d values exceed %d slots", len(m), b.slots))
	}
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	for i := range vals {
		vals[i] = cc.vals[i]
		ivals[i] = imAt(cc.ivals, i)
	}
	for i, z := range m {
		vals[i] += real(z)
		ivals[i] += imag(z)
	}
	return &refCT{vals: vals, ivals: ivals, scale: cc.scale}
}

// MulScalarC multiplies every slot by the complex constant x at scale f.
func (b *RefBackend) MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext {
	cc := b.ct(c)
	vals := make([]float64, b.slots)
	ivals := make([]float64, b.slots)
	xr, xi := real(x), imag(x)
	for i := range vals {
		a, bi := cc.vals[i], imAt(cc.ivals, i)
		vals[i] = a*xr - bi*xi
		ivals[i] = a*xi + bi*xr
	}
	return &refCT{vals: vals, ivals: ivals, scale: cc.scale * f}
}
