package hisa

import (
	"math/big"
	"sync"
	"testing"
)

// hammer runs fn from workers goroutines, iters times each.
func hammer(workers, iters int, fn func(worker, iter int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// TestMeterConcurrentCounts hammers a metered backend from 8 goroutines and
// checks the tallies are exact: with plain-int counters this test fails
// under -race (and typically undercounts even without it).
func TestMeterConcurrentCounts(t *testing.T) {
	const workers, iters = 8, 200
	for _, inner := range []Backend{
		NewRefBackend(64),
		NewSimBackend(SimParams{LogN: 7, LogQ: 240}),
	} {
		m := NewMeter(inner, func(x int) int {
			return len(RotationSteps(x, inner.Slots(), func(int) bool { return false }))
		})
		vals := rv(inner.Slots(), 0.5, 3)
		ct := m.Encrypt(m.Encode(vals, testScale))

		hammer(workers, iters, func(w, i int) {
			c2 := m.Add(ct, ct)
			c2 = m.MulScalar(c2, 0.5, testScale)
			c2 = m.RotLeft(c2, 6) // 2 power-of-two steps
			d := m.MaxRescale(c2, big.NewInt(1<<40))
			m.Rescale(c2, d)
			m.Decrypt(ct)
		})

		c := m.Counts()
		n := workers * iters
		if c.Add != n || c.MulScalar != n || c.Rotations != 2*n {
			t.Fatalf("%s: arith counts lost updates: %+v (want %d each, %d rotations)",
				inner.Name(), c, n, 2*n)
		}
		if c.Rescale != n || c.MaxRescaleQueries != n {
			t.Fatalf("%s: rescale counts lost updates: %+v", inner.Name(), c)
		}
		if c.Decrypt != n || c.Encrypt != 1 {
			t.Fatalf("%s: IO counts lost updates: %+v", inner.Name(), c)
		}
	}
}

// TestBackendsConcurrentOps exercises the executable backends' concurrency
// contract: concurrent functional ops on shared ciphertexts must be safe and
// produce the same values a serial run does. Run with -race.
func TestBackendsConcurrentOps(t *testing.T) {
	for _, b := range []Backend{
		NewRefBackend(64),
		NewSimBackend(SimParams{LogN: 7, LogQ: 240}),
	} {
		vals := rv(b.Slots(), 0.5, 5)
		pt := b.Encode(vals, testScale)
		ct := b.Encrypt(pt)

		body := func() Ciphertext {
			x := b.MulPlain(b.Add(ct, ct), pt)
			x = b.RotLeft(x, 3)
			d := b.MaxRescale(x, big.NewInt(1<<20))
			return b.Rescale(x, d)
		}
		want := b.Decode(decryptNoiseless(b, body()))

		const workers = 8
		results := make([][]float64, workers)
		hammer(workers, 20, func(w, i int) {
			results[w] = b.Decode(decryptNoiseless(b, body()))
		})
		for w, got := range results {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: worker %d slot %d: parallel %g != serial %g",
						b.Name(), w, i, got[i], want[i])
				}
			}
		}
	}
}

// decryptNoiseless decrypts without sampling noise where the backend allows
// it, so value comparisons are exact.
func decryptNoiseless(b Backend, c Ciphertext) Plaintext {
	if sim, ok := b.(*SimBackend); ok {
		vals := append([]float64(nil), sim.ct(c).vals...)
		return &simPT{vals: vals, scale: sim.ct(c).scale}
	}
	return b.Decrypt(c)
}
