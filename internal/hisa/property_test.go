package hisa

import (
	"math"
	"testing"
	"testing/quick"
)

// Algebraic properties that must hold on every executable backend
// (tolerances absorb the CKKS backends' approximation noise).

func TestRotationComposition(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		slots := b.Slots()
		a := rv(slots, 2, 101)
		ct := b.Encrypt(b.Encode(a, testScale))

		f := func(j, k uint16) bool {
			x, y := int(j)%slots, int(k)%slots
			// rot(rot(ct, x), y) == rot(ct, x+y)
			lhs := b.Decode(b.Decrypt(b.RotLeft(b.RotLeft(ct, x), y)))
			rhs := b.Decode(b.Decrypt(b.RotLeft(ct, (x+y)%slots)))
			for i := range lhs {
				if math.Abs(lhs[i]-rhs[i]) > 20*tb.tol {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
	}
}

func TestAdditionCommutesWithRotation(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		slots := b.Slots()
		x := b.Encrypt(b.Encode(rv(slots, 2, 102), testScale))
		y := b.Encrypt(b.Encode(rv(slots, 2, 103), testScale))

		// rot(x + y) == rot(x) + rot(y)
		lhs := b.Decode(b.Decrypt(b.RotLeft(b.Add(x, y), 5)))
		rhs := b.Decode(b.Decrypt(b.Add(b.RotLeft(x, 5), b.RotLeft(y, 5))))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 20*tb.tol {
				t.Fatalf("%s: slot %d: %g vs %g", b.Name(), i, lhs[i], rhs[i])
			}
		}
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		slots := b.Slots()
		x := b.Encrypt(b.Encode(rv(slots, 1, 104), testScale))
		y := b.Encrypt(b.Encode(rv(slots, 1, 105), testScale))
		p := b.Encode(rv(slots, 1, 106), testScale)

		// (x + y) * p == x*p + y*p
		lhs := b.Decode(b.Decrypt(b.MulPlain(b.Add(x, y), p)))
		rhs := b.Decode(b.Decrypt(b.Add(b.MulPlain(x, p), b.MulPlain(y, p))))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 50*tb.tol {
				t.Fatalf("%s: slot %d: %g vs %g", b.Name(), i, lhs[i], rhs[i])
			}
		}
	}
}

func TestCopyIsIndependent(t *testing.T) {
	for _, tb := range backendsUnderTest(t) {
		b := tb.b
		a := rv(b.Slots(), 1, 107)
		ct := b.Encrypt(b.Encode(a, testScale))
		cp := b.Copy(ct)
		// Mutating through an op on the original must not affect the copy.
		_ = b.AddScalar(ct, 100)
		got := b.Decode(b.Decrypt(cp))
		for i := range a {
			if math.Abs(got[i]-a[i]) > 10*tb.tol {
				t.Fatalf("%s: copy changed: slot %d %g vs %g", b.Name(), i, got[i], a[i])
			}
		}
	}
}

func TestSubScalarViaHelper(t *testing.T) {
	b := NewRefBackend(64)
	a := rv(64, 2, 108)
	ct := b.Encrypt(b.Encode(a, testScale))
	got := b.Decode(b.Decrypt(SubScalarVia(b, ct, 1.5)))
	for i := range a {
		if math.Abs(got[i]-(a[i]-1.5)) > 1e-9 {
			t.Fatalf("slot %d", i)
		}
	}
}

func TestEvaluationOnlyRNSBackendCannotDecrypt(t *testing.T) {
	full := newRNSTestBackend(t, []int{1})
	srv := NewRNSBackendFromKeys(full.Params(), full.PublicKeys(), nil)

	a := rv(srv.Slots(), 1, 109)
	ct := srv.Encrypt(srv.Encode(a, testScale)) // server CAN encrypt
	rot := srv.RotLeft(ct, 1)                   // and evaluate

	// ... and the client's key decrypts the server's result.
	got := full.Decode(full.Decrypt(rot))
	for i := range a {
		want := a[(i+1)%len(a)]
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want)
		}
	}

	// ... but the server itself cannot decrypt.
	defer func() {
		if recover() == nil {
			t.Fatal("evaluation-only backend must not decrypt")
		}
	}()
	srv.Decrypt(ct)
}
