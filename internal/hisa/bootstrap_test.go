package hisa

import (
	"math"
	"math/big"
	"testing"

	"chet/internal/boot"
	"chet/internal/ckks"
	"chet/internal/ring"
)

// newRNSBootBackend builds a real-lattice backend over a bootstrap chain
// (small test ring: the security-floor check lives in the compiler, not in
// ckks.NewParameters).
func newRNSBootBackend(t testing.TB, window int) *RNSBackend {
	t.Helper()
	spec, err := boot.DeriveSpec(9, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     spec.LogN,
		LogQ:     spec.ChainBits(window),
		LogP:     60,
		LogScale: spec.PrimeBits,
		LogSlots: spec.LogSlots,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	return NewRNSBackend(RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(0xB0075),
		Bootstrap: &spec,
	})
}

// TestBootstrapIdentityCrossBackend is the capability's defining property on
// every backend: Bootstrap is the identity on the message within the
// backend's precision budget, and its output carries the fresh budget.
func TestBootstrapIdentityCrossBackend(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
		tol  float64
	}{
		{"ref", NewRefBackend(8), 1e-12},
		{"sim", NewSimBackend(SimParams{LogN: 4, LogQ: 209, Seed: 9, Bootstrap: &SimBootstrap{}}), 1e-2},
		{"rns", newRNSBootBackend(t, 2), 5e-2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bb, ok := AsBootstrap(tc.b)
			if !ok {
				t.Fatalf("%s backend not bootstrap-capable", tc.b.Name())
			}
			values := rv(tc.b.Slots(), 1, 21)
			ct := tc.b.Encrypt(tc.b.Encode(values, testScale))
			out := bb.Bootstrap(ct)
			if got, want := bb.BudgetOf(out), bb.FreshBudget(); got != want {
				t.Fatalf("bootstrapped budget = %d, want fresh budget %d", got, want)
			}
			got := tc.b.Decode(tc.b.Decrypt(out))
			for i := range values {
				if d := math.Abs(got[i] - values[i]); d > tc.tol {
					t.Fatalf("slot %d: |%g - %g| = %g exceeds %g", i, got[i], values[i], d, tc.tol)
				}
			}
			tc.b.Free(out)
			tc.b.Free(ct)
		})
	}
}

// TestBootstrapNotCapable: backends without the capability report false
// through AsBootstrap, including behind a Meter.
func TestBootstrapNotCapable(t *testing.T) {
	sim := NewSimBackend(SimParams{LogN: 4, LogQ: 120})
	if _, ok := AsBootstrap(sim); ok {
		t.Fatal("sim without SimParams.Bootstrap must not be capable")
	}
	if _, ok := AsBootstrap(NewMeter(sim, nil)); ok {
		t.Fatal("meter over an incapable backend must not be capable")
	}
}

// TestMeterCountsBootstrap: the Meter forwards the capability and tallies
// refreshes as their own instruction.
func TestMeterCountsBootstrap(t *testing.T) {
	sim := NewSimBackend(SimParams{LogN: 4, LogQ: 209, Seed: 3, Bootstrap: &SimBootstrap{}})
	m := NewMeter(sim, nil)
	bb, ok := AsBootstrap(m)
	if !ok {
		t.Fatal("meter over a capable backend must forward the capability")
	}
	ct := m.Encrypt(m.Encode(rv(m.Slots(), 1, 4), testScale))
	out := bb.Bootstrap(ct)
	m.Free(out)
	m.Free(ct)
	if c := m.Counts(); c.Bootstrap != 1 {
		t.Fatalf("meter counted %d bootstraps, want 1", c.Bootstrap)
	}
}

// burnLevel consumes one level kernel-style: a scale-neutral scalar multiply
// followed by the maximal rescale.
func burnLevel(t testing.TB, b Backend, ct Ciphertext) Ciphertext {
	t.Helper()
	m := b.MulScalar(ct, 1, math.Exp2(40))
	d := b.MaxRescale(m, new(big.Int).Lsh(big.NewInt(1), 41))
	out := b.Rescale(m, d)
	b.Free(m)
	return out
}

// TestRefresherKeepsDeepCircuitAlive is the end-to-end runtime property: a
// multiplication chain deeper than the fresh budget runs to completion under
// the Refresher, bootstrapping exactly when the budget floor is hit, and the
// message survives within the bootstrap epsilon.
func TestRefresherKeepsDeepCircuitAlive(t *testing.T) {
	rns := newRNSBootBackend(t, 2)
	meter := NewMeter(rns, nil)
	rf, err := NewRefresher(meter, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := rv(rf.Slots(), 1, 33)
	ct := rf.Encrypt(rf.Encode(values, testScale))
	if got, want := rf.BudgetOf(ct), rf.FreshBudget(); got != want {
		t.Fatalf("fresh encryption budget = %d, want %d (DropToFresh)", got, want)
	}

	// Depth = fresh budget + 2: forces at least one mid-circuit bootstrap.
	depth := rf.FreshBudget() + 2
	for i := 0; i < depth; i++ {
		next := burnLevel(t, rf, ct)
		rf.Free(ct)
		ct = next
	}
	if rf.Bootstraps() == 0 {
		t.Fatal("deep chain completed without a bootstrap")
	}
	if c := meter.Counts(); c.Bootstrap != rf.Bootstraps() {
		t.Fatalf("meter saw %d bootstraps, refresher %d", c.Bootstrap, rf.Bootstraps())
	}
	got := rf.Decode(rf.Decrypt(ct))
	for i := range values {
		if d := math.Abs(got[i] - values[i]); d > 5e-2 {
			t.Fatalf("slot %d after deep chain: |%g - %g| = %g", i, got[i], values[i], d)
		}
	}
	rf.Free(ct)
}

// TestRefresherSimLockstep: the Refresher works identically over the mock
// backend, so placement validation does not need lattice runs.
func TestRefresherSimLockstep(t *testing.T) {
	sim := NewSimBackend(SimParams{LogN: 4, LogQ: 209, Seed: 5, NoNoise: true, Bootstrap: &SimBootstrap{}})
	rf, err := NewRefresher(sim, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := rv(rf.Slots(), 1, 6)
	ct := rf.Encrypt(rf.Encode(values, testScale))
	depth := rf.FreshBudget() + 3
	for i := 0; i < depth; i++ {
		next := burnLevel(t, rf, ct)
		rf.Free(ct)
		ct = next
	}
	if rf.Bootstraps() == 0 {
		t.Fatal("sim deep chain completed without a bootstrap")
	}
	got := rf.Decode(rf.Decrypt(ct))
	for i := range values {
		if d := math.Abs(got[i] - values[i]); d > 1e-6 {
			t.Fatalf("slot %d: |%g - %g| = %g", i, got[i], values[i], d)
		}
	}
}
