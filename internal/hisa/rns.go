package hisa

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"chet/internal/boot"
	"chet/internal/ckks"
	"chet/internal/ring"
)

// RNSConfig configures the real RNS-CKKS backend.
type RNSConfig struct {
	Params *ckks.Parameters
	// PRNG supplies key-generation and encryption randomness; nil selects a
	// cryptographically secure source.
	PRNG ring.PRNG
	// Rotations is the set of provisioned single-step rotation keys (as
	// produced by CHET's rotation-keys selection pass). nil provisions the
	// power-of-two defaults the paper compares against.
	Rotations []int
	// IntraOpWorkers bounds how many goroutines a single operation may use
	// for its limb-parallel stages (hoisted decomposition digits, key-switch
	// inner-product rows). 0 or 1 selects the serial path.
	IntraOpWorkers int
	// Bootstrap, when set, provisions the bootstrap pipeline's rotation keys
	// alongside Rotations and attaches a bootstrapper (internal/boot), making
	// the backend hisa.BootstrapCapable. Params must have been laid out with
	// Bootstrap.ChainBits. Construction panics if the spec and parameters
	// disagree — a mis-provisioned bootstrap must not fail silently at
	// inference time.
	Bootstrap *boot.Spec
}

// RNSBackend executes HISA instructions with real lattice cryptography: the
// RNS-CKKS scheme of internal/ckks (the scheme of SEAL v3.1). It is safe
// for concurrent op execution: the evaluator pools its scratch state, the
// encoder and decryptor are stateless, and the encryptor (whose PRNG is
// stateful) is serialized by encMu.
type RNSBackend struct {
	params      *ckks.Parameters
	encoder     *ckks.Encoder
	encMu       sync.Mutex
	encryptor   *ckks.Encryptor
	decryptor   *ckks.Decryptor // nil on evaluation-only (server) instances
	evaluator   *ckks.Evaluator
	provisioned map[int]bool

	// btMu guards bt and stageHook: EnableBootstrap and the telemetry
	// layer's SetBootstrapStageHook may arrive in either order.
	btMu      sync.Mutex
	bt        *boot.Bootstrapper // nil unless bootstrap-enabled
	stageHook boot.StageHook

	pk   *ckks.PublicKey
	rlk  *ckks.RelinearizationKey
	rtks *ckks.RotationKeySet
}

// NewRNSBackend generates all keys and returns a ready backend.
func NewRNSBackend(cfg RNSConfig) *RNSBackend {
	params := cfg.Params
	prng := cfg.PRNG
	if prng == nil {
		prng = ring.NewCryptoPRNG()
	}
	kgen := ckks.NewKeyGenerator(params, prng)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)

	rotations := cfg.Rotations
	if rotations == nil {
		for p := 1; p < params.Slots(); p <<= 1 {
			rotations = append(rotations, p)
		}
	}
	provisioned := make(map[int]bool, len(rotations))
	slots := params.Slots()
	normalized := make([]int, 0, len(rotations))
	for _, k := range rotations {
		k = ((k % slots) + slots) % slots
		if k == 0 || provisioned[k] {
			continue
		}
		provisioned[k] = true
		normalized = append(normalized, k)
	}
	keygenAmounts := normalized
	if cfg.Bootstrap != nil {
		// Bootstrap rotations ride along AFTER slot normalization: the
		// pipeline's BSGS steps are ordinary slot rotations, but its sub-ring
		// trace amounts are multiples of the slot count — identities on the
		// packed slots, which the normalization above would silently drop —
		// and key generation maps them to distinct Galois automorphisms.
		for _, k := range cfg.Bootstrap.RotationAmounts() {
			if k < slots {
				if provisioned[k] {
					continue
				}
				provisioned[k] = true
			}
			keygenAmounts = append(keygenAmounts, k)
		}
	}
	rtks := kgen.GenRotationKeys(sk, keygenAmounts, true)

	b := &RNSBackend{
		params:      params,
		encoder:     ckks.NewEncoder(params),
		encryptor:   ckks.NewEncryptor(params, pk, prng),
		decryptor:   ckks.NewDecryptor(params, sk),
		evaluator:   ckks.NewEvaluator(params, rlk, rtks).SetIntraOpWorkers(cfg.IntraOpWorkers),
		provisioned: provisioned,
		pk:          pk,
		rlk:         rlk,
		rtks:        rtks,
	}
	if cfg.Bootstrap != nil {
		if err := b.EnableBootstrap(*cfg.Bootstrap); err != nil {
			panic("hisa: " + err.Error())
		}
	}
	return b
}

// EnableBootstrap attaches a bootstrapper built over this backend's
// evaluator and encoder. The rotation key set must already hold keys for
// spec.RotationAmounts() plus conjugation (NewRNSBackend provisions them
// when RNSConfig.Bootstrap is set; evaluation-only instances receive them
// inside the shipped RNSPublicKeys).
func (b *RNSBackend) EnableBootstrap(spec boot.Spec) error {
	bt, err := boot.New(b.params, spec, b.evaluator, b.encoder)
	if err != nil {
		return err
	}
	b.btMu.Lock()
	b.bt = bt
	if b.stageHook != nil {
		bt.SetStageHook(b.stageHook)
	}
	b.btMu.Unlock()
	return nil
}

// SetBootstrapStageHook installs a per-stage observer on the attached
// bootstrapper (telemetry records refresh pipeline stages through it). The
// hook survives a later EnableBootstrap, so a tracer wrapped around an
// eval-only backend before the session's bootstrapper is attached still
// sees every stage.
func (b *RNSBackend) SetBootstrapStageHook(h func(stage string, start, end time.Time)) {
	b.btMu.Lock()
	b.stageHook = h
	if b.bt != nil {
		b.bt.SetStageHook(h)
	}
	b.btMu.Unlock()
}

// RNSPublicKeys is the public material a client ships to the evaluation
// server (Figure 3 of the paper): encryption key, relinearization key,
// rotation keys, and the rotation amounts they realize.
type RNSPublicKeys struct {
	PK        *ckks.PublicKey
	RLK       *ckks.RelinearizationKey
	RTKS      *ckks.RotationKeySet
	Rotations []int
}

// PublicKeys exports this backend's public key material for transfer to an
// evaluation-only server.
func (b *RNSBackend) PublicKeys() RNSPublicKeys {
	rotations := make([]int, 0, len(b.provisioned))
	for k := range b.provisioned {
		rotations = append(rotations, k)
	}
	return RNSPublicKeys{PK: b.pk, RLK: b.rlk, RTKS: b.rtks, Rotations: rotations}
}

// NewRNSBackendFromKeys builds an evaluation-only backend from received
// public key material: it can encrypt and evaluate but holds no secret key,
// so Decrypt panics — exactly the capability set of the untrusted server.
func NewRNSBackendFromKeys(params *ckks.Parameters, keys RNSPublicKeys, prng ring.PRNG) *RNSBackend {
	if prng == nil {
		prng = ring.NewCryptoPRNG()
	}
	provisioned := make(map[int]bool, len(keys.Rotations))
	slots := params.Slots()
	for _, k := range keys.Rotations {
		k = ((k % slots) + slots) % slots
		if k != 0 {
			provisioned[k] = true
		}
	}
	return &RNSBackend{
		params:      params,
		encoder:     ckks.NewEncoder(params),
		encryptor:   ckks.NewEncryptor(params, keys.PK, prng),
		decryptor:   nil,
		evaluator:   ckks.NewEvaluator(params, keys.RLK, keys.RTKS),
		provisioned: provisioned,
		pk:          keys.PK,
		rlk:         keys.RLK,
		rtks:        keys.RTKS,
	}
}

func (b *RNSBackend) Name() string { return "rns-ckks" }
func (b *RNSBackend) Slots() int   { return b.params.Slots() }

// Params exposes the parameter set (for harnesses and tests).
func (b *RNSBackend) Params() *ckks.Parameters { return b.params }

// ProvisionedRotations reports how many single-step rotation keys exist.
func (b *RNSBackend) ProvisionedRotations() int { return len(b.provisioned) }

func (b *RNSBackend) ct(c Ciphertext) *ckks.Ciphertext {
	v, ok := c.(*ckks.Ciphertext)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign ciphertext %T passed to rns backend", c))
	}
	return v
}

func (b *RNSBackend) pt(p Plaintext) *ckks.Plaintext {
	v, ok := p.(*ckks.Plaintext)
	if !ok {
		panic(fmt.Sprintf("hisa: foreign plaintext %T passed to rns backend", p))
	}
	return v
}

func (b *RNSBackend) Encode(m []float64, f float64) Plaintext {
	return b.encoder.Encode(m, f, b.params.MaxLevel())
}

func (b *RNSBackend) Decode(p Plaintext) []float64 {
	return b.encoder.Decode(b.pt(p))
}

func (b *RNSBackend) Encrypt(p Plaintext) Ciphertext {
	b.encMu.Lock()
	defer b.encMu.Unlock()
	return b.encryptor.Encrypt(b.pt(p))
}

func (b *RNSBackend) Decrypt(c Ciphertext) Plaintext {
	if b.decryptor == nil {
		panic("hisa: this backend holds no secret key (evaluation-only server instance)")
	}
	return b.decryptor.Decrypt(b.ct(c))
}

func (b *RNSBackend) Copy(c Ciphertext) Ciphertext { return b.ct(c).CopyNew() }

// Free returns a dead ciphertext's limb buffers to the ring arena, closing
// the pooled-allocation loop for callers that drop handles at a known point
// (benchmark loops, the serving engine's per-request temporaries). The
// caller asserts nothing else references the handle's polynomials; foreign
// handles are ignored, and a second Free of the same handle is a no-op.
func (b *RNSBackend) Free(h any) {
	if cc, ok := h.(*ckks.Ciphertext); ok {
		b.evaluator.Recycle(cc)
	}
}

func (b *RNSBackend) RotLeft(c Ciphertext, x int) Ciphertext {
	cc := b.ct(c)
	steps := RotationSteps(x, b.Slots(), func(k int) bool { return b.provisioned[k] })
	out := cc
	for _, s := range steps {
		out = b.evaluator.RotateLeft(out, s)
	}
	if out == cc {
		out = cc.CopyNew()
	}
	return out
}

func (b *RNSBackend) RotRight(c Ciphertext, x int) Ciphertext {
	return b.RotLeft(c, -x)
}

// RotLeftMany rotates c by every amount in ks with Halevi-Shoup hoisting:
// amounts whose provisioned-key decomposition is a single step share one
// digit decomposition of c, so the per-rotation cost drops to the key inner
// product. Amounts needing multiple steps (no exact key) fall back to the
// sequential path. Every output is bit-identical to RotLeft(c, ks[i]).
func (b *RNSBackend) RotLeftMany(c Ciphertext, ks []int) []Ciphertext {
	cc := b.ct(c)
	outs := make([]Ciphertext, len(ks))
	slots := b.Slots()
	var dec *ckks.HoistedDecomposition
	for i, x := range ks {
		steps := RotationSteps(x, slots, func(k int) bool { return b.provisioned[k] })
		switch len(steps) {
		case 0:
			outs[i] = cc.CopyNew()
		case 1:
			if dec == nil {
				dec = b.evaluator.HoistedDecompose(cc)
			}
			outs[i] = b.evaluator.RotateLeftHoisted(cc, dec, steps[0])
		default:
			outs[i] = b.RotLeft(c, x)
		}
	}
	if dec != nil {
		dec.Release()
	}
	return outs
}

func (b *RNSBackend) Add(c, c2 Ciphertext) Ciphertext { return b.evaluator.Add(b.ct(c), b.ct(c2)) }
func (b *RNSBackend) Sub(c, c2 Ciphertext) Ciphertext { return b.evaluator.Sub(b.ct(c), b.ct(c2)) }
func (b *RNSBackend) Mul(c, c2 Ciphertext) Ciphertext { return b.evaluator.Mul(b.ct(c), b.ct(c2)) }

// LazyRelinCapable marks the real lattice backend as supporting deferred
// relinearization (see hisa.LazyRelinBackend).
func (b *RNSBackend) LazyRelinCapable() bool { return true }

// MulNoRelin multiplies without the closing relinearization key-switch; the
// degree-2 result supports linear ops and a later Relinearize.
func (b *RNSBackend) MulNoRelin(c, c2 Ciphertext) Ciphertext {
	return b.evaluator.MulNoRelin(b.ct(c), b.ct(c2))
}

// Relinearize folds a lazy product back to degree 1.
func (b *RNSBackend) Relinearize(c Ciphertext) Ciphertext {
	return b.evaluator.Relinearize(b.ct(c))
}

// FusedRescaleCapable marks the real lattice backend as supporting the
// fused rescale-into-key-switch (see hisa.FusedRescaleBackend).
func (b *RNSBackend) FusedRescaleCapable() bool { return true }

// RelinearizeRescale relinearizes and rescales in one fused pass. The final
// prime drop rides inside the relinearization key switch (the decomposition
// runs at the post-rescale level and the rescale correction shares the
// mod-P correction's forward transforms); earlier drops of a multi-prime
// divisor run as plain rescales first, so the result is bit-identical to
// Relinearize(Rescale(c, x)) for every MaxRescale divisor.
func (b *RNSBackend) RelinearizeRescale(c Ciphertext, x *big.Int) Ciphertext {
	cc := b.ct(c)
	drops := b.dropsFor(cc, x)
	if drops == 0 {
		if cc.Degree() == 1 {
			return cc.CopyNew()
		}
		return b.evaluator.Relinearize(cc)
	}
	if drops == 1 {
		return b.evaluator.RelinearizeRescale(cc)
	}
	tmp := cc.CopyNew()
	b.evaluator.RescaleMany(tmp, drops-1)
	out := b.evaluator.RelinearizeRescale(tmp)
	b.evaluator.Recycle(tmp)
	return out
}

// dropsFor translates a MaxRescale divisor into a level-drop count,
// panicking on divisors that are not top-prime products (same contract as
// Rescale).
func (b *RNSBackend) dropsFor(cc *ckks.Ciphertext, x *big.Int) int {
	if x.Cmp(big.NewInt(1)) == 0 {
		return 0
	}
	prod := big.NewInt(1)
	drops := 0
	for lvl := cc.Level(); lvl >= 1; lvl-- {
		prod.Mul(prod, new(big.Int).SetUint64(b.params.Qi(lvl)))
		drops++
		if prod.Cmp(x) == 0 {
			return drops
		}
		if prod.Cmp(x) > 0 {
			break
		}
	}
	panic(fmt.Sprintf("hisa: rescale divisor %v is not a top-prime product at level %d", x, cc.Level()))
}

func (b *RNSBackend) AddPlain(c Ciphertext, p Plaintext) Ciphertext {
	return b.evaluator.AddPlain(b.ct(c), b.pt(p))
}

func (b *RNSBackend) SubPlain(c Ciphertext, p Plaintext) Ciphertext {
	return b.evaluator.SubPlain(b.ct(c), b.pt(p))
}

func (b *RNSBackend) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	return b.evaluator.MulPlain(b.ct(c), b.pt(p))
}

func (b *RNSBackend) AddScalar(c Ciphertext, x float64) Ciphertext {
	return b.evaluator.AddScalar(b.ct(c), x)
}

func (b *RNSBackend) SubScalar(c Ciphertext, x float64) Ciphertext {
	return b.evaluator.AddScalar(b.ct(c), -x)
}

func (b *RNSBackend) MulScalar(c Ciphertext, x float64, f float64) Ciphertext {
	return b.evaluator.MulScalar(b.ct(c), x, f)
}

// MaxRescale returns the product of the next chain primes (top down) that
// fits under ub — the RNS-CKKS divisor rule.
func (b *RNSBackend) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	cc := b.ct(c)
	prod := big.NewInt(1)
	next := new(big.Int)
	for lvl := cc.Level(); lvl >= 1; lvl-- {
		next.Mul(prod, new(big.Int).SetUint64(b.params.Qi(lvl)))
		if next.Cmp(ub) > 0 {
			break
		}
		prod.Set(next)
	}
	return prod
}

// Rescale drops as many levels as the divisor covers. The divisor must be a
// product of the ciphertext's top chain primes, i.e. a value previously
// returned by MaxRescale.
func (b *RNSBackend) Rescale(c Ciphertext, x *big.Int) Ciphertext {
	cc := b.ct(c)
	if x.Cmp(big.NewInt(1)) == 0 {
		return cc.CopyNew()
	}
	prod := big.NewInt(1)
	drops := 0
	for lvl := cc.Level(); lvl >= 1; lvl-- {
		prod.Mul(prod, new(big.Int).SetUint64(b.params.Qi(lvl)))
		drops++
		if prod.Cmp(x) == 0 {
			out := cc.CopyNew()
			b.evaluator.RescaleMany(out, drops)
			return out
		}
		if prod.Cmp(x) > 0 {
			break
		}
	}
	panic(fmt.Sprintf("hisa: rescale divisor %v is not a top-prime product at level %d", x, cc.Level()))
}

func (b *RNSBackend) Scale(c Ciphertext) float64 { return b.ct(c).Scale }

// LevelOf exposes the ciphertext level (for tests and harnesses).
func (b *RNSBackend) LevelOf(c Ciphertext) int { return b.ct(c).Level() }

// BootstrapCapable reports whether a bootstrapper is attached (RNSConfig.
// Bootstrap at construction, or EnableBootstrap afterwards).
func (b *RNSBackend) BootstrapCapable() bool { return b.bt != nil }

func (b *RNSBackend) boot() *boot.Bootstrapper {
	if b.bt == nil {
		panic("hisa: rns backend built without RNSConfig.Bootstrap")
	}
	return b.bt
}

// BootSpec exposes the attached bootstrap arithmetic (for harnesses).
func (b *RNSBackend) BootSpec() boot.Spec { return b.boot().Spec() }

// Bootstrap runs the real CKKS bootstrap pipeline on c. Degree-2 inputs are
// relinearized first (the pipeline's mod-raise requires degree 1). Pipeline
// errors are parameterization bugs, not data-dependent conditions, so they
// panic like every other misuse of the backend.
func (b *RNSBackend) Bootstrap(c Ciphertext) Ciphertext {
	bt := b.boot()
	cc := b.ct(c)
	var tmp *ckks.Ciphertext
	if cc.Degree() > 1 {
		tmp = b.evaluator.Relinearize(cc)
		cc = tmp
	}
	out, err := bt.Bootstrap(cc)
	if tmp != nil {
		b.evaluator.Recycle(tmp)
	}
	if err != nil {
		panic("hisa: " + err.Error())
	}
	// Snap the output scale to the parameter default Δ — the scale the
	// compiler's analysis tracks at every refresh point (bootstrap
	// compilations require prime-aligned scales, so analysis scales are
	// exactly Δ at op boundaries). The pipeline re-anchors the scale inside
	// EvalMod, so out.Scale sits within ~1e-6 of Δ regardless of how much
	// upward drift the input accumulated: chain primes sit a hair below
	// their power-of-two targets, and every ciphertext squaring doubles a
	// lineage's relative drift, so deep networks arrive well off Δ.
	// Redeclaring absorbs the remaining ~1e-6 gap as a multiplicative
	// message error far inside the bootstrap epsilon and resets the
	// lineage's drift at each refresh, keeping it bounded at any depth. A
	// large deviation means the chain and spec disagree, which is a bug,
	// not data.
	delta := b.evaluator.Params().DefaultScale()
	if ratio := out.Scale / delta; ratio < 0.999 || ratio > 1.001 {
		panic(fmt.Sprintf("hisa: bootstrap scale drifted off the default scale %g -> %g (chain/spec mismatch)", delta, out.Scale))
	}
	out.Scale = delta
	return out
}

// BudgetOf reports the ciphertext's RNS level — exactly its remaining
// rescale count.
func (b *RNSBackend) BudgetOf(c Ciphertext) int { return b.ct(c).Level() }

// FreshBudget is the level a bootstrapped ciphertext lands at.
func (b *RNSBackend) FreshBudget() int { return b.boot().FreshLevel() }

// DropToFresh lowers a ciphertext (typically a fresh encryption at the top
// of the bootstrap chain) to the fresh level, so runtime budgets track the
// compiler's placement model from the first op.
func (b *RNSBackend) DropToFresh(c Ciphertext) Ciphertext {
	cc := b.ct(c)
	out := cc.CopyNew()
	if fresh := b.boot().FreshLevel(); out.Level() > fresh {
		b.evaluator.DropToLevel(out, fresh)
	}
	return out
}

// Conjugate conjugates every slot via the Galois conjugation automorphism.
// The conjugation key is always part of the rotation key set this backend
// was built with, on both full and evaluation-only instances.
func (b *RNSBackend) Conjugate(c Ciphertext) Ciphertext {
	return b.evaluator.Conjugate(b.ct(c))
}

// EncryptC encrypts a complex slot vector at scale f.
func (b *RNSBackend) EncryptC(m []complex128, f float64) Ciphertext {
	pt := b.encoder.EncodeComplex(m, f, b.params.MaxLevel())
	b.encMu.Lock()
	defer b.encMu.Unlock()
	return b.encryptor.Encrypt(pt)
}

// DecryptC decrypts both slot components.
func (b *RNSBackend) DecryptC(c Ciphertext) []complex128 {
	if b.decryptor == nil {
		panic("hisa: this backend holds no secret key (evaluation-only server instance)")
	}
	return b.encoder.DecodeComplex(b.decryptor.Decrypt(b.ct(c)))
}

// AddPlainC adds a complex vector, encoding it at the ciphertext's scale and
// level so the addition is scale-neutral. Slot-constant vectors — the shape
// every bias and polynomial constant takes under complex packing — skip the
// FFT+NTT encode entirely: a constant is the two-term polynomial
// a + b·X^(N/2), added pointwise (see Evaluator.AddScalarC).
func (b *RNSBackend) AddPlainC(c Ciphertext, m []complex128) Ciphertext {
	cc := b.ct(c)
	if len(m) > 0 {
		constant := true
		for _, v := range m[1:] {
			if v != m[0] {
				constant = false
				break
			}
		}
		if constant {
			return b.evaluator.AddScalarC(cc, m[0])
		}
	}
	pt := b.encoder.EncodeComplex(m, cc.Scale, cc.Level())
	return b.evaluator.AddPlain(cc, pt)
}

// MulScalarC multiplies every slot by the complex constant x at scale f,
// decomposed as re(x)·c + i·(im(x)·c): two constant-polynomial scalar
// multiplications plus an exact monomial multiply-by-i — no plaintext
// encoding and no key switch.
func (b *RNSBackend) MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext {
	cc := b.ct(c)
	re, im := real(x), imag(x)
	switch {
	case im == 0:
		return b.evaluator.MulScalar(cc, re, f)
	case re == 0:
		return b.evaluator.MulByI(b.evaluator.MulScalar(cc, im, f))
	default:
		rp := b.evaluator.MulScalar(cc, re, f)
		ip := b.evaluator.MulByI(b.evaluator.MulScalar(cc, im, f))
		return b.evaluator.Add(rp, ip)
	}
}
