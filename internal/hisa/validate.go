package hisa

import (
	"fmt"

	"chet/internal/ckks"
	"chet/internal/ring"
)

// polyShape checks that a polynomial has exactly `rows` RNS rows of the
// ring degree n. The ckks unmarshalers guarantee structural sanity (no nil
// rows, plausible sizes); this pins the shape to one concrete parameter
// set, which the unmarshalers cannot know.
func polyShape(p *ring.Poly, rows, n int, what string) error {
	if p == nil {
		return fmt.Errorf("hisa: %s is nil", what)
	}
	if len(p.Coeffs) != rows {
		return fmt.Errorf("hisa: %s has %d RNS rows, parameters imply %d", what, len(p.Coeffs), rows)
	}
	for i, row := range p.Coeffs {
		if len(row) != n {
			return fmt.Errorf("hisa: %s row %d has %d coefficients, ring degree is %d", what, i, len(row), n)
		}
	}
	return nil
}

func switchingKeyShape(swk *ckks.SwitchingKey, fullRows, n int, what string) error {
	if swk == nil {
		return fmt.Errorf("hisa: %s is nil", what)
	}
	if len(swk.B) == 0 || len(swk.B) != len(swk.A) {
		return fmt.Errorf("hisa: %s has mismatched digit counts (%d B, %d A)", what, len(swk.B), len(swk.A))
	}
	for i := range swk.B {
		if err := polyShape(swk.B[i], fullRows, n, fmt.Sprintf("%s digit %d (B)", what, i)); err != nil {
			return err
		}
		if err := polyShape(swk.A[i], fullRows, n, fmt.Sprintf("%s digit %d (A)", what, i)); err != nil {
			return err
		}
	}
	return nil
}

// ValidateRNSKeys checks received public key material against a parameter
// set before it is handed to an evaluator: RNS row counts, ring degrees,
// and Galois elements must all match, and every rotation amount the client
// claims must have a corresponding key. Deserialized keys are structurally
// sound but shape-unconstrained; an evaluation server calls this at
// session-open so a mismatched or corrupted upload is rejected with an
// error instead of panicking mid-inference.
func ValidateRNSKeys(params *ckks.Parameters, keys RNSPublicKeys) error {
	if keys.PK == nil || keys.RLK == nil || keys.RTKS == nil {
		return fmt.Errorf("hisa: incomplete key material (pk=%v rlk=%v rtks=%v)",
			keys.PK != nil, keys.RLK != nil, keys.RTKS != nil)
	}
	n := params.N()
	chainRows := len(params.QChain())
	fullRows := chainRows + 1 // chain primes plus the key-switching special prime

	// Public key: chain primes only.
	if err := polyShape(keys.PK.B, chainRows, n, "public key B"); err != nil {
		return err
	}
	if err := polyShape(keys.PK.A, chainRows, n, "public key A"); err != nil {
		return err
	}

	if err := switchingKeyShape(keys.RLK.Key, fullRows, n, "relinearization key"); err != nil {
		return err
	}

	if keys.RTKS.Keys == nil {
		return fmt.Errorf("hisa: rotation key set has no key map")
	}
	twoN := uint64(2 * n)
	for g, swk := range keys.RTKS.Keys {
		if g%2 == 0 || g == 0 || g >= twoN {
			return fmt.Errorf("hisa: invalid Galois element %d (ring degree %d)", g, n)
		}
		if err := switchingKeyShape(swk, fullRows, n, fmt.Sprintf("rotation key (Galois %d)", g)); err != nil {
			return err
		}
	}

	// Every claimed rotation amount must be realized by an uploaded key,
	// otherwise the evaluator would fail the first time the circuit uses it.
	r := params.Ring()
	slots := params.Slots()
	for _, k := range keys.Rotations {
		k = ((k % slots) + slots) % slots
		if k == 0 {
			continue
		}
		g := r.GaloisElementForRotation(k)
		if _, ok := keys.RTKS.Keys[g]; !ok {
			return fmt.Errorf("hisa: claimed rotation %d has no key (Galois element %d)", k, g)
		}
	}
	return nil
}
