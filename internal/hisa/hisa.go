// Package hisa defines the Homomorphic Instruction Set Architecture of the
// CHET compiler (Table 2 of the paper): a scheme-agnostic interface between
// the homomorphic tensor runtime and an underlying FHE scheme. Three
// executable backends are provided — Ref (a plaintext functional oracle),
// Sim (HEAAN-style CKKS with a power-of-two modulus, executed as a
// high-fidelity mock scheme), and RNS (the real RNS-CKKS lattice scheme of
// internal/ckks). The CHET compiler adds further backends that reinterpret
// ciphertexts as dataflow facts (modulus consumption, cost, rotation sets).
package hisa

import "math/big"

// Ciphertext is an opaque handle to an encrypted vector. Its concrete type
// is owned by the backend: this is the paper's reinterpretable "ct"
// datatype.
type Ciphertext any

// Plaintext is an opaque handle to an encoded (unencrypted) vector.
type Plaintext any

// Backend implements the HISA primitives. All operations are functional
// (inputs are never mutated) so the same kernel source can be executed under
// value, cryptographic, and analysis interpretations.
//
// Concurrency contract: the executable backends (Ref, Sim, RNS, and the
// Meter wrapper) are safe for concurrent op execution — any number of
// goroutines may issue Encode/arith/rotate/rescale calls on one backend,
// including on shared ciphertext handles, because ciphertexts are immutable
// once produced. Results are deterministic functions of their inputs, so a
// parallel schedule that preserves the per-output accumulation order is
// bit-identical to the serial one. Encrypt/Decrypt draw from a (possibly
// seeded) PRNG and are serialized internally; concurrent callers therefore
// race only on *which* random stream element they consume, not on memory.
// The compiler's analysis interpretations (core.Analysis) are exempt from
// this contract: they accumulate dataflow facts without locks and must be
// executed serially (Workers == 1), which the compiler guarantees.
type Backend interface {
	// Name identifies the backend ("ref", "ckks-sim", "rns-ckks", ...).
	Name() string

	// Slots returns the SIMD width s (N/2 for CKKS-family schemes).
	Slots() int

	// Encrypt encrypts plaintext p into a ciphertext.
	Encrypt(p Plaintext) Ciphertext
	// Decrypt decrypts ciphertext c into a plaintext.
	Decrypt(c Ciphertext) Plaintext
	// Copy makes an independent copy of ciphertext c.
	Copy(c Ciphertext) Ciphertext
	// Free releases any resources associated with the handle.
	Free(h any)

	// Encode encodes a vector of reals (len <= Slots, zero-padded) into a
	// plaintext with fixed-point scaling factor f.
	Encode(m []float64, f float64) Plaintext
	// Decode decodes a plaintext back into a vector of reals.
	Decode(p Plaintext) []float64

	// RotLeft rotates ciphertext c left by x slots; RotRight by x right.
	RotLeft(c Ciphertext, x int) Ciphertext
	RotRight(c Ciphertext, x int) Ciphertext

	Add(c, c2 Ciphertext) Ciphertext
	AddPlain(c Ciphertext, p Plaintext) Ciphertext
	AddScalar(c Ciphertext, x float64) Ciphertext

	Sub(c, c2 Ciphertext) Ciphertext
	SubPlain(c Ciphertext, p Plaintext) Ciphertext
	SubScalar(c Ciphertext, x float64) Ciphertext

	Mul(c, c2 Ciphertext) Ciphertext
	MulPlain(c Ciphertext, p Plaintext) Ciphertext
	// MulScalar multiplies every slot by x, encoded at scale f.
	MulScalar(c Ciphertext, x float64, f float64) Ciphertext

	// Rescale rescales c by the divisor x, which must have been obtained
	// from MaxRescale. Undefined otherwise.
	Rescale(c Ciphertext, x *big.Int) Ciphertext
	// MaxRescale returns the largest divisor d <= ub that c can be rescaled
	// by (1 if none).
	MaxRescale(c Ciphertext, ub *big.Int) *big.Int

	// Scale returns the current fixed-point scale of c.
	Scale(c Ciphertext) float64
}

// ConjugateBackend is an optional backend capability: backends whose slot
// algebra is genuinely complex (CKKS-family schemes, where slots are the
// canonical embedding's complex coordinates) expose conjugation and
// complex-valued encode/decode. The htc complex packing mode — two batch
// lanes sharing one slot as real and imaginary parts — is gated on it.
//
// All complex vectors are slot-indexed like the real Encode/Decode vectors;
// the real Backend operations act on complex slots exactly as the underlying
// scheme does (Add/Sub/rotations are componentwise, Mul/MulPlain are complex
// slot products, real plaintexts and scalars multiply both components).
type ConjugateBackend interface {
	// Conjugate conjugates every slot (a key-switching automorphism on
	// lattice backends, so it costs about as much as one rotation).
	Conjugate(c Ciphertext) Ciphertext

	// EncryptC encrypts a complex slot vector (len <= Slots, zero-padded)
	// at fixed-point scale f.
	EncryptC(m []complex128, f float64) Ciphertext
	// DecryptC decrypts both slot components. Panics on evaluation-only
	// instances, exactly like Decrypt.
	DecryptC(c Ciphertext) []complex128

	// AddPlainC adds a complex vector, encoded at the ciphertext's scale
	// (so the addition is scale-neutral, like AddScalar).
	AddPlainC(c Ciphertext, m []complex128) Ciphertext
	// MulScalarC multiplies every slot by the complex constant x encoded at
	// scale f; the result scale is Scale(c) * f.
	MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext
}

// AsConjugate returns b as a ConjugateBackend when it (not an inner unwrap —
// wrappers must forward the capability to keep their bookkeeping) supports
// complex slot operations.
func AsConjugate(b Backend) (ConjugateBackend, bool) {
	cb, ok := b.(ConjugateBackend)
	return cb, ok
}

// LazyRelinBackend is an optional backend capability: backends whose
// ciphertext-ciphertext products carry an explicit relinearization step can
// expose it, letting kernels keep a product at degree 2 through linear
// operations (Add, Sub, MulScalar, MulScalarC) and fold several products
// into a single relinearization — the lazy-relinearize half of the
// graph-level scale pass. Semantics: Relinearize(MulNoRelin(x, y)) is
// exactly Mul(x, y), and linear ops on degree-2 ciphertexts act
// componentwise. Degree-2 ciphertexts must be relinearized before
// rotations, conjugation, rescaling, or decryption.
type LazyRelinBackend interface {
	// LazyRelinCapable reports whether the instance actually supports the
	// capability. Wrappers (Meter, telemetry.Tracer) forward these methods
	// unconditionally to keep their bookkeeping, so the interface assertion
	// alone is not sufficient — AsLazyRelin checks this flag too.
	LazyRelinCapable() bool
	// MulNoRelin multiplies without the closing relinearization.
	MulNoRelin(c, c2 Ciphertext) Ciphertext
	// Relinearize reduces a MulNoRelin product to a normal ciphertext; it
	// passes already-linear ciphertexts through unchanged.
	Relinearize(c Ciphertext) Ciphertext
}

// AsLazyRelin returns b as a LazyRelinBackend when b (including every layer
// of a wrapper chain) supports deferred relinearization. Callers fall back
// to plain Mul when it reports false.
func AsLazyRelin(b Backend) (LazyRelinBackend, bool) {
	lb, ok := b.(LazyRelinBackend)
	if !ok || !lb.LazyRelinCapable() {
		return nil, false
	}
	return lb, true
}

// FusedRescaleBackend is an optional backend capability: backends whose
// rescale and relinearization can share one pass over the ciphertext limbs
// (the RNS backend fuses the division by the top prime into the
// relinearization key switch, running the decomposition at the post-rescale
// level) expose the fused form. Semantics: RelinearizeRescale(c, x) is
// exactly Relinearize(Rescale(c, x)) — bit-identical on lattice backends —
// with x obtained from MaxRescale like any rescale divisor (x = 1 degrades
// to plain Relinearize).
type FusedRescaleBackend interface {
	// FusedRescaleCapable reports whether the instance actually supports
	// the capability; wrappers forward the methods unconditionally, so
	// AsFusedRescale checks this flag too.
	FusedRescaleCapable() bool
	// RelinearizeRescale relinearizes c (a MulNoRelin product or a linear
	// combination of them) and rescales it by divisor x in one fused pass.
	RelinearizeRescale(c Ciphertext, x *big.Int) Ciphertext
}

// AsFusedRescale returns b as a FusedRescaleBackend when b (including every
// layer of a wrapper chain) supports the fused rescale-into-key-switch.
// Callers fall back to Rescale followed by Relinearize when it reports
// false.
func AsFusedRescale(b Backend) (FusedRescaleBackend, bool) {
	fb, ok := b.(FusedRescaleBackend)
	if !ok || !fb.FusedRescaleCapable() {
		return nil, false
	}
	return fb, true
}

// BootstrapBackend is an optional backend capability: backends that can
// refresh an exhausted ciphertext — one with no multiplicative budget left —
// into an equivalent ciphertext with a fresh budget implement it. On the RNS
// backend this is real CKKS bootstrapping (internal/boot); on the mock
// backends it is the corresponding bookkeeping (budget reset plus the
// bootstrap's approximation noise), so the compiler's bootstrap placement can
// be validated cheaply before a lattice run.
//
// Budgets are measured in levels: the number of ~PrimeBits rescales a
// ciphertext can still absorb. Bootstrap's output always has FreshBudget
// levels; semantically it is the identity on the message within the
// backend's documented precision (see internal/boot for the error budget of
// the real pipeline).
type BootstrapBackend interface {
	// BootstrapCapable reports whether the instance actually supports the
	// capability. Wrappers (Meter, telemetry.Tracer, Refresher) forward these
	// methods unconditionally to keep their bookkeeping, so the interface
	// assertion alone is not sufficient — AsBootstrap checks this flag too.
	BootstrapCapable() bool
	// Bootstrap refreshes c to FreshBudget levels. The input is unchanged
	// and remains owned by the caller.
	Bootstrap(c Ciphertext) Ciphertext
	// BudgetOf reports the remaining multiplicative budget of c in levels.
	BudgetOf(c Ciphertext) int
	// FreshBudget is the budget of a just-bootstrapped ciphertext.
	FreshBudget() int
	// DropToFresh lowers a ciphertext to at most FreshBudget levels (the
	// identity when it is already at or below). Fresh encryptions enter at
	// the top of the bootstrap chain; dropping them to the fresh level makes
	// every ciphertext's budget match the compiler's placement model.
	DropToFresh(c Ciphertext) Ciphertext
}

// AsBootstrap returns b as a BootstrapBackend when b (including every layer
// of a wrapper chain) supports ciphertext refreshing.
func AsBootstrap(b Backend) (BootstrapBackend, bool) {
	bb, ok := FindCapability[BootstrapBackend](b)
	if !ok || !bb.BootstrapCapable() {
		return nil, false
	}
	return bb, true
}

// RotateManyBackend is an optional backend capability: backends that can
// amortize shared work across a batch of rotations of one ciphertext
// (Halevi-Shoup hoisting in the RNS backend) implement it. RotLeftMany must
// return exactly what the corresponding sequence of RotLeft calls would —
// element i is bit-identical to RotLeft(c, ks[i]) — so callers may batch
// opportunistically without changing results.
type RotateManyBackend interface {
	RotLeftMany(c Ciphertext, ks []int) []Ciphertext
}

// RotLeftMany rotates c left by every amount in ks, using the backend's
// batch capability when present and falling back to sequential RotLeft
// calls otherwise.
func RotLeftMany(b Backend, c Ciphertext, ks []int) []Ciphertext {
	if rb, ok := b.(RotateManyBackend); ok {
		return rb.RotLeftMany(c, ks)
	}
	outs := make([]Ciphertext, len(ks))
	for i, k := range ks {
		outs[i] = b.RotLeft(c, k)
	}
	return outs
}

// RotationSteps decomposes a left rotation by x (mod slots) into the
// primitive rotations a backend will actually execute given the provisioned
// rotation keys. With the exact key available the result is {x}; otherwise
// x is decomposed into the power-of-two rotations that FHE libraries
// provision by default (the behaviour CHET's rotation-keys selection pass
// improves on). Rotation by 0 yields no steps.
func RotationSteps(x, slots int, available func(int) bool) []int {
	x = ((x % slots) + slots) % slots
	if x == 0 {
		return nil
	}
	if available == nil || available(x) {
		return []int{x}
	}
	var steps []int
	for bit := 1; bit < slots; bit <<= 1 {
		if x&bit != 0 {
			steps = append(steps, bit)
		}
	}
	return steps
}

// Unwrapper is implemented by wrapper backends (Meter, telemetry.Tracer)
// that delegate to an inner backend. FindCapability walks Unwrap chains so
// optional capabilities survive any wrapping order.
type Unwrapper interface {
	Unwrap() Backend
}

// FindCapability reports the first backend in b's wrapper chain (b itself,
// then successive Unwrap results) that satisfies the capability type T.
// Wrappers that forward a capability (e.g. Meter's RotLeftMany) are found
// before their inner backend, preserving the wrapper's bookkeeping.
func FindCapability[T any](b Backend) (T, bool) {
	for b != nil {
		if t, ok := any(b).(T); ok {
			return t, true
		}
		u, ok := b.(Unwrapper)
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	var zero T
	return zero, false
}

// SubScalarVia expresses subtraction of a scalar through AddScalar, for
// backends where that is the natural implementation.
func SubScalarVia(b Backend, c Ciphertext, x float64) Ciphertext {
	return b.AddScalar(c, -x)
}
