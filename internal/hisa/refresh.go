package hisa

import (
	"fmt"
	"math"
	"math/big"
	"sync/atomic"
)

// Refresher wraps a bootstrap-capable backend and keeps every ciphertext's
// multiplicative budget above a floor: before each budget-consuming
// operation (ciphertext, plaintext, and scalar multiplications) it
// bootstraps any operand whose remaining budget has fallen below the floor.
// Fresh encryptions are dropped to the backend's fresh level, so runtime
// budgets track the compiler's placement model from the first op — the
// number of bootstraps the Refresher performs on a compiled circuit equals
// the number the placement pass predicted.
//
// The Refresher frees every intermediate it creates (bootstrapped operands,
// pre-drop encryptions) and never frees caller-owned handles, preserving the
// backend's ownership discipline. Like the backends it wraps, it is safe for
// concurrent op execution; the bootstrap tally is atomic.
type Refresher struct {
	inner Backend
	bb    BootstrapBackend
	floor int

	bootstraps atomic.Int64
	// minHeadroom is the low-water mark of (budget - floor) observed at
	// refresh decisions — how close any lineage has come to (or gone below)
	// the refresh trigger. Sentinel math.MaxInt64 means "no multiplicative
	// op yet".
	minHeadroom atomic.Int64
}

// NewRefresher wraps inner, which must be bootstrap-capable (possibly
// through other wrappers — a Meter below the Refresher tallies the
// bootstraps it triggers). floor is the minimum budget, in levels, an
// operand must have before a multiplicative op; 0 selects 1, the smallest
// budget that still admits the op's own rescale.
func NewRefresher(inner Backend, floor int) (*Refresher, error) {
	bb, ok := AsBootstrap(inner)
	if !ok {
		return nil, fmt.Errorf("hisa: backend %s is not bootstrap-capable", inner.Name())
	}
	if floor <= 0 {
		floor = 1
	}
	r := &Refresher{inner: inner, bb: bb, floor: floor}
	r.minHeadroom.Store(math.MaxInt64)
	return r, nil
}

// Bootstraps reports how many bootstraps the Refresher has performed
// (triggered refreshes plus explicit Bootstrap calls).
func (r *Refresher) Bootstraps() int { return int(r.bootstraps.Load()) }

// Floor reports the configured minimum budget.
func (r *Refresher) Floor() int { return r.floor }

// MinHeadroom reports the low-water mark of (budget - floor) seen at
// refresh decisions — the closest any multiplicative operand has come to
// the refresh trigger (zero or negative means a refresh fired). ok is
// false until the first multiplicative op.
func (r *Refresher) MinHeadroom() (headroom int, ok bool) {
	v := r.minHeadroom.Load()
	if v == math.MaxInt64 {
		return 0, false
	}
	return int(v), true
}

// observeHeadroom folds one refresh decision into the low-water mark.
func (r *Refresher) observeHeadroom(h int64) {
	for {
		cur := r.minHeadroom.Load()
		if h >= cur {
			return
		}
		if r.minHeadroom.CompareAndSwap(cur, h) {
			return
		}
	}
}

func (r *Refresher) Name() string { return r.inner.Name() + "+refresh" }
func (r *Refresher) Slots() int   { return r.inner.Slots() }

// Unwrap exposes the wrapped backend for capability discovery.
func (r *Refresher) Unwrap() Backend { return r.inner }

// refreshed bootstraps c when its budget is below the floor. The second
// return reports whether the result is a Refresher-owned intermediate the
// caller must free after use.
func (r *Refresher) refreshed(c Ciphertext) (Ciphertext, bool) {
	budget := r.bb.BudgetOf(c)
	r.observeHeadroom(int64(budget - r.floor))
	if budget >= r.floor {
		return c, false
	}
	out := r.bb.Bootstrap(c)
	r.bootstraps.Add(1)
	return out, true
}

// Encrypt drops the fresh ciphertext to the backend's fresh level (see the
// type comment).
func (r *Refresher) Encrypt(p Plaintext) Ciphertext {
	raw := r.inner.Encrypt(p)
	out := r.bb.DropToFresh(raw)
	r.inner.Free(raw)
	return out
}

func (r *Refresher) Decrypt(c Ciphertext) Plaintext { return r.inner.Decrypt(c) }
func (r *Refresher) Copy(c Ciphertext) Ciphertext   { return r.inner.Copy(c) }
func (r *Refresher) Free(h any)                     { r.inner.Free(h) }

func (r *Refresher) Encode(m []float64, f float64) Plaintext { return r.inner.Encode(m, f) }
func (r *Refresher) Decode(p Plaintext) []float64            { return r.inner.Decode(p) }

func (r *Refresher) RotLeft(c Ciphertext, x int) Ciphertext  { return r.inner.RotLeft(c, x) }
func (r *Refresher) RotRight(c Ciphertext, x int) Ciphertext { return r.inner.RotRight(c, x) }

// RotLeftMany forwards the batch capability so hoisting survives wrapping.
func (r *Refresher) RotLeftMany(c Ciphertext, ks []int) []Ciphertext {
	return RotLeftMany(r.inner, c, ks)
}

func (r *Refresher) Add(c, c2 Ciphertext) Ciphertext { return r.inner.Add(c, c2) }
func (r *Refresher) Sub(c, c2 Ciphertext) Ciphertext { return r.inner.Sub(c, c2) }

func (r *Refresher) AddPlain(c Ciphertext, p Plaintext) Ciphertext { return r.inner.AddPlain(c, p) }
func (r *Refresher) SubPlain(c Ciphertext, p Plaintext) Ciphertext { return r.inner.SubPlain(c, p) }
func (r *Refresher) AddScalar(c Ciphertext, x float64) Ciphertext  { return r.inner.AddScalar(c, x) }
func (r *Refresher) SubScalar(c Ciphertext, x float64) Ciphertext  { return r.inner.SubScalar(c, x) }

func (r *Refresher) Mul(c, c2 Ciphertext) Ciphertext {
	a, fa := r.refreshed(c)
	b, fb := a, false
	if c2 != c {
		b, fb = r.refreshed(c2)
	}
	out := r.inner.Mul(a, b)
	if fa {
		r.inner.Free(a)
	}
	if fb {
		r.inner.Free(b)
	}
	return out
}

func (r *Refresher) MulPlain(c Ciphertext, p Plaintext) Ciphertext {
	a, fa := r.refreshed(c)
	out := r.inner.MulPlain(a, p)
	if fa {
		r.inner.Free(a)
	}
	return out
}

func (r *Refresher) MulScalar(c Ciphertext, x float64, f float64) Ciphertext {
	a, fa := r.refreshed(c)
	out := r.inner.MulScalar(a, x, f)
	if fa {
		r.inner.Free(a)
	}
	return out
}

func (r *Refresher) Rescale(c Ciphertext, x *big.Int) Ciphertext { return r.inner.Rescale(c, x) }

func (r *Refresher) MaxRescale(c Ciphertext, ub *big.Int) *big.Int {
	return r.inner.MaxRescale(c, ub)
}

func (r *Refresher) Scale(c Ciphertext) float64 { return r.inner.Scale(c) }

// lazyInner asserts the wrapped backend's deferred-relinearization
// capability; LazyRelinCapable gates callers before they reach it.
func (r *Refresher) lazyInner() LazyRelinBackend {
	lb, ok := r.inner.(LazyRelinBackend)
	if !ok {
		panic("hisa: backend " + r.inner.Name() + " does not support deferred relinearization")
	}
	return lb
}

func (r *Refresher) LazyRelinCapable() bool {
	lb, ok := r.inner.(LazyRelinBackend)
	return ok && lb.LazyRelinCapable()
}

// MulNoRelin refreshes like Mul: the budget decision happens at the
// multiplication, not at the deferred relinearization.
func (r *Refresher) MulNoRelin(c, c2 Ciphertext) Ciphertext {
	a, fa := r.refreshed(c)
	b, fb := a, false
	if c2 != c {
		b, fb = r.refreshed(c2)
	}
	out := r.lazyInner().MulNoRelin(a, b)
	if fa {
		r.inner.Free(a)
	}
	if fb {
		r.inner.Free(b)
	}
	return out
}

func (r *Refresher) Relinearize(c Ciphertext) Ciphertext { return r.lazyInner().Relinearize(c) }

func (r *Refresher) FusedRescaleCapable() bool {
	fb, ok := r.inner.(FusedRescaleBackend)
	return ok && fb.FusedRescaleCapable()
}

// RelinearizeRescale forwards: its input is a product whose operands were
// already refreshed at MulNoRelin time.
func (r *Refresher) RelinearizeRescale(c Ciphertext, x *big.Int) Ciphertext {
	fb, ok := r.inner.(FusedRescaleBackend)
	if !ok {
		panic("hisa: backend " + r.inner.Name() + " does not support fused rescale")
	}
	return fb.RelinearizeRescale(c, x)
}

// conjInner asserts the wrapped backend's complex capability.
func (r *Refresher) conjInner() ConjugateBackend {
	cb, ok := r.inner.(ConjugateBackend)
	if !ok {
		panic("hisa: backend " + r.inner.Name() + " does not support complex slot operations")
	}
	return cb
}

func (r *Refresher) Conjugate(c Ciphertext) Ciphertext { return r.conjInner().Conjugate(c) }

// EncryptC drops to the fresh level like Encrypt.
func (r *Refresher) EncryptC(m []complex128, f float64) Ciphertext {
	raw := r.conjInner().EncryptC(m, f)
	out := r.bb.DropToFresh(raw)
	r.inner.Free(raw)
	return out
}

func (r *Refresher) DecryptC(c Ciphertext) []complex128 { return r.conjInner().DecryptC(c) }

func (r *Refresher) AddPlainC(c Ciphertext, m []complex128) Ciphertext {
	return r.conjInner().AddPlainC(c, m)
}

func (r *Refresher) MulScalarC(c Ciphertext, x complex128, f float64) Ciphertext {
	a, fa := r.refreshed(c)
	out := r.conjInner().MulScalarC(a, x, f)
	if fa {
		r.inner.Free(a)
	}
	return out
}

// BootstrapCapable: the Refresher is itself bootstrap-capable; explicit
// Bootstrap calls count toward its tally like triggered ones.
func (r *Refresher) BootstrapCapable() bool { return true }

func (r *Refresher) Bootstrap(c Ciphertext) Ciphertext {
	r.bootstraps.Add(1)
	return r.bb.Bootstrap(c)
}

func (r *Refresher) BudgetOf(c Ciphertext) int { return r.bb.BudgetOf(c) }

func (r *Refresher) FreshBudget() int { return r.bb.FreshBudget() }

func (r *Refresher) DropToFresh(c Ciphertext) Ciphertext { return r.bb.DropToFresh(c) }
