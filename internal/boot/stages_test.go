package boot

import (
	"math"
	"math/big"
	"testing"

	"chet/internal/ckks"
)

// centeredCoeffs decrypts ct and returns its centered integer coefficients
// as float64 (lossy above 2^53, fine for diagnostics).
func centeredCoeffs(ctx *bootCtx, ct *ckks.Ciphertext) []float64 {
	pt := ctx.decr.Decrypt(ct)
	r := ctx.params.Ring()
	tmp := r.NewPoly(ct.Lvl)
	tmp.CopyLevel(pt.Value, ct.Lvl)
	r.InvNTT(tmp, ct.Lvl)
	big := r.PolyToBigintCentered(tmp, ct.Lvl)
	out := make([]float64, len(big))
	for i, b := range big {
		f, _ := new(bigFloat).SetInt(b).Float64()
		out[i] = f
	}
	return out
}

type bigFloat = big.Float

func decodeSlots(ctx *bootCtx, ct *ckks.Ciphertext) []complex128 {
	return ctx.enc.DecodeComplex(ctx.decr.Decrypt(ct))
}

func TestBootstrapStages(t *testing.T) {
	ctx := newBootCtx(t, 9, 3, 2)
	params, ev := ctx.params, ctx.ev
	spec := ctx.spec
	r := params.Ring()
	slots := params.Slots()
	gap := spec.Gap()
	n := params.N()
	q0 := float64(params.Qi(0))
	delta := params.DefaultScale()

	values := randVec(slots, 1, 11)
	pt := ctx.enc.Encode(values, delta, 0)
	ct := ctx.encr.Encrypt(pt)

	// Reference coefficient vector of the encoded message.
	refCoeffs := centeredCoeffs(ctx, ct)

	low := &ckks.Ciphertext{C0: r.GetPoly(0), C1: r.GetPoly(0), Scale: ct.Scale, Lvl: 0}
	low.C0.CopyLevel(ct.C0, 0)
	low.C1.CopyLevel(ct.C1, 0)
	cur := ev.ModRaise(low)

	// Stage 1: modraise decrypts to m + q0*I.
	c1 := centeredCoeffs(ctx, cur)
	maxI := 0.0
	for i := range c1 {
		d := c1[i] - refCoeffs[i]
		q := d / q0
		if math.Abs(q-math.Round(q)) > 1e-6 {
			t.Fatalf("stage modraise: coeff %d residual %g not multiple of q0", i, d)
		}
		if math.Abs(q) > maxI {
			maxI = math.Abs(q)
		}
	}
	t.Logf("modraise: max |I| = %g (K=%d)", maxI, spec.K)

	// Stage 2: subsum projects onto the subring x gap.
	for amt := slots; amt < n/2; amt <<= 1 {
		rot := ev.ApplyGalois(cur, r.GaloisElementForRotation(amt))
		next := ev.Add(cur, rot)
		ev.Recycle(rot)
		ev.Recycle(cur)
		cur = next
	}
	c2 := centeredCoeffs(ctx, cur)
	maxJ, worstFrac := 0.0, 0.0
	for i := 0; i < slots; i++ {
		for _, idx := range []int{i * gap, i*gap + n/2} {
			d := c2[idx] - float64(gap)*refCoeffs[idx]
			q := d / q0
			if f := math.Abs(q - math.Round(q)); f > worstFrac {
				worstFrac = f
			}
			if math.Abs(q) > maxJ {
				maxJ = math.Abs(q)
			}
		}
	}
	t.Logf("subsum: max |J| = %g, worst frac dev = %g (K=%d)", maxJ, worstFrac, spec.K)
	if worstFrac > 1e-3 {
		t.Fatalf("subsum did not produce gap*m + q0*J on the subring")
	}

	// Stage 3: CoeffToSlot. Expected t_i = c2'[i] / (q0*(K+1/2)).
	kHalf := float64(spec.K) + 0.5
	alpha := ct.Scale / (2 * q0 * float64(gap) * kHalf)
	tRe, _, err := ctx.bt.CoeffToSlot(cur, alpha, false)
	if err != nil {
		t.Fatal(err)
	}
	gotT := decodeSlots(ctx, tRe)
	worstT := 0.0
	for i := 0; i < slots; i++ {
		want := c2[i*gap] / (q0 * float64(gap) * kHalf)
		if d := math.Abs(real(gotT[i]) - want); d > worstT {
			worstT = d
		}
		if math.Abs(want) > 1 {
			t.Errorf("slot %d: |t|=%g exceeds 1", i, want)
		}
	}
	t.Logf("c2s: worst |t - ref| = %g (t scale %g, lvl %d)", worstT, tRe.Scale, tRe.Lvl)
	if worstT > 1e-4 {
		t.Fatalf("CoeffToSlot output wrong")
	}

	// Stage 4: EvalMod. Expected sin(2*pi*u), u = (K+1/2)*t.
	y := ctx.bt.evalMod(tRe)
	gotY := decodeSlots(ctx, y)
	worstY := 0.0
	for i := 0; i < slots; i++ {
		u := c2[i*gap] / (q0 * float64(gap))
		want := math.Sin(2 * math.Pi * u)
		if d := math.Abs(real(gotY[i]) - want); d > worstY {
			worstY = d
		}
	}
	t.Logf("evalmod: worst |y - sin| = %g (y scale %g, lvl %d)", worstY, y.Scale, y.Lvl)
	if worstY > 1e-3 {
		for i := 0; i < slots; i++ {
			u := c2[i*gap] / (q0 * float64(gap))
			ref, _ := ctx.bt.RefEvalMod(real(gotT[i]))
			t.Logf("  slot %d: t=%g u=%g got=%g sin=%g refEvalMod(t)=%g",
				i, real(gotT[i]), u, real(gotY[i]), math.Sin(2*math.Pi*u), ref)
		}
		t.Fatalf("EvalMod output wrong")
	}

	// Stage 5: SlotToCoeff back to message.
	beta := q0 / (2 * math.Pi * ct.Scale)
	out, err := ctx.bt.SlotToCoeff(y, beta)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.enc.Decode(ctx.decr.Decrypt(out))
	worst := 0.0
	for i := range values {
		if d := math.Abs(got[i] - values[i]); d > worst {
			worst = d
		}
	}
	t.Logf("s2c: final worst err = %g", worst)
}

// TestLeakByOp brackets individual evaluator ops with the arena lease
// counter to locate leaks.
func TestLeakByOp(t *testing.T) {
	ctx := newBootCtx(t, 9, 3, 2)
	params, ev := ctx.params, ctx.ev
	r := params.Ring()
	values := randVec(params.Slots(), 1, 7)
	lvl := params.MaxLevel()
	pt := ctx.enc.Encode(values, params.DefaultScale(), lvl)
	ct := ctx.encr.Encrypt(pt)

	check := func(name string, f func()) {
		before := r.OutstandingPolys()
		f()
		if d := r.OutstandingPolys() - before; d != 0 {
			t.Errorf("%s: leaked %d", name, d)
		}
	}
	check("mul+rescale", func() {
		m := ev.Mul(ct, ct)
		ev.Rescale(m)
		ev.Recycle(m)
	})
	check("mulscalar", func() {
		m := ev.MulScalar(ct, 1.5, 2)
		ev.Recycle(m)
	})
	check("addscalar", func() {
		m := ev.AddScalar(ct, 0.5)
		ev.Recycle(m)
	})
	check("mulplain", func() {
		p := ctx.enc.Encode(values, float64(params.Qi(ct.Lvl)), ct.Lvl)
		m := ev.MulPlain(ct, p)
		ev.Recycle(m)
	})
	check("conjugate", func() {
		m := ev.Conjugate(ct)
		ev.Recycle(m)
	})
	check("mulbyi", func() {
		m := ev.MulByI(ct)
		ev.Recycle(m)
	})
	check("rotleft", func() {
		m := ev.RotateLeft(ct, 1)
		ev.Recycle(m)
	})
	check("hoisted", func() {
		ms := ev.RotateHoisted(ct, []int{0, 1, 2, 3})
		for _, m := range ms {
			ev.Recycle(m)
		}
	})
	check("galois", func() {
		m := ev.ApplyGalois(ct, r.GaloisElementForRotation(8))
		ev.Recycle(m)
	})
	check("modraise", func() {
		low := &ckks.Ciphertext{C0: r.GetPoly(0), C1: r.GetPoly(0), Scale: ct.Scale, Lvl: 0}
		low.C0.CopyLevel(ct.C0, 0)
		low.C1.CopyLevel(ct.C1, 0)
		m := ev.ModRaise(low)
		ev.Recycle(low)
		ev.Recycle(m)
	})
	check("droptolevel", func() {
		m := ev.Add(ct, ct)
		ev.DropToLevel(m, 2)
		ev.Recycle(m)
	})
	check("evalmod", func() {
		m := ev.MulScalar(ct, 0.01, 1)
		y := ctx.bt.evalMod(m)
		ev.Recycle(m)
		ev.Recycle(y)
	})
}
