// Package boot implements CKKS bootstrapping: refreshing an exhausted
// ciphertext (level 0, no multiplicative budget left) into a fresh one high
// on the modulus chain that decrypts to the same message.
//
// The pipeline is the standard one, built entirely from this repository's
// existing kernels:
//
//	ModRaise  — lift the level-0 ciphertext to the full chain. It now
//	            decrypts to m + q0·I for a small integer polynomial I.
//	SubSum    — when slots are sparsely packed (gap = N/(2·slots) > 1), a
//	            log2(gap)-step partial automorphism sum (the trace onto the
//	            sub-ring Z[X^gap]) that annihilates the dense part of q0·I
//	            and multiplies the sub-ring component by gap.
//	CoeffToSlot — a hoisted-rotation BSGS multiplication by α·U⁻¹ (U is
//	            exactly the encoder's canonical-embedding FFT), followed by
//	            one conjugation to split real and imaginary coefficient
//	            parts into two ciphertexts t with |t| ≤ 1.
//	EvalMod   — removes q0·I: evaluates sin(2πu)/2π ≈ frac(u) at
//	            u = (K+½)·t via a Chebyshev fit (internal/polyfit) of
//	            cos((2π(K+½)t − π/2)/2^r) on [−1, 1] and r double-angle
//	            squarings, so the polynomial degree stays within polyfit's
//	            numerically safe range no matter how large K is.
//	SlotToCoeff — BSGS multiplication by β·U folding all pipeline constants
//	            back out; the result decrypts slot-wise to the original
//	            message at the original scale.
//
// The K bound, double-angle count, chain layout, level budget, and
// instruction counts are all pure functions of (logN, logSlots, degree) —
// Spec — so the compiler can place and price bootstraps without
// constructing keys or evaluators.
package boot

import (
	"fmt"
	"math"
)

const (
	// DefaultDegree is the Chebyshev degree of the sine fit. 20 keeps the
	// fit error near 1e-11 for arguments up to maxFitRange while staying
	// well inside polyfit's numerically safe monomial-conversion range.
	DefaultDegree = 20
	// DefaultQ0Bits sizes the base prime q0, balancing two opposed error
	// terms: EvalMod noise is amplified by β = q0/(2π·Δ) on the way back to
	// message space (wants q0 small), while the sine-vs-fractional-part
	// linearization bias grows like (2π·Δ·m/q0)²/6 (wants q0 large). With
	// Δ = 2^40 and ~1e-6 EvalMod noise the total is minimized near
	// q0/2πΔ ≈ 80, i.e. 49 bits, landing both terms near 1e-4.
	DefaultQ0Bits = 49
	// DefaultC2SBits sizes the prime consumed by CoeffToSlot. Its matrix
	// entries are ~Δ/q0 (tiny), so the plaintext must be encoded against a
	// large prime or rounding noise dominates the slot values, which are
	// then amplified by the EvalMod slope.
	DefaultC2SBits = 55
	// kSigma is the tail bound multiplier on the mod-raise residual I:
	// K = ceil(kSigma·σ) where σ² = gap·h/12 with h the expected secret
	// hamming weight. 4.5σ puts the per-coefficient failure probability
	// below ~7e-6 even across deep-network bootstrap counts.
	kSigma = 4.5
	// maxFitRange caps the double-angle base argument c = 2π(K+½)/2^r: r is
	// the smallest count with c ≤ maxFitRange, keeping the Chebyshev fit of
	// cos(c·t − π/2·2^{-r}) accurate at DefaultDegree.
	maxFitRange = 5.0
)

// Spec is the pure-arithmetic description of a bootstrap configuration:
// everything the compiler needs to lay out a modulus chain, provision
// rotation keys, and price a bootstrap, derivable without key material.
type Spec struct {
	LogN     int
	LogSlots int
	// Q0Bits, PrimeBits, C2SBits are the bit sizes of the base prime, the
	// working (data + EvalMod) primes, and the CoeffToSlot prime.
	Q0Bits    int
	PrimeBits int
	C2SBits   int
	// Degree is the Chebyshev degree of the sine approximation.
	Degree int
	// K bounds the mod-raise residual: EvalMod is valid on |u| ≤ K+½.
	K int
	// DoubleAngles is the number of cos(2θ) = 2cos²θ−1 squarings after the
	// base polynomial.
	//
	// Note there is no real-only shortcut: even a purely real slot vector
	// has nonzero coefficients in both halves of the ring (the complex
	// coefficient pairing is not the slot-value pairing), so EvalMod always
	// runs on both the real- and imaginary-part branches.
	DoubleAngles int
}

// DeriveSpec computes the bootstrap arithmetic for a ring/packing choice.
func DeriveSpec(logN, logSlots, degree int) (Spec, error) {
	if logN < 4 || logN > 16 {
		return Spec{}, fmt.Errorf("boot: logN %d out of range [4, 16]", logN)
	}
	if logSlots < 1 || logSlots > logN-1 {
		return Spec{}, fmt.Errorf("boot: logSlots %d out of range [1, %d]", logSlots, logN-1)
	}
	if degree == 0 {
		degree = DefaultDegree
	}
	if degree < 8 || degree > 24 {
		return Spec{}, fmt.Errorf("boot: sine degree %d out of range [8, 24]", degree)
	}
	n := 1 << logN
	// Residual bound: I's coefficients are ~Gaussian with σ² = h/12 (h the
	// expected ternary-secret weight 2N/3). The sub-ring trace fixes sub-ring
	// monomials POINTWISE (5^slots ≡ 1 mod 4·slots makes every automorphism in
	// it the identity on Z[X^gap]), so it multiplies message AND residual
	// coherently by gap; CoeffToSlot divides that gap straight back out, so K
	// only ever needs to cover I itself — independent of the packing gap.
	h := 2 * n / 3
	sigma := math.Sqrt(float64(h) / 12)
	k := int(math.Ceil(kSigma * sigma))
	if k < 4 {
		k = 4
	}
	r := 1
	for 2*math.Pi*(float64(k)+0.5)/math.Exp2(float64(r)) > maxFitRange {
		r++
	}
	return Spec{
		LogN:         logN,
		LogSlots:     logSlots,
		Q0Bits:       DefaultQ0Bits,
		PrimeBits:    40,
		C2SBits:      DefaultC2SBits,
		Degree:       degree,
		K:            k,
		DoubleAngles: r,
	}, nil
}

// Slots returns the packed slot count.
func (s Spec) Slots() int { return 1 << s.LogSlots }

// Gap returns the coefficient stride of the packed sub-ring.
func (s Spec) Gap() int { return (1 << (s.LogN - 1)) / s.Slots() }

// EvalModLevels is the multiplicative depth of the q0-removal step: the
// power basis, one combine rescale, and the double-angle squarings.
func (s Spec) EvalModLevels() int { return ceilLog2(s.Degree) + 1 + s.DoubleAngles }

// Depth is the total number of levels one bootstrap consumes: CoeffToSlot,
// EvalMod, SlotToCoeff.
func (s Spec) Depth() int { return 2 + s.EvalModLevels() }

// ChainBits lays out a modulus chain (bottom to top) for this spec with
// `window` working levels available to the model between bootstraps: the
// base prime, the data window, the EvalMod/SlotToCoeff primes, and the
// large CoeffToSlot prime on top. len = 1 + window + Depth().
func (s Spec) ChainBits(window int) []int {
	bits := make([]int, 0, 1+window+s.Depth())
	bits = append(bits, s.Q0Bits)
	for i := 0; i < window+s.Depth()-1; i++ {
		bits = append(bits, s.PrimeBits)
	}
	return append(bits, s.C2SBits)
}

// bsgsSplit picks the baby/giant split n1·n2 = slots with n1 ~ sqrt(slots).
func bsgsSplit(slots int) (n1, n2 int) {
	n1 = 1
	for n1*n1 < slots {
		n1 <<= 1
	}
	return n1, slots / n1
}

// RotationAmounts lists every rotation amount the pipeline key-switches:
// BSGS baby and giant steps over the slot group, plus the sub-ring trace
// amounts (multiples of the slot count — identities on the packed slots, so
// they must bypass slot normalization when keys are provisioned). The
// conjugation key is needed as well; callers pass includeConjugate=true to
// key generation.
func (s Spec) RotationAmounts() []int {
	slots := s.Slots()
	n1, n2 := bsgsSplit(slots)
	seen := map[int]bool{}
	var out []int
	add := func(k int) {
		if k != 0 && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for j := 1; j < n1; j++ {
		add(j)
	}
	for k := 1; k < n2; k++ {
		add(k * n1)
	}
	for amt := slots; amt < (1<<s.LogN)/2; amt <<= 1 {
		add(amt)
	}
	return out
}

// OpCounts is the instruction inventory of one bootstrap, for cost models
// and meters.
type OpCounts struct {
	Rotations  int // key-switched automorphisms (baby+giant+trace+conjugate)
	PlainMuls  int // BSGS diagonal multiplications
	CtMuls     int // EvalMod ciphertext-ciphertext products (incl. squarings)
	ScalarMuls int // EvalMod monomial-term scalings and double-angle doublings
	Rescales   int
}

// Ops returns the instruction counts of one bootstrap under this spec.
func (s Spec) Ops() OpCounts {
	slots := s.Slots()
	n1, n2 := bsgsSplit(slots)
	branches := 2
	perMatmul := (n1 - 1) + (n2 - 1)
	trace := log2i(s.Gap())
	powMuls := s.Degree - 1
	return OpCounts{
		Rotations:  2*perMatmul + trace + 1,
		PlainMuls:  2 * slots,
		CtMuls:     branches * (powMuls + s.DoubleAngles),
		ScalarMuls: branches * (s.Degree + s.DoubleAngles),
		Rescales:   2 + branches*(powMuls+1+s.DoubleAngles),
	}
}

func ceilLog2(x int) int {
	l := 0
	for (1 << l) < x {
		l++
	}
	return l
}

func log2i(x int) int {
	l := 0
	for (1 << (l + 1)) <= x {
		l++
	}
	return l
}
