package boot

import (
	"math"
	"math/rand"
	"testing"

	"chet/internal/ckks"
	"chet/internal/ring"
)

// bootEpsilon is the documented precision budget for the bootstrap-as-
// identity property: decrypt∘bootstrap must match decrypt within this
// bound for unit-magnitude messages. The dominant error term is CKKS
// rounding noise amplified through the double-angle ladder; measured error
// sits near 1e-3 at the test ring sizes.
const bootEpsilon = 5e-2

type bootCtx struct {
	params *ckks.Parameters
	spec   Spec
	enc    *ckks.Encoder
	ev     *ckks.Evaluator
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	bt     *Bootstrapper
}

func newBootCtx(t testing.TB, logN, logSlots, window int) *bootCtx {
	t.Helper()
	spec, err := DeriveSpec(logN, logSlots, 0)
	if err != nil {
		t.Fatal(err)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     logN,
		LogQ:     spec.ChainBits(window),
		LogP:     60,
		LogScale: spec.PrimeBits,
		LogSlots: logSlots,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	prng := ring.NewTestPRNG(0xB007)
	kgen := ckks.NewKeyGenerator(params, prng)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtks := kgen.GenRotationKeys(sk, spec.RotationAmounts(), true)
	ev := ckks.NewEvaluator(params, rlk, rtks)
	enc := ckks.NewEncoder(params)
	bt, err := New(params, spec, ev, enc)
	if err != nil {
		t.Fatalf("boot.New: %v", err)
	}
	return &bootCtx{
		params: params,
		spec:   spec,
		enc:    enc,
		ev:     ev,
		encr:   ckks.NewEncryptor(params, pk, prng),
		decr:   ckks.NewDecryptor(params, sk),
		bt:     bt,
	}
}

func randVec(n int, bound float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * bound
	}
	return v
}

func TestSpecDerivation(t *testing.T) {
	spec, err := DeriveSpec(12, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Gap() != (1<<11)/(1<<4) {
		t.Fatalf("gap = %d", spec.Gap())
	}
	if got := len(spec.ChainBits(3)); got != 1+3+spec.Depth() {
		t.Fatalf("chain length = %d, want %d", got, 1+3+spec.Depth())
	}
	c := 2 * math.Pi * (float64(spec.K) + 0.5) / math.Exp2(float64(spec.DoubleAngles))
	if c > maxFitRange || c <= maxFitRange/2-1e-9 {
		t.Fatalf("double-angle base range %g outside (%g, %g]", c, maxFitRange/2, maxFitRange)
	}
	amts := spec.RotationAmounts()
	slots := spec.Slots()
	hasTrace := false
	for _, a := range amts {
		if a >= slots {
			if a%slots != 0 {
				t.Fatalf("trace amount %d not a multiple of slots", a)
			}
			hasTrace = true
		}
	}
	if !hasTrace {
		t.Fatal("sparse packing must include trace rotation amounts")
	}
	ops := spec.Ops()
	if ops.Rotations == 0 || ops.PlainMuls == 0 || ops.CtMuls == 0 {
		t.Fatalf("op counts empty: %+v", ops)
	}
}

func TestRefEvalModMatchesSine(t *testing.T) {
	ctx := newBootCtx(t, 9, 3, 2)
	kHalf := float64(ctx.spec.K) + 0.5
	for i := -40; i <= 40; i++ {
		u := kHalf * float64(i) / 41
		got, err := ctx.bt.RefEvalMod(u / kHalf)
		if err != nil {
			t.Fatalf("RefEvalMod(%g): %v", u/kHalf, err)
		}
		if want := math.Sin(2 * math.Pi * u); math.Abs(got-want) > 1e-6 {
			t.Fatalf("u=%g: RefEvalMod=%g sin=%g", u, got, want)
		}
	}
	// Out-of-range t must fail loudly via the polyfit domain guard.
	if _, err := ctx.bt.RefEvalMod(1.02); err == nil {
		t.Fatal("RefEvalMod should reject |t| > 1")
	}
}

// TestCoeffSlotRoundTrip: with neutral fold constants, SlotToCoeff inverts
// CoeffToSlot exactly (up to CKKS noise) — the BSGS matrices really are
// U⁻¹ and U.
func TestCoeffSlotRoundTrip(t *testing.T) {
	ctx := newBootCtx(t, 9, 4, 2)
	params, ev := ctx.params, ctx.ev
	values := randVec(params.Slots(), 1, 5)
	pt := ctx.enc.Encode(values, params.DefaultScale(), params.MaxLevel())
	ct := ctx.encr.Encrypt(pt)

	// fold ½ makes tRe/tIm the exact real/imag coefficient parts.
	tRe, tIm, err := ctx.bt.CoeffToSlot(ct, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	ri := ev.MulByI(tIm)
	v := ev.Add(tRe, ri)
	ev.Recycle(ri)
	ev.Recycle(tRe)
	ev.Recycle(tIm)

	back, err := ctx.bt.SlotToCoeff(v, 1)
	ev.Recycle(v)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.enc.Decode(ctx.decr.Decrypt(back))
	worst := 0.0
	for i := range values {
		if d := math.Abs(got[i] - values[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Fatalf("round-trip error %g too large", worst)
	}
	ev.Recycle(back)
	ev.Recycle(ct)
}

// TestBootstrapIdentity is the core property: a full bootstrap of an
// exhausted ciphertext decrypts to the original message within the epsilon
// budget, at the fresh level, at (approximately) the original scale.
func TestBootstrapIdentity(t *testing.T) {
	for _, tc := range []struct {
		name     string
		logSlots int
		window   int
	}{
		{name: "sparse-narrow", logSlots: 3, window: 2},
		{name: "sparse-wide", logSlots: 5, window: 2},
		{name: "bigger-window", logSlots: 4, window: 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := newBootCtx(t, 9, tc.logSlots, tc.window)
			params, ev := ctx.params, ctx.ev
			values := randVec(params.Slots(), 1, 11)

			pt := ctx.enc.Encode(values, params.DefaultScale(), 0)
			ct := ctx.encr.Encrypt(pt)
			if ct.Lvl != 0 {
				t.Fatalf("input level = %d, want 0 (exhausted)", ct.Lvl)
			}

			out, err := ctx.bt.Bootstrap(ct)
			if err != nil {
				t.Fatal(err)
			}
			if out.Lvl != ctx.bt.FreshLevel() {
				t.Fatalf("output level = %d, want %d", out.Lvl, ctx.bt.FreshLevel())
			}
			// Rescale drift: each consumed prime deviates slightly from 2^40,
			// and the recorded scale tracks it exactly — so the output scale
			// is near, not equal to, the input's.
			if rel := math.Abs(out.Scale-ct.Scale) / ct.Scale; rel > 1e-3 {
				t.Fatalf("output scale drifted %g relative", rel)
			}

			got := ctx.enc.Decode(ctx.decr.Decrypt(out))
			worst := 0.0
			for i := range values {
				if d := math.Abs(got[i] - values[i]); d > worst {
					worst = d
				}
			}
			t.Logf("%s: max decode error %.3g (budget %g)", tc.name, worst, bootEpsilon)
			if worst > bootEpsilon {
				t.Fatalf("bootstrap error %g exceeds budget %g", worst, bootEpsilon)
			}
			ev.Recycle(out)
			ev.Recycle(ct)
		})
	}
}

// TestBootstrapArenaLeases: a full bootstrap returns every leased poly to
// the ring arena — the PR 7 pooled-limb contract holds across the longest
// pipeline in the codebase. (Extends TestRingKernelAllocs' 0-alloc gate to
// a leak gate.)
func TestBootstrapArenaLeases(t *testing.T) {
	ctx := newBootCtx(t, 9, 3, 2)
	params, ev := ctx.params, ctx.ev
	r := params.Ring()
	values := randVec(params.Slots(), 1, 3)
	pt := ctx.enc.Encode(values, params.DefaultScale(), 0)
	ct := ctx.encr.Encrypt(pt)

	// Warm-up builds the plaintext matrix caches (NewPoly storage, never
	// leased) so the measured run is steady-state.
	warm, err := ctx.bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	ev.Recycle(warm)

	before := r.OutstandingPolys()
	out, err := ctx.bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	ev.Recycle(out)
	if delta := r.OutstandingPolys() - before; delta != 0 {
		t.Fatalf("bootstrap leaked %d arena polys", delta)
	}
}

// TestBootstrapChainsDepth: bootstrap twice with model-style consumption in
// between — the refreshed budget is really usable.
func TestBootstrapChainsDepth(t *testing.T) {
	ctx := newBootCtx(t, 9, 3, 2)
	params, ev := ctx.params, ctx.ev
	values := randVec(params.Slots(), 1, 19)
	pt := ctx.enc.Encode(values, params.DefaultScale(), 0)
	ct := ctx.encr.Encrypt(pt)

	out, err := ctx.bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	// Burn the fresh window: square twice the message... keep it linear to
	// preserve the expected vector: multiply by 1.0 plaintext and rescale.
	want := make([]float64, len(values))
	copy(want, values)
	for out.Lvl > 0 {
		ones := ctx.enc.Encode(onesVec(params.Slots()), float64(params.Qi(out.Lvl)), out.Lvl)
		next := ev.MulPlain(out, ones)
		ev.Rescale(next)
		ev.Recycle(out)
		out = next
	}
	second, err := ctx.bt.Bootstrap(out)
	ev.Recycle(out)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.enc.Decode(ctx.decr.Decrypt(second))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 2*bootEpsilon {
			t.Fatalf("slot %d after two bootstraps: got %g want %g", i, got[i], want[i])
		}
	}
	ev.Recycle(second)
	ev.Recycle(ct)
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
