package boot

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"chet/internal/ckks"
	"chet/internal/polyfit"
)

// StageHook observes one interior stage of a bootstrap pipeline run. Stages
// are "modraise" (truncate + ModRaise + sub-ring trace), "coeff-to-slot",
// "evalmod" (both branches + recombination), and "slot-to-coeff". Hooks run
// on the bootstrapping goroutine and must be fast and concurrency-safe.
type StageHook func(stage string, start, end time.Time)

// Bootstrapper executes the bootstrap pipeline against a parameter set laid
// out by Spec.ChainBits. It is safe for concurrent use: the evaluator is
// concurrency-safe and the plaintext matrix cache is mutex-guarded.
type Bootstrapper struct {
	params *ckks.Parameters
	spec   Spec
	ev     *ckks.Evaluator
	enc    *ckks.Encoder
	approx *polyfit.Approximation
	hook   atomic.Pointer[StageHook]

	mu   sync.Mutex
	mats map[matKey]*bsgsMatrix
}

// SetStageHook installs (or, with nil, removes) the per-stage observer.
// Safe to call while bootstraps are running.
func (b *Bootstrapper) SetStageHook(h StageHook) {
	if h == nil {
		b.hook.Store(nil)
		return
	}
	b.hook.Store(&h)
}

// stage invokes the installed hook, if any.
func (b *Bootstrapper) stage(name string, start time.Time) {
	if h := b.hook.Load(); h != nil {
		(*h)(name, start, time.Now())
	}
}

// New builds a bootstrapper over an existing evaluator and encoder. The
// evaluator must hold the relinearization key and rotation keys for
// Spec.RotationAmounts() plus conjugation. The sine approximation is fitted
// here and validated against the spec's accuracy budget, so a
// mis-parameterized spec fails loudly at construction, not as silent
// precision loss at inference time.
func New(params *ckks.Parameters, spec Spec, ev *ckks.Evaluator, enc *ckks.Encoder) (*Bootstrapper, error) {
	if params.LogN() != spec.LogN {
		return nil, fmt.Errorf("boot: params logN %d != spec logN %d", params.LogN(), spec.LogN)
	}
	if params.LogSlots() != spec.LogSlots {
		return nil, fmt.Errorf("boot: params logSlots %d != spec logSlots %d", params.LogSlots(), spec.LogSlots)
	}
	if params.MaxLevel() < spec.Depth() {
		return nil, fmt.Errorf("boot: chain has %d levels, bootstrap needs %d", params.MaxLevel(), spec.Depth())
	}
	// Base polynomial: G(t) = cos(c·t − π/2·2^{-r}) on [−1, 1] with
	// c = 2π(K+½)/2^r; after r double angles, cos(2^r·θ) = sin(2π(K+½)t).
	scale := math.Exp2(float64(spec.DoubleAngles))
	c := 2 * math.Pi * (float64(spec.K) + 0.5) / scale
	shift := math.Pi / 2 / scale
	g := func(t float64) float64 { return math.Cos(c*t - shift) }
	approx, err := polyfit.Chebyshev(g, -1, 1, spec.Degree)
	if err != nil {
		return nil, fmt.Errorf("boot: sine fit: %w", err)
	}
	// The fit error is amplified by at most 4^r through the double angles;
	// insist the base fit leaves comfortable headroom.
	if e := approx.MaxError(g, 2001); e > 1e-8 {
		return nil, fmt.Errorf("boot: sine fit error %g too large at degree %d for K=%d, r=%d (raise degree or double angles)",
			e, spec.Degree, spec.K, spec.DoubleAngles)
	}
	return &Bootstrapper{
		params: params,
		spec:   spec,
		ev:     ev,
		enc:    enc,
		approx: approx,
		mats:   map[matKey]*bsgsMatrix{},
	}, nil
}

// Spec returns the bootstrap arithmetic this bootstrapper was built for.
func (b *Bootstrapper) Spec() Spec { return b.spec }

// FreshLevel is the level a bootstrapped ciphertext lands at: the top of
// the chain minus the pipeline's own consumption.
func (b *Bootstrapper) FreshLevel() int { return b.params.MaxLevel() - b.spec.Depth() }

// Bootstrap refreshes ct: the returned ciphertext decrypts to the same
// message (within the pipeline's precision budget) at FreshLevel(). The
// input is not modified and may be at any level — only its bottom prime is
// read, as an exhausted ciphertext's would be. The input's scale is
// threaded exactly through the pipeline constants, so arrival-scale drift
// from earlier rescales does not perturb the q0-periodicity EvalMod relies
// on.
func (b *Bootstrapper) Bootstrap(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("boot: cannot bootstrap a degree-%d ciphertext (relinearize first)", ct.Degree())
	}
	ev := b.ev
	r := b.params.Ring()
	q0 := float64(b.params.Qi(0))
	gap := float64(b.spec.Gap())
	deltaIn := ct.Scale

	// Truncate to the bottom prime and lift to the full chain.
	stageStart := time.Now()
	low := &ckks.Ciphertext{C0: r.GetPoly(0), C1: r.GetPoly(0), Scale: ct.Scale, Lvl: 0}
	low.C0.CopyLevel(ct.C0, 0)
	low.C1.CopyLevel(ct.C1, 0)
	cur := ev.ModRaise(low)
	ev.Recycle(low)

	// Sub-ring trace: kills the dense component of q0·I, scales the packed
	// message by gap. No-op at full packing.
	n := b.params.N()
	for amt := b.params.Slots(); amt < n/2; amt <<= 1 {
		rot := ev.ApplyGalois(cur, r.GaloisElementForRotation(amt))
		next := ev.Add(cur, rot)
		ev.Recycle(rot)
		ev.Recycle(cur)
		cur = next
	}
	b.stage("modraise", stageStart)

	// CoeffToSlot with the normalization α folded into the matrix:
	// t = coeffs/(q0·(K+½)) ∈ ~[−1, 1].
	// The 1/gap cancels the trace's coherent gap-multiplication, so EvalMod's
	// u = (K+½)t has integer part exactly I (not gap·I) and K stays small at
	// any packing density.
	alpha := deltaIn / (2 * q0 * gap * (float64(b.spec.K) + 0.5))
	stageStart = time.Now()
	tRe, tIm, err := b.CoeffToSlot(cur, alpha, true)
	ev.Recycle(cur)
	if err != nil {
		return nil, err
	}
	b.stage("coeff-to-slot", stageStart)

	// EvalMod per branch: t -> sin(2πu) ≈ 2π·frac(u), u = (K+½)t.
	stageStart = time.Now()
	yRe := b.evalMod(tRe)
	ev.Recycle(tRe)
	yIm := b.evalMod(tIm)
	ev.Recycle(tIm)
	ri := ev.MulByI(yIm)
	ev.Recycle(yIm)
	v := ev.Add(yRe, ri)
	ev.Recycle(ri)
	ev.Recycle(yRe)
	b.stage("evalmod", stageStart)

	// SlotToCoeff with β folding every remaining constant back out:
	// y ≈ (2π·Δ/q0)·v_true, so β = q0/(2π·Δ).
	stageStart = time.Now()
	beta := q0 / (2 * math.Pi * deltaIn)
	out, err := b.SlotToCoeff(v, beta)
	ev.Recycle(v)
	if err != nil {
		return nil, err
	}
	b.stage("slot-to-coeff", stageStart)
	if want := b.FreshLevel(); out.Lvl != want {
		return nil, fmt.Errorf("boot: pipeline landed at level %d, expected %d (chain/spec mismatch)", out.Lvl, want)
	}
	return out, nil
}

// CoeffToSlot homomorphically moves coefficient pairs into slots: one BSGS
// multiplication by fold·U⁻¹ followed by a conjugation split. The returned
// tRe and tIm hold 2·fold/Δ times the real and imaginary coefficient parts
// of the input's slot decomposition; tIm is nil when wantIm is false.
// Consumes one level. Exported for the round-trip parity tests, which use a
// neutral fold (½) to assert SlotToCoeff∘CoeffToSlot ≈ identity.
func (b *Bootstrapper) CoeffToSlot(ct *ckks.Ciphertext, fold float64, wantIm bool) (tRe, tIm *ckks.Ciphertext, err error) {
	mat, err := b.matrixFor(matC2S, fold, ct.Lvl)
	if err != nil {
		return nil, nil, err
	}
	ev := b.ev
	w, err := b.applyBSGS(ct, mat)
	if err != nil {
		return nil, nil, err
	}
	wc := ev.Conjugate(w)
	tRe = ev.Add(w, wc)
	if wantIm {
		d := ev.Sub(wc, w)
		tIm = ev.MulByI(d)
		ev.Recycle(d)
	}
	ev.Recycle(w)
	ev.Recycle(wc)
	return tRe, tIm, nil
}

// SlotToCoeff is the inverse transform: one BSGS multiplication by fold·U.
// Consumes one level.
func (b *Bootstrapper) SlotToCoeff(ct *ckks.Ciphertext, fold float64) (*ckks.Ciphertext, error) {
	mat, err := b.matrixFor(matS2C, fold, ct.Lvl)
	if err != nil {
		return nil, err
	}
	return b.applyBSGS(ct, mat)
}

// RefEvalMod is the plaintext lockstep reference of the homomorphic EvalMod
// step: the fitted base polynomial (domain-guarded — a t outside [−1, 1]
// means the K bound was violated and the result would be garbage) followed
// by the double-angle ladder.
func (b *Bootstrapper) RefEvalMod(t float64) (float64, error) {
	h, err := b.approx.EvalChecked(t)
	if err != nil {
		return 0, fmt.Errorf("boot: EvalMod input outside K bound: %w", err)
	}
	for i := 0; i < b.spec.DoubleAngles; i++ {
		h = 2*h*h - 1
	}
	return h, nil
}
