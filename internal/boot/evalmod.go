package boot

import (
	"chet/internal/ckks"
)

// evalMod evaluates the q0-removal polynomial on t (slot values in
// [−1, 1], any scale): the fitted base polynomial via a power basis built
// by repeated squaring, then the double-angle ladder. Consumes
// Spec.EvalModLevels() levels; the output scale is re-anchored to the
// parameter default scale Δ regardless of the input scale.
//
// Every monomial term is scaled with an individually chosen encoding
// factor f_i = Δ*/scale_i so all terms carry the exact same scale Δ* (the
// about-to-be-consumed prime times Δ) before summation — this is what
// lets terms whose power-basis scales drifted apart by prime/Δ ratios add
// without tripping the evaluator's scale-mismatch panic, and without any
// value error beyond float64 bookkeeping.
//
// Anchoring Δ* to the default scale rather than the input scale matters
// for deep circuits: each double-angle rung maps S → S²/q and therefore
// doubles any relative scale drift per rung. A ciphertext arriving after
// hundreds of kernel rescales carries ~1e-5..1e-4 of upward drift (chain
// primes sit a hair below their power-of-two targets); amplified 2^r
// through the ladder that would blow past the backend's output-scale
// guard. Starting the ladder at exactly Δ — the absorbing encoding
// factors make that free — leaves only the ladder's own prime offsets,
// ~1e-6 at r=5, independent of circuit depth.
func (b *Bootstrapper) evalMod(t *ckks.Ciphertext) *ckks.Ciphertext {
	ev := b.ev
	r := b.params.Ring()
	d := b.approx.Degree()

	// Power basis pow[i] = t^i by repeated squaring: log-depth, and every
	// power is exactly one Mul away from two earlier ones.
	pows := make([]*ckks.Ciphertext, d+1)
	pows[1] = &ckks.Ciphertext{C0: r.GetPoly(t.Lvl), C1: r.GetPoly(t.Lvl), Scale: t.Scale, Lvl: t.Lvl}
	pows[1].C0.CopyLevel(t.C0, t.Lvl)
	pows[1].C1.CopyLevel(t.C1, t.Lvl)
	for i := 2; i <= d; i++ {
		m := ev.Mul(pows[(i+1)/2], pows[i/2])
		ev.Rescale(m)
		pows[i] = m
	}
	lmin := pows[1].Lvl
	for _, p := range pows[1:] {
		if p.Lvl < lmin {
			lmin = p.Lvl
		}
	}
	for _, p := range pows[1:] {
		ev.DropToLevel(p, lmin)
	}

	deltaStar := float64(b.params.Qi(lmin)) * b.params.DefaultScale()
	var acc *ckks.Ciphertext
	for i := 1; i <= d; i++ {
		c := b.approx.C[i]
		if c == 0 {
			continue
		}
		term := ev.MulScalar(pows[i], c, deltaStar/pows[i].Scale)
		if acc == nil {
			acc = term
		} else {
			s := ev.Add(acc, term)
			ev.Recycle(acc)
			ev.Recycle(term)
			acc = s
		}
	}
	for _, p := range pows[1:] {
		ev.Recycle(p)
	}
	withC0 := ev.AddScalar(acc, b.approx.C[0])
	ev.Recycle(acc)
	ev.Rescale(withC0)

	// Double-angle ladder: h ← 2h² − 1 doubles the cosine argument each
	// step, one level per step.
	h := withC0
	for i := 0; i < b.spec.DoubleAngles; i++ {
		sq := ev.Mul(h, h)
		ev.Rescale(sq)
		db := ev.MulScalar(sq, 2, 1)
		ev.Recycle(sq)
		next := ev.AddScalar(db, -1)
		ev.Recycle(db)
		ev.Recycle(h)
		h = next
	}
	return h
}
