package boot

import (
	"fmt"
	"math/cmplx"

	"chet/internal/ckks"
)

type matKind int

const (
	matC2S matKind = iota // fold·U⁻¹ (EmbedInv columns)
	matS2C                // fold·U   (Embed columns)
)

// matKey identifies a cached diagonal-plaintext set. The fold constant
// depends on the runtime arrival scale, which is deterministic per call
// site in a compiled circuit, so the cache stays small in practice.
type matKey struct {
	kind  matKind
	fold  float64
	level int
}

// bsgsMatrix holds the BSGS-decomposed diagonals of fold·M as encoded
// plaintexts: pts[k][j] is rot_{−k·n1}(diag_{k·n1+j}), encoded at the level
// it will be consumed at and at the scale of the prime the following
// rescale divides by, so the transform costs exactly one level and
// preserves the ciphertext scale.
type bsgsMatrix struct {
	n1, n2 int
	baby   []int
	pts    [][]*ckks.Plaintext
}

func (b *Bootstrapper) matrixFor(kind matKind, fold float64, level int) (*bsgsMatrix, error) {
	if level < 1 {
		return nil, fmt.Errorf("boot: linear transform needs a level to consume, ciphertext is at %d", level)
	}
	key := matKey{kind: kind, fold: fold, level: level}
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.mats[key]; ok {
		return m, nil
	}

	slots := b.params.Slots()
	n1, n2 := bsgsSplit(slots)

	// Columns of the transform, taken from the encoder's own FFT so the
	// homomorphic DFT is exactly the encoder's embedding.
	cols := make([][]complex128, slots)
	for j := 0; j < slots; j++ {
		e := make([]complex128, slots)
		e[j] = 1
		if kind == matC2S {
			cols[j] = b.enc.EmbedInv(e)
		} else {
			cols[j] = b.enc.Embed(e)
		}
	}

	// The plaintext scale is the prime the post-transform rescale consumes.
	ptScale := float64(b.params.Qi(level))
	baby := make([]int, n1)
	for j := range baby {
		baby[j] = j
	}
	pts := make([][]*ckks.Plaintext, n2)
	for k := 0; k < n2; k++ {
		pts[k] = make([]*ckks.Plaintext, n1)
		for j := 0; j < n1; j++ {
			d := k*n1 + j
			// diag_d[i] = M[i][(i+d) mod s]; pre-rotate right by k·n1 so the
			// giant-step rotation moves it back into place.
			vec := make([]complex128, slots)
			maxAbs := 0.0
			for i := 0; i < slots; i++ {
				v := complex(fold, 0) * cols[((i-k*n1+d)%slots+slots)%slots][((i-k*n1)%slots+slots)%slots]
				vec[i] = v
				if a := cmplx.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs*ptScale < 0.5 {
				continue // rounds to zero everywhere: contributes nothing
			}
			pts[k][j] = b.enc.EncodeComplex(vec, ptScale, level)
		}
	}
	m := &bsgsMatrix{n1: n1, n2: n2, baby: baby, pts: pts}
	b.mats[key] = m
	return m, nil
}

// applyBSGS multiplies ct's slot vector by the cached matrix using one
// hoisted decomposition for all baby steps (PR 2's key inner-product
// fusion) and one rescale at the end, consuming exactly one level.
func (b *Bootstrapper) applyBSGS(ct *ckks.Ciphertext, mat *bsgsMatrix) (*ckks.Ciphertext, error) {
	ev := b.ev
	babies := ev.RotateHoisted(ct, mat.baby)
	defer func() {
		for _, bb := range babies {
			ev.Recycle(bb)
		}
	}()

	var total *ckks.Ciphertext
	for k := 0; k < mat.n2; k++ {
		var acc *ckks.Ciphertext
		for j := 0; j < mat.n1; j++ {
			pt := mat.pts[k][j]
			if pt == nil {
				continue
			}
			term := ev.MulPlain(babies[j], pt)
			if acc == nil {
				acc = term
			} else {
				s := ev.Add(acc, term)
				ev.Recycle(acc)
				ev.Recycle(term)
				acc = s
			}
		}
		if acc == nil {
			continue
		}
		if k > 0 {
			rot := ev.RotateLeft(acc, k*mat.n1)
			ev.Recycle(acc)
			acc = rot
		}
		if total == nil {
			total = acc
		} else {
			s := ev.Add(total, acc)
			ev.Recycle(total)
			ev.Recycle(acc)
			total = s
		}
	}
	if total == nil {
		return nil, fmt.Errorf("boot: linear transform has no nonzero diagonals")
	}
	ev.Rescale(total)
	return total, nil
}
