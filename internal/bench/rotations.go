package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
)

// RotationsResult records the hoisted-rotation experiment: the same batch
// of rotation amounts executed per-amount (serial), per-amount with the
// evaluator's intra-op limb partitioning (parallel), and as one hoisted
// batch sharing a single digit decomposition. NSOp values are nanoseconds
// per rotation amount.
type RotationsResult struct {
	LogN    int   `json:"log_n"`
	Level   int   `json:"level"`
	Primes  int   `json:"primes"`
	Amounts []int `json:"amounts"`
	Workers int   `json:"workers"`

	SerialNSOp   float64 `json:"serial_ns_op"`
	ParallelNSOp float64 `json:"parallel_ns_op"`
	HoistedNSOp  float64 `json:"hoisted_ns_op"`

	// HoistedSpeedup is SerialNSOp / HoistedNSOp — the acceptance metric
	// for the hoisting optimization (>= 1.5x at L >= 3, >= 8 amounts).
	HoistedSpeedup  float64 `json:"hoisted_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// RotationsBench measures the rotation batch on the real RNS backend. The
// amounts all have exact keys, so every path executes one key switch per
// amount; only the shared decomposition differs. Outputs are discarded —
// correctness (bit identity across the three paths) is pinned by tests in
// internal/hisa and internal/htc.
func RotationsBench(logN, primes, numAmounts, workers int) (RotationsResult, error) {
	if primes < 4 {
		return RotationsResult{}, fmt.Errorf("bench: rotations experiment needs >= 4 chain primes for L >= 3, got %d", primes)
	}
	logQ := make([]int, primes)
	for i := range logQ {
		logQ[i] = 40
	}
	logQ[0] = 50
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: logN, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		return RotationsResult{}, err
	}
	amounts := make([]int, numAmounts)
	for i := range amounts {
		amounts[i] = i + 1
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:    params,
		PRNG:      ring.NewTestPRNG(31),
		Rotations: amounts,
	})
	// The parallel arm uses the evaluator's intra-op workers: each rotation
	// partitions its limb loops (decomposition rows, key-switch MACs) across
	// w goroutines instead of racing whole rotations against each other.
	// Per-op results stay bit-identical to serial, and the NTT size cutoff
	// degrades small rings to the serial loop rather than paying goroutine
	// overhead for sub-L2 transforms (the regression the old goroutine-per-
	// amount arm measured).
	bp := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:         params,
		PRNG:           ring.NewTestPRNG(31),
		Rotations:      amounts,
		IntraOpWorkers: workers,
	})
	vals := make([]float64, b.Slots())
	for i := range vals {
		vals[i] = 0.25
	}
	ct := b.Encrypt(b.Encode(vals, math.Exp2(40)))
	ctp := bp.Encrypt(bp.Encode(vals, math.Exp2(40)))

	// Outputs are freed back to the ring arena each pass, so every arm runs
	// at the evaluator's steady state (zero poly allocations) instead of
	// racing the garbage collector.
	serialLoop := func() {
		for _, k := range amounts {
			b.Free(b.RotLeft(ct, k))
		}
	}
	parallelLoop := func() {
		for _, k := range amounts {
			bp.Free(bp.RotLeft(ctp, k))
		}
	}
	// Interleave the two arms (telemetry methodology): a load spike on a
	// shared host then hits both arms alike instead of skewing one.
	serialLoop()
	parallelLoop()
	serial, parallel := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < 5; i++ {
		start := time.Now()
		serialLoop()
		if e := float64(time.Since(start).Nanoseconds()); e < serial {
			serial = e
		}
		start = time.Now()
		parallelLoop()
		if e := float64(time.Since(start).Nanoseconds()); e < parallel {
			parallel = e
		}
	}
	hoisted := timeBatch(func() {
		for _, o := range b.RotLeftMany(ct, amounts) {
			b.Free(o)
		}
	})

	n := float64(len(amounts))
	res := RotationsResult{
		LogN:         logN,
		Level:        params.MaxLevel(),
		Primes:       primes,
		Amounts:      amounts,
		Workers:      workers,
		SerialNSOp:   serial / n,
		ParallelNSOp: parallel / n,
		HoistedNSOp:  hoisted / n,
	}
	res.HoistedSpeedup = res.SerialNSOp / res.HoistedNSOp
	res.ParallelSpeedup = res.SerialNSOp / res.ParallelNSOp
	return res, nil
}

// timeBatch returns the best-of-3 wall time of f in nanoseconds.
func timeBatch(f func()) float64 {
	return timeBatchN(f, 3)
}

// timeBatchN is timeBatch with a caller-chosen repetition count; experiments
// whose pass/fail gate is a throughput ratio (packing) use more reps so each
// row reaches its noise floor before the ratio is taken.
func timeBatchN(f func(), reps int) float64 {
	f() // warm up (NTT tables, Shoup key forms, pools)
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if e := float64(time.Since(start).Nanoseconds()); e < best {
			best = e
		}
	}
	return best
}

// RenderRotations formats the rotation experiment result.
func RenderRotations(r RotationsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rotation batch: logN=%d level=%d amounts=%d workers=%d\n",
		r.LogN, r.Level, len(r.Amounts), r.Workers)
	fmt.Fprintf(&sb, "%-10s %14s %10s\n", "path", "ns/rotation", "speedup")
	fmt.Fprintf(&sb, "%-10s %14.0f %10s\n", "serial", r.SerialNSOp, "1.00x")
	fmt.Fprintf(&sb, "%-10s %14.0f %9.2fx\n", "parallel", r.ParallelNSOp, r.ParallelSpeedup)
	fmt.Fprintf(&sb, "%-10s %14.0f %9.2fx\n", "hoisted", r.HoistedNSOp, r.HoistedSpeedup)
	return sb.String()
}
