package bench

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"chet/internal/ckks"
	"chet/internal/hisa"
	"chet/internal/ring"
	"chet/internal/telemetry"
)

// preRewriteGreedyNS is the pre-rewrite cost of the greedy product-close
// protocol (Mul with inline relinearization, then Rescale) at logN=12,
// primes=5, TestPRNG(31) — measured on this host at the parent commit of
// the ring rewrite with the exact RingBench protocol below. It is the
// baseline the ISSUE's >= 1.5x key-switch acceptance gate compares against;
// on a different host the in-binary ratios (FusedVsUnfused, FusedVsGreedy)
// are the meaningful numbers.
const preRewriteGreedyNS = 6.52e6

// RingSpan is one row of a tracer top-span table: cumulative time one HISA
// op consumed across a protocol run.
type RingSpan struct {
	Op      string  `json:"op"`
	Count   int64   `json:"count"`
	TotalNS float64 `json:"total_ns"`
}

// RingResult records the memory-bandwidth ring-rewrite experiment: the
// ciphertext-ciphertext product-close protocol measured three ways, the
// serial vs limb-partitioned NTT, and the steady-state allocation count of
// the hot ring kernels.
type RingResult struct {
	LogN    int `json:"log_n"`
	Primes  int `json:"primes"`
	Level   int `json:"level"`
	Workers int `json:"workers"`

	// GreedyNSOp is Mul (inline relinearization) + Rescale — the pre-rewrite
	// kernel protocol, re-measured on the rewritten ring.
	GreedyNSOp float64 `json:"greedy_ns_op"`
	// UnfusedNSOp is MulNoRelin + Rescale + Relinearize — lazy but unfused.
	UnfusedNSOp float64 `json:"unfused_ns_op"`
	// FusedNSOp is MulNoRelin + RelinearizeRescale — the rescale rides
	// inside the key switch.
	FusedNSOp float64 `json:"fused_ns_op"`

	// BaselineGreedyNSOp is preRewriteGreedyNS (see its doc for provenance).
	BaselineGreedyNSOp float64 `json:"baseline_greedy_ns_op"`
	// KeySwitchSpeedup is BaselineGreedyNSOp / FusedNSOp — the acceptance
	// metric: the full product-close protocol against the pre-rewrite tree.
	KeySwitchSpeedup float64 `json:"key_switch_speedup"`
	// FusedVsGreedy and FusedVsUnfused are in-binary ratios against the
	// same tree (no cross-commit baseline involved).
	FusedVsGreedy  float64 `json:"fused_vs_greedy"`
	FusedVsUnfused float64 `json:"fused_vs_unfused"`

	// NTTSerialNS / NTTParallelNS time one full-poly forward transform at
	// the top level; the parallel path partitions limbs across workers and
	// degrades to the serial loop under the size cutoff (or 1 worker).
	NTTSerialNS        float64 `json:"ntt_serial_ns"`
	NTTParallelNS      float64 `json:"ntt_parallel_ns"`
	NTTParallelSpeedup float64 `json:"ntt_parallel_speedup"`

	// HotPathAllocs is mallocs per iteration of the pooled ring-kernel loop
	// (NTT round trip, key-switch MAC, automorphism on arena polys); the
	// rewrite's contract is 0, gated exactly by ring.TestRingKernelAllocs.
	HotPathAllocs float64 `json:"hot_path_allocs"`

	// TopSpansUnfused / TopSpansFused are the tracer's top cumulative ops
	// for the unfused and fused protocols (the before/after of the fusion).
	TopSpansUnfused []RingSpan `json:"top_spans_unfused"`
	TopSpansFused   []RingSpan `json:"top_spans_fused"`
}

// RingBench measures the rewritten ring layer end to end. The protocol and
// parameters (logN=12, primes=5, PRNG seed 31, scale 2^40) replicate the
// pre-rewrite baseline run exactly so KeySwitchSpeedup compares like with
// like.
func RingBench(logN, primes, workers int) (RingResult, error) {
	if primes < 3 {
		return RingResult{}, fmt.Errorf("bench: ring experiment needs >= 3 chain primes, got %d", primes)
	}
	logQ := make([]int, primes)
	for i := range logQ {
		logQ[i] = 40
	}
	logQ[0] = 50
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: logN, LogQ: logQ, LogP: 50, LogScale: 40,
	})
	if err != nil {
		return RingResult{}, err
	}
	b := hisa.NewRNSBackend(hisa.RNSConfig{
		Params:         params,
		PRNG:           ring.NewTestPRNG(31),
		Rotations:      []int{1},
		IntraOpWorkers: workers,
	})
	lr, _ := hisa.AsLazyRelin(b)
	fr, _ := hisa.AsFusedRescale(b)

	vals := make([]float64, b.Slots())
	for i := range vals {
		vals[i] = 0.25
	}
	sc := math.Exp2(40)
	ct := b.Encrypt(b.Encode(vals, sc))
	ct2 := b.Encrypt(b.Encode(vals, sc))
	prod := b.Mul(ct, ct2)
	d := b.MaxRescale(prod, new(big.Int).Lsh(big.NewInt(1), 41))

	// Intermediates are freed back to the ring arena so each protocol is
	// measured at the evaluator's steady state (zero poly allocations).
	const reps = 5
	greedy := timeBatchN(func() {
		x := b.Mul(ct, ct2)
		y := b.Rescale(x, d)
		b.Free(x)
		b.Free(y)
	}, reps)
	unfused := timeBatchN(func() {
		x := lr.MulNoRelin(ct, ct2)
		y := b.Rescale(x, d)
		z := lr.Relinearize(y)
		b.Free(x)
		b.Free(y)
		b.Free(z)
	}, reps)
	fused := timeBatchN(func() {
		x := lr.MulNoRelin(ct, ct2)
		y := fr.RelinearizeRescale(x, d)
		b.Free(x)
		b.Free(y)
	}, reps)

	serialNTT, parallelNTT := nttPair(params.Ring(), workers)

	res := RingResult{
		LogN:    logN,
		Primes:  primes,
		Level:   params.MaxLevel(),
		Workers: workers,

		GreedyNSOp:  greedy,
		UnfusedNSOp: unfused,
		FusedNSOp:   fused,

		BaselineGreedyNSOp: preRewriteGreedyNS,
		KeySwitchSpeedup:   preRewriteGreedyNS / fused,
		FusedVsGreedy:      greedy / fused,
		FusedVsUnfused:     unfused / fused,

		NTTSerialNS:        serialNTT,
		NTTParallelNS:      parallelNTT,
		NTTParallelSpeedup: serialNTT / parallelNTT,

		HotPathAllocs: hotPathAllocs(params.Ring()),

		TopSpansUnfused: topSpans(b, func(t *telemetry.Tracer) {
			tl, _ := hisa.AsLazyRelin(t)
			x := tl.MulNoRelin(ct, ct2)
			x = t.Rescale(x, d)
			tl.Relinearize(x)
		}),
		TopSpansFused: topSpans(b, func(t *telemetry.Tracer) {
			tl, _ := hisa.AsLazyRelin(t)
			tf, _ := hisa.AsFusedRescale(t)
			x := tl.MulNoRelin(ct, ct2)
			tf.RelinearizeRescale(x, d)
		}),
	}
	return res, nil
}

// nttPair times one forward transform of a full top-level polynomial on the
// serial path and on the limb-partitioned parallel path.
func nttPair(r *ring.Ring, workers int) (serial, parallel float64) {
	level := r.MaxLevel()
	rng := rand.New(rand.NewSource(9))
	p := r.NewPoly(level)
	for j := 0; j <= level; j++ {
		q := r.Moduli[j].Q
		for k := range p.Coeffs[j] {
			p.Coeffs[j][k] = rng.Uint64() % q
		}
	}
	serialPass := func() {
		r.NTT(p, level)
		r.InvNTT(p, level)
	}
	parallelPass := func() {
		r.NTTParallel(p, level, workers)
		r.InvNTTParallel(p, level, workers)
	}
	// Interleave the arms (telemetry methodology) so shared-host load hits
	// both alike; each pass is a forward+inverse round trip.
	serialPass()
	parallelPass()
	serial, parallel = math.MaxFloat64, math.MaxFloat64
	for i := 0; i < 9; i++ {
		start := time.Now()
		serialPass()
		if e := float64(time.Since(start).Nanoseconds()); e < serial {
			serial = e
		}
		start = time.Now()
		parallelPass()
		if e := float64(time.Since(start).Nanoseconds()); e < parallel {
			parallel = e
		}
	}
	return serial, parallel
}

// hotPathAllocs runs the pooled ring-kernel loop (the kernels the 0-alloc
// gate covers) and reports mallocs per iteration via runtime.MemStats.
func hotPathAllocs(r *ring.Ring) float64 {
	level := r.MaxLevel()
	rng := rand.New(rand.NewSource(13))
	a := r.GetPoly(level)
	bp := r.GetPoly(level)
	out := r.GetPoly(level)
	defer func() { r.PutPoly(a); r.PutPoly(bp); r.PutPoly(out) }()
	for j := 0; j <= level; j++ {
		q := r.Moduli[j].Q
		for k := range a.Coeffs[j] {
			a.Coeffs[j][k] = rng.Uint64() % q
			bp.Coeffs[j][k] = rng.Uint64() % q
		}
	}
	galEl := r.GaloisElementForRotation(1)

	iter := func() {
		r.NTT(a, level)
		r.InvNTT(a, level)
		r.MulCoeffsAndAdd(a, bp, out, level)
		r.AutomorphismNTT(a, galEl, out, level)
		t := r.GetPoly(level)
		t.CopyLevel(a, level)
		r.PutPoly(t)
	}
	iter() // warm the arena and NTT tables outside the measured window

	const iters = 32
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		iter()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / iters
}

// topSpans runs f against a fresh tracer over b and returns the five ops
// with the largest cumulative duration.
func topSpans(b hisa.Backend, f func(t *telemetry.Tracer)) []RingSpan {
	tr := telemetry.NewTracer(b, telemetry.Config{})
	f(tr) // warm up
	tr.Reset()
	f(tr)
	var spans []RingSpan
	for op, tot := range tr.Totals() {
		spans = append(spans, RingSpan{Op: op, Count: tot.Count, TotalNS: float64(tot.Total.Nanoseconds())})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].TotalNS > spans[j].TotalNS })
	if len(spans) > 5 {
		spans = spans[:5]
	}
	return spans
}

// RenderRing formats the ring-rewrite experiment result.
func RenderRing(r RingResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ring rewrite: logN=%d level=%d primes=%d workers=%d\n",
		r.LogN, r.Level, r.Primes, r.Workers)
	fmt.Fprintf(&sb, "%-28s %12s %10s\n", "product-close protocol", "ns/op", "vs fused")
	fmt.Fprintf(&sb, "%-28s %12.0f %9.2fx\n", "greedy (mul+rescale)", r.GreedyNSOp, r.FusedVsGreedy)
	fmt.Fprintf(&sb, "%-28s %12.0f %9.2fx\n", "unfused (lazy+rescale+relin)", r.UnfusedNSOp, r.FusedVsUnfused)
	fmt.Fprintf(&sb, "%-28s %12.0f %9.2fx\n", "fused (relin-rescale)", r.FusedNSOp, 1.0)
	fmt.Fprintf(&sb, "key-switch speedup vs pre-rewrite greedy baseline (%.2fms): %.2fx\n",
		r.BaselineGreedyNSOp/1e6, r.KeySwitchSpeedup)
	fmt.Fprintf(&sb, "NTT round trip: serial %.0fns, parallel %.0fns (%.2fx, workers=%d)\n",
		r.NTTSerialNS, r.NTTParallelNS, r.NTTParallelSpeedup, r.Workers)
	fmt.Fprintf(&sb, "hot ring kernels: %.1f mallocs/op (pooled arena; gate requires 0)\n", r.HotPathAllocs)
	for _, set := range []struct {
		name  string
		spans []RingSpan
	}{{"unfused", r.TopSpansUnfused}, {"fused", r.TopSpansFused}} {
		fmt.Fprintf(&sb, "top spans, %s protocol:", set.name)
		for _, s := range set.spans {
			fmt.Fprintf(&sb, " %s=%.2fms(x%d)", s.Op, s.TotalNS/1e6, s.Count)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}
