package bench

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"

	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/tensor"
)

// PackingRow records throughput for one packing configuration: real batching
// (one image per slot lane, the greedy rescale protocol) versus complex
// packing (two images per lane in the real and imaginary slot components,
// executed under the lazy scale plan).
type PackingRow struct {
	Config    string `json:"config"`
	Batch     int    `json:"batch"`
	Complex   bool   `json:"complex"`
	ScaleMode string `json:"scale_mode"`
	LogN      int    `json:"log_n"`
	// Rescales is the number of rescale instructions one inference executes.
	// On the RNS backend the lazy plan matches the greedy waterline (whole-
	// prime deferrals never pay for themselves — see scalepass.go), so the
	// complex row's extra rescales come from its extra multiplications, not
	// from the plan.
	Rescales int `json:"rescales"`
	// SecondsPerInfer is the best-of-reps wall time of one homomorphic
	// evaluation serving the whole batch.
	SecondsPerInfer float64 `json:"seconds_per_infer"`
	ImagesPerSec    float64 `json:"images_per_sec"`
}

// PackingErr is the per-backend decode-error check for the complex
// configuration: every image is recovered from its lane component and
// compared against the plaintext Ref oracle running the identical
// (unbatched, real) homomorphic program.
type PackingErr struct {
	Backend string  `json:"backend"`
	MaxErr  float64 `json:"max_lane_err"`
	Pass    bool    `json:"pass"`
}

// PackingResult is the machine-readable output of the packing experiment
// (BENCH_packing.json).
type PackingResult struct {
	Model string       `json:"model"`
	Rows  []PackingRow `json:"rows"`
	// Speedup is complex images/sec over real images/sec at equal ring size.
	Speedup float64 `json:"images_per_sec_ratio"`
	// ErrBudget is the per-lane decode-error ceiling every backend must meet.
	ErrBudget float64      `json:"lane_err_budget"`
	Errors    []PackingErr `json:"lane_errors"`
}

// PackingBench compares complex packing (B=2L images as real+imaginary lane
// components, lazy rescale plan) against real packing (B=L images, greedy
// protocol) at equal ring size on the real RNS-CKKS backend, then checks the
// complex configuration's per-lane decode error against the plaintext oracle
// on every executable backend (Ref, the CKKS mock, and RNS-CKKS).
func PackingBench(model *nn.Model, realBatch, minLogN, maxLogN, workers int, errBudget float64) (PackingResult, error) {
	// The rows' pass/fail gate is their throughput ratio, so GC share must
	// not differ between them; a higher collection target keeps the pacer
	// out of the timed loops. Restored on exit — only this experiment's
	// verdict rides on a ratio.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	res := PackingResult{Model: model.Name, ErrBudget: errBudget}
	base := core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      minLogN,
		MaxLogN:      maxLogN,
		Batch:        realBatch,
	}
	cplx := base
	cplx.Batch = 2 * realBatch
	cplx.Complex = true
	cplx.ScaleMode = core.ScaleLazy

	compReal, err := core.Compile(model.Circuit, base)
	if err != nil {
		return res, fmt.Errorf("bench: compiling %s real batch %d: %w", model.Name, base.Batch, err)
	}
	compCplx, err := core.Compile(model.Circuit, cplx)
	if err != nil {
		return res, fmt.Errorf("bench: compiling %s complex batch %d: %w", model.Name, cplx.Batch, err)
	}
	if compReal.Best.LogN != compCplx.Best.LogN {
		return res, fmt.Errorf("bench: ring sizes diverge (real N=2^%d, complex N=2^%d); the comparison requires equal rings",
			compReal.Best.LogN, compCplx.Best.LogN)
	}

	imgs := make([]*tensor.Tensor, cplx.Batch)
	for i := range imgs {
		imgs[i] = nn.SyntheticImage(model.InputShape, uint64(80+i))
	}

	rowReal, _, err := timePacked("real-greedy", compReal, imgs[:base.Batch], workers)
	if err != nil {
		return res, err
	}
	rowCplx, cplxOuts, err := timePacked("complex-lazy", compCplx, imgs, workers)
	if err != nil {
		return res, err
	}
	res.Rows = []PackingRow{rowReal, rowCplx}
	res.Speedup = rowCplx.ImagesPerSec / rowReal.ImagesPerSec

	// Per-lane decode error, complex configuration vs the plaintext oracle
	// running the identical unbatched real program.
	refs := oracleOutputs(model, compCplx, imgs)
	res.Errors = append(res.Errors, PackingErr{Backend: "rns", MaxErr: maxLaneErr(refs, cplxOuts)})

	refOuts, err := decodePacked(compCplx, hisa.NewRefBackend(1<<uint(compCplx.Best.LogN-1)), imgs, workers)
	if err != nil {
		return res, err
	}
	res.Errors = append(res.Errors, PackingErr{Backend: "ref", MaxErr: maxLaneErr(refs, refOuts)})

	cplxSim := cplx
	cplxSim.Scheme = core.SchemeCKKS
	compSim, err := core.Compile(model.Circuit, cplxSim)
	if err != nil {
		return res, fmt.Errorf("bench: compiling %s complex on CKKS: %w", model.Name, err)
	}
	simB, err := core.BuildBackend(compSim, ring.NewTestPRNG(83))
	if err != nil {
		return res, err
	}
	simOuts, err := decodePacked(compSim, simB, imgs, workers)
	if err != nil {
		return res, err
	}
	res.Errors = append(res.Errors, PackingErr{Backend: "sim", MaxErr: maxLaneErr(refs, simOuts)})

	for i := range res.Errors {
		res.Errors[i].Pass = res.Errors[i].MaxErr <= errBudget
	}
	return res, nil
}

// timePacked builds the compiled configuration's session backend, times one
// batched homomorphic evaluation (best of 3), and returns the decoded lane
// outputs of the final run.
func timePacked(config string, comp *core.Compiled, imgs []*tensor.Tensor, workers int) (PackingRow, []*tensor.Tensor, error) {
	b, err := core.BuildBackend(comp, ring.NewTestPRNG(82))
	if err != nil {
		return PackingRow{}, nil, err
	}
	meter := hisa.NewMeter(b, nil)
	sc := comp.Options.Scales
	enc := htc.EncryptTensorBatch(meter, imgs, comp.Plan(), sc)
	opts := htc.ExecOptions{Workers: workers}
	if comp.ScalePlan != nil {
		opts.Scale = htc.PlanPolicy{Plan: comp.ScalePlan}
	}

	var out *htc.CipherTensor
	before := meter.Counts()
	out = htc.ExecuteOpts(meter, comp.Circuit, enc, comp.Best.Policy, sc, opts)
	rescales := meter.Counts().Rescale - before.Rescale

	// Level the field between rows: the second configuration otherwise starts
	// with the first one's garbage and pays its collection mid-timing.
	runtime.GC()
	ns := timeBatchN(func() {
		out = htc.ExecuteOpts(meter, comp.Circuit, enc, comp.Best.Policy, sc, opts)
	}, 5)
	sec := ns / 1e9

	outs := make([]*tensor.Tensor, len(imgs))
	for i := range imgs {
		outs[i] = htc.DecryptTensorLane(meter, out, i)
	}
	return PackingRow{
		Config:          config,
		Batch:           len(imgs),
		Complex:         comp.Options.Complex,
		ScaleMode:       comp.Options.ScaleMode.String(),
		LogN:            comp.Best.LogN,
		Rescales:        rescales,
		SecondsPerInfer: sec,
		ImagesPerSec:    float64(len(imgs)) / sec,
	}, outs, nil
}

// decodePacked runs the complex-packed batch on b and decodes every lane.
func decodePacked(comp *core.Compiled, b hisa.Backend, imgs []*tensor.Tensor, workers int) ([]*tensor.Tensor, error) {
	sc := comp.Options.Scales
	enc := htc.EncryptTensorBatch(b, imgs, comp.Plan(), sc)
	opts := htc.ExecOptions{Workers: workers}
	if comp.ScalePlan != nil {
		opts.Scale = htc.PlanPolicy{Plan: comp.ScalePlan}
	}
	out := htc.ExecuteOpts(b, comp.Circuit, enc, comp.Best.Policy, sc, opts)
	outs := make([]*tensor.Tensor, len(imgs))
	for i := range imgs {
		outs[i] = htc.DecryptTensorLane(b, out, i)
	}
	return outs, nil
}

// oracleOutputs runs every image through the plaintext Ref oracle,
// unbatched and real-packed under the greedy protocol — the precision
// profiler's reference execution.
func oracleOutputs(model *nn.Model, comp *core.Compiled, imgs []*tensor.Tensor) []*tensor.Tensor {
	ref := hisa.NewRefBackend(1 << uint(comp.Best.LogN-1))
	plan := htc.PlanFor(model.Circuit, comp.Best.Policy)
	sc := comp.Options.Scales
	outs := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		enc := htc.EncryptTensor(ref, img, plan, sc)
		out := htc.Execute(ref, model.Circuit, enc, comp.Best.Policy, sc)
		outs[i] = htc.DecryptTensor(ref, out)
	}
	return outs
}

// maxLaneErr is the element-wise max abs deviation across all lanes.
func maxLaneErr(want, got []*tensor.Tensor) float64 {
	worst := 0.0
	for i := range want {
		for j := range want[i].Data {
			if e := math.Abs(want[i].Data[j] - got[i].Data[j]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// RenderPacking formats the real-vs-complex comparison.
func RenderPacking(r PackingResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "complex packing vs real batching: %s (real RNS-CKKS, equal ring size)\n", r.Model)
	fmt.Fprintf(&sb, "%-14s %5s %6s %9s %9s %12s %12s\n",
		"config", "batch", "N", "scales", "rescales", "s/infer", "images/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %5d %6d %9s %9d %12.3f %12.2f\n",
			row.Config, row.Batch, 1<<uint(row.LogN), row.ScaleMode, row.Rescales,
			row.SecondsPerInfer, row.ImagesPerSec)
	}
	fmt.Fprintf(&sb, "throughput ratio (complex/real): %.2fx\n", r.Speedup)
	fmt.Fprintf(&sb, "per-lane decode error vs plaintext oracle (budget %.0e):\n", r.ErrBudget)
	for _, e := range r.Errors {
		verdict := "ok"
		if !e.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "  %-4s max|err| %10.2e  %s\n", e.Backend, e.MaxErr, verdict)
	}
	return sb.String()
}
