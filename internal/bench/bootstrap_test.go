package bench

import "testing"

// TestBootstrapBenchSmoke runs the deep-network bootstrapping experiment at
// the smallest geometry that still forces mid-circuit refreshes and checks
// the result is fully populated, internally consistent, and passing.
func TestBootstrapBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-lattice bootstrap run")
	}
	res, err := BootstrapBench(6, 9, 3, 5e-2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogN != 9 || res.Window != 3 || res.Layers != 6 {
		t.Fatalf("geometry: %+v", res)
	}
	if res.Placements == 0 {
		t.Fatal("no bootstraps placed")
	}
	if !res.PlacementParity {
		t.Fatalf("runtime %d bootstraps, compiler placed %d", res.RuntimeBootstraps, res.Placements)
	}
	for name, v := range map[string]float64{
		"bootstrap ms": res.BootstrapMS,
		"compile ms":   res.CompileMS,
		"run ms":       res.RunMS,
		"images/sec":   res.ImagesPerSec,
	} {
		if v <= 0 {
			t.Fatalf("%s not populated: %v", name, v)
		}
	}
	if res.BootTotalMS != res.BootstrapMS*float64(res.Placements) {
		t.Fatalf("boot total inconsistent: %+v", res)
	}
	if !res.Pass {
		t.Fatalf("experiment failed: max err %.2e, budget %.0e", res.MaxErr, res.ErrBudget)
	}
	if out := RenderBootstrap(res); out == "" {
		t.Fatal("empty render")
	}
}
