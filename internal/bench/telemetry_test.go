package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chet/internal/nn"
)

// TestTelemetryOverheadSmoke runs the tracing-overhead measurement at its
// smallest real-crypto instance and checks the row invariants. The budget is
// deliberately loose: this asserts correctness, not performance (chet-bench
// runs the production 5% budget).
func TestTelemetryOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice crypto; run without -short")
	}
	rows, err := TelemetryOverhead([]*nn.Model{nn.LeNetTiny()}, 11, 2, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.UntracedSeconds <= 0 || r.TracedSeconds <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.Spans <= 0 {
		t.Errorf("traced run recorded no spans: %+v", r)
	}
	if !r.Pass {
		t.Errorf("overhead %.2f%% exceeded even the loose %.0f%% smoke budget", r.OverheadPct, r.BudgetPct)
	}
	if out := RenderTelemetry(rows); out == "" {
		t.Error("RenderTelemetry produced no output")
	}
}

// TestStampAndWriteStampedJSON checks artifacts carry a commit hash and an
// RFC 3339 UTC timestamp around the payload.
func TestStampAndWriteStampedJSON(t *testing.T) {
	s := NewStamp()
	if s.Commit == "" {
		t.Fatal("empty commit field (want a hash or the \"unknown\" sentinel)")
	}
	if _, err := time.Parse(time.RFC3339, s.Timestamp); err != nil {
		t.Fatalf("timestamp %q is not RFC 3339: %v", s.Timestamp, err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := WriteStampedJSON(path, map[string]int{"answer": 42}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Commit    string         `json:"commit"`
		Timestamp string         `json:"timestamp"`
		Result    map[string]int `json:"result"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("stamped artifact is not valid JSON: %v", err)
	}
	if doc.Commit == "" || doc.Timestamp == "" {
		t.Errorf("stamp fields missing: %+v", doc)
	}
	if doc.Result["answer"] != 42 {
		t.Errorf("result payload lost: %+v", doc)
	}
}
