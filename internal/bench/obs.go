package bench

import (
	"context"
	"fmt"
	"math"
	"net"
	"runtime"
	"strings"
	"sync"
	"time"

	"chet/internal/core"
	"chet/internal/fleet"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/serve"
	"chet/internal/telemetry"
	"chet/internal/tensor"
)

// ObsOptions sizes the fleet-observability experiment: a bootstrap-compiled
// deep MLP served by a small fleet, driven twice — once untraced, once with
// distributed tracing on — to price tracing and prove the cross-process
// trace stitches.
type ObsOptions struct {
	// Layers/LogN/Window shape the bootstrap-compiled model (the served
	// circuit must carry a BootPlan so refresh spans appear in the trace).
	Layers, LogN, Window int
	// Workers is the fleet size behind the router.
	Workers int
	// Sessions is how many client streams each arm opens (identical PRNG
	// seeds across arms, so traced and untraced outputs must match bit for
	// bit). Requests is how many inferences each stream drives per rep.
	Sessions, Requests int
	// Reps is how many times each arm's drive phase runs; the wall-clock
	// overhead comparison uses the per-arm minimum to suppress scheduler
	// noise. Outputs come from the first rep.
	Reps int
	// OverheadBudget is the traced-over-untraced wall-time ratio ceiling the
	// experiment asserts (0.05 = five percent).
	OverheadBudget float64
}

// ObsArm records one arm (traced or untraced) of the experiment.
type ObsArm struct {
	WallSeconds float64 `json:"wall_seconds"` // min over reps, whole drive phase
	// EvalSeconds is the fleet-wide sum of per-evaluation time from the
	// workers' own metrics — the tracer lives inside this window, so the
	// eval-based overhead isolates its cost from network and queue noise.
	EvalSeconds float64 `json:"eval_seconds"`
	Evaluations uint64  `json:"evaluations"`
	Occupied    int     `json:"occupied_workers"`
}

// ObsStitch is the traced arm's cross-process trace analysis for one
// request's trace ID.
type ObsStitch struct {
	TraceID   string `json:"trace_id"`
	Processes int    `json:"processes"` // router + live workers in the merged trace
	// RouterSpans/WorkerSpans count spans carrying the trace ID on each side
	// of the wire; BootstrapSpans counts the worker's boot:<stage> refresh
	// spans inside the request.
	RouterSpans    int `json:"router_spans"`
	WorkerSpans    int `json:"worker_spans"`
	BootstrapSpans int `json:"bootstrap_spans"`
	// Stitched is the parent-link check: the worker's request scope is
	// parented under the router's relay span, which in turn parents back to
	// the client's span — one tree across three processes.
	Stitched bool `json:"stitched"`
}

// ObsResult is the machine-readable output of the observability experiment
// (BENCH_obs.json).
type ObsResult struct {
	Model    string `json:"model"`
	Layers   int    `json:"layers"`
	LogN     int    `json:"log_n"`
	Workers  int    `json:"workers"`
	Sessions int    `json:"sessions"`
	Requests int    `json:"requests_per_session"`
	Reps     int    `json:"reps"`

	Untraced ObsArm `json:"untraced"`
	Traced   ObsArm `json:"traced"`

	// WallOverhead and EvalOverhead are traced/untraced - 1; the wall figure
	// is the gated one (OverheadBudget), the eval figure isolates the tracer.
	WallOverhead   float64 `json:"wall_overhead"`
	EvalOverhead   float64 `json:"eval_overhead"`
	OverheadBudget float64 `json:"overhead_budget"`

	// BitExact is the traced ≡ untraced output check across every stream.
	BitExact bool `json:"bit_exact"`

	Stitch ObsStitch `json:"stitch"`

	// Budget telemetry as the router saw it over the wire (health acks):
	// fleet-wide bootstrap tally and headroom low-water mark.
	RouterBootstraps  uint64 `json:"router_bootstraps"`
	RouterMinHeadroom int64  `json:"router_min_headroom"`
	HeadroomKnown     bool   `json:"headroom_known"`

	Pass bool `json:"pass"`
}

// obsStream is one client stream: a session through the router plus its
// pre-encrypted input and the decrypted output of its first-rep inferences.
type obsStream struct {
	c   *serve.Client
	enc *htc.CipherTensor
	out *tensor.Tensor
}

// ObsBench runs the fleet-observability experiment: compile a deep MLP with
// bootstrap placement, serve it on a multi-worker fleet behind chet-router,
// drive identical load untraced and traced, and check (a) tracing stays
// under the overhead budget, (b) traced results are bit-exact with
// untraced, and (c) one request's spans from the router and the workers
// stitch into a single trace containing a bootstrap refresh.
func ObsBench(opts ObsOptions) (ObsResult, error) {
	if opts.Workers < 2 {
		return ObsResult{}, fmt.Errorf("bench: obs experiment needs >= 2 workers, got %d", opts.Workers)
	}
	if opts.Reps < 1 {
		opts.Reps = 1
	}
	m := nn.DeepMLP(opts.Layers)
	comp, err := core.Compile(m.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      opts.LogN,
		MaxLogN:      opts.LogN,
		Policies:     []htc.LayoutPolicy{htc.PolicyCHW},
		Bootstrap:    &core.BootstrapOptions{Window: opts.Window},
	})
	if err != nil {
		return ObsResult{}, fmt.Errorf("bench: obs compile: %w", err)
	}
	if comp.BootPlan == nil || len(comp.BootPlan.Placements) == 0 {
		return ObsResult{}, fmt.Errorf("bench: NN-%d at window %d placed no bootstraps", opts.Layers, opts.Window)
	}

	res := ObsResult{
		Model:          m.Name,
		Layers:         opts.Layers,
		LogN:           comp.Best.LogN,
		Workers:        opts.Workers,
		Sessions:       opts.Sessions,
		Requests:       opts.Requests,
		Reps:           opts.Reps,
		OverheadBudget: opts.OverheadBudget,
	}

	untraced, uStreams, _, workerAddrs, err := runObsArm(comp, m.InputShape, false, opts, nil, nil)
	if err != nil {
		return res, fmt.Errorf("bench: untraced arm: %w", err)
	}
	res.Untraced = untraced
	// Rebind the traced arm's workers to the untraced arm's ports: the
	// consistent-hash ring vnodes are keyed by worker address, so identical
	// addresses give both arms the identical session placement — otherwise
	// the arms can occupy different worker counts and the wall-clock
	// comparison measures placement luck, not tracing.
	traced, tStreams, tele, _, err := runObsArm(comp, m.InputShape, true, opts, &res, workerAddrs)
	if err != nil {
		return res, fmt.Errorf("bench: traced arm: %w", err)
	}
	res.Traced = traced
	res.Stitch = tele

	res.WallOverhead = traced.WallSeconds/untraced.WallSeconds - 1
	if untraced.EvalSeconds > 0 {
		res.EvalOverhead = traced.EvalSeconds/untraced.EvalSeconds - 1
	}

	res.BitExact = len(uStreams) == len(tStreams)
	for i := 0; res.BitExact && i < len(uStreams); i++ {
		u, t := uStreams[i], tStreams[i]
		if len(u.Data) != len(t.Data) {
			res.BitExact = false
			break
		}
		for k := range u.Data {
			if math.Float64bits(u.Data[k]) != math.Float64bits(t.Data[k]) {
				res.BitExact = false
				break
			}
		}
	}

	res.Pass = res.BitExact && res.Stitch.Stitched && res.Stitch.BootstrapSpans >= 1 &&
		res.WallOverhead <= opts.OverheadBudget && res.RouterBootstraps > 0
	return res, nil
}

// runObsArm runs one arm: a fresh fleet (workers + router), opts.Sessions
// client streams with deterministic seeds, Reps drive phases. It returns the
// arm's stats, each stream's first-rep decrypted output (in seed order, so
// arms compare stream-for-stream), and the worker listen addresses (so the
// other arm can rebind the same ports for identical ring placement; nil
// wantAddrs picks ephemeral ports). For the traced arm it also collects
// the merged cross-process trace of the first stream's last request and
// fills the result's router-side budget telemetry.
func runObsArm(comp *core.Compiled, inputShape []int, traced bool, opts ObsOptions, res *ObsResult, wantAddrs []string) (ObsArm, []*tensor.Tensor, ObsStitch, []string, error) {
	arm := ObsArm{}
	var stitch ObsStitch
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var servers []*serve.Server
	var addrs []string
	defer func() {
		for _, s := range servers {
			s.Shutdown(ctx)
		}
	}()
	for i := 0; i < opts.Workers; i++ {
		s, err := serve.New(serve.Config{
			Compiled: comp,
			Workers:  1,
			Parallel: 1,
			// A bootstrapped eval runs tens of seconds on the reference box
			// and streams queue behind each other, so the default 60s
			// deadline would fail the run rather than measure it.
			RequestTimeout: 10 * time.Minute,
			Trace:          traced,
			ProcessLabel:   fmt.Sprintf("worker-%d", i),
		})
		if err != nil {
			return arm, nil, stitch, nil, err
		}
		listen := "127.0.0.1:0"
		if i < len(wantAddrs) {
			listen = wantAddrs[i]
		}
		ln, err := net.Listen("tcp", listen)
		if err != nil && listen != "127.0.0.1:0" {
			// The previous arm's port was grabbed in the meantime; an
			// ephemeral port keeps the arm running (placement may differ,
			// which the occupancy columns make visible).
			ln, err = net.Listen("tcp", "127.0.0.1:0")
		}
		if err != nil {
			return arm, nil, stitch, nil, err
		}
		go s.Serve(ln)
		servers = append(servers, s)
		addrs = append(addrs, ln.Addr().String())
	}
	router, err := fleet.New(fleet.Config{Workers: addrs, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		return arm, nil, stitch, nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return arm, nil, stitch, nil, err
	}
	go router.Serve(rln)
	defer router.Shutdown(ctx)

	// Open the streams with seeds fixed across arms: stream i's keys, PRNG
	// draws, and input depend only on its seed, so the traced arm must
	// reproduce the untraced outputs bit for bit whatever the consistent
	// hash did with worker placement (workers are bit-identical replicas).
	streams := make([]*obsStream, 0, opts.Sessions)
	defer func() {
		for _, st := range streams {
			st.c.Close()
		}
	}()
	prev := router.Metrics()
	owners := map[string]bool{}
	for i := 0; i < opts.Sessions; i++ {
		seed := uint64(0x0B5 + i)
		c, err := serve.Dial(rln.Addr().String(), serve.ClientConfig{
			Compiled:  comp,
			PRNG:      ring.NewTestPRNG(seed),
			TraceBase: seed << 32, // deterministic, distinct per stream
		})
		if err != nil {
			return arm, nil, stitch, nil, fmt.Errorf("opening stream %d: %w", i, err)
		}
		cur := router.Metrics()
		for j := range cur.Workers {
			if cur.Workers[j].Handoffs > prev.Workers[j].Handoffs {
				owners[cur.Workers[j].Addr] = true
			}
		}
		prev = cur
		img := nn.SyntheticImage(inputShape, seed)
		streams = append(streams, &obsStream{c: c, enc: c.Encrypt(img)})
	}
	arm.Occupied = len(owners)

	runtime.GC() // keygen debt, as in the fleet experiment

	wall := math.MaxFloat64
	for rep := 0; rep < opts.Reps; rep++ {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(streams))
		for i, st := range streams {
			wg.Add(1)
			go func(i int, st *obsStream) {
				defer wg.Done()
				for r := 0; r < opts.Requests; r++ {
					out, err := st.c.Infer(st.enc)
					if err != nil {
						errs[i] = err
						return
					}
					if rep == 0 && r == opts.Requests-1 {
						st.out = st.c.Decrypt(out)
					}
				}
			}(i, st)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return arm, nil, stitch, nil, fmt.Errorf("stream %d rep %d: %w", i, rep, err)
			}
		}
		if w := time.Since(start).Seconds(); w < wall {
			wall = w
		}
	}
	arm.WallSeconds = wall

	for _, s := range servers {
		sm := s.Metrics()
		arm.EvalSeconds += sm.Evaluation.Sum.Seconds()
		arm.Evaluations += sm.Evaluation.Count
	}

	outs := make([]*tensor.Tensor, len(streams))
	for i, st := range streams {
		outs[i] = st.out
	}
	if !traced {
		return arm, outs, stitch, addrs, nil
	}

	// Traced arm extras: the cross-process stitch of the first stream's last
	// request, and the budget telemetry the router learned from health acks.
	traceID := streams[0].c.TraceBase() + uint64(opts.Requests)
	stitch = analyzeStitch(router.CollectTrace(traceID), traceID)

	deadline := time.Now().Add(5 * time.Second)
	for res != nil {
		m := router.Metrics()
		res.RouterBootstraps, res.RouterMinHeadroom, res.HeadroomKnown = 0, math.MaxInt64, false
		for _, w := range m.Workers {
			res.RouterBootstraps += w.Bootstraps
			if w.HeadroomKnown {
				res.HeadroomKnown = true
				if w.MinHeadroom < res.RouterMinHeadroom {
					res.RouterMinHeadroom = w.MinHeadroom
				}
			}
		}
		if !res.HeadroomKnown {
			res.RouterMinHeadroom = 0
		}
		if (res.RouterBootstraps > 0 && res.HeadroomKnown) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond) // next health probe carries the tally
	}
	return arm, outs, stitch, addrs, nil
}

// analyzeStitch walks the merged multi-process trace of one trace ID and
// checks the span tree crosses the wire intact: a router relay span exists,
// the worker's request scope is parented under it, and the request contains
// bootstrap refresh stage spans.
func analyzeStitch(procs []telemetry.ProcessTrace, traceID uint64) ObsStitch {
	st := ObsStitch{TraceID: fmt.Sprintf("%016x", traceID), Processes: len(procs)}
	var relay telemetry.Span
	for _, p := range procs {
		router := p.Name == "chet-router"
		for _, s := range p.Spans {
			if s.TraceID != traceID {
				continue
			}
			if router {
				st.RouterSpans++
				if strings.HasPrefix(s.Op, "relay:") {
					relay = s
				}
				continue
			}
			st.WorkerSpans++
			if strings.HasPrefix(s.Op, "boot:") {
				st.BootstrapSpans++
			}
		}
	}
	if relay.SpanID == 0 || relay.Parent == 0 {
		return st // no relay span, or it lost the client's parent: not stitched
	}
	for _, p := range procs {
		if p.Name == "chet-router" {
			continue
		}
		for _, s := range p.Spans {
			if s.TraceID == traceID && s.Kind == telemetry.KindScope &&
				strings.HasPrefix(s.Op, "infer ") && s.Parent == relay.SpanID {
				st.Stitched = true
			}
		}
	}
	return st
}

// RenderObs formats the observability experiment result.
func RenderObs(r ObsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet observability: %s (%d layers, bootstrapped) at logN=%d on %d workers behind chet-router\n",
		r.Model, r.Layers, r.LogN, r.Workers)
	fmt.Fprintf(&sb, "load: %d sessions x %d requests, best of %d reps per arm\n",
		r.Sessions, r.Requests, r.Reps)
	fmt.Fprintf(&sb, "%9s %9s %9s %7s %9s\n", "arm", "wall s", "eval s", "evals", "occupied")
	fmt.Fprintf(&sb, "%9s %9.3f %9.3f %7d %9d\n", "untraced",
		r.Untraced.WallSeconds, r.Untraced.EvalSeconds, r.Untraced.Evaluations, r.Untraced.Occupied)
	fmt.Fprintf(&sb, "%9s %9.3f %9.3f %7d %9d\n", "traced",
		r.Traced.WallSeconds, r.Traced.EvalSeconds, r.Traced.Evaluations, r.Traced.Occupied)
	fmt.Fprintf(&sb, "overhead: %.2f%% wall (budget %.0f%%), %.2f%% eval-only; outputs bit-exact=%v\n",
		100*r.WallOverhead, 100*r.OverheadBudget, 100*r.EvalOverhead, r.BitExact)
	fmt.Fprintf(&sb, "stitch: trace %s across %d processes — %d router + %d worker spans, %d bootstrap stage spans, stitched=%v\n",
		r.Stitch.TraceID, r.Stitch.Processes, r.Stitch.RouterSpans, r.Stitch.WorkerSpans,
		r.Stitch.BootstrapSpans, r.Stitch.Stitched)
	fmt.Fprintf(&sb, "budget telemetry at the router: %d bootstraps fleet-wide, min headroom %d levels (known=%v)\n",
		r.RouterBootstraps, r.RouterMinHeadroom, r.HeadroomKnown)
	fmt.Fprintf(&sb, "pass=%v\n", r.Pass)
	return sb.String()
}
