package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime/debug"
	"strings"
	"time"
)

// Stamp identifies the build a benchmark artifact came from, so a
// BENCH_*.json checked against a later tree is traceable to the commit that
// produced it.
type Stamp struct {
	Commit    string `json:"commit"`
	Timestamp string `json:"timestamp"` // RFC 3339, UTC
}

// NewStamp resolves the current commit hash: the build info's vcs.revision
// when the binary was built inside a checkout, `git rev-parse HEAD` as a
// fallback for `go run`/`go test` invocations, and "unknown" when neither
// source is available (a tarball build, say).
func NewStamp() Stamp {
	s := Stamp{Commit: "unknown", Timestamp: time.Now().UTC().Format(time.RFC3339)}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				s.Commit = kv.Value
				return s
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			s.Commit = rev
		}
	}
	return s
}

// WriteStampedJSON writes a benchmark result to path as indented JSON of
// the form {"commit", "timestamp", "result"}.
func WriteStampedJSON(path string, result any) error {
	blob, err := json.MarshalIndent(struct {
		Stamp
		Result any `json:"result"`
	}{NewStamp(), result}, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling %s: %w", path, err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
