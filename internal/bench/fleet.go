package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chet/internal/core"
	"chet/internal/fleet"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/serve"
)

// FleetOptions sizes the multi-worker scaling experiment.
type FleetOptions struct {
	// Counts are the worker counts to sweep, ascending; the first must be 1
	// (the speedup baseline).
	Counts []int
	// Requests is how many inferences the throughput phase of each run
	// drives through the router.
	Requests int
	// ExecDelay is the artificial per-evaluation latency floor configured on
	// every worker. The benchmark machine has few cores, so raw crypto
	// throughput cannot scale with in-process workers; the delay models the
	// paper-scale evaluation times (seconds per image) whose overlap across
	// workers IS the thing this experiment measures. It must dominate the
	// real eval cost times the worker count or the single shared CPU becomes
	// the bottleneck (LeNet-tiny at logN 11 costs ~0.4s of CPU per request
	// end to end).
	ExecDelay time.Duration
	// MinSessions is the fewest client sessions opened per run. More are
	// opened (up to 6x the worker count) until every worker owns at least
	// one, so the scaling measurement is not hostage to an unlucky hash
	// draw on a handful of sessions.
	MinSessions int
	// FailoverAt names the worker count whose run gets a second phase: after
	// the throughput measurement, FailoverRequests more inferences are
	// driven while one loaded worker is shut down mid-stream. Zero client
	// errors is the pass condition. 0 disables the phase.
	FailoverAt       int
	FailoverRequests int
}

// FleetRow records one worker count's throughput run.
type FleetRow struct {
	Workers  int `json:"workers"`
	Sessions int `json:"sessions"`
	// Occupied is how many workers owned at least one session; speedup is
	// bounded by it, so it is recorded rather than assumed.
	Occupied    int     `json:"occupied"`
	WallSeconds float64 `json:"wall_seconds"`
	ImagesPerSec float64 `json:"images_per_sec"`
	// Speedup is ImagesPerSec relative to the Workers=1 row.
	Speedup float64 `json:"speedup_vs_one_worker"`
	// PerWorkerRelayed is each worker's share of the phase's requests, in
	// worker order — the load-skew evidence.
	PerWorkerRelayed []uint64 `json:"per_worker_relayed"`
	// LoadSkew is max(PerWorkerRelayed) over the fair share (requests /
	// occupied); 1.0 is a perfectly even split.
	LoadSkew float64 `json:"load_skew"`
}

// FleetFailover records the kill-one-worker phase.
type FleetFailover struct {
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	KilledWorker string  `json:"killed_worker"`
	ClientErrors int     `json:"client_errors"` // must be 0
	Failovers    uint64  `json:"failovers"`
	Rebalances   uint64  `json:"ring_rebalances"`
	Handoffs     uint64  `json:"handoffs"`
	ImagesPerSec float64 `json:"images_per_sec"`
}

// FleetResult is the machine-readable output of the fleet experiment
// (BENCH_fleet.json).
type FleetResult struct {
	Model         string         `json:"model"`
	LogN          int            `json:"log_n"`
	ExecDelayMS   int64          `json:"exec_delay_ms"`
	Requests      int            `json:"requests_per_run"`
	Rows          []FleetRow     `json:"rows"`
	Failover      *FleetFailover `json:"failover,omitempty"`
}

// SpeedupAt returns the measured speedup at the given worker count (0 if
// that count was not swept).
func (r FleetResult) SpeedupAt(workers int) float64 {
	for _, row := range r.Rows {
		if row.Workers == workers {
			return row.Speedup
		}
	}
	return 0
}

// fleetClient is one load-driver stream: a client session opened through
// the router plus a pre-encrypted input it re-sends (encryption is
// per-image client work the fleet never sees, so it is paid once).
type fleetClient struct {
	c   *serve.Client
	enc *htc.CipherTensor
}

// FleetBench sweeps served throughput across worker counts behind one
// chet-router, all over loopback TCP with the real RNS-CKKS backend. The
// load driver keeps one dedicated request stream per occupied worker
// (sessions are sticky, so each stream's owner is discovered from the
// per-worker handoff counter when the session opens) and the streams pull
// from one shared request counter, so a slow or doubled-up worker's stream
// simply takes fewer requests and the measurement reflects fleet capacity
// rather than one static assignment.
func FleetBench(model *nn.Model, opts FleetOptions) (FleetResult, error) {
	if len(opts.Counts) == 0 || opts.Counts[0] != 1 {
		return FleetResult{}, fmt.Errorf("bench: fleet experiment needs worker counts starting at 1, got %v", opts.Counts)
	}
	comp, err := core.Compile(model.Circuit, core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      11,
		MaxLogN:      13,
	})
	if err != nil {
		return FleetResult{}, fmt.Errorf("bench: compiling %s: %w", model.Name, err)
	}
	res := FleetResult{
		Model:       model.Name,
		LogN:        comp.Best.LogN,
		ExecDelayMS: opts.ExecDelay.Milliseconds(),
		Requests:    opts.Requests,
	}
	seed := uint64(90)
	for _, n := range opts.Counts {
		row, failover, err := runFleet(comp, model.InputShape, n, opts, &seed)
		if err != nil {
			return res, fmt.Errorf("bench: fleet run with %d workers: %w", n, err)
		}
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.ImagesPerSec / res.Rows[0].ImagesPerSec
		}
		res.Rows = append(res.Rows, row)
		if failover != nil {
			res.Failover = failover
		}
	}
	return res, nil
}

// runFleet measures one worker count: n workers, a router, sessions opened
// until every worker is occupied, then a pooled throughput phase — plus the
// kill-one-worker phase when n == opts.FailoverAt.
func runFleet(comp *core.Compiled, inputShape []int, n int, opts FleetOptions, seed *uint64) (FleetRow, *FleetFailover, error) {
	row := FleetRow{Workers: n}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	workers := map[string]*serve.Server{}
	var addrs []string
	defer func() {
		for _, s := range workers {
			s.Shutdown(ctx)
		}
	}()
	for i := 0; i < n; i++ {
		s, err := serve.New(serve.Config{
			Compiled:  comp,
			Workers:   1,
			Parallel:  1,
			ExecDelay: opts.ExecDelay,
		})
		if err != nil {
			return row, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return row, nil, err
		}
		go s.Serve(ln)
		workers[ln.Addr().String()] = s
		addrs = append(addrs, ln.Addr().String())
	}
	router, err := fleet.New(fleet.Config{
		Workers:       addrs,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return row, nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, nil, err
	}
	go router.Serve(rln)
	defer router.Shutdown(ctx)

	// Open sessions until every worker owns one (or the cap says the hash
	// draw was hopeless — Occupied records what happened either way). Each
	// open is placed by a handoff, so the one worker whose handoff counter
	// moved is the new session's sticky owner; the first session landing on
	// each worker becomes that worker's dedicated load stream.
	minSessions := opts.MinSessions
	if minSessions < 2 {
		minSessions = 2
	}
	maxSessions := 6 * n
	if maxSessions < minSessions {
		maxSessions = minSessions
	}
	// A session that lands on an already-covered worker is closed on the
	// spot: a live client context plus its key material is tens of MB, and
	// dozens of idle ones turn the single-core run into a GC benchmark.
	opened := 0
	streamFor := map[string]*fleetClient{}
	defer func() {
		for _, fc := range streamFor {
			fc.c.Close()
		}
	}()
	prev := router.Metrics()
	for opened < maxSessions && (opened < minSessions || len(streamFor) < n) {
		*seed++
		c, err := serve.Dial(rln.Addr().String(), serve.ClientConfig{Compiled: comp, PRNG: ring.NewTestPRNG(*seed)})
		if err != nil {
			return row, nil, fmt.Errorf("opening session %d: %w", opened+1, err)
		}
		opened++
		owner := ""
		cur := router.Metrics()
		for i := range cur.Workers {
			if cur.Workers[i].Handoffs > prev.Workers[i].Handoffs {
				owner = cur.Workers[i].Addr
			}
		}
		prev = cur
		if owner == "" || streamFor[owner] != nil {
			c.Close()
			continue
		}
		img := nn.SyntheticImage(inputShape, *seed)
		streamFor[owner] = &fleetClient{c: c, enc: c.Encrypt(img)}
	}
	var streams []*fleetClient
	for _, addr := range addrs { // config order, for determinism
		if fc := streamFor[addr]; fc != nil {
			streams = append(streams, fc)
		}
	}
	row.Sessions = opened
	row.Occupied = len(streams)

	// Dozens of keygens just allocated (and freed) gigabytes; collect that
	// debt now so the measured phase doesn't pay sweep assists for it.
	runtime.GC()

	before := router.Metrics()
	start := time.Now()
	if errs := driveFleet(streams, opts.Requests); errs > 0 {
		return row, nil, fmt.Errorf("throughput phase: %d of %d requests failed", errs, opts.Requests)
	}
	row.WallSeconds = time.Since(start).Seconds()
	row.ImagesPerSec = float64(opts.Requests) / row.WallSeconds

	after := router.Metrics()
	var maxShare uint64
	for i := range after.Workers {
		share := after.Workers[i].Relayed - before.Workers[i].Relayed
		row.PerWorkerRelayed = append(row.PerWorkerRelayed, share)
		if share > maxShare {
			maxShare = share
		}
	}
	if row.Occupied > 0 {
		row.LoadSkew = float64(maxShare) * float64(row.Occupied) / float64(opts.Requests)
	}

	if n != opts.FailoverAt || opts.FailoverRequests <= 0 {
		return row, nil, nil
	}

	// Failover phase: kill the most-loaded worker a beat into the stream.
	victim := ""
	var victimLoad uint64
	for i, w := range after.Workers {
		if w.Up && row.PerWorkerRelayed[i] >= victimLoad {
			victim, victimLoad = w.Addr, row.PerWorkerRelayed[i]
		}
	}
	runtime.GC() // same debt barrier as the throughput phase
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		time.Sleep(opts.ExecDelay + 100*time.Millisecond)
		workers[victim].Shutdown(ctx)
	}()
	start = time.Now()
	errs := driveFleet(streams, opts.FailoverRequests)
	wall := time.Since(start).Seconds()
	killWG.Wait()
	final := router.Metrics()
	fo := &FleetFailover{
		Workers:      n,
		Requests:     opts.FailoverRequests,
		KilledWorker: victim,
		ClientErrors: errs,
		Failovers:    final.Failovers - after.Failovers,
		Rebalances:   final.Rebalances - after.Rebalances,
		Handoffs:     final.Handoffs - after.Handoffs,
		ImagesPerSec: float64(opts.FailoverRequests) / wall,
	}
	return row, fo, nil
}

// driveFleet pushes total requests through the per-worker streams, each
// stream pulling the next request from a shared counter as soon as its last
// answer lands, and returns how many failed. Faster streams naturally take
// more of the total, so a worker that slows down (or inherits a second
// stream's session after a kill) sheds load instead of stalling the run.
func driveFleet(streams []*fleetClient, total int) int {
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	for _, fc := range streams {
		wg.Add(1)
		go func(fc *fleetClient) {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				if _, err := fc.c.Infer(fc.enc); err != nil {
					failed.Add(1)
				}
			}
		}(fc)
	}
	wg.Wait()
	return int(failed.Load())
}

// RenderFleet formats the scaling sweep and the failover verdict.
func RenderFleet(r FleetResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sharded serving fleet: %s behind chet-router (loopback TCP, real RNS-CKKS, %dms eval floor)\n",
		r.Model, r.ExecDelayMS)
	fmt.Fprintf(&sb, "%7s %8s %8s %8s %12s %9s %9s\n",
		"workers", "sessions", "occupied", "wall s", "images/sec", "speedup", "skew")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%7d %8d %8d %8.2f %12.3f %8.2fx %9.2f\n",
			row.Workers, row.Sessions, row.Occupied, row.WallSeconds,
			row.ImagesPerSec, row.Speedup, row.LoadSkew)
	}
	if f := r.Failover; f != nil {
		fmt.Fprintf(&sb, "failover: killed %s mid-stream at %d workers: %d/%d requests failed, %d failovers, %d rebalances, %d handoffs\n",
			f.KilledWorker, f.Workers, f.ClientErrors, f.Requests, f.Failovers, f.Rebalances, f.Handoffs)
	}
	return sb.String()
}
