package bench

import (
	"strings"
	"testing"

	"chet/internal/nn"
)

// TestPackingBenchSmoke runs the complex-packing comparison on its smallest
// meaningful instance: real RNS-CKKS, 2 real-packed vs 4 complex-packed
// images at equal ring size. Absolute throughput is machine-dependent, so
// the smoke checks structure and the decode-error gate — the 1.7x
// acceptance ratio is asserted only by the full `chet-bench -exp packing`
// run, on the production batch size.
func TestPackingBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution is slow; run without -short")
	}
	res, err := PackingBench(nn.LeNetTiny(), 2, 11, 12, 2, 5e-2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	rowReal, rowCplx := res.Rows[0], res.Rows[1]
	if rowReal.Complex || !rowCplx.Complex {
		t.Fatalf("row packing flags wrong: %+v / %+v", rowReal, rowCplx)
	}
	if rowCplx.Batch != 2*rowReal.Batch {
		t.Fatalf("complex row batch %d, want %d", rowCplx.Batch, 2*rowReal.Batch)
	}
	if rowReal.LogN != rowCplx.LogN {
		t.Fatalf("ring sizes diverge: %d vs %d", rowReal.LogN, rowCplx.LogN)
	}
	for _, r := range res.Rows {
		if r.SecondsPerInfer <= 0 || r.ImagesPerSec <= 0 || r.Rescales <= 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	if res.Speedup <= 1 {
		t.Fatalf("complex packing did not beat real batching: %.2fx", res.Speedup)
	}
	if len(res.Errors) != 3 {
		t.Fatalf("decode-error checks = %d, want 3 (rns, ref, sim)", len(res.Errors))
	}
	for _, e := range res.Errors {
		if !e.Pass {
			t.Fatalf("backend %s per-lane decode error %.2e exceeds budget %.0e",
				e.Backend, e.MaxErr, res.ErrBudget)
		}
	}
	if s := RenderPacking(res); !strings.Contains(s, "throughput ratio") {
		t.Fatalf("render missing ratio line:\n%s", s)
	}
}
