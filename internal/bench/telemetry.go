package bench

import (
	"fmt"
	"strings"
	"time"

	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
	"chet/internal/telemetry"
)

// TelemetryRow measures what wrapping a backend in telemetry.Tracer costs
// one network's end-to-end homomorphic inference.
type TelemetryRow struct {
	Name            string
	Workers         int
	Reps            int
	UntracedSeconds float64 // best of Reps, bare backend
	TracedSeconds   float64 // best of Reps, Tracer-wrapped backend
	OverheadPct     float64 // (traced - untraced) / untraced * 100
	Spans           int64   // spans one traced inference records
	BudgetPct       float64
	Pass            bool // OverheadPct <= BudgetPct
}

// TelemetryOverhead measures tracing overhead on real RNS-CKKS inference
// over small insecure rings (the ParallelSpeedup methodology): each network
// runs Reps interleaved bare/traced pairs after one unmeasured warm-up
// pair, taking the best of each arm. Interleaving matters on shared hosts:
// sequential arm blocks let a load spike land entirely on one arm and
// report impossible numbers (negative overhead), while alternating gives
// both arms the same quiet windows and best-of converges on the true cost.
// Traced output is checked equal to untraced — the tracer must observe,
// never perturb — and each row passes if its overhead is within budgetPct.
func TelemetryOverhead(models []*nn.Model, logN, workers, reps int, budgetPct float64) ([]TelemetryRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []TelemetryRow
	for _, m := range models {
		comp, err := core.Compile(m.Circuit, core.Options{
			Scheme:       core.SchemeRNS,
			SecurityBits: -1,
			MinLogN:      logN,
			MaxLogN:      logN,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		b, err := core.BuildBackend(comp, ring.NewTestPRNG(17))
		if err != nil {
			return nil, err
		}
		img := nn.SyntheticImage(m.InputShape, 23)
		sc := comp.Options.Scales
		policy := comp.Best.Policy
		plan := htc.PlanFor(m.Circuit, policy)
		enc := htc.EncryptTensor(b, img, plan, sc)
		opts := htc.ExecOptions{Workers: workers}

		tracer := telemetry.NewTracer(b, telemetry.Config{})

		// Warm-up pair: first executions pay one-time costs (page faults,
		// rotation-key cache fills) that belong to neither arm.
		bare := htc.ExecuteOpts(b, m.Circuit, enc, policy, sc, opts)
		wrapped := htc.ExecuteOpts(tracer, m.Circuit, enc, policy, sc, opts)

		untraced, traced := time.Duration(-1), time.Duration(-1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			bare = htc.ExecuteOpts(b, m.Circuit, enc, policy, sc, opts)
			if d := time.Since(start); untraced < 0 || d < untraced {
				untraced = d
			}

			tracer.Reset()
			start = time.Now()
			wrapped = htc.ExecuteOpts(tracer, m.Circuit, enc, policy, sc, opts)
			if d := time.Since(start); traced < 0 || d < traced {
				traced = d
			}
		}

		if err := equalOutputs(b, bare, wrapped); err != nil {
			return nil, fmt.Errorf("%s: traced inference diverged from untraced: %w", m.Name, err)
		}

		overhead := (traced.Seconds() - untraced.Seconds()) / untraced.Seconds() * 100
		rows = append(rows, TelemetryRow{
			Name:            m.Name,
			Workers:         workers,
			Reps:            reps,
			UntracedSeconds: untraced.Seconds(),
			TracedSeconds:   traced.Seconds(),
			OverheadPct:     overhead,
			Spans:           tracer.SpanCount(),
			BudgetPct:       budgetPct,
			Pass:            overhead <= budgetPct,
		})
	}
	return rows, nil
}

// equalOutputs decrypts both cipher tensors on b and requires bitwise-equal
// plaintexts (RNS decryption is deterministic, so tracing must not change a
// single bit of the result).
func equalOutputs(b hisa.Backend, x, y *htc.CipherTensor) error {
	xt := htc.DecryptTensor(b, x)
	yt := htc.DecryptTensor(b, y)
	if len(xt.Data) != len(yt.Data) {
		return fmt.Errorf("output sizes differ: %d vs %d", len(xt.Data), len(yt.Data))
	}
	for i := range xt.Data {
		if xt.Data[i] != yt.Data[i] {
			return fmt.Errorf("element %d differs: %v vs %v", i, xt.Data[i], yt.Data[i])
		}
	}
	return nil
}

// RenderTelemetry formats the overhead comparison.
func RenderTelemetry(rows []TelemetryRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %3s %4s %12s %12s %9s %8s %6s %6s\n",
		"Network", "T", "reps", "untraced(s)", "traced(s)", "overhead", "budget", "spans", "pass")
	for _, r := range rows {
		pass := "ok"
		if !r.Pass {
			pass = "FAIL"
		}
		fmt.Fprintf(&sb, "%-14s %3d %4d %12.3f %12.3f %8.2f%% %7.1f%% %6d %6s\n",
			r.Name, r.Workers, r.Reps, r.UntracedSeconds, r.TracedSeconds,
			r.OverheadPct, r.BudgetPct, r.Spans, pass)
	}
	return sb.String()
}
