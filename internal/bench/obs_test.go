package bench

import "testing"

// TestObsBenchSmoke runs the fleet-observability experiment at the smallest
// bootstrap-forcing geometry on a two-worker fleet and checks every gate:
// the traced and untraced arms agree bit for bit, the merged trace stitches
// router and worker spans (including bootstrap refresh stages) under one
// trace ID, the router learned the fleet's budget telemetry over the wire,
// and tracing stays inside the overhead budget.
func TestObsBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-lattice fleet run")
	}
	res, err := ObsBench(ObsOptions{
		Layers: 4, LogN: 9, Window: 2,
		Workers: 2, Sessions: 2, Requests: 1, Reps: 1,
		OverheadBudget: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogN != 9 || res.Workers != 2 {
		t.Fatalf("geometry: %+v", res)
	}
	if !res.BitExact {
		t.Fatal("traced outputs diverged from untraced")
	}
	if res.Untraced.Evaluations == 0 || res.Traced.Evaluations == 0 {
		t.Fatalf("arms recorded no evaluations: %+v / %+v", res.Untraced, res.Traced)
	}
	if !res.Stitch.Stitched {
		t.Fatalf("trace did not stitch across processes: %+v", res.Stitch)
	}
	if res.Stitch.Processes < 3 {
		t.Fatalf("merged trace covers %d processes, want router + 2 workers", res.Stitch.Processes)
	}
	if res.Stitch.RouterSpans == 0 || res.Stitch.WorkerSpans == 0 {
		t.Fatalf("one side recorded no spans: %+v", res.Stitch)
	}
	if res.Stitch.BootstrapSpans == 0 {
		t.Fatal("no bootstrap refresh spans in the merged trace")
	}
	if res.RouterBootstraps == 0 || !res.HeadroomKnown {
		t.Fatalf("router never learned budget telemetry: %+v", res)
	}
	if res.WallOverhead > res.OverheadBudget {
		t.Fatalf("tracing overhead %.2f%% exceeds the %.0f%% budget",
			100*res.WallOverhead, 100*res.OverheadBudget)
	}
	if !res.Pass {
		t.Fatalf("experiment failed: %+v", res)
	}
	if out := RenderObs(res); out == "" {
		t.Fatal("empty render")
	}
}
