package bench

import (
	"strings"
	"testing"
	"time"

	"chet/internal/nn"
)

// TestFleetBenchSmoke runs the sharded-serving sweep on its smallest
// meaningful instance: one then two real workers behind a router over
// loopback TCP, plus the kill-one-worker phase. Absolute throughput and
// scaling are machine-dependent; the smoke checks structure and the
// zero-client-error failover contract.
func TestFleetBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution over loopback; run without -short")
	}
	res, err := FleetBench(nn.LeNetTiny(), FleetOptions{
		Counts:           []int{1, 2},
		Requests:         4,
		ExecDelay:        150 * time.Millisecond,
		MinSessions:      2,
		FailoverAt:       2,
		FailoverRequests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v, want 1", res.Rows[0].Speedup)
	}
	for _, r := range res.Rows {
		if r.WallSeconds <= 0 || r.ImagesPerSec <= 0 || r.Sessions == 0 || r.Occupied == 0 {
			t.Fatalf("implausible row %+v", r)
		}
		var relayed uint64
		for _, share := range r.PerWorkerRelayed {
			relayed += share
		}
		if relayed != 4 {
			t.Fatalf("per-worker shares sum to %d, want 4: %+v", relayed, r)
		}
	}
	f := res.Failover
	if f == nil {
		t.Fatal("failover phase did not run")
	}
	if f.ClientErrors != 0 {
		t.Fatalf("worker kill leaked %d errors to clients, want 0", f.ClientErrors)
	}
	if f.KilledWorker == "" || f.Rebalances == 0 {
		t.Fatalf("kill did not rebalance the ring: %+v", f)
	}
	if s := RenderFleet(res); !strings.Contains(s, "images/sec") || !strings.Contains(s, "failover") {
		t.Fatalf("render missing sections:\n%s", s)
	}
}

// TestFleetBenchRejectsBadBaseline pins the counts contract: the sweep must
// start at one worker so speedups have a denominator.
func TestFleetBenchRejectsBadBaseline(t *testing.T) {
	if _, err := FleetBench(nn.LeNetTiny(), FleetOptions{Counts: []int{2, 4}}); err == nil {
		t.Fatal("expected an error for a sweep not starting at one worker")
	}
}
