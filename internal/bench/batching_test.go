package bench

import (
	"strings"
	"testing"

	"chet/internal/nn"
)

// TestBatchingBenchSmoke runs the served-batching sweep on its smallest
// meaningful instance: real RNS-CKKS over loopback TCP at batch 1 and 2.
// Absolute throughput is machine-dependent; the smoke checks structure and
// that packing two images does not cost two evaluations.
func TestBatchingBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real lattice execution over loopback; run without -short")
	}
	res, err := BatchingBench(nn.LeNetTiny(), []int{1, 2}, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v, want 1", res.Rows[0].Speedup)
	}
	for _, r := range res.Rows {
		if r.SecondsPerRequest <= 0 || r.ImagesPerSec <= 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	// One evaluation serves both lanes, so a request carrying two images must
	// cost well under two single-image requests (generous bound for CI noise).
	if d := res.Rows[1].SecondsPerRequest / res.Rows[0].SecondsPerRequest; d > 1.7 {
		t.Fatalf("batch-2 request took %.2fx a batch-1 request; batching is not amortizing", d)
	}
	if s := RenderBatching(res); !strings.Contains(s, "images/sec") {
		t.Fatalf("render missing header:\n%s", s)
	}
}

// TestBatchingBenchRejectsBadBaseline pins the batches contract: the sweep
// must start at 1 so speedups have a denominator.
func TestBatchingBenchRejectsBadBaseline(t *testing.T) {
	if _, err := BatchingBench(nn.LeNetTiny(), []int{2, 4}, 11, 12); err == nil {
		t.Fatal("expected an error for a sweep not starting at batch 1")
	}
}
