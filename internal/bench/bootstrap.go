package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"chet/internal/core"
	"chet/internal/hisa"
	"chet/internal/htc"
	"chet/internal/nn"
	"chet/internal/ring"
)

// BootstrapResult records the deep-network bootstrapping experiment: a
// synthetic MLP too deep for its modulus chain compiles with compiler-placed
// bootstraps, runs end-to-end encrypted under the Refresher, and is compared
// against plaintext-tracking lockstep. The single-bootstrap microbenchmark
// isolates the refresh cost the placements amortize over the network.
type BootstrapResult struct {
	Model  string `json:"model"`
	Layers int    `json:"layers"`
	LogN   int    `json:"log_n"`

	// Chain/spec shape selected by the compiler.
	Window      int `json:"window"`
	Floor       int `json:"floor"`
	Depth       int `json:"boot_depth"`
	ChainPrimes int `json:"chain_primes"`

	// Placements is the compiler's count; RuntimeBootstraps is the
	// Refresher's tally. The subsystem's contract is that they agree.
	Placements        int  `json:"placements"`
	RuntimeBootstraps int  `json:"runtime_bootstraps"`
	PlacementParity   bool `json:"placement_parity"`

	// BootstrapMS is the single-ciphertext refresh microbenchmark (best of
	// reps); BootTotalMS estimates the network's total refresh time.
	BootstrapMS float64 `json:"bootstrap_ms"`
	BootTotalMS float64 `json:"boot_total_ms"`

	CompileMS    float64 `json:"compile_ms"`
	RunMS        float64 `json:"run_ms"`
	ImagesPerSec float64 `json:"images_per_sec"`
	// AmortizedMS is RunMS/Placements — an upper bound on the in-run cost
	// of one refresh, since it folds in all non-refresh layer work too.
	AmortizedMS float64 `json:"amortized_ms"`

	// MaxErr is the max abs deviation of the encrypted output from the
	// plaintext-tracking lockstep; ErrBudget is the asserted ceiling.
	MaxErr    float64 `json:"max_err"`
	ErrBudget float64 `json:"err_budget"`
	Pass      bool    `json:"pass"`
}

// BootstrapBench compiles an nn.DeepMLP(layers) with bootstrap placement at
// the given ring size and budget window, runs it end-to-end encrypted, and
// measures refresh cost, output precision, and placement parity. The ring is
// deliberately small (and flagged insecure) so the experiment's real-lattice
// run stays tractable; the placement logic is ring-size independent.
func BootstrapBench(layers, logN, window int, errBudget float64) (BootstrapResult, error) {
	m := nn.DeepMLP(layers)
	opts := core.Options{
		Scheme:       core.SchemeRNS,
		SecurityBits: -1,
		MinLogN:      logN,
		MaxLogN:      logN,
		Policies:     []htc.LayoutPolicy{htc.PolicyCHW},
		Bootstrap:    &core.BootstrapOptions{Window: window},
	}

	start := time.Now()
	comp, err := core.Compile(m.Circuit, opts)
	if err != nil {
		return BootstrapResult{}, fmt.Errorf("bench: bootstrap compile: %w", err)
	}
	compileMS := float64(time.Since(start).Nanoseconds()) / 1e6
	if comp.BootPlan == nil || len(comp.BootPlan.Placements) == 0 {
		return BootstrapResult{}, fmt.Errorf("bench: NN-%d at window %d placed no bootstraps", layers, window)
	}

	img := nn.SyntheticImage(m.InputShape, 7)

	// Plaintext-tracking lockstep over the same circuit and layout.
	ref := hisa.NewRefBackend(1 << (comp.Best.LogN - 1))
	refOut := htc.Execute(ref, m.Circuit,
		htc.EncryptTensor(ref, img, comp.Plan(), comp.Options.Scales),
		comp.Best.Policy, comp.Options.Scales)
	want := htc.DecryptTensor(ref, refOut)

	raw, err := core.BuildBackend(comp, ring.NewTestPRNG(0xB007))
	if err != nil {
		return BootstrapResult{}, err
	}
	backend, err := core.BootBackend(comp, raw)
	if err != nil {
		return BootstrapResult{}, err
	}
	rf, ok := backend.(*hisa.Refresher)
	if !ok {
		return BootstrapResult{}, fmt.Errorf("bench: BootBackend returned %T, want *hisa.Refresher", backend)
	}

	// Single-refresh microbenchmark: one ciphertext through the full
	// ModRaise / CoeffToSlot / EvalMod / SlotToCoeff pipeline.
	bb, ok := hisa.AsBootstrap(raw)
	if !ok {
		return BootstrapResult{}, fmt.Errorf("bench: backend %s lost bootstrap capability", raw.Name())
	}
	vals := make([]float64, raw.Slots())
	for i := range vals {
		vals[i] = 0.25
	}
	ct := raw.Encrypt(raw.Encode(vals, comp.Options.Scales.Pc))
	bootMS := math.MaxFloat64
	for i := 0; i < 3; i++ {
		s := time.Now()
		out := bb.Bootstrap(ct)
		e := float64(time.Since(s).Nanoseconds()) / 1e6
		raw.Free(out)
		if e < bootMS {
			bootMS = e
		}
	}
	raw.Free(ct)

	start = time.Now()
	out := htc.Execute(backend, m.Circuit,
		htc.EncryptTensor(backend, img, comp.Plan(), comp.Options.Scales),
		comp.Best.Policy, comp.Options.Scales)
	runMS := float64(time.Since(start).Nanoseconds()) / 1e6
	got := htc.DecryptTensor(backend, out)

	maxErr := 0.0
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > maxErr {
			maxErr = d
		}
	}

	p := comp.BootPlan
	res := BootstrapResult{
		Model:  m.Name,
		Layers: layers,
		LogN:   comp.Best.LogN,

		Window:      p.Window,
		Floor:       p.Floor,
		Depth:       p.Depth,
		ChainPrimes: len(comp.Best.RNSChainBits),

		Placements:        len(p.Placements),
		RuntimeBootstraps: rf.Bootstraps(),
		PlacementParity:   rf.Bootstraps() == len(p.Placements),

		BootstrapMS: bootMS,
		BootTotalMS: bootMS * float64(len(p.Placements)),

		CompileMS:    compileMS,
		RunMS:        runMS,
		ImagesPerSec: 1e3 / runMS,
		AmortizedMS:  runMS / float64(len(p.Placements)),

		MaxErr:    maxErr,
		ErrBudget: errBudget,
	}
	res.Pass = res.PlacementParity && maxErr <= errBudget
	return res, nil
}

// RenderBootstrap formats the bootstrapping experiment result.
func RenderBootstrap(r BootstrapResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bootstrapping: %s (%d layers) at logN=%d, window=%d floor=%d\n",
		r.Model, r.Layers, r.LogN, r.Window, r.Floor)
	fmt.Fprintf(&sb, "chain: %d primes (%d reserved for the bootstrap pipeline)\n",
		r.ChainPrimes, r.Depth)
	fmt.Fprintf(&sb, "placements: compiler %d, runtime %d (parity %v)\n",
		r.Placements, r.RuntimeBootstraps, r.PlacementParity)
	fmt.Fprintf(&sb, "refresh: %.1f ms/bootstrap isolated; the %.1f ms run amortizes its %d refreshes to <= %.1f ms each\n",
		r.BootstrapMS, r.RunMS, r.Placements, r.AmortizedMS)
	fmt.Fprintf(&sb, "compile %.0f ms; throughput %.3f images/sec\n", r.CompileMS, r.ImagesPerSec)
	fmt.Fprintf(&sb, "precision: max |encrypted - plaintext| = %.2e (budget %.0e) -> pass=%v\n",
		r.MaxErr, r.ErrBudget, r.Pass)
	return sb.String()
}
